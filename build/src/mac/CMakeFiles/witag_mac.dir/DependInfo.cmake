
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/aes.cpp" "src/mac/CMakeFiles/witag_mac.dir/aes.cpp.o" "gcc" "src/mac/CMakeFiles/witag_mac.dir/aes.cpp.o.d"
  "/root/repo/src/mac/airtime.cpp" "src/mac/CMakeFiles/witag_mac.dir/airtime.cpp.o" "gcc" "src/mac/CMakeFiles/witag_mac.dir/airtime.cpp.o.d"
  "/root/repo/src/mac/ampdu.cpp" "src/mac/CMakeFiles/witag_mac.dir/ampdu.cpp.o" "gcc" "src/mac/CMakeFiles/witag_mac.dir/ampdu.cpp.o.d"
  "/root/repo/src/mac/block_ack.cpp" "src/mac/CMakeFiles/witag_mac.dir/block_ack.cpp.o" "gcc" "src/mac/CMakeFiles/witag_mac.dir/block_ack.cpp.o.d"
  "/root/repo/src/mac/ccmp.cpp" "src/mac/CMakeFiles/witag_mac.dir/ccmp.cpp.o" "gcc" "src/mac/CMakeFiles/witag_mac.dir/ccmp.cpp.o.d"
  "/root/repo/src/mac/mac_header.cpp" "src/mac/CMakeFiles/witag_mac.dir/mac_header.cpp.o" "gcc" "src/mac/CMakeFiles/witag_mac.dir/mac_header.cpp.o.d"
  "/root/repo/src/mac/mpdu.cpp" "src/mac/CMakeFiles/witag_mac.dir/mpdu.cpp.o" "gcc" "src/mac/CMakeFiles/witag_mac.dir/mpdu.cpp.o.d"
  "/root/repo/src/mac/rate_ctrl.cpp" "src/mac/CMakeFiles/witag_mac.dir/rate_ctrl.cpp.o" "gcc" "src/mac/CMakeFiles/witag_mac.dir/rate_ctrl.cpp.o.d"
  "/root/repo/src/mac/station.cpp" "src/mac/CMakeFiles/witag_mac.dir/station.cpp.o" "gcc" "src/mac/CMakeFiles/witag_mac.dir/station.cpp.o.d"
  "/root/repo/src/mac/wep.cpp" "src/mac/CMakeFiles/witag_mac.dir/wep.cpp.o" "gcc" "src/mac/CMakeFiles/witag_mac.dir/wep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/witag_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/witag_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
