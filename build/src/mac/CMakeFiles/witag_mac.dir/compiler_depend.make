# Empty compiler generated dependencies file for witag_mac.
# This may be replaced when dependencies are built.
