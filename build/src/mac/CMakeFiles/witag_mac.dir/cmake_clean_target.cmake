file(REMOVE_RECURSE
  "libwitag_mac.a"
)
