file(REMOVE_RECURSE
  "CMakeFiles/witag_mac.dir/aes.cpp.o"
  "CMakeFiles/witag_mac.dir/aes.cpp.o.d"
  "CMakeFiles/witag_mac.dir/airtime.cpp.o"
  "CMakeFiles/witag_mac.dir/airtime.cpp.o.d"
  "CMakeFiles/witag_mac.dir/ampdu.cpp.o"
  "CMakeFiles/witag_mac.dir/ampdu.cpp.o.d"
  "CMakeFiles/witag_mac.dir/block_ack.cpp.o"
  "CMakeFiles/witag_mac.dir/block_ack.cpp.o.d"
  "CMakeFiles/witag_mac.dir/ccmp.cpp.o"
  "CMakeFiles/witag_mac.dir/ccmp.cpp.o.d"
  "CMakeFiles/witag_mac.dir/mac_header.cpp.o"
  "CMakeFiles/witag_mac.dir/mac_header.cpp.o.d"
  "CMakeFiles/witag_mac.dir/mpdu.cpp.o"
  "CMakeFiles/witag_mac.dir/mpdu.cpp.o.d"
  "CMakeFiles/witag_mac.dir/rate_ctrl.cpp.o"
  "CMakeFiles/witag_mac.dir/rate_ctrl.cpp.o.d"
  "CMakeFiles/witag_mac.dir/station.cpp.o"
  "CMakeFiles/witag_mac.dir/station.cpp.o.d"
  "CMakeFiles/witag_mac.dir/wep.cpp.o"
  "CMakeFiles/witag_mac.dir/wep.cpp.o.d"
  "libwitag_mac.a"
  "libwitag_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witag_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
