file(REMOVE_RECURSE
  "libwitag_baselines.a"
)
