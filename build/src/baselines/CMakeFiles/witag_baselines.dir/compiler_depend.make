# Empty compiler generated dependencies file for witag_baselines.
# This may be replaced when dependencies are built.
