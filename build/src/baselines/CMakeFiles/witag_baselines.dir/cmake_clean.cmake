file(REMOVE_RECURSE
  "CMakeFiles/witag_baselines.dir/common.cpp.o"
  "CMakeFiles/witag_baselines.dir/common.cpp.o.d"
  "CMakeFiles/witag_baselines.dir/compare.cpp.o"
  "CMakeFiles/witag_baselines.dir/compare.cpp.o.d"
  "CMakeFiles/witag_baselines.dir/freerider.cpp.o"
  "CMakeFiles/witag_baselines.dir/freerider.cpp.o.d"
  "CMakeFiles/witag_baselines.dir/hitchhike.cpp.o"
  "CMakeFiles/witag_baselines.dir/hitchhike.cpp.o.d"
  "CMakeFiles/witag_baselines.dir/moxcatter.cpp.o"
  "CMakeFiles/witag_baselines.dir/moxcatter.cpp.o.d"
  "libwitag_baselines.a"
  "libwitag_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witag_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
