file(REMOVE_RECURSE
  "libwitag_phy.a"
)
