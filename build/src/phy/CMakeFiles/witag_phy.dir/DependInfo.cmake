
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/channel_est.cpp" "src/phy/CMakeFiles/witag_phy.dir/channel_est.cpp.o" "gcc" "src/phy/CMakeFiles/witag_phy.dir/channel_est.cpp.o.d"
  "/root/repo/src/phy/constellation.cpp" "src/phy/CMakeFiles/witag_phy.dir/constellation.cpp.o" "gcc" "src/phy/CMakeFiles/witag_phy.dir/constellation.cpp.o.d"
  "/root/repo/src/phy/convolutional.cpp" "src/phy/CMakeFiles/witag_phy.dir/convolutional.cpp.o" "gcc" "src/phy/CMakeFiles/witag_phy.dir/convolutional.cpp.o.d"
  "/root/repo/src/phy/dsss.cpp" "src/phy/CMakeFiles/witag_phy.dir/dsss.cpp.o" "gcc" "src/phy/CMakeFiles/witag_phy.dir/dsss.cpp.o.d"
  "/root/repo/src/phy/fft.cpp" "src/phy/CMakeFiles/witag_phy.dir/fft.cpp.o" "gcc" "src/phy/CMakeFiles/witag_phy.dir/fft.cpp.o.d"
  "/root/repo/src/phy/interleaver.cpp" "src/phy/CMakeFiles/witag_phy.dir/interleaver.cpp.o" "gcc" "src/phy/CMakeFiles/witag_phy.dir/interleaver.cpp.o.d"
  "/root/repo/src/phy/mcs.cpp" "src/phy/CMakeFiles/witag_phy.dir/mcs.cpp.o" "gcc" "src/phy/CMakeFiles/witag_phy.dir/mcs.cpp.o.d"
  "/root/repo/src/phy/mimo.cpp" "src/phy/CMakeFiles/witag_phy.dir/mimo.cpp.o" "gcc" "src/phy/CMakeFiles/witag_phy.dir/mimo.cpp.o.d"
  "/root/repo/src/phy/ofdm.cpp" "src/phy/CMakeFiles/witag_phy.dir/ofdm.cpp.o" "gcc" "src/phy/CMakeFiles/witag_phy.dir/ofdm.cpp.o.d"
  "/root/repo/src/phy/plcp.cpp" "src/phy/CMakeFiles/witag_phy.dir/plcp.cpp.o" "gcc" "src/phy/CMakeFiles/witag_phy.dir/plcp.cpp.o.d"
  "/root/repo/src/phy/ppdu.cpp" "src/phy/CMakeFiles/witag_phy.dir/ppdu.cpp.o" "gcc" "src/phy/CMakeFiles/witag_phy.dir/ppdu.cpp.o.d"
  "/root/repo/src/phy/preamble.cpp" "src/phy/CMakeFiles/witag_phy.dir/preamble.cpp.o" "gcc" "src/phy/CMakeFiles/witag_phy.dir/preamble.cpp.o.d"
  "/root/repo/src/phy/scrambler.cpp" "src/phy/CMakeFiles/witag_phy.dir/scrambler.cpp.o" "gcc" "src/phy/CMakeFiles/witag_phy.dir/scrambler.cpp.o.d"
  "/root/repo/src/phy/sync.cpp" "src/phy/CMakeFiles/witag_phy.dir/sync.cpp.o" "gcc" "src/phy/CMakeFiles/witag_phy.dir/sync.cpp.o.d"
  "/root/repo/src/phy/viterbi.cpp" "src/phy/CMakeFiles/witag_phy.dir/viterbi.cpp.o" "gcc" "src/phy/CMakeFiles/witag_phy.dir/viterbi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/witag_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
