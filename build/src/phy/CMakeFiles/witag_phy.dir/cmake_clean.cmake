file(REMOVE_RECURSE
  "CMakeFiles/witag_phy.dir/channel_est.cpp.o"
  "CMakeFiles/witag_phy.dir/channel_est.cpp.o.d"
  "CMakeFiles/witag_phy.dir/constellation.cpp.o"
  "CMakeFiles/witag_phy.dir/constellation.cpp.o.d"
  "CMakeFiles/witag_phy.dir/convolutional.cpp.o"
  "CMakeFiles/witag_phy.dir/convolutional.cpp.o.d"
  "CMakeFiles/witag_phy.dir/dsss.cpp.o"
  "CMakeFiles/witag_phy.dir/dsss.cpp.o.d"
  "CMakeFiles/witag_phy.dir/fft.cpp.o"
  "CMakeFiles/witag_phy.dir/fft.cpp.o.d"
  "CMakeFiles/witag_phy.dir/interleaver.cpp.o"
  "CMakeFiles/witag_phy.dir/interleaver.cpp.o.d"
  "CMakeFiles/witag_phy.dir/mcs.cpp.o"
  "CMakeFiles/witag_phy.dir/mcs.cpp.o.d"
  "CMakeFiles/witag_phy.dir/mimo.cpp.o"
  "CMakeFiles/witag_phy.dir/mimo.cpp.o.d"
  "CMakeFiles/witag_phy.dir/ofdm.cpp.o"
  "CMakeFiles/witag_phy.dir/ofdm.cpp.o.d"
  "CMakeFiles/witag_phy.dir/plcp.cpp.o"
  "CMakeFiles/witag_phy.dir/plcp.cpp.o.d"
  "CMakeFiles/witag_phy.dir/ppdu.cpp.o"
  "CMakeFiles/witag_phy.dir/ppdu.cpp.o.d"
  "CMakeFiles/witag_phy.dir/preamble.cpp.o"
  "CMakeFiles/witag_phy.dir/preamble.cpp.o.d"
  "CMakeFiles/witag_phy.dir/scrambler.cpp.o"
  "CMakeFiles/witag_phy.dir/scrambler.cpp.o.d"
  "CMakeFiles/witag_phy.dir/sync.cpp.o"
  "CMakeFiles/witag_phy.dir/sync.cpp.o.d"
  "CMakeFiles/witag_phy.dir/viterbi.cpp.o"
  "CMakeFiles/witag_phy.dir/viterbi.cpp.o.d"
  "libwitag_phy.a"
  "libwitag_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witag_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
