# Empty dependencies file for witag_phy.
# This may be replaced when dependencies are built.
