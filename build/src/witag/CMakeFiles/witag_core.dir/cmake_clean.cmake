file(REMOVE_RECURSE
  "CMakeFiles/witag_core.dir/config.cpp.o"
  "CMakeFiles/witag_core.dir/config.cpp.o.d"
  "CMakeFiles/witag_core.dir/link.cpp.o"
  "CMakeFiles/witag_core.dir/link.cpp.o.d"
  "CMakeFiles/witag_core.dir/metrics.cpp.o"
  "CMakeFiles/witag_core.dir/metrics.cpp.o.d"
  "CMakeFiles/witag_core.dir/query.cpp.o"
  "CMakeFiles/witag_core.dir/query.cpp.o.d"
  "CMakeFiles/witag_core.dir/reader.cpp.o"
  "CMakeFiles/witag_core.dir/reader.cpp.o.d"
  "CMakeFiles/witag_core.dir/session.cpp.o"
  "CMakeFiles/witag_core.dir/session.cpp.o.d"
  "libwitag_core.a"
  "libwitag_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witag_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
