file(REMOVE_RECURSE
  "libwitag_core.a"
)
