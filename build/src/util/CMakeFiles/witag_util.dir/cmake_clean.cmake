file(REMOVE_RECURSE
  "CMakeFiles/witag_util.dir/bits.cpp.o"
  "CMakeFiles/witag_util.dir/bits.cpp.o.d"
  "CMakeFiles/witag_util.dir/cli.cpp.o"
  "CMakeFiles/witag_util.dir/cli.cpp.o.d"
  "CMakeFiles/witag_util.dir/complexvec.cpp.o"
  "CMakeFiles/witag_util.dir/complexvec.cpp.o.d"
  "CMakeFiles/witag_util.dir/crc.cpp.o"
  "CMakeFiles/witag_util.dir/crc.cpp.o.d"
  "CMakeFiles/witag_util.dir/csv.cpp.o"
  "CMakeFiles/witag_util.dir/csv.cpp.o.d"
  "CMakeFiles/witag_util.dir/rng.cpp.o"
  "CMakeFiles/witag_util.dir/rng.cpp.o.d"
  "CMakeFiles/witag_util.dir/stats.cpp.o"
  "CMakeFiles/witag_util.dir/stats.cpp.o.d"
  "libwitag_util.a"
  "libwitag_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witag_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
