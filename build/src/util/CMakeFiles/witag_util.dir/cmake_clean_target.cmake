file(REMOVE_RECURSE
  "libwitag_util.a"
)
