# Empty dependencies file for witag_util.
# This may be replaced when dependencies are built.
