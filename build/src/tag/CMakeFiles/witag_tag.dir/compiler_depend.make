# Empty compiler generated dependencies file for witag_tag.
# This may be replaced when dependencies are built.
