file(REMOVE_RECURSE
  "CMakeFiles/witag_tag.dir/clock.cpp.o"
  "CMakeFiles/witag_tag.dir/clock.cpp.o.d"
  "CMakeFiles/witag_tag.dir/device.cpp.o"
  "CMakeFiles/witag_tag.dir/device.cpp.o.d"
  "CMakeFiles/witag_tag.dir/envelope.cpp.o"
  "CMakeFiles/witag_tag.dir/envelope.cpp.o.d"
  "CMakeFiles/witag_tag.dir/power.cpp.o"
  "CMakeFiles/witag_tag.dir/power.cpp.o.d"
  "CMakeFiles/witag_tag.dir/reflector_ctl.cpp.o"
  "CMakeFiles/witag_tag.dir/reflector_ctl.cpp.o.d"
  "CMakeFiles/witag_tag.dir/trigger.cpp.o"
  "CMakeFiles/witag_tag.dir/trigger.cpp.o.d"
  "libwitag_tag.a"
  "libwitag_tag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witag_tag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
