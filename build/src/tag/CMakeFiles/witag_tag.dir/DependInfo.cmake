
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tag/clock.cpp" "src/tag/CMakeFiles/witag_tag.dir/clock.cpp.o" "gcc" "src/tag/CMakeFiles/witag_tag.dir/clock.cpp.o.d"
  "/root/repo/src/tag/device.cpp" "src/tag/CMakeFiles/witag_tag.dir/device.cpp.o" "gcc" "src/tag/CMakeFiles/witag_tag.dir/device.cpp.o.d"
  "/root/repo/src/tag/envelope.cpp" "src/tag/CMakeFiles/witag_tag.dir/envelope.cpp.o" "gcc" "src/tag/CMakeFiles/witag_tag.dir/envelope.cpp.o.d"
  "/root/repo/src/tag/power.cpp" "src/tag/CMakeFiles/witag_tag.dir/power.cpp.o" "gcc" "src/tag/CMakeFiles/witag_tag.dir/power.cpp.o.d"
  "/root/repo/src/tag/reflector_ctl.cpp" "src/tag/CMakeFiles/witag_tag.dir/reflector_ctl.cpp.o" "gcc" "src/tag/CMakeFiles/witag_tag.dir/reflector_ctl.cpp.o.d"
  "/root/repo/src/tag/trigger.cpp" "src/tag/CMakeFiles/witag_tag.dir/trigger.cpp.o" "gcc" "src/tag/CMakeFiles/witag_tag.dir/trigger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/channel/CMakeFiles/witag_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/witag_util.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/witag_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
