# Empty dependencies file for witag_tag.
# This may be replaced when dependencies are built.
