file(REMOVE_RECURSE
  "libwitag_tag.a"
)
