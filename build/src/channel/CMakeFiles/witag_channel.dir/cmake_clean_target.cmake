file(REMOVE_RECURSE
  "libwitag_channel.a"
)
