# Empty dependencies file for witag_channel.
# This may be replaced when dependencies are built.
