file(REMOVE_RECURSE
  "CMakeFiles/witag_channel.dir/channel_model.cpp.o"
  "CMakeFiles/witag_channel.dir/channel_model.cpp.o.d"
  "CMakeFiles/witag_channel.dir/fading.cpp.o"
  "CMakeFiles/witag_channel.dir/fading.cpp.o.d"
  "CMakeFiles/witag_channel.dir/geometry.cpp.o"
  "CMakeFiles/witag_channel.dir/geometry.cpp.o.d"
  "CMakeFiles/witag_channel.dir/pathloss.cpp.o"
  "CMakeFiles/witag_channel.dir/pathloss.cpp.o.d"
  "CMakeFiles/witag_channel.dir/reflector.cpp.o"
  "CMakeFiles/witag_channel.dir/reflector.cpp.o.d"
  "CMakeFiles/witag_channel.dir/tag_path.cpp.o"
  "CMakeFiles/witag_channel.dir/tag_path.cpp.o.d"
  "libwitag_channel.a"
  "libwitag_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witag_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
