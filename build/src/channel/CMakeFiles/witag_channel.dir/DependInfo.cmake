
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/channel_model.cpp" "src/channel/CMakeFiles/witag_channel.dir/channel_model.cpp.o" "gcc" "src/channel/CMakeFiles/witag_channel.dir/channel_model.cpp.o.d"
  "/root/repo/src/channel/fading.cpp" "src/channel/CMakeFiles/witag_channel.dir/fading.cpp.o" "gcc" "src/channel/CMakeFiles/witag_channel.dir/fading.cpp.o.d"
  "/root/repo/src/channel/geometry.cpp" "src/channel/CMakeFiles/witag_channel.dir/geometry.cpp.o" "gcc" "src/channel/CMakeFiles/witag_channel.dir/geometry.cpp.o.d"
  "/root/repo/src/channel/pathloss.cpp" "src/channel/CMakeFiles/witag_channel.dir/pathloss.cpp.o" "gcc" "src/channel/CMakeFiles/witag_channel.dir/pathloss.cpp.o.d"
  "/root/repo/src/channel/reflector.cpp" "src/channel/CMakeFiles/witag_channel.dir/reflector.cpp.o" "gcc" "src/channel/CMakeFiles/witag_channel.dir/reflector.cpp.o.d"
  "/root/repo/src/channel/tag_path.cpp" "src/channel/CMakeFiles/witag_channel.dir/tag_path.cpp.o" "gcc" "src/channel/CMakeFiles/witag_channel.dir/tag_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/witag_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/witag_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
