file(REMOVE_RECURSE
  "CMakeFiles/witag_tests_baselines.dir/test_baselines.cpp.o"
  "CMakeFiles/witag_tests_baselines.dir/test_baselines.cpp.o.d"
  "witag_tests_baselines"
  "witag_tests_baselines.pdb"
  "witag_tests_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witag_tests_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
