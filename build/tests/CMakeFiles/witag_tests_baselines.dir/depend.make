# Empty dependencies file for witag_tests_baselines.
# This may be replaced when dependencies are built.
