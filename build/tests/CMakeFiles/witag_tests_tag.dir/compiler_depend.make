# Empty compiler generated dependencies file for witag_tests_tag.
# This may be replaced when dependencies are built.
