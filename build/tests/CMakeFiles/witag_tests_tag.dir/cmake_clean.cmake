file(REMOVE_RECURSE
  "CMakeFiles/witag_tests_tag.dir/test_device.cpp.o"
  "CMakeFiles/witag_tests_tag.dir/test_device.cpp.o.d"
  "CMakeFiles/witag_tests_tag.dir/test_envelope_trigger.cpp.o"
  "CMakeFiles/witag_tests_tag.dir/test_envelope_trigger.cpp.o.d"
  "CMakeFiles/witag_tests_tag.dir/test_tag_clock.cpp.o"
  "CMakeFiles/witag_tests_tag.dir/test_tag_clock.cpp.o.d"
  "witag_tests_tag"
  "witag_tests_tag.pdb"
  "witag_tests_tag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witag_tests_tag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
