
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_channel_est.cpp" "tests/CMakeFiles/witag_tests_phy.dir/test_channel_est.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_phy.dir/test_channel_est.cpp.o.d"
  "/root/repo/tests/test_constellation.cpp" "tests/CMakeFiles/witag_tests_phy.dir/test_constellation.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_phy.dir/test_constellation.cpp.o.d"
  "/root/repo/tests/test_convolutional.cpp" "tests/CMakeFiles/witag_tests_phy.dir/test_convolutional.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_phy.dir/test_convolutional.cpp.o.d"
  "/root/repo/tests/test_dsss.cpp" "tests/CMakeFiles/witag_tests_phy.dir/test_dsss.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_phy.dir/test_dsss.cpp.o.d"
  "/root/repo/tests/test_fft.cpp" "tests/CMakeFiles/witag_tests_phy.dir/test_fft.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_phy.dir/test_fft.cpp.o.d"
  "/root/repo/tests/test_interleaver.cpp" "tests/CMakeFiles/witag_tests_phy.dir/test_interleaver.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_phy.dir/test_interleaver.cpp.o.d"
  "/root/repo/tests/test_mimo.cpp" "tests/CMakeFiles/witag_tests_phy.dir/test_mimo.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_phy.dir/test_mimo.cpp.o.d"
  "/root/repo/tests/test_ofdm.cpp" "tests/CMakeFiles/witag_tests_phy.dir/test_ofdm.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_phy.dir/test_ofdm.cpp.o.d"
  "/root/repo/tests/test_plcp.cpp" "tests/CMakeFiles/witag_tests_phy.dir/test_plcp.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_phy.dir/test_plcp.cpp.o.d"
  "/root/repo/tests/test_ppdu.cpp" "tests/CMakeFiles/witag_tests_phy.dir/test_ppdu.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_phy.dir/test_ppdu.cpp.o.d"
  "/root/repo/tests/test_preamble.cpp" "tests/CMakeFiles/witag_tests_phy.dir/test_preamble.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_phy.dir/test_preamble.cpp.o.d"
  "/root/repo/tests/test_scrambler.cpp" "tests/CMakeFiles/witag_tests_phy.dir/test_scrambler.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_phy.dir/test_scrambler.cpp.o.d"
  "/root/repo/tests/test_sync.cpp" "tests/CMakeFiles/witag_tests_phy.dir/test_sync.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_phy.dir/test_sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/witag_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/witag/CMakeFiles/witag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/witag_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/witag_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/witag_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/witag_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/witag_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
