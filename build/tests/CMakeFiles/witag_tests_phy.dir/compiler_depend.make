# Empty compiler generated dependencies file for witag_tests_phy.
# This may be replaced when dependencies are built.
