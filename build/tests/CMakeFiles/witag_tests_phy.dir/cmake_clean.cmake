file(REMOVE_RECURSE
  "CMakeFiles/witag_tests_phy.dir/test_channel_est.cpp.o"
  "CMakeFiles/witag_tests_phy.dir/test_channel_est.cpp.o.d"
  "CMakeFiles/witag_tests_phy.dir/test_constellation.cpp.o"
  "CMakeFiles/witag_tests_phy.dir/test_constellation.cpp.o.d"
  "CMakeFiles/witag_tests_phy.dir/test_convolutional.cpp.o"
  "CMakeFiles/witag_tests_phy.dir/test_convolutional.cpp.o.d"
  "CMakeFiles/witag_tests_phy.dir/test_dsss.cpp.o"
  "CMakeFiles/witag_tests_phy.dir/test_dsss.cpp.o.d"
  "CMakeFiles/witag_tests_phy.dir/test_fft.cpp.o"
  "CMakeFiles/witag_tests_phy.dir/test_fft.cpp.o.d"
  "CMakeFiles/witag_tests_phy.dir/test_interleaver.cpp.o"
  "CMakeFiles/witag_tests_phy.dir/test_interleaver.cpp.o.d"
  "CMakeFiles/witag_tests_phy.dir/test_mimo.cpp.o"
  "CMakeFiles/witag_tests_phy.dir/test_mimo.cpp.o.d"
  "CMakeFiles/witag_tests_phy.dir/test_ofdm.cpp.o"
  "CMakeFiles/witag_tests_phy.dir/test_ofdm.cpp.o.d"
  "CMakeFiles/witag_tests_phy.dir/test_plcp.cpp.o"
  "CMakeFiles/witag_tests_phy.dir/test_plcp.cpp.o.d"
  "CMakeFiles/witag_tests_phy.dir/test_ppdu.cpp.o"
  "CMakeFiles/witag_tests_phy.dir/test_ppdu.cpp.o.d"
  "CMakeFiles/witag_tests_phy.dir/test_preamble.cpp.o"
  "CMakeFiles/witag_tests_phy.dir/test_preamble.cpp.o.d"
  "CMakeFiles/witag_tests_phy.dir/test_scrambler.cpp.o"
  "CMakeFiles/witag_tests_phy.dir/test_scrambler.cpp.o.d"
  "CMakeFiles/witag_tests_phy.dir/test_sync.cpp.o"
  "CMakeFiles/witag_tests_phy.dir/test_sync.cpp.o.d"
  "witag_tests_phy"
  "witag_tests_phy.pdb"
  "witag_tests_phy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witag_tests_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
