# Empty compiler generated dependencies file for witag_tests_util.
# This may be replaced when dependencies are built.
