
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bits.cpp" "tests/CMakeFiles/witag_tests_util.dir/test_bits.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_util.dir/test_bits.cpp.o.d"
  "/root/repo/tests/test_cli_csv.cpp" "tests/CMakeFiles/witag_tests_util.dir/test_cli_csv.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_util.dir/test_cli_csv.cpp.o.d"
  "/root/repo/tests/test_complexvec.cpp" "tests/CMakeFiles/witag_tests_util.dir/test_complexvec.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_util.dir/test_complexvec.cpp.o.d"
  "/root/repo/tests/test_crc.cpp" "tests/CMakeFiles/witag_tests_util.dir/test_crc.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_util.dir/test_crc.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/witag_tests_util.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_util.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/witag_tests_util.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/witag_tests_util.dir/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/witag_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/witag/CMakeFiles/witag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/witag_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/witag_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/witag_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/witag_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/witag_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
