file(REMOVE_RECURSE
  "CMakeFiles/witag_tests_util.dir/test_bits.cpp.o"
  "CMakeFiles/witag_tests_util.dir/test_bits.cpp.o.d"
  "CMakeFiles/witag_tests_util.dir/test_cli_csv.cpp.o"
  "CMakeFiles/witag_tests_util.dir/test_cli_csv.cpp.o.d"
  "CMakeFiles/witag_tests_util.dir/test_complexvec.cpp.o"
  "CMakeFiles/witag_tests_util.dir/test_complexvec.cpp.o.d"
  "CMakeFiles/witag_tests_util.dir/test_crc.cpp.o"
  "CMakeFiles/witag_tests_util.dir/test_crc.cpp.o.d"
  "CMakeFiles/witag_tests_util.dir/test_rng.cpp.o"
  "CMakeFiles/witag_tests_util.dir/test_rng.cpp.o.d"
  "CMakeFiles/witag_tests_util.dir/test_stats.cpp.o"
  "CMakeFiles/witag_tests_util.dir/test_stats.cpp.o.d"
  "witag_tests_util"
  "witag_tests_util.pdb"
  "witag_tests_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witag_tests_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
