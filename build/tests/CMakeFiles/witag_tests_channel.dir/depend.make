# Empty dependencies file for witag_tests_channel.
# This may be replaced when dependencies are built.
