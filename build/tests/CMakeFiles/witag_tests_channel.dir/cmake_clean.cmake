file(REMOVE_RECURSE
  "CMakeFiles/witag_tests_channel.dir/test_channel_model.cpp.o"
  "CMakeFiles/witag_tests_channel.dir/test_channel_model.cpp.o.d"
  "CMakeFiles/witag_tests_channel.dir/test_fading.cpp.o"
  "CMakeFiles/witag_tests_channel.dir/test_fading.cpp.o.d"
  "CMakeFiles/witag_tests_channel.dir/test_geometry.cpp.o"
  "CMakeFiles/witag_tests_channel.dir/test_geometry.cpp.o.d"
  "CMakeFiles/witag_tests_channel.dir/test_pathloss.cpp.o"
  "CMakeFiles/witag_tests_channel.dir/test_pathloss.cpp.o.d"
  "CMakeFiles/witag_tests_channel.dir/test_tag_path.cpp.o"
  "CMakeFiles/witag_tests_channel.dir/test_tag_path.cpp.o.d"
  "witag_tests_channel"
  "witag_tests_channel.pdb"
  "witag_tests_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witag_tests_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
