file(REMOVE_RECURSE
  "CMakeFiles/witag_tests_core.dir/test_e2e_sweep.cpp.o"
  "CMakeFiles/witag_tests_core.dir/test_e2e_sweep.cpp.o.d"
  "CMakeFiles/witag_tests_core.dir/test_link.cpp.o"
  "CMakeFiles/witag_tests_core.dir/test_link.cpp.o.d"
  "CMakeFiles/witag_tests_core.dir/test_metrics.cpp.o"
  "CMakeFiles/witag_tests_core.dir/test_metrics.cpp.o.d"
  "CMakeFiles/witag_tests_core.dir/test_query.cpp.o"
  "CMakeFiles/witag_tests_core.dir/test_query.cpp.o.d"
  "CMakeFiles/witag_tests_core.dir/test_reader.cpp.o"
  "CMakeFiles/witag_tests_core.dir/test_reader.cpp.o.d"
  "CMakeFiles/witag_tests_core.dir/test_session.cpp.o"
  "CMakeFiles/witag_tests_core.dir/test_session.cpp.o.d"
  "witag_tests_core"
  "witag_tests_core.pdb"
  "witag_tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witag_tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
