# Empty compiler generated dependencies file for witag_tests_core.
# This may be replaced when dependencies are built.
