# Empty compiler generated dependencies file for witag_tests_mac.
# This may be replaced when dependencies are built.
