file(REMOVE_RECURSE
  "CMakeFiles/witag_tests_mac.dir/test_ampdu.cpp.o"
  "CMakeFiles/witag_tests_mac.dir/test_ampdu.cpp.o.d"
  "CMakeFiles/witag_tests_mac.dir/test_block_ack.cpp.o"
  "CMakeFiles/witag_tests_mac.dir/test_block_ack.cpp.o.d"
  "CMakeFiles/witag_tests_mac.dir/test_crypto.cpp.o"
  "CMakeFiles/witag_tests_mac.dir/test_crypto.cpp.o.d"
  "CMakeFiles/witag_tests_mac.dir/test_mac_header.cpp.o"
  "CMakeFiles/witag_tests_mac.dir/test_mac_header.cpp.o.d"
  "CMakeFiles/witag_tests_mac.dir/test_mac_misc.cpp.o"
  "CMakeFiles/witag_tests_mac.dir/test_mac_misc.cpp.o.d"
  "CMakeFiles/witag_tests_mac.dir/test_mpdu.cpp.o"
  "CMakeFiles/witag_tests_mac.dir/test_mpdu.cpp.o.d"
  "CMakeFiles/witag_tests_mac.dir/test_station.cpp.o"
  "CMakeFiles/witag_tests_mac.dir/test_station.cpp.o.d"
  "witag_tests_mac"
  "witag_tests_mac.pdb"
  "witag_tests_mac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witag_tests_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
