# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/witag_tests_util[1]_include.cmake")
include("/root/repo/build/tests/witag_tests_phy[1]_include.cmake")
include("/root/repo/build/tests/witag_tests_channel[1]_include.cmake")
include("/root/repo/build/tests/witag_tests_mac[1]_include.cmake")
include("/root/repo/build/tests/witag_tests_tag[1]_include.cmake")
include("/root/repo/build/tests/witag_tests_core[1]_include.cmake")
include("/root/repo/build/tests/witag_tests_baselines[1]_include.cmake")
