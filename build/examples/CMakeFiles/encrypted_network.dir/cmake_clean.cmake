file(REMOVE_RECURSE
  "CMakeFiles/encrypted_network.dir/encrypted_network.cpp.o"
  "CMakeFiles/encrypted_network.dir/encrypted_network.cpp.o.d"
  "encrypted_network"
  "encrypted_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
