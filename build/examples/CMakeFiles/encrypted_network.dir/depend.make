# Empty dependencies file for encrypted_network.
# This may be replaced when dependencies are built.
