file(REMOVE_RECURSE
  "CMakeFiles/nlos_office.dir/nlos_office.cpp.o"
  "CMakeFiles/nlos_office.dir/nlos_office.cpp.o.d"
  "nlos_office"
  "nlos_office.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlos_office.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
