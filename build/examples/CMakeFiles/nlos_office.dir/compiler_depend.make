# Empty compiler generated dependencies file for nlos_office.
# This may be replaced when dependencies are built.
