file(REMOVE_RECURSE
  "CMakeFiles/ablation_multi_tag.dir/ablation_multi_tag.cpp.o"
  "CMakeFiles/ablation_multi_tag.dir/ablation_multi_tag.cpp.o.d"
  "ablation_multi_tag"
  "ablation_multi_tag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_tag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
