# Empty dependencies file for ablation_multi_tag.
# This may be replaced when dependencies are built.
