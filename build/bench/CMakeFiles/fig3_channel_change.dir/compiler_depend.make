# Empty compiler generated dependencies file for fig3_channel_change.
# This may be replaced when dependencies are built.
