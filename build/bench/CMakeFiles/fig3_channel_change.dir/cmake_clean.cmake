file(REMOVE_RECURSE
  "CMakeFiles/fig3_channel_change.dir/fig3_channel_change.cpp.o"
  "CMakeFiles/fig3_channel_change.dir/fig3_channel_change.cpp.o.d"
  "fig3_channel_change"
  "fig3_channel_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_channel_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
