# Empty compiler generated dependencies file for ablation_guard.
# This may be replaced when dependencies are built.
