file(REMOVE_RECURSE
  "CMakeFiles/ablation_guard.dir/ablation_guard.cpp.o"
  "CMakeFiles/ablation_guard.dir/ablation_guard.cpp.o.d"
  "ablation_guard"
  "ablation_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
