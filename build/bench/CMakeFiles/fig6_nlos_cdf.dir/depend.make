# Empty dependencies file for fig6_nlos_cdf.
# This may be replaced when dependencies are built.
