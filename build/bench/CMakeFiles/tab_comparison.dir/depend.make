# Empty dependencies file for tab_comparison.
# This may be replaced when dependencies are built.
