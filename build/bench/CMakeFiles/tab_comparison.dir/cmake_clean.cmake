file(REMOVE_RECURSE
  "CMakeFiles/tab_comparison.dir/tab_comparison.cpp.o"
  "CMakeFiles/tab_comparison.dir/tab_comparison.cpp.o.d"
  "tab_comparison"
  "tab_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
