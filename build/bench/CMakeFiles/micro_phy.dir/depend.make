# Empty dependencies file for micro_phy.
# This may be replaced when dependencies are built.
