file(REMOVE_RECURSE
  "CMakeFiles/micro_phy.dir/micro_phy.cpp.o"
  "CMakeFiles/micro_phy.dir/micro_phy.cpp.o.d"
  "micro_phy"
  "micro_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
