
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab_power_oscillator.cpp" "bench/CMakeFiles/tab_power_oscillator.dir/tab_power_oscillator.cpp.o" "gcc" "bench/CMakeFiles/tab_power_oscillator.dir/tab_power_oscillator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/witag_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/witag/CMakeFiles/witag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/witag_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/witag_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/witag_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/witag_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/witag_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
