file(REMOVE_RECURSE
  "CMakeFiles/tab_power_oscillator.dir/tab_power_oscillator.cpp.o"
  "CMakeFiles/tab_power_oscillator.dir/tab_power_oscillator.cpp.o.d"
  "tab_power_oscillator"
  "tab_power_oscillator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_power_oscillator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
