# Empty dependencies file for tab_power_oscillator.
# This may be replaced when dependencies are built.
