file(REMOVE_RECURSE
  "CMakeFiles/tab_trigger_detection.dir/tab_trigger_detection.cpp.o"
  "CMakeFiles/tab_trigger_detection.dir/tab_trigger_detection.cpp.o.d"
  "tab_trigger_detection"
  "tab_trigger_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_trigger_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
