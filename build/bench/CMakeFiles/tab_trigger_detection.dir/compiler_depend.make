# Empty compiler generated dependencies file for tab_trigger_detection.
# This may be replaced when dependencies are built.
