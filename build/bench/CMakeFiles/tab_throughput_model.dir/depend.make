# Empty dependencies file for tab_throughput_model.
# This may be replaced when dependencies are built.
