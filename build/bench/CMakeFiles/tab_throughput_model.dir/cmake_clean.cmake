file(REMOVE_RECURSE
  "CMakeFiles/tab_throughput_model.dir/tab_throughput_model.cpp.o"
  "CMakeFiles/tab_throughput_model.dir/tab_throughput_model.cpp.o.d"
  "tab_throughput_model"
  "tab_throughput_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_throughput_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
