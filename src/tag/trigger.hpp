// Trigger detection (paper section 7, "Query Packet Detection").
//
// Query A-MPDUs open with trigger subframes whose payloads produce the
// alternating envelope pattern HIGH LOW HIGH LOW ... HIGH (the leading
// and trailing subframes stay at full power to protect the PHY SERVICE
// field and the first data subframe). On the tag's comparator output a
// query appears as
//
//   HIGH (preamble + header + trigger sf0) | LOW D | HIGH D | LOW D |
//   HIGH (trigger tail + data)...
//
// Seeing three alternating runs of matching duration D identifies a
// query (other WiFi traffic lacks the alternation) and measures the
// subframe duration in one shot — the tag needs no decoding at all.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

namespace witag::tag {

struct TriggerConfig {
  /// Trigger subframes at the head of each query (>= 5: HIGH at both
  /// ends with three measurable alternating runs in between). Queries
  /// addressed with trigger code c stretch the second LOW region to
  /// (1 + c) subframes, so n_trigger = 5 + c.
  unsigned n_trigger_subframes = 5;
  /// Only accept queries whose measured trigger code equals this tag's
  /// address; -1 accepts any code (and reports it).
  int accept_code = -1;
  /// Relative tolerance when matching run durations.
  double duration_tolerance = 0.25;
  /// Plausible subframe duration bounds [us] (rejects random traffic).
  double min_subframe_us = 8.0;
  double max_subframe_us = 200.0;
};

/// What the tag learns from a detected query.
struct QueryTiming {
  double subframe_duration_us = 0.0;
  /// Measured trigger code (second LOW region length ratio - 1); the
  /// tag-addressing extension. 0 for plain queries.
  unsigned code = 0;
  /// Start of the first data subframe, relative to the start of the
  /// comparator sample stream.
  double data_start_us = 0.0;
  /// The last precisely-observed comparator edge (the tag phase-aligns
  /// its tick counter here).
  double align_edge_us = 0.0;
};

/// Scans a comparator bit stream for the trigger pattern. `sample_rate_hz`
/// is the rate of `comparator_bits`. Returns the measured timing or
/// nullopt when no trigger is present.
std::optional<QueryTiming> detect_trigger(
    std::span<const std::uint8_t> comparator_bits, double sample_rate_hz,
    const TriggerConfig& cfg);

}  // namespace witag::tag
