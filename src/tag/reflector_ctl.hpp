// RF switch control: turns planned assert windows into the reflector
// level actually present on the antenna at any instant, modeling the
// SPDT switch's transition time (SKY13314-class parts switch in well
// under a microsecond, but the model keeps it explicit so the ablation
// benches can exaggerate it).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>
#include <cstddef>

namespace witag::tag {

/// A time interval [start_us, end_us) during which the tag asserts its
/// corrupting reflector state.
using AssertWindow = std::pair<double, double>;

struct SwitchConfig {
  /// Time for the SPDT switch to settle after a toggle [us].
  double transition_us = 0.05;
};

class ReflectorControl {
 public:
  ReflectorControl(SwitchConfig cfg, std::vector<AssertWindow> windows);

  /// Level at instant `t_us`: true while asserted. During a transition
  /// the switch is treated as asserted (the channel is already moving,
  /// which corrupts just like the settled state).
  bool level_at(double t_us) const;

  /// Per-OFDM-symbol levels for a PPDU of `n_slots` symbol slots: slot s
  /// is asserted when the reflector is asserted at its midpoint.
  std::vector<std::uint8_t> slot_levels(std::size_t n_slots,
                                        double symbol_us = 4.0) const;

  /// Number of switch toggles the plan costs (for the power model).
  std::size_t toggle_count() const { return 2 * windows_.size(); }

  std::span<const AssertWindow> windows() const { return windows_; }

 private:
  SwitchConfig cfg_;
  std::vector<AssertWindow> windows_;  ///< Sorted, non-overlapping.
};

}  // namespace witag::tag
