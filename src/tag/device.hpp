// The WiTAG tag state machine.
//
// Per detected query, the device takes the next bits of its pending
// payload and plans reflector assert windows: bit 0 -> assert during the
// interior of that data subframe (guard bands keep tick-quantization and
// clock drift from spilling into neighbours), bit 1 -> stay quiet. All
// instants pass through the clock model, so crystal-vs-ring-oscillator
// timing error shows up as real corruption misplacement.
#pragma once

#include <cstddef>

#include "channel/tag_path.hpp"
#include "tag/clock.hpp"
#include "tag/reflector_ctl.hpp"
#include "tag/trigger.hpp"
#include "util/bits.hpp"

namespace witag::tag {

struct TagDeviceConfig {
  ClockConfig clock;
  SwitchConfig rf_switch;
  channel::TagMode mode = channel::TagMode::kPhaseFlip;
  /// Guard kept clear at each end of a corrupted subframe [us].
  double guard_us = 4.0;
  /// Comparator + interrupt latency from a real edge to the tag's
  /// phase-alignment instant [us].
  double trigger_latency_us = 1.0;
};

class TagDevice {
 public:
  explicit TagDevice(const TagDeviceConfig& cfg);

  /// Queues payload bits; queries consume them in order, cycling when
  /// exhausted (a sensor would refresh this buffer).
  void set_payload(util::BitVec bits);

  /// Bits still pending before the cycle restarts.
  std::size_t pending_bits() const;

  /// Result of planning one query response.
  struct Plan {
    util::BitVec bits;          ///< Bits assigned to the data subframes.
    ReflectorControl control;   ///< Assert windows realized on the clock.
  };

  /// Plans the reflector schedule for a detected query with
  /// `n_data_subframes` data subframes. Timing fields are relative to
  /// the PPDU start (the session provides ideal timing, or trigger
  /// detection provides measured timing). Requires a non-empty payload.
  Plan respond(const QueryTiming& timing, std::size_t n_data_subframes);

  const TagDeviceConfig& config() const { return cfg_; }
  const TagClock& clock() const { return clock_; }

  /// Applies runtime clock drift beyond the configured oscillator spec
  /// (fault-injection hook; see TagClock::set_drift).
  void set_clock_drift(double extra_frac) { clock_.set_drift(extra_frac); }

 private:
  TagDeviceConfig cfg_;
  TagClock clock_;
  util::BitVec payload_;
  std::size_t cursor_ = 0;
};

}  // namespace witag::tag
