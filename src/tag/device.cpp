#include "tag/device.hpp"

#include <algorithm>
#include <vector>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace witag::tag {

TagDevice::TagDevice(const TagDeviceConfig& cfg)
    : cfg_(cfg), clock_(cfg.clock) {
  WITAG_REQUIRE(cfg.guard_us >= 0.0);
}

void TagDevice::set_payload(util::BitVec bits) {
  WITAG_REQUIRE(!bits.empty());
  payload_ = std::move(bits);
  cursor_ = 0;
}

std::size_t TagDevice::pending_bits() const {
  return payload_.size() - cursor_;
}

TagDevice::Plan TagDevice::respond(const QueryTiming& timing,
                                   std::size_t n_data_subframes) {
  WITAG_SPAN_CAT("tag.respond", "tag");
  WITAG_COUNT("tag.responses", 1);
  WITAG_COUNT("tag.bits_planned", n_data_subframes);
  WITAG_EVENT2("tag.respond", "subframes",
               static_cast<double>(n_data_subframes), "pending",
               static_cast<double>(pending_bits()), "tag");
  WITAG_REQUIRE(!payload_.empty());
  WITAG_REQUIRE(n_data_subframes > 0);
  WITAG_REQUIRE(timing.subframe_duration_us > 0.0);

  // Consume the next bits, cycling through the payload.
  util::BitVec bits(n_data_subframes);
  for (auto& b : bits) {
    b = payload_[cursor_];
    cursor_ = (cursor_ + 1) % payload_.size();
  }

  // The tag phase-aligns its tick counter at the last trigger edge (plus
  // comparator/interrupt latency); all later instants are realized on
  // its own clock from that origin.
  const double origin = timing.align_edge_us + cfg_.trigger_latency_us;
  const double d = timing.subframe_duration_us;

  std::vector<AssertWindow> windows;
  for (std::size_t k = 0; k < n_data_subframes; ++k) {
    if (bits[k] & 1u) continue;  // bit 1 = leave the subframe alone
    const double ideal_start =
        timing.data_start_us + static_cast<double>(k) * d + cfg_.guard_us;
    const double ideal_end =
        timing.data_start_us + static_cast<double>(k + 1) * d - cfg_.guard_us;
    if (ideal_end <= ideal_start) continue;  // guards ate the subframe
    const double start =
        origin + clock_.realize_instant_us(std::max(0.0, ideal_start - origin),
                                           TagClock::Round::kUp);
    const double end =
        origin + clock_.realize_instant_us(std::max(0.0, ideal_end - origin),
                                           TagClock::Round::kDown);
    if (end > start) windows.emplace_back(start, end);
  }
  return Plan{std::move(bits), ReflectorControl(cfg_.rf_switch, std::move(windows))};
}

}  // namespace witag::tag
