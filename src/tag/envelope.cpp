#include "tag/envelope.hpp"

#include <cmath>

#include "util/require.hpp"
#include "util/units.hpp"

namespace witag::tag {

EnvelopeDetector::EnvelopeDetector(const EnvelopeConfig& cfg) {
  util::require(cfg.sample_rate_hz > 0.0 && cfg.rc_cutoff_hz > 0.0,
                "EnvelopeDetector: rates must be positive");
  // One-pole IIR: alpha = dt / (RC + dt).
  const double dt = 1.0 / cfg.sample_rate_hz;
  const double rc = 1.0 / (2.0 * util::kPi * cfg.rc_cutoff_hz);
  alpha_ = dt / (rc + dt);
}

std::vector<double> EnvelopeDetector::process(
    std::span<const util::Cx> samples) {
  std::vector<double> out(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    state_ += alpha_ * (std::abs(samples[i]) - state_);
    out[i] = state_;
  }
  return out;
}

void EnvelopeDetector::reset() { state_ = 0.0; }

Comparator::Comparator(const EnvelopeConfig& cfg)
    : threshold_fraction_(cfg.threshold_fraction),
      release_fraction_(cfg.release_fraction) {
  util::require(cfg.threshold_fraction > 0.0 && cfg.threshold_fraction < 1.0,
                "Comparator: threshold_fraction must be in (0, 1)");
  util::require(cfg.release_fraction > 0.0 &&
                    cfg.release_fraction <= cfg.threshold_fraction,
                "Comparator: release_fraction must be in (0, threshold]");
  util::require(cfg.peak_decay_s > 0.0, "Comparator: bad peak decay");
  const double dt = 1.0 / cfg.sample_rate_hz;
  peak_decay_ = std::exp(-dt / cfg.peak_decay_s);
}

std::vector<std::uint8_t> Comparator::process(
    std::span<const double> envelope) {
  std::vector<std::uint8_t> out(envelope.size());
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    peak_ = std::max(envelope[i], peak_ * peak_decay_);
    if (state_ == 0 && envelope[i] > threshold_fraction_ * peak_) {
      state_ = 1;
    } else if (state_ == 1 && envelope[i] < release_fraction_ * peak_) {
      state_ = 0;
    }
    out[i] = state_;
  }
  return out;
}

void Comparator::reset() {
  peak_ = 0.0;
  state_ = 0;
}

double Comparator::threshold() const {
  return threshold_fraction_ * peak_;
}

}  // namespace witag::tag
