#include "tag/envelope.hpp"

#include <cmath>
#include <cstddef>

#include "util/require.hpp"
#include "util/units.hpp"

namespace witag::tag {

EnvelopeDetector::EnvelopeDetector(const EnvelopeConfig& cfg) {
  WITAG_REQUIRE(cfg.sample_rate_hz > util::Hertz{0.0} && cfg.rc_cutoff_hz > util::Hertz{0.0});
  // One-pole IIR: alpha = dt / (RC + dt).
  const double dt = 1.0 / cfg.sample_rate_hz.value();
  const double rc = 1.0 / (2.0 * util::kPi * cfg.rc_cutoff_hz.value());
  alpha_ = dt / (rc + dt);
}

std::vector<double> EnvelopeDetector::process(
    std::span<const util::Cx> samples) {
  std::vector<double> out(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    state_ += alpha_ * (std::abs(samples[i]) - state_);
    out[i] = state_;
  }
  return out;
}

void EnvelopeDetector::reset() { state_ = 0.0; }

Comparator::Comparator(const EnvelopeConfig& cfg)
    : threshold_fraction_(cfg.threshold_fraction),
      release_fraction_(cfg.release_fraction) {
  WITAG_REQUIRE(cfg.threshold_fraction > 0.0 && cfg.threshold_fraction < 1.0);
  util::require(cfg.release_fraction > 0.0 &&
                    cfg.release_fraction <= cfg.threshold_fraction,
                "Comparator: release_fraction must be in (0, threshold]");
  util::require(cfg.peak_decay_s > util::Seconds{0.0},
                "Comparator: bad peak decay");
  const double dt = 1.0 / cfg.sample_rate_hz.value();
  peak_decay_ = std::exp(-dt / cfg.peak_decay_s.value());
}

std::vector<std::uint8_t> Comparator::process(
    std::span<const double> envelope) {
  std::vector<std::uint8_t> out(envelope.size());
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    peak_ = std::max(envelope[i], peak_ * peak_decay_);
    if (state_ == 0 && envelope[i] > threshold_fraction_ * peak_) {
      state_ = 1;
    } else if (state_ == 1 && envelope[i] < release_fraction_ * peak_) {
      state_ = 0;
    }
    out[i] = state_;
  }
  return out;
}

void Comparator::reset() {
  peak_ = 0.0;
  state_ = 0;
}

double Comparator::threshold() const {
  return threshold_fraction_ * peak_;
}

}  // namespace witag::tag
