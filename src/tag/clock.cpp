#include "tag/clock.hpp"

#include <cmath>

#include "util/require.hpp"

namespace witag::tag {

TagClock::TagClock(const ClockConfig& cfg) : cfg_(cfg) {
  WITAG_REQUIRE(cfg.nominal_hz > 0.0);
  const double dt = cfg_.temperature_c - cfg_.reference_temp_c;
  double frac = 0.0;
  switch (cfg_.kind) {
    case OscillatorKind::kCrystal:
      frac = cfg_.crystal_ppm * 1e-6 +
             cfg_.crystal_tempco_ppm_per_c * dt * 1e-6;
      break;
    case OscillatorKind::kRing:
      frac = cfg_.ring_frac_per_c * dt;
      break;
  }
  spec_frac_ = frac;
  actual_hz_ = cfg_.nominal_hz * (1.0 + frac);
  WITAG_REQUIRE(actual_hz_ > 0.0);
}

void TagClock::set_drift(double extra_frac) {
  extra_frac_ = extra_frac;
  actual_hz_ = cfg_.nominal_hz * (1.0 + spec_frac_ + extra_frac_);
  WITAG_REQUIRE(actual_hz_ > 0.0);
}

double TagClock::fractional_error() const {
  return actual_hz_ / cfg_.nominal_hz - 1.0;
}

double TagClock::realize_instant_us(double t_rel_us, Round round) const {
  WITAG_REQUIRE(t_rel_us >= 0.0);
  const double tick = tick_period_us();
  const double ticks = round == Round::kUp ? std::ceil(t_rel_us / tick - 1e-9)
                                           : std::floor(t_rel_us / tick + 1e-9);
  // The timer counts `ticks` periods of the *actual* oscillator.
  const double actual_tick = 1e6 / actual_hz_;
  return std::max(0.0, ticks) * actual_tick;
}

}  // namespace witag::tag
