// Tag clock models (paper section 7).
//
// WiTAG's key power argument is that it needs no channel-shifting
// oscillator: a 50 kHz crystal (accurate to tens of ppm, stable over
// temperature) suffices, versus the >= 20 MHz oscillators of
// HitchHike/FreeRider/MOXcatter — where precision parts burn > 1 mW and
// the low-power alternative (ring oscillators) drifts ~600 kHz per 5 C
// at 20 MHz (3% per 5 C), breaking timing when the room temperature
// moves.
//
// The clock model turns ideal switching instants into the instants the
// tag actually hits: phase-aligned to the detected trigger edge, then
// quantized to the tick grid and scaled by the fractional frequency
// error.
#pragma once

#include <cstdint>

namespace witag::tag {

enum class OscillatorKind { kCrystal, kRing };

struct ClockConfig {
  OscillatorKind kind = OscillatorKind::kCrystal;
  double nominal_hz = 50e3;
  /// Crystal accuracy [ppm].
  double crystal_ppm = 20.0;
  /// Crystal temperature coefficient [ppm per degree C from reference].
  double crystal_tempco_ppm_per_c = 0.5;
  /// Ring-oscillator fractional drift per degree C (paper footnote 4:
  /// 600 kHz per 5 C at 20 MHz = 0.6% per degree C).
  double ring_frac_per_c = 0.006;
  double temperature_c = 25.0;
  double reference_temp_c = 25.0;
};

class TagClock {
 public:
  explicit TagClock(const ClockConfig& cfg);

  /// Actual oscillator frequency including error terms [Hz].
  double actual_hz() const { return actual_hz_; }

  /// Overrides the runtime drift beyond the configured spec (fractional
  /// frequency offset added to the config-derived error) — the hook the
  /// fault injectors use to model crystals wandering outside their
  /// datasheet ppm under temperature swings or aging. Requires the
  /// resulting frequency to stay positive.
  void set_drift(double extra_frac);
  double drift() const { return extra_frac_; }

  /// Nominal tick period [us].
  double tick_period_us() const { return 1e6 / cfg_.nominal_hz; }

  /// Fractional frequency error (actual/nominal - 1).
  double fractional_error() const;

  /// Tick rounding direction when an ideal instant falls between ticks.
  enum class Round { kUp, kDown };

  /// Maps an ideal instant (us, relative to the phase-alignment edge at
  /// t = 0) to the instant the tag's timer actually fires: the ideal
  /// time is rounded to a whole number of nominal ticks (firmware
  /// schedules in ticks; round window starts up and window ends down so
  /// quantization never spills outside the subframe), then stretched by
  /// the frequency error. Requires t_rel_us >= 0.
  double realize_instant_us(double t_rel_us, Round round) const;

  const ClockConfig& config() const { return cfg_; }

 private:
  ClockConfig cfg_;
  double spec_frac_ = 0.0;   ///< Config-derived fractional error.
  double extra_frac_ = 0.0;  ///< Injected drift beyond the spec.
  double actual_hz_ = 0.0;
};

}  // namespace witag::tag
