#include "tag/power.hpp"

#include "util/require.hpp"

namespace witag::tag {
namespace {

// Anchors (see header): 20 MHz precision oscillator ~= 1.04 mW,
// 20 MHz ring oscillator ~= 20 uW, 50 kHz crystal ~= 0.5 uW.
constexpr double kCrystalFloorUw = 0.5;
constexpr double kCrystalK = 2.6e-12;  // uW per Hz^2
constexpr double kRingFloorUw = 0.05;
constexpr double kRingK = 5.0e-14;  // uW per Hz^2

constexpr double kComparatorUw = 0.8;
constexpr double kLogicUw = 0.5;
constexpr double kSwitchEnergyPj = 30.0;  // per toggle

}  // namespace

double oscillator_power_uw(OscillatorKind kind, double freq_hz) {
  util::require(freq_hz > 0.0, "oscillator_power_uw: bad frequency");
  switch (kind) {
    case OscillatorKind::kCrystal:
      return kCrystalFloorUw + kCrystalK * freq_hz * freq_hz;
    case OscillatorKind::kRing:
      return kRingFloorUw + kRingK * freq_hz * freq_hz;
  }
  util::ensure(false, "oscillator_power_uw: bad kind");
  return 0.0;
}

PowerBreakdown estimate_power(const ClockConfig& clock,
                              double toggle_rate_hz) {
  util::require(toggle_rate_hz >= 0.0, "estimate_power: negative rate");
  PowerBreakdown p;
  p.oscillator_uw = oscillator_power_uw(clock.kind, clock.nominal_hz);
  p.comparator_uw = kComparatorUw;
  p.logic_uw = kLogicUw;
  p.rf_switch_uw = kSwitchEnergyPj * 1e-12 * toggle_rate_hz * 1e6;  // pJ*Hz->uW
  return p;
}

}  // namespace witag::tag
