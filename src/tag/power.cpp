#include "tag/power.hpp"

#include "util/require.hpp"

namespace witag::tag {
namespace {

// Anchors (see header): 20 MHz precision oscillator ~= 1.04 mW,
// 20 MHz ring oscillator ~= 20 uW, 50 kHz crystal ~= 0.5 uW.
constexpr double kCrystalFloorUw = 0.5;
constexpr double kCrystalK = 2.6e-12;  // uW per Hz^2
constexpr double kRingFloorUw = 0.05;
constexpr double kRingK = 5.0e-14;  // uW per Hz^2

constexpr double kComparatorUw = 0.8;
constexpr double kLogicUw = 0.5;
constexpr double kSwitchEnergyPj = 30.0;  // per toggle

}  // namespace

util::Watts oscillator_power(OscillatorKind kind, util::Hertz freq) {
  WITAG_REQUIRE(freq.value() > 0.0);
  const double f = freq.value();
  switch (kind) {
    case OscillatorKind::kCrystal:
      return util::Watts::from_microwatts(kCrystalFloorUw + kCrystalK * f * f);
    case OscillatorKind::kRing:
      return util::Watts::from_microwatts(kRingFloorUw + kRingK * f * f);
  }
  WITAG_ENSURE(false);
  return util::Watts{};
}

PowerBreakdown estimate_power(const ClockConfig& clock,
                              util::Hertz toggle_rate) {
  WITAG_REQUIRE(toggle_rate.value() >= 0.0);
  PowerBreakdown p;
  p.oscillator = oscillator_power(clock.kind, util::Hertz{clock.nominal_hz});
  p.comparator = util::Watts::from_microwatts(kComparatorUw);
  p.logic = util::Watts::from_microwatts(kLogicUw);
  // Switch energy per toggle [pJ] times toggle rate [Hz] gives watts.
  p.rf_switch = util::Watts{kSwitchEnergyPj * 1e-12 * toggle_rate.value()};
  return p;
}

}  // namespace witag::tag
