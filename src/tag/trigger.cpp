#include "tag/trigger.hpp"

#include <cmath>
#include <vector>
#include <cstddef>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace witag::tag {
namespace {

struct Run {
  std::uint8_t level;
  std::size_t start;
  std::size_t length;
};

std::vector<Run> run_lengths(std::span<const std::uint8_t> bits) {
  std::vector<Run> runs;
  for (std::size_t i = 0; i < bits.size();) {
    const std::uint8_t level = bits[i] & 1u;
    std::size_t j = i;
    while (j < bits.size() && (bits[j] & 1u) == level) ++j;
    runs.push_back({level, i, j - i});
    i = j;
  }
  return runs;
}

bool close(double a, double b, double tol) {
  return std::abs(a - b) <= tol * std::max(a, b);
}

}  // namespace

std::optional<QueryTiming> detect_trigger(
    std::span<const std::uint8_t> comparator_bits, double sample_rate_hz,
    const TriggerConfig& cfg) {
  WITAG_SPAN_CAT("tag.detect_trigger", "tag");
  WITAG_COUNT("tag.detect_trigger.calls", 1);
  WITAG_REQUIRE(sample_rate_hz > 0.0);
  WITAG_REQUIRE(cfg.n_trigger_subframes >= 5);
  const double us_per_sample = 1e6 / sample_rate_hz;
  const auto runs = run_lengths(comparator_bits);

  // Look for HIGH, LOW(D), HIGH(D), LOW(D), HIGH... where the first HIGH
  // is the preamble+header region of any length.
  for (std::size_t i = 0; i + 3 < runs.size(); ++i) {
    if (runs[i].level != 1) continue;
    const Run& low1 = runs[i + 1];
    const Run& high1 = runs[i + 2];
    const Run& low2 = runs[i + 3];
    if (low1.level != 0 || high1.level != 1 || low2.level != 0) continue;

    const double d1 = static_cast<double>(low1.length) * us_per_sample;
    const double d2 = static_cast<double>(high1.length) * us_per_sample;
    const double d3 = static_cast<double>(low2.length) * us_per_sample;
    if (d1 < cfg.min_subframe_us || d1 > cfg.max_subframe_us) continue;
    if (!close(d1, d2, cfg.duration_tolerance)) continue;
    // The second LOW region spans (1 + code) subframes; recover the
    // code from its length relative to the first LOW run.
    const double ratio = d3 / d1;
    const int code = static_cast<int>(std::lround(ratio)) - 1;
    if (code < 0 || code > 8) continue;
    if (!close(d3, (code + 1) * d1, cfg.duration_tolerance)) continue;
    if (cfg.accept_code >= 0 && code != cfg.accept_code) continue;

    QueryTiming timing;
    timing.code = static_cast<unsigned>(code);
    // Estimate D from same-polarity edge spacings: the RC detector lags
    // rising and falling edges by different amounts, which biases raw
    // run lengths, but the distance between two rising edges (or two
    // falling edges) is a whole number of subframes with the lag
    // cancelling: rise-to-rise = (2 + code) D, fall-to-fall = 2 D.
    const double rise_to_rise =
        static_cast<double>((low2.start + low2.length) -
                            (low1.start + low1.length)) *
        us_per_sample;
    const double fall_to_fall =
        static_cast<double>(low2.start - low1.start) * us_per_sample;
    timing.subframe_duration_us =
        (rise_to_rise + fall_to_fall) / static_cast<double>(4 + code);
    // The last precise edge is the end of the second LOW region, i.e.
    // the end of trigger subframe 3 + code.
    timing.align_edge_us =
        static_cast<double>(low2.start + low2.length) * us_per_sample;
    // Data begins after the remaining HIGH trigger subframes, which
    // merge into the data region on the comparator.
    const double remaining =
        static_cast<double>(cfg.n_trigger_subframes - 4 - timing.code);
    timing.data_start_us =
        timing.align_edge_us + remaining * timing.subframe_duration_us;
    return timing;
  }
  return std::nullopt;
}

}  // namespace witag::tag
