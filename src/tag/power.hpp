// Tag power model (paper section 7).
//
// Oscillator power follows P = P_floor + k * f^2 with k chosen per
// oscillator class so the paper's anchor points hold:
//  - precision (crystal-derived) oscillators at 20 MHz burn > 1 mW,
//  - ring oscillators at 20 MHz burn tens of microwatts,
//  - a 50 kHz crystal clock costs well under a microwatt of dynamic
//    power, leaving the whole tag at "a few microwatts".
// The remaining terms (comparator, control logic, switch toggling) are
// small constants plus an energy-per-toggle charge.
#pragma once

#include "tag/clock.hpp"

namespace witag::tag {

struct PowerBreakdown {
  double oscillator_uw = 0.0;
  double comparator_uw = 0.0;
  double logic_uw = 0.0;
  double rf_switch_uw = 0.0;

  double total_uw() const {
    return oscillator_uw + comparator_uw + logic_uw + rf_switch_uw;
  }
};

/// Oscillator power [uW] for a class and frequency. `precision` selects
/// a crystal-derived precision oscillator (vs a free-running ring
/// oscillator, which is cheaper but drifts with temperature).
double oscillator_power_uw(OscillatorKind kind, double freq_hz);

/// Whole-tag power estimate at a clock configuration and average switch
/// toggle rate. Requires toggle_rate_hz >= 0.
PowerBreakdown estimate_power(const ClockConfig& clock,
                              double toggle_rate_hz);

}  // namespace witag::tag
