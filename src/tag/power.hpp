// Tag power model (paper section 7).
//
// Oscillator power follows P = P_floor + k * f^2 with k chosen per
// oscillator class so the paper's anchor points hold:
//  - precision (crystal-derived) oscillators at 20 MHz burn > 1 mW,
//  - ring oscillators at 20 MHz burn tens of microwatts,
//  - a 50 kHz crystal clock costs well under a microwatt of dynamic
//    power, leaving the whole tag at "a few microwatts".
// The remaining terms (comparator, control logic, switch toggling) are
// small constants plus an energy-per-toggle charge.
#pragma once

#include "tag/clock.hpp"
#include "util/units.hpp"

namespace witag::tag {

struct PowerBreakdown {
  util::Watts oscillator;
  util::Watts comparator;
  util::Watts logic;
  util::Watts rf_switch;

  util::Watts total() const {
    return oscillator + comparator + logic + rf_switch;
  }
};

/// Oscillator power for a class and frequency. `kind` selects a
/// crystal-derived precision oscillator vs a free-running ring
/// oscillator, which is cheaper but drifts with temperature.
util::Watts oscillator_power(OscillatorKind kind, util::Hertz freq);

/// Whole-tag power estimate at a clock configuration and average switch
/// toggle rate. Requires toggle_rate >= 0.
PowerBreakdown estimate_power(const ClockConfig& clock,
                              util::Hertz toggle_rate);

}  // namespace witag::tag
