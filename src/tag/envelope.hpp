// Envelope detector + comparator front end (paper section 7).
//
// The tag cannot decode WiFi; it watches the RF envelope through a diode
// detector (modeled as |x| followed by a one-pole RC low-pass) and slices
// it with a comparator whose threshold adapts to the long-term average.
// The resulting binary waveform is all the tag sees of the channel — the
// trigger correlator turns it into "a query packet started, subframes
// are D microseconds long".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/complexvec.hpp"
#include "util/units.hpp"

namespace witag::tag {

struct EnvelopeConfig {
  util::Hertz sample_rate_hz{20e6};  ///< Rate of the incoming samples.
  util::Hertz rc_cutoff_hz{150e3};   ///< Detector RC low-pass cutoff.
  /// Comparator rise threshold as a fraction of the tracked peak. OFDM
  /// envelopes ripple hard (high PAPR), so the comparator is a Schmitt
  /// trigger: it rises above `threshold_fraction * peak` and only falls
  /// back below `release_fraction * peak`.
  double threshold_fraction = 0.5;
  double release_fraction = 0.4;
  /// Peak tracker decay time constant.
  util::Seconds peak_decay_s{1e-3};
};

/// Streaming envelope detector: feeds |x| through the RC filter.
class EnvelopeDetector {
 public:
  explicit EnvelopeDetector(const EnvelopeConfig& cfg);

  /// Filters a block of baseband samples to envelope values.
  std::vector<double> process(std::span<const util::Cx> samples);

  void reset();

 private:
  double alpha_ = 0.0;
  double state_ = 0.0;
};

/// Schmitt-trigger comparator with an adaptive threshold (fractions of
/// a decaying peak tracker). Emits one bit per envelope sample.
class Comparator {
 public:
  explicit Comparator(const EnvelopeConfig& cfg);

  std::vector<std::uint8_t> process(std::span<const double> envelope);

  void reset();
  double threshold() const;

 private:
  double threshold_fraction_;
  double release_fraction_;
  double peak_decay_;
  double peak_ = 0.0;
  std::uint8_t state_ = 0;
};

}  // namespace witag::tag
