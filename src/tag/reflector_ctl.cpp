#include "tag/reflector_ctl.hpp"

#include <algorithm>
#include <cstddef>

#include "util/require.hpp"

namespace witag::tag {

ReflectorControl::ReflectorControl(SwitchConfig cfg,
                                   std::vector<AssertWindow> windows)
    : cfg_(cfg), windows_(std::move(windows)) {
  WITAG_REQUIRE(cfg_.transition_us >= 0.0);
  std::sort(windows_.begin(), windows_.end());
  // Merge overlapping/adjacent windows (consecutive zero bits).
  std::vector<AssertWindow> merged;
  for (const AssertWindow& w : windows_) {
    WITAG_REQUIRE(w.second >= w.first);
    if (!merged.empty() && w.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, w.second);
    } else {
      merged.push_back(w);
    }
  }
  windows_ = std::move(merged);
}

bool ReflectorControl::level_at(double t_us) const {
  for (const AssertWindow& w : windows_) {
    // The transition tail after each edge counts as asserted: a moving
    // channel corrupts the symbol either way.
    if (t_us >= w.first && t_us < w.second + cfg_.transition_us) return true;
    if (w.first > t_us) break;
  }
  return false;
}

std::vector<std::uint8_t> ReflectorControl::slot_levels(
    std::size_t n_slots, double symbol_us) const {
  std::vector<std::uint8_t> levels(n_slots, 0);
  for (std::size_t s = 0; s < n_slots; ++s) {
    const double mid = (static_cast<double>(s) + 0.5) * symbol_us;
    levels[s] = level_at(mid) ? 1 : 0;
  }
  return levels;
}

}  // namespace witag::tag
