// Static environment reflectors (furniture, walls' specular points).
// Each contributes a two-hop path whose gain follows the radar-equation
// 1/(Ds * Dr) amplitude law; together with the direct path they give the
// frequency-selective multipath profile the OFDM receiver equalizes.
#pragma once

#include <complex>

#include "channel/geometry.hpp"
#include "channel/pathloss.hpp"
#include "util/units.hpp"

namespace witag::channel {

struct StaticReflector {
  Point2 position;
  double strength = 1.0;  ///< Amplitude reflectivity (dimensionless).
};

/// Complex gain of the two-hop path tx -> reflector -> rx at the given
/// carrier + subcarrier offset, including wall penetration on both hops.
std::complex<double> reflector_path_gain(const StaticReflector& r, Point2 tx,
                                         Point2 rx, const FloorPlan& plan,
                                         util::Hertz freq, util::Hertz offset);

}  // namespace witag::channel
