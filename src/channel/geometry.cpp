#include "channel/geometry.hpp"

#include <algorithm>
#include <cmath>

namespace witag::channel {
namespace {

int orientation(Point2 a, Point2 b, Point2 c) {
  const double v = (b.y - a.y) * (c.x - b.x) - (b.x - a.x) * (c.y - b.y);
  if (std::abs(v) < 1e-12) return 0;
  return v > 0 ? 1 : 2;
}

bool on_segment(Point2 p, Point2 q, Point2 r) {
  return q.x <= std::max(p.x, r.x) && q.x >= std::min(p.x, r.x) &&
         q.y <= std::max(p.y, r.y) && q.y >= std::min(p.y, r.y);
}

}  // namespace

double distance(Point2 a, Point2 b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

bool segments_intersect(Point2 p, Point2 q, Point2 r, Point2 s) {
  const int o1 = orientation(p, q, r);
  const int o2 = orientation(p, q, s);
  const int o3 = orientation(r, s, p);
  const int o4 = orientation(r, s, q);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && on_segment(p, r, q)) return true;
  if (o2 == 0 && on_segment(p, s, q)) return true;
  if (o3 == 0 && on_segment(r, p, s)) return true;
  if (o4 == 0 && on_segment(r, q, s)) return true;
  return false;
}

double FloorPlan::penetration_loss_db(Point2 a, Point2 b) const {
  double loss = 0.0;
  for (const Wall& w : walls_) {
    if (segments_intersect(a, b, w.a, w.b)) loss += w.attenuation_db;
  }
  return loss;
}

bool FloorPlan::line_of_sight(Point2 a, Point2 b) const {
  return std::all_of(walls_.begin(), walls_.end(), [&](const Wall& w) {
    return !segments_intersect(a, b, w.a, w.b);
  });
}

TestbedLayout figure4_testbed() {
  TestbedLayout layout;
  // 18 m (x) by 7 m (y) area. The AP sits near the east side of the main
  // lab; the LOS client is 8 m west of it in the same room, with nothing
  // blocking the line between them (the Figure-5 experiment moves the tag
  // along that line).
  layout.ap = {17.2, 3.5};
  layout.client_los = {9.2, 3.5};

  FloorPlan plan;
  // Metal cabinets inside the lab (heavy loss band over part of the room;
  // the LOS client sits past their north end).
  plan.add_wall({{10.5, 0.0}, {10.5, 3.0}, 6.0});
  // Wall separating the main lab from the middle room (wood + door).
  plan.add_wall({{8.5, 0.0}, {8.5, 7.0}, 6.0});
  // Wall between the middle room and the far rooms (concrete).
  plan.add_wall({{5.0, 0.0}, {5.0, 7.0}, 9.75});
  // Far corridor wall before location B's office.
  plan.add_wall({{2.5, 0.0}, {2.5, 7.0}, 6.0});
  layout.plan = plan;

  // Location A: in the lab but behind the metal cabinets, ~7 m from the
  // AP (the paper's nearer NLOS point).
  layout.location_a = {10.3, 1.5};
  // Location B: far office, ~17 m from the AP, every wall in between.
  layout.location_b = {0.5, 1.0};
  return layout;
}

}  // namespace witag::channel
