#include "channel/fading.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace witag::channel {

FadingProcess::FadingProcess(const FadingConfig& cfg, util::Rng rng)  // witag-lint: allow(rng-copy)
    : cfg_(cfg), rng_(rng) {
  WITAG_REQUIRE(cfg.area_max_x > cfg.area_min_x && cfg.area_max_y > cfg.area_min_y);
  scatterers_.reserve(cfg_.n_scatterers);
  for (unsigned i = 0; i < cfg_.n_scatterers; ++i) {
    scatterers_.push_back(
        {{rng_.uniform(cfg_.area_min_x, cfg_.area_max_x),
          rng_.uniform(cfg_.area_min_y, cfg_.area_max_y)},
         cfg_.scatterer_strength});
  }
}

void FadingProcess::advance(util::Seconds dt) {
  WITAG_REQUIRE(dt.value() >= 0.0);
  now_s_ += dt.value();

  // Random walk: Gaussian step with standard deviation speed * dt,
  // reflected at the area boundary.
  const double sigma = cfg_.walk_speed_mps * dt.value();
  for (StaticReflector& s : scatterers_) {
    s.position.x += rng_.normal(0.0, sigma);
    s.position.y += rng_.normal(0.0, sigma);
    s.position.x = std::clamp(s.position.x, cfg_.area_min_x, cfg_.area_max_x);
    s.position.y = std::clamp(s.position.y, cfg_.area_min_y, cfg_.area_max_y);
  }

  // Blocking events arrive as a Poisson process; each sets (or extends)
  // the blocked interval by an exponential duration.
  if (cfg_.blocking_rate_hz > util::Hertz{0.0}) {
    const unsigned arrivals =
        rng_.poisson(cfg_.blocking_rate_hz.value() * dt.value());
    for (unsigned i = 0; i < arrivals; ++i) {
      double u = rng_.uniform();
      while (u <= 0.0) u = rng_.uniform();
      const double duration = -cfg_.blocking_mean_s.value() * std::log(u);
      blocked_until_s_ = std::max(blocked_until_s_, now_s_ + duration);
    }
  }
}

util::Db FadingProcess::direct_excess_loss_db() const {
  return now_s_ < blocked_until_s_ ? cfg_.blocking_loss_db : util::Db{0.0};
}

}  // namespace witag::channel
