#include "channel/reflector.hpp"

namespace witag::channel {

std::complex<double> reflector_path_gain(const StaticReflector& r, Point2 tx,
                                         Point2 rx, const FloorPlan& plan,
                                         double freq_hz, double offset_hz) {
  const double ds = distance(tx, r.position);
  const double dr = distance(r.position, rx);
  std::complex<double> gain =
      reflected_gain(ds, dr, r.strength, freq_hz, offset_hz);
  gain = attenuate(gain, plan.penetration_loss_db(tx, r.position));
  gain = attenuate(gain, plan.penetration_loss_db(r.position, rx));
  return gain;
}

}  // namespace witag::channel
