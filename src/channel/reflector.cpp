#include "channel/reflector.hpp"
#include "util/units.hpp"

namespace witag::channel {

std::complex<double> reflector_path_gain(const StaticReflector& r, Point2 tx,
                                         Point2 rx, const FloorPlan& plan,
                                         util::Hertz freq,
                                         util::Hertz offset) {
  const util::Meters ds{distance(tx, r.position)};
  const util::Meters dr{distance(r.position, rx)};
  std::complex<double> gain = reflected_gain(ds, dr, r.strength, freq, offset);
  gain = attenuate(gain, util::Db{plan.penetration_loss_db(tx, r.position)});
  gain = attenuate(gain, util::Db{plan.penetration_loss_db(r.position, rx)});
  return gain;
}

}  // namespace witag::channel
