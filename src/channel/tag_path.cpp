#include "channel/tag_path.hpp"

#include "channel/pathloss.hpp"
#include "util/require.hpp"

namespace witag::channel {

std::complex<double> tag_gamma(TagMode mode, bool asserted) {
  switch (mode) {
    case TagMode::kOpenShort:
      return asserted ? std::complex<double>{1.0, 0.0}
                      : std::complex<double>{0.0, 0.0};
    case TagMode::kPhaseFlip:
      return asserted ? std::complex<double>{-1.0, 0.0}
                      : std::complex<double>{1.0, 0.0};
  }
  WITAG_ENSURE(false);
  return {};
}

std::complex<double> tag_coupling(const TagPathConfig& tag, Point2 tx,
                                  Point2 rx, const FloorPlan& plan,
                                  util::Hertz freq, util::Hertz offset) {
  const util::Meters ds{distance(tx, tag.position)};
  const util::Meters dr{distance(tag.position, rx)};
  std::complex<double> gain =
      reflected_gain(ds, dr, tag.strength, freq, offset);
  gain = attenuate(gain, util::Db{plan.penetration_loss_db(tx, tag.position)});
  gain = attenuate(gain, util::Db{plan.penetration_loss_db(tag.position, rx)});
  return gain;
}

double channel_change_magnitude(const TagPathConfig& tag, Point2 tx, Point2 rx,
                                const FloorPlan& plan, util::Hertz freq) {
  const std::complex<double> delta =
      tag_gamma(tag.mode, true) - tag_gamma(tag.mode, false);
  return std::abs(delta) *
         std::abs(tag_coupling(tag, tx, rx, plan, freq, util::Hertz{0.0}));
}

}  // namespace witag::channel
