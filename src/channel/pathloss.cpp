#include "channel/pathloss.hpp"

#include <cmath>

#include "util/require.hpp"
#include "util/units.hpp"

namespace witag::channel {

using util::kPi;
using util::kSpeedOfLight;

std::complex<double> direct_gain(double dist_m, double freq_hz,
                                 double offset_hz) {
  util::require(dist_m > 0.0, "direct_gain: distance must be positive");
  const double lambda = kSpeedOfLight / freq_hz;
  const double amp = lambda / (4.0 * kPi * dist_m);
  const double phase =
      -2.0 * kPi * dist_m * (freq_hz + offset_hz) / kSpeedOfLight;
  return std::polar(amp, phase);
}

std::complex<double> reflected_gain(double ds_m, double dr_m, double strength,
                                    double freq_hz, double offset_hz) {
  util::require(ds_m > 0.0 && dr_m > 0.0,
                "reflected_gain: distances must be positive");
  const double lambda = kSpeedOfLight / freq_hz;
  const double amp = strength * lambda * lambda /
                     (std::pow(4.0 * kPi, 1.5) * ds_m * dr_m);
  const double total = ds_m + dr_m;
  const double phase =
      -2.0 * kPi * total * (freq_hz + offset_hz) / kSpeedOfLight;
  return std::polar(amp, phase);
}

std::complex<double> attenuate(std::complex<double> gain, double loss_db) {
  // Amplitude loss is half the power loss in dB.
  return gain * std::pow(10.0, -loss_db / 20.0);
}

}  // namespace witag::channel
