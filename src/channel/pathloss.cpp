#include "channel/pathloss.hpp"

#include <cmath>

#include "util/require.hpp"
#include "util/units.hpp"

namespace witag::channel {

using util::kPi;
using util::kSpeedOfLight;

std::complex<double> direct_gain(util::Meters dist, util::Hertz freq,
                                 util::Hertz offset) {
  WITAG_REQUIRE(dist.value() > 0.0);
  const double lambda = util::wavelength(freq).value();
  const double amp = lambda / (4.0 * kPi * dist.value());
  const double phase = -2.0 * kPi * dist.value() *
                       (freq + offset).value() / kSpeedOfLight;
  return std::polar(amp, phase);
}

std::complex<double> reflected_gain(util::Meters ds, util::Meters dr,
                                    double strength, util::Hertz freq,
                                    util::Hertz offset) {
  WITAG_REQUIRE(ds.value() > 0.0 && dr.value() > 0.0);
  const double lambda = util::wavelength(freq).value();
  const double amp = strength * lambda * lambda /
                     (std::pow(4.0 * kPi, 1.5) * ds.value() * dr.value());
  const double total = (ds + dr).value();
  const double phase =
      -2.0 * kPi * total * (freq + offset).value() / kSpeedOfLight;
  return std::polar(amp, phase);
}

std::complex<double> attenuate(std::complex<double> gain, util::Db loss) {
  // Amplitude loss is half the power loss in dB.
  return gain * std::pow(10.0, -loss.value() / 20.0);
}

}  // namespace witag::channel
