// 2-D geometry for the simulated testbed, including the paper's Figure-4
// floor plan (an 18 m x 7 m lab/office area on a university campus, with
// the AP and client 8 m apart for the LOS experiment and NLOS locations
// A and B roughly 7 m and 17 m from the AP behind walls).
#pragma once

#include <span>
#include <vector>

namespace witag::channel {

struct Point2 {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point2&) const = default;
};

double distance(Point2 a, Point2 b);

/// A wall segment with a one-way penetration loss.
struct Wall {
  Point2 a;
  Point2 b;
  double attenuation_db = 5.0;  ///< Loss per crossing.
};

/// Returns true when segments pq and rs properly intersect (shared
/// endpoints and collinear touching count as intersections).
bool segments_intersect(Point2 p, Point2 q, Point2 r, Point2 s);

/// A set of walls; computes the total penetration loss along a ray.
class FloorPlan {
 public:
  FloorPlan() = default;
  explicit FloorPlan(std::vector<Wall> walls) : walls_(std::move(walls)) {}

  void add_wall(Wall w) { walls_.push_back(w); }
  std::span<const Wall> walls() const { return walls_; }

  /// Sum of attenuation_db over every wall the segment a->b crosses.
  double penetration_loss_db(Point2 a, Point2 b) const;

  /// True when no wall blocks the segment a->b.
  bool line_of_sight(Point2 a, Point2 b) const;

 private:
  std::vector<Wall> walls_;
};

/// The paper's evaluation geometry (Figure 4), in meters. Origin at the
/// south-west corner of the 18 x 7 m area.
struct TestbedLayout {
  Point2 ap;         ///< Access point.
  Point2 client_los; ///< Client for the LOS experiment (8 m from AP).
  Point2 location_a; ///< NLOS location A (~7 m from AP, other room).
  Point2 location_b; ///< NLOS location B (~17 m from AP, far room).
  FloorPlan plan;    ///< Interior walls (metal cabinets, concrete, doors).
};

/// Builds the Figure-4 testbed: AP at one side, LOS client 8 m away,
/// NLOS rooms separated by walls of increasing loss toward location B.
TestbedLayout figure4_testbed();

}  // namespace witag::channel
