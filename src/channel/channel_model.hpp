// The composed wireless channel between one transmitter and one receiver,
// optionally carrying a WiTAG tag as a modulated reflector.
//
// The channel frequency response per OFDM subcarrier is
//
//   h(f, t, level) = a_block(t) * direct(f) + sum_static reflected_i(f)
//                  + sum_moving reflected_j(f, t)
//                  + gamma(mode, level) * tag_coupling(f)
//
// with every term following the geometric path models in pathloss.hpp.
// Transmit power is folded into the response (symbols are assumed to have
// unit average power per used subcarrier), and the additive noise is
// thermal noise over one subcarrier spacing times the receiver noise
// figure — so post-equalization SNR comes out in physical units.
//
// Time advances between PPDUs (coherence time >> A-MPDU duration, paper
// footnote 2). Within a PPDU only the tag's switch level changes, which
// is exactly WiTAG's communication mechanism.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>
#include <cstddef>

#include "channel/fading.hpp"
#include "channel/geometry.hpp"
#include "channel/tag_path.hpp"
#include "phy/ofdm.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace witag::channel {

struct RadioConfig {
  util::Hertz carrier_hz = util::kWifi24GHz;  ///< Channel 6.
  util::Dbm tx_power_dbm{15.0};  ///< Commodity NIC transmit power.
  util::Db noise_figure_db{7.0};
  double temperature_k = 290.0;
};

struct LinkGeometry {
  Point2 tx;
  Point2 rx;
  FloorPlan plan;
  std::vector<StaticReflector> reflectors;
};

/// Adds a default set of room reflectors around a link so the channel is
/// frequency-selective (walls/furniture specular points).
std::vector<StaticReflector> default_room_reflectors(Point2 tx, Point2 rx);

class ChannelModel {
 public:
  /// `tag` is absent for links without a tag (plain WiFi). `fading` may
  /// have n_scatterers == 0 and blocking_rate_hz == 0 for a static
  /// channel. Additional tags (multi-tag deployments) are added with
  /// add_tag(); tag index 0 is the one the single-tag API addresses.
  ChannelModel(const RadioConfig& radio, LinkGeometry geometry,
               std::optional<TagPathConfig> tag, const FadingConfig& fading,
               std::uint64_t seed);

  /// Adds another modulated reflector; returns its tag index.
  std::size_t add_tag(const TagPathConfig& tag);
  std::size_t tag_count() const { return tags_.size(); }

  /// Advances simulated time (fading evolves; the in-PPDU channel is
  /// frozen apart from the tag level).
  void advance(util::Seconds dt);

  /// Per-bin channel response (including sqrt(tx power) scaling) for a
  /// tag switch level. Unused bins are zero. `tag_asserted` is ignored
  /// when no tag is configured.
  phy::FreqSymbol cfr(bool tag_asserted) const;

  /// Complex noise variance per subcarrier sample.
  util::Watts noise_variance() const;

  /// Ambient co-channel noise floor [W per subcarrier] added on top of
  /// thermal noise — the city simulator's epoch-boundary interference
  /// hook (src/sim/): neighbouring cells' airtime raises this floor.
  /// A pure parameter change: the RNG draws the same number of noise
  /// samples at a different variance, so the session's random stream
  /// stays aligned whatever the floor (determinism contract, DESIGN.md
  /// section 17).
  void set_ambient_noise(util::Watts w) { ambient_noise_w_ = w.value(); }
  util::Watts ambient_noise() const { return util::Watts{ambient_noise_w_}; }

  /// Applies the channel to a symbol timeline. `tag_level` gives tag 0's
  /// switch level during each symbol (empty = tag never asserted;
  /// otherwise size must match). Noise is drawn from the internal RNG;
  /// co-channel interference bursts (FadingConfig) raise the noise on
  /// the symbols they overlap.
  std::vector<phy::FreqSymbol> apply(std::span<const phy::FreqSymbol> tx,
                                     std::span<const std::uint8_t> tag_level);

  /// Multi-tag variant: `levels_per_tag[t]` is tag t's per-symbol level
  /// schedule (empty = that tag stays deasserted). Requires
  /// levels_per_tag.size() <= tag_count().
  std::vector<phy::FreqSymbol> apply_multi(
      std::span<const phy::FreqSymbol> tx,
      std::span<const std::vector<std::uint8_t>> levels_per_tag);

  /// Like apply_multi, with an additional per-symbol noise-variance term
  /// [W per subcarrier] added on top of thermal noise and drawn
  /// interference — the hook external fault injectors (Gilbert-Elliott
  /// co-channel bursts) use to raise the floor for the symbols they
  /// cover. `extra_noise` may be empty (no extra noise, byte-identical
  /// to the plain overload) or sized to `tx`.
  std::vector<phy::FreqSymbol> apply_multi(
      std::span<const phy::FreqSymbol> tx,
      std::span<const std::vector<std::uint8_t>> levels_per_tag,
      std::span<const double> extra_noise);

  /// Mean received SNR per subcarrier with the tag deasserted.
  util::Db mean_snr_db() const;

  /// Mean over used subcarriers of |h_asserted - h_deasserted|^2 /
  /// |h_deasserted|^2 — the tag's relative channel perturbation
  /// (Figure 3's vector length, squared and normalized). Requires a tag.
  util::Db tag_perturbation_db() const;

  const LinkGeometry& geometry() const { return geometry_; }
  /// Primary tag configuration, if any.
  std::optional<TagPathConfig> tag() const;

  /// Replaces the primary tag configuration (position sweeps in
  /// benches); nullopt removes every tag.
  void set_tag(std::optional<TagPathConfig> tag);

 private:
  void rebuild_cache() const;
  /// Per-symbol extra noise variance from interference bursts over a
  /// PPDU of `n_symbols` symbols.
  std::vector<double> draw_interference(std::size_t n_symbols);

  RadioConfig radio_;
  LinkGeometry geometry_;
  std::vector<TagPathConfig> tags_;
  FadingConfig fading_cfg_;
  FadingProcess fading_;
  util::Rng rng_;
  double amp_scale_ = 1.0;  ///< sqrt(tx power per subcarrier).
  double ambient_noise_w_ = 0.0;  ///< Cross-cell interference floor [W].

  mutable bool cache_valid_ = false;
  /// Static channel (direct + reflectors + fading + every tag resting).
  mutable phy::FreqSymbol h_base_{};
  /// Per-tag delta when asserted: (gamma_on - gamma_off) * coupling.
  mutable std::vector<phy::FreqSymbol> tag_delta_;
};

}  // namespace witag::channel
