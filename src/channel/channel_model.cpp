#include "channel/channel_model.hpp"

#include <cmath>
#include <cstddef>

#include "channel/pathloss.hpp"
#include "obs/obs.hpp"
#include "util/require.hpp"
#include "util/units.hpp"

namespace witag::channel {
namespace {

using util::Cx;

/// Subcarrier spacing of the 20 MHz OFDM PHY.
constexpr util::Hertz kSubcarrierSpacing{312'500.0};

/// Number of used subcarriers (52 data + 4 pilots).
constexpr unsigned kUsedSubcarriers = 56;

util::Hertz subcarrier_offset(int subcarrier) {
  return static_cast<double>(subcarrier) * kSubcarrierSpacing;
}

// Logical subcarrier index for an FFT bin, or nullopt for unused bins.
std::optional<int> logical_subcarrier(unsigned bin) {
  const int k = bin < 32 ? static_cast<int>(bin) : static_cast<int>(bin) - 64;
  if (k == 0 || k < -28 || k > 28) return std::nullopt;
  return k;
}

}  // namespace

std::vector<StaticReflector> default_room_reflectors(Point2 tx, Point2 rx) {
  // Specular points roughly where walls/furniture would sit relative to
  // the link: offset to the sides and beyond each endpoint. Strengths are
  // modest so the direct path dominates (Rician-like channel) but the
  // response stays frequency-selective across the 20 MHz band.
  const Point2 mid{(tx.x + rx.x) / 2.0, (tx.y + rx.y) / 2.0};
  return {
      {{mid.x + 1.1, mid.y + 2.7}, 3.0},   // side wall
      {{mid.x - 0.8, mid.y - 3.1}, 2.5},   // opposite wall
      {{tx.x + 1.4, tx.y - 1.9}, 2.0},     // furniture near tx
      {{rx.x - 1.6, rx.y + 1.3}, 2.0},     // furniture near rx
      {{mid.x + 4.2, mid.y + 0.9}, 1.5},   // far cabinet
  };
}

ChannelModel::ChannelModel(const RadioConfig& radio, LinkGeometry geometry,
                           std::optional<TagPathConfig> tag,
                           const FadingConfig& fading, std::uint64_t seed)
    : radio_(radio),
      geometry_(std::move(geometry)),
      fading_cfg_(fading),
      fading_(fading, util::Rng(seed)),
      rng_(util::Rng(seed).split()) {
  if (tag) tags_.push_back(*tag);
  const util::Watts p_tx = util::to_watts(radio_.tx_power_dbm);
  amp_scale_ = std::sqrt(p_tx.value() / kUsedSubcarriers);
}

std::size_t ChannelModel::add_tag(const TagPathConfig& tag) {
  tags_.push_back(tag);
  cache_valid_ = false;
  return tags_.size() - 1;
}

void ChannelModel::advance(util::Seconds dt) {
  WITAG_COUNT("channel.advance.calls", 1);
  WITAG_EVENT1("channel.advance", "dt_s", dt.value());
  fading_.advance(dt);
  cache_valid_ = false;
}

std::optional<TagPathConfig> ChannelModel::tag() const {
  if (tags_.empty()) return std::nullopt;
  return tags_.front();
}

void ChannelModel::set_tag(std::optional<TagPathConfig> tag) {
  if (!tag) {
    tags_.clear();
  } else if (tags_.empty()) {
    tags_.push_back(*tag);
  } else {
    tags_.front() = *tag;
  }
  cache_valid_ = false;
}

void ChannelModel::rebuild_cache() const {
  WITAG_SPAN_CAT("channel.cfr_rebuild", "channel");
  WITAG_COUNT("channel.cfr_rebuild.calls", 1);
  WITAG_EVENT("channel.estimate_invalidated");
  const util::Hertz fc = radio_.carrier_hz;
  const Point2 tx = geometry_.tx;
  const Point2 rx = geometry_.rx;
  const util::Db direct_loss =
      util::Db{geometry_.plan.penetration_loss_db(tx, rx)} +
      fading_.direct_excess_loss_db();
  const util::Meters d_direct{distance(tx, rx)};

  h_base_.fill(Cx{});
  tag_delta_.assign(tags_.size(), phy::FreqSymbol{});
  for (unsigned bin = 0; bin < phy::kFftSize; ++bin) {
    const auto k = logical_subcarrier(bin);
    if (!k) continue;
    const util::Hertz off = subcarrier_offset(*k);

    Cx h = attenuate(direct_gain(d_direct, fc, off), direct_loss);
    for (const StaticReflector& r : geometry_.reflectors) {
      h += reflector_path_gain(r, tx, rx, geometry_.plan, fc, off);
    }
    for (const StaticReflector& r : fading_.scatterers()) {
      h += reflector_path_gain(r, tx, rx, geometry_.plan, fc, off);
    }
    for (std::size_t t = 0; t < tags_.size(); ++t) {
      const Cx coupling =
          tag_coupling(tags_[t], tx, rx, geometry_.plan, fc, off);
      h += tag_gamma(tags_[t].mode, false) * coupling;
      tag_delta_[t][bin] =
          amp_scale_ *
          (tag_gamma(tags_[t].mode, true) - tag_gamma(tags_[t].mode, false)) *
          coupling;
    }
    h_base_[bin] = amp_scale_ * h;
  }
  cache_valid_ = true;
}

phy::FreqSymbol ChannelModel::cfr(bool tag_asserted) const {
  if (!cache_valid_) rebuild_cache();
  phy::FreqSymbol h = h_base_;
  if (tag_asserted && !tags_.empty()) {
    for (unsigned bin = 0; bin < phy::kFftSize; ++bin) {
      h[bin] += tag_delta_[0][bin];
    }
  }
  return h;
}

util::Watts ChannelModel::noise_variance() const {
  return util::Watts{
      (util::thermal_noise(kSubcarrierSpacing, radio_.temperature_k) *
       util::db_to_linear(radio_.noise_figure_db))
          .value() +
      ambient_noise_w_};
}

std::vector<double> ChannelModel::draw_interference(std::size_t n_symbols) {
  std::vector<double> extra(n_symbols, 0.0);
  if (fading_cfg_.interference_rate_hz <= util::Hertz{0.0}) return extra;
  const double sym_us = 4.0;
  const double ppdu_us = static_cast<double>(n_symbols) * sym_us;
  const double mean_us = fading_cfg_.interference_mean_us.value();
  // Bursts that started up to one mean duration before the PPDU can
  // still overlap it.
  const double window_s =
      util::to_seconds(util::Micros{ppdu_us + mean_us}).value();
  const unsigned bursts =
      rng_.poisson(fading_cfg_.interference_rate_hz.value() * window_s);
  if (bursts == 0) return extra;
  const double power =
      util::to_watts(fading_cfg_.interference_power_dbm).value();
  // The interferer's 20 MHz energy spreads over all 64 bins.
  const double per_subcarrier = power / 64.0;
  for (unsigned b = 0; b < bursts; ++b) {
    const double start = rng_.uniform(-mean_us, ppdu_us);
    double u = rng_.uniform();
    while (u <= 0.0) u = rng_.uniform();
    const double duration = -mean_us * std::log(u);
    const auto first = static_cast<std::size_t>(
        std::max(0.0, std::floor(start / sym_us)));
    const auto last = static_cast<std::size_t>(
        std::max(0.0, std::ceil((start + duration) / sym_us)));
    for (std::size_t s = first; s < std::min(last, n_symbols); ++s) {
      extra[s] += per_subcarrier;
    }
  }
  return extra;
}

std::vector<phy::FreqSymbol> ChannelModel::apply(
    std::span<const phy::FreqSymbol> tx,
    std::span<const std::uint8_t> tag_level) {
  WITAG_REQUIRE(tag_level.empty() || tag_level.size() == tx.size());
  std::vector<std::vector<std::uint8_t>> levels;
  if (!tag_level.empty()) {
    levels.emplace_back(tag_level.begin(), tag_level.end());
  }
  return apply_multi(tx, levels);
}

std::vector<phy::FreqSymbol> ChannelModel::apply_multi(
    std::span<const phy::FreqSymbol> tx,
    std::span<const std::vector<std::uint8_t>> levels_per_tag) {
  return apply_multi(tx, levels_per_tag, {});
}

std::vector<phy::FreqSymbol> ChannelModel::apply_multi(
    std::span<const phy::FreqSymbol> tx,
    std::span<const std::vector<std::uint8_t>> levels_per_tag,
    std::span<const double> extra_noise) {
  WITAG_SPAN_CAT("channel.apply", "channel");
  WITAG_COUNT("channel.apply.calls", 1);
  WITAG_COUNT("channel.apply.symbols", tx.size());
  WITAG_REQUIRE(levels_per_tag.size() <= tags_.size() || (tags_.empty() && levels_per_tag.empty()));
  for (const auto& row : levels_per_tag) {
    WITAG_REQUIRE(row.empty() || row.size() == tx.size());
  }
  WITAG_REQUIRE(levels_per_tag.size() <= 64);
  WITAG_REQUIRE(extra_noise.empty() || extra_noise.size() == tx.size());
  if (!cache_valid_) rebuild_cache();
  const double noise_var = noise_variance().value();
  const std::vector<double> interference = draw_interference(tx.size());

  // Compose the channel once per distinct tag-assert mask instead of
  // once per symbol: across a query only a handful of masks occur (no
  // tag asserted, one tag asserted, ...), so the 64-bin delta adds hoist
  // out of the symbol loop. Mask 0 is pre-seeded with the base CFR.
  std::vector<std::uint64_t> composed_masks{0};
  std::vector<phy::FreqSymbol> composed{h_base_};

  std::vector<phy::FreqSymbol> rx(tx.size());
  for (std::size_t s = 0; s < tx.size(); ++s) {
    std::uint64_t mask = 0;
    for (std::size_t t = 0; t < levels_per_tag.size(); ++t) {
      const auto& row = levels_per_tag[t];
      if (!row.empty() && (row[s] & 1u) != 0) mask |= std::uint64_t{1} << t;
    }
    std::size_t slot = 0;
    while (slot < composed_masks.size() && composed_masks[slot] != mask) {
      ++slot;
    }
    if (slot == composed_masks.size()) {
      phy::FreqSymbol h = h_base_;
      for (std::size_t t = 0; t < levels_per_tag.size(); ++t) {
        if ((mask >> t & 1u) == 0) continue;
        for (unsigned bin = 0; bin < phy::kFftSize; ++bin) {
          h[bin] += tag_delta_[t][bin];
        }
      }
      composed_masks.push_back(mask);
      composed.push_back(h);
    }
    const phy::FreqSymbol& h = composed[slot];
    const double var = noise_var + interference[s] +
                       (extra_noise.empty() ? 0.0 : extra_noise[s]);
    for (unsigned bin = 0; bin < phy::kFftSize; ++bin) {
      if (h[bin] == Cx{} && tx[s][bin] == Cx{}) continue;
      rx[s][bin] = h[bin] * tx[s][bin] + rng_.complex_normal(var);
    }
  }
  return rx;
}

util::Db ChannelModel::mean_snr_db() const {
  if (!cache_valid_) rebuild_cache();
  double acc = 0.0;
  unsigned used = 0;
  for (unsigned bin = 0; bin < phy::kFftSize; ++bin) {
    if (!logical_subcarrier(bin)) continue;
    acc += std::norm(h_base_[bin]);
    ++used;
  }
  return util::linear_to_db(acc / used / noise_variance().value());
}

util::Db ChannelModel::tag_perturbation_db() const {
  WITAG_REQUIRE(!tags_.empty());
  if (!cache_valid_) rebuild_cache();
  double acc = 0.0;
  unsigned used = 0;
  for (unsigned bin = 0; bin < phy::kFftSize; ++bin) {
    if (!logical_subcarrier(bin)) continue;
    const double denom = std::norm(h_base_[bin]);
    if (denom <= 0.0) continue;
    acc += std::norm(tag_delta_[0][bin]) / denom;
    ++used;
  }
  return util::linear_to_db(acc / used);
}

}  // namespace witag::channel
