// The tag as a modulated reflector.
//
// A WiTAG tag is an antenna behind an RF switch. Section 5 of the paper
// describes two designs:
//  - kOpenShort: the antenna toggles between open circuit (non-reflective,
//    reflection coefficient 0) and short circuit (reflective, coefficient 1).
//  - kPhaseFlip: the antenna always reflects but two different-length
//    short-circuited stubs flip the reflected phase between 0 and 180
//    degrees (coefficients +1 and -1), doubling the channel change
//    (Figure 3) for the same geometry.
//
// The tag's contribution to the channel is gamma(level) * coupling, where
// the coupling is the two-hop client -> tag -> AP path gain.
#pragma once

#include <complex>

#include "channel/geometry.hpp"
#include "util/units.hpp"

namespace witag::channel {

enum class TagMode { kOpenShort, kPhaseFlip };

struct TagPathConfig {
  Point2 position;
  /// Antenna coupling amplitude (aperture/gain factor of the tag antenna,
  /// dimensionless; calibrated in DESIGN.md section 2).
  double strength = 7.0;
  TagMode mode = TagMode::kPhaseFlip;
};

/// Reflection coefficient for a logical switch level. `asserted` is the
/// state the tag drives while corrupting a subframe; the deasserted state
/// is what the receiver's channel estimate absorbs.
std::complex<double> tag_gamma(TagMode mode, bool asserted);

/// Two-hop coupling gain client/tx -> tag -> AP/rx (excluding gamma),
/// including wall losses on both hops.
std::complex<double> tag_coupling(const TagPathConfig& tag, Point2 tx,
                                  Point2 rx, const FloorPlan& plan,
                                  util::Hertz freq, util::Hertz offset);

/// Magnitude of the channel change |h(asserted) - h(deasserted)| for the
/// tag's two states: |gamma_a - gamma_d| * |coupling|. This is the vector
/// the paper's Figure 3 wants maximized.
double channel_change_magnitude(const TagPathConfig& tag, Point2 tx, Point2 rx,
                                const FloorPlan& plan, util::Hertz freq);

}  // namespace witag::channel
