// Propagation primitives: complex amplitude gains for the direct path and
// for two-hop reflected paths.
//
// The reflected-path model follows the radar-equation form the paper uses
// to explain Figure 5: received reflected power scales as 1/(Ds^2 * Dr^2)
// where Ds and Dr are the reflector's distances to sender and receiver,
// so the amplitude scales as 1/(Ds * Dr).
//
// Distances, frequencies and losses cross this boundary as strong unit
// types (util::Meters / util::Hertz / util::Db) so a caller can never
// hand a dB gain where a dBm power belongs or swap a distance for a
// frequency without a compile error.
#pragma once

#include <complex>

#include "util/units.hpp"

namespace witag::channel {

/// Complex free-space gain of a direct path of length `dist` at carrier
/// `freq` for the signal component at baseband offset `offset`
/// (subcarrier frequency): amplitude lambda/(4 pi d), phase -2 pi d f / c.
/// Requires dist > 0.
std::complex<double> direct_gain(util::Meters dist, util::Hertz freq,
                                 util::Hertz offset = util::Hertz{0.0});

/// Complex gain of a two-hop path sender -> reflector -> receiver.
/// `strength` is the reflector's dimensionless amplitude reflectivity
/// (aperture/RCS factor); amplitude = strength * lambda^2 /
/// ((4 pi)^(3/2) * ds * dr), phase from the total path length.
/// Requires ds > 0 and dr > 0.
std::complex<double> reflected_gain(util::Meters ds, util::Meters dr,
                                    double strength, util::Hertz freq,
                                    util::Hertz offset = util::Hertz{0.0});

/// Applies a penetration power loss to a complex gain.
std::complex<double> attenuate(std::complex<double> gain, util::Db loss);

}  // namespace witag::channel
