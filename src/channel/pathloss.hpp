// Propagation primitives: complex amplitude gains for the direct path and
// for two-hop reflected paths.
//
// The reflected-path model follows the radar-equation form the paper uses
// to explain Figure 5: received reflected power scales as 1/(Ds^2 * Dr^2)
// where Ds and Dr are the reflector's distances to sender and receiver,
// so the amplitude scales as 1/(Ds * Dr).
#pragma once

#include <complex>

namespace witag::channel {

/// Complex free-space gain of a direct path of length `dist_m` at carrier
/// `freq_hz` for the signal component at baseband offset `offset_hz`
/// (subcarrier frequency): amplitude lambda/(4 pi d), phase -2 pi d f / c.
/// Requires dist_m > 0.
std::complex<double> direct_gain(double dist_m, double freq_hz,
                                 double offset_hz = 0.0);

/// Complex gain of a two-hop path sender -> reflector -> receiver.
/// `strength` is the reflector's dimensionless amplitude reflectivity
/// (aperture/RCS factor); amplitude = strength * lambda^2 /
/// ((4 pi)^(3/2) * ds * dr), phase from the total path length.
/// Requires ds_m > 0 and dr_m > 0.
std::complex<double> reflected_gain(double ds_m, double dr_m, double strength,
                                    double freq_hz, double offset_hz = 0.0);

/// Applies a penetration loss in dB to a complex gain.
std::complex<double> attenuate(std::complex<double> gain, double loss_db);

}  // namespace witag::channel
