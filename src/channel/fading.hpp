// Temporal channel variation: "people walking around" during the paper's
// experiments.
//
// Two effects are modeled:
//  - A few moving scatterers (random-walk positions) whose reflected
//    paths slowly change the multipath profile. WiFi coherence time is
//    ~100 ms (paper footnote 2), far longer than one A-MPDU, so the
//    process advances between PPDUs and is frozen within one.
//  - Occasional deep fades: Poisson-arriving blocking events (somebody
//    steps into the first Fresnel zone) that attenuate the direct path
//    for an exponentially distributed duration.
#pragma once

#include <span>
#include <vector>

#include "channel/reflector.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace witag::channel {

struct FadingConfig {
  unsigned n_scatterers = 3;         ///< Number of moving "people".
  double scatterer_strength = 1.2;   ///< Amplitude reflectivity of a person.
  double walk_speed_mps = 0.8;       ///< RMS walking speed.
  double area_min_x = 0.0;           ///< Scatterers stay in this box [m].
  double area_max_x = 18.0;
  double area_min_y = 0.0;
  double area_max_y = 7.0;
  util::Hertz blocking_rate_hz{0.05};  ///< Deep-fade arrivals per second.
  util::Seconds blocking_mean_s{0.4};  ///< Mean blocking duration.
  util::Db blocking_loss_db{8.0};  ///< Direct-path loss while blocked.

  /// Co-channel interference from other WiFi networks (the paper cites
  /// "interference from other devices" as the residual error source):
  /// Poisson bursts that raise the noise floor for the symbols they
  /// overlap. rate 0 disables.
  util::Hertz interference_rate_hz{40.0};   ///< Bursts per second.
  util::Micros interference_mean_us{300.0};  ///< Mean burst duration.
  util::Dbm interference_power_dbm{-50.0};  ///< Received burst power.
};

/// Evolves the moving-scatterer and blocking state over simulated time.
class FadingProcess {
 public:
  // Sink parameter: the process owns a dedicated child stream the
  // caller hands in (split()/derived), so the copy is the handoff.
  FadingProcess(const FadingConfig& cfg, util::Rng rng);  // witag-lint: allow(rng-copy)

  /// Advances simulated time by `dt` (random-walk steps and blocking
  /// arrivals/expiries).
  void advance(util::Seconds dt);

  /// Current moving scatterers (positions change as time advances).
  std::span<const StaticReflector> scatterers() const { return scatterers_; }

  /// Extra direct-path loss at the current instant (0 dB when clear).
  util::Db direct_excess_loss_db() const;

 private:
  FadingConfig cfg_;
  util::Rng rng_;
  std::vector<StaticReflector> scatterers_;
  double blocked_until_s_ = 0.0;
  double now_s_ = 0.0;
};

}  // namespace witag::channel
