// FreeRider baseline (Zhang et al., CoNEXT 2017), per the WiTAG paper's
// section 2: the tag phase-flips whole 802.11g OFDM symbols (0 or 180
// degrees per symbol) while shifting the packet to a secondary channel;
// a second AP demodulates the shifted copy and the host compares the two
// receptions symbol-by-symbol to extract one tag bit per OFDM symbol.
//
// Inherits HitchHike's deployment constraints: second AP, modified AP,
// no encryption, and a >= 20 MHz channel-shift oscillator.
#pragma once

#include <cstdint>
#include <cstddef>

#include "baselines/common.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace witag::baselines {

struct FreeriderConfig {
  TwoApGeometry geometry;
  double tag_strength = 7.0;
  util::Hertz carrier_hz = util::kWifi24GHz;
  util::Dbm tx_power_dbm{15.0};
  util::Db noise_figure_db{7.0};
  /// OFDM symbols per query packet (802.11g frame).
  std::size_t symbols_per_packet = 200;
  bool modified_ap = true;
  bool encrypted = false;
  double temperature_offset_c = 0.0;
};

struct FreeriderResult {
  std::size_t tag_bits = 0;
  std::size_t bit_errors = 0;
  double ber = 1.0;
  double instantaneous_rate_kbps = 0.0;  ///< One bit per 4 us symbol.
  bool works = true;
  const char* failure = "";
};

FreeriderResult run_freerider(const FreeriderConfig& cfg,
                              std::size_t n_packets, util::Rng& rng);

}  // namespace witag::baselines
