#include "baselines/common.hpp"

#include <cmath>

#include "channel/pathloss.hpp"
#include "util/require.hpp"

namespace witag::baselines {

BackscatterLink two_ap_link(const TwoApGeometry& geo, double tag_strength,
                            util::Hertz carrier) {
  BackscatterLink link;
  link.direct_amp = std::abs(channel::direct_gain(
      util::Meters{channel::distance(geo.client, geo.ap1)}, carrier));
  link.backscatter_amp = std::abs(channel::reflected_gain(
      util::Meters{channel::distance(geo.client, geo.tag)},
      util::Meters{channel::distance(geo.tag, geo.ap2)}, tag_strength,
      carrier));
  return link;
}

double victim_collision_probability(double tag_tx_per_s, double tag_tx_us,
                                    double victim_packet_us) {
  WITAG_REQUIRE(tag_tx_per_s >= 0.0 && tag_tx_us >= 0.0 && victim_packet_us >= 0.0);
  const double window_s = (tag_tx_us + victim_packet_us) * 1e-6;
  return 1.0 - std::exp(-tag_tx_per_s * window_s);
}

}  // namespace witag::baselines
