// Requirements-matrix harness: runs WiTAG and the three PHY-layer
// baselines through the same gates the paper's sections 1-2 discuss and
// produces one row per system (encryption, AP modification, standards,
// secondary-channel interference, oscillator demands, throughput).
#pragma once

#include <string>
#include <vector>
#include <cstddef>
#include <cstdint>
#include "util/units.hpp"

namespace witag::baselines {

struct SystemRow {
  std::string system;
  std::string standards;        ///< WiFi generations it rides on.
  bool works_unmodified_ap = false;
  bool works_encrypted = false;
  bool needs_second_ap = false;
  bool interferes_secondary = false;
  util::Hertz oscillator_hz{};
  util::Watts oscillator_power{};
  double throughput_kbps = 0.0;  ///< Measured/representative tag rate.
  double measured_ber = 1.0;     ///< In its own best-case deployment.
};

/// Runs each system in its nominal deployment and under the gates;
/// the WiTAG row is measured with a short LOS session.
std::vector<SystemRow> build_comparison_matrix(std::uint64_t seed,
                                               std::size_t witag_rounds = 40,
                                               std::size_t baseline_packets = 40);

}  // namespace witag::baselines
