// MOXcatter baseline (Zhao et al., MobiSys 2018), per the WiTAG paper's
// section 2: spatial-stream backscatter for MIMO 802.11n. Because MIMO
// spatial multiplexing scrambles individual OFDM symbols across antennas,
// MOXcatter cannot flip per-symbol phases; it flips the phase of the
// reflected copy once per *packet*, giving one tag bit per packet.
//
// The model runs the real 2x2 MIMO substrate (phy/mimo) for the client
// transmission and detects the per-packet flip from the backscattered
// copy at the second AP.
#pragma once

#include <cstdint>
#include <cstddef>

#include "baselines/common.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace witag::baselines {

struct MoxcatterConfig {
  TwoApGeometry geometry;
  double tag_strength = 7.0;
  util::Hertz carrier_hz = util::kWifi24GHz;
  util::Dbm tx_power_dbm{15.0};
  util::Db noise_figure_db{7.0};
  /// OFDM symbols per MIMO packet.
  std::size_t symbols_per_packet = 100;
  /// Packet airtime including preamble/IFS [us] for the rate estimate.
  double packet_airtime_us = 500.0;
  bool modified_ap = true;
  bool encrypted = false;
  double temperature_offset_c = 0.0;
};

struct MoxcatterResult {
  std::size_t tag_bits = 0;
  std::size_t bit_errors = 0;
  double ber = 1.0;
  double instantaneous_rate_kbps = 0.0;  ///< One bit per packet.
  bool works = true;
  const char* failure = "";
};

MoxcatterResult run_moxcatter(const MoxcatterConfig& cfg,
                              std::size_t n_packets, util::Rng& rng);

}  // namespace witag::baselines
