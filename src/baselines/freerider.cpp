#include "baselines/freerider.hpp"

#include <cmath>
#include <cstddef>

#include "phy/ofdm.hpp"
#include "util/bits.hpp"
#include "util/units.hpp"

namespace witag::baselines {

FreeriderResult run_freerider(const FreeriderConfig& cfg,
                              std::size_t n_packets, util::Rng& rng) {
  FreeriderResult result;
  if (!cfg.modified_ap) {
    result.works = false;
    result.failure = "unmodified AP drops CRC-broken backscatter packets";
    return result;
  }
  if (cfg.encrypted) {
    result.works = false;
    result.failure = "symbol translation breaks ciphertext; packets cannot "
                     "be decrypted";
    return result;
  }
  const double cfo_hz = 0.006 * cfg.temperature_offset_c *
                        kChannelShiftOscillatorHz;
  if (std::abs(cfo_hz) > kReceiverCfoToleranceHz) {
    result.works = false;
    result.failure = "ring-oscillator drift pushed the shifted channel "
                     "outside the receiver's lock range";
    return result;
  }

  const BackscatterLink link =
      two_ap_link(cfg.geometry, cfg.tag_strength, cfg.carrier_hz);
  const double p_tx = util::to_watts(cfg.tx_power_dbm).value();
  // Per-symbol correlation: the host correlates AP2's received symbol
  // against the reference symbol it reconstructs from AP1's reception.
  // With N_used subcarriers the effective amplitude gain is sqrt(N).
  const double sym_amp = link.backscatter_amp * std::sqrt(p_tx / 56.0);
  const double noise_var =
      util::thermal_noise(util::Hertz{312'500.0}).value() *
      util::db_to_linear(cfg.noise_figure_db);

  for (std::size_t pkt = 0; pkt < n_packets; ++pkt) {
    const util::BitVec tag_bits = rng.bits(cfg.symbols_per_packet);
    for (std::size_t s = 0; s < cfg.symbols_per_packet; ++s) {
      // Coherent sum over 56 known subcarriers: signal amplitude adds,
      // noise adds in power.
      const double flip = (tag_bits[s] & 1u) ? -1.0 : 1.0;
      util::Cx corr{};
      for (unsigned k = 0; k < 56; ++k) {
        const util::Cx rx =
            util::Cx{flip * sym_amp, 0.0} + rng.complex_normal(noise_var);
        corr += rx;  // reference is +1 per subcarrier
      }
      const std::uint8_t detected = corr.real() < 0.0 ? 1 : 0;
      result.tag_bits += 1;
      result.bit_errors += (detected != (tag_bits[s] & 1u)) ? 1u : 0u;
    }
  }
  result.ber = result.tag_bits == 0
                   ? 1.0
                   : static_cast<double>(result.bit_errors) /
                         static_cast<double>(result.tag_bits);
  result.instantaneous_rate_kbps = 1e3 / 4.0;  // one bit per 4 us symbol
  return result;
}

}  // namespace witag::baselines
