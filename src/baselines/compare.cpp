#include "baselines/compare.hpp"

#include "baselines/freerider.hpp"
#include "baselines/hitchhike.hpp"
#include "baselines/moxcatter.hpp"
#include "tag/power.hpp"
#include "witag/session.hpp"
#include "util/rng.hpp"
#include <cstddef>
#include <cstdint>

namespace witag::baselines {
namespace {

util::Watts ring_power() {
  return tag::oscillator_power(tag::OscillatorKind::kRing,
                               util::Hertz{kChannelShiftOscillatorHz});
}

}  // namespace

std::vector<SystemRow> build_comparison_matrix(std::uint64_t seed,
                                               std::size_t witag_rounds,
                                               std::size_t baseline_packets) {
  std::vector<SystemRow> rows;
  util::Rng rng(seed);

  {
    SystemRow row;
    row.system = "WiTAG";
    row.standards = "802.11n/ac (ax-ready)";
    row.works_unmodified_ap = true;
    row.needs_second_ap = false;
    row.interferes_secondary = false;
    row.oscillator_hz = util::Hertz{50e3};
    row.oscillator_power =
        tag::oscillator_power(tag::OscillatorKind::kCrystal, row.oscillator_hz);

    // Measured on the LOS testbed, open network.
    auto cfg = core::los_testbed_config(util::Meters{1.0}, seed);
    core::Session session(cfg);
    const auto stats = session.run(witag_rounds);
    row.throughput_kbps = stats.metrics.goodput_kbps();
    row.measured_ber = stats.metrics.ber();

    // Encrypted network: same measurement under CCMP.
    auto enc_cfg = core::los_testbed_config(util::Meters{1.0}, seed + 1);
    enc_cfg.security.mode = mac::Security::kCcmp;
    enc_cfg.security.ccmp_key = {0, 1, 2,  3,  4,  5,  6,  7,
                                 8, 9, 10, 11, 12, 13, 14, 15};
    core::Session enc_session(enc_cfg);
    const auto enc_stats = enc_session.run(witag_rounds);
    row.works_encrypted = enc_stats.metrics.ber() < 0.1;
    rows.push_back(row);
  }

  {
    SystemRow row;
    row.system = "HitchHike";
    row.standards = "802.11b only";
    row.needs_second_ap = true;
    row.interferes_secondary = true;
    row.oscillator_hz = util::Hertz{kChannelShiftOscillatorHz};
    row.oscillator_power = ring_power();

    HitchhikeConfig cfg;
    const auto nominal = run_hitchhike(cfg, baseline_packets, rng);
    row.throughput_kbps = nominal.instantaneous_rate_kbps;
    row.measured_ber = nominal.ber;

    HitchhikeConfig unmod = cfg;
    unmod.modified_ap = false;
    row.works_unmodified_ap = run_hitchhike(unmod, 1, rng).works;

    HitchhikeConfig enc = cfg;
    enc.encrypted = true;
    row.works_encrypted = run_hitchhike(enc, 1, rng).works;
    rows.push_back(row);
  }

  {
    SystemRow row;
    row.system = "FreeRider";
    row.standards = "802.11g";
    row.needs_second_ap = true;
    row.interferes_secondary = true;
    row.oscillator_hz = util::Hertz{kChannelShiftOscillatorHz};
    row.oscillator_power = ring_power();

    FreeriderConfig cfg;
    const auto nominal = run_freerider(cfg, baseline_packets, rng);
    row.throughput_kbps = nominal.instantaneous_rate_kbps;
    row.measured_ber = nominal.ber;

    FreeriderConfig unmod = cfg;
    unmod.modified_ap = false;
    row.works_unmodified_ap = run_freerider(unmod, 1, rng).works;

    FreeriderConfig enc = cfg;
    enc.encrypted = true;
    row.works_encrypted = run_freerider(enc, 1, rng).works;
    rows.push_back(row);
  }

  {
    SystemRow row;
    row.system = "MOXcatter";
    row.standards = "802.11n (MIMO)";
    row.needs_second_ap = true;
    row.interferes_secondary = true;
    row.oscillator_hz = util::Hertz{kChannelShiftOscillatorHz};
    row.oscillator_power = ring_power();

    MoxcatterConfig cfg;
    const auto nominal = run_moxcatter(cfg, baseline_packets, rng);
    row.throughput_kbps = nominal.instantaneous_rate_kbps;
    row.measured_ber = nominal.ber;

    MoxcatterConfig unmod = cfg;
    unmod.modified_ap = false;
    row.works_unmodified_ap = run_moxcatter(unmod, 1, rng).works;

    MoxcatterConfig enc = cfg;
    enc.encrypted = true;
    row.works_encrypted = run_moxcatter(enc, 1, rng).works;
    rows.push_back(row);
  }

  return rows;
}

}  // namespace witag::baselines
