#include "baselines/moxcatter.hpp"

#include <cmath>
#include <cstddef>

#include "phy/constellation.hpp"
#include "phy/mimo.hpp"
#include "util/units.hpp"
#include "util/bits.hpp"

namespace witag::baselines {

MoxcatterResult run_moxcatter(const MoxcatterConfig& cfg,
                              std::size_t n_packets, util::Rng& rng) {
  MoxcatterResult result;
  if (!cfg.modified_ap) {
    result.works = false;
    result.failure = "unmodified AP drops CRC-broken backscatter packets";
    return result;
  }
  if (cfg.encrypted) {
    result.works = false;
    result.failure = "per-packet translation still corrupts ciphertext";
    return result;
  }
  const double cfo_hz = 0.006 * cfg.temperature_offset_c *
                        kChannelShiftOscillatorHz;
  if (std::abs(cfo_hz) > kReceiverCfoToleranceHz) {
    result.works = false;
    result.failure = "ring-oscillator drift pushed the shifted channel "
                     "outside the receiver's lock range";
    return result;
  }

  const BackscatterLink link =
      two_ap_link(cfg.geometry, cfg.tag_strength, cfg.carrier_hz);
  const double p_tx = util::to_watts(cfg.tx_power_dbm).value();
  const double amp = link.backscatter_amp * std::sqrt(p_tx / 112.0);  // 2 streams
  const double noise_var =
      util::thermal_noise(util::Hertz{312'500.0}).value() *
      util::db_to_linear(cfg.noise_figure_db);

  // Random 2x2 channel per packet (the backscatter hop decorrelates the
  // streams); detection integrates over the whole packet.
  for (std::size_t pkt = 0; pkt < n_packets; ++pkt) {
    const std::uint8_t tag_bit =
        static_cast<std::uint8_t>(rng.bits(1)[0] & 1u);
    const double flip = tag_bit ? -1.0 : 1.0;

    // Per-subcarrier 2x2 channels for this packet.
    std::vector<phy::mimo::Matrix2> h(phy::kDataSubcarriers);
    for (auto& m : h) {
      for (auto& row : m.m) {
        for (auto& e : row) e = rng.complex_normal(1.0);
      }
    }

    util::Cx corr{};
    for (std::size_t s = 0; s < cfg.symbols_per_packet; ++s) {
      // Known QPSK pilots on both streams (the host reconstructs the
      // clean transmission from AP1's decode).
      util::BitVec bits = rng.bits(2 * 2 * phy::kDataSubcarriers);
      phy::mimo::MimoSymbol tx = phy::mimo::map_symbol(
          std::span(bits).subspan(0, 2 * phy::kDataSubcarriers),
          std::span(bits).subspan(2 * phy::kDataSubcarriers),
          phy::Modulation::kQpsk);
      phy::mimo::MimoSymbol rx = phy::mimo::apply_channel(tx, h);
      for (unsigned stream = 0; stream < phy::mimo::kStreams; ++stream) {
        for (std::size_t k = 0; k < phy::kDataSubcarriers; ++k) {
          const util::Cx clean = rx.points[stream][k] * amp;
          const util::Cx noisy =
              clean * flip + rng.complex_normal(noise_var);
          corr += noisy * std::conj(clean);
        }
      }
    }
    const std::uint8_t detected = corr.real() < 0.0 ? 1 : 0;
    result.tag_bits += 1;
    result.bit_errors += (detected != tag_bit) ? 1 : 0;
  }
  result.ber = result.tag_bits == 0
                   ? 1.0
                   : static_cast<double>(result.bit_errors) /
                         static_cast<double>(result.tag_bits);
  result.instantaneous_rate_kbps = 1e3 / cfg.packet_airtime_us;
  return result;
}  // namespace witag::baselines

}  // namespace witag::baselines
