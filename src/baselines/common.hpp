// Shared pieces for the PHY-layer backscatter baselines (HitchHike,
// FreeRider, MOXcatter): the two-AP deployment geometry, the
// tag-as-codeword-translator link budget, and the secondary-channel
// interference accounting that WiTAG avoids by construction.
#pragma once

#include <complex>
#include <cstdint>

#include "channel/geometry.hpp"
#include "util/units.hpp"

namespace witag::baselines {

/// Deployment geometry common to the two-AP baselines: the querying
/// client, the tag, the primary AP (receives the original packet) and
/// the secondary AP (receives the channel-shifted backscatter).
struct TwoApGeometry {
  channel::Point2 client{0.0, 0.0};
  channel::Point2 tag{1.0, 0.0};
  channel::Point2 ap1{8.0, 0.0};
  channel::Point2 ap2{3.0, 2.0};
};

/// Link budget for a backscatter hop at the given carrier.
struct BackscatterLink {
  double direct_amp = 0.0;       ///< Client -> AP1 amplitude gain.
  double backscatter_amp = 0.0;  ///< Client -> tag -> AP2 amplitude gain.
};

/// Computes amplitude gains for the two-AP layout. `tag_strength` is the
/// same dimensionless coupling used by the WiTAG tag model.
BackscatterLink two_ap_link(const TwoApGeometry& geo, double tag_strength,
                            util::Hertz carrier);

/// Secondary-channel interference: backscatter tags shift their signal
/// onto an adjacent channel without carrier sensing (paper section 2),
/// so a victim network there sees unslotted-ALOHA-style collisions.
/// Returns the victim's packet collision probability given the tag's
/// transmission rate/duration and the victim's packet duration:
/// p = 1 - exp(-rate * (t_tag + t_victim)).
double victim_collision_probability(double tag_tx_per_s, double tag_tx_us,
                                    double victim_packet_us);

/// Minimum oscillator frequency a channel-shifting tag needs [Hz]: the
/// secondary channel must be >= 20 MHz away (paper section 2).
inline constexpr double kChannelShiftOscillatorHz = 20e6;

/// Carrier-frequency error a receiver tolerates before the shifted
/// backscatter falls outside its lock range [Hz] (order of the 802.11
/// +/-25 ppm budget at 2.4 GHz, ~60 kHz, plus margin).
inline constexpr double kReceiverCfoToleranceHz = 150e3;

}  // namespace witag::baselines
