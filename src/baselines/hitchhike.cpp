#include "baselines/hitchhike.hpp"

#include <cmath>
#include <cstddef>

#include "util/bits.hpp"
#include "util/units.hpp"
#include "util/complexvec.hpp"

namespace witag::baselines {

HitchhikeResult run_hitchhike(const HitchhikeConfig& cfg,
                              std::size_t n_packets, util::Rng& rng) {
  HitchhikeResult result;

  // Compatibility gates first (these are the paper's core claims).
  if (!cfg.modified_ap) {
    result.works = false;
    result.failure = "unmodified AP drops CRC-broken backscatter packets";
    return result;
  }
  if (cfg.encrypted) {
    result.works = false;
    result.failure = "codeword translation breaks ciphertext; ICV fails";
    return result;
  }
  // Ring-oscillator drift moves the 20 MHz channel shift; past the
  // receiver's CFO tolerance AP2 cannot lock to the backscatter at all.
  const double cfo_hz = 0.006 * cfg.temperature_offset_c *
                        kChannelShiftOscillatorHz;
  if (std::abs(cfo_hz) > kReceiverCfoToleranceHz) {
    result.works = false;
    result.failure = "ring-oscillator drift pushed the shifted channel "
                     "outside the receiver's lock range";
    return result;
  }

  const BackscatterLink link =
      two_ap_link(cfg.geometry, cfg.tag_strength, cfg.carrier_hz);
  const double p_tx = util::to_watts(cfg.tx_power_dbm).value();
  const double chip_amp = link.backscatter_amp * std::sqrt(p_tx);
  const double noise_var =
      util::thermal_noise(util::Hertz{phy::dsss::kChipRateHz}).value() *
      util::db_to_linear(cfg.noise_figure_db);

  const bool qpsk = cfg.rate == phy::dsss::DsssRate::kDqpsk2Mbps;
  for (std::size_t pkt = 0; pkt < n_packets; ++pkt) {
    const util::BitVec data = rng.bits(cfg.packet_bytes * 8);
    const util::CxVec chips = phy::dsss::modulate(data, cfg.rate);
    // Codeword 0 is the differential phase reference; the tag keys its
    // flips to the data codewords that follow it.
    const std::size_t n_codewords = phy::dsss::codeword_count(chips) - 1;

    // Tag bits, one per data codeword; phase flip encodes a 1.
    const util::BitVec tag_bits = rng.bits(n_codewords);
    util::CxVec shifted(chips.size());
    for (unsigned c = 0; c < phy::dsss::kChipsPerBit; ++c) {
      shifted[c] = chips[c] * chip_amp + rng.complex_normal(noise_var);
    }
    for (std::size_t w = 0; w < n_codewords; ++w) {
      const double flip = (tag_bits[w] & 1u) ? -1.0 : 1.0;
      for (unsigned c = 0; c < phy::dsss::kChipsPerBit; ++c) {
        const std::size_t i = (w + 1) * phy::dsss::kChipsPerBit + c;
        shifted[i] = chips[i] * flip * chip_amp +
                     rng.complex_normal(noise_var);
      }
    }

    // Host extraction: XOR of the bits decoded at AP2 against the
    // original bits from AP1 (assumed clean: the direct link is strong).
    const util::BitVec rx_bits = phy::dsss::demodulate(shifted, cfg.rate);
    // A phase flip of codeword w toggles the *differential* decision at
    // w and at w+1; the host inverts that cumulative effect.
    util::BitVec recovered(n_codewords, 0);
    std::uint8_t running = 0;
    for (std::size_t w = 0; w < n_codewords; ++w) {
      // Differential re-encoding: the flip sequence seen at codeword w
      // equals tag_bits[w] XOR tag_bits[w-1] in the differential domain.
      const std::size_t bit_idx = qpsk ? 2 * w : w;
      const std::uint8_t diff =
          static_cast<std::uint8_t>((rx_bits[bit_idx] ^ data[bit_idx]) & 1u);
      running ^= diff;
      recovered[w] = running;
    }

    result.tag_bits += n_codewords;
    result.bit_errors += util::hamming_distance(tag_bits, recovered);
  }

  result.ber = result.tag_bits == 0
                   ? 1.0
                   : static_cast<double>(result.bit_errors) /
                         static_cast<double>(result.tag_bits);
  const double codeword_rate =
      phy::dsss::kChipRateHz / phy::dsss::kChipsPerBit;
  result.instantaneous_rate_kbps = codeword_rate / 1e3;
  return result;
}

}  // namespace witag::baselines
