// HitchHike baseline (Zhang et al., SenSys 2016), as characterized in
// the WiTAG paper's section 2: a tag embeds data into 802.11b packets by
// codeword translation — flipping the phase of individual Barker
// codewords — while shifting the signal to a non-overlapping channel
// received by a second AP. The host XORs the bits decoded at both APs to
// extract the tag data.
//
// The model reproduces the paper's four compatibility complaints:
//  1. encryption: the translated packet is ciphertext with a broken
//     ICV/CRC, so nothing downstream of an unmodified receiver survives;
//  2. CRC: even open packets arrive CRC-broken at AP2, so an unmodified
//     AP drops them (requires_modified_ap);
//  3. 802.11b only;
//  4. needs the second AP.
#pragma once

#include <cstdint>
#include <cstddef>

#include "baselines/common.hpp"
#include "phy/dsss.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace witag::baselines {

struct HitchhikeConfig {
  TwoApGeometry geometry;
  double tag_strength = 7.0;
  util::Hertz carrier_hz = util::kWifi24GHz;
  util::Dbm tx_power_dbm{15.0};
  util::Db noise_figure_db{7.0};
  phy::dsss::DsssRate rate = phy::dsss::DsssRate::kDbpsk1Mbps;
  /// Packet payload the client transmits per query [bytes].
  std::size_t packet_bytes = 128;
  /// AP2 accepts CRC-broken packets (the modification HitchHike needs).
  bool modified_ap = true;
  /// The network encrypts packets (WEP/WPA): extraction fails.
  bool encrypted = false;
  /// Ring-oscillator temperature offset from calibration [C]; drives
  /// the channel-shift CFO (paper footnote 4).
  double temperature_offset_c = 0.0;
};

struct HitchhikeResult {
  std::size_t tag_bits = 0;
  std::size_t bit_errors = 0;
  double ber = 1.0;
  /// Tag data rate while a packet is on the air [Kbps].
  double instantaneous_rate_kbps = 0.0;
  /// False when a compatibility gate (unmodified AP, encryption, CFO)
  /// prevents extraction entirely.
  bool works = true;
  const char* failure = "";
};

/// Runs `n_packets` query packets through the HitchHike model.
HitchhikeResult run_hitchhike(const HitchhikeConfig& cfg,
                              std::size_t n_packets, util::Rng& rng);

}  // namespace witag::baselines
