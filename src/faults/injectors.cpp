#include "faults/injectors.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "util/require.hpp"

namespace witag::faults {
namespace {

/// OFDM symbol duration of the 20 MHz PHY [us].
constexpr double kSymbolUs = 4.0;

/// Sub-stream indices; fixed forever so a seed reproduces the same
/// schedule across versions.
enum SubStream : std::uint64_t {
  kInterferenceStream = 0,
  kTriggerStream = 1,
  kClockStream = 2,
  kMacStream = 3,
  kBrownoutStream = 4,
};

}  // namespace

OnOffProcess::OnOffProcess(double duty, util::Seconds mean_on_s, util::Rng rng)  // witag-lint: allow(rng-copy)
    : rng_(rng) {
  WITAG_REQUIRE(duty > 0.0 && duty < 1.0);
  WITAG_REQUIRE(mean_on_s > util::Seconds{0.0});
  mean_s_[1] = mean_on_s.value();
  mean_s_[0] = mean_on_s.value() * (1.0 - duty) / duty;
  // Start in the stationary distribution so short runs see the
  // configured duty immediately instead of an Off-biased transient.
  on_ = rng_.bernoulli(duty);
  remaining_s_ = draw_sojourn_s();
}

double OnOffProcess::draw_sojourn_s() {
  double u = rng_.uniform();
  while (u <= 0.0) u = rng_.uniform();
  return -mean_s_[on_ ? 1 : 0] * std::log(u);
}

void OnOffProcess::advance(util::Seconds dt) {
  WITAG_REQUIRE(dt >= util::Seconds{0.0});
  double left = dt.value();
  while (left >= remaining_s_) {
    left -= remaining_s_;
    on_ = !on_;
    remaining_s_ = draw_sojourn_s();
  }
  remaining_s_ -= left;
}

FaultSet::FaultSet(const FaultPlan& plan, std::uint64_t seed)
    : plan_(plan),
      trigger_rng_(util::Rng::derive_seed(seed, kTriggerStream)),
      clock_rng_(util::Rng::derive_seed(seed, kClockStream)),
      mac_rng_(util::Rng::derive_seed(seed, kMacStream)) {
  if (plan_.interference.enabled()) {
    WITAG_REQUIRE(plan_.interference.bad_duty < 1.0);
    interference_.emplace(plan_.interference.bad_duty,
                          plan_.interference.mean_bad_s,
                          util::Rng(util::Rng::derive_seed(
                              seed, kInterferenceStream)));
  }
  if (plan_.brownout.enabled()) {
    WITAG_REQUIRE(plan_.brownout.duty < 1.0);
    brownout_.emplace(plan_.brownout.duty, plan_.brownout.mean_off_s,
                      util::Rng(util::Rng::derive_seed(seed,
                                                       kBrownoutStream)));
  }
}

void FaultSet::advance(util::Seconds dt) {
  if (interference_) interference_->advance(dt);
  if (brownout_) brownout_->advance(dt);
}

std::vector<double> FaultSet::interference_noise(std::size_t n_symbols) {
  if (!interference_) return {};
  std::vector<double> extra(n_symbols, 0.0);
  // The interferer's 20 MHz energy spreads over all 64 FFT bins (same
  // convention as ChannelModel::draw_interference).
  const double per_subcarrier =
      util::to_watts(plan_.interference.bad_power_dbm).value() / 64.0;
  const util::Seconds step = util::to_seconds(util::Micros{kSymbolUs});
  for (std::size_t s = 0; s < n_symbols; ++s) {
    if (interference_->on()) {
      extra[s] = per_subcarrier;
      ++counts_.interference_symbols;
    }
    interference_->advance(step);
  }
  return extra;
}

bool FaultSet::draw_trigger_miss() {
  return trigger_rng_.bernoulli(plan_.trigger.miss_rate);
}

bool FaultSet::draw_false_wakeup() {
  return trigger_rng_.bernoulli(plan_.trigger.false_rate);
}

ClockFault FaultSet::draw_clock_fault() {
  ClockFault fault;
  if (!plan_.clock.enabled()) {
    // Burn the same two draws so enabling an unrelated injector later in
    // the plan never shifts this stream.
    clock_rng_.normal();
    clock_rng_.normal();
    return fault;
  }
  drift_ += clock_rng_.normal(0.0, plan_.clock.drift_sigma);
  drift_ = std::clamp(drift_, -plan_.clock.drift_max, plan_.clock.drift_max);
  fault.drift_frac = drift_;
  fault.jitter_us =
      clock_rng_.normal(0.0, plan_.clock.jitter_sigma_us.value());
  return fault;
}

MacFault FaultSet::draw_mac_fault() {
  MacFault fault;
  // Unconditional draws in a fixed order keep the stream stable across
  // plans that enable only a subset of the MAC faults.
  const bool abort = mac_rng_.bernoulli(plan_.mac.ampdu_abort_rate);
  const double abort_u = mac_rng_.uniform();
  const bool lose = mac_rng_.bernoulli(plan_.mac.ba_loss_rate);
  const bool truncate = mac_rng_.bernoulli(plan_.mac.ba_truncate_rate);
  const double truncate_u = mac_rng_.uniform();
  fault.abort_ampdu = abort;
  fault.abort_frac = abort ? abort_u : 1.0;
  fault.lose_ba = lose;
  fault.truncate_ba = truncate;
  fault.truncate_frac = truncate ? truncate_u : 1.0;
  return fault;
}

bool FaultSet::brownout_now() const {
  return brownout_ && brownout_->on();
}

FaultPlan hostile_plan(double intensity, unsigned enabled) {
  WITAG_REQUIRE(intensity >= 0.0 && intensity <= 1.0);
  FaultPlan plan;
  if (intensity <= 0.0) return plan;
  if ((enabled & 0x01u) != 0) {
    plan.interference.bad_duty = 0.45 * intensity;
    plan.interference.mean_bad_s = util::Seconds{0.002};
    plan.interference.bad_power_dbm = util::Dbm{-52.0};
  }
  if ((enabled & 0x02u) != 0) {
    plan.trigger.miss_rate = 0.25 * intensity;
    plan.trigger.false_rate = 0.05 * intensity;
  }
  if ((enabled & 0x04u) != 0) {
    plan.clock.drift_sigma = 0.0015 * intensity;
    plan.clock.drift_max = 0.008;
    plan.clock.jitter_sigma_us = util::Micros{1.5 * intensity};
  }
  if ((enabled & 0x08u) != 0) {
    plan.mac.ba_loss_rate = 0.15 * intensity;
    plan.mac.ba_truncate_rate = 0.10 * intensity;
    plan.mac.ampdu_abort_rate = 0.10 * intensity;
  }
  if ((enabled & 0x10u) != 0) {
    plan.brownout.duty = 0.15 * intensity;
    plan.brownout.mean_off_s = util::Seconds{0.25};
  }
  return plan;
}

}  // namespace witag::faults
