// Deterministic fault-injection plans for the WiTAG testbed.
//
// The paper evaluates WiTAG in a benign lab; real deployments live with
// bursty co-channel interference, trigger false alarms/misses, tag
// clocks wandering off spec, lost block acks and harvester brownouts
// (GuardRider, FlexScatter). A FaultPlan describes those hostile-channel
// processes declaratively; the runtime state machines in injectors.hpp
// realize them from dedicated util::Rng sub-streams, so a fixed session
// seed reproduces the identical fault schedule at any --jobs count.
//
// Every injector at zero intensity is a no-op: the session's outputs are
// bit-identical to a run without a FaultPlan at all (golden-tested).
#pragma once

#include "util/units.hpp"

namespace witag::faults {

/// Bursty co-channel interference modeled as a Gilbert-Elliott good/bad
/// chain with exponential sojourns. While the chain sits in Bad, the
/// noise floor rises by `bad_power_dbm` (received burst power, spread
/// over the 64 FFT bins) for every OFDM symbol the state covers — so a
/// burst corrupts a contiguous run of subframes, exactly the error
/// pattern repetition FEC struggles with and MCS fallback survives.
struct InterferenceFaultConfig {
  /// Long-run fraction of time spent in the Bad state (0 disables).
  double bad_duty = 0.0;
  /// Mean Bad-state sojourn; the Good mean follows from the duty.
  util::Seconds mean_bad_s{0.002};
  /// Received interferer power while Bad.
  util::Dbm bad_power_dbm{-52.0};

  bool enabled() const { return bad_duty > 0.0; }
};

/// Trigger-detection faults at the tag: the addressed tag misses a real
/// query (comparator noise, envelope fade) or a non-addressed tag
/// falsely wakes and corrupts subframes that were never its to claim.
struct TriggerFaultConfig {
  /// P(addressed tag misses a query it should have detected) per round.
  double miss_rate = 0.0;
  /// P(a non-addressed tag falsely detects the query) per round per tag.
  double false_rate = 0.0;

  bool enabled() const { return miss_rate > 0.0 || false_rate > 0.0; }
};

/// Tag clock drift/jitter beyond the crystal spec: the fractional
/// frequency error random-walks round to round (temperature swings,
/// aging) and the detected trigger edge jitters (comparator noise), so
/// subframe boundaries smear into their neighbours.
struct ClockFaultConfig {
  /// Per-round random-walk step of the fractional frequency error.
  double drift_sigma = 0.0;
  /// Clamp on the accumulated |drift| (fractional).
  double drift_max = 0.008;
  /// Std-dev of the per-round trigger-edge timing jitter.
  util::Micros jitter_sigma_us{0.0};

  bool enabled() const {
    return drift_sigma > 0.0 || jitter_sigma_us > util::Micros{0.0};
  }
};

/// MAC-layer faults on the AP<->client exchange: the block ack dies on
/// the air (client reads nothing), its bitmap is truncated (trailing
/// subframes read as unacked), or the client's transmitter aborts the
/// A-MPDU mid-flight (trailing subframes never reach the AP).
struct MacFaultConfig {
  double ba_loss_rate = 0.0;
  double ba_truncate_rate = 0.0;
  double ampdu_abort_rate = 0.0;

  bool enabled() const {
    return ba_loss_rate > 0.0 || ba_truncate_rate > 0.0 ||
           ampdu_abort_rate > 0.0;
  }
};

/// Harvester starvation: brownout windows during which the tag can
/// neither detect triggers nor switch its reflector — every round that
/// starts inside a window is lost, and waiting (the supervisor's
/// backoff) genuinely helps because the window expires in simulated
/// time.
struct BrownoutFaultConfig {
  /// Long-run fraction of time the tag is browned out (0 disables).
  double duty = 0.0;
  /// Mean brownout window duration.
  util::Seconds mean_off_s{0.25};

  bool enabled() const { return duty > 0.0; }
};

/// The full fault plan a SessionConfig carries. Default-constructed =
/// everything off = pre-fault-framework behavior, bit for bit.
struct FaultPlan {
  InterferenceFaultConfig interference;
  TriggerFaultConfig trigger;
  ClockFaultConfig clock;
  MacFaultConfig mac;
  BrownoutFaultConfig brownout;

  bool any() const {
    return interference.enabled() || trigger.enabled() || clock.enabled() ||
           mac.enabled() || brownout.enabled();
  }
};

/// Canonical hostile-channel preset used by fig_robustness and the
/// robustness tests: every injector's rate scaled by one `intensity`
/// knob in [0, 1]. 0 = benign (plan.any() == false), 1 = the harshest
/// channel the supervisor is expected to degrade gracefully under.
/// `enabled` bit i gates injector i in the fixed order interference,
/// trigger, clock, mac, brownout (0x1F = all).
FaultPlan hostile_plan(double intensity, unsigned enabled = 0x1F);

}  // namespace witag::faults
