// Runtime state machines that realize a FaultPlan, round by round.
//
// Determinism contract: a FaultSet owns one util::Rng sub-stream per
// injector, each seeded via Rng::derive_seed(seed, injector_index).
// The session draws every injector exactly once per hook point per
// round, *unconditionally* — whether or not the drawn fault ends up
// mattering — so the fault schedule is a pure function of (plan, seed,
// round index) and never shifts when an unrelated knob (extra tags,
// supervisor decisions, --jobs) changes the surrounding control flow.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>
#include <cstddef>

#include "faults/fault_plan.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace witag::faults {

/// Two-state continuous-time renewal process with exponential sojourns —
/// the Gilbert-Elliott interference chain and the brownout windows are
/// both instances (on = Bad / browned-out). Advancing by dt flips
/// through as many sojourns as dt covers, drawing each duration from the
/// process's own Rng, so state at time T is independent of how the
/// elapsed time was sliced into advance() calls' *count* (slicing only
/// changes nothing because sojourn draws happen on expiry, not per
/// call).
class OnOffProcess {
 public:
  /// `duty` = long-run fraction of time spent On; `mean_on_s` = mean On
  /// sojourn (the Off mean follows from the duty). Requires duty in
  /// (0, 1) and a positive mean.
  // Sink parameter: the process owns a dedicated child stream the
  // caller hands in (split()/derived), so the copy is the handoff.
  OnOffProcess(double duty, util::Seconds mean_on_s, util::Rng rng);  // witag-lint: allow(rng-copy)

  /// Consumes `dt` of simulated time, flipping state on sojourn expiry.
  void advance(util::Seconds dt);

  bool on() const { return on_; }

 private:
  double draw_sojourn_s();

  util::Rng rng_;
  double mean_s_[2];  ///< Mean sojourn [s], indexed by target state.
  bool on_ = false;
  double remaining_s_ = 0.0;
};

/// Realized-fault tallies, kept by the session as it applies each drawn
/// fault (a draw that could not matter — e.g. a trigger miss on a round
/// where the tag was off anyway — is not counted).
struct FaultCounts {
  std::uint64_t interference_symbols = 0;  ///< OFDM symbols hit by a burst.
  std::uint64_t triggers_suppressed = 0;   ///< Addressed-tag misses injected.
  std::uint64_t false_wakeups = 0;         ///< Non-addressed tags woken.
  std::uint64_t ba_lost = 0;
  std::uint64_t ba_truncated = 0;
  std::uint64_t ampdu_aborted = 0;
  std::uint64_t brownout_rounds = 0;  ///< Rounds starting inside a window.

  std::uint64_t total() const {
    return interference_symbols + triggers_suppressed + false_wakeups +
           ba_lost + ba_truncated + ampdu_aborted + brownout_rounds;
  }
  bool operator==(const FaultCounts&) const = default;
};

/// Per-round clock fault drawn from the clock sub-stream.
struct ClockFault {
  double drift_frac = 0.0;  ///< Accumulated random-walk drift (clamped).
  double jitter_us = 0.0;   ///< This round's trigger-edge offset.
};

/// Per-round MAC fate drawn from the MAC sub-stream.
struct MacFault {
  bool abort_ampdu = false;
  double abort_frac = 1.0;  ///< Fraction of the PPDU that made it out.
  bool lose_ba = false;
  bool truncate_ba = false;
  double truncate_frac = 1.0;  ///< Fraction of the bitmap that survives.
};

/// All injector state for one session. Copyable only via reconstruction;
/// the session owns exactly one and threads simulated time through it in
/// lock-step with the channel (ChannelModel::advance).
class FaultSet {
 public:
  FaultSet(const FaultPlan& plan, std::uint64_t seed);

  const FaultPlan& plan() const { return plan_; }
  bool active() const { return plan_.any(); }

  /// Advances the time-driven processes (interference chain, brownout
  /// windows) by `dt` of simulated channel time.
  void advance(util::Seconds dt);

  /// Per-symbol extra noise variance [W per subcarrier] across a PPDU of
  /// `n_symbols` OFDM symbols (4 us each), stepping the Gilbert-Elliott
  /// chain through the PPDU in real (undilated) time. Empty when the
  /// interference injector is disabled. Counts hit symbols.
  std::vector<double> interference_noise(std::size_t n_symbols);

  /// Draws whether the addressed tag misses this round's trigger.
  bool draw_trigger_miss();

  /// Draws whether one non-addressed tag falsely wakes this round.
  bool draw_false_wakeup();

  /// Advances the drift random walk one round and draws the edge jitter.
  ClockFault draw_clock_fault();

  /// Draws this round's MAC fate.
  MacFault draw_mac_fault();

  /// True while the tag harvester is inside a brownout window.
  bool brownout_now() const;

  const FaultCounts& counts() const { return counts_; }
  /// Mutable tallies — the session increments these as it *applies*
  /// drawn faults, so the counts report realized events only.
  FaultCounts& counts() { return counts_; }

 private:
  FaultPlan plan_;
  util::Rng trigger_rng_;
  util::Rng clock_rng_;
  util::Rng mac_rng_;
  std::optional<OnOffProcess> interference_;
  std::optional<OnOffProcess> brownout_;
  double drift_ = 0.0;
  FaultCounts counts_;
};

}  // namespace witag::faults
