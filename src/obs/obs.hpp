// Umbrella header for the observability subsystem, plus the
// instrumentation macros used at hot-path call sites.
//
// Two gates, coarse to fine:
//  * Compile time: WITAG_OBS_ENABLED (default 1; the CMake option
//    WITAG_OBS=OFF defines it to 0). When 0, every macro below expands
//    to nothing — zero code, zero data.
//  * Runtime: Tracer::set_enabled() gates span/event recording; when
//    off a span site costs one relaxed atomic load. Counters, gauges
//    and histograms always accumulate when compiled in (one relaxed
//    atomic RMW) — they are the metrics export and are cheap enough to
//    stay on (<2% on the tightest PHY microbenchmarks).
//
// Name arguments to WITAG_SPAN / WITAG_EVENT* must be string literals.
#pragma once

#ifndef WITAG_OBS_ENABLED
#define WITAG_OBS_ENABLED 1
#endif

#if WITAG_OBS_ENABLED

#include "obs/metrics.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"    // IWYU pragma: export
#include <cstdint>

#define WITAG_OBS_CONCAT_INNER(a, b) a##b
#define WITAG_OBS_CONCAT(a, b) WITAG_OBS_CONCAT_INNER(a, b)

/// RAII span covering the rest of the enclosing scope.
#define WITAG_SPAN(name) \
  ::witag::obs::ScopedSpan WITAG_OBS_CONCAT(witag_obs_span_, __LINE__)((name))
#define WITAG_SPAN_CAT(name, cat)                                       \
  ::witag::obs::ScopedSpan WITAG_OBS_CONCAT(witag_obs_span_, __LINE__)( \
      (name), (cat))

/// Instant (zero-duration) trace events. Forward to obs::instant /
/// instant_arg / instant_arg2: (name [, cat]), (name, k0, v0 [, cat]),
/// (name, k0, v0, k1, v1 [, cat]). Numeric args must already be double.
#define WITAG_EVENT(...) ::witag::obs::instant(__VA_ARGS__)
#define WITAG_EVENT1(...) ::witag::obs::instant_arg(__VA_ARGS__)
#define WITAG_EVENT2(...) ::witag::obs::instant_arg2(__VA_ARGS__)

/// Bumps a named counter by `n`. The registry lookup happens once per
/// call site (function-local static); afterwards it is one relaxed add.
#define WITAG_COUNT(name, n)                                             \
  do {                                                                   \
    static ::witag::obs::Counter& WITAG_OBS_CONCAT(witag_obs_counter_,   \
                                                   __LINE__) =           \
        ::witag::obs::counter((name));                                   \
    WITAG_OBS_CONCAT(witag_obs_counter_, __LINE__)                       \
        .add(static_cast<std::uint64_t>(n));                             \
  } while (0)

/// Records `x` into a named fixed-bucket histogram; `bounds_expr` is
/// evaluated once, at first execution of the call site.
#define WITAG_HIST(name, bounds_expr, x)                                 \
  do {                                                                   \
    static ::witag::obs::Histogram& WITAG_OBS_CONCAT(witag_obs_hist_,    \
                                                     __LINE__) =         \
        ::witag::obs::histogram((name), (bounds_expr));                  \
    WITAG_OBS_CONCAT(witag_obs_hist_, __LINE__)                          \
        .observe(static_cast<double>(x));                                \
  } while (0)

/// Like WITAG_COUNT but backed by a sharded counter: workers on
/// different threads land on different cache lines instead of bouncing
/// one atomic. Use for counters bumped from inside parallel regions.
/// Exported value is the exact sum (folds into the plain-counter
/// namespace in snapshots).
#define WITAG_COUNT_HOT(name, n)                                         \
  do {                                                                   \
    static ::witag::obs::ShardedCounter& WITAG_OBS_CONCAT(               \
        witag_obs_shard_, __LINE__) = ::witag::obs::sharded_counter(     \
        (name));                                                         \
    WITAG_OBS_CONCAT(witag_obs_shard_, __LINE__)                         \
        .add(static_cast<std::uint64_t>(n));                             \
  } while (0)

/// Records `x` into a named HDR (log-bucketed) histogram with the
/// default config — snapshots export <name>.p50/.p90/.p99/.p999/.max
/// quantile gauges. Use WITAG_HDR_CFG to pick a non-default layout.
#define WITAG_HDR(name, x)                                               \
  do {                                                                   \
    static ::witag::obs::HdrHistogram& WITAG_OBS_CONCAT(witag_obs_hdr_,  \
                                                        __LINE__) =      \
        ::witag::obs::hdr((name));                                       \
    WITAG_OBS_CONCAT(witag_obs_hdr_, __LINE__)                           \
        .record(static_cast<double>(x));                                 \
  } while (0)

/// HDR histogram with an explicit HdrConfig (first execution wins; a
/// different config for the same name elsewhere throws).
#define WITAG_HDR_CFG(name, cfg, x)                                      \
  do {                                                                   \
    static ::witag::obs::HdrHistogram& WITAG_OBS_CONCAT(witag_obs_hdr_,  \
                                                        __LINE__) =      \
        ::witag::obs::hdr((name), (cfg));                                \
    WITAG_OBS_CONCAT(witag_obs_hdr_, __LINE__)                           \
        .record(static_cast<double>(x));                                 \
  } while (0)

#else  // WITAG_OBS_ENABLED == 0: every site compiles to nothing.

#define WITAG_SPAN(name) \
  do {                   \
  } while (0)
#define WITAG_SPAN_CAT(name, cat) \
  do {                            \
  } while (0)
#define WITAG_EVENT(...) \
  do {                    \
  } while (0)
#define WITAG_EVENT1(...) \
  do {                             \
  } while (0)
#define WITAG_EVENT2(...) \
  do {                                     \
  } while (0)
#define WITAG_COUNT(name, n) \
  do {                       \
  } while (0)
#define WITAG_HIST(name, bounds_expr, x) \
  do {                                   \
  } while (0)
#define WITAG_COUNT_HOT(name, n) \
  do {                           \
  } while (0)
#define WITAG_HDR(name, x) \
  do {                     \
  } while (0)
#define WITAG_HDR_CFG(name, cfg, x) \
  do {                              \
  } while (0)

#endif  // WITAG_OBS_ENABLED
