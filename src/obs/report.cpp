#include "obs/report.hpp"

#include <chrono>
#include <exception>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"

namespace witag::obs {
namespace {

double wall_clock_us() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1e3;
}

}  // namespace

json::Value build_report(
    const std::string& bench,
    const std::vector<std::pair<std::string, json::Value>>& config,
    double wall_ms, const MetricsSnapshot& snapshot) {
  json::Value doc = json::Value::object();
  doc.set("bench", json::Value::string(bench));

  json::Value cfg = json::Value::object();
  for (const auto& [key, value] : config) cfg.set(key, value);
  doc.set("config", std::move(cfg));

  doc.set("wall_ms", json::Value::number(wall_ms));

  json::Value counters = json::Value::object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.set(name, json::Value::number(static_cast<double>(value)));
  }
  doc.set("counters", std::move(counters));

  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.set(name, json::Value::number(value));
  }
  doc.set("gauges", std::move(gauges));

  json::Value hists = json::Value::object();
  for (const auto& [name, h] : snapshot.histograms) {
    json::Value entry = json::Value::object();
    json::Value bounds = json::Value::array();
    for (const double b : h.bounds) bounds.push_back(json::Value::number(b));
    entry.set("bounds", std::move(bounds));
    json::Value counts = json::Value::array();
    for (const std::uint64_t c : h.counts) {
      counts.push_back(json::Value::number(static_cast<double>(c)));
    }
    entry.set("counts", std::move(counts));
    entry.set("count", json::Value::number(static_cast<double>(h.count)));
    entry.set("sum", json::Value::number(h.sum));
    hists.set(name, std::move(entry));
  }
  doc.set("histograms", std::move(hists));
  return doc;
}

RunScope::RunScope(std::string bench, const util::Args& args)
    : bench_(std::move(bench)) {
  metrics_path_ = args.get_string("metrics-out", bench_ + "_metrics.json");
  if (args.has("no-metrics")) metrics_path_.clear();
  trace_path_ = args.get_string("trace-out", "");

  MetricsRegistry::instance().reset();
  if (!trace_path_.empty()) {
    Tracer::instance().clear();
    Tracer::instance().set_enabled(true);
  }
  start_us_ = wall_clock_us();
}

RunScope::RunScope(std::string bench) : bench_(std::move(bench)) {
  metrics_path_ = bench_ + "_metrics.json";
  MetricsRegistry::instance().reset();
  start_us_ = wall_clock_us();
}

void RunScope::config(const std::string& key, const std::string& value) {
  config_.emplace_back(key, json::Value::string(value));
}

void RunScope::config(const std::string& key, double value) {
  config_.emplace_back(key, json::Value::number(value));
}

void RunScope::parallelism(std::size_t jobs, double serial_estimate_ms,
                           double wall_ms) {
  config("jobs", static_cast<double>(jobs));
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.gauge("runner.jobs").set(static_cast<double>(jobs));
  reg.gauge("runner.serial_estimate_ms").set(serial_estimate_ms);
  reg.gauge("runner.wall_ms").set(wall_ms);
  if (wall_ms > 0.0) {
    reg.gauge("runner.speedup").set(serial_estimate_ms / wall_ms);
  }
}

void RunScope::finish() {
  if (finished_) return;
  finished_ = true;
  const double wall_ms = (wall_clock_us() - start_us_) / 1e3;

  if (!trace_path_.empty()) {
    Tracer::instance().set_enabled(false);
    Tracer::instance().write_file(trace_path_);
    std::cerr << "[obs] trace written to " << trace_path_ << '\n';
  }
  if (!metrics_path_.empty()) {
    const json::Value doc = build_report(
        bench_, config_, wall_ms, MetricsRegistry::instance().snapshot());
    std::ofstream out(metrics_path_);
    if (!out) {
      throw std::runtime_error("RunScope: cannot open " + metrics_path_);
    }
    out << doc.dump() << '\n';
    std::cerr << "[obs] metrics written to " << metrics_path_ << '\n';
  }
}

RunScope::~RunScope() {
  try {
    finish();
  } catch (const std::exception& e) {
    std::cerr << "[obs] report failed: " << e.what() << '\n';
  }
}

}  // namespace witag::obs
