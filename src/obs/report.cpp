#include "obs/report.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <cstddef>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"

namespace witag::obs {
namespace {

double wall_clock_us() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1e3;
}

// Crash-safe flush. A RunScope on the stack never runs its destructor
// when the process exit()s early or dies to SIGINT/SIGTERM — which is
// exactly when a long soak's telemetry matters most. The active scope
// registers itself here; an atexit hook and signal handlers finish()
// it (stop the streamer, write the metrics JSON) before the process
// goes down. finish() is not async-signal-safe, but at that point the
// alternative is losing the data — this is a deliberate best-effort
// flush on the way out, and the handler re-raises with SIG_DFL so the
// exit status still reports the signal.
std::atomic<RunScope*> g_active_scope{nullptr};

void flush_active_scope() noexcept {
  RunScope* scope = g_active_scope.exchange(nullptr);
  if (scope == nullptr) return;
  try {
    scope->finish();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
    // Dying anyway; nothing useful left to do with the error.
  }
}

extern "C" void witag_obs_signal_flush(int sig) {
  flush_active_scope();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void install_crash_flush_once() {
  static const bool installed = [] {
    std::atexit([] { flush_active_scope(); });
    std::signal(SIGINT, &witag_obs_signal_flush);
    std::signal(SIGTERM, &witag_obs_signal_flush);
    return true;
  }();
  (void)installed;
}

}  // namespace

json::Value build_report(
    const std::string& bench,
    const std::vector<std::pair<std::string, json::Value>>& config,
    double wall_ms, const MetricsSnapshot& snapshot) {
  json::Value doc = json::Value::object();
  doc.set("bench", json::Value::string(bench));

  json::Value cfg = json::Value::object();
  for (const auto& [key, value] : config) cfg.set(key, value);
  doc.set("config", std::move(cfg));

  doc.set("wall_ms", json::Value::number(wall_ms));

  json::Value counters = json::Value::object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.set(name, json::Value::number(static_cast<double>(value)));
  }
  doc.set("counters", std::move(counters));

  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.set(name, json::Value::number(value));
  }
  doc.set("gauges", std::move(gauges));

  json::Value hists = json::Value::object();
  for (const auto& [name, h] : snapshot.histograms) {
    json::Value entry = json::Value::object();
    json::Value bounds = json::Value::array();
    for (const double b : h.bounds) bounds.push_back(json::Value::number(b));
    entry.set("bounds", std::move(bounds));
    json::Value counts = json::Value::array();
    for (const std::uint64_t c : h.counts) {
      counts.push_back(json::Value::number(static_cast<double>(c)));
    }
    entry.set("counts", std::move(counts));
    entry.set("count", json::Value::number(static_cast<double>(h.count)));
    entry.set("sum", json::Value::number(h.sum));
    hists.set(name, std::move(entry));
  }
  doc.set("histograms", std::move(hists));
  return doc;
}

RunScope::RunScope(std::string bench, const util::Args& args)
    : bench_(std::move(bench)) {
  metrics_path_ = args.get_string("metrics-out", bench_ + "_metrics.json");
  if (args.has("no-metrics")) metrics_path_.clear();
  trace_path_ = args.get_string("trace-out", "");
  stream_path_ = args.get_string("stream-out", "");

  MetricsRegistry::instance().reset();
  if (!trace_path_.empty() || !stream_path_.empty()) {
    Tracer::instance().clear();
    Tracer::instance().set_enabled(true);
  }
  if (!stream_path_.empty()) {
    StreamerConfig scfg;
    scfg.jsonl_path = stream_path_;
    scfg.chrome_path = trace_path_;  // incremental when both are given
    scfg.period_ms = args.get_double("stream-period-ms", 250.0);
    scfg.ring_capacity = static_cast<std::size_t>(
        args.get_u64("stream-ring", 8192));
    scfg.bench = bench_;
    streamer_ = std::make_unique<TelemetryStreamer>(scfg);
  }
  register_crash_flush();
  start_us_ = wall_clock_us();
}

RunScope::RunScope(std::string bench) : bench_(std::move(bench)) {
  metrics_path_ = bench_ + "_metrics.json";
  MetricsRegistry::instance().reset();
  register_crash_flush();
  start_us_ = wall_clock_us();
}

void RunScope::register_crash_flush() {
  install_crash_flush_once();
  g_active_scope.store(this, std::memory_order_release);
}

void RunScope::config(const std::string& key, const std::string& value) {
  config_.emplace_back(key, json::Value::string(value));
}

void RunScope::config(const std::string& key, double value) {
  config_.emplace_back(key, json::Value::number(value));
}

void RunScope::parallelism(std::size_t jobs, double serial_estimate_ms,
                           double wall_ms) {
  config("jobs", static_cast<double>(jobs));
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.gauge("runner.jobs").set(static_cast<double>(jobs));
  reg.gauge("runner.serial_estimate_ms").set(serial_estimate_ms);
  reg.gauge("runner.wall_ms").set(wall_ms);
  if (wall_ms > 0.0) {
    reg.gauge("runner.speedup").set(serial_estimate_ms / wall_ms);
  }
}

void RunScope::finish() {
  if (finished_) return;
  finished_ = true;
  RunScope* self = this;
  g_active_scope.compare_exchange_strong(self, nullptr,
                                         std::memory_order_acq_rel);
  const double wall_ms = (wall_clock_us() - start_us_) / 1e3;

  if (streamer_) {
    Tracer::instance().set_enabled(false);
    streamer_->stop();  // final drain + Chrome footer when streaming it
    std::cerr << "[obs] telemetry streamed to " << stream_path_ << '\n';
    if (!trace_path_.empty()) {
      std::cerr << "[obs] trace written to " << trace_path_ << '\n';
    }
  } else if (!trace_path_.empty()) {
    Tracer::instance().set_enabled(false);
    Tracer::instance().write_file(trace_path_);
    std::cerr << "[obs] trace written to " << trace_path_ << '\n';
  }
  if (!metrics_path_.empty()) {
    const json::Value doc = build_report(
        bench_, config_, wall_ms, MetricsRegistry::instance().snapshot());
    std::ofstream out(metrics_path_);
    if (!out) {
      throw std::runtime_error("RunScope: cannot open " + metrics_path_);
    }
    out << doc.dump() << '\n';
    std::cerr << "[obs] metrics written to " << metrics_path_ << '\n';
  }
}

RunScope::~RunScope() {
  try {
    finish();
  } catch (const std::exception& e) {
    std::cerr << "[obs] report failed: " << e.what() << '\n';
  }
}

}  // namespace witag::obs
