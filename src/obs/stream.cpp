#include "obs/stream.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace witag::obs {
namespace {

std::atomic<TelemetryStreamer*> g_active{nullptr};

}  // namespace

TelemetryStreamer* TelemetryStreamer::active() {
  return g_active.load(std::memory_order_acquire);
}

TelemetryStreamer::TelemetryStreamer(StreamerConfig cfg)
    : cfg_(std::move(cfg)) {
  if (cfg_.jsonl_path.empty()) {
    throw std::runtime_error("TelemetryStreamer: jsonl_path is required");
  }
  if (cfg_.ring_capacity == 0) {
    throw std::runtime_error("TelemetryStreamer: ring_capacity must be > 0");
  }
  jsonl_.open(cfg_.jsonl_path, std::ios::trunc);
  if (!jsonl_) {
    throw std::runtime_error("TelemetryStreamer: cannot open " +
                             cfg_.jsonl_path);
  }
  if (!cfg_.chrome_path.empty()) {
    chrome_.open(cfg_.chrome_path, std::ios::trunc);
    if (!chrome_) {
      throw std::runtime_error("TelemetryStreamer: cannot open " +
                               cfg_.chrome_path);
    }
    chrome_ << "{\"traceEvents\":[";
    chrome_open_ = true;
  }
  // Pre-start: the flusher thread does not exist yet, so the ctor is
  // the one place drain_buf_ may be touched without cycle_mu_.
  drain_buf_.reserve(cfg_.ring_capacity);  // witag-lint: allow(guarded-by)
  Tracer::instance().set_streaming(cfg_.ring_capacity);

  json::Value meta = json::Value::object();
  meta.set("type", json::Value::string("meta"));
  meta.set("bench", json::Value::string(cfg_.bench));
  meta.set("period_ms", json::Value::number(cfg_.period_ms));
  meta.set("ring_capacity",
           json::Value::number(static_cast<double>(cfg_.ring_capacity)));
  write_line(meta.dump());
  jsonl_.flush();

  g_active.store(this, std::memory_order_release);
  flusher_ = std::thread([this] { flusher_loop(); });
}

TelemetryStreamer::~TelemetryStreamer() { stop(); }

void TelemetryStreamer::stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  // The crash-flush signal handler can land on the flusher thread
  // itself, mid-cycle; joining or flushing there would self-deadlock,
  // and the periodic cycles have already persisted everything older
  // than one period — so the best-effort answer is to skip.
  const bool on_flusher = flusher_.get_id() == std::this_thread::get_id();
  if (flusher_.joinable() && !on_flusher) flusher_.join();
  TelemetryStreamer* self = this;
  g_active.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
  if (on_flusher) return;
  flush_cycle(/*final_cycle=*/true);
  if (chrome_open_) {
    chrome_ << "\n],\"displayTimeUnit\":\"ms\"}\n";
    chrome_.flush();
    chrome_.close();
    chrome_open_ = false;
  }
  jsonl_.flush();
  jsonl_.close();
  Tracer::instance().set_streaming(0);
}

void TelemetryStreamer::flush_now() { flush_cycle(/*final_cycle=*/false); }

void TelemetryStreamer::flusher_loop() {
  const auto period = std::chrono::duration<double, std::milli>(
      cfg_.period_ms > 0.0 ? cfg_.period_ms : 1.0);
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (true) {
    if (stop_cv_.wait_for(lock, period, [this] { return stop_requested_; })) {
      return;  // stop() runs the final cycle after the join
    }
    lock.unlock();
    flush_cycle(/*final_cycle=*/false);
    lock.lock();
  }
}

void TelemetryStreamer::flush_cycle(bool final_cycle) {
  const std::lock_guard<std::mutex> lock(cycle_mu_);
  Tracer& tracer = Tracer::instance();

  drain_buf_.clear();
  tracer.drain(drain_buf_);
  std::string ev_json;
  std::string line;
  for (const TraceEvent& ev : drain_buf_) {
    ev_json.clear();
    dump_trace_event(ev, ev_json);
    line = "{\"type\":\"span\",";
    line.append(ev_json, 1, std::string::npos);  // drop the leading '{'
    write_line(line);
    if (chrome_open_) {
      if (!chrome_first_) chrome_ << ',';
      chrome_ << '\n' << ev_json;
      chrome_first_ = false;
    }
  }

  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  const std::uint64_t seq =
      seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  json::Value rec = json::Value::object();
  rec.set("type", json::Value::string(final_cycle ? "final" : "metrics"));
  rec.set("seq", json::Value::number(static_cast<double>(seq)));
  rec.set("ts_us", json::Value::number(tracer.now_us()));
  json::Value counters = json::Value::object();
  for (const auto& [name, v] : snap.counters) {
    counters.set(name, json::Value::number(static_cast<double>(v)));
  }
  rec.set("counters", std::move(counters));
  json::Value gauges = json::Value::object();
  for (const auto& [name, v] : snap.gauges) {
    gauges.set(name, json::Value::number(v));
  }
  rec.set("gauges", std::move(gauges));
  json::Value hdrs = json::Value::object();
  for (const auto& [name, h] : snap.hdrs) {
    json::Value one = json::Value::object();
    one.set("count", json::Value::number(static_cast<double>(h.count)));
    one.set("sum", json::Value::number(h.sum));
    one.set("p50", json::Value::number(h.quantiles.p50));
    one.set("p90", json::Value::number(h.quantiles.p90));
    one.set("p99", json::Value::number(h.quantiles.p99));
    one.set("p999", json::Value::number(h.quantiles.p999));
    one.set("max", json::Value::number(h.quantiles.max));
    hdrs.set(name, std::move(one));
  }
  rec.set("hdr", std::move(hdrs));
  rec.set("spans_dropped",
          json::Value::number(static_cast<double>(tracer.dropped())));
  write_line(rec.dump());

  jsonl_.flush();
  if (chrome_open_) chrome_.flush();
}

void TelemetryStreamer::write_line(const std::string& line) {
  jsonl_ << line << '\n';
  records_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace witag::obs
