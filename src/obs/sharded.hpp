// Sharded lock-free counters/gauges for contended hot paths.
//
// A plain obs::Counter is one relaxed atomic cell — uncontended that is
// ~1 ns, but when every `--jobs N` worker hammers the same name the
// cache line ping-pongs and the fetch_add serializes across cores. A
// ShardedCounter spreads the value over kMetricShards cache-line-padded
// cells; each thread picks a fixed cell from its (dense, lazily
// assigned) thread slot, so concurrent adds from different threads
// land on different cache lines and never contend. Reads sum the cells.
//
// The sum is exact once writers quiesce (each add lands in exactly one
// cell); a concurrent read is a momentary snapshot, same as the plain
// Counter. `value()` costs kMetricShards relaxed loads, which is why
// these back the *aggregation* path (periodic streamer cycles,
// end-of-run snapshots) rather than read-heavy code.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace witag::obs {

/// Shard count: enough to keep any realistic --jobs worker set on
/// distinct cells, small enough that summing stays trivial.
inline constexpr std::size_t kMetricShards = 32;

namespace detail {
inline std::atomic<std::size_t> next_shard_slot{0};
}  // namespace detail

/// Dense per-thread shard slot in [0, kMetricShards): assigned from an
/// incrementing process-wide counter on first use per thread, so the
/// first kMetricShards threads get private cells and later ones wrap.
/// Inline so the thread_local read compiles to a TLS load at the call
/// site instead of a cross-TU function call on every add().
inline std::size_t shard_index() {
  thread_local const std::size_t slot =
      detail::next_shard_slot.fetch_add(1, std::memory_order_relaxed) %
      kMetricShards;
  return slot;
}

/// Monotonic event count, sharded (see file comment).
class ShardedCounter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kMetricShards];
};

/// Additive gauge, sharded: add() accumulates contention-free and
/// value() sums. (A last-write-wins set() cannot shard meaningfully —
/// use the plain Gauge for those.) Note the cell a thread lands in
/// depends on thread creation order, so the floating-point sum can
/// vary in the last ulp across schedules — don't export ShardedGauge
/// values where byte-identical output across --jobs is required;
/// ShardedCounter sums are integer and always exact.
class ShardedGauge {
 public:
  void add(double x) {
    cells_[shard_index()].v.fetch_add(x, std::memory_order_relaxed);
  }
  double value() const {
    double sum = 0.0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (Cell& c : cells_) c.v.store(0.0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<double> v{0.0};
  };
  Cell cells_[kMetricShards];
};

}  // namespace witag::obs
