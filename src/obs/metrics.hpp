// Process-wide metrics: named counters, gauges, fixed-bucket and
// HDR histograms, and sharded counters, with a lock-free fast path.
//
// Two tiers of fast path:
//  * Updates are relaxed atomics — one uncontended RMW per touch
//    (Counter/Gauge/Histogram), or one RMW on a per-thread-padded cell
//    (ShardedCounter, see obs/sharded.hpp) when multiple workers hit
//    the same name.
//  * Registration lookups (`obs::counter(name)` etc.) go through a
//    pre-hashed open-addressing handle cache: after the first (mutex-
//    guarded) registration of a name, later lookups are a lock-free
//    probe — no mutex, no std::map walk, no std::string construction.
//    Caching the handle in a function-local static (the WITAG_* macro
//    pattern, see obs/obs.hpp) is still fastest, but a lookup inside a
//    loop no longer serializes the process.
//
// `snapshot()` copies everything into plain structs for export. HDR
// histograms additionally surface p50/p90/p99/p99.9/max quantile
// gauges (`<name>.p50` …) into the snapshot's gauge map, so the
// existing flat-gauge consumers (metrics JSON, bench_compare,
// telemetry streaming) see latency percentiles without schema changes.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>
#include <cstddef>

#include "obs/hdr.hpp"
#include "obs/sharded.hpp"

namespace witag::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar (e.g. a configuration value or level).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double v) { v_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. `bounds` are ascending inclusive upper edges;
/// one implicit overflow bucket catches everything above the last edge.
class Histogram {
 public:
  /// Throws std::invalid_argument on empty or non-ascending bounds.
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (overflow last).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Mean of observed values; 0 when empty.
  double mean() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` geometric upper edges starting at `first`, each `factor`
/// above the previous — the usual latency-histogram layout.
std::vector<double> exp_bounds(double first, double factor,
                               std::size_t count);

/// Point-in-time copy of every registered metric. Sharded counters
/// fold into `counters` (summed with any plain counter of the same
/// name); HDR histograms appear in `hdrs` and contribute quantile
/// gauges (`<name>.p50`, `.p90`, `.p99`, `.p999`, `.max`) to `gauges`.
struct MetricsSnapshot {
  struct Hist {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries.
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  struct Hdr {
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    std::uint64_t overflow = 0;
    /// Non-zero buckets, ascending (upper_edge, count).
    std::vector<std::pair<double, std::uint64_t>> buckets;
    HdrQuantiles quantiles;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Hist> histograms;
  std::map<std::string, Hdr> hdrs;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Idempotent registration: the first call for a name creates the
  /// metric, later calls return the same object via the lock-free
  /// handle cache. References stay valid for the process lifetime
  /// (reset() zeroes values, never removes).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  ShardedCounter& sharded_counter(std::string_view name);
  /// `bounds` are used on first registration only; a later call with
  /// different bounds for the same name throws std::invalid_argument.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  /// `cfg` is used on first registration only; a later call with a
  /// different config for the same name throws std::invalid_argument.
  HdrHistogram& hdr(std::string_view name, HdrConfig cfg = {});

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric (per-run isolation in benches and tests).
  void reset();

 private:
  MetricsRegistry();
  ~MetricsRegistry();

  struct HandleCache;

  template <typename T, typename Make>
  T& lookup(std::map<std::string, std::unique_ptr<T>, std::less<>>& table,
            HandleCache& cache, std::string_view name, Make&& make);

  // The maps are written only under mu_; references handed out stay
  // valid forever (nodes are never erased), which is what lets lookup()
  // pass them to the lock-free cache after registration.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>>
      counters_;  // witag: guarded_by(mu_)
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>>
      gauges_;  // witag: guarded_by(mu_)
  std::map<std::string, std::unique_ptr<ShardedCounter>, std::less<>>
      sharded_counters_;  // witag: guarded_by(mu_)
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;  // witag: guarded_by(mu_)
  std::map<std::string, std::unique_ptr<HdrHistogram>, std::less<>>
      hdrs_;  // witag: guarded_by(mu_)
  std::unique_ptr<HandleCache> counter_cache_;
  std::unique_ptr<HandleCache> gauge_cache_;
  std::unique_ptr<HandleCache> sharded_cache_;
  std::unique_ptr<HandleCache> histogram_cache_;
  std::unique_ptr<HandleCache> hdr_cache_;
};

/// Shorthands for the process-wide registry.
inline Counter& counter(std::string_view name) {
  return MetricsRegistry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return MetricsRegistry::instance().gauge(name);
}
inline ShardedCounter& sharded_counter(std::string_view name) {
  return MetricsRegistry::instance().sharded_counter(name);
}
inline Histogram& histogram(std::string_view name,
                            std::vector<double> bounds) {
  return MetricsRegistry::instance().histogram(name, std::move(bounds));
}
inline HdrHistogram& hdr(std::string_view name, HdrConfig cfg = {}) {
  return MetricsRegistry::instance().hdr(name, cfg);
}

}  // namespace witag::obs
