// Process-wide metrics: named counters, gauges, and fixed-bucket
// histograms with a lock-free fast path.
//
// Handles are registered once (mutex-guarded) and then updated with
// relaxed atomics only, so instrumentation sites pay ~one uncontended
// atomic RMW per update. The intended call-site pattern caches the
// handle in a function-local static:
//
//   static obs::Counter& c = obs::counter("phy.fft.calls");
//   c.add();
//
// (or use the WITAG_COUNT / WITAG_HIST macros from obs/obs.hpp, which
// compile away entirely when WITAG_OBS_ENABLED is 0).
//
// `snapshot()` copies everything into plain structs for export; the
// metrics JSON schema written by obs::RunScope is built from it.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace witag::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar (e.g. a configuration value or level).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double v) { v_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. `bounds` are ascending inclusive upper edges;
/// one implicit overflow bucket catches everything above the last edge.
class Histogram {
 public:
  /// Throws std::invalid_argument on empty or non-ascending bounds.
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (overflow last).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Mean of observed values; 0 when empty.
  double mean() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` geometric upper edges starting at `first`, each `factor`
/// above the previous — the usual latency-histogram layout.
std::vector<double> exp_bounds(double first, double factor,
                               std::size_t count);

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct Hist {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries.
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Hist> histograms;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Idempotent registration: the first call for a name creates the
  /// metric, later calls return the same object. References stay valid
  /// for the process lifetime (reset() zeroes values, never removes).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` are used on first registration only; a later call with
  /// different bounds for the same name throws std::invalid_argument.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric (per-run isolation in benches and tests).
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthands for the process-wide registry.
inline Counter& counter(const std::string& name) {
  return MetricsRegistry::instance().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return MetricsRegistry::instance().gauge(name);
}
inline Histogram& histogram(const std::string& name,
                            std::vector<double> bounds) {
  return MetricsRegistry::instance().histogram(name, std::move(bounds));
}

}  // namespace witag::obs
