// Minimal JSON value model with a writer and a strict recursive-descent
// parser. This exists so the observability exporters (Chrome trace,
// metrics reports) can be emitted *and parsed back* without an external
// dependency — tests round-trip every schema through this parser, and
// future tooling can load bench reports with it.
//
// Scope is deliberately small: UTF-8 pass-through (only the escapes JSON
// requires are produced/understood), doubles for every number, no
// comments, no trailing commas.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace witag::obs::json {

/// Escapes a string for embedding inside JSON quotes (no surrounding
/// quotes added).
std::string escape(std::string_view s);

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  static Value boolean(bool b);
  static Value number(double v);
  static Value string(std::string s);
  static Value array();
  static Value object();

  /// Parses a complete JSON document (leading/trailing whitespace ok).
  /// Throws std::invalid_argument with a byte offset on malformed input.
  static Value parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::logic_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access.
  std::size_t size() const;
  const Value& operator[](std::size_t i) const;
  void push_back(Value v);

  /// Object access. `at` throws std::out_of_range on a missing key.
  bool has(const std::string& key) const;
  const Value& at(const std::string& key) const;
  void set(const std::string& key, Value v);
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Serializes compactly (no whitespace). Numbers use up to 17
  /// significant digits so doubles round-trip exactly.
  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  // Insertion-ordered object members (stable, diff-friendly exports).
  std::vector<std::pair<std::string, Value>> obj_;

  void dump_to(std::string& out) const;
};

}  // namespace witag::obs::json
