#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace witag::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return sum() / static_cast<double>(n);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> exp_bounds(double first, double factor,
                               std::size_t count) {
  if (!(first > 0.0) || !(factor > 1.0) || count == 0) {
    throw std::invalid_argument("exp_bounds: need first > 0, factor > 1");
  }
  std::vector<double> out;
  out.reserve(count);
  double edge = first;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(edge);
    edge *= factor;
  }
  return out;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else if (slot->bounds() != bounds) {
    throw std::invalid_argument("MetricsRegistry: histogram \"" + name +
                                "\" re-registered with different bounds");
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Hist out;
    out.bounds = h->bounds();
    out.counts = h->counts();
    out.count = h->count();
    out.sum = h->sum();
    snap.histograms[name] = std::move(out);
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace witag::obs
