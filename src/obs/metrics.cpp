#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>
#include <cstddef>

namespace witag::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return sum() / static_cast<double>(n);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> exp_bounds(double first, double factor,
                               std::size_t count) {
  if (!(first > 0.0) || !(factor > 1.0) || count == 0) {
    throw std::invalid_argument("exp_bounds: need first > 0, factor > 1");
  }
  std::vector<double> out;
  out.reserve(count);
  double edge = first;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(edge);
    edge *= factor;
  }
  return out;
}

// Fixed-capacity open-addressing table from name to metric pointer.
// Readers probe lock-free (acquire loads); inserts happen under the
// registry mutex, publish the slot's payload with a release store on
// the key, and keep the load factor below 1/2. Keys point at the
// registry map's node keys, which are stable for the process lifetime
// (metrics are never removed). When the table fills up, later names
// simply fall back to the mutex-guarded map path — correctness never
// depends on a cache hit.
struct MetricsRegistry::HandleCache {
  static constexpr std::size_t kCapacity = 2048;  // power of two
  static constexpr std::size_t kMask = kCapacity - 1;

  struct Slot {
    std::atomic<const std::string*> key{nullptr};
    void* ptr = nullptr;  ///< Written before `key`'s release store.
  };
  std::array<Slot, kCapacity> slots;
  std::size_t used = 0;  // witag: guarded_by(mu_)

  static std::size_t hash(std::string_view s) {
    // FNV-1a, 64-bit.
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }

  void* find(std::string_view name) const {
    std::size_t i = hash(name) & kMask;
    for (std::size_t probes = 0; probes < kCapacity; ++probes) {
      const std::string* key = slots[i].key.load(std::memory_order_acquire);
      if (key == nullptr) return nullptr;
      if (*key == name) return slots[i].ptr;
      i = (i + 1) & kMask;
    }
    return nullptr;
  }

  /// Caller holds the registry mutex. Idempotent per key.
  // witag: locks_required(mu_)
  void insert(const std::string* key, void* ptr) {
    if (used * 2 >= kCapacity) return;  // full: fall back to the map path
    std::size_t i = hash(*key) & kMask;
    for (;;) {
      const std::string* existing =
          slots[i].key.load(std::memory_order_relaxed);
      if (existing == nullptr) break;
      if (existing == key || *existing == *key) return;  // already cached
      i = (i + 1) & kMask;
    }
    slots[i].ptr = ptr;
    slots[i].key.store(key, std::memory_order_release);
    ++used;
  }
};

MetricsRegistry::MetricsRegistry()
    : counter_cache_(std::make_unique<HandleCache>()),
      gauge_cache_(std::make_unique<HandleCache>()),
      sharded_cache_(std::make_unique<HandleCache>()),
      histogram_cache_(std::make_unique<HandleCache>()),
      hdr_cache_(std::make_unique<HandleCache>()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

template <typename T, typename Make>
T& MetricsRegistry::lookup(
    std::map<std::string, std::unique_ptr<T>, std::less<>>& table,
    HandleCache& cache, std::string_view name, Make&& make) {
  if (void* hit = cache.find(name)) return *static_cast<T*>(hit);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = table.find(name);
  if (it == table.end()) {
    it = table.emplace(std::string(name), make()).first;
  }
  cache.insert(&it->first, it->second.get());
  return *it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return lookup(counters_, *counter_cache_, name,
                [] { return std::make_unique<Counter>(); });
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return lookup(gauges_, *gauge_cache_, name,
                [] { return std::make_unique<Gauge>(); });
}

ShardedCounter& MetricsRegistry::sharded_counter(std::string_view name) {
  return lookup(sharded_counters_, *sharded_cache_, name,
                [] { return std::make_unique<ShardedCounter>(); });
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  Histogram& h =
      lookup(histograms_, *histogram_cache_, name,
             [&] { return std::make_unique<Histogram>(bounds); });
  if (h.bounds() != bounds) {
    throw std::invalid_argument("MetricsRegistry: histogram \"" +
                                std::string(name) +
                                "\" re-registered with different bounds");
  }
  return h;
}

HdrHistogram& MetricsRegistry::hdr(std::string_view name, HdrConfig cfg) {
  HdrHistogram& h = lookup(hdrs_, *hdr_cache_, name,
                           [&] { return std::make_unique<HdrHistogram>(cfg); });
  if (!(h.config() == cfg)) {
    throw std::invalid_argument("MetricsRegistry: hdr histogram \"" +
                                std::string(name) +
                                "\" re-registered with different config");
  }
  return h;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  // Sharded counters share the counter namespace: a plain and a sharded
  // counter under one name report their (exact, integer) sum.
  for (const auto& [name, c] : sharded_counters_) {
    snap.counters[name] += c->value();
  }
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Hist out;
    out.bounds = h->bounds();
    out.counts = h->counts();
    out.count = h->count();
    out.sum = h->sum();
    snap.histograms[name] = std::move(out);
  }
  for (const auto& [name, h] : hdrs_) {
    MetricsSnapshot::Hdr out;
    out.count = h->count();
    out.sum = h->sum();
    out.max = h->max();
    out.overflow = h->overflow();
    out.buckets = h->nonzero_buckets();
    out.quantiles = hdr_quantiles(*h);
    snap.gauges[name + ".p50"] = out.quantiles.p50;
    snap.gauges[name + ".p90"] = out.quantiles.p90;
    snap.gauges[name + ".p99"] = out.quantiles.p99;
    snap.gauges[name + ".p999"] = out.quantiles.p999;
    snap.gauges[name + ".max"] = out.quantiles.max;
    snap.hdrs[name] = std::move(out);
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, c] : sharded_counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, h] : hdrs_) h->reset();
}

}  // namespace witag::obs
