// HDR-style log-bucketed histogram: bounded memory, configurable
// relative precision, mergeable across shards.
//
// Values are bucketed by octave (power-of-two range above `lowest`)
// and, within each octave, into 2^sub_bucket_bits linear sub-buckets —
// the classic HdrHistogram layout. A recorded value lands in the bucket
// whose [lower, upper) edge pair brackets it, so any quantile read from
// bucket upper edges is an overestimate by at most a factor of
// (1 + 2^-sub_bucket_bits): ~3.1% relative error at the default 5 bits,
// independent of the dynamic range.
//
// Unlike obs::Histogram (explicit edges chosen per call site), an
// HdrHistogram covers `octaves` powers of two out of the box, which is
// what latency distributions need: microseconds to minutes in one
// fixed-size array. Updates are relaxed atomic adds (thread-safe, no
// locks); `merge()` folds another histogram with the same config in
// bucket-wise, so per-shard instances aggregate exactly.
//
// Determinism: bucket indexing is a pure function of the value, and
// quantiles are pure functions of the bucket counts — two runs that
// record the same multiset of values report identical quantiles
// regardless of thread interleaving.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>
#include <cstddef>

namespace witag::obs {

struct HdrConfig {
  /// Resolution floor; must be > 0. Bucket 0 covers everything up to
  /// lowest * (1 + 2^-sub_bucket_bits), so values below `lowest` are
  /// reported as that edge (standard HDR behavior below resolution).
  double lowest = 1.0;
  /// Sub-buckets per octave = 2^sub_bucket_bits; relative quantile
  /// error <= 2^-sub_bucket_bits. Range [1, 12].
  int sub_bucket_bits = 5;
  /// Octaves covered above `lowest`; values past lowest * 2^octaves
  /// fall into one overflow bucket. Range [1, 64].
  int octaves = 40;

  bool operator==(const HdrConfig&) const = default;
};

class HdrHistogram {
 public:
  /// Throws std::invalid_argument on an out-of-range config.
  explicit HdrHistogram(HdrConfig cfg = {});

  /// Records one value (relaxed atomics; safe from any thread).
  void record(double x);

  /// Bucket index for `x` — exposed so tests can pin edge behavior.
  std::size_t bucket_index(double x) const;
  /// Inclusive upper edge of bucket `i` (the value quantiles report).
  /// The overflow bucket reports the maximum recorded value.
  double bucket_upper(std::size_t i) const;
  /// Exclusive lower edge of bucket `i` (0 for bucket 0).
  double bucket_lower(std::size_t i) const;
  /// Total buckets including the overflow bucket.
  std::size_t bucket_count() const { return n_buckets_; }

  const HdrConfig& config() const { return cfg_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Largest recorded value; 0 when empty.
  double max() const { return max_.load(std::memory_order_relaxed); }
  /// Count in the overflow (out-of-range) bucket.
  std::uint64_t overflow() const;

  /// Value at quantile q in [0, 1]: the upper edge of the bucket
  /// holding the ceil(q * count)-th smallest recorded value (q = 0 maps
  /// to rank 1). Returns 0 when empty. Quantiles never underestimate
  /// and overestimate by at most (1 + 2^-sub_bucket_bits)x.
  double quantile(double q) const;

  /// Bucket-wise addition. Throws std::invalid_argument when the
  /// configs differ. Associative and commutative: any merge tree over
  /// the same histograms yields identical counts and quantiles.
  void merge(const HdrHistogram& other);

  /// Non-zero buckets as (upper_edge, count) pairs in ascending edge
  /// order — the sparse export written into metrics reports.
  std::vector<std::pair<double, std::uint64_t>> nonzero_buckets() const;

  void reset();

 private:
  HdrConfig cfg_;
  std::size_t sub_count_ = 0;  ///< 2^sub_bucket_bits
  std::size_t n_buckets_ = 0;  ///< octaves * sub_count_ + 1 overflow
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// The five standard quantile gauges exported per HDR histogram
/// (suffix, quantile); "max" is keyed off the recorded maximum.
struct HdrQuantiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
};
HdrQuantiles hdr_quantiles(const HdrHistogram& h);

}  // namespace witag::obs
