// Incremental telemetry streamer: bounded-memory live export for soak
// and city-scale runs.
//
// The PR-1 obs subsystem buffers every span in memory and writes one
// report at end-of-run — a long soak either blows memory or reports
// nothing until it finishes. The streamer inverts that: a background
// flusher thread wakes every `period_ms`, drains the tracer's bounded
// per-thread span rings (drop-oldest, exact drop accounting — see
// Tracer::set_streaming) and the metric registry's current totals, and
// appends them to an append-only JSONL file (and, optionally, an
// incrementally-written Chrome trace). Memory is O(ring capacity ×
// threads + registry size) no matter how long the run is, and
// `tools/telemetry_tail` can follow the JSONL for a live readout.
//
// JSONL record types (one JSON object per line, every one parseable by
// obs::json::Value::parse — round-tripped in tests):
//   {"type":"meta", "bench":…, "period_ms":…, "ring_capacity":…}
//   {"type":"span", …}               Chrome trace-event fields (name,
//                                    cat, ph, ts, dur, tid, args)
//   {"type":"metrics", "seq":N, "ts_us":…,
//    "counters":{name:cumulative,…}, "gauges":{…},
//    "hdr":{name:{count,sum,p50,p90,p99,p999,max},…},
//    "spans_dropped":N}              one per flush cycle
//   {"type":"final", "seq":N, …}     same shape as metrics, written by
//                                    the last flush (clean stop OR the
//                                    crash-flush path)
//
// Counters stream as cumulative totals (not deltas): a tail that
// missed records still computes exact rates from any two cycles, and
// a truncated stream never under-counts.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>
#include <cstddef>

#include "obs/trace.hpp"

namespace witag::obs {

struct StreamerConfig {
  std::string jsonl_path;   ///< Required: append-only JSONL stream.
  std::string chrome_path;  ///< Optional: incremental Chrome trace.
  double period_ms = 250.0;
  std::size_t ring_capacity = 8192;  ///< Per-thread span ring slots.
  std::string bench;                 ///< Run name for the meta record.
};

class TelemetryStreamer {
 public:
  /// Opens the output file(s), switches the tracer into streaming mode
  /// with `ring_capacity`, writes the meta record and starts the
  /// flusher thread. Throws std::runtime_error when a file cannot be
  /// opened.
  explicit TelemetryStreamer(StreamerConfig cfg);
  TelemetryStreamer(const TelemetryStreamer&) = delete;
  TelemetryStreamer& operator=(const TelemetryStreamer&) = delete;
  /// stop()s if still running.
  ~TelemetryStreamer();

  /// Joins the flusher, runs one final drain cycle (record type
  /// "final"), closes the files and restores the tracer's buffered
  /// mode. Idempotent.
  void stop();

  /// Runs one flush cycle on the calling thread (serialized with the
  /// flusher). Exposed for tests and for the crash-flush path.
  void flush_now();

  /// JSONL records written so far (all types).
  std::uint64_t records_written() const {
    return records_.load(std::memory_order_relaxed);
  }
  /// Flush cycles completed so far.
  std::uint64_t cycles() const { return seq_.load(std::memory_order_relaxed); }

  const StreamerConfig& config() const { return cfg_; }

  /// The most recently constructed, still-live streamer (nullptr when
  /// none): the crash-flush handler drains this before the process
  /// dies.
  static TelemetryStreamer* active();

 private:
  void flusher_loop();
  void flush_cycle(bool final_cycle);
  void write_line(const std::string& line);

  StreamerConfig cfg_;
  std::ofstream jsonl_;
  std::ofstream chrome_;
  bool chrome_open_ = false;
  // No comma before the first trace event.
  bool chrome_first_ = true;  // witag: guarded_by(cycle_mu_)

  std::mutex cycle_mu_;  ///< Serializes flush cycles.
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> records_{0};
  // Reused across cycles.
  std::vector<TraceEvent> drain_buf_;  // witag: guarded_by(cycle_mu_)

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;  // witag: guarded_by(stop_mu_)
  bool stopped_ = false;  // witag: guarded_by(stop_mu_)
  std::thread flusher_;
};

}  // namespace witag::obs
