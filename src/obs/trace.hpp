// Span/event tracer with per-thread buffers and Chrome trace-event
// export.
//
// Recording is gated by a runtime toggle (`Tracer::set_enabled`) that
// costs one relaxed atomic load per site when off; when compiled out
// (WITAG_OBS_ENABLED=0, see obs/obs.hpp) the instrumentation macros
// vanish entirely. Event names and categories are stored as `const
// char*` and must be string literals (or otherwise outlive the tracer):
// this keeps the hot path allocation-free.
//
// Export formats:
//  * Chrome trace-event JSON (`{"traceEvents":[...]}`): open in
//    chrome://tracing or https://ui.perfetto.dev.
//  * JSONL: one event object per line, for ad-hoc jq/pandas analysis.
//
// Timestamps are microseconds since the tracer's epoch (process start
// or the last `clear()`), taken from std::chrono::steady_clock.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>
#include <cstddef>

namespace witag::obs {

struct TraceEvent {
  const char* name = "";
  const char* cat = "sim";
  char ph = 'X';          ///< 'X' complete span, 'i' instant event.
  double ts_us = 0.0;     ///< Start time (us since tracer epoch).
  double dur_us = 0.0;    ///< Span duration; 0 for instants.
  std::uint32_t tid = 0;  ///< Dense per-process thread id.
  /// Up to two numeric args, exported under "args" in the JSON.
  const char* arg_keys[2] = {nullptr, nullptr};
  double arg_vals[2] = {0.0, 0.0};
};

class Tracer {
 public:
  static Tracer& instance();

  /// Runtime toggle; when off, record sites reduce to a relaxed load.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Streaming mode for long runs: instead of growing each thread
  /// buffer without bound, record() writes into a bounded per-thread
  /// ring (capacity `ring_capacity` events) that a flusher drains with
  /// drain(). When a ring is full the OLDEST event is overwritten and
  /// counted in dropped() — the stream stays fresh and memory stays
  /// flat no matter how far the flusher falls behind. A ring whose
  /// thread exits is retired to a free list and adopted (storage, tid
  /// and any undrained events included) by the next new thread, so a
  /// soak that spawns workers per chunk keeps O(peak threads) rings,
  /// not O(total threads ever). `ring_capacity == 0` restores the
  /// default buffered mode. Switch only while quiesced (no concurrent
  /// record/drain); RunScope does this before workers start.
  void set_streaming(std::size_t ring_capacity);
  bool streaming() const {
    return ring_capacity_.load(std::memory_order_relaxed) != 0;
  }

  /// Drops all buffered events and restarts the timestamp epoch.
  void clear();

  /// Microseconds since the tracer epoch.
  double now_us() const;

  /// Appends one event to the calling thread's buffer (caller has
  /// already checked enabled()).
  void record(const TraceEvent& ev);

  /// Streaming mode: moves every buffered event (all threads, oldest
  /// first per thread) into `out` and empties the rings. Returns the
  /// number of events appended. Safe to call concurrently with
  /// record() — each ring is guarded by its own mutex.
  std::size_t drain(std::vector<TraceEvent>& out);
  /// Cumulative count of events lost to ring overwrite (all threads).
  std::uint64_t dropped() const;

  /// Merged snapshot of all thread buffers, sorted by ts_us.
  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;

  /// Chrome trace-event JSON (object form with "traceEvents").
  void write_chrome_trace(std::ostream& os) const;
  /// One JSON object per line.
  void write_jsonl(std::ostream& os) const;
  /// Writes to `path`; a ".jsonl" suffix selects JSONL, anything else
  /// gets Chrome trace JSON. Throws std::runtime_error if unwritable.
  void write_file(const std::string& path) const;

 private:
  struct ThreadBuf {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;  ///< Buffered mode: grows unbounded.
    // Streaming mode: `events` doubles as a bounded ring of
    // `ring_capacity_` slots. `mu` is per-thread, so the only possible
    // contention is this thread vs the flusher.
    std::mutex mu;
    std::size_t ring_head = 0;  // witag: guarded_by(mu) — oldest live slot
    std::size_t ring_size = 0;  // witag: guarded_by(mu) — live ring events
    std::uint64_t dropped = 0;  // witag: guarded_by(mu) — overwritten count
  };

  Tracer();
  ThreadBuf& local_buf();
  /// Called from the owning thread's exit path; the buf stays in
  /// `bufs_` (pending events still drain) but becomes adoptable.
  void retire_buf(const std::shared_ptr<ThreadBuf>& buf);

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> ring_capacity_{0};  ///< 0 = buffered mode.
  mutable std::mutex mu_;  ///< Guards the buffer roster below.
  std::vector<std::shared_ptr<ThreadBuf>> bufs_;  // witag: guarded_by(mu_)
  /// Rings of exited threads, awaiting adoption (streaming mode only:
  /// in buffered mode every thread's events must stay attributed to
  /// its own tid for the end-of-run trace).
  std::vector<std::shared_ptr<ThreadBuf>> free_bufs_;  // witag: guarded_by(mu_)
  std::uint32_t next_tid_ = 0;  // witag: guarded_by(mu_)
  std::atomic<std::uint64_t> epoch_ns_{0};  ///< steady_clock epoch, ns.
};

/// Appends one event as a Chrome trace-event JSON object to `out` (no
/// trailing newline) — shared by the buffered exporters and the
/// incremental telemetry streamer.
void dump_trace_event(const TraceEvent& ev, std::string& out);

/// True when span/event recording is active (compiled in AND runtime
/// enabled).
inline bool trace_enabled() { return Tracer::instance().enabled(); }

/// RAII span: measures construction-to-destruction as a complete event.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "sim");
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

 private:
  const char* name_;
  const char* cat_;
  double start_us_ = 0.0;
  bool active_;
};

/// Complete ('X') event recorded after the fact with two numeric args —
/// used by the runner to attribute a finished task to the worker thread
/// that ran it. `ts_us` comes from Tracer::now_us() taken at task start.
void complete_arg2(const char* name, double ts_us, double dur_us,
                   const char* k0, double v0, const char* k1, double v1,
                   const char* cat = "sim");

/// Instant events (no duration), with up to two numeric args.
void instant(const char* name, const char* cat = "sim");
void instant_arg(const char* name, const char* k0, double v0,
                 const char* cat = "sim");
void instant_arg2(const char* name, const char* k0, double v0, const char* k1,
                  double v1, const char* cat = "sim");

}  // namespace witag::obs
