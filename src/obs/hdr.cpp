#include "obs/hdr.hpp"

#include <cmath>
#include <stdexcept>
#include <cstddef>

namespace witag::obs {
namespace {

/// Relaxed atomic max on a double cell.
void atomic_max(std::atomic<double>& cell, double x) {
  double cur = cell.load(std::memory_order_relaxed);
  while (x > cur &&
         !cell.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

}  // namespace

HdrHistogram::HdrHistogram(HdrConfig cfg) : cfg_(cfg) {
  if (!(cfg_.lowest > 0.0) || !std::isfinite(cfg_.lowest)) {
    throw std::invalid_argument("HdrHistogram: lowest must be finite and > 0");
  }
  if (cfg_.sub_bucket_bits < 1 || cfg_.sub_bucket_bits > 12) {
    throw std::invalid_argument("HdrHistogram: sub_bucket_bits out of [1,12]");
  }
  if (cfg_.octaves < 1 || cfg_.octaves > 64) {
    throw std::invalid_argument("HdrHistogram: octaves out of [1,64]");
  }
  sub_count_ = std::size_t{1} << cfg_.sub_bucket_bits;
  n_buckets_ = static_cast<std::size_t>(cfg_.octaves) * sub_count_ + 1;
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(n_buckets_);
}

std::size_t HdrHistogram::bucket_index(double x) const {
  if (!(x > cfg_.lowest)) return 0;  // also catches NaN and negatives
  const double u = x / cfg_.lowest;
  int exp2 = 0;
  const double mant = std::frexp(u, &exp2);  // u = mant * 2^exp2, mant in [0.5,1)
  const int octave = exp2 - 1;               // u = (2*mant) * 2^octave
  if (octave >= cfg_.octaves) return n_buckets_ - 1;  // overflow bucket
  // 2*mant in [1,2): linear position within the octave.
  auto sub = static_cast<std::size_t>((2.0 * mant - 1.0) *
                                      static_cast<double>(sub_count_));
  if (sub >= sub_count_) sub = sub_count_ - 1;
  return static_cast<std::size_t>(octave) * sub_count_ + sub;
}

double HdrHistogram::bucket_upper(std::size_t i) const {
  if (i + 1 >= n_buckets_) return max();
  const std::size_t octave = i / sub_count_;
  const std::size_t sub = i % sub_count_;
  return cfg_.lowest * std::ldexp(1.0, static_cast<int>(octave)) *
         (1.0 + static_cast<double>(sub + 1) / static_cast<double>(sub_count_));
}

double HdrHistogram::bucket_lower(std::size_t i) const {
  if (i == 0) return 0.0;
  if (i + 1 >= n_buckets_) {
    return cfg_.lowest * std::ldexp(1.0, cfg_.octaves);
  }
  const std::size_t octave = i / sub_count_;
  const std::size_t sub = i % sub_count_;
  return cfg_.lowest * std::ldexp(1.0, static_cast<int>(octave)) *
         (1.0 + static_cast<double>(sub) / static_cast<double>(sub_count_));
}

void HdrHistogram::record(double x) {
  buckets_[bucket_index(x)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  atomic_max(max_, x);
}

std::uint64_t HdrHistogram::overflow() const {
  return buckets_[n_buckets_ - 1].load(std::memory_order_relaxed);
}

double HdrHistogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < n_buckets_; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return bucket_upper(i);
  }
  return max();  // only reachable under concurrent mutation
}

void HdrHistogram::merge(const HdrHistogram& other) {
  if (!(cfg_ == other.cfg_)) {
    throw std::invalid_argument("HdrHistogram::merge: config mismatch");
  }
  for (std::size_t i = 0; i < n_buckets_; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  atomic_max(max_, other.max());
}

std::vector<std::pair<double, std::uint64_t>> HdrHistogram::nonzero_buckets()
    const {
  std::vector<std::pair<double, std::uint64_t>> out;
  for (std::size_t i = 0; i < n_buckets_; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) out.emplace_back(bucket_upper(i), n);
  }
  return out;
}

void HdrHistogram::reset() {
  for (std::size_t i = 0; i < n_buckets_; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

HdrQuantiles hdr_quantiles(const HdrHistogram& h) {
  HdrQuantiles q;
  q.p50 = h.quantile(0.50);
  q.p90 = h.quantile(0.90);
  q.p99 = h.quantile(0.99);
  q.p999 = h.quantile(0.999);
  q.max = h.max();
  return q;
}

}  // namespace witag::obs
