// Per-run observability scope for bench/example binaries.
//
// A RunScope at the top of main():
//  * resets the process-wide MetricsRegistry so the report covers
//    exactly this run;
//  * reads the standard CLI flags (see util/cli.hpp):
//      --metrics-out <path>  metrics JSON destination
//                            (default "<bench>_metrics.json")
//      --no-metrics          suppress the metrics JSON
//      --trace-out <path>    enable tracing and write a Chrome
//                            trace-event JSON (or JSONL when the path
//                            ends in ".jsonl") on exit
//      --stream-out <path>   streaming mode: enable tracing with
//                            bounded per-thread span rings and run a
//                            background flusher that appends telemetry
//                            JSONL to <path> while the run is live
//                            (tail it with tools/telemetry_tail). With
//                            --trace-out too, the Chrome trace is
//                            written incrementally by the flusher
//                            instead of buffered to end-of-run.
//      --stream-period-ms N  flush period (default 250)
//      --stream-ring N       per-thread span-ring capacity
//                            (default 8192; overflow drops oldest)
//  * on destruction writes the metrics report:
//      {"bench": ..., "config": {...}, "wall_ms": ...,
//       "counters": {...}, "gauges": {...},
//       "histograms": {name: {bounds, counts, count, sum}}}
//    and, when tracing, the trace file.
//
// Crash-safe flush: the first RunScope installs an atexit hook and
// SIGINT/SIGTERM handlers that finish() the active scope (stopping the
// streamer, writing the metrics JSON) before the process dies, so an
// aborted soak keeps everything already streamed plus a final report.
// The signal path re-raises with the default disposition afterwards —
// exit codes still reflect the signal. Telemetry goes to side-channel
// files and stderr only; stdout stays byte-identical with streaming on.
//
// The schema is parsed back by tests/test_obs.cpp via obs/json.hpp, so
// changes here must keep that round-trip green.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>
#include <cstddef>

#include "obs/json.hpp"

namespace witag::util {
class Args;
}  // namespace witag::util

namespace witag::obs {

struct MetricsSnapshot;
class TelemetryStreamer;

/// Builds the metrics-report JSON document (exposed for tests and for
/// callers that want the document without the RAII file handling).
json::Value build_report(
    const std::string& bench,
    const std::vector<std::pair<std::string, json::Value>>& config,
    double wall_ms, const MetricsSnapshot& snapshot);

class RunScope {
 public:
  /// `bench` names the binary in the report and the default output
  /// path. Flags are read from `args` (marking them used).
  RunScope(std::string bench, const util::Args& args);
  /// Variant without CLI flags: metrics to the default path, no trace.
  explicit RunScope(std::string bench);
  RunScope(const RunScope&) = delete;
  RunScope& operator=(const RunScope&) = delete;

  /// Records a configuration key/value into the report.
  void config(const std::string& key, const std::string& value);
  void config(const std::string& key, double value);

  /// Records a parallel run's shape: `jobs` goes into the config block;
  /// the serial estimate (sum of per-task execution times), the
  /// parallel wall time and the realized speedup are exported as
  /// runner.* gauges. Benches call this with the SweepResult fields.
  void parallelism(std::size_t jobs, double serial_estimate_ms,
                   double wall_ms);

  /// Where the metrics JSON will be written; empty when suppressed.
  const std::string& metrics_path() const { return metrics_path_; }
  /// Trace destination; empty when tracing is off.
  const std::string& trace_path() const { return trace_path_; }
  /// Telemetry JSONL destination; empty when not streaming.
  const std::string& stream_path() const { return stream_path_; }
  /// Live streamer (nullptr when not streaming or already finished).
  TelemetryStreamer* streamer() const { return streamer_.get(); }

  /// Writes the report(s) now instead of at destruction (benches that
  /// want the path printed before their own epilogue).
  void finish();

  ~RunScope();

 private:
  void register_crash_flush();

  std::string bench_;
  std::string metrics_path_;
  std::string trace_path_;
  std::string stream_path_;
  std::vector<std::pair<std::string, json::Value>> config_;
  std::unique_ptr<TelemetryStreamer> streamer_;
  double start_us_ = 0.0;
  bool finished_ = false;
};

}  // namespace witag::obs
