// Per-run observability scope for bench/example binaries.
//
// A RunScope at the top of main():
//  * resets the process-wide MetricsRegistry so the report covers
//    exactly this run;
//  * reads the standard CLI flags (see util/cli.hpp):
//      --metrics-out <path>  metrics JSON destination
//                            (default "<bench>_metrics.json")
//      --no-metrics          suppress the metrics JSON
//      --trace-out <path>    enable tracing and write a Chrome
//                            trace-event JSON (or JSONL when the path
//                            ends in ".jsonl") on exit
//  * on destruction writes the metrics report:
//      {"bench": ..., "config": {...}, "wall_ms": ...,
//       "counters": {...}, "gauges": {...},
//       "histograms": {name: {bounds, counts, count, sum}}}
//    and, when tracing, the trace file.
//
// The schema is parsed back by tests/test_obs.cpp via obs/json.hpp, so
// changes here must keep that round-trip green.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace witag::util {
class Args;
}  // namespace witag::util

namespace witag::obs {

struct MetricsSnapshot;

/// Builds the metrics-report JSON document (exposed for tests and for
/// callers that want the document without the RAII file handling).
json::Value build_report(
    const std::string& bench,
    const std::vector<std::pair<std::string, json::Value>>& config,
    double wall_ms, const MetricsSnapshot& snapshot);

class RunScope {
 public:
  /// `bench` names the binary in the report and the default output
  /// path. Flags are read from `args` (marking them used).
  RunScope(std::string bench, const util::Args& args);
  /// Variant without CLI flags: metrics to the default path, no trace.
  explicit RunScope(std::string bench);
  RunScope(const RunScope&) = delete;
  RunScope& operator=(const RunScope&) = delete;

  /// Records a configuration key/value into the report.
  void config(const std::string& key, const std::string& value);
  void config(const std::string& key, double value);

  /// Records a parallel run's shape: `jobs` goes into the config block;
  /// the serial estimate (sum of per-task execution times), the
  /// parallel wall time and the realized speedup are exported as
  /// runner.* gauges. Benches call this with the SweepResult fields.
  void parallelism(std::size_t jobs, double serial_estimate_ms,
                   double wall_ms);

  /// Where the metrics JSON will be written; empty when suppressed.
  const std::string& metrics_path() const { return metrics_path_; }
  /// Trace destination; empty when tracing is off.
  const std::string& trace_path() const { return trace_path_; }

  /// Writes the report(s) now instead of at destruction (benches that
  /// want the path printed before their own epilogue).
  void finish();

  ~RunScope();

 private:
  std::string bench_;
  std::string metrics_path_;
  std::string trace_path_;
  std::vector<std::pair<std::string, json::Value>> config_;
  double start_us_ = 0.0;
  bool finished_ = false;
};

}  // namespace witag::obs
