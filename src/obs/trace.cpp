#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"

namespace witag::obs {
namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void dump_event(const TraceEvent& ev, std::string& out) {
  out += "{\"name\":\"";
  out += json::escape(ev.name);
  out += "\",\"cat\":\"";
  out += json::escape(ev.cat);
  out += "\",\"ph\":\"";
  out += ev.ph;
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(ev.tid);
  out += ",\"ts\":";
  out += json::Value::number(ev.ts_us).dump();
  if (ev.ph == 'X') {
    out += ",\"dur\":";
    out += json::Value::number(ev.dur_us).dump();
  }
  if (ev.ph == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
  if (ev.arg_keys[0] != nullptr) {
    out += ",\"args\":{";
    for (int i = 0; i < 2 && ev.arg_keys[i] != nullptr; ++i) {
      if (i > 0) out += ',';
      out += '"';
      out += json::escape(ev.arg_keys[i]);
      out += "\":";
      out += json::Value::number(ev.arg_vals[i]).dump();
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

Tracer::Tracer() : epoch_ns_(steady_ns()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuf& Tracer::local_buf() {
  thread_local std::shared_ptr<ThreadBuf> buf;
  if (!buf) {
    buf = std::make_shared<ThreadBuf>();
    const std::lock_guard<std::mutex> lock(mu_);
    buf->tid = next_tid_++;
    bufs_.push_back(buf);
  }
  return *buf;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : bufs_) buf->events.clear();
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
}

double Tracer::now_us() const {
  const std::uint64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  return static_cast<double>(steady_ns() - epoch) / 1e3;
}

void Tracer::record(const TraceEvent& ev) {
  ThreadBuf& buf = local_buf();
  TraceEvent copy = ev;
  copy.tid = buf.tid;
  buf.events.push_back(copy);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : bufs_) {
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : bufs_) n += buf->events.size();
  return n;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const auto evs = events();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : evs) {
    if (!first) out += ',';
    out += '\n';
    dump_event(ev, out);
    first = false;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  os << out;
}

void Tracer::write_jsonl(std::ostream& os) const {
  const auto evs = events();
  std::string out;
  for (const TraceEvent& ev : evs) {
    dump_event(ev, out);
    out += '\n';
  }
  os << out;
}

void Tracer::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Tracer: cannot open " + path);
  if (path.size() >= 6 && path.rfind(".jsonl") == path.size() - 6) {
    write_jsonl(out);
  } else {
    write_chrome_trace(out);
  }
}

ScopedSpan::ScopedSpan(const char* name, const char* cat)
    : name_(name), cat_(cat), active_(trace_enabled()) {
  if (active_) start_us_ = Tracer::instance().now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tracer& tracer = Tracer::instance();
  TraceEvent ev;
  ev.name = name_;
  ev.cat = cat_;
  ev.ph = 'X';
  ev.ts_us = start_us_;
  ev.dur_us = tracer.now_us() - start_us_;
  tracer.record(ev);
}

void complete_arg2(const char* name, double ts_us, double dur_us,
                   const char* k0, double v0, const char* k1, double v1,
                   const char* cat) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'X';
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.arg_keys[0] = k0;
  ev.arg_vals[0] = v0;
  ev.arg_keys[1] = k1;
  ev.arg_vals[1] = v1;
  Tracer::instance().record(ev);
}

void instant(const char* name, const char* cat) {
  if (!trace_enabled()) return;
  Tracer& tracer = Tracer::instance();
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'i';
  ev.ts_us = tracer.now_us();
  tracer.record(ev);
}

void instant_arg(const char* name, const char* k0, double v0,
                 const char* cat) {
  if (!trace_enabled()) return;
  Tracer& tracer = Tracer::instance();
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'i';
  ev.ts_us = tracer.now_us();
  ev.arg_keys[0] = k0;
  ev.arg_vals[0] = v0;
  tracer.record(ev);
}

void instant_arg2(const char* name, const char* k0, double v0, const char* k1,
                  double v1, const char* cat) {
  if (!trace_enabled()) return;
  Tracer& tracer = Tracer::instance();
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'i';
  ev.ts_us = tracer.now_us();
  ev.arg_keys[0] = k0;
  ev.arg_vals[0] = v0;
  ev.arg_keys[1] = k1;
  ev.arg_vals[1] = v1;
  tracer.record(ev);
}

}  // namespace witag::obs
