#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <cstddef>

#include "obs/json.hpp"

namespace witag::obs {
namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void dump_trace_event(const TraceEvent& ev, std::string& out) {
  out += "{\"name\":\"";
  out += json::escape(ev.name);
  out += "\",\"cat\":\"";
  out += json::escape(ev.cat);
  out += "\",\"ph\":\"";
  out += ev.ph;
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(ev.tid);
  out += ",\"ts\":";
  out += json::Value::number(ev.ts_us).dump();
  if (ev.ph == 'X') {
    out += ",\"dur\":";
    out += json::Value::number(ev.dur_us).dump();
  }
  if (ev.ph == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
  if (ev.arg_keys[0] != nullptr) {
    out += ",\"args\":{";
    for (int i = 0; i < 2 && ev.arg_keys[i] != nullptr; ++i) {
      if (i > 0) out += ',';
      out += '"';
      out += json::escape(ev.arg_keys[i]);
      out += "\":";
      out += json::Value::number(ev.arg_vals[i]).dump();
    }
    out += '}';
  }
  out += '}';
}

Tracer::Tracer() : epoch_ns_(steady_ns()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuf& Tracer::local_buf() {
  // The handle's destructor runs at thread exit (before static-duration
  // teardown on the main thread), returning the ring to the free list.
  struct BufHandle {
    std::shared_ptr<ThreadBuf> buf;
    ~BufHandle() {
      if (buf) Tracer::instance().retire_buf(buf);
    }
  };
  thread_local BufHandle handle;
  if (!handle.buf) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (ring_capacity_.load(std::memory_order_relaxed) != 0 &&
        !free_bufs_.empty()) {
      handle.buf = std::move(free_bufs_.back());
      free_bufs_.pop_back();
    } else {
      handle.buf = std::make_shared<ThreadBuf>();
      handle.buf->tid = next_tid_++;
      bufs_.push_back(handle.buf);
    }
  }
  return *handle.buf;
}

void Tracer::retire_buf(const std::shared_ptr<ThreadBuf>& buf) {
  const std::lock_guard<std::mutex> lock(mu_);
  free_bufs_.push_back(buf);
}

void Tracer::set_streaming(std::size_t ring_capacity) {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_.store(ring_capacity, std::memory_order_relaxed);
  for (auto& buf : bufs_) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
    if (ring_capacity != 0) buf->events.resize(ring_capacity);
    buf->events.shrink_to_fit();
    buf->ring_head = 0;
    buf->ring_size = 0;
    buf->dropped = 0;
  }
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t cap = ring_capacity_.load(std::memory_order_relaxed);
  for (auto& buf : bufs_) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
    if (cap != 0) buf->events.resize(cap);
    buf->ring_head = 0;
    buf->ring_size = 0;
    buf->dropped = 0;
  }
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
}

double Tracer::now_us() const {
  const std::uint64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  return static_cast<double>(steady_ns() - epoch) / 1e3;
}

void Tracer::record(const TraceEvent& ev) {
  ThreadBuf& buf = local_buf();
  TraceEvent copy = ev;
  copy.tid = buf.tid;
  const std::size_t cap = ring_capacity_.load(std::memory_order_relaxed);
  if (cap == 0) {
    buf.events.push_back(copy);
    return;
  }
  // Streaming: bounded ring, drop-oldest. The per-thread mutex is
  // uncontended except for the brief flusher drain, so this stays a
  // handful of ns on the hot path.
  const std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.events.size() != cap) buf.events.resize(cap);  // mode just flipped
  if (buf.ring_size == cap) {
    buf.events[buf.ring_head] = copy;  // overwrite the oldest
    buf.ring_head = (buf.ring_head + 1) % cap;
    ++buf.dropped;
  } else {
    buf.events[(buf.ring_head + buf.ring_size) % cap] = copy;
    ++buf.ring_size;
  }
}

std::size_t Tracer::drain(std::vector<TraceEvent>& out) {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    bufs = bufs_;
  }
  const std::size_t cap = ring_capacity_.load(std::memory_order_relaxed);
  std::size_t drained = 0;
  for (auto& buf : bufs) {
    const std::lock_guard<std::mutex> lock(buf->mu);
    if (cap == 0 || buf->events.empty()) continue;
    for (std::size_t i = 0; i < buf->ring_size; ++i) {
      out.push_back(buf->events[(buf->ring_head + i) % cap]);
      ++drained;
    }
    buf->ring_head = 0;
    buf->ring_size = 0;
  }
  return drained;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& buf : bufs_) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->dropped;
  }
  return n;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : bufs_) {
      const std::lock_guard<std::mutex> buf_lock(buf->mu);
      if (ring_capacity_.load(std::memory_order_relaxed) != 0) {
        for (std::size_t i = 0; i < buf->ring_size; ++i) {
          out.push_back(
              buf->events[(buf->ring_head + i) % buf->events.size()]);
        }
      } else {
        out.insert(out.end(), buf->events.begin(), buf->events.end());
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  const bool ring = ring_capacity_.load(std::memory_order_relaxed) != 0;
  std::size_t n = 0;
  for (const auto& buf : bufs_) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += ring ? buf->ring_size : buf->events.size();
  }
  return n;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const auto evs = events();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : evs) {
    if (!first) out += ',';
    out += '\n';
    dump_trace_event(ev, out);
    first = false;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  os << out;
}

void Tracer::write_jsonl(std::ostream& os) const {
  const auto evs = events();
  std::string out;
  for (const TraceEvent& ev : evs) {
    dump_trace_event(ev, out);
    out += '\n';
  }
  os << out;
}

void Tracer::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Tracer: cannot open " + path);
  if (path.size() >= 6 && path.rfind(".jsonl") == path.size() - 6) {
    write_jsonl(out);
  } else {
    write_chrome_trace(out);
  }
}

ScopedSpan::ScopedSpan(const char* name, const char* cat)
    : name_(name), cat_(cat), active_(trace_enabled()) {
  if (active_) start_us_ = Tracer::instance().now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tracer& tracer = Tracer::instance();
  TraceEvent ev;
  ev.name = name_;
  ev.cat = cat_;
  ev.ph = 'X';
  ev.ts_us = start_us_;
  ev.dur_us = tracer.now_us() - start_us_;
  tracer.record(ev);
}

void complete_arg2(const char* name, double ts_us, double dur_us,
                   const char* k0, double v0, const char* k1, double v1,
                   const char* cat) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'X';
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.arg_keys[0] = k0;
  ev.arg_vals[0] = v0;
  ev.arg_keys[1] = k1;
  ev.arg_vals[1] = v1;
  Tracer::instance().record(ev);
}

void instant(const char* name, const char* cat) {
  if (!trace_enabled()) return;
  Tracer& tracer = Tracer::instance();
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'i';
  ev.ts_us = tracer.now_us();
  tracer.record(ev);
}

void instant_arg(const char* name, const char* k0, double v0,
                 const char* cat) {
  if (!trace_enabled()) return;
  Tracer& tracer = Tracer::instance();
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'i';
  ev.ts_us = tracer.now_us();
  ev.arg_keys[0] = k0;
  ev.arg_vals[0] = v0;
  tracer.record(ev);
}

void instant_arg2(const char* name, const char* k0, double v0, const char* k1,
                  double v1, const char* cat) {
  if (!trace_enabled()) return;
  Tracer& tracer = Tracer::instance();
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'i';
  ev.ts_us = tracer.now_us();
  ev.arg_keys[0] = k0;
  ev.arg_vals[0] = v0;
  ev.arg_keys[1] = k1;
  ev.arg_vals[1] = v1;
  tracer.record(ev);
}

}  // namespace witag::obs
