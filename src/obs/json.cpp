#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace witag::obs::json {
namespace {

[[noreturn]] void fail(std::string_view what, std::size_t pos) {
  throw std::invalid_argument("json: " + std::string(what) + " at byte " +
                              std::to_string(pos));
}

/// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    skip_ws();
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content", pos_);
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  std::size_t pos_ = 0;

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'", pos_ - 1);
  }

  void expect_word(std::string_view word) {
    for (const char c : word) {
      if (pos_ >= text_.size() || text_[pos_] != c) fail("bad literal", pos_);
      ++pos_;
    }
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep", pos_);
    switch (peek()) {
      case 'n':
        expect_word("null");
        return Value();
      case 't':
        expect_word("true");
        return Value::boolean(true);
      case 'f':
        expect_word("false");
        return Value::boolean(false);
      case '"':
        return Value::string(parse_string());
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return Value::number(parse_number());
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control char", pos_);
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("bad escape", pos_ - 1);
      }
    }
  }

  std::string parse_unicode_escape() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape", pos_ - 1);
      }
    }
    // Encode the code point as UTF-8 (surrogate pairs are passed through
    // as-is; the exporters never emit them).
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0u | (code >> 6));
      out += static_cast<char>(0x80u | (code & 0x3Fu));
    } else {
      out += static_cast<char>(0xE0u | (code >> 12));
      out += static_cast<char>(0x80u | ((code >> 6) & 0x3Fu));
      out += static_cast<char>(0x80u | (code & 0x3Fu));
    }
    return out;
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("expected number", start);
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("expected fraction digits", pos_);
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("expected exponent digits", pos_);
    }
    return std::stod(std::string(text_.substr(start, pos_ - start)));
  }

  Value parse_array(int depth) {
    expect('[');
    Value out = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      out.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'", pos_ - 1);
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Value out = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      out.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}'", pos_ - 1);
    }
  }
};

}  // namespace

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double x) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.num_ = x;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

Value Value::parse(std::string_view text) { return Parser(text).run(); }

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) throw std::logic_error("json: not a bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) throw std::logic_error("json: not a number");
  return num_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) throw std::logic_error("json: not a string");
  return str_;
}

std::size_t Value::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  if (kind_ == Kind::kObject) return obj_.size();
  throw std::logic_error("json: size() on a scalar");
}

const Value& Value::operator[](std::size_t i) const {
  if (kind_ != Kind::kArray) throw std::logic_error("json: not an array");
  return arr_.at(i);
}

void Value::push_back(Value v) {
  if (kind_ != Kind::kArray) throw std::logic_error("json: not an array");
  arr_.push_back(std::move(v));
}

bool Value::has(const std::string& key) const {
  if (kind_ != Kind::kObject) throw std::logic_error("json: not an object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return true;
  }
  return false;
}

const Value& Value::at(const std::string& key) const {
  if (kind_ != Kind::kObject) throw std::logic_error("json: not an object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  throw std::out_of_range("json: missing key \"" + key + "\"");
}

void Value::set(const std::string& key, Value v) {
  if (kind_ != Kind::kObject) throw std::logic_error("json: not an object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (kind_ != Kind::kObject) throw std::logic_error("json: not an object");
  return obj_;
}

void Value::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber: {
      if (!std::isfinite(num_)) {
        out += "null";  // JSON has no Inf/NaN; null keeps the document valid
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", num_);
      // Prefer the short form when it round-trips (keeps files readable).
      char short_buf[32];
      std::snprintf(short_buf, sizeof short_buf, "%.12g", num_);
      out += (std::stod(short_buf) == num_) ? short_buf : buf;
      break;
    }
    case Kind::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& v : arr_) {
        if (!first) out += ',';
        v.dump_to(out);
        first = false;
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        out += '"';
        out += escape(k);
        out += "\":";
        v.dump_to(out);
        first = false;
      }
      out += '}';
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace witag::obs::json
