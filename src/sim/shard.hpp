// Internal shard/cell state for the city simulator. city.cpp builds
// these; city_run.cpp's event loop advances them. Not an API surface —
// bench and test code drive sim/city.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/hdr.hpp"
#include "sim/event_queue.hpp"
#include "witag/metrics.hpp"
#include "witag/reader.hpp"
#include "witag/session.hpp"
#include "witag/supervisor.hpp"

namespace witag::sim {

/// One deployment cell: an AP + client + tag triple with its own fully
/// independent Session (channel, MAC, RNG). Only its owning shard
/// touches a cell during an epoch. Non-movable (the HDR histogram and
/// the Reader/supervisor back-references pin the address), so cells
/// live behind unique_ptr.
struct Cell {
  std::unique_ptr<core::Session> session;
  /// Supervised mode only; reader references the session, supervisor
  /// the reader — construction order matters, destruction is reversed.
  std::unique_ptr<core::Reader> reader;
  std::unique_ptr<core::LinkSupervisor> supervisor;

  core::LinkMetrics metrics;
  /// Simulated us between consecutive successful exchanges/deliveries.
  obs::HdrHistogram latency;
  double last_delivery_us = 0.0;
  bool delivered_once = false;
  /// Client airtime accumulated in the current epoch (reset at each
  /// barrier; becomes the cell's interference load).
  double epoch_airtime_us = 0.0;
  std::size_t deliveries_ok = 0;
  std::size_t deliveries_failed = 0;

  Cell() = default;
  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;
};

/// A pure execution partition: the cells assigned to one worker plus
/// their shared event calendar.
struct Shard {
  std::vector<std::uint32_t> cells;
  EventQueue calendar;
  std::uint64_t events = 0;
  /// Busy wall time across epochs (observability; runner::steady_ms).
  double busy_ms = 0.0;
};

/// Advances one shard to `epoch_end_us`: pops calendar events with
/// time_us < epoch_end_us, runs the exchange/delivery they stand for,
/// and schedules each cell's next event. The hot loop — no container
/// construction, no registry lookups beyond the hoisted WITAG macros,
/// event nodes recycled through the calendar pool.
void run_shard_epoch(Shard& shard, const std::vector<std::unique_ptr<Cell>>& cells,
                     double epoch_end_us, bool supervised);

}  // namespace witag::sim
