#include "sim/event_queue.hpp"

#include <utility>

namespace witag::sim {

void EventQueue::reserve(std::size_t n) {
  nodes_.reserve(n);
  free_.reserve(n);
  heap_.reserve(n);
}

bool EventQueue::before(std::uint32_t a, std::uint32_t b) const {
  const Event& ea = nodes_[a];
  const Event& eb = nodes_[b];
  if (ea.time_us != eb.time_us) return ea.time_us < eb.time_us;
  return ea.seq < eb.seq;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    std::size_t best = left;
    const std::size_t right = left + 1;
    if (right < n && before(heap_[right], heap_[left])) best = right;
    if (!before(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void EventQueue::push(double time_us, std::uint32_t cell, EventKind kind) {
  std::uint32_t node;
  if (!free_.empty()) {
    node = free_.back();
    free_.pop_back();
    ++pool_reuses_;
  } else {
    node = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Event& e = nodes_[node];
  e.time_us = time_us;
  e.seq = next_seq_++;
  e.cell = cell;
  e.kind = kind;
  heap_.push_back(node);
  sift_up(heap_.size() - 1);
}

Event EventQueue::pop() {
  const std::uint32_t node = heap_.front();
  const Event out = nodes_[node];
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  free_.push_back(node);
  return out;
}

}  // namespace witag::sim
