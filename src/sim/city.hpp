// City-scale sharded discrete-event simulator: thousands of APs, tags
// and clients in one deterministic process.
//
// A deployment is a grid of cells; each cell is one WiTAG triple
// (AP + client + tag) owning a full core::Session — its own channel,
// MAC, PHY and RNG, seeded with util::Rng::derive_seed(seed, cell).
// Cells are partitioned round-robin into shards; a shard owns an event
// calendar (sim/event_queue.hpp) whose entries are exchanges in its
// cells, and shards execute in parallel (one worker per shard via
// runner::parallel_map).
//
// Determinism contract (tested in tests/test_sim.cpp; DESIGN.md
// section 17):
//  * Within an epoch, cells are fully independent — no shared mutable
//    state, no cross-cell reads. A shard is therefore a pure execution
//    partition: the events of one cell always process in time order
//    relative to each other, and interleaving with OTHER cells' events
//    (which depends on the shard layout) cannot affect any cell's
//    results.
//  * Cross-cell coupling happens only at epoch barriers: every shard
//    finishes the epoch, the per-cell airtime loads are gathered in
//    cell order, and sim/interference.hpp computes each cell's ambient
//    noise floor for the next epoch as a pure function of ALL loads.
//  * Results merge in cell-index order (LinkMetrics and HdrHistogram
//    merges are associative and commutative).
// Net: run_city output is byte-identical across --jobs AND shard
// counts; only stderr timing differs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/hdr.hpp"
#include "witag/metrics.hpp"

namespace witag::sim {

struct CityConfig {
  /// Cells in the deployment; each cell is 3 nodes (AP, client, tag).
  std::size_t n_cells = 16;
  /// Shard count; 0 = auto (2x the worker count, so the scheduler can
  /// balance uneven shards, capped at n_cells).
  std::size_t n_shards = 0;
  /// Epoch barriers: interference recomputes this many times.
  std::size_t epochs = 4;
  /// Simulated epoch length [us of city time].
  double epoch_us = 2'000.0;
  /// Fixed query MCS for every cell. Keep this high: WiTAG reads bits
  /// through subframes the tag *corrupts*, and a robust low-MCS frame
  /// shrugs the perturbation off (missed corruptions push BER toward
  /// 0.5 — the paper's figure 5 reads MCS the same way).
  unsigned mcs = 5;
  /// Subframes per query A-MPDU (small keeps exchanges cheap; the city
  /// bench cares about scale, not per-link throughput).
  unsigned n_subframes = 16;
  /// Wrap each cell's session in a Reader + LinkSupervisor and make
  /// events whole payload deliveries instead of raw exchanges
  /// (escalation ladders and retry backoff then run per cell).
  bool supervised = false;
  /// Tag-to-client distance inside every cell [m]. 2 m keeps the tag
  /// perturbation comfortably above threshold (paper figure 5); push
  /// toward 4+ m to study the weak-tag regime at scale.
  double tag_pos_m = 2.0;
  /// Grid pitch between neighbouring cell centers [m].
  double cell_spacing_m = 25.0;
  /// Multiplier on the pairwise interference coupling. 1.0 is the raw
  /// co-channel physics — every cell on the same channel, which at
  /// 25 m pitch puts neighbour power at parity with a ~12 m AP link
  /// and drowns the deployment. The default models a channel-planned
  /// city (1-in-3 reuse plus adjacent-channel leakage, roughly
  /// -17 dB): scale it up to study the congested regime, 0 disables
  /// cross-cell interference entirely.
  double coupling_scale = 0.02;
  std::uint64_t seed = 1;
};

struct CityResult {
  /// All cells' link metrics folded in cell-index order.
  core::LinkMetrics merged;
  /// Delivery-latency distribution [simulated us]: time between
  /// consecutive successful exchanges (raw) or deliveries (supervised)
  /// per cell, merged across cells.
  obs::HdrQuantiles latency_us;
  std::uint64_t latency_count = 0;
  /// Calendar events processed across all shards and epochs.
  std::uint64_t events = 0;
  /// Event-pool nodes recycled (EventQueue::pool_reuses summed): in
  /// steady state every scheduled event reuses a node, so this
  /// approaches `events` minus the pool high-water mark.
  std::uint64_t pool_reuses = 0;
  /// Peak pooled nodes across shards (allocation high-water mark).
  std::size_t pool_peak = 0;
  /// Supervised mode only.
  std::size_t deliveries_ok = 0;
  std::size_t deliveries_failed = 0;
  /// Mean ambient interference floor over cells at the last barrier [W].
  double mean_ambient_w = 0.0;
  std::size_t shards = 0;
  std::size_t jobs = 1;
  /// Wall time of the sharded run and the sum of per-shard busy time
  /// (what a serial run would cost); their ratio is the realized
  /// speedup. Observability only — report to stderr, never stdout.
  double wall_ms = 0.0;
  double serial_estimate_ms = 0.0;
};

/// Runs the deployment: builds n_cells sessions, partitions them into
/// shards, and advances epochs with interference barriers between
/// them. `jobs` follows the repo convention (0 = hardware concurrency,
/// 1 = fully serial on the calling thread).
CityResult run_city(const CityConfig& cfg, std::size_t jobs);

}  // namespace witag::sim
