#include "sim/interference.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "channel/pathloss.hpp"
#include "util/require.hpp"

namespace witag::sim {

std::vector<channel::Point2> cell_grid(std::size_t n, util::Meters spacing) {
  std::vector<channel::Point2> centers;
  centers.reserve(n);
  const std::size_t cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(std::max<std::size_t>(n, 1)))));
  for (std::size_t i = 0; i < n; ++i) {
    const double col = static_cast<double>(i % cols);
    const double row = static_cast<double>(i / cols);
    centers.push_back({col * spacing.value(), row * spacing.value()});
  }
  return centers;
}

CouplingMatrix::CouplingMatrix(const std::vector<channel::Point2>& centers,
                               util::Hertz carrier, util::Watts tx_power,
                               double scale)
    : n_(centers.size()), gains_(centers.size() * centers.size(), 0.0) {
  // Per-subcarrier interference power: the interferer spreads its tx
  // power evenly over the 56 used subcarriers (matching ChannelModel's
  // amp_scale normalization), so the entry composes directly with the
  // per-subcarrier noise variance the ambient floor feeds into.
  constexpr double kUsedSubcarriers = 56.0;
  const double p_per_subcarrier = tx_power.value() / kUsedSubcarriers;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i == j) continue;
      const util::Meters d{channel::distance(centers[i], centers[j])};
      const std::complex<double> g = channel::direct_gain(d, carrier);
      gains_[i * n_ + j] = p_per_subcarrier * std::norm(g) * scale;
    }
  }
}

std::vector<double> ambient_noise(const CouplingMatrix& coupling,
                                  const std::vector<double>& loads) {
  const std::size_t n = coupling.size();
  WITAG_REQUIRE(loads.size() == n);
  std::vector<double> ambient(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double load = std::clamp(loads[j], 0.0, 1.0);
      acc += coupling.at(i, j) * load;
    }
    ambient[i] = acc;
  }
  return ambient;
}

}  // namespace witag::sim
