// Deterministic discrete-event calendar for the city simulator: a
// binary min-heap over pooled event nodes, ordered by (time_us, seq).
//
// Determinism: two events at the same simulated time pop in push order
// — `seq` is a monotonic counter assigned at push, so ties break FIFO
// and the pop sequence is a pure function of the push sequence, never
// of heap internals or platform sort behavior.
//
// Allocation: event nodes live in a pool with an intrusive free list.
// push() reuses a freed node when one exists (counted in pool_reuses)
// and only grows the pool past its high-water mark — so a steady-state
// loop that pops one event and pushes its successor allocates nothing
// after warm-up. reserve() pre-sizes the pool and heap for a known
// deployment so even warm-up stays out of the epoch loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace witag::sim {

/// What a calendar entry means to the city loop.
enum class EventKind : std::uint8_t {
  kExchange = 0,  ///< One query/block-ack exchange in a cell.
};

struct Event {
  double time_us = 0.0;   ///< Simulated time (city clock, microseconds).
  std::uint64_t seq = 0;  ///< Push order; breaks time ties FIFO.
  std::uint32_t cell = 0;
  EventKind kind = EventKind::kExchange;
};

class EventQueue {
 public:
  /// Pre-sizes pool and heap for `n` concurrently pending events.
  void reserve(std::size_t n);

  /// Schedules an event; `seq` is assigned internally (push order).
  void push(double time_us, std::uint32_t cell,
            EventKind kind = EventKind::kExchange);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Earliest event by (time_us, seq). Requires !empty().
  const Event& top() const { return nodes_[heap_.front()]; }

  /// Removes and returns the earliest event. Requires !empty().
  Event pop();

  /// Nodes handed out from the free list instead of grown — the
  /// steady-state gauge: once warm, every push should be a reuse.
  std::uint64_t pool_reuses() const { return pool_reuses_; }
  /// Total nodes ever allocated (the pool's high-water mark).
  std::size_t pool_size() const { return nodes_.size(); }

 private:
  bool before(std::uint32_t a, std::uint32_t b) const;
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Event> nodes_;          ///< Pooled storage, never shrinks.
  std::vector<std::uint32_t> free_;   ///< Indices of recycled nodes.
  std::vector<std::uint32_t> heap_;   ///< Min-heap of node indices.
  std::uint64_t next_seq_ = 0;
  std::uint64_t pool_reuses_ = 0;
};

}  // namespace witag::sim
