// City deployment setup, epoch orchestration and result merge. The
// per-event hot path lives in city_run.cpp; the determinism argument
// for the whole arrangement is in city.hpp and DESIGN.md section 17.
#include "sim/city.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/obs.hpp"
#include "runner/parallel_sweep.hpp"
#include "runner/thread_pool.hpp"
#include "sim/interference.hpp"
#include "sim/shard.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"
#include "witag/config.hpp"

namespace witag::sim {
namespace {

/// Per-cell session config: the paper's LOS lab triple, re-seeded per
/// cell with the O(1) derive_seed fan-out. Every cell shares the same
/// intra-cell geometry — individuality comes from the seed (fading,
/// noise draws) and from the grid position's interference exposure.
core::SessionConfig cell_config(const CityConfig& city, std::size_t cell) {
  core::SessionConfig cfg = core::los_testbed_config(
      util::Meters{city.tag_pos_m}, util::Rng::derive_seed(city.seed, cell));
  cfg.query.mcs_index = city.mcs;
  cfg.query.n_subframes = city.n_subframes;
  return cfg;
}

}  // namespace

CityResult run_city(const CityConfig& cfg, std::size_t jobs) {
  WITAG_REQUIRE(cfg.n_cells > 0);
  WITAG_REQUIRE(cfg.epochs > 0);
  WITAG_REQUIRE(cfg.epoch_us > 0.0);
  WITAG_SPAN_CAT("sim.run_city", "sim");

  CityResult result;
  result.jobs = jobs == 0 ? runner::default_jobs() : jobs;
  // Default to 2x the worker count so uneven shard costs can balance;
  // an explicit n_shards is honoured exactly (capped at one cell per
  // shard) — results are identical either way, only wall time moves.
  std::size_t n_shards = cfg.n_shards == 0
                             ? std::max<std::size_t>(1, 2 * result.jobs)
                             : cfg.n_shards;
  n_shards = std::min(n_shards, cfg.n_cells);
  result.shards = n_shards;

  // --- Setup (allocation-heavy, outside the timed epoch loop). -------
  std::vector<std::unique_ptr<Cell>> cells;
  cells.reserve(cfg.n_cells);
  for (std::size_t c = 0; c < cfg.n_cells; ++c) {
    auto cell = std::make_unique<Cell>();
    cell->session = std::make_unique<core::Session>(cell_config(cfg, c));
    if (cfg.supervised) {
      cell->reader = std::make_unique<core::Reader>(*cell->session,
                                                    core::ReaderConfig{});
      cell->supervisor = std::make_unique<core::LinkSupervisor>(
          *cell->reader, core::SupervisorConfig{});
    }
    cells.push_back(std::move(cell));
  }

  const core::SessionConfig& radio_ref = cells.front()->session->config();
  const CouplingMatrix coupling(
      cell_grid(cfg.n_cells, util::Meters{cfg.cell_spacing_m}),
      radio_ref.radio.carrier_hz, util::to_watts(radio_ref.radio.tx_power_dbm),
      cfg.coupling_scale);

  // Round-robin partition: shard s owns cells {c : c mod n_shards == s}
  // — a pure function of (n_cells, n_shards), balanced to within one
  // cell. First events seeded in cell order so calendar seq numbers are
  // deterministic too.
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    shards.push_back(std::make_unique<Shard>());
  }
  for (std::size_t c = 0; c < cfg.n_cells; ++c) {
    shards[c % n_shards]->cells.push_back(static_cast<std::uint32_t>(c));
  }
  for (auto& shard : shards) {
    // One pending event per cell at any time (an exchange schedules
    // its successor), so the pool high-water mark is the cell count.
    shard->calendar.reserve(shard->cells.size() + 1);
    for (const std::uint32_t c : shard->cells) {
      shard->calendar.push(0.0, c);
    }
  }

  // --- Epoch loop with interference barriers. ------------------------
  std::vector<double> loads(cfg.n_cells, 0.0);
  const double t0_ms = runner::steady_ms();
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    const double epoch_end_us =
        static_cast<double>(epoch + 1) * cfg.epoch_us;
    runner::parallel_map(n_shards, result.jobs, [&](std::size_t s) -> int {
      // Thread CPU time, not wall: on an oversubscribed machine a
      // descheduled shard accrues nothing, so the summed busy time
      // stays an honest serial-cost estimate.
      const double start_ms = runner::thread_cpu_ms();
      run_shard_epoch(*shards[s], cells, epoch_end_us, cfg.supervised);
      shards[s]->busy_ms += runner::thread_cpu_ms() - start_ms;
      return 0;
    });
    // Barrier: gather loads in cell order, recompute every cell's
    // ambient floor for the next epoch (pure function of all loads).
    for (std::size_t c = 0; c < cfg.n_cells; ++c) {
      loads[c] = cells[c]->epoch_airtime_us / cfg.epoch_us;
      cells[c]->epoch_airtime_us = 0.0;
    }
    if (cfg.coupling_scale > 0.0) {
      const std::vector<double> ambient = ambient_noise(coupling, loads);
      double acc = 0.0;
      for (std::size_t c = 0; c < cfg.n_cells; ++c) {
        cells[c]->session->channel().set_ambient_noise(
            util::Watts{ambient[c]});
        acc += ambient[c];
      }
      result.mean_ambient_w = acc / static_cast<double>(cfg.n_cells);
    }
    WITAG_COUNT("sim.epochs", 1);
  }
  result.wall_ms = runner::steady_ms() - t0_ms;

  // --- Merge in cell-index order (associative + commutative folds, so
  // the totals are independent of shard layout by construction). ------
  obs::HdrHistogram latency;
  for (std::size_t c = 0; c < cfg.n_cells; ++c) {
    result.merged.merge(cells[c]->metrics);
    latency.merge(cells[c]->latency);
    result.deliveries_ok += cells[c]->deliveries_ok;
    result.deliveries_failed += cells[c]->deliveries_failed;
  }
  result.latency_us = obs::hdr_quantiles(latency);
  result.latency_count = latency.count();
  for (const auto& shard : shards) {
    result.events += shard->events;
    result.pool_reuses += shard->calendar.pool_reuses();
    result.pool_peak = std::max(result.pool_peak, shard->calendar.pool_size());
    result.serial_estimate_ms += shard->busy_ms;
  }
  WITAG_COUNT("sim.cells", cfg.n_cells);
  WITAG_COUNT("sim.events", result.events);
  obs::gauge("sim.pool.reuses").set(static_cast<double>(result.pool_reuses));
  obs::gauge("sim.pool.peak").set(static_cast<double>(result.pool_peak));
  return result;
}

}  // namespace witag::sim
