// Cross-cell interference for the city simulator, applied at epoch
// boundaries.
//
// Within an epoch, cells are fully independent: each owns its Session,
// channel and RNG, so shards are pure execution partitions. What ties
// the deployment together is co-channel interference — a busy
// neighbour raises your noise floor. That coupling is computed here as
// a pure function of (geometry, per-cell epoch airtime loads): cell
// i's ambient floor for the next epoch is
//
//   ambient_i = tx_power * sum_{j != i} |direct_gain(d_ij)|^2 * load_j
//
// where load_j = airtime_j / epoch_us in [0, 1] is the fraction of the
// epoch cell j's client spent on the air. Because the function sees
// ALL cells' loads at a barrier and touches no RNG, the result is
// byte-identical for any shard count or worker count (DESIGN.md
// section 17).
#pragma once

#include <cstddef>
#include <vector>

#include "channel/geometry.hpp"
#include "util/units.hpp"

namespace witag::sim {

/// Cell-center positions for an `n`-cell deployment: a square grid with
/// `spacing` metres of pitch, row-major from the origin. Pure function
/// of (n, spacing); every layer derives geometry from this one list.
std::vector<channel::Point2> cell_grid(std::size_t n, util::Meters spacing);

/// Dense pairwise power-coupling matrix (row-major, n x n): entry
/// [i * n + j] is tx_power * |direct_gain(distance(i, j))|^2 * scale,
/// with zero diagonal. Built once at setup from the cell grid.
class CouplingMatrix {
 public:
  CouplingMatrix() = default;
  CouplingMatrix(const std::vector<channel::Point2>& centers,
                 util::Hertz carrier, util::Watts tx_power, double scale);

  std::size_t size() const { return n_; }
  double at(std::size_t i, std::size_t j) const { return gains_[i * n_ + j]; }

 private:
  std::size_t n_ = 0;
  std::vector<double> gains_;
};

/// Ambient noise floor per cell [W per subcarrier] for the next epoch,
/// from this epoch's per-cell airtime loads (each in [0, 1]; values
/// outside are clamped). Requires loads.size() == coupling.size().
std::vector<double> ambient_noise(const CouplingMatrix& coupling,
                                  const std::vector<double>& loads);

}  // namespace witag::sim
