// The city simulator's hot event loop. Split from city.cpp (setup,
// barriers, merge — where allocation is fine) so the per-event path
// stays under the hot-alloc lint: pooled calendar nodes, no container
// construction, metric handles hoisted by the WITAG_* macros.
#include "sim/shard.hpp"

#include <memory>
#include <vector>

#include "obs/obs.hpp"

namespace witag::sim {
namespace {

/// One raw exchange in `cell` starting at `now_us`; returns the
/// simulated time its airtime ends.
double run_exchange(Cell& cell, double now_us) {
  const core::Session::RoundResult r = cell.session->run_round();
  cell.metrics.record_round(r.sent, r.received, r.lost, r.airtime_us);
  const double end_us = now_us + r.airtime_us.value();
  cell.epoch_airtime_us += r.airtime_us.value();
  if (!r.lost) {
    if (cell.delivered_once) {
      cell.latency.record(end_us - cell.last_delivery_us);
    }
    cell.last_delivery_us = end_us;
    cell.delivered_once = true;
  }
  return end_us;
}

/// One supervised payload delivery (Reader + LinkSupervisor ladder).
double run_delivery(Cell& cell, double now_us) {
  const core::LinkSupervisor::DeliveryResult r =
      cell.supervisor->deliver(0);
  const double end_us = now_us + r.airtime_us.value();
  cell.epoch_airtime_us += r.airtime_us.value();
  if (r.ok) {
    ++cell.deliveries_ok;
    if (cell.delivered_once) {
      cell.latency.record(end_us - cell.last_delivery_us);
    }
    cell.last_delivery_us = end_us;
    cell.delivered_once = true;
  } else {
    ++cell.deliveries_failed;
  }
  return end_us;
}

}  // namespace

void run_shard_epoch(Shard& shard,
                     const std::vector<std::unique_ptr<Cell>>& cells,
                     double epoch_end_us, bool supervised) {
  while (!shard.calendar.empty() &&
         shard.calendar.top().time_us < epoch_end_us) {
    const Event ev = shard.calendar.pop();
    Cell& cell = *cells[ev.cell];
    const double end_us = supervised ? run_delivery(cell, ev.time_us)
                                     : run_exchange(cell, ev.time_us);
    const double gap_us =
        cell.session->config().inter_query_gap_us.value();
    shard.calendar.push(end_us + gap_us, ev.cell);
    ++shard.events;
    WITAG_COUNT_HOT("sim.events.processed", 1);
  }
}

}  // namespace witag::sim
