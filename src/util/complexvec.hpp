// Complex baseband sample helpers shared by the PHY and channel layers.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace witag::util {

using Cx = std::complex<double>;
using CxVec = std::vector<Cx>;

/// Mean power (E[|x|^2]) of the samples; 0 for an empty span.
double mean_power(std::span<const Cx> samples);

/// Total energy (sum |x|^2).
double energy(std::span<const Cx> samples);

/// Error-vector magnitude between received and reference symbols,
/// normalized by reference power: sqrt(E[|rx - ref|^2] / E[|ref|^2]).
/// Requires equal, non-zero lengths and non-zero reference power.
double evm(std::span<const Cx> rx, std::span<const Cx> ref);

/// out[i] += scale * in[i]; requires equal lengths.
void add_scaled(std::span<Cx> out, std::span<const Cx> in, Cx scale);

/// Element-wise product a[i] * b[i]; requires equal lengths.
CxVec hadamard(std::span<const Cx> a, std::span<const Cx> b);

}  // namespace witag::util
