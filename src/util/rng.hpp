// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component of the testbed (noise, fading, payloads,
// backoff) draws from an explicitly seeded Rng so that experiments are
// reproducible bit-for-bit. The generator is xoshiro256++ seeded through
// splitmix64, which is fast, has a 2^256-1 period, and passes BigCrush.
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <vector>
#include <cstddef>

namespace witag::util {

/// xoshiro256++ PRNG with distribution helpers.
///
/// Not thread-safe; give each concurrent component its own instance,
/// forked via `split()` so streams stay independent.
class Rng {
 public:
  /// Seeds the state from `seed` via splitmix64 (any seed is acceptable,
  /// including 0).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Derives an independent generator; deterministic given this stream.
  Rng split();

  /// Seed for task `task_index` of a sweep rooted at `base_seed`:
  /// output `task_index` of the splitmix64 stream seeded at `base_seed`
  /// (the same mixing that expands a seed into Rng state). O(1) in the
  /// index, so parallel workers can derive any task's seed directly —
  /// results depend only on (base_seed, task_index), never on worker
  /// count or completion order.
  static std::uint64_t derive_seed(std::uint64_t base_seed,
                                   std::uint64_t task_index);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Standard normal deviate (Box-Muller, cached spare).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Circularly-symmetric complex Gaussian with E[|z|^2] = variance.
  std::complex<double> complex_normal(double variance = 1.0);

  /// Poisson-distributed count with the given mean (Knuth for small
  /// lambda, normal approximation above 30).
  unsigned poisson(double lambda);

  /// Fills `n` random bytes.
  std::vector<std::uint8_t> bytes(std::size_t n);

  /// Fills `n` random bits (0/1 values).
  std::vector<std::uint8_t> bits(std::size_t n);

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace witag::util
