#include "util/rng.hpp"

#include <cmath>
#include <cstddef>

#include "util/require.hpp"
#include "util/units.hpp"

namespace witag::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split() { return Rng(next_u64()); }

std::uint64_t Rng::derive_seed(std::uint64_t base_seed,
                               std::uint64_t task_index) {
  // The splitmix64 state advances by a fixed gamma per draw, so stream
  // position `task_index` is reachable in O(1): jump the state there and
  // take one output.
  std::uint64_t state = base_seed + task_index * 0x9E3779B97F4A7C15ull;
  return splitmix64(state);
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo must not exceed hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  require(n > 0, "Rng::uniform_int: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = r * std::sin(2.0 * kPi * u2);
  has_spare_ = true;
  return r * std::cos(2.0 * kPi * u2);
}

double Rng::normal(double mean, double stddev) {
  require(stddev >= 0.0, "Rng::normal: stddev must be non-negative");
  return mean + stddev * normal();
}

std::complex<double> Rng::complex_normal(double variance) {
  require(variance >= 0.0, "Rng::complex_normal: variance must be >= 0");
  const double sigma = std::sqrt(variance / 2.0);
  return {normal(0.0, sigma), normal(0.0, sigma)};
}

unsigned Rng::poisson(double lambda) {
  require(lambda >= 0.0, "Rng::poisson: lambda must be non-negative");
  if (lambda == 0.0) return 0;
  if (lambda > 30.0) {
    const double v = normal(lambda, std::sqrt(lambda));
    return v <= 0.0 ? 0u : static_cast<unsigned>(std::lround(v));
  }
  const double threshold = std::exp(-lambda);
  unsigned k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > threshold);
  return k - 1;
}

std::vector<std::uint8_t> Rng::bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(next_u64() & 0xFF);
  return out;
}

std::vector<std::uint8_t> Rng::bits(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(next_u64() & 1);
  return out;
}

}  // namespace witag::util
