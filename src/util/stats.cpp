#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace witag::util {

void Running::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Running::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Running::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> data, double q) {
  require(!data.empty(), "percentile: empty data");
  require(q >= 0.0 && q <= 1.0, "percentile: q must be in [0, 1]");
  std::sort(data.begin(), data.end());
  const double pos = q * static_cast<double>(data.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, data.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return data[lo] * (1.0 - frac) + data[hi] * frac;
}

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  require(!sorted_.empty(), "Ecdf: empty samples");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  require(q > 0.0 && q <= 1.0, "Ecdf::quantile: q must be in (0, 1]");
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size()))) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

Interval wilson_interval(std::size_t successes, std::size_t trials) {
  require(successes <= trials, "wilson_interval: successes > trials");
  if (trials == 0) return {0.0, 1.0};
  const double z = 1.959963985;  // 95%
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {(center - margin) / denom, (center + margin) / denom};
}

}  // namespace witag::util
