#include "util/crc.hpp"

#include <array>
#include <cstddef>

namespace witag::util {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint8_t, 256> make_crc8_table() {
  std::array<std::uint8_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint8_t c = static_cast<std::uint8_t>(i);
    for (int k = 0; k < 8; ++k) {
      c = static_cast<std::uint8_t>((c & 0x80u) ? ((c << 1) ^ 0x07u) : (c << 1));
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();
constexpr std::array<std::uint8_t, 256> kCrc8Table = make_crc8_table();

// Slicing-by-8 (Intel's technique): table k advances a byte's
// contribution k extra bytes through the polynomial, so eight input
// bytes fold into eight independent lookups XORed together — one pass
// over the table hierarchy instead of eight dependent byte steps.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc32_slices() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  t[0] = make_crc32_table();
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kCrc32Slices =
    make_crc32_slices();

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> data) {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = load_le32(p) ^ state;
    const std::uint32_t hi = load_le32(p + 4);
    state = kCrc32Slices[7][lo & 0xFFu] ^ kCrc32Slices[6][(lo >> 8) & 0xFFu] ^
            kCrc32Slices[5][(lo >> 16) & 0xFFu] ^ kCrc32Slices[4][lo >> 24] ^
            kCrc32Slices[3][hi & 0xFFu] ^ kCrc32Slices[2][(hi >> 8) & 0xFFu] ^
            kCrc32Slices[1][(hi >> 16) & 0xFFu] ^ kCrc32Slices[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    state = kCrc32Table[(state ^ *p) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

std::uint8_t crc8(std::span<const std::uint8_t> data) {
  std::uint8_t state = 0xFFu;
  for (const std::uint8_t byte : data) {
    state = kCrc8Table[state ^ byte];
  }
  return static_cast<std::uint8_t>(state ^ 0xFFu);
}

namespace detail {

std::uint32_t crc32_update_bytewise(std::uint32_t state,
                                    std::span<const std::uint8_t> data) {
  for (const std::uint8_t byte : data) {
    state = kCrc32Table[(state ^ byte) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

}  // namespace detail

}  // namespace witag::util
