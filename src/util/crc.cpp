#include "util/crc.hpp"

#include <array>

namespace witag::util {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint8_t, 256> make_crc8_table() {
  std::array<std::uint8_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint8_t c = static_cast<std::uint8_t>(i);
    for (int k = 0; k < 8; ++k) {
      c = static_cast<std::uint8_t>((c & 0x80u) ? ((c << 1) ^ 0x07u) : (c << 1));
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();
const std::array<std::uint8_t, 256> kCrc8Table = make_crc8_table();

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> data) {
  for (const std::uint8_t byte : data) {
    state = kCrc32Table[(state ^ byte) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

std::uint8_t crc8(std::span<const std::uint8_t> data) {
  std::uint8_t state = 0xFFu;
  for (const std::uint8_t byte : data) {
    state = kCrc8Table[state ^ byte];
  }
  return static_cast<std::uint8_t>(state ^ 0xFFu);
}

}  // namespace witag::util
