// Contract-check helpers (C++ Core Guidelines I.6/I.8 style).
//
// `require` guards preconditions on public APIs: violations are programmer
// errors and throw std::invalid_argument so tests can assert on them.
// `ensure` guards internal invariants and throws std::logic_error.
#pragma once

#include <stdexcept>
#include <string>

namespace witag::util {

/// Throws std::invalid_argument with `what` unless `cond` holds.
inline void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

/// Throws std::logic_error with `what` unless `cond` holds.
inline void ensure(bool cond, const char* what) {
  if (!cond) throw std::logic_error(what);
}

}  // namespace witag::util
