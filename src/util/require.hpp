// Contract-check helpers (C++ Core Guidelines I.6/I.8 style).
//
// `require` guards preconditions on public APIs: violations are programmer
// errors and throw std::invalid_argument so tests can assert on them.
// `ensure` guards internal invariants and throws std::logic_error.
//
// Prefer the WITAG_REQUIRE / WITAG_ENSURE macros: they capture the
// stringified condition and the file:line of the check, so a contract
// failure names its own location ("WITAG_REQUIRE(dist.value() > 0.0)
// failed at src/channel/pathloss.cpp:16"). The plain functions remain
// for call sites that want a hand-written message.
#pragma once

#include <stdexcept>
#include <string>

namespace witag::util {

/// Throws std::invalid_argument with `what` unless `cond` holds.
inline void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

/// Throws std::logic_error with `what` unless `cond` holds.
inline void ensure(bool cond, const char* what) {
  if (!cond) throw std::logic_error(what);
}

/// std::string overloads so the macros can build located messages.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw std::invalid_argument(what);
}

inline void ensure(bool cond, const std::string& what) {
  if (!cond) throw std::logic_error(what);
}

}  // namespace witag::util

#define WITAG_DETAIL_STRINGIZE2(x) #x
#define WITAG_DETAIL_STRINGIZE(x) WITAG_DETAIL_STRINGIZE2(x)

/// Precondition check: throws std::invalid_argument naming the failed
/// expression and its location.
#define WITAG_REQUIRE(cond)                                          \
  ::witag::util::require((cond), "WITAG_REQUIRE(" #cond ") failed at " \
                                 __FILE__                              \
                                 ":" WITAG_DETAIL_STRINGIZE(__LINE__))

/// Invariant check: throws std::logic_error naming the failed
/// expression and its location.
#define WITAG_ENSURE(cond)                                          \
  ::witag::util::ensure((cond), "WITAG_ENSURE(" #cond ") failed at " \
                                __FILE__                              \
                                ":" WITAG_DETAIL_STRINGIZE(__LINE__))
