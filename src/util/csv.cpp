#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>
#include <cstddef>

#include "util/require.hpp"

namespace witag::util {
namespace {

std::string escape(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (const char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(std::initializer_list<std::string> columns) {
  require(columns_ == 0, "CsvWriter: header already written");
  require(columns.size() > 0, "CsvWriter: empty header");
  columns_ = columns.size();
  first_column_ = *columns.begin();
  bool first = true;
  for (const auto& c : columns) {
    if (!first) out_ << ',';
    out_ << escape(c);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& values) {
  if (columns_ == 0) {
    throw std::logic_error("CsvWriter: header not written before row()");
  }
  if (values.size() != columns_) {
    throw std::invalid_argument(
        "CsvWriter::row: got " + std::to_string(values.size()) +
        " values for a " + std::to_string(columns_) +
        "-column header (first column \"" + first_column_ + "\")");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(values[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::num(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace witag::util
