// Bit-level serialization helpers.
//
// 802.11 transmits each byte least-significant bit first; BitWriter and
// BitReader follow that convention so PHY bit streams match the standard's
// ordering. Bits are stored one per byte (0/1) in `std::vector<uint8_t>`,
// which keeps the PHY pipeline simple to reason about and test.
#pragma once

#include <cstdint>
#include <span>
#include <vector>
#include <cstddef>

namespace witag::util {

using BitVec = std::vector<std::uint8_t>;  // each element is 0 or 1
using ByteVec = std::vector<std::uint8_t>;

/// Expands bytes to bits, LSB of each byte first (802.11 order).
BitVec bytes_to_bits(std::span<const std::uint8_t> bytes);

/// Packs bits (LSB-first per byte) back into bytes. If the bit count is
/// not a multiple of 8, the final byte is zero-padded in its high bits.
ByteVec bits_to_bytes(std::span<const std::uint8_t> bits);

/// Allocation-reusing variant of bits_to_bytes: writes into `out`
/// (resized; capacity reused) for the hot decode path.
void bits_to_bytes_into(std::span<const std::uint8_t> bits, ByteVec& out);

/// Number of positions at which the two bit/byte sequences differ.
/// Sequences of unequal length count the length difference as errors
/// (each missing position is one error).
std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b);

/// Sequential bit writer (LSB-first within each appended value).
class BitWriter {
 public:
  /// Appends the low `count` bits of `value`, least-significant first.
  /// Requires count <= 64.
  void write(std::uint64_t value, unsigned count);

  /// Appends a single bit (0/1).
  void write_bit(bool bit);

  /// Appends raw bits.
  void write_bits(std::span<const std::uint8_t> bits);

  const BitVec& bits() const { return bits_; }
  BitVec take() { return std::move(bits_); }
  std::size_t size() const { return bits_.size(); }

 private:
  BitVec bits_;
};

/// Sequential bit reader matching BitWriter's ordering.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bits) : bits_(bits) {}

  /// Reads `count` bits as an LSB-first integer. Requires count <= 64 and
  /// enough remaining bits.
  std::uint64_t read(unsigned count);

  /// Reads a single bit.
  bool read_bit();

  std::size_t remaining() const { return bits_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  std::span<const std::uint8_t> bits_;
  std::size_t pos_ = 0;
};

}  // namespace witag::util
