// Small CSV writer used by benches to export raw measurement data
// alongside their console tables (so plots can be regenerated without
// re-running the simulation).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>
#include <cstddef>

namespace witag::util {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes the header row. Call once, before any row().
  void header(std::initializer_list<std::string> columns);

  /// Writes one data row; values are escaped if they contain commas or
  /// quotes. Throws std::invalid_argument (naming the offending counts
  /// and the first header column) when the arity differs from the
  /// header, std::logic_error when no header was written.
  void row(const std::vector<std::string>& values);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string num(double v);

 private:
  std::ofstream out_;
  std::size_t columns_ = 0;
  std::string first_column_;  ///< For arity error messages.
};

}  // namespace witag::util
