// Physical constants and unit helpers shared across the testbed.
//
// The simulator works in SI base units (seconds, meters, hertz, linear
// power ratios); these helpers keep dB<->linear and wavelength conversions
// in one audited place.
#pragma once

#include <cmath>

namespace witag::util {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Center frequency of 2.4 GHz WiFi channel 6 [Hz].
inline constexpr double kWifi24GHz = 2.437e9;

/// Center frequency of a 5 GHz WiFi channel (ch 36) [Hz].
inline constexpr double kWifi5GHz = 5.18e9;

/// 802.11n 20 MHz channel bandwidth [Hz].
inline constexpr double kBandwidth20MHz = 20e6;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

inline constexpr double kPi = 3.14159265358979323846;

/// Converts a power ratio in dB to linear scale.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

/// Converts a linear power ratio to dB.
inline double linear_to_db(double lin) { return 10.0 * std::log10(lin); }

/// Converts dBm to watts.
inline double dbm_to_watts(double dbm) { return 1e-3 * db_to_linear(dbm); }

/// Converts watts to dBm.
inline double watts_to_dbm(double w) { return linear_to_db(w / 1e-3); }

/// Wavelength [m] at carrier frequency `hz`.
inline double wavelength(double hz) { return kSpeedOfLight / hz; }

/// Thermal noise power [W] in bandwidth `bw_hz` at temperature `kelvin`.
inline double thermal_noise_watts(double bw_hz, double kelvin = 290.0) {
  return kBoltzmann * kelvin * bw_hz;
}

}  // namespace witag::util
