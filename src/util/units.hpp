// Physical constants and strong-typed quantities shared across the testbed.
//
// The simulator works in SI base units (seconds, meters, hertz, linear
// power ratios). Quantities that cross public API boundaries are wrapped
// in strong types (Db, Dbm, Watts, Hertz, Meters, Micros, Seconds) so a
// dB gain can never be passed where an absolute dBm power is expected and
// a microsecond duration can never silently mix with seconds: only the
// physically meaningful operators exist, and every conversion goes
// through one audited function below.
#pragma once

#include <cmath>
#include <compare>
#include <numbers>

namespace witag::util {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

inline constexpr double kPi = std::numbers::pi;

namespace detail {

/// CRTP mixin giving a strong unit wrapper value-based comparisons.
template <class Derived>
struct UnitCompare {
  friend constexpr bool operator==(Derived a, Derived b) {
    return a.value() == b.value();
  }
  friend constexpr auto operator<=>(Derived a, Derived b) {
    return a.value() <=> b.value();
  }
};

/// CRTP mixin for quantities living on a linear scale: same-type sum and
/// difference, scaling by a dimensionless factor, and the dimensionless
/// ratio of two like quantities. Nothing here ever mixes two different
/// units — those operators are defined per-type below, only where the
/// physics allows.
template <class Derived>
struct LinearOps : UnitCompare<Derived> {
  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.value() + b.value()};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.value() - b.value()};
  }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.value()}; }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.value() * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{s * a.value()};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.value() / s};
  }
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value() / b.value();
  }
  friend constexpr Derived& operator+=(Derived& a, Derived b) {
    a = a + b;
    return a;
  }
  friend constexpr Derived& operator-=(Derived& a, Derived b) {
    a = a - b;
    return a;
  }
};

}  // namespace detail

/// Power *ratio* in decibels (a gain or loss). Ratios compose by
/// addition, so Db has the full linear operator set.
class Db : public detail::LinearOps<Db> {
 public:
  Db() = default;
  constexpr explicit Db(double db) : db_(db) {}
  constexpr double value() const { return db_; }

 private:
  double db_ = 0.0;
};

/// Absolute power referenced to 1 mW, log scale. Two absolute powers do
/// not add on a log scale, so there is no Dbm + Dbm: only shifting by a
/// ratio (Dbm +- Db) and the ratio of two powers (Dbm - Dbm -> Db).
class Dbm : public detail::UnitCompare<Dbm> {
 public:
  Dbm() = default;
  constexpr explicit Dbm(double dbm) : dbm_(dbm) {}
  constexpr double value() const { return dbm_; }

 private:
  double dbm_ = 0.0;
};

constexpr Dbm operator+(Dbm power, Db gain) {
  return Dbm{power.value() + gain.value()};
}
constexpr Dbm operator+(Db gain, Dbm power) { return power + gain; }
constexpr Dbm operator-(Dbm power, Db gain) {
  return Dbm{power.value() - gain.value()};
}
constexpr Db operator-(Dbm a, Dbm b) { return Db{a.value() - b.value()}; }

/// Absolute power on a linear scale [W].
class Watts : public detail::LinearOps<Watts> {
 public:
  Watts() = default;
  constexpr explicit Watts(double w) : w_(w) {}
  constexpr double value() const { return w_; }
  /// The same power expressed in microwatts (display convenience for
  /// the tag power budget, which lives at uW scale).
  constexpr double microwatts() const { return w_ * 1e6; }
  static constexpr Watts from_microwatts(double uw) { return Watts{uw * 1e-6}; }

 private:
  double w_ = 0.0;
};

/// Frequency [Hz].
class Hertz : public detail::LinearOps<Hertz> {
 public:
  Hertz() = default;
  constexpr explicit Hertz(double hz) : hz_(hz) {}
  constexpr double value() const { return hz_; }

 private:
  double hz_ = 0.0;
};

/// Distance [m].
class Meters : public detail::LinearOps<Meters> {
 public:
  Meters() = default;
  constexpr explicit Meters(double m) : m_(m) {}
  constexpr double value() const { return m_; }

 private:
  double m_ = 0.0;
};

/// Duration [us]. MAC-layer timing (airtimes, guard bands, tag ticks)
/// lives in microseconds throughout the paper.
class Micros : public detail::LinearOps<Micros> {
 public:
  Micros() = default;
  constexpr explicit Micros(double us) : us_(us) {}
  constexpr double value() const { return us_; }

 private:
  double us_ = 0.0;
};

/// Duration [s]. Channel-time scales (coherence, blocking, walking)
/// live in seconds.
class Seconds : public detail::LinearOps<Seconds> {
 public:
  Seconds() = default;
  constexpr explicit Seconds(double s) : s_(s) {}
  constexpr double value() const { return s_; }

 private:
  double s_ = 0.0;
};

/// Center frequency of 2.4 GHz WiFi channel 6.
inline constexpr Hertz kWifi24GHz{2.437e9};

/// Center frequency of a 5 GHz WiFi channel (ch 36).
inline constexpr Hertz kWifi5GHz{5.18e9};

/// 802.11n 20 MHz channel bandwidth.
inline constexpr Hertz kBandwidth20MHz{20e6};

/// Converts a power ratio in dB to linear scale.
inline double db_to_linear(Db db) { return std::pow(10.0, db.value() / 10.0); }

/// Converts a linear power ratio to dB.
inline Db linear_to_db(double lin) { return Db{10.0 * std::log10(lin)}; }

/// Converts absolute dBm power to watts.
inline Watts to_watts(Dbm dbm) {
  return Watts{1e-3 * std::pow(10.0, dbm.value() / 10.0)};
}

/// Converts watts to absolute dBm power.
inline Dbm to_dbm(Watts w) { return Dbm{10.0 * std::log10(w.value() / 1e-3)}; }

/// Duration conversions: exactly one scale factor, in one place.
constexpr Seconds to_seconds(Micros us) { return Seconds{us.value() * 1e-6}; }
constexpr Micros to_micros(Seconds s) { return Micros{s.value() * 1e6}; }

/// Wavelength at carrier frequency `f`.
inline Meters wavelength(Hertz f) { return Meters{kSpeedOfLight / f.value()}; }

/// Thermal noise power in bandwidth `bw` at temperature `kelvin`.
inline Watts thermal_noise(Hertz bw, double kelvin = 290.0) {
  return Watts{kBoltzmann * kelvin * bw.value()};
}

}  // namespace witag::util
