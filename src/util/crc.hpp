// CRC implementations used by the 802.11 MAC machinery.
//
// - CRC-32 (IEEE 802.3 / 802.11 FCS): reflected, poly 0x04C11DB7,
//   init 0xFFFFFFFF, final XOR 0xFFFFFFFF.
// - CRC-8 (A-MPDU delimiter signature check, 802.11n clause 8 style):
//   poly x^8 + x^2 + x + 1 (0x07), init 0xFF, final XOR 0xFF.
#pragma once

#include <cstdint>
#include <span>

namespace witag::util {

/// CRC-32 over `data` (802.11 FCS convention).
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental CRC-32: feed `data` into a running value. Start with
/// crc32_init() and finish with crc32_final().
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> data);
std::uint32_t crc32_final(std::uint32_t state);

/// CRC-8 over `data` (A-MPDU delimiter convention).
std::uint8_t crc8(std::span<const std::uint8_t> data);

namespace detail {

/// The original byte-at-a-time CRC-32 update, kept as the specification
/// the slicing-by-8 crc32_update is parity-tested against.
std::uint32_t crc32_update_bytewise(std::uint32_t state,
                                    std::span<const std::uint8_t> data);

}  // namespace detail

}  // namespace witag::util
