#include "util/cli.hpp"

#include <ostream>
#include <stdexcept>
#include <cstddef>

#include "util/require.hpp"

namespace witag::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    require(arg.rfind("--", 0) == 0,
            "Args: options must start with -- (positional args unsupported)");
    const std::string name = arg.substr(2);
    require(!name.empty(), "Args: empty option name");
    // A following token that is not itself an option is this option's
    // value; otherwise it's a bare flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[name] = argv[++i];
    } else {
      values_[name] = "";
    }
  }
}

double Args::get_double(const std::string& name, double fallback) const {
  used_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stod(it->second);
}

long Args::get_int(const std::string& name, long fallback) const {
  used_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stol(it->second);
}

std::uint64_t Args::get_u64(const std::string& name,
                            std::uint64_t fallback) const {
  used_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stoull(it->second);
}

std::string Args::get_string(const std::string& name,
                             const std::string& fallback) const {
  used_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return it->second;
}

bool Args::has(const std::string& name) const {
  used_.insert(name);
  return values_.contains(name);
}

std::set<std::string> Args::unused() const {
  std::set<std::string> out;
  for (const auto& [name, value] : values_) {
    if (!used_.contains(name)) out.insert(name);
  }
  return out;
}

std::size_t Args::warn_unused(std::ostream& os) const {
  const auto names = unused();
  for (const auto& name : names) {
    os << "warning: unknown option --" << name << '\n';
  }
  return names.size();
}

}  // namespace witag::util
