#include "util/bits.hpp"

#include <algorithm>
#include <cstddef>

#include "util/require.hpp"

namespace witag::util {

BitVec bytes_to_bits(std::span<const std::uint8_t> bytes) {
  BitVec bits;
  bits.reserve(bytes.size() * 8);
  for (const std::uint8_t byte : bytes) {
    for (unsigned i = 0; i < 8; ++i) {
      bits.push_back(static_cast<std::uint8_t>((byte >> i) & 1u));
    }
  }
  return bits;
}

ByteVec bits_to_bytes(std::span<const std::uint8_t> bits) {
  ByteVec bytes;
  bits_to_bytes_into(bits, bytes);
  return bytes;
}

void bits_to_bytes_into(std::span<const std::uint8_t> bits, ByteVec& out) {
  out.assign((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] & 1u) {
      out[i / 8] = static_cast<std::uint8_t>(out[i / 8] | (1u << (i % 8)));
    }
  }
}

std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b) {
  const std::size_t common = std::min(a.size(), b.size());
  std::size_t distance = std::max(a.size(), b.size()) - common;
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) ++distance;
  }
  return distance;
}

void BitWriter::write(std::uint64_t value, unsigned count) {
  require(count <= 64, "BitWriter::write: count must be <= 64");
  for (unsigned i = 0; i < count; ++i) {
    bits_.push_back(static_cast<std::uint8_t>((value >> i) & 1u));
  }
}

void BitWriter::write_bit(bool bit) {
  bits_.push_back(bit ? std::uint8_t{1} : std::uint8_t{0});
}

void BitWriter::write_bits(std::span<const std::uint8_t> bits) {
  for (const std::uint8_t b : bits) bits_.push_back(b & 1u);
}

std::uint64_t BitReader::read(unsigned count) {
  require(count <= 64, "BitReader::read: count must be <= 64");
  require(remaining() >= count, "BitReader::read: not enough bits");
  std::uint64_t value = 0;
  for (unsigned i = 0; i < count; ++i) {
    value |= static_cast<std::uint64_t>(bits_[pos_++] & 1u) << i;
  }
  return value;
}

bool BitReader::read_bit() {
  require(remaining() >= 1, "BitReader::read_bit: no bits left");
  return (bits_[pos_++] & 1u) != 0;
}

}  // namespace witag::util
