// Minimal command-line option parser for the bench and example binaries:
// `--name value` options and `--flag` switches, with typed getters and
// defaults. Unknown arguments are an error so typos fail loudly.
//
// Every bench binary also understands the standard observability flags
// (consumed by obs::RunScope, see obs/report.hpp):
//   --metrics-out <path>   per-run metrics JSON destination
//   --no-metrics           suppress the metrics JSON
//   --trace-out <path>     record a Chrome trace-event JSON (or JSONL
//                          when the path ends in ".jsonl")
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <cstddef>

namespace witag::util {

class Args {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input
  /// (an option missing its value).
  Args(int argc, const char* const* argv);

  /// Typed getters with defaults. Throws on unparsable values.
  double get_double(const std::string& name, double fallback) const;
  long get_int(const std::string& name, long fallback) const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;

  /// True when `--name` appeared (with or without a value).
  bool has(const std::string& name) const;

  /// Names that were parsed but never queried (typo detection); call
  /// after all getters to warn the user.
  std::set<std::string> unused() const;

  /// Writes one "unknown option --name" warning line per unused option
  /// to `os`; returns how many there were. Call after all getters.
  std::size_t warn_unused(std::ostream& os) const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

}  // namespace witag::util
