// Statistics helpers for experiment harnesses: running moments,
// percentiles, empirical CDFs, and binomial confidence intervals for BER
// estimates.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace witag::util {

/// Welford running mean/variance accumulator.
class Running {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated percentile of unsorted data; q in [0, 1].
/// Requires non-empty data.
double percentile(std::vector<double> data, double q);

/// Empirical CDF: sorted sample values with cumulative probabilities.
class Ecdf {
 public:
  explicit Ecdf(std::vector<double> samples);

  /// P(X <= x) under the empirical distribution.
  double at(double x) const;

  /// Smallest sample v with P(X <= v) >= q; q in (0, 1].
  double quantile(double q) const;

  const std::vector<double>& samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Wilson score interval for a binomial proportion at ~95% confidence.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
Interval wilson_interval(std::size_t successes, std::size_t trials);

}  // namespace witag::util
