#include "util/complexvec.hpp"

#include <cmath>
#include <cstddef>

#include "util/require.hpp"

namespace witag::util {

double mean_power(std::span<const Cx> samples) {
  if (samples.empty()) return 0.0;
  return energy(samples) / static_cast<double>(samples.size());
}

double energy(std::span<const Cx> samples) {
  double total = 0.0;
  for (const Cx& s : samples) total += std::norm(s);
  return total;
}

double evm(std::span<const Cx> rx, std::span<const Cx> ref) {
  require(rx.size() == ref.size(), "evm: length mismatch");
  require(!ref.empty(), "evm: empty input");
  double err = 0.0;
  double pow_ref = 0.0;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    err += std::norm(rx[i] - ref[i]);
    pow_ref += std::norm(ref[i]);
  }
  require(pow_ref > 0.0, "evm: zero reference power");
  return std::sqrt(err / pow_ref);
}

void add_scaled(std::span<Cx> out, std::span<const Cx> in, Cx scale) {
  require(out.size() == in.size(), "add_scaled: length mismatch");
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += scale * in[i];
}

CxVec hadamard(std::span<const Cx> a, std::span<const Cx> b) {
  require(a.size() == b.size(), "hadamard: length mismatch");
  CxVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

}  // namespace witag::util
