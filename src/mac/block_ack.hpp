// Compressed block ack (802.11n): a starting sequence number plus a
// 64-bit bitmap, one bit per MPDU of the preceding A-MPDU. Bit i refers
// to sequence number start + i (mod 4096); 1 = received (FCS passed).
// In WiTAG this bitmap *is* the tag's data as observed by the client.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>
#include <cstddef>

#include "util/bits.hpp"

namespace witag::mac {

struct BlockAck {
  std::uint16_t start_seq = 0;  ///< 12-bit starting sequence number.
  std::uint64_t bitmap = 0;

  /// Marks sequence `seq` as received. Requires seq within
  /// [start_seq, start_seq + 64) mod 4096.
  void set_received(std::uint16_t seq);

  /// True when sequence `seq` was acked.
  bool received(std::uint16_t seq) const;

  bool operator==(const BlockAck&) const = default;
};

/// Offset of `seq` relative to `start` mod 4096, or -1 if >= 64 away.
int seq_offset(std::uint16_t start, std::uint16_t seq);

/// Serializes to the on-air block-ack frame body layout (BA control +
/// starting sequence control + 8-byte bitmap = 12 bytes).
util::ByteVec serialize_block_ack(const BlockAck& ba);

/// Parses a serialized block ack.
std::optional<BlockAck> parse_block_ack(std::span<const std::uint8_t> bytes);

/// Expands the bitmap to per-subframe booleans for `n` subframes
/// starting at the BA's starting sequence number.
std::vector<bool> subframe_flags(const BlockAck& ba, std::size_t n);

}  // namespace witag::mac
