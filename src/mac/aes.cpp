#include "mac/aes.hpp"
#include <cstddef>

namespace witag::mac {
namespace {

constexpr std::array<std::uint8_t, 256> kSbox = [] {
  // Computed from the multiplicative inverse in GF(2^8) followed by the
  // affine transform, to avoid transcribing a 256-entry table.
  std::array<std::uint8_t, 256> box{};
  // GF(2^8) inverse via exponentiation chain using log tables built on
  // generator 3.
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 256> alog{};
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    alog[static_cast<std::size_t>(i)] = x;
    log[x] = static_cast<std::uint8_t>(i);
    // multiply x by 3 = x ^ (x<<1) with reduction by 0x11B
    const std::uint8_t hi = static_cast<std::uint8_t>(x & 0x80);
    std::uint8_t x2 = static_cast<std::uint8_t>(x << 1);
    if (hi) x2 ^= 0x1B;
    x = static_cast<std::uint8_t>(x2 ^ x);
  }
  for (int i = 0; i < 256; ++i) {
    std::uint8_t inv = 0;
    if (i != 0) {
      inv = alog[static_cast<std::size_t>(
          (255 - log[static_cast<std::size_t>(i)]) % 255)];
    }
    // Affine transform.
    std::uint8_t y = 0;
    for (int bit = 0; bit < 8; ++bit) {
      const int b = ((inv >> bit) & 1) ^ ((inv >> ((bit + 4) % 8)) & 1) ^
                    ((inv >> ((bit + 5) % 8)) & 1) ^
                    ((inv >> ((bit + 6) % 8)) & 1) ^
                    ((inv >> ((bit + 7) % 8)) & 1) ^ ((0x63 >> bit) & 1);
      y = static_cast<std::uint8_t>(y | (b << bit));
    }
    box[static_cast<std::size_t>(i)] = y;
  }
  return box;
}();

std::uint8_t xtime(std::uint8_t v) {
  return static_cast<std::uint8_t>((v << 1) ^ ((v & 0x80) ? 0x1B : 0x00));
}

void sub_bytes(std::array<std::uint8_t, 16>& s) {
  for (auto& b : s) b = kSbox[b];
}

void shift_rows(std::array<std::uint8_t, 16>& s) {
  // State is column-major: s[4*col + row].
  std::array<std::uint8_t, 16> t = s;
  for (int row = 1; row < 4; ++row) {
    for (int col = 0; col < 4; ++col) {
      s[static_cast<std::size_t>(4 * col + row)] =
          t[static_cast<std::size_t>(4 * ((col + row) % 4) + row)];
    }
  }
}

void mix_columns(std::array<std::uint8_t, 16>& s) {
  for (int col = 0; col < 4; ++col) {
    const std::size_t o = static_cast<std::size_t>(4 * col);
    const std::uint8_t a0 = s[o], a1 = s[o + 1], a2 = s[o + 2], a3 = s[o + 3];
    const std::uint8_t t = static_cast<std::uint8_t>(a0 ^ a1 ^ a2 ^ a3);
    s[o] = static_cast<std::uint8_t>(a0 ^ t ^ xtime(static_cast<std::uint8_t>(a0 ^ a1)));
    s[o + 1] = static_cast<std::uint8_t>(a1 ^ t ^ xtime(static_cast<std::uint8_t>(a1 ^ a2)));
    s[o + 2] = static_cast<std::uint8_t>(a2 ^ t ^ xtime(static_cast<std::uint8_t>(a2 ^ a3)));
    s[o + 3] = static_cast<std::uint8_t>(a3 ^ t ^ xtime(static_cast<std::uint8_t>(a3 ^ a0)));
  }
}

void add_round_key(std::array<std::uint8_t, 16>& s,
                   const std::array<std::uint8_t, 16>& rk) {
  for (int i = 0; i < 16; ++i) {
    s[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(s[static_cast<std::size_t>(i)] ^
                                  rk[static_cast<std::size_t>(i)]);
  }
}

}  // namespace

Aes128::Aes128(const AesKey& key) {
  round_keys_[0] = key;
  std::uint8_t rcon = 1;
  for (int round = 1; round <= 10; ++round) {
    const auto& prev = round_keys_[static_cast<std::size_t>(round - 1)];
    auto& rk = round_keys_[static_cast<std::size_t>(round)];
    // First word: rot + sub + rcon.
    std::array<std::uint8_t, 4> temp{prev[13], prev[14], prev[15], prev[12]};
    for (auto& b : temp) b = kSbox[b];
    temp[0] = static_cast<std::uint8_t>(temp[0] ^ rcon);
    rcon = xtime(rcon);
    for (int i = 0; i < 4; ++i) {
      rk[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
          prev[static_cast<std::size_t>(i)] ^ temp[static_cast<std::size_t>(i)]);
    }
    for (int i = 4; i < 16; ++i) {
      rk[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
          prev[static_cast<std::size_t>(i)] ^ rk[static_cast<std::size_t>(i - 4)]);
    }
  }
}

AesBlock Aes128::encrypt(const AesBlock& plaintext) const {
  std::array<std::uint8_t, 16> state = plaintext;
  add_round_key(state, round_keys_[0]);
  for (int round = 1; round < 10; ++round) {
    sub_bytes(state);
    shift_rows(state);
    mix_columns(state);
    add_round_key(state, round_keys_[static_cast<std::size_t>(round)]);
  }
  sub_bytes(state);
  shift_rows(state);
  add_round_key(state, round_keys_[10]);
  return state;
}

}  // namespace witag::mac
