// Standards airtime accounting (802.11 OFDM in 2.4 GHz): inter-frame
// spacings, contention backoff and frame durations. WiTAG's throughput
// is bits-per-exchange over exchange airtime, so these constants — not
// wall-clock time — define the reported Kbps.
#pragma once

#include <cstddef>

namespace witag::mac {

inline constexpr double kSifsUs = 10.0;
inline constexpr double kSlotUs = 9.0;
inline constexpr double kDifsUs = kSifsUs + 2.0 * kSlotUs;  // 28 us
inline constexpr unsigned kCwMin = 15;

/// PHY preamble + header duration for legacy (non-HT) frames [us].
inline constexpr double kLegacyPreambleUs = 20.0;

/// Airtime of a legacy OFDM frame of `bytes` at `rate_mbps` [us]:
/// preamble + ceil((16 + 6 + 8 * bytes) / (4 * rate_mbps)) symbols.
double legacy_frame_airtime_us(std::size_t bytes, double rate_mbps = 24.0);

/// Airtime of the compressed block-ack response (32-byte frame at the
/// 24 Mbps legacy rate) [us].
double block_ack_airtime_us();

/// Mean contention backoff with CWmin [us] (used by the analytic
/// throughput model; the simulator draws the backoff randomly).
double expected_backoff_us();

/// Full query/block-ack exchange timing.
struct ExchangeAirtime {
  double difs_us = kDifsUs;
  double backoff_us = 0.0;
  double ppdu_us = 0.0;
  double sifs_us = kSifsUs;
  double block_ack_us = 0.0;

  double total_us() const {
    return difs_us + backoff_us + ppdu_us + sifs_us + block_ack_us;
  }
};

/// Assembles exchange timing for a query PPDU duration and backoff draw.
ExchangeAirtime ampdu_exchange(double ppdu_us, double backoff_us);

}  // namespace witag::mac
