// Standards airtime accounting (802.11 OFDM in 2.4 GHz): inter-frame
// spacings, contention backoff and frame durations. WiTAG's throughput
// is bits-per-exchange over exchange airtime, so these constants — not
// wall-clock time — define the reported Kbps. All public durations are
// typed util::Micros quantities.
#pragma once

#include <cstddef>

#include "util/units.hpp"

namespace witag::mac {

inline constexpr util::Micros kSifsUs{10.0};
inline constexpr util::Micros kSlotUs{9.0};
inline constexpr util::Micros kDifsUs = kSifsUs + 2.0 * kSlotUs;  // 28 us
inline constexpr unsigned kCwMin = 15;

/// PHY preamble + header duration for legacy (non-HT) frames.
inline constexpr util::Micros kLegacyPreambleUs{20.0};

/// Airtime of a legacy OFDM frame of `bytes` at `rate_mbps`:
/// preamble + ceil((16 + 6 + 8 * bytes) / (4 * rate_mbps)) symbols.
util::Micros legacy_frame_airtime_us(std::size_t bytes,
                                     double rate_mbps = 24.0);

/// Airtime of the compressed block-ack response (32-byte frame at the
/// 24 Mbps legacy rate).
util::Micros block_ack_airtime_us();

/// Mean contention backoff with CWmin (used by the analytic throughput
/// model; the simulator draws the backoff randomly).
util::Micros expected_backoff_us();

/// Full query/block-ack exchange timing.
struct ExchangeAirtime {
  util::Micros difs_us = kDifsUs;
  util::Micros backoff_us{};
  util::Micros ppdu_us{};
  util::Micros sifs_us = kSifsUs;
  util::Micros block_ack_us{};

  util::Micros total_us() const {
    return difs_us + backoff_us + ppdu_us + sifs_us + block_ack_us;
  }
};

/// Assembles exchange timing for a query PPDU duration and backoff draw.
ExchangeAirtime ampdu_exchange(util::Micros ppdu, util::Micros backoff);

}  // namespace witag::mac
