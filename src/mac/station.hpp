// Client and AP protocol roles.
//
// The AP here behaves exactly like an unmodified commodity AP: it
// deaggregates whatever A-MPDU the PHY hands it, FCS-checks each
// subframe, decrypts valid ones when the BSS uses WEP/CCMP, and answers
// with a standard compressed block ack. It has no idea a tag exists —
// which is WiTAG's central deployment claim.
//
// The client builds query A-MPDUs and extracts per-subframe outcomes
// from the block ack using the sequence numbers it assigned.
#pragma once

#include <optional>
#include <span>
#include <vector>
#include <cstdint>
#include <cstddef>

#include "mac/ampdu.hpp"
#include "mac/block_ack.hpp"
#include "mac/ccmp.hpp"
#include "mac/mpdu.hpp"
#include "mac/wep.hpp"
#include "util/bits.hpp"

namespace witag::mac {

enum class Security { kOpen, kWep, kCcmp };

struct SecurityConfig {
  Security mode = Security::kOpen;
  AesKey ccmp_key{};
  WepKey wep_key{};
};

class AccessPoint {
 public:
  AccessPoint(MacAddress address, SecurityConfig security);

  struct PsduResult {
    /// Block ack for the A-MPDU; nullopt when no subframe survived
    /// (a real AP would not respond, and the client times out).
    std::optional<BlockAck> block_ack;
    std::size_t subframes_valid = 0;  ///< FCS passed.
    std::size_t decrypt_failures = 0; ///< FCS passed but MIC/ICV failed.
  };

  /// Processes a PSDU delivered by the PHY (possibly with corrupted
  /// regions) and produces the block ack an unmodified AP would send.
  PsduResult receive_psdu(std::span<const std::uint8_t> psdu);

  MacAddress address() const { return address_; }

 private:
  MacAddress address_;
  SecurityConfig security_;
  std::optional<CcmpSession> ccmp_;
};

class Client {
 public:
  Client(MacAddress address, MacAddress ap_address, SecurityConfig security);

  /// Builds an A-MPDU from per-subframe payloads, assigning consecutive
  /// sequence numbers and encrypting bodies per the BSS security mode.
  /// Requires 1..64 payloads.
  util::ByteVec build_ampdu(std::span<const util::ByteVec> payloads);

  /// Sequence number of subframe `i` in the last built A-MPDU.
  std::uint16_t last_seq(std::size_t i) const;
  std::size_t last_subframe_count() const { return last_seqs_.size(); }

  /// Per-subframe delivery flags for the last A-MPDU given the AP's
  /// block ack (all-false when the exchange produced no block ack).
  std::vector<bool> subframe_outcomes(
      const std::optional<BlockAck>& ba) const;

  MacAddress address() const { return address_; }

 private:
  MacAddress address_;
  MacAddress ap_address_;
  SecurityConfig security_;
  std::optional<CcmpSession> ccmp_;
  std::uint16_t next_seq_ = 0;
  std::uint32_t next_wep_iv_ = 1;
  std::vector<std::uint16_t> last_seqs_;
};

}  // namespace witag::mac
