#include "mac/ccmp.hpp"

#include <algorithm>
#include <array>
#include <cstddef>

#include "util/require.hpp"

namespace witag::mac {
namespace {

using Block = AesBlock;

CcmNonce make_nonce(const MacHeader& header, std::uint64_t pn) {
  CcmNonce nonce{};
  nonce[0] = header.tid;  // priority octet
  std::copy(header.addr2.octets.begin(), header.addr2.octets.end(),
            nonce.begin() + 1);
  for (int i = 0; i < 6; ++i) {
    nonce[static_cast<std::size_t>(7 + i)] =
        static_cast<std::uint8_t>((pn >> (8 * (5 - i))) & 0xFF);
  }
  return nonce;
}

// Additional authenticated data: the MAC header with the protected bit
// forced on (both sides derive it identically; simplification relative
// to 802.11's FC-masking rules noted in DESIGN.md).
util::ByteVec make_aad(const MacHeader& header) {
  MacHeader h = header;
  h.protected_frame = true;
  return serialize_header(h);
}

Block ctr_block(const CcmNonce& nonce, std::uint16_t counter) {
  Block a{};
  a[0] = 0x01;  // flags: L' = L - 1 = 1
  std::copy(nonce.begin(), nonce.end(), a.begin() + 1);
  a[14] = static_cast<std::uint8_t>(counter >> 8);
  a[15] = static_cast<std::uint8_t>(counter & 0xFF);
  return a;
}

// CBC-MAC tag (first kCcmpMicBytes bytes) over B0 | AAD | message.
std::array<std::uint8_t, kCcmpMicBytes> cbc_mac(
    const Aes128& aes, const CcmNonce& nonce,
    std::span<const std::uint8_t> aad, std::span<const std::uint8_t> msg) {
  Block b0{};
  // flags: Adata | ((M-2)/2) << 3 | (L-1) = 0x40 | 0x18 | 0x01.
  b0[0] = aad.empty() ? 0x19 : 0x59;
  std::copy(nonce.begin(), nonce.end(), b0.begin() + 1);
  b0[14] = static_cast<std::uint8_t>(msg.size() >> 8);
  b0[15] = static_cast<std::uint8_t>(msg.size() & 0xFF);

  Block x = aes.encrypt(b0);
  auto absorb = [&](std::span<const std::uint8_t> chunk) {
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      x[i % 16] = static_cast<std::uint8_t>(x[i % 16] ^ chunk[i]);
      if (i % 16 == 15) x = aes.encrypt(x);
    }
    if (chunk.size() % 16 != 0) x = aes.encrypt(x);
  };

  if (!aad.empty()) {
    // AAD is prefixed with its 16-bit length, then zero-padded.
    util::ByteVec aad_block;
    aad_block.reserve(2 + aad.size());
    aad_block.push_back(static_cast<std::uint8_t>(aad.size() >> 8));
    aad_block.push_back(static_cast<std::uint8_t>(aad.size() & 0xFF));
    aad_block.insert(aad_block.end(), aad.begin(), aad.end());
    absorb(aad_block);
  }
  absorb(msg);

  std::array<std::uint8_t, kCcmpMicBytes> tag{};
  std::copy_n(x.begin(), kCcmpMicBytes, tag.begin());
  return tag;
}

void ctr_crypt(const Aes128& aes, const CcmNonce& nonce,
               std::span<std::uint8_t> data) {
  // Counter 0 is reserved for the MIC; data starts at counter 1.
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint16_t counter = static_cast<std::uint16_t>(1 + i / 16);
    const Block ks = aes.encrypt(ctr_block(nonce, counter));
    const std::size_t run = std::min<std::size_t>(16, data.size() - i);
    for (std::size_t k = 0; k < run; ++k) {
      data[i + k] = static_cast<std::uint8_t>(data[i + k] ^ ks[k]);
    }
    i += run - 1;
  }
}

}  // namespace

util::ByteVec ccm_encrypt(const Aes128& aes, const CcmNonce& nonce,
                          std::span<const std::uint8_t> aad,
                          std::span<const std::uint8_t> plaintext) {
  WITAG_REQUIRE(plaintext.size() < 65536);
  const auto mic = cbc_mac(aes, nonce, aad, plaintext);

  util::ByteVec out(plaintext.begin(), plaintext.end());
  ctr_crypt(aes, nonce, out);
  const Block a0 = aes.encrypt(ctr_block(nonce, 0));
  for (std::size_t i = 0; i < kCcmpMicBytes; ++i) {
    out.push_back(static_cast<std::uint8_t>(mic[i] ^ a0[i]));
  }
  return out;
}

std::optional<util::ByteVec> ccm_decrypt(const Aes128& aes,
                                         const CcmNonce& nonce,
                                         std::span<const std::uint8_t> aad,
                                         std::span<const std::uint8_t> data) {
  if (data.size() < kCcmpMicBytes) return std::nullopt;
  const std::size_t cipher_len = data.size() - kCcmpMicBytes;
  util::ByteVec plain(data.begin(),
                      data.begin() + static_cast<std::ptrdiff_t>(cipher_len));
  ctr_crypt(aes, nonce, plain);

  const auto expected = cbc_mac(aes, nonce, aad, plain);
  const Block a0 = aes.encrypt(ctr_block(nonce, 0));
  for (std::size_t i = 0; i < kCcmpMicBytes; ++i) {
    const std::uint8_t got =
        static_cast<std::uint8_t>(data[cipher_len + i] ^ a0[i]);
    if (got != expected[i]) return std::nullopt;
  }
  return plain;
}

CcmpSession::CcmpSession(const AesKey& temporal_key) : aes_(temporal_key) {}

util::ByteVec CcmpSession::encrypt(const MacHeader& header,
                                   std::span<const std::uint8_t> plaintext) {
  WITAG_REQUIRE(plaintext.size() < 2048);
  const std::uint64_t pn = pn_++;
  const CcmNonce nonce = make_nonce(header, pn);
  const util::ByteVec aad = make_aad(header);

  util::ByteVec body;
  body.reserve(kCcmpHeaderBytes + plaintext.size() + kCcmpMicBytes);
  // CCMP header: PN0 PN1 rsvd (ExtIV|KeyID) PN2 PN3 PN4 PN5.
  body.push_back(static_cast<std::uint8_t>(pn & 0xFF));
  body.push_back(static_cast<std::uint8_t>((pn >> 8) & 0xFF));
  body.push_back(0x00);
  body.push_back(0x20);  // ExtIV set, key id 0
  for (int i = 2; i < 6; ++i) {
    body.push_back(static_cast<std::uint8_t>((pn >> (8 * i)) & 0xFF));
  }

  const util::ByteVec sealed = ccm_encrypt(aes_, nonce, aad, plaintext);
  body.insert(body.end(), sealed.begin(), sealed.end());
  return body;
}

std::optional<util::ByteVec> CcmpSession::decrypt(
    const MacHeader& header, std::span<const std::uint8_t> body) const {
  if (body.size() < kCcmpHeaderBytes + kCcmpMicBytes) return std::nullopt;
  if ((body[3] & 0x20) == 0) return std::nullopt;  // ExtIV must be set

  std::uint64_t pn = 0;
  pn |= body[0];
  pn |= static_cast<std::uint64_t>(body[1]) << 8;
  for (int i = 2; i < 6; ++i) {
    pn |= static_cast<std::uint64_t>(body[static_cast<std::size_t>(2 + i)])
          << (8 * i);
  }
  const CcmNonce nonce = make_nonce(header, pn);
  const util::ByteVec aad = make_aad(header);
  return ccm_decrypt(aes_, nonce, aad, body.subspan(kCcmpHeaderBytes));
}

}  // namespace witag::mac
