#include "mac/station.hpp"

#include "util/require.hpp"
#include <cstddef>
#include "util/bits.hpp"
#include <cstdint>

namespace witag::mac {

AccessPoint::AccessPoint(MacAddress address, SecurityConfig security)
    : address_(address), security_(security) {
  if (security_.mode == Security::kCcmp) {
    ccmp_.emplace(security_.ccmp_key);
  }
}

AccessPoint::PsduResult AccessPoint::receive_psdu(
    std::span<const std::uint8_t> psdu) {
  PsduResult result;
  std::optional<BlockAck> ba;

  for (const Subframe& sf : deaggregate(psdu)) {
    const auto mpdu = parse_mpdu(sf.mpdu);
    if (!mpdu) continue;  // FCS failed: subframe not received
    if (mpdu->header.addr1 != address_) continue;  // not for us

    ++result.subframes_valid;
    // Decrypt when the BSS is protected. A MIC/ICV failure is logged but
    // the MPDU still passed its FCS, so the block ack acknowledges it —
    // matching real APs, whose BA logic runs below the crypto layer.
    if (security_.mode == Security::kCcmp && mpdu->header.protected_frame) {
      if (!ccmp_->decrypt(mpdu->header, mpdu->body)) {
        ++result.decrypt_failures;
      }
    } else if (security_.mode == Security::kWep &&
               mpdu->header.protected_frame) {
      if (!wep_decrypt(security_.wep_key, mpdu->body)) {
        ++result.decrypt_failures;
      }
    }

    if (!ba) {
      ba.emplace();
      ba->start_seq = mpdu->header.sequence;
    }
    if (seq_offset(ba->start_seq, mpdu->header.sequence) >= 0) {
      ba->set_received(mpdu->header.sequence);
    }
  }
  result.block_ack = ba;
  return result;
}

Client::Client(MacAddress address, MacAddress ap_address,
               SecurityConfig security)
    : address_(address), ap_address_(ap_address), security_(security) {
  if (security_.mode == Security::kCcmp) {
    ccmp_.emplace(security_.ccmp_key);
  }
}

util::ByteVec Client::build_ampdu(std::span<const util::ByteVec> payloads) {
  WITAG_REQUIRE(!payloads.empty() && payloads.size() <= kMaxSubframes);
  last_seqs_.clear();
  std::vector<util::ByteVec> mpdus;
  mpdus.reserve(payloads.size());

  for (const util::ByteVec& payload : payloads) {
    Mpdu mpdu;
    mpdu.header.type = FrameType::kQosData;
    mpdu.header.addr1 = ap_address_;
    mpdu.header.addr2 = address_;
    mpdu.header.addr3 = ap_address_;
    mpdu.header.sequence = next_seq_;
    mpdu.header.tid = 0;
    last_seqs_.push_back(next_seq_);
    next_seq_ = static_cast<std::uint16_t>((next_seq_ + 1) % 4096);

    switch (security_.mode) {
      case Security::kOpen:
        mpdu.body = payload;
        break;
      case Security::kCcmp:
        mpdu.header.protected_frame = true;
        mpdu.body = ccmp_->encrypt(mpdu.header, payload);
        break;
      case Security::kWep:
        mpdu.header.protected_frame = true;
        mpdu.body = wep_encrypt(security_.wep_key,
                                next_wep_iv_++ & 0xFFFFFFu, payload);
        break;
    }
    mpdus.push_back(serialize_mpdu(mpdu));
  }
  return aggregate(mpdus);
}

std::uint16_t Client::last_seq(std::size_t i) const {
  WITAG_REQUIRE(i < last_seqs_.size());
  return last_seqs_[i];
}

std::vector<bool> Client::subframe_outcomes(
    const std::optional<BlockAck>& ba) const {
  std::vector<bool> outcomes(last_seqs_.size(), false);
  if (!ba) return outcomes;
  for (std::size_t i = 0; i < last_seqs_.size(); ++i) {
    outcomes[i] = ba->received(last_seqs_[i]);
  }
  return outcomes;
}

}  // namespace witag::mac
