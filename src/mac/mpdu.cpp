#include "mac/mpdu.hpp"

#include "util/crc.hpp"
#include <cstddef>
#include <cstdint>

namespace witag::mac {

util::ByteVec serialize_mpdu(const Mpdu& mpdu) {
  util::ByteVec out = serialize_header(mpdu.header);
  out.insert(out.end(), mpdu.body.begin(), mpdu.body.end());
  const std::uint32_t fcs = util::crc32(out);
  for (unsigned i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((fcs >> (8 * i)) & 0xFF));
  }
  return out;
}

bool fcs_ok(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kQosHeaderBytes + kFcsBytes) return false;
  const std::size_t body_end = bytes.size() - kFcsBytes;
  const std::uint32_t computed = util::crc32(bytes.subspan(0, body_end));
  std::uint32_t stored = 0;
  for (unsigned i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(bytes[body_end + i]) << (8 * i);
  }
  return computed == stored;
}

std::optional<Mpdu> parse_mpdu(std::span<const std::uint8_t> bytes) {
  if (!fcs_ok(bytes)) return std::nullopt;
  const auto header = parse_header(bytes);
  if (!header) return std::nullopt;
  Mpdu mpdu;
  mpdu.header = *header;
  mpdu.body.assign(bytes.begin() + kQosHeaderBytes,
                   bytes.end() - kFcsBytes);
  return mpdu;
}

}  // namespace witag::mac
