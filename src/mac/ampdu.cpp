#include "mac/ampdu.hpp"

#include <array>
#include <cstddef>

#include "util/crc.hpp"
#include "util/require.hpp"

namespace witag::mac {

std::array<std::uint8_t, kDelimiterBytes> make_delimiter(std::size_t length) {
  WITAG_REQUIRE(length <= kMaxMpduLength);
  std::array<std::uint8_t, kDelimiterBytes> d{};
  d[0] = static_cast<std::uint8_t>(length & 0xFF);
  d[1] = static_cast<std::uint8_t>((length >> 8) & 0x0F);
  d[2] = util::crc8(std::span<const std::uint8_t>(d.data(), 2));
  d[3] = kDelimiterSignature;
  return d;
}

int check_delimiter(std::span<const std::uint8_t, kDelimiterBytes> d) {
  if (d[3] != kDelimiterSignature) return -1;
  if (util::crc8(d.subspan(0, 2)) != d[2]) return -1;
  return static_cast<int>(d[0] | (static_cast<unsigned>(d[1] & 0x0F) << 8));
}

util::ByteVec aggregate(std::span<const util::ByteVec> mpdus) {
  WITAG_REQUIRE(!mpdus.empty() && mpdus.size() <= kMaxSubframes);
  util::ByteVec psdu;
  for (const util::ByteVec& mpdu : mpdus) {
    const auto delim = make_delimiter(mpdu.size());
    psdu.insert(psdu.end(), delim.begin(), delim.end());
    psdu.insert(psdu.end(), mpdu.begin(), mpdu.end());
    while (psdu.size() % 4 != 0) psdu.push_back(0);  // pad to 4-byte boundary
  }
  return psdu;
}

std::vector<Subframe> deaggregate(std::span<const std::uint8_t> psdu) {
  std::vector<Subframe> out;
  std::size_t pos = 0;
  while (pos + kDelimiterBytes <= psdu.size() && out.size() < kMaxSubframes) {
    const std::span<const std::uint8_t, kDelimiterBytes> d(
        psdu.data() + pos, kDelimiterBytes);
    const int length = check_delimiter(d);
    if (length < 0 ||
        pos + kDelimiterBytes + static_cast<std::size_t>(length) >
            psdu.size()) {
      pos += 4;  // hunt forward at 4-byte alignment
      continue;
    }
    Subframe sf;
    sf.offset = pos;
    const auto* begin = psdu.data() + pos + kDelimiterBytes;
    sf.mpdu.assign(begin, begin + length);
    out.push_back(std::move(sf));
    pos += kDelimiterBytes + static_cast<std::size_t>(length);
    pos = (pos + 3) & ~std::size_t{3};  // skip pad
  }
  return out;
}

}  // namespace witag::mac
