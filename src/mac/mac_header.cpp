#include "mac/mac_header.hpp"

#include <algorithm>
#include <cstdio>
#include <cstddef>

#include "util/require.hpp"

namespace witag::mac {
namespace {

constexpr std::uint8_t kFcVersionTypeSubtypeQosData = 0x88;  // subtype 8, type 2
constexpr std::uint8_t kFcFlagToDs = 0x01;
constexpr std::uint8_t kFcFlagProtected = 0x40;

}  // namespace

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                octets[1], octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

MacAddress make_address(std::uint8_t tail) {
  return MacAddress{{0x02, 0x57, 0x69, 0x54, 0x41, tail}};  // 02:57:69:54:41:xx
}

util::ByteVec serialize_header(const MacHeader& h) {
  WITAG_REQUIRE(h.type == FrameType::kQosData);
  WITAG_REQUIRE(h.sequence < 4096);
  WITAG_REQUIRE(h.tid < 16);

  util::ByteVec out;
  out.reserve(kQosHeaderBytes);
  out.push_back(kFcVersionTypeSubtypeQosData);
  std::uint8_t flags = 0;
  if (h.to_ds) flags |= kFcFlagToDs;
  if (h.protected_frame) flags |= kFcFlagProtected;
  out.push_back(flags);
  out.push_back(0);  // duration (filled by real NICs; unused here)
  out.push_back(0);
  for (const auto& addr : {h.addr1, h.addr2, h.addr3}) {
    out.insert(out.end(), addr.octets.begin(), addr.octets.end());
  }
  const std::uint16_t seq_ctrl = static_cast<std::uint16_t>(h.sequence << 4);
  out.push_back(static_cast<std::uint8_t>(seq_ctrl & 0xFF));
  out.push_back(static_cast<std::uint8_t>(seq_ctrl >> 8));
  out.push_back(h.tid);  // QoS control low byte
  out.push_back(0);      // QoS control high byte
  WITAG_ENSURE(out.size() == kQosHeaderBytes);
  return out;
}

std::optional<MacHeader> parse_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kQosHeaderBytes) return std::nullopt;
  if (bytes[0] != kFcVersionTypeSubtypeQosData) return std::nullopt;

  MacHeader h;
  h.type = FrameType::kQosData;
  h.to_ds = (bytes[1] & kFcFlagToDs) != 0;
  h.protected_frame = (bytes[1] & kFcFlagProtected) != 0;
  std::size_t off = 4;
  for (auto* addr : {&h.addr1, &h.addr2, &h.addr3}) {
    std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(off), 6,
                addr->octets.begin());
    off += 6;
  }
  const std::uint16_t seq_ctrl =
      static_cast<std::uint16_t>(bytes[off] | (bytes[off + 1] << 8));
  h.sequence = static_cast<std::uint16_t>(seq_ctrl >> 4);
  off += 2;
  h.tid = static_cast<std::uint8_t>(bytes[off] & 0x0F);
  return h;
}

}  // namespace witag::mac
