#include "mac/block_ack.hpp"

#include "util/require.hpp"
#include <cstddef>

namespace witag::mac {

int seq_offset(std::uint16_t start, std::uint16_t seq) {
  const int diff = (static_cast<int>(seq) - static_cast<int>(start) + 4096) % 4096;
  return diff < 64 ? diff : -1;
}

void BlockAck::set_received(std::uint16_t seq) {
  const int off = seq_offset(start_seq, seq);
  WITAG_REQUIRE(off >= 0);
  bitmap |= std::uint64_t{1} << off;
}

bool BlockAck::received(std::uint16_t seq) const {
  const int off = seq_offset(start_seq, seq);
  return off >= 0 && ((bitmap >> off) & 1u) != 0;
}

util::ByteVec serialize_block_ack(const BlockAck& ba) {
  util::ByteVec out;
  out.reserve(12);
  out.push_back(0x05);  // BA control: compressed bitmap, normal ack policy
  out.push_back(0x00);
  const std::uint16_t ssc = static_cast<std::uint16_t>(ba.start_seq << 4);
  out.push_back(static_cast<std::uint8_t>(ssc & 0xFF));
  out.push_back(static_cast<std::uint8_t>(ssc >> 8));
  for (unsigned i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((ba.bitmap >> (8 * i)) & 0xFF));
  }
  return out;
}

std::optional<BlockAck> parse_block_ack(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 12 || bytes[0] != 0x05) return std::nullopt;
  BlockAck ba;
  const std::uint16_t ssc =
      static_cast<std::uint16_t>(bytes[2] | (bytes[3] << 8));
  ba.start_seq = static_cast<std::uint16_t>(ssc >> 4);
  for (unsigned i = 0; i < 8; ++i) {
    ba.bitmap |= static_cast<std::uint64_t>(bytes[4 + i]) << (8 * i);
  }
  return ba;
}

std::vector<bool> subframe_flags(const BlockAck& ba, std::size_t n) {
  WITAG_REQUIRE(n <= 64);
  std::vector<bool> flags(n);
  for (std::size_t i = 0; i < n; ++i) {
    flags[i] = ((ba.bitmap >> i) & 1u) != 0;
  }
  return flags;
}

}  // namespace witag::mac
