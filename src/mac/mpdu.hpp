// MPDU framing: MAC header + frame body + FCS (CRC-32). The FCS check is
// the decision the AP's block ack reports per subframe — and therefore
// the exact mechanism a WiTAG tag modulates.
#pragma once

#include <optional>
#include <span>
#include <cstdint>
#include <cstddef>

#include "mac/mac_header.hpp"
#include "util/bits.hpp"

namespace witag::mac {

struct Mpdu {
  MacHeader header;
  util::ByteVec body;  ///< Frame body (possibly CCMP/WEP encrypted).
};

/// FCS length in bytes.
inline constexpr std::size_t kFcsBytes = 4;

/// Serializes header + body + FCS.
util::ByteVec serialize_mpdu(const Mpdu& mpdu);

/// Parses and FCS-checks an MPDU. Returns nullopt when the buffer is too
/// short, the FCS does not match, or the header is malformed — i.e. when
/// a real receiver would treat the subframe as not received.
std::optional<Mpdu> parse_mpdu(std::span<const std::uint8_t> bytes);

/// FCS check only (cheaper than a full parse).
bool fcs_ok(std::span<const std::uint8_t> bytes);

}  // namespace witag::mac
