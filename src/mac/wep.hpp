// WEP (legacy 802.11 encryption): RC4 keyed with IV || key, frame body =
// IV(3) + key id(1) + ciphertext + encrypted ICV (CRC-32). Present so the
// testbed can demonstrate WiTAG working over WEP networks too (and the
// PHY-layer baselines failing on them). WEP is cryptographically broken;
// it exists here purely for protocol fidelity.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <cstddef>

#include "util/bits.hpp"

namespace witag::mac {

using WepKey = std::array<std::uint8_t, 13>;  // WEP-104

inline constexpr std::size_t kWepHeaderBytes = 4;   // IV + key id
inline constexpr std::size_t kWepIcvBytes = 4;

/// RC4 keystream generator (key-scheduling + PRGA).
class Rc4 {
 public:
  explicit Rc4(std::span<const std::uint8_t> key);
  std::uint8_t next();
  void crypt(std::span<std::uint8_t> data);

 private:
  std::array<std::uint8_t, 256> s_{};
  std::uint8_t i_ = 0;
  std::uint8_t j_ = 0;
};

/// Encrypts a frame body under WEP with the given 24-bit IV.
util::ByteVec wep_encrypt(const WepKey& key, std::uint32_t iv,
                          std::span<const std::uint8_t> plaintext);

/// Decrypts; nullopt when the body is malformed or the ICV fails.
std::optional<util::ByteVec> wep_decrypt(const WepKey& key,
                                         std::span<const std::uint8_t> body);

}  // namespace witag::mac
