#include "mac/rate_ctrl.hpp"

#include "util/require.hpp"

namespace witag::mac {

RateSelector::RateSelector(double target_success,
                           std::size_t min_probe_subframes)
    : target_success_(target_success),
      min_probe_subframes_(min_probe_subframes) {
  util::require(target_success > 0.0 && target_success <= 1.0,
                "RateSelector: target_success must be in (0, 1]");
  util::require(min_probe_subframes > 0,
                "RateSelector: min_probe_subframes must be positive");
}

std::optional<unsigned> RateSelector::next_probe() const {
  if (converged_) return std::nullopt;
  return candidate_;
}

void RateSelector::record(unsigned mcs, std::size_t ok, std::size_t total) {
  util::require(!converged_, "RateSelector::record: already converged");
  util::require(mcs == candidate_, "RateSelector::record: wrong MCS");
  util::require(ok <= total, "RateSelector::record: ok > total");
  ok_ += ok;
  total_ += total;
  if (total_ < min_probe_subframes_) return;

  const double success =
      static_cast<double>(ok_) / static_cast<double>(total_);
  if (success >= target_success_) {
    converged_ = true;
    selected_ = candidate_;
    return;
  }
  if (candidate_ == 0) {
    // Even the most robust rate misses the target; use it anyway.
    converged_ = true;
    selected_ = 0;
    return;
  }
  --candidate_;
  ok_ = 0;
  total_ = 0;
}

unsigned RateSelector::selected() const {
  util::require(converged_, "RateSelector::selected: not converged");
  return selected_;
}

}  // namespace witag::mac
