// A-MPDU aggregation (802.11n 9.7): each subframe is prefixed by a
// 4-byte delimiter { reserved(4) | length(12), CRC-8, signature 0x4E }
// and padded to a 4-byte boundary. Deaggregation is robust: when a
// delimiter fails its CRC (e.g. the tag corrupted that region), the
// receiver hunts forward 4 bytes at a time for the next valid delimiter —
// exactly how real receivers resynchronize, and the reason one corrupted
// subframe does not take down the rest of the aggregate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>
#include <array>
#include <cstddef>

#include "util/bits.hpp"

namespace witag::mac {

/// Delimiter signature byte (ASCII 'N').
inline constexpr std::uint8_t kDelimiterSignature = 0x4E;
inline constexpr std::size_t kDelimiterBytes = 4;
inline constexpr std::size_t kMaxSubframes = 64;
inline constexpr std::size_t kMaxMpduLength = 4095;  // 12-bit length field

/// Builds the delimiter for an MPDU length. Requires length <= 4095.
std::array<std::uint8_t, kDelimiterBytes> make_delimiter(std::size_t length);

/// Validates a delimiter (CRC and signature) and extracts the length.
/// Returns length or -1 when invalid.
int check_delimiter(std::span<const std::uint8_t, kDelimiterBytes> d);

/// Aggregates serialized MPDUs into a PSDU. Requires 1..64 subframes,
/// each <= 4095 bytes.
util::ByteVec aggregate(std::span<const util::ByteVec> mpdus);

/// One deaggregated subframe: the raw MPDU bytes (still to be FCS
/// checked) and where it started in the PSDU.
struct Subframe {
  std::size_t offset = 0;
  util::ByteVec mpdu;
};

/// Scans a PSDU for subframes. Corrupted delimiters are skipped by
/// hunting for the next valid one at 4-byte alignment.
std::vector<Subframe> deaggregate(std::span<const std::uint8_t> psdu);

}  // namespace witag::mac
