#include "mac/airtime.hpp"

#include <cmath>

namespace witag::mac {

util::Micros legacy_frame_airtime_us(std::size_t bytes, double rate_mbps) {
  const double bits = 16.0 + 6.0 + 8.0 * static_cast<double>(bytes);
  const double bits_per_symbol = 4.0 * rate_mbps;  // 4 us symbols
  const double symbols = std::ceil(bits / bits_per_symbol);
  return kLegacyPreambleUs + util::Micros{4.0 * symbols};
}

util::Micros block_ack_airtime_us() {
  // BA frame: FC(2) + dur(2) + RA(6) + TA(6) + BA control(2) + SSC(2) +
  // bitmap(8) + FCS(4) = 32 bytes.
  return legacy_frame_airtime_us(32);
}

util::Micros expected_backoff_us() {
  return kSlotUs * (static_cast<double>(kCwMin) / 2.0);
}

ExchangeAirtime ampdu_exchange(util::Micros ppdu, util::Micros backoff) {
  ExchangeAirtime t;
  t.backoff_us = backoff;
  t.ppdu_us = ppdu;
  t.block_ack_us = block_ack_airtime_us();
  return t;
}

}  // namespace witag::mac
