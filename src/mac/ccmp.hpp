// CCMP (WPA2 data confidentiality): AES-128 in CCM mode (RFC 3610 with
// M = 8 MIC octets and L = 2) with the 802.11 nonce construction
// { priority, transmitter address, 48-bit packet number } and the 8-byte
// CCMP header carrying the PN.
//
// This is what makes WiTAG's encryption claim concrete in the testbed:
// the tag corrupts ciphertext it cannot read, the AP's FCS check fails,
// and the block-ack bit flips — no plaintext access needed anywhere.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <array>
#include <cstddef>

#include "mac/aes.hpp"
#include "mac/mac_header.hpp"
#include "util/bits.hpp"

namespace witag::mac {

inline constexpr std::size_t kCcmpHeaderBytes = 8;
inline constexpr std::size_t kCcmpMicBytes = 8;

/// 13-byte CCM nonce (L = 2).
using CcmNonce = std::array<std::uint8_t, 13>;

/// Raw CCM (RFC 3610, M = 8, L = 2) encryption: returns
/// ciphertext || 8-byte encrypted MIC. Exposed so the mode can be
/// validated against the RFC's test vectors independent of the 802.11
/// framing. Requires plaintext shorter than 2^16 bytes.
util::ByteVec ccm_encrypt(const Aes128& aes, const CcmNonce& nonce,
                          std::span<const std::uint8_t> aad,
                          std::span<const std::uint8_t> plaintext);

/// Inverse of ccm_encrypt; nullopt when the MIC check fails or the
/// buffer is shorter than a MIC.
std::optional<util::ByteVec> ccm_decrypt(const Aes128& aes,
                                         const CcmNonce& nonce,
                                         std::span<const std::uint8_t> aad,
                                         std::span<const std::uint8_t> data);

/// Per-association CCMP state: temporal key and transmit packet number.
class CcmpSession {
 public:
  explicit CcmpSession(const AesKey& temporal_key);

  /// Encrypts `plaintext` for the given MAC header; returns the frame
  /// body (CCMP header + ciphertext + MIC) and advances the PN.
  util::ByteVec encrypt(const MacHeader& header,
                        std::span<const std::uint8_t> plaintext);

  /// Decrypts a frame body produced by `encrypt`. Returns the plaintext
  /// or nullopt when the body is malformed or the MIC check fails.
  std::optional<util::ByteVec> decrypt(const MacHeader& header,
                                       std::span<const std::uint8_t> body) const;

  std::uint64_t packet_number() const { return pn_; }

 private:
  Aes128 aes_;
  std::uint64_t pn_ = 1;  ///< 48-bit packet number (never reused).
};

}  // namespace witag::mac
