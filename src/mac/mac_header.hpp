// 802.11 MAC header for QoS data frames (the subframes of an A-MPDU) and
// the fields the testbed needs: frame control, duration, three addresses,
// sequence control and the QoS control field — 26 bytes on the wire.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <cstddef>

#include "util/bits.hpp"

namespace witag::mac {

struct MacAddress {
  std::array<std::uint8_t, 6> octets{};

  bool operator==(const MacAddress&) const = default;

  /// "aa:bb:cc:dd:ee:ff"
  std::string to_string() const;
};

/// Convenience literals used by tests/examples.
MacAddress make_address(std::uint8_t tail);

enum class FrameType : std::uint8_t {
  kQosData,   ///< type 2 (data), subtype 8 (QoS data)
  kBlockAck,  ///< type 1 (control), subtype 9
};

struct MacHeader {
  FrameType type = FrameType::kQosData;
  bool protected_frame = false;  ///< Frame body is encrypted.
  bool to_ds = true;             ///< Client -> AP direction.
  MacAddress addr1;              ///< Receiver (the AP for queries).
  MacAddress addr2;              ///< Transmitter.
  MacAddress addr3;              ///< Destination/BSSID.
  std::uint16_t sequence = 0;    ///< 12-bit sequence number.
  std::uint8_t tid = 0;          ///< QoS traffic id (block-ack session).

  bool operator==(const MacHeader&) const = default;
};

/// Serialized QoS data header size in bytes.
inline constexpr std::size_t kQosHeaderBytes = 26;

/// Serializes a QoS data header (26 bytes).
/// Requires type == kQosData, sequence < 4096 and tid < 16.
util::ByteVec serialize_header(const MacHeader& h);

/// Parses a QoS data header; nullopt when the buffer is too short or the
/// frame-control type/subtype is not QoS data.
std::optional<MacHeader> parse_header(std::span<const std::uint8_t> bytes);

}  // namespace witag::mac
