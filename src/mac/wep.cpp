#include "mac/wep.hpp"

#include "util/crc.hpp"
#include "util/require.hpp"

namespace witag::mac {

Rc4::Rc4(std::span<const std::uint8_t> key) {
  WITAG_REQUIRE(!key.empty());
  for (unsigned i = 0; i < 256; ++i) s_[i] = static_cast<std::uint8_t>(i);
  std::uint8_t j = 0;
  for (unsigned i = 0; i < 256; ++i) {
    j = static_cast<std::uint8_t>(j + s_[i] + key[i % key.size()]);
    std::swap(s_[i], s_[j]);
  }
}

std::uint8_t Rc4::next() {
  i_ = static_cast<std::uint8_t>(i_ + 1);
  j_ = static_cast<std::uint8_t>(j_ + s_[i_]);
  std::swap(s_[i_], s_[j_]);
  return s_[static_cast<std::uint8_t>(s_[i_] + s_[j_])];
}

void Rc4::crypt(std::span<std::uint8_t> data) {
  for (auto& b : data) b = static_cast<std::uint8_t>(b ^ next());
}

util::ByteVec wep_encrypt(const WepKey& key, std::uint32_t iv,
                          std::span<const std::uint8_t> plaintext) {
  WITAG_REQUIRE(iv < (1u << 24));

  // Seed = IV (3 bytes, little-endian on air) || key.
  util::ByteVec seed;
  seed.reserve(3 + key.size());
  for (unsigned i = 0; i < 3; ++i) {
    seed.push_back(static_cast<std::uint8_t>((iv >> (8 * i)) & 0xFF));
  }
  seed.insert(seed.end(), key.begin(), key.end());

  util::ByteVec payload(plaintext.begin(), plaintext.end());
  const std::uint32_t icv = util::crc32(payload);
  for (unsigned i = 0; i < 4; ++i) {
    payload.push_back(static_cast<std::uint8_t>((icv >> (8 * i)) & 0xFF));
  }
  Rc4 rc4(seed);
  rc4.crypt(payload);

  util::ByteVec body;
  body.reserve(kWepHeaderBytes + payload.size());
  for (unsigned i = 0; i < 3; ++i) {
    body.push_back(static_cast<std::uint8_t>((iv >> (8 * i)) & 0xFF));
  }
  body.push_back(0x00);  // key id 0
  body.insert(body.end(), payload.begin(), payload.end());
  return body;
}

std::optional<util::ByteVec> wep_decrypt(const WepKey& key,
                                         std::span<const std::uint8_t> body) {
  if (body.size() < kWepHeaderBytes + kWepIcvBytes) return std::nullopt;
  std::uint32_t iv = 0;
  for (unsigned i = 0; i < 3; ++i) {
    iv |= static_cast<std::uint32_t>(body[i]) << (8 * i);
  }
  util::ByteVec seed;
  seed.reserve(3 + key.size());
  for (unsigned i = 0; i < 3; ++i) {
    seed.push_back(static_cast<std::uint8_t>((iv >> (8 * i)) & 0xFF));
  }
  seed.insert(seed.end(), key.begin(), key.end());

  util::ByteVec payload(body.begin() + kWepHeaderBytes, body.end());
  Rc4 rc4(seed);
  rc4.crypt(payload);

  std::uint32_t stored = 0;
  for (unsigned i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(payload[payload.size() - 4 + i])
              << (8 * i);
  }
  payload.resize(payload.size() - kWepIcvBytes);
  if (util::crc32(payload) != stored) return std::nullopt;
  return payload;
}

}  // namespace witag::mac
