// MCS selection for WiTAG query frames (paper section 4.1): use the
// highest PHY rate whose subframe error rate is near zero with the tag
// silent, so frame losses from path loss are not confused with tag data
// while airtime per bit stays minimal.
//
// The selector runs a simple top-down probe: starting from the highest
// MCS, the caller reports subframe outcomes for probe rounds; the first
// MCS meeting the success threshold is selected.
#pragma once

#include <cstddef>
#include <optional>

#include "phy/mcs.hpp"

namespace witag::mac {

class RateSelector {
 public:
  /// `target_success`: minimum fraction of subframes that must pass with
  /// the tag silent. `min_probe_subframes`: how many subframes to observe
  /// per MCS before judging it.
  explicit RateSelector(double target_success = 0.995,
                        std::size_t min_probe_subframes = 256);

  /// The MCS to probe next, or nullopt when selection has converged.
  std::optional<unsigned> next_probe() const;

  /// Records a probe round outcome for `mcs`: `ok` of `total` subframes
  /// passed their FCS. Requires mcs == *next_probe().
  void record(unsigned mcs, std::size_t ok, std::size_t total);

  /// Converged choice. Requires next_probe() == nullopt.
  unsigned selected() const;

  bool converged() const { return converged_; }

 private:
  double target_success_;
  std::size_t min_probe_subframes_;
  unsigned candidate_ = phy::kNumMcs - 1;
  std::size_t ok_ = 0;
  std::size_t total_ = 0;
  bool converged_ = false;
  unsigned selected_ = 0;
};

}  // namespace witag::mac
