// AES-128 block cipher (FIPS-197), encryption direction only — CCM mode
// (counter + CBC-MAC) needs just the forward cipher for both encryption
// and decryption. Implemented from scratch; validated against FIPS-197
// appendix vectors in the tests.
//
// Not constant-time: this is a protocol simulator, not a production
// crypto library, and the threat model here is protocol fidelity.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace witag::mac {

using AesKey = std::array<std::uint8_t, 16>;
using AesBlock = std::array<std::uint8_t, 16>;

/// AES-128 with a precomputed key schedule.
class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  /// Encrypts one 16-byte block.
  AesBlock encrypt(const AesBlock& plaintext) const;

 private:
  std::array<std::array<std::uint8_t, 16>, 11> round_keys_{};
};

}  // namespace witag::mac
