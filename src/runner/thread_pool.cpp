#include "runner/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace witag::runner {

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t jobs) {
  const std::size_t n = jobs == 0 ? default_jobs() : jobs;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace witag::runner
