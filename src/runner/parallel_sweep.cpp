#include "runner/parallel_sweep.hpp"

#include <algorithm>
#include <chrono>
#include <ctime>

#include "obs/obs.hpp"
#include "util/cli.hpp"

namespace witag::runner {

double steady_ms() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1e6;
}

double thread_cpu_ms() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) / 1e6;
  }
#endif
  return steady_ms();
}

std::size_t jobs_from_args(const util::Args& args) {
  const long jobs = args.get_int("jobs", 0);
  if (jobs < 0) return 1;
  return static_cast<std::size_t>(jobs);
}

SweepResult run_sweep(const std::vector<SweepTask>& tasks,
                      const SweepOptions& opts) {
  SweepResult result;
  result.jobs = opts.jobs == 0 ? default_jobs() : opts.jobs;
  // "Workers actually used": a pool never has more workers than tasks.
  if (!tasks.empty()) result.jobs = std::min(result.jobs, tasks.size());
  std::vector<double> task_ms(tasks.size(), 0.0);

  const double t0 = steady_ms();
  result.per_task = parallel_map(
      tasks.size(), result.jobs,
      [&](std::size_t i) -> core::Session::RunStats {
        const double start = steady_ms();
#if WITAG_OBS_ENABLED
        const double trace_start =
            obs::trace_enabled() ? obs::Tracer::instance().now_us() : 0.0;
#endif
        core::Session session(tasks[i].config);
        core::Session::RunStats stats = session.run(tasks[i].rounds);
        task_ms[i] = steady_ms() - start;
#if WITAG_OBS_ENABLED
        WITAG_COUNT_HOT("runner.tasks", 1);
        WITAG_HDR("runner.task_ms", task_ms[i]);
        if (obs::trace_enabled()) {
          // Recorded on the worker's own thread, so the Chrome trace
          // shows which worker lane ran which task.
          obs::complete_arg2("runner.task", trace_start, task_ms[i] * 1e3,
                             "index", static_cast<double>(i), "rounds",
                             static_cast<double>(tasks[i].rounds), "runner");
        }
#endif
        return stats;
      });
  result.wall_ms = steady_ms() - t0;

  for (const auto& stats : result.per_task) {
    result.merged.merge(stats.metrics);
    result.triggers_missed += stats.triggers_missed;
  }
  for (const double ms : task_ms) result.serial_estimate_ms += ms;
  return result;
}

}  // namespace witag::runner
