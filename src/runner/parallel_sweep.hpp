// Parallel simulation engine: fans independent (config, seed) ->
// Session::run() tasks across a fixed-size thread pool and merges the
// per-task results.
//
// Determinism contract: every task owns its Session (and therefore its
// Rng, seeded from the task's config), tasks never share mutable
// simulation state, and results are collected by task index — so the
// merged output is bit-identical to running the tasks serially in index
// order, regardless of worker count or scheduling. Seeds for generated
// task lists come from util::Rng::derive_seed(base_seed, task_index),
// which is itself an O(1) pure function of (base_seed, task_index).
//
// The standard bench flag is `--jobs N` (0/absent = hardware
// concurrency, 1 = today's serial behavior on the calling thread); use
// jobs_from_args() to read it.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <type_traits>
#include <vector>

#include "runner/thread_pool.hpp"
#include "witag/config.hpp"
#include "witag/metrics.hpp"
#include "witag/session.hpp"

namespace witag::util {
class Args;
}  // namespace witag::util

namespace witag::runner {

struct SweepOptions {
  /// Worker count; 0 = default_jobs(). With 1 every task runs inline on
  /// the calling thread (no pool), preserving single-threaded behavior
  /// exactly, including trace thread attribution.
  std::size_t jobs = 0;
};

/// Reads the standard `--jobs` flag (0 when absent = hardware
/// concurrency; clamps negatives to 1).
std::size_t jobs_from_args(const util::Args& args);

/// Monotonic wall-clock milliseconds (observability only, reported to
/// stderr/metrics, never into simulation state). Lives in runner/ so
/// layers under the determinism lint (src/sim's city loop) can time
/// their phases without reading a clock directly.
double steady_ms();

/// CPU milliseconds consumed by the calling thread (observability
/// only). Unlike steady_ms deltas, per-worker sums of this are immune
/// to oversubscription: a worker descheduled by its siblings accrues
/// no CPU time, so summed shard busy-time is an honest serial-cost
/// estimate even with more workers than cores.
double thread_cpu_ms();

/// One independent Monte-Carlo unit: a fully-specified session (the
/// config carries the task's seed) run for `rounds` exchanges.
struct SweepTask {
  core::SessionConfig config;
  std::size_t rounds = 0;
};

struct SweepResult {
  /// Per-task stats in task order — identical across worker counts.
  std::vector<core::Session::RunStats> per_task;
  /// All per-task LinkMetrics folded with LinkMetrics::merge().
  core::LinkMetrics merged;
  std::size_t triggers_missed = 0;
  /// Workers actually used.
  std::size_t jobs = 1;
  /// End-to-end sweep wall time.
  double wall_ms = 0.0;
  /// Sum of per-task execution times — what a serial run would have
  /// cost; wall_ms vs this is the realized speedup.
  double serial_estimate_ms = 0.0;
};

/// Runs every task's Session::run() across `opts.jobs` workers, merges
/// metrics, and records runner.* metrics plus (when tracing) one
/// "runner.task" span per task on the worker thread that executed it.
SweepResult run_sweep(const std::vector<SweepTask>& tasks,
                      const SweepOptions& opts = {});

/// Generic fan-out for benches whose task body is not Session::run()
/// (Reader polling loops, custom probes): runs fn(task_index) for every
/// index in [0, count) and returns the results in index order. `fn`
/// must be callable concurrently for distinct indices; with jobs == 1
/// everything runs inline on the calling thread. The first exception
/// thrown by any task is rethrown after the fan-out completes.
template <typename Fn>
auto parallel_map(std::size_t count, std::size_t jobs, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(std::is_default_constructible_v<Result>,
                "parallel_map: task results must be default-constructible");
  std::vector<Result> out(count);
  if (count == 0) return out;
  if (jobs == 0) jobs = default_jobs();
  if (jobs == 1) {
    for (std::size_t i = 0; i < count; ++i) out[i] = fn(i);
    return out;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  {
    ThreadPool pool(std::min(jobs, count));
    for (std::size_t w = 0; w < pool.jobs(); ++w) {
      pool.submit([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) return;
          try {
            out[i] = fn(i);
          } catch (...) {
            const std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
        }
      });
    }
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

}  // namespace witag::runner
