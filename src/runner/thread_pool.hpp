// Fixed-size worker pool for the parallel simulation engine.
//
// Workers are spawned once at construction and drain a FIFO task queue;
// `wait_idle()` blocks until every submitted task has finished, so one
// pool can back several sweep phases. Tasks must not throw across the
// pool boundary — wrap fallible work and stash the exception (see
// runner::parallel_map, which does exactly that).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace witag::runner {

/// Worker count that `jobs = 0` resolves to: std::thread::hardware_
/// concurrency(), or 1 when the runtime cannot tell.
std::size_t default_jobs();

class ThreadPool {
 public:
  /// Spawns `jobs` workers (0 = default_jobs()).
  explicit ThreadPool(std::size_t jobs = 0);
  /// Drains the queue, then joins every worker.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t jobs() const { return workers_.size(); }

  /// Enqueues one task; returns immediately.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;  // witag: guarded_by(mu_)
  // Queued + currently executing.
  std::size_t in_flight_ = 0;  // witag: guarded_by(mu_)
  bool stopping_ = false;  // witag: guarded_by(mu_)
  std::vector<std::thread> workers_;
};

}  // namespace witag::runner
