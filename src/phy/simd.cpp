// Tier detection, the WITAG_SIMD override, and the scalar reference
// kernels every tier falls back to. The vector implementations live in
// simd_sse2.cpp / simd_avx2.cpp; this TU owns the dispatch tables so a
// build without AVX2 support (or a non-x86 target) degrades to the
// lower tiers without any caller noticing.

#include "phy/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <string>

#include "phy/trellis.hpp"
#include "util/require.hpp"

namespace witag::phy::simd {
namespace {

#if defined(__x86_64__) || defined(__i386__)
constexpr bool kIsX86 = true;
#else
constexpr bool kIsX86 = false;
#endif

Tier clamp_tier(Tier t) { return std::min(t, detect_best_tier()); }

/// WITAG_SIMD parse, read once per process. Unset or unrecognized
/// values mean "auto" (best available); "off"/"scalar" force the
/// portable path CI's simd-dispatch job byte-compares against.
Tier env_tier() {
  static const Tier tier = [] {
    const char* env = std::getenv("WITAG_SIMD");
    if (!env) return detect_best_tier();
    const std::string v(env);
    if (v == "off" || v == "scalar" || v == "0") return Tier::kScalar;
    if (v == "sse2") return clamp_tier(Tier::kSse2);
    if (v == "avx2") return clamp_tier(Tier::kAvx2);
    return detect_best_tier();  // "auto" and anything else
  }();
  return tier;
}

/// ScopedTier override: -1 = none, otherwise a Tier value. Relaxed is
/// enough — overrides are set from single-threaded test/bench setup.
std::atomic<int> g_override{-1};

// ---------------------------------------------------------------------
// Scalar kernels (the fallback tier, and the semantics every vector
// kernel must reproduce bit for bit).
// ---------------------------------------------------------------------

void acs_step_scalar(const double* cur, double* nxt, std::uint8_t* srow,
                     double la, double lb) {
  // pa[e] / pb[e] = metric contribution of a branch expecting bit e.
  const double pa[2] = {la, -la};
  const double pb[2] = {lb, -lb};
  for (std::uint32_t ns = 0; ns < kNumStates; ++ns) {
    const detail::Butterfly& bf = detail::kButterflies[ns];
    // Same association as the reference: (metric + a) + b.
    const double m0 = (cur[bf.s0] + pa[bf.a0]) + pb[bf.b0];
    const double m1 = (cur[bf.s1] + pa[bf.a1]) + pb[bf.b1];
    const bool take1 = m1 > m0;  // strict: ties keep the s0 branch
    nxt[ns] = take1 ? m1 : m0;
    srow[ns] = take1 ? bf.sv1 : bf.sv0;
  }
}

void demap_block_scalar(const double* re, const double* im, const double* nv,
                        std::size_t count, const DemapAxes& ax, double* out) {
  const unsigned ni = 1u << ax.i_bits;
  const unsigned nq = 1u << ax.q_bits;  // q_bits == 0 -> one level (0.0)
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t p = 0; p < count; ++p) {
    const double yr = re[p];
    const double yi = im[p];
    const double noise_var = nv[p];
    // Squared per-axis distances: the same subtract and multiply the
    // reference performs inside std::norm(y - table[i]).
    double di2[8];
    double dq2[8];
    for (unsigned j = 0; j < ni; ++j) {
      const double d = yr - ax.i_levels[j];
      di2[j] = d * d;
    }
    for (unsigned q = 0; q < nq; ++q) {
      const double d = yi - ax.q_levels[q];
      dq2[q] = d * d;
    }
    // Per-axis minima, overall and split by each index bit.
    double min_i = kInf, min_q = kInf;
    double min0_i[4], min1_i[4], min0_q[4], min1_q[4];
    for (unsigned b = 0; b < ax.i_bits; ++b) min0_i[b] = min1_i[b] = kInf;
    for (unsigned b = 0; b < ax.q_bits; ++b) min0_q[b] = min1_q[b] = kInf;
    for (unsigned j = 0; j < ni; ++j) {
      min_i = std::min(min_i, di2[j]);
      for (unsigned b = 0; b < ax.i_bits; ++b) {
        if ((j >> b) & 1u) {
          min1_i[b] = std::min(min1_i[b], di2[j]);
        } else {
          min0_i[b] = std::min(min0_i[b], di2[j]);
        }
      }
    }
    for (unsigned q = 0; q < nq; ++q) {
      min_q = std::min(min_q, dq2[q]);
      for (unsigned b = 0; b < ax.q_bits; ++b) {
        if ((q >> b) & 1u) {
          min1_q[b] = std::min(min1_q[b], dq2[q]);
        } else {
          min0_q[b] = std::min(min0_q[b], dq2[q]);
        }
      }
    }
    // Max-log LLRs, same I-part + Q-part addition and final division as
    // the reference's (min1 - min0) / noise_var over full distances.
    double* llr = out + p * ax.n_bits;
    for (unsigned b = 0; b < ax.i_bits; ++b) {
      llr[b] = ((min1_i[b] + min_q) - (min0_i[b] + min_q)) / noise_var;
    }
    for (unsigned b = 0; b < ax.q_bits; ++b) {
      llr[ax.i_bits + b] =
          ((min_i + min1_q[b]) - (min_i + min0_q[b])) / noise_var;
    }
  }
}

void equalize_block_scalar(const double* hr, const double* hi,
                           const double* rr, const double* ri, double cr,
                           double ci, double noise_floor, std::size_t count,
                           double* zr, double* zi, double* nv) {
  for (std::size_t i = 0; i < count; ++i) {
    const double g = hr[i] * hr[i] + hi[i] * hi[i];
    const double yr = rr[i] * cr + ri[i] * ci;
    const double yi = ri[i] * cr - rr[i] * ci;
    // Compute-then-select, exactly like the vector blend: a dead bin's
    // quotient is produced (possibly NaN) and discarded.
    const double qr = (yr * hr[i] + yi * hi[i]) / g;
    const double qi = (yi * hr[i] - yr * hi[i]) / g;
    const double qn = noise_floor / g;
    const bool dead = g < kEqualizeMinGain;
    zr[i] = dead ? 0.0 : qr;
    zi[i] = dead ? 0.0 : qi;
    nv[i] = dead ? kEqualizeDeadNoise : qn;
  }
}

void deinterleave_scalar(const double* in, const std::int32_t* map,
                         std::size_t n, double* out) {
  for (std::size_t k = 0; k < n; ++k) out[k] = in[map[k]];
}

using util::Cx;

void fft_radix4_pass_scalar(Cx* data, std::size_t n, std::size_t h,
                            const Cx* w1, const Cx* w2) {
  // k outer so each twiddle triple is loaded once per pass instead of
  // once per block — the "hoist twiddle loads" win for the many-block
  // early stages.
  for (std::size_t k = 0; k < h; ++k) {
    const Cx w1k = w1[k];
    const Cx w2k = w2[k];
    const Cx w2kh = w2[k + h];
    for (std::size_t i = 0; i < n; i += 4 * h) {
      Cx& d0 = data[i + k];
      Cx& d1 = data[i + k + h];
      Cx& d2 = data[i + k + 2 * h];
      Cx& d3 = data[i + k + 3 * h];
      // First (half-h) stage on both sub-blocks, then the half-2h
      // stage across them: identical per-element arithmetic to running
      // the two radix-2 stages back to back.
      const Cx t = d1 * w1k;
      const Cx s0 = d0 + t;
      const Cx s1 = d0 - t;
      const Cx u = d3 * w1k;
      const Cx s2 = d2 + u;
      const Cx s3 = d2 - u;
      const Cx v0 = s2 * w2k;
      const Cx v1 = s3 * w2kh;
      d0 = s0 + v0;
      d2 = s0 - v0;
      d1 = s1 + v1;
      d3 = s1 - v1;
    }
  }
}

void fft_len2_pass_scalar(Cx* data, std::size_t n) {
  // Stage twiddle is exactly (1, 0); the reference still multiplies by
  // it, so do the same multiply to stay bit-identical on signed zeros.
  const Cx w{1.0, 0.0};
  for (std::size_t i = 0; i < n; i += 2) {
    const Cx a = data[i];
    const Cx v = data[i + 1] * w;
    data[i] = a + v;
    data[i + 1] = a - v;
  }
}

void fft_scale_scalar(Cx* data, std::size_t n, double scale) {
  for (std::size_t i = 0; i < n; ++i) data[i] *= scale;
}

constexpr FftKernels kFftScalar{fft_radix4_pass_scalar, fft_len2_pass_scalar,
                                fft_scale_scalar};

}  // namespace

// Vector kernel entry points, defined in simd_sse2.cpp / simd_avx2.cpp.
// Declared here (not in the public header) so only the dispatch tables
// see them.
namespace kernels {
bool sse2_available();
void acs_step_sse2(const double* cur, double* nxt, std::uint8_t* srow,
                   double la, double lb);
void demap_block_sse2(const double* re, const double* im, const double* nv,
                      std::size_t count, const DemapAxes& ax, double* out);
void equalize_block_sse2(const double* hr, const double* hi, const double* rr,
                         const double* ri, double cr, double ci,
                         double noise_floor, std::size_t count, double* zr,
                         double* zi, double* nv);
bool avx2_compiled();
bool avx2_supported();
void acs_step_avx2(const double* cur, double* nxt, std::uint8_t* srow,
                   double la, double lb);
void demap_block_avx2(const double* re, const double* im, const double* nv,
                      std::size_t count, const DemapAxes& ax, double* out);
void equalize_block_avx2(const double* hr, const double* hi, const double* rr,
                         const double* ri, double cr, double ci,
                         double noise_floor, std::size_t count, double* zr,
                         double* zi, double* nv);
void deinterleave_avx2(const double* in, const std::int32_t* map,
                       std::size_t n, double* out);
void fft_radix4_pass_avx2(util::Cx* data, std::size_t n, std::size_t h,
                          const util::Cx* w1, const util::Cx* w2);
void fft_len2_pass_avx2(util::Cx* data, std::size_t n);
void fft_scale_avx2(util::Cx* data, std::size_t n, double scale);
}  // namespace kernels

Tier detect_best_tier() {
  static const Tier best = [] {
    if (!kIsX86) return Tier::kScalar;
    if (kernels::avx2_compiled() && kernels::avx2_supported()) {
      return Tier::kAvx2;
    }
    return kernels::sse2_available() ? Tier::kSse2 : Tier::kScalar;
  }();
  return best;
}

Tier active_tier() {
  const int override_tier = g_override.load(std::memory_order_relaxed);
  if (override_tier >= 0) return clamp_tier(static_cast<Tier>(override_tier));
  return env_tier();
}

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar: return "scalar";
    case Tier::kSse2: return "sse2";
    case Tier::kAvx2: return "avx2";
  }
  WITAG_ENSURE(false);
  return "scalar";
}

ScopedTier::ScopedTier(Tier t)
    : previous_(g_override.load(std::memory_order_relaxed)) {
  g_override.store(static_cast<int>(clamp_tier(t)),
                   std::memory_order_relaxed);
}

ScopedTier::~ScopedTier() {
  g_override.store(previous_, std::memory_order_relaxed);
}

AcsStepFn acs_step_for(Tier t) {
  switch (t) {
    case Tier::kAvx2:
      if (detect_best_tier() == Tier::kAvx2) return kernels::acs_step_avx2;
      [[fallthrough]];
    case Tier::kSse2:
      if (kernels::sse2_available()) return kernels::acs_step_sse2;
      [[fallthrough]];
    case Tier::kScalar:
      break;
  }
  return acs_step_scalar;
}

DemapBlockFn demap_block_for(Tier t) {
  switch (t) {
    case Tier::kAvx2:
      if (detect_best_tier() == Tier::kAvx2) return kernels::demap_block_avx2;
      [[fallthrough]];
    case Tier::kSse2:
      if (kernels::sse2_available()) return kernels::demap_block_sse2;
      [[fallthrough]];
    case Tier::kScalar:
      break;
  }
  return demap_block_scalar;
}

EqualizeFn equalize_for(Tier t) {
  switch (t) {
    case Tier::kAvx2:
      if (detect_best_tier() == Tier::kAvx2) {
        return kernels::equalize_block_avx2;
      }
      [[fallthrough]];
    case Tier::kSse2:
      if (kernels::sse2_available()) return kernels::equalize_block_sse2;
      [[fallthrough]];
    case Tier::kScalar:
      break;
  }
  return equalize_block_scalar;
}

DeinterleaveFn deinterleave_for(Tier t) {
  // SSE2 has no gather instruction; a 2-lane load/shuffle emulation
  // loses to the scalar loop, so only AVX2 diverges from scalar.
  if (t == Tier::kAvx2 && detect_best_tier() == Tier::kAvx2) {
    return kernels::deinterleave_avx2;
  }
  return deinterleave_scalar;
}

const FftKernels& fft_kernels_for(Tier t) {
  static const FftKernels avx2{kernels::fft_radix4_pass_avx2,
                               kernels::fft_len2_pass_avx2,
                               kernels::fft_scale_avx2};
  if (t == Tier::kAvx2 && detect_best_tier() == Tier::kAvx2) return avx2;
  return kFftScalar;  // one complex double per SSE2 vector: no win
}

}  // namespace witag::phy::simd
