// PPDU assembly and reception: the full 802.11n-style BCC chain
// (scramble -> convolutional encode -> puncture -> interleave -> map ->
// OFDM) on the transmit side, and its inverse with least-squares channel
// estimation, per-subcarrier equalization, soft demapping and Viterbi
// decoding on the receive side.
//
// The PPDU is exposed as a timeline of frequency-domain OFDM symbols so
// the channel simulator can apply a (possibly time-varying) channel per
// symbol — which is exactly the granularity at which a WiTAG tag operates.
// `to_samples`/`receive_samples` provide the equivalent time-domain path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>
#include <cstddef>

#include "phy/channel_est.hpp"
#include "phy/mcs.hpp"
#include "phy/ofdm.hpp"
#include "phy/plcp.hpp"
#include "phy/viterbi.hpp"
#include "util/bits.hpp"
#include "util/complexvec.hpp"

namespace witag::phy {

/// Reusable buffers for the receive pipeline. One scratch serves any
/// number of sequential decodes; each buffer grows to the largest PPDU
/// seen and is then reused, so steady-state decode of an A-MPDU stream
/// (and of successive Reader rounds — the Session owns one scratch)
/// performs no per-subframe heap allocation. Not thread-safe: use one
/// scratch per thread (the sweep runner's per-worker Sessions each own
/// theirs).
struct DecodeScratch {
  ViterbiWorkspace viterbi;
  EqualizedSymbol eq;              ///< Per-symbol equalizer output.
  std::vector<double> sym_llrs;    ///< Per-symbol soft demap output.
  std::vector<double> deint;       ///< Per-symbol deinterleaved LLRs.
  std::vector<double> llrs;        ///< Concatenated field LLRs.
  std::vector<double> mother;      ///< Depunctured mother-rate LLRs.
  util::BitVec bits;               ///< Viterbi output bits.
  util::BitVec plain;              ///< Descrambled field bits.
  std::vector<FreqSymbol> symbols; ///< receive_samples staging.
  util::CxVec fft_work;            ///< OFDM transform buffer.

  /// Heap bytes currently reserved across all buffers (exported as the
  /// `phy.decode.scratch_bytes` gauge).
  std::size_t capacity_bytes() const;
};

/// Role of each symbol slot in the PPDU timeline. The layout is fixed:
/// slot 0 = STF, slots 1..2 = LTF, slots 3..4 = SIG, remainder = data.
enum class SlotKind : std::uint8_t { kStf, kLtf, kSig, kData };

inline constexpr std::size_t kStfSlots = 1;
inline constexpr std::size_t kLtfSlots = 2;
inline constexpr std::size_t kPreambleSlots = kStfSlots + kLtfSlots;
inline constexpr std::size_t kHeaderSlots = kPreambleSlots + kSigSymbols;

/// Transmit-side PPDU: the symbol timeline plus metadata.
struct TxPpdu {
  HtSig sig;
  std::vector<FreqSymbol> symbols;  ///< STF, LTF x2, SIG x2, data...
  std::size_t n_data_symbols = 0;

  std::size_t size() const { return symbols.size(); }
  /// On-air duration [us] at 4 us per symbol slot.
  double duration_us() const;
  /// Slot kind for a timeline index.
  SlotKind kind(std::size_t slot) const;
};

/// Transmitter options.
struct TxConfig {
  unsigned mcs_index = 0;
  std::uint8_t scrambler_seed = 0x5D;
};

/// Builds the PPDU carrying `psdu`. Requires a non-empty PSDU smaller
/// than 65536 bytes and a valid MCS.
TxPpdu transmit(std::span<const std::uint8_t> psdu, const TxConfig& cfg);

/// Receiver options.
struct RxConfig {
  bool cpe_correction = true;  ///< Pilot-based common-phase tracking.
};

/// Receive outcome. When `sig_ok` is false the PPDU is undecodable (the
/// header failed its CRC) and `psdu` is empty. Otherwise `psdu` holds the
/// decoded bytes, which may still contain bit errors — per-MPDU FCS
/// checking is the MAC layer's job.
struct RxResult {
  bool sig_ok = false;
  HtSig sig;
  util::ByteVec psdu;
  ChannelEstimate estimate;
};

/// Decodes a received symbol timeline (same layout as TxPpdu::symbols).
/// Requires at least the header slots.
RxResult receive(std::span<const FreqSymbol> symbols, const RxConfig& cfg);

/// Scratch-threaded variant: reuses `scratch` buffers across calls so
/// steady-state decode allocates only the returned RxResult contents.
RxResult receive(std::span<const FreqSymbol> symbols, const RxConfig& cfg,
                 DecodeScratch& scratch);

/// Flattens a PPDU to 20 Msps time-domain samples (80 per slot).
util::CxVec to_samples(const TxPpdu& ppdu);

/// Splits time-domain samples back into frequency-domain symbols and
/// decodes them. Requires a whole number of 80-sample slots.
RxResult receive_samples(std::span<const util::Cx> samples,
                         const RxConfig& cfg);

/// Scratch-threaded variant of receive_samples.
RxResult receive_samples(std::span<const util::Cx> samples,
                         const RxConfig& cfg, DecodeScratch& scratch);

namespace detail {

/// Front half of a field decode: equalize, soft-demap and deinterleave
/// each symbol, leaving the concatenated field LLRs in `scratch.llrs`
/// (cleared first). Shared by receive() and the BatchDecoder staging.
void field_llrs_into(std::span<const FreqSymbol> symbols,
                     const ChannelEstimate& est, Modulation mod,
                     std::size_t first_symbol_index, bool cpe_correction,
                     DecodeScratch& scratch);

/// Back half: depunctures `scratch.llrs` at `rate`, truncates to
/// `n_info_bits` information bits (0 = decode everything; the data
/// field stops at the tail where the trellis terminates) and
/// Viterbi-decodes into `scratch.bits`.
void field_bits_from_llrs(CodeRate rate, std::size_t n_info_bits,
                          DecodeScratch& scratch);

}  // namespace detail

}  // namespace witag::phy
