#include "phy/viterbi.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>

#include "obs/obs.hpp"
#include "phy/convolutional.hpp"
#include "util/require.hpp"

namespace witag::phy {
namespace {

// Transition model (matches convolutional_encode): from state s (the top
// six register bits) with input u, the full 7-bit register becomes
// f = s | (u << 6); the branch outputs are the parities of f with each
// generator and the next state is f >> 1.
struct Transitions {
  // For [state][input]: next state and the two expected output bits.
  std::array<std::array<std::uint8_t, 2>, kNumStates> next{};
  std::array<std::array<std::uint8_t, 2>, kNumStates> out_a{};
  std::array<std::array<std::uint8_t, 2>, kNumStates> out_b{};
};

Transitions make_transitions() {
  Transitions t;
  for (std::uint32_t s = 0; s < kNumStates; ++s) {
    for (std::uint32_t u = 0; u < 2; ++u) {
      const std::uint32_t full = s | (u << 6);
      t.next[s][u] = static_cast<std::uint8_t>(full >> 1);
      t.out_a[s][u] =
          static_cast<std::uint8_t>(std::popcount(full & kGenPolyA) & 1);
      t.out_b[s][u] =
          static_cast<std::uint8_t>(std::popcount(full & kGenPolyB) & 1);
    }
  }
  return t;
}

const Transitions kTrellis = make_transitions();

// Branch metric contribution of one coded bit: LLR > 0 favors bit 0, so a
// branch expecting bit 0 gains +llr and one expecting bit 1 gains -llr.
double bit_metric(double llr, std::uint8_t expected) {
  return expected ? -llr : llr;
}

}  // namespace

util::BitVec viterbi_decode(std::span<const double> llrs) {
  WITAG_SPAN_CAT("phy.viterbi", "phy");
  WITAG_REQUIRE(!llrs.empty() && llrs.size() % 2 == 0);
  const std::size_t n_steps = llrs.size() / 2;
  WITAG_COUNT("phy.viterbi.calls", 1);
  WITAG_COUNT("phy.viterbi.bits", n_steps);
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  std::vector<double> metric(kNumStates, kNegInf);
  std::vector<double> next_metric(kNumStates, kNegInf);
  metric[0] = 0.0;  // encoder starts zeroed

  // survivor[step][state] = (previous state << 1) | input bit.
  std::vector<std::array<std::uint8_t, kNumStates>> survivor(n_steps);

  for (std::size_t step = 0; step < n_steps; ++step) {
    std::fill(next_metric.begin(), next_metric.end(), kNegInf);
    const double la = llrs[2 * step];
    const double lb = llrs[2 * step + 1];
    for (std::uint32_t s = 0; s < kNumStates; ++s) {
      if (metric[s] == kNegInf) continue;
      for (std::uint32_t u = 0; u < 2; ++u) {
        const std::uint8_t ns = kTrellis.next[s][u];
        const double m = metric[s] + bit_metric(la, kTrellis.out_a[s][u]) +
                         bit_metric(lb, kTrellis.out_b[s][u]);
        if (m > next_metric[ns]) {
          next_metric[ns] = m;
          survivor[step][ns] = static_cast<std::uint8_t>((s << 1) | u);
        }
      }
    }
    metric.swap(next_metric);
  }

  // The tail drives the encoder back to state 0; fall back to the best
  // surviving state if 0 was pruned (can happen under extreme noise).
  std::uint32_t state = 0;
  if (metric[0] == kNegInf) {
    state = static_cast<std::uint32_t>(
        std::max_element(metric.begin(), metric.end()) - metric.begin());
  }

  util::BitVec bits(n_steps);
  for (std::size_t step = n_steps; step-- > 0;) {
    const std::uint8_t sv = survivor[step][state];
    bits[step] = sv & 1u;
    state = sv >> 1;
  }
  return bits;
}

}  // namespace witag::phy
