#include "phy/viterbi.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>

#include "obs/obs.hpp"
#include "phy/convolutional.hpp"
#include "util/require.hpp"

namespace witag::phy {
namespace {

// Transition model (matches convolutional_encode): from state s (the top
// six register bits) with input u, the full 7-bit register becomes
// f = s | (u << 6); the branch outputs are the parities of f with each
// generator and the next state is f >> 1.
struct Transitions {
  // For [state][input]: next state and the two expected output bits.
  std::array<std::array<std::uint8_t, 2>, kNumStates> next{};
  std::array<std::array<std::uint8_t, 2>, kNumStates> out_a{};
  std::array<std::array<std::uint8_t, 2>, kNumStates> out_b{};
};

constexpr Transitions make_transitions() {
  Transitions t;
  for (std::uint32_t s = 0; s < kNumStates; ++s) {
    for (std::uint32_t u = 0; u < 2; ++u) {
      const std::uint32_t full = s | (u << 6);
      t.next[s][u] = static_cast<std::uint8_t>(full >> 1);
      t.out_a[s][u] =
          static_cast<std::uint8_t>(std::popcount(full & kGenPolyA) & 1);
      t.out_b[s][u] =
          static_cast<std::uint8_t>(std::popcount(full & kGenPolyB) & 1);
    }
  }
  return t;
}

constexpr Transitions kTrellis = make_transitions();

// Predecessor-oriented view of the same trellis: next-state ns is fed by
// exactly the two 7-bit registers f0 = 2*ns and f1 = 2*ns + 1, i.e. by
// predecessor states s0 = f0 & 63 and s1 = s0 + 1, both under the same
// input u = ns >> 5. s0 < s1 always, which is exactly the order the
// transition-oriented reference visits them in — so "prefer the s0
// branch on metric ties" reproduces its strict-> update rule bit for
// bit.
struct Butterfly {
  std::uint8_t s0, s1;          // the two predecessor states
  std::uint8_t sv0, sv1;        // survivor bytes (pred << 1) | input
  std::uint8_t a0, b0, a1, b1;  // expected coded bits per branch
};

constexpr std::array<Butterfly, kNumStates> make_butterflies() {
  std::array<Butterfly, kNumStates> bs{};
  for (std::uint32_t ns = 0; ns < kNumStates; ++ns) {
    const std::uint32_t f0 = ns << 1;
    const std::uint32_t f1 = f0 | 1u;
    const std::uint32_t u = ns >> 5;
    Butterfly& bf = bs[ns];
    bf.s0 = static_cast<std::uint8_t>(f0 & (kNumStates - 1));
    bf.s1 = static_cast<std::uint8_t>(f1 & (kNumStates - 1));
    bf.sv0 = static_cast<std::uint8_t>((bf.s0 << 1) | u);
    bf.sv1 = static_cast<std::uint8_t>((bf.s1 << 1) | u);
    bf.a0 = static_cast<std::uint8_t>(std::popcount(f0 & kGenPolyA) & 1);
    bf.b0 = static_cast<std::uint8_t>(std::popcount(f0 & kGenPolyB) & 1);
    bf.a1 = static_cast<std::uint8_t>(std::popcount(f1 & kGenPolyA) & 1);
    bf.b1 = static_cast<std::uint8_t>(std::popcount(f1 & kGenPolyB) & 1);
  }
  return bs;
}

constexpr std::array<Butterfly, kNumStates> kButterflies = make_butterflies();

// Large-finite stand-in for -inf: unreachable states carry this value
// instead of being skipped, which removes the per-state branch from the
// ACS loop. Physical LLR sums are tens per step, so adding a branch
// metric to the sentinel does not move it at double granularity (ulp at
// 1e300 is ~1e284), and a sentinel path can never beat a real one. Any
// end metric below kSentinelThreshold therefore means "state 0 was
// pruned", exactly like the reference's -inf test.
constexpr double kSentinel = -1e300;
constexpr double kSentinelThreshold = -1e290;

// Branch metric contribution of one coded bit: LLR > 0 favors bit 0, so a
// branch expecting bit 0 gains +llr and one expecting bit 1 gains -llr.
double bit_metric(double llr, std::uint8_t expected) {
  return expected ? -llr : llr;
}

}  // namespace

void viterbi_decode(std::span<const double> llrs, ViterbiWorkspace& ws,
                    util::BitVec& out) {
  WITAG_SPAN_CAT("phy.viterbi", "phy");
  WITAG_REQUIRE(!llrs.empty() && llrs.size() % 2 == 0);
  const std::size_t n_steps = llrs.size() / 2;
  WITAG_COUNT("phy.viterbi.calls", 1);
  WITAG_COUNT("phy.viterbi.bits", n_steps);

  if (ws.survivor_.capacity() >= n_steps * kNumStates) {
    WITAG_COUNT("phy.viterbi.workspace_reuses", 1);
  }
  ws.survivor_.resize(n_steps * kNumStates);
  std::uint8_t* survivor = ws.survivor_.data();

  // Path metrics ping-pong between two fixed-size arrays — no heap.
  std::array<double, kNumStates> metric_a;
  std::array<double, kNumStates> metric_b;
  metric_a.fill(kSentinel);
  metric_a[0] = 0.0;  // encoder starts zeroed
  double* cur = metric_a.data();
  double* nxt = metric_b.data();

  for (std::size_t step = 0; step < n_steps; ++step) {
    const double la = llrs[2 * step];
    const double lb = llrs[2 * step + 1];
    // pa[e] / pb[e] = metric contribution of a branch expecting bit e.
    const double pa[2] = {la, -la};
    const double pb[2] = {lb, -lb};
    std::uint8_t* srow = survivor + step * kNumStates;
    for (std::uint32_t ns = 0; ns < kNumStates; ++ns) {
      const Butterfly& bf = kButterflies[ns];
      // Same association as the reference: (metric + a) + b.
      const double m0 = (cur[bf.s0] + pa[bf.a0]) + pb[bf.b0];
      const double m1 = (cur[bf.s1] + pa[bf.a1]) + pb[bf.b1];
      const bool take1 = m1 > m0;  // strict: ties keep the s0 branch
      nxt[ns] = take1 ? m1 : m0;
      srow[ns] = take1 ? bf.sv1 : bf.sv0;
    }
    std::swap(cur, nxt);
  }

  // The tail drives the encoder back to state 0; fall back to the best
  // surviving state if 0 was pruned (can happen under extreme noise).
  std::uint32_t state = 0;
  if (cur[0] <= kSentinelThreshold) {
    state = static_cast<std::uint32_t>(
        std::max_element(cur, cur + kNumStates) - cur);
  }

  out.resize(n_steps);
  for (std::size_t step = n_steps; step-- > 0;) {
    const std::uint8_t sv = survivor[step * kNumStates + state];
    out[step] = sv & 1u;
    state = sv >> 1;
  }
}

util::BitVec viterbi_decode(std::span<const double> llrs) {
  thread_local ViterbiWorkspace ws;
  util::BitVec bits;
  viterbi_decode(llrs, ws, bits);
  return bits;
}

namespace detail {

util::BitVec viterbi_reference(std::span<const double> llrs) {
  WITAG_REQUIRE(!llrs.empty() && llrs.size() % 2 == 0);
  const std::size_t n_steps = llrs.size() / 2;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  std::vector<double> metric(kNumStates, kNegInf);
  std::vector<double> next_metric(kNumStates, kNegInf);
  metric[0] = 0.0;  // encoder starts zeroed

  // survivor[step][state] = (previous state << 1) | input bit.
  std::vector<std::array<std::uint8_t, kNumStates>> survivor(n_steps);

  for (std::size_t step = 0; step < n_steps; ++step) {
    std::fill(next_metric.begin(), next_metric.end(), kNegInf);
    const double la = llrs[2 * step];
    const double lb = llrs[2 * step + 1];
    for (std::uint32_t s = 0; s < kNumStates; ++s) {
      if (metric[s] == kNegInf) continue;
      for (std::uint32_t u = 0; u < 2; ++u) {
        const std::uint8_t ns = kTrellis.next[s][u];
        const double m = metric[s] + bit_metric(la, kTrellis.out_a[s][u]) +
                         bit_metric(lb, kTrellis.out_b[s][u]);
        if (m > next_metric[ns]) {
          next_metric[ns] = m;
          survivor[step][ns] = static_cast<std::uint8_t>((s << 1) | u);
        }
      }
    }
    metric.swap(next_metric);
  }

  std::uint32_t state = 0;
  if (metric[0] == kNegInf) {
    state = static_cast<std::uint32_t>(
        std::max_element(metric.begin(), metric.end()) - metric.begin());
  }

  util::BitVec bits(n_steps);
  for (std::size_t step = n_steps; step-- > 0;) {
    const std::uint8_t sv = survivor[step][state];
    bits[step] = sv & 1u;
    state = sv >> 1;
  }
  return bits;
}

}  // namespace detail

}  // namespace witag::phy
