#include "phy/viterbi.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <cstddef>

#include "obs/obs.hpp"
#include "phy/convolutional.hpp"
#include "phy/simd.hpp"
#include "phy/trellis.hpp"
#include "util/require.hpp"

namespace witag::phy {
namespace {

// Branch metric contribution of one coded bit: LLR > 0 favors bit 0, so a
// branch expecting bit 0 gains +llr and one expecting bit 1 gains -llr.
double bit_metric(double llr, std::uint8_t expected) {
  return expected ? -llr : llr;
}

}  // namespace

void viterbi_decode(std::span<const double> llrs, ViterbiWorkspace& ws,
                    util::BitVec& out) {
  WITAG_SPAN_CAT("phy.viterbi", "phy");
  WITAG_REQUIRE(!llrs.empty() && llrs.size() % 2 == 0);
  const std::size_t n_steps = llrs.size() / 2;
  WITAG_COUNT("phy.viterbi.calls", 1);
  WITAG_COUNT("phy.viterbi.bits", n_steps);

  if (ws.survivor_.capacity() >= n_steps * kNumStates) {
    WITAG_COUNT("phy.viterbi.workspace_reuses", 1);
  }
  ws.survivor_.resize(n_steps * kNumStates);
  std::uint8_t* survivor = ws.survivor_.data();

  // Path metrics ping-pong between two fixed-size arrays — no heap.
  // 32-byte aligned so the vector ACS kernels use aligned loads/stores.
  alignas(32) std::array<double, kNumStates> metric_a;
  alignas(32) std::array<double, kNumStates> metric_b;
  metric_a.fill(detail::kSentinel);
  metric_a[0] = 0.0;  // encoder starts zeroed
  double* cur = metric_a.data();
  double* nxt = metric_b.data();

  // Tier resolved once per decode, not once per trellis step; every
  // tier's kernel is bit-identical (tests/test_simd.cpp fuzzes ties).
  const simd::AcsStepFn acs_step = simd::acs_step_for(simd::active_tier());

  for (std::size_t step = 0; step < n_steps; ++step) {
    acs_step(cur, nxt, survivor + step * kNumStates, llrs[2 * step],
             llrs[2 * step + 1]);
    std::swap(cur, nxt);
  }

  // The tail drives the encoder back to state 0; fall back to the best
  // surviving state if 0 was pruned (can happen under extreme noise).
  std::uint32_t state = 0;
  if (cur[0] <= detail::kSentinelThreshold) {
    state = static_cast<std::uint32_t>(
        std::max_element(cur, cur + kNumStates) - cur);
  }

  out.resize(n_steps);
  for (std::size_t step = n_steps; step-- > 0;) {
    const std::uint8_t sv = survivor[step * kNumStates + state];
    out[step] = sv & 1u;
    state = sv >> 1;
  }
}

util::BitVec viterbi_decode(std::span<const double> llrs) {
  thread_local ViterbiWorkspace ws;
  util::BitVec bits;
  viterbi_decode(llrs, ws, bits);
  return bits;
}

namespace detail {

util::BitVec viterbi_reference(std::span<const double> llrs) {
  WITAG_REQUIRE(!llrs.empty() && llrs.size() % 2 == 0);
  const std::size_t n_steps = llrs.size() / 2;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  std::vector<double> metric(kNumStates, kNegInf);
  std::vector<double> next_metric(kNumStates, kNegInf);
  metric[0] = 0.0;  // encoder starts zeroed

  // survivor[step][state] = (previous state << 1) | input bit.
  std::vector<std::array<std::uint8_t, kNumStates>> survivor(n_steps);

  for (std::size_t step = 0; step < n_steps; ++step) {
    std::fill(next_metric.begin(), next_metric.end(), kNegInf);
    const double la = llrs[2 * step];
    const double lb = llrs[2 * step + 1];
    for (std::uint32_t s = 0; s < kNumStates; ++s) {
      if (metric[s] == kNegInf) continue;
      for (std::uint32_t u = 0; u < 2; ++u) {
        const std::uint8_t ns = kTrellis.next[s][u];
        const double m = metric[s] + bit_metric(la, kTrellis.out_a[s][u]) +
                         bit_metric(lb, kTrellis.out_b[s][u]);
        if (m > next_metric[ns]) {
          next_metric[ns] = m;
          survivor[step][ns] = static_cast<std::uint8_t>((s << 1) | u);
        }
      }
    }
    metric.swap(next_metric);
  }

  std::uint32_t state = 0;
  if (metric[0] == kNegInf) {
    state = static_cast<std::uint32_t>(
        std::max_element(metric.begin(), metric.end()) - metric.begin());
  }

  util::BitVec bits(n_steps);
  for (std::size_t step = n_steps; step-- > 0;) {
    const std::uint8_t sv = survivor[step][state];
    bits[step] = sv & 1u;
    state = sv >> 1;
  }
  return bits;
}

}  // namespace detail

}  // namespace witag::phy
