// SSE2 kernels (two doubles per vector): Viterbi add-compare-select and
// the separable soft demap. SSE2 is part of the x86-64 baseline, so
// these compile with no extra flags; on non-x86 targets the file
// compiles to the `sse2_available() == false` stubs and dispatch stays
// scalar. Bit-exactness: only packed add/sub/mul/min/xor/compare and
// bitwise selection are used — the same IEEE-754 operations as the
// scalar kernels, two lanes at a time (see simd.hpp).

#include "phy/simd.hpp"

#include <cstdint>
#include <limits>

#include "phy/trellis.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#include <cstddef>
#endif

namespace witag::phy::simd::kernels {

#if defined(__SSE2__)

bool sse2_available() { return true; }

void acs_step_sse2(const double* cur, double* nxt, std::uint8_t* srow,
                   double la, double lb) {
  const __m128d la_v = _mm_set1_pd(la);
  const __m128d lb_v = _mm_set1_pd(lb);
  const detail::AcsSigns& sg = detail::kAcsSigns;
  // Next-states ns and ns + 32 share predecessors cur[2*ns], cur[2*ns+1]
  // (only the expected branch bits differ), so one gather of the
  // even/odd metric pair feeds both halves of the state vector.
  for (std::uint32_t j = 0; j < kNumStates / 2; j += 2) {
    const __m128d v0 = _mm_load_pd(cur + 2 * j);      // cur[2j], cur[2j+1]
    const __m128d v1 = _mm_load_pd(cur + 2 * j + 2);  // cur[2j+2], cur[2j+3]
    const __m128d evens = _mm_unpacklo_pd(v0, v1);    // cur[s0] for ns=j,j+1
    const __m128d odds = _mm_unpackhi_pd(v0, v1);     // cur[s1]
    for (std::uint32_t half = 0; half < 2; ++half) {
      const std::uint32_t ns = j + half * (kNumStates / 2);
      // Branch metrics via sign-bit XOR: ±llr exactly as the scalar
      // pa[e]/pb[e] tables, with the same (cur + pa) + pb association.
      const __m128d pa0 = _mm_xor_pd(la_v, _mm_load_pd(&sg.a0[ns]));
      const __m128d pb0 = _mm_xor_pd(lb_v, _mm_load_pd(&sg.b0[ns]));
      const __m128d pa1 = _mm_xor_pd(la_v, _mm_load_pd(&sg.a1[ns]));
      const __m128d pb1 = _mm_xor_pd(lb_v, _mm_load_pd(&sg.b1[ns]));
      const __m128d m0 = _mm_add_pd(_mm_add_pd(evens, pa0), pb0);
      const __m128d m1 = _mm_add_pd(_mm_add_pd(odds, pa1), pb1);
      // Strict m1 > m0: ties keep the s0 branch, like the scalar code.
      const __m128d take1 = _mm_cmpgt_pd(m1, m0);
      const __m128d best = _mm_or_pd(_mm_and_pd(take1, m1),
                                     _mm_andnot_pd(take1, m0));
      _mm_store_pd(nxt + ns, best);
      const int mask = _mm_movemask_pd(take1);
      srow[ns] = static_cast<std::uint8_t>(
          detail::kSurvivor0[ns] + 2 * (mask & 1));
      srow[ns + 1] = static_cast<std::uint8_t>(
          detail::kSurvivor0[ns + 1] + ((mask & 2) ? 2 : 0));
    }
  }
}

void demap_block_sse2(const double* re, const double* im, const double* nv,
                      std::size_t count, const DemapAxes& ax, double* out) {
  const unsigned ni = 1u << ax.i_bits;
  const unsigned nq = 1u << ax.q_bits;
  const __m128d inf = _mm_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t p = 0;
  for (; p + 2 <= count; p += 2) {
    // SoA spans land at arbitrary lane offsets inside vector-owned
    // storage, so these loads cannot assume 16-byte alignment.
    const __m128d yr =
        _mm_loadu_pd(re + p);  // witag-lint: allow(simd-unaligned)
    const __m128d yi =
        _mm_loadu_pd(im + p);  // witag-lint: allow(simd-unaligned)
    const __m128d noise =
        _mm_loadu_pd(nv + p);  // witag-lint: allow(simd-unaligned)
    __m128d min_i = inf, min_q = inf;
    __m128d min0_i[4], min1_i[4], min0_q[4], min1_q[4];
    for (unsigned b = 0; b < ax.i_bits; ++b) min0_i[b] = min1_i[b] = inf;
    for (unsigned b = 0; b < ax.q_bits; ++b) min0_q[b] = min1_q[b] = inf;
    for (unsigned j = 0; j < ni; ++j) {
      const __m128d d = _mm_sub_pd(yr, _mm_set1_pd(ax.i_levels[j]));
      const __m128d sq = _mm_mul_pd(d, d);
      min_i = _mm_min_pd(min_i, sq);
      for (unsigned b = 0; b < ax.i_bits; ++b) {
        if ((j >> b) & 1u) {
          min1_i[b] = _mm_min_pd(min1_i[b], sq);
        } else {
          min0_i[b] = _mm_min_pd(min0_i[b], sq);
        }
      }
    }
    for (unsigned q = 0; q < nq; ++q) {
      const __m128d d = _mm_sub_pd(yi, _mm_set1_pd(ax.q_levels[q]));
      const __m128d sq = _mm_mul_pd(d, d);
      min_q = _mm_min_pd(min_q, sq);
      for (unsigned b = 0; b < ax.q_bits; ++b) {
        if ((q >> b) & 1u) {
          min1_q[b] = _mm_min_pd(min1_q[b], sq);
        } else {
          min0_q[b] = _mm_min_pd(min0_q[b], sq);
        }
      }
    }
    alignas(16) double lanes[2];
    for (unsigned b = 0; b < ax.i_bits; ++b) {
      const __m128d m1 = _mm_add_pd(min1_i[b], min_q);
      const __m128d m0 = _mm_add_pd(min0_i[b], min_q);
      const __m128d llr = _mm_div_pd(_mm_sub_pd(m1, m0), noise);
      _mm_store_pd(lanes, llr);
      out[p * ax.n_bits + b] = lanes[0];
      out[(p + 1) * ax.n_bits + b] = lanes[1];
    }
    for (unsigned b = 0; b < ax.q_bits; ++b) {
      const __m128d m1 = _mm_add_pd(min_i, min1_q[b]);
      const __m128d m0 = _mm_add_pd(min_i, min0_q[b]);
      const __m128d llr = _mm_div_pd(_mm_sub_pd(m1, m0), noise);
      _mm_store_pd(lanes, llr);
      out[p * ax.n_bits + ax.i_bits + b] = lanes[0];
      out[(p + 1) * ax.n_bits + ax.i_bits + b] = lanes[1];
    }
  }
  if (p < count) {
    // Odd tail: one point through the scalar kernel (same per-point
    // math, so chunk boundaries never change results).
    demap_block_for(Tier::kScalar)(re + p, im + p, nv + p, count - p, ax,
                                   out + p * ax.n_bits);
  }
}

void equalize_block_sse2(const double* hr, const double* hi, const double* rr,
                         const double* ri, double cr, double ci,
                         double noise_floor, std::size_t count, double* zr,
                         double* zi, double* nv) {
  const __m128d cr_v = _mm_set1_pd(cr);
  const __m128d ci_v = _mm_set1_pd(ci);
  const __m128d nf_v = _mm_set1_pd(noise_floor);
  const __m128d min_gain = _mm_set1_pd(kEqualizeMinGain);
  const __m128d dead_nv = _mm_set1_pd(kEqualizeDeadNoise);
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    // The gather staging buffers are 32-byte aligned arrays, but this
    // kernel is also the AVX2 path's documented fallback for arbitrary
    // caller storage, so the loads stay unaligned.
    const __m128d h_r =
        _mm_loadu_pd(hr + i);  // witag-lint: allow(simd-unaligned)
    const __m128d h_i =
        _mm_loadu_pd(hi + i);  // witag-lint: allow(simd-unaligned)
    const __m128d r_r =
        _mm_loadu_pd(rr + i);  // witag-lint: allow(simd-unaligned)
    const __m128d r_i =
        _mm_loadu_pd(ri + i);  // witag-lint: allow(simd-unaligned)
    // Same association as the scalar kernel: a*b + c*d, left to right.
    const __m128d g =
        _mm_add_pd(_mm_mul_pd(h_r, h_r), _mm_mul_pd(h_i, h_i));
    const __m128d yr =
        _mm_add_pd(_mm_mul_pd(r_r, cr_v), _mm_mul_pd(r_i, ci_v));
    const __m128d yi =
        _mm_sub_pd(_mm_mul_pd(r_i, cr_v), _mm_mul_pd(r_r, ci_v));
    const __m128d qr = _mm_div_pd(
        _mm_add_pd(_mm_mul_pd(yr, h_r), _mm_mul_pd(yi, h_i)), g);
    const __m128d qi = _mm_div_pd(
        _mm_sub_pd(_mm_mul_pd(yi, h_r), _mm_mul_pd(yr, h_i)), g);
    const __m128d qn = _mm_div_pd(nf_v, g);
    // Dead-bin select: bitwise blend, exact like the scalar ternary.
    const __m128d dead = _mm_cmplt_pd(g, min_gain);
    _mm_storeu_pd(zr + i,  // witag-lint: allow(simd-unaligned)
                  _mm_andnot_pd(dead, qr));
    _mm_storeu_pd(zi + i,  // witag-lint: allow(simd-unaligned)
                  _mm_andnot_pd(dead, qi));
    _mm_storeu_pd(nv + i,  // witag-lint: allow(simd-unaligned)
                  _mm_or_pd(_mm_and_pd(dead, dead_nv),
                            _mm_andnot_pd(dead, qn)));
  }
  if (i < count) {
    equalize_for(Tier::kScalar)(hr + i, hi + i, rr + i, ri + i, cr, ci,
                                noise_floor, count - i, zr + i, zi + i,
                                nv + i);
  }
}

#else  // !defined(__SSE2__)

bool sse2_available() { return false; }

void acs_step_sse2(const double* cur, double* nxt, std::uint8_t* srow,
                   double la, double lb) {
  acs_step_for(Tier::kScalar)(cur, nxt, srow, la, lb);
}

void demap_block_sse2(const double* re, const double* im, const double* nv,
                      std::size_t count, const DemapAxes& ax, double* out) {
  demap_block_for(Tier::kScalar)(re, im, nv, count, ax, out);
}

void equalize_block_sse2(const double* hr, const double* hi, const double* rr,
                         const double* ri, double cr, double ci,
                         double noise_floor, std::size_t count, double* zr,
                         double* zi, double* nv) {
  equalize_for(Tier::kScalar)(hr, hi, rr, ri, cr, ci, noise_floor, count, zr,
                              zi, nv);
}

#endif  // defined(__SSE2__)

}  // namespace witag::phy::simd::kernels
