// 802.11n HT MCS table (20 MHz, single spatial stream, 800 ns GI) plus
// the derived per-symbol bit counts the BCC encoding chain needs.
#pragma once

#include <cstddef>
#include <string_view>

namespace witag::phy {

/// Modulation orders used by 802.11a/g/n.
enum class Modulation { kBpsk, kQpsk, kQam16, kQam64 };

/// Convolutional code rates used by 802.11 BCC.
enum class CodeRate { kHalf, kTwoThirds, kThreeQuarters, kFiveSixths };

/// Bits per subcarrier for a modulation.
unsigned bits_per_symbol(Modulation mod);

/// Code rate as numerator/denominator.
struct RateFraction {
  unsigned num;
  unsigned den;
};
RateFraction rate_fraction(CodeRate rate);

/// One row of the HT MCS table.
struct McsParams {
  unsigned index;        ///< MCS index (0-7 single stream).
  Modulation modulation;
  CodeRate rate;
  unsigned n_bpsc;       ///< Coded bits per subcarrier.
  unsigned n_cbps;       ///< Coded bits per OFDM symbol (52 data carriers).
  unsigned n_dbps;       ///< Data bits per OFDM symbol.
  double data_rate_mbps; ///< PHY data rate at 4 us symbols.
  std::string_view name; ///< e.g. "MCS4 (16-QAM 3/4)".
};

/// Number of single-stream HT MCS entries (0..7).
inline constexpr unsigned kNumMcs = 8;

/// Number of data subcarriers in an HT 20 MHz symbol.
inline constexpr unsigned kDataSubcarriers = 52;

/// OFDM symbol duration with 800 ns guard interval [us].
inline constexpr double kSymbolDurationUs = 4.0;

/// Looks up MCS parameters. Requires index < kNumMcs.
const McsParams& mcs(unsigned index);

/// Number of OFDM symbols needed to carry `psdu_bytes` of payload:
/// ceil((16 service + 8*bytes + 6 tail) / n_dbps).
std::size_t data_symbols_for(std::size_t psdu_bytes, const McsParams& m);

}  // namespace witag::phy
