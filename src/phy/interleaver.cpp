#include "phy/interleaver.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace witag::phy {
namespace {

constexpr unsigned kNcol = 13;

unsigned n_cbps_for(Modulation mod) {
  return kDataSubcarriers * bits_per_symbol(mod);
}

}  // namespace

std::vector<std::size_t> interleave_map(unsigned n_cbps, unsigned n_bpsc) {
  WITAG_REQUIRE(n_cbps == kDataSubcarriers * n_bpsc);
  const unsigned n_row = n_cbps / kNcol;
  const unsigned s = std::max(n_bpsc / 2, 1u);
  std::vector<std::size_t> map(n_cbps);
  for (unsigned k = 0; k < n_cbps; ++k) {
    // First permutation: write row-wise, read column-wise.
    const unsigned i = n_row * (k % kNcol) + k / kNcol;
    // Second permutation: rotate within groups of s bits so adjacent coded
    // bits land on alternating halves of the constellation point.
    const unsigned j = s * (i / s) +
                       (i + n_cbps - (kNcol * i) / n_cbps) % s;
    map[k] = j;
  }
  return map;
}

util::BitVec interleave(std::span<const std::uint8_t> bits, Modulation mod) {
  const unsigned n_cbps = n_cbps_for(mod);
  WITAG_REQUIRE(bits.size() == n_cbps);
  const auto map = interleave_map(n_cbps, bits_per_symbol(mod));
  util::BitVec out(n_cbps);
  for (unsigned k = 0; k < n_cbps; ++k) out[map[k]] = bits[k];
  return out;
}

util::BitVec deinterleave(std::span<const std::uint8_t> bits, Modulation mod) {
  const unsigned n_cbps = n_cbps_for(mod);
  WITAG_REQUIRE(bits.size() == n_cbps);
  const auto map = interleave_map(n_cbps, bits_per_symbol(mod));
  util::BitVec out(n_cbps);
  for (unsigned k = 0; k < n_cbps; ++k) out[k] = bits[map[k]];
  return out;
}

std::vector<double> deinterleave_llrs(std::span<const double> llrs,
                                      Modulation mod) {
  const unsigned n_cbps = n_cbps_for(mod);
  WITAG_REQUIRE(llrs.size() == n_cbps);
  const auto map = interleave_map(n_cbps, bits_per_symbol(mod));
  std::vector<double> out(n_cbps);
  for (unsigned k = 0; k < n_cbps; ++k) out[k] = llrs[map[k]];
  return out;
}

}  // namespace witag::phy
