#include "phy/interleaver.hpp"

#include <algorithm>
#include <cstdint>
#include <array>

#include "phy/simd.hpp"
#include "util/require.hpp"

namespace witag::phy {
namespace {

constexpr unsigned kNcol = 13;

unsigned n_cbps_for(Modulation mod) {
  return kDataSubcarriers * bits_per_symbol(mod);
}

// The permutation depends only on the modulation, and the decode path
// applies it once per OFDM symbol — cache the four maps instead of
// rebuilding (and re-allocating) them every call.
const std::vector<std::size_t>& cached_map(Modulation mod) {
  static const std::array<std::vector<std::size_t>, 4> kMaps = [] {
    std::array<std::vector<std::size_t>, 4> maps;
    for (const Modulation m : {Modulation::kBpsk, Modulation::kQpsk,
                               Modulation::kQam16, Modulation::kQam64}) {
      maps[static_cast<std::size_t>(m)] =
          interleave_map(n_cbps_for(m), bits_per_symbol(m));
    }
    return maps;
  }();
  return kMaps[static_cast<std::size_t>(mod)];
}

// Same permutation as int32 indices: the AVX2 deinterleave kernel
// gathers through vgatherdpd, which takes 32-bit indices. n_cbps is at
// most 312 (64-QAM), so the narrowing is always exact.
const std::vector<std::int32_t>& cached_map_i32(Modulation mod) {
  static const std::array<std::vector<std::int32_t>, 4> kMaps = [] {
    std::array<std::vector<std::int32_t>, 4> maps;
    for (const Modulation m : {Modulation::kBpsk, Modulation::kQpsk,
                               Modulation::kQam16, Modulation::kQam64}) {
      const auto& wide = cached_map(m);
      auto& narrow = maps[static_cast<std::size_t>(m)];
      narrow.reserve(wide.size());
      for (const std::size_t idx : wide) {
        narrow.push_back(static_cast<std::int32_t>(idx));
      }
    }
    return maps;
  }();
  return kMaps[static_cast<std::size_t>(mod)];
}

}  // namespace

std::vector<std::size_t> interleave_map(unsigned n_cbps, unsigned n_bpsc) {
  WITAG_REQUIRE(n_cbps == kDataSubcarriers * n_bpsc);
  const unsigned n_row = n_cbps / kNcol;
  const unsigned s = std::max(n_bpsc / 2, 1u);
  std::vector<std::size_t> map(n_cbps);
  for (unsigned k = 0; k < n_cbps; ++k) {
    // First permutation: write row-wise, read column-wise.
    const unsigned i = n_row * (k % kNcol) + k / kNcol;
    // Second permutation: rotate within groups of s bits so adjacent coded
    // bits land on alternating halves of the constellation point.
    const unsigned j = s * (i / s) +
                       (i + n_cbps - (kNcol * i) / n_cbps) % s;
    map[k] = j;
  }
  return map;
}

util::BitVec interleave(std::span<const std::uint8_t> bits, Modulation mod) {
  const unsigned n_cbps = n_cbps_for(mod);
  WITAG_REQUIRE(bits.size() == n_cbps);
  const auto& map = cached_map(mod);
  util::BitVec out(n_cbps);
  for (unsigned k = 0; k < n_cbps; ++k) out[map[k]] = bits[k];
  return out;
}

util::BitVec deinterleave(std::span<const std::uint8_t> bits, Modulation mod) {
  const unsigned n_cbps = n_cbps_for(mod);
  WITAG_REQUIRE(bits.size() == n_cbps);
  const auto& map = cached_map(mod);
  util::BitVec out(n_cbps);
  for (unsigned k = 0; k < n_cbps; ++k) out[k] = bits[map[k]];
  return out;
}

std::vector<double> deinterleave_llrs(std::span<const double> llrs,
                                      Modulation mod) {
  std::vector<double> out;
  deinterleave_llrs_into(llrs, mod, out);
  return out;
}

void deinterleave_llrs_into(std::span<const double> llrs, Modulation mod,
                            std::vector<double>& out) {
  const unsigned n_cbps = n_cbps_for(mod);
  WITAG_REQUIRE(llrs.size() == n_cbps);
  const auto& map = cached_map_i32(mod);
  out.resize(n_cbps);
  // Pure permutation, so the kernel is trivially bit-identical at every
  // tier; AVX2 replaces 312 dependent loads with 78 gathers per symbol.
  simd::deinterleave_for(simd::active_tier())(llrs.data(), map.data(), n_cbps,
                                              out.data());
}

}  // namespace witag::phy
