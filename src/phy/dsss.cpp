#include "phy/dsss.hpp"

#include <array>
#include <cmath>
#include <cstddef>

#include "util/require.hpp"
#include "util/units.hpp"

namespace witag::phy::dsss {
namespace {

using util::Cx;

constexpr std::array<int, kChipsPerBit> kBarker{1, -1, 1,  1, -1, 1,
                                                1, 1,  -1, -1, -1};

}  // namespace

std::span<const int> barker11() { return kBarker; }

util::CxVec modulate(std::span<const std::uint8_t> bits, DsssRate rate) {
  const bool qpsk = rate == DsssRate::kDqpsk2Mbps;
  WITAG_REQUIRE(!qpsk || bits.size() % 2 == 0);
  const std::size_t n_codewords = qpsk ? bits.size() / 2 : bits.size();

  util::CxVec chips;
  chips.reserve((n_codewords + 1) * kChipsPerBit);
  double phase = 0.0;
  // Reference codeword at phase 0 anchors the differential detector.
  for (const int ch : kBarker) {
    chips.push_back(Cx{static_cast<double>(ch), 0.0});
  }
  for (std::size_t w = 0; w < n_codewords; ++w) {
    // Differential encoding: bit 1 adds a 180 degree shift (DBPSK);
    // DQPSK maps dibits to {0, 90, 180, 270} degree increments.
    if (qpsk) {
      const unsigned dibit = static_cast<unsigned>((bits[2 * w] & 1u) |
                                                   ((bits[2 * w + 1] & 1u) << 1));
      static constexpr std::array<double, 4> kInc{0.0, 0.5, 1.5, 1.0};
      phase += kInc[dibit] * util::kPi;
    } else {
      if (bits[w] & 1u) phase += util::kPi;
    }
    const Cx rot{std::cos(phase), std::sin(phase)};
    for (const int c : kBarker) {
      chips.push_back(rot * static_cast<double>(c));
    }
  }
  return chips;
}

std::size_t codeword_count(std::span<const Cx> chips) {
  return chips.size() / kChipsPerBit;
}

Cx correlate_codeword(std::span<const Cx> chips, std::size_t codeword_index) {
  WITAG_REQUIRE((codeword_index + 1) * kChipsPerBit <= chips.size());
  Cx acc{};
  for (unsigned c = 0; c < kChipsPerBit; ++c) {
    acc += chips[codeword_index * kChipsPerBit + c] *
           static_cast<double>(kBarker[c]);
  }
  return acc / static_cast<double>(kChipsPerBit);
}

util::BitVec demodulate(std::span<const Cx> chips, DsssRate rate) {
  WITAG_REQUIRE(chips.size() % kChipsPerBit == 0);
  const bool qpsk = rate == DsssRate::kDqpsk2Mbps;
  const std::size_t n = codeword_count(chips);
  WITAG_REQUIRE(n >= 1);

  util::BitVec bits;
  bits.reserve(qpsk ? (n - 1) * 2 : n - 1);
  Cx prev = correlate_codeword(chips, 0);  // reference codeword
  for (std::size_t w = 1; w < n; ++w) {
    const Cx cur = correlate_codeword(chips, w);
    const Cx diff = cur * std::conj(prev);
    prev = cur;
    const double angle = std::arg(diff);
    if (qpsk) {
      // Quantize to the nearest of {0, 90, 180, 270} degrees.
      const double quarter = angle / (0.5 * util::kPi);
      const int q = (static_cast<int>(std::lround(quarter)) % 4 + 4) % 4;
      // Inverse of kInc: increment q*90deg -> dibit (Gray-ish mapping).
      static constexpr std::array<std::array<std::uint8_t, 2>, 4> kDibit{{
          {0, 0}, {1, 0}, {1, 1}, {0, 1}}};
      bits.push_back(kDibit[static_cast<std::size_t>(q)][0]);
      bits.push_back(kDibit[static_cast<std::size_t>(q)][1]);
    } else {
      bits.push_back(std::abs(angle) > 0.5 * util::kPi ? 1 : 0);
    }
  }
  return bits;
}

}  // namespace witag::phy::dsss
