// OFDM symbol layout for the HT 20 MHz PHY: 64-point FFT grid with 56
// used subcarriers (52 data + 4 pilots at +/-7 and +/-21), 16-sample
// cyclic prefix at 20 Msps (4 us symbols). Provides the mapping between
// constellation points and frequency-domain symbols, and between
// frequency-domain symbols and time-domain sample blocks.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>
#include <cstddef>

#include "util/complexvec.hpp"

namespace witag::phy {

inline constexpr unsigned kFftSize = 64;
inline constexpr unsigned kCpLen = 16;
inline constexpr unsigned kSamplesPerSymbol = kFftSize + kCpLen;
inline constexpr unsigned kNumPilots = 4;
inline constexpr double kSampleRateHz = 20e6;

/// One OFDM symbol in the frequency domain, indexed by FFT bin
/// (bin 0 = DC, bins 1..31 = positive subcarriers, 33..63 = negative).
using FreqSymbol = std::array<util::Cx, kFftSize>;

/// FFT bin for logical subcarrier k in [-32, 31].
unsigned bin_index(int subcarrier);

/// The 52 data subcarrier indices in logical order (-28..28, skipping
/// DC and the pilots).
std::span<const int> data_subcarriers();

/// Pilot subcarriers {-21, -7, 7, 21}.
std::span<const int> pilot_subcarriers();

/// Expected pilot values for data symbol `symbol_index` (0-based within
/// the data field): base pattern {1, 1, 1, -1} times the polarity
/// sequence p_{symbol_index+1} (p_0 belongs to the SIG field).
std::array<util::Cx, kNumPilots> pilot_values(std::size_t symbol_index);

/// Builds a frequency-domain data symbol from 52 constellation points
/// plus pilots; unused bins are zero. Requires points.size() == 52.
FreqSymbol assemble_data_symbol(std::span<const util::Cx> points,
                                std::size_t symbol_index);

/// Extracts the 52 data-subcarrier values from a received symbol.
util::CxVec extract_data(const FreqSymbol& symbol);

/// Extracts the 4 pilot values from a received symbol.
std::array<util::Cx, kNumPilots> extract_pilots(const FreqSymbol& symbol);

/// Frequency-domain symbol -> 80 time-domain samples (unitary IFFT with
/// cyclic prefix prepended).
util::CxVec to_time(const FreqSymbol& symbol);

/// 80 time-domain samples -> frequency-domain symbol (drop CP, FFT).
/// Requires exactly kSamplesPerSymbol samples.
FreqSymbol from_time(std::span<const util::Cx> samples);

/// Allocation-reusing variants for the hot sample paths: `work` is a
/// caller-owned FFT buffer (grown once, reused) threaded through
/// phy::DecodeScratch. `out` must hold kSamplesPerSymbol samples for
/// to_time_into.
void to_time_into(const FreqSymbol& symbol, util::CxVec& work,
                  std::span<util::Cx> out);
void from_time_into(std::span<const util::Cx> samples, util::CxVec& work,
                    FreqSymbol& out);

}  // namespace witag::phy
