// HT signal field (SIG): carries the MCS and PSDU length at the most
// robust rate (BPSK, rate 1/2) with a CRC-8 so the receiver can reject a
// mangled header. Encoded into two OFDM symbols like 802.11n's
// HT-SIG1/HT-SIG2 (field layout simplified; see DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>
#include <cstddef>

#include "util/bits.hpp"

namespace witag::phy {

/// Decoded signal-field contents.
struct HtSig {
  unsigned mcs_index = 0;    ///< 7-bit MCS field.
  std::size_t length = 0;    ///< PSDU length in bytes (16-bit field).

  bool operator==(const HtSig&) const = default;
};

/// Uncoded SIG payload bits per PPDU (fills two BPSK r=1/2 symbols).
inline constexpr std::size_t kSigBits = 52;

/// Number of SIG OFDM symbols.
inline constexpr std::size_t kSigSymbols = 2;

/// Serializes the SIG to its 52 uncoded bits (fields + CRC-8 + tail +
/// zero pad). Requires mcs_index < 128 and length < 65536.
util::BitVec encode_sig(const HtSig& sig);

/// Parses 52 decoded bits back to a SIG; nullopt when the CRC fails.
std::optional<HtSig> decode_sig(std::span<const std::uint8_t> bits);

}  // namespace witag::phy
