// Channel estimation and equalization.
//
// The receiver forms one least-squares channel estimate from the PPDU's
// LTF symbols and equalizes every subsequent data symbol with it. This is
// the 802.11 behaviour WiTAG exploits: if the channel changes mid-PPDU
// (because the tag toggles its reflector), the stale estimate corrupts
// the affected subframes. Pilot-based common-phase-error correction is
// implemented too — it removes a shared rotation but cannot repair the
// per-subcarrier error the tag induces.
#pragma once

#include <span>
#include <vector>
#include <cstddef>

#include "phy/ofdm.hpp"
#include "util/complexvec.hpp"

namespace witag::phy {

/// A per-subcarrier channel estimate plus the estimated noise level.
struct ChannelEstimate {
  FreqSymbol h{};          ///< Per-bin estimate; zero in unused bins.
  double noise_var = 0.0;  ///< Complex noise variance per subcarrier.
  double mean_gain = 0.0;  ///< Mean |h|^2 over used subcarriers.
};

/// Least-squares estimate from received LTF symbols (averaged). The noise
/// variance is estimated from the difference between LTF repetitions when
/// two or more are available. Requires at least one symbol.
ChannelEstimate estimate_channel(std::span<const FreqSymbol> ltf_rx);

/// Result of equalizing one data symbol.
struct EqualizedSymbol {
  util::CxVec points;              ///< 52 equalized data points.
  std::vector<double> noise_vars;  ///< Post-equalization noise per point.
};

/// Equalizes a received data symbol: divides by the channel estimate,
/// optionally removes common phase error using the pilots, and reports
/// the per-subcarrier post-equalization noise variance (noise_var/|h|^2)
/// the soft demapper needs.
EqualizedSymbol equalize(const FreqSymbol& rx, const ChannelEstimate& est,
                         std::size_t symbol_index, bool cpe_correction = true);

/// Allocation-reusing variant: writes into `out` (vectors resized;
/// capacity reused). The hot decode path threads one EqualizedSymbol
/// through phy::DecodeScratch so per-symbol buffers persist.
///
/// The per-subcarrier divide runs through the phy::simd equalize kernel
/// (bit-identical at every dispatch tier): points are computed as
/// y * conj(h) / |h|^2 in separable real arithmetic instead of the
/// reference's std::complex division (libgcc's scaled Smith algorithm).
/// The two agree to ~1 ULP on finite channels — see
/// detail::equalize_reference and the parity test in test_simd.cpp.
void equalize_into(const FreqSymbol& rx, const ChannelEstimate& est,
                   std::size_t symbol_index, bool cpe_correction,
                   EqualizedSymbol& out);

namespace detail {

/// The original equalizer loop (std::complex operator/ per subcarrier),
/// kept as the numerical reference the kernel formulation is fuzzed
/// against. Not used by the decode path.
EqualizedSymbol equalize_reference(const FreqSymbol& rx,
                                   const ChannelEstimate& est,
                                   std::size_t symbol_index,
                                   bool cpe_correction);

}  // namespace detail

}  // namespace witag::phy
