// Minimal 802.11b DSSS PHY: DBPSK at 1 Mbps (and DQPSK at 2 Mbps) with
// Barker-11 spreading at 11 Mchip/s. This is the substrate the HitchHike
// baseline rides on — HitchHike tags flip the phase of whole codewords
// (one spread bit) to embed their data, which is easy to express at chip
// level here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>
#include <cstddef>

#include "util/bits.hpp"
#include "util/complexvec.hpp"

namespace witag::phy::dsss {

/// The 11-chip Barker sequence (+1/-1).
std::span<const int> barker11();

inline constexpr unsigned kChipsPerBit = 11;
inline constexpr double kChipRateHz = 11e6;

/// DSSS modulation rate.
enum class DsssRate { kDbpsk1Mbps, kDqpsk2Mbps };

/// Spreads `bits` to baseband chips. A leading reference codeword (the
/// role the 802.11b preamble's last symbol plays) anchors the
/// differential phase; each bit (DBPSK) or dibit (DQPSK) then becomes
/// one 11-chip Barker codeword rotated by the accumulated differential
/// phase. DQPSK requires an even bit count.
util::CxVec modulate(std::span<const std::uint8_t> bits, DsssRate rate);

/// Despreads chips back to bits by correlating each codeword against the
/// Barker sequence and detecting the differential phase against the
/// leading reference codeword. Requires a whole number of codewords
/// (at least the reference).
util::BitVec demodulate(std::span<const util::Cx> chips, DsssRate rate);

/// Number of codewords (spread symbols) for a chip vector.
std::size_t codeword_count(std::span<const util::Cx> chips);

/// Correlates one codeword (11 chips starting at `offset`) against the
/// Barker sequence; used by tag models that operate per codeword.
util::Cx correlate_codeword(std::span<const util::Cx> chips,
                            std::size_t codeword_index);

}  // namespace witag::phy::dsss
