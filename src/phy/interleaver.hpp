// 802.11n BCC interleaver for 20 MHz single-stream transmission
// (Ncol = 13, Nrow = 4 * Nbpsc over the 52 data subcarriers). The two
// standard permutations spread adjacent coded bits across subcarriers and
// across constellation bit positions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>
#include <cstdint>

#include "phy/mcs.hpp"
#include "util/bits.hpp"

namespace witag::phy {

/// Permutation table: entry k is the output position of input bit k for
/// one OFDM symbol of `n_cbps` coded bits at `n_bpsc` bits/subcarrier.
std::vector<std::size_t> interleave_map(unsigned n_cbps, unsigned n_bpsc);

/// Interleaves one symbol's worth of coded bits.
/// Requires bits.size() == n_cbps for the modulation.
util::BitVec interleave(std::span<const std::uint8_t> bits, Modulation mod);

/// Inverse of `interleave` (on bits).
util::BitVec deinterleave(std::span<const std::uint8_t> bits, Modulation mod);

/// Deinterleaves soft values (LLRs) for one symbol.
std::vector<double> deinterleave_llrs(std::span<const double> llrs,
                                      Modulation mod);

/// Allocation-reusing variant for the hot decode path: writes into `out`
/// (resized; capacity reused) using a cached permutation map.
void deinterleave_llrs_into(std::span<const double> llrs, Modulation mod,
                            std::vector<double>& out);

}  // namespace witag::phy
