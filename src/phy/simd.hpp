// Runtime SIMD capability tiers and the dispatch surface for the PHY hot
// kernels (Viterbi add-compare-select, soft demap, radix-4 FFT passes).
//
// Every kernel here is bit-identical to its scalar counterpart by
// construction: the build carries no -march/-ffast-math, so scalar code
// never contracts into FMA, and the vector kernels use only packed
// mul/add/sub/xor/min/compare — the same IEEE-754 operations on the same
// operands in the same association, just several lanes at a time.
// Negation is a sign-bit XOR (exact), selection is a bitwise blend
// (exact), and reductions only reorder operations across independent
// outputs, never within one. tests/test_simd.cpp fuzzes every tier
// against the detail::*_reference implementations.
//
// Dispatch is resolved once per call site from `active_tier()`:
// hardware detection (AVX2 via cpuid, SSE2 implied by x86-64) clamped by
// what the build supports, overridable with the WITAG_SIMD environment
// variable ("off"/"scalar", "sse2", "avx2", "auto") — CI's simd-dispatch
// job forces the scalar fallback and byte-compares bench stdout.
//
// Raw intrinsics live only in src/phy/simd_sse2.cpp / simd_avx2.cpp;
// tools/witag_lint enforces this (rule `simd-intrinsic`).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/complexvec.hpp"

namespace witag::phy::simd {

/// Capability tiers, ordered: a higher tier implies the lower ones.
enum class Tier : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Best tier the hardware and build support (ignores WITAG_SIMD).
Tier detect_best_tier();

/// The tier kernels dispatch on: detect_best_tier() clamped by the
/// WITAG_SIMD environment variable (read once per process) and by any
/// ScopedTier override. Never exceeds detect_best_tier().
Tier active_tier();

/// Lower-case tier name ("scalar", "sse2", "avx2") for logs and benches.
const char* tier_name(Tier t);

/// RAII tier override for tests and benches: clamps to the detected
/// best tier, restores the previous override on destruction. Not
/// thread-safe — use from single-threaded test/bench setup only.
class ScopedTier {
 public:
  explicit ScopedTier(Tier t);
  ~ScopedTier();
  ScopedTier(const ScopedTier&) = delete;
  ScopedTier& operator=(const ScopedTier&) = delete;

 private:
  int previous_;
};

// ---------------------------------------------------------------------
// Viterbi add-compare-select.
// ---------------------------------------------------------------------

/// One trellis step over all 64 states: reads the current path metrics
/// from `cur`, writes the next metrics to `nxt` and the survivor bytes
/// to `srow` (64 entries each). `la`/`lb` are the step's two LLRs.
/// `cur` and `nxt` must be 32-byte aligned and distinct.
using AcsStepFn = void (*)(const double* cur, double* nxt,
                           std::uint8_t* srow, double la, double lb);

/// The ACS kernel for a tier (always non-null; unavailable tiers fall
/// back to the next lower implementation).
AcsStepFn acs_step_for(Tier t);

// ---------------------------------------------------------------------
// Soft demap (separable Gray-QAM, SoA inputs).
// ---------------------------------------------------------------------

/// Per-axis view of a Gray-mapped constellation: the low `i_bits` of a
/// point index select the I (real) level, the remaining `q_bits` select
/// Q. BPSK has q_bits == 0 with the single Q "level" 0.0. Squared
/// distances are separable (d = dI² + dQ²), which is what lets the
/// kernels do per-axis minima instead of the reference's full table
/// scan per bit — see constellation.cpp for the bit-exactness argument.
struct DemapAxes {
  unsigned n_bits = 0;  ///< bits per point (i_bits + q_bits)
  unsigned i_bits = 0;
  unsigned q_bits = 0;
  std::array<double, 8> i_levels{};
  std::array<double, 8> q_levels{};
};

/// Demaps `count` equalized points given as parallel arrays (re/im and
/// per-point noise variance) into max-log LLRs: out[p * n_bits + b].
/// All noise variances must be > 0 (checked by the callers).
using DemapBlockFn = void (*)(const double* re, const double* im,
                              const double* nv, std::size_t count,
                              const DemapAxes& ax, double* out);

/// The demap kernel for a tier (always non-null).
DemapBlockFn demap_block_for(Tier t);

// ---------------------------------------------------------------------
// Equalize (separable complex divide over gathered data subcarriers).
// ---------------------------------------------------------------------

/// |h|^2 below this is a dead bin: the equalizer emits a neutral point
/// with kEqualizeDeadNoise variance instead of dividing by ~zero.
inline constexpr double kEqualizeMinGain = 1e-18;
inline constexpr double kEqualizeDeadNoise = 1e18;

/// Equalizes `count` data points given as parallel arrays: channel
/// estimate (hr/hi), received points (rr/ri), the common-phase-error
/// rotation (cr, ci) and the noise floor max(noise_var, 1e-12). Writes
/// equalized points (zr/zi) and post-equalization noise variances (nv).
/// Per point, in this exact association (every tier performs the same
/// IEEE-754 operations, so all tiers are bit-identical):
///   g  = hr*hr + hi*hi
///   yr = rr*cr + ri*ci          (rx * conj(cpe))
///   yi = ri*cr - rr*ci
///   zr = (yr*hr + yi*hi) / g    (y * conj(h) / |h|^2)
///   zi = (yi*hr - yr*hi) / g
///   nv = noise_floor / g
/// with g < kEqualizeMinGain selecting {0, 0, kEqualizeDeadNoise}.
using EqualizeFn = void (*)(const double* hr, const double* hi,
                            const double* rr, const double* ri, double cr,
                            double ci, double noise_floor, std::size_t count,
                            double* zr, double* zi, double* nv);

/// The equalize kernel for a tier (always non-null).
EqualizeFn equalize_for(Tier t);

// ---------------------------------------------------------------------
// Deinterleave (pure permutation gather: out[k] = in[map[k]]).
// ---------------------------------------------------------------------

/// Applies a precomputed permutation: out[k] = in[map[k]] for k in
/// [0, n). A pure data movement, so every tier is trivially
/// bit-identical; AVX2 uses vgatherdpd over the int32 index table.
using DeinterleaveFn = void (*)(const double* in, const std::int32_t* map,
                                std::size_t n, double* out);

/// The deinterleave kernel for a tier (always non-null). SSE2 has no
/// gather, so only the AVX2 tier differs from scalar.
DeinterleaveFn deinterleave_for(Tier t);

// ---------------------------------------------------------------------
// FFT passes (decimation-in-time, fused radix-4). See fft.cpp for the
// engine that sequences these over a plan's twiddle tables.
// ---------------------------------------------------------------------

/// One fused radix-4 pass: performs the two consecutive radix-2 stages
/// with half-lengths `h` and `2*h` over blocks of `4*h` elements. `w1`
/// points at the h-half stage's twiddles (h entries), `w2` at the
/// 2h-half stage's (2*h entries). Requires 4*h <= n.
using FftRadix4PassFn = void (*)(util::Cx* data, std::size_t n,
                                 std::size_t h, const util::Cx* w1,
                                 const util::Cx* w2);

/// The standalone length-2 stage used when log2(n) is odd. Requires
/// n >= 4 and even.
using FftLen2PassFn = void (*)(util::Cx* data, std::size_t n);

/// Final 1/sqrt(n) scaling over the whole buffer.
using FftScaleFn = void (*)(util::Cx* data, std::size_t n, double scale);

struct FftKernels {
  FftRadix4PassFn radix4_pass;
  FftLen2PassFn len2_pass;
  FftScaleFn scale;
};

/// The FFT pass kernels for a tier. SSE2 gains nothing over scalar at
/// one complex double per vector, so only the AVX2 tier differs from
/// scalar here.
const FftKernels& fft_kernels_for(Tier t);

}  // namespace witag::phy::simd
