#include "phy/convolutional.hpp"

#include <array>
#include <bit>
#include <cstddef>

#include "util/require.hpp"

namespace witag::phy {
namespace {

// Keep-masks over one puncturing period, interleaved (A0,B0,A1,B1,...).
constexpr std::array<std::uint8_t, 2> kPattern12{1, 1};
constexpr std::array<std::uint8_t, 4> kPattern23{1, 1, 1, 0};
constexpr std::array<std::uint8_t, 6> kPattern34{1, 1, 1, 0, 0, 1};
constexpr std::array<std::uint8_t, 10> kPattern56{1, 1, 1, 0, 0, 1, 1, 0, 0, 1};

constexpr std::uint8_t parity(std::uint32_t v) {
  return static_cast<std::uint8_t>(static_cast<unsigned>(std::popcount(v)) & 1u);
}

// Bit-parity LUT over the 7-bit register: entry f holds output bit A in
// bit 0 and B in bit 1, replacing two popcounts per input bit.
constexpr std::array<std::uint8_t, 128> make_encoder_lut() {
  std::array<std::uint8_t, 128> lut{};
  for (std::uint32_t f = 0; f < 128; ++f) {
    lut[f] = static_cast<std::uint8_t>(parity(f & kGenPolyA) |
                                       (parity(f & kGenPolyB) << 1));
  }
  return lut;
}

constexpr std::array<std::uint8_t, 128> kEncoderLut = make_encoder_lut();

}  // namespace

std::span<const std::uint8_t> puncture_pattern(CodeRate rate) {
  switch (rate) {
    case CodeRate::kHalf: return kPattern12;
    case CodeRate::kTwoThirds: return kPattern23;
    case CodeRate::kThreeQuarters: return kPattern34;
    case CodeRate::kFiveSixths: return kPattern56;
  }
  WITAG_ENSURE(false);
  return kPattern12;
}

util::BitVec convolutional_encode(std::span<const std::uint8_t> bits) {
  util::BitVec out(bits.size() * 2);
  // 7-bit register with the newest input at bit 6 and the oldest at bit 0,
  // matching the MSB-first octal tap constants (133, 171).
  std::uint32_t shift = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    shift = (shift >> 1) | (static_cast<std::uint32_t>(bits[i] & 1u) << 6);
    const std::uint8_t ab = kEncoderLut[shift];
    out[2 * i] = static_cast<std::uint8_t>(ab & 1u);
    out[2 * i + 1] = static_cast<std::uint8_t>(ab >> 1);
  }
  return out;
}

util::BitVec puncture(std::span<const std::uint8_t> coded, CodeRate rate) {
  const auto pattern = puncture_pattern(rate);
  util::BitVec out;
  out.reserve(punctured_length(coded.size(), rate));
  for (std::size_t i = 0; i < coded.size(); ++i) {
    if (pattern[i % pattern.size()]) out.push_back(coded[i]);
  }
  return out;
}

std::size_t punctured_length(std::size_t mother_bits, CodeRate rate) {
  const auto pattern = puncture_pattern(rate);
  std::size_t kept_per_period = 0;
  for (const std::uint8_t k : pattern) kept_per_period += k;
  const std::size_t full = mother_bits / pattern.size();
  std::size_t len = full * kept_per_period;
  for (std::size_t i = full * pattern.size(); i < mother_bits; ++i) {
    if (pattern[i % pattern.size()]) ++len;
  }
  return len;
}

std::vector<double> depuncture(std::span<const double> llrs, CodeRate rate,
                               std::size_t n_coded_bits) {
  std::vector<double> out;
  depuncture_into(llrs, rate, n_coded_bits, out);
  return out;
}

void depuncture_into(std::span<const double> llrs, CodeRate rate,
                     std::size_t n_coded_bits, std::vector<double>& out) {
  WITAG_REQUIRE(n_coded_bits % 2 == 0);
  const auto pattern = puncture_pattern(rate);
  out.assign(n_coded_bits, 0.0);
  std::size_t src = 0;
  for (std::size_t i = 0; i < n_coded_bits; ++i) {
    if (pattern[i % pattern.size()]) {
      WITAG_REQUIRE(src < llrs.size());
      out[i] = llrs[src++];
    }
  }
  WITAG_REQUIRE(src == llrs.size());
}

namespace detail {

util::BitVec convolutional_encode_reference(std::span<const std::uint8_t> bits) {
  util::BitVec out;
  out.reserve(bits.size() * 2);
  std::uint32_t shift = 0;
  for (const std::uint8_t b : bits) {
    shift = (shift >> 1) | (static_cast<std::uint32_t>(b & 1u) << 6);
    out.push_back(parity(shift & kGenPolyA));
    out.push_back(parity(shift & kGenPolyB));
  }
  return out;
}

}  // namespace detail

}  // namespace witag::phy
