// Soft-decision Viterbi decoder for the 802.11 rate-1/2 mother code
// (K = 7, generators 133/171 octal). Consumes LLRs in the demapper's
// convention (positive = bit 0 more likely) including the zero-LLR
// erasures inserted by depuncturing, and assumes the encoder both starts
// and ends in the all-zero state (6 zero tail bits).
//
// Two implementations, bit-identical by construction (and fuzz-tested in
// tests/test_viterbi_equiv.cpp):
//  * detail::viterbi_reference — the transition-oriented original, kept
//    as the readable specification and benchmark baseline.
//  * viterbi_decode — predecessor-oriented butterflies over a flattened
//    constexpr trellis with a large-finite sentinel metric (branchless
//    add-compare-select) and flat survivor storage in a reusable
//    ViterbiWorkspace, so steady-state decode performs zero heap
//    allocations. See DESIGN.md §12 for the correctness argument.
#pragma once

#include <cstdint>
#include <span>
#include <vector>
#include <cstddef>

#include "util/bits.hpp"

namespace witag::phy {

/// Reusable buffers for viterbi_decode. One workspace serves any number
/// of sequential decodes; capacity grows to the largest decode seen and
/// is then reused (counted by the `phy.viterbi.workspace_reuses`
/// metric, which is how tests assert zero steady-state allocations).
/// Not thread-safe: use one workspace per thread.
class ViterbiWorkspace {
 public:
  /// Heap bytes currently reserved by the workspace.
  std::size_t capacity_bytes() const { return survivor_.capacity(); }

 private:
  friend void viterbi_decode(std::span<const double> llrs,
                             ViterbiWorkspace& ws, util::BitVec& out);
  // survivor_[step * kNumStates + state] = (previous state << 1) | input.
  std::vector<std::uint8_t> survivor_;
};

/// Decodes `llrs` (two per information bit at the mother rate) into
/// `out` (resized to the information bit count, including the tail),
/// reusing `ws` and `out` capacity. Requires an even, non-zero LLR
/// count. Steady state (same or smaller size as a previous call on the
/// same buffers) performs no heap allocation.
void viterbi_decode(std::span<const double> llrs, ViterbiWorkspace& ws,
                    util::BitVec& out);

/// Convenience wrapper returning the decoded bits. Uses a thread-local
/// workspace, so repeated calls still avoid steady-state allocations of
/// the survivor storage (the returned vector is the only allocation).
util::BitVec viterbi_decode(std::span<const double> llrs);

namespace detail {

/// The original transition-oriented decoder (-inf pruning, per-call
/// allocations). Retained as the specification the optimized path is
/// verified against, mirroring fft_reference_inplace.
util::BitVec viterbi_reference(std::span<const double> llrs);

}  // namespace detail

}  // namespace witag::phy
