// Soft-decision Viterbi decoder for the 802.11 rate-1/2 mother code
// (K = 7, generators 133/171 octal). Consumes LLRs in the demapper's
// convention (positive = bit 0 more likely) including the zero-LLR
// erasures inserted by depuncturing, and assumes the encoder both starts
// and ends in the all-zero state (6 zero tail bits).
#pragma once

#include <span>
#include <vector>

#include "util/bits.hpp"

namespace witag::phy {

/// Decodes `llrs` (two per information bit at the mother rate) back to
/// information bits (including the tail). Requires an even, non-zero
/// LLR count.
util::BitVec viterbi_decode(std::span<const double> llrs);

}  // namespace witag::phy
