// Packet detection and synchronization from raw samples.
//
// The PPDU receiver (ppdu.hpp) takes an aligned symbol timeline; this
// module finds that alignment in a continuous 20 Msps stream the way
// real receivers do:
//  - packet detection / coarse timing from the STF's 16-sample
//    periodicity (Schmidl-Cox style delay-correlate-and-normalize),
//  - fine timing from cross-correlation against the known LTF waveform,
//  - carrier frequency offset (CFO) estimation from the phase drift
//    between the two LTF repetitions, and correction.
#pragma once

#include <optional>
#include <span>
#include <cstddef>

#include "util/complexvec.hpp"

namespace witag::phy {

struct SyncConfig {
  /// Detection threshold on the normalized STF autocorrelation (0..1).
  double detection_threshold = 0.75;
  /// Minimum mean power (relative to the stream's overall mean) for a
  /// window to count as signal (rejects pure-noise false locks).
  double min_power_ratio = 2.0;
};

struct SyncResult {
  std::size_t frame_start = 0;  ///< Sample index of the PPDU's first sample.
  double cfo_hz = 0.0;          ///< Estimated carrier frequency offset.
  double metric = 0.0;          ///< Peak detection metric (diagnostic).
};

/// Scans `samples` for a PPDU. Returns the sync result or nullopt when
/// no packet is detected.
std::optional<SyncResult> detect_ppdu(std::span<const util::Cx> samples,
                                      const SyncConfig& cfg = {});

/// Removes a carrier frequency offset: y[n] = x[n] * e^{-j 2 pi f n / fs}.
util::CxVec correct_cfo(std::span<const util::Cx> samples, double cfo_hz,
                        double sample_rate_hz = 20e6);

}  // namespace witag::phy
