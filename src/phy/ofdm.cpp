#include "phy/ofdm.hpp"

#include <algorithm>
#include <cstddef>

#include "obs/obs.hpp"
#include "phy/fft.hpp"
#include "phy/scrambler.hpp"
#include "util/require.hpp"

namespace witag::phy {
namespace {

using util::Cx;

constexpr std::array<int, kNumPilots> kPilots{-21, -7, 7, 21};
constexpr std::array<double, kNumPilots> kPilotBase{1.0, 1.0, 1.0, -1.0};

std::array<int, 52> make_data_subcarriers() {
  std::array<int, 52> out{};
  std::size_t idx = 0;
  for (int k = -28; k <= 28; ++k) {
    if (k == 0) continue;
    if (std::find(kPilots.begin(), kPilots.end(), k) != kPilots.end()) continue;
    out[idx++] = k;
  }
  return out;
}

const std::array<int, 52> kDataSc = make_data_subcarriers();

}  // namespace

unsigned bin_index(int subcarrier) {
  WITAG_REQUIRE(subcarrier >= -32 && subcarrier <= 31);
  return subcarrier >= 0 ? static_cast<unsigned>(subcarrier)
                         : static_cast<unsigned>(subcarrier + 64);
}

std::span<const int> data_subcarriers() { return kDataSc; }

std::span<const int> pilot_subcarriers() { return kPilots; }

std::array<Cx, kNumPilots> pilot_values(std::size_t symbol_index) {
  const auto& polarity = pilot_polarity_sequence();
  const int p = polarity[(symbol_index + 1) % polarity.size()];
  std::array<Cx, kNumPilots> out{};
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    out[i] = Cx{kPilotBase[i] * p, 0.0};
  }
  return out;
}

FreqSymbol assemble_data_symbol(std::span<const Cx> points,
                                std::size_t symbol_index) {
  WITAG_REQUIRE(points.size() == kDataSc.size());
  FreqSymbol symbol{};
  for (std::size_t i = 0; i < kDataSc.size(); ++i) {
    symbol[bin_index(kDataSc[i])] = points[i];
  }
  const auto pilots = pilot_values(symbol_index);
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    symbol[bin_index(kPilots[i])] = pilots[i];
  }
  return symbol;
}

util::CxVec extract_data(const FreqSymbol& symbol) {
  util::CxVec out(kDataSc.size());
  for (std::size_t i = 0; i < kDataSc.size(); ++i) {
    out[i] = symbol[bin_index(kDataSc[i])];
  }
  return out;
}

std::array<Cx, kNumPilots> extract_pilots(const FreqSymbol& symbol) {
  std::array<Cx, kNumPilots> out{};
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    out[i] = symbol[bin_index(kPilots[i])];
  }
  return out;
}

util::CxVec to_time(const FreqSymbol& symbol) {
  util::CxVec work;
  util::CxVec samples(kSamplesPerSymbol);
  to_time_into(symbol, work, samples);
  return samples;
}

FreqSymbol from_time(std::span<const Cx> samples) {
  util::CxVec work;
  FreqSymbol symbol{};
  from_time_into(samples, work, symbol);
  return symbol;
}

void to_time_into(const FreqSymbol& symbol, util::CxVec& work,
                  std::span<Cx> out) {
  WITAG_SPAN_CAT("phy.ofdm.to_time", "phy");
  WITAG_COUNT("phy.ofdm.to_time.calls", 1);
  WITAG_REQUIRE(out.size() == kSamplesPerSymbol);
  work.assign(symbol.begin(), symbol.end());
  ifft_inplace(work);
  // Cyclic prefix: last kCpLen samples first.
  std::copy(work.end() - kCpLen, work.end(), out.begin());
  std::copy(work.begin(), work.end(), out.begin() + kCpLen);
}

void from_time_into(std::span<const Cx> samples, util::CxVec& work,
                    FreqSymbol& out) {
  WITAG_SPAN_CAT("phy.ofdm.from_time", "phy");
  WITAG_COUNT("phy.ofdm.from_time.calls", 1);
  WITAG_REQUIRE(samples.size() == kSamplesPerSymbol);
  work.assign(samples.begin() + kCpLen, samples.end());
  fft_inplace(work);
  std::copy(work.begin(), work.end(), out.begin());
}

}  // namespace witag::phy
