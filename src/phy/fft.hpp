// Iterative radix-2 FFT/IFFT with unitary (1/sqrt(N)) scaling in both
// directions so transforms preserve signal power — convenient for SNR
// bookkeeping across the time/frequency boundary.
#pragma once

#include <span>

#include "util/complexvec.hpp"

namespace witag::phy {

/// In-place forward FFT. Requires a power-of-two length >= 1.
void fft_inplace(std::span<util::Cx> data);

/// In-place inverse FFT. Requires a power-of-two length >= 1.
void ifft_inplace(std::span<util::Cx> data);

/// Out-of-place convenience wrappers.
util::CxVec fft(std::span<const util::Cx> data);
util::CxVec ifft(std::span<const util::Cx> data);

}  // namespace witag::phy
