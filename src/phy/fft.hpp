// Iterative radix-2 FFT/IFFT with unitary (1/sqrt(N)) scaling in both
// directions so transforms preserve signal power — convenient for SNR
// bookkeeping across the time/frequency boundary.
//
// Hot path: transforms execute against a process-wide plan cache keyed
// by length (bit-reversal swap list + per-stage twiddle tables), so the
// cos/sin work is paid once per length per process instead of once per
// call. The cache is thread-safe (lock-free lookup, mutex-guarded
// build) and plans live for the process lifetime; the planned path is
// bit-identical to the reference transform because plans store the
// twiddles produced by the very same recurrence.
#pragma once

#include <cstddef>
#include <span>

#include "util/complexvec.hpp"

namespace witag::phy {

/// In-place forward FFT. Requires a power-of-two length >= 1.
void fft_inplace(std::span<util::Cx> data);

/// In-place inverse FFT. Requires a power-of-two length >= 1.
void ifft_inplace(std::span<util::Cx> data);

/// Out-of-place convenience wrappers.
util::CxVec fft(std::span<const util::Cx> data);
util::CxVec ifft(std::span<const util::Cx> data);

namespace detail {

/// Reference transform that re-derives twiddles per call (the pre-cache
/// implementation). Kept for micro-benchmark baselines and for the test
/// asserting the planned path is bit-identical.
void fft_reference_inplace(std::span<util::Cx> data, bool inverse);

/// The planned fused-radix-4 engine pinned to the scalar (hoisted
/// twiddle) butterflies regardless of the active SIMD tier. Used by
/// BM_Fft64Radix4 to gate the scalar engine on plain CI runners, and by
/// tests to check every tier against fft_reference_inplace.
void fft_radix4_inplace(std::span<util::Cx> data, bool inverse);

/// Number of FFT plans currently cached (one per distinct length seen).
std::size_t fft_plan_count();

}  // namespace detail

}  // namespace witag::phy
