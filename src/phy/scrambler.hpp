// 802.11 PLCP scrambler (17.3.5.5): the 7-bit LFSR with polynomial
// x^7 + x^4 + 1. The same operation scrambles and descrambles. Also
// exposes the 127-bit pilot polarity sequence derived from the all-ones
// seed, which the standard reuses for per-symbol pilot signs.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bits.hpp"

namespace witag::phy {

/// Scrambles (or descrambles) `bits` with the given 7-bit seed.
/// Requires seed in [1, 127] (an all-zero state would be degenerate).
util::BitVec scramble(std::span<const std::uint8_t> bits, std::uint8_t seed);

/// Descrambles a stream whose first 7 plain bits are known to be zero
/// (the 802.11 SERVICE-field convention): the first 7 scrambled bits are
/// then the raw LFSR output, which reveals the scrambler state without
/// the receiver knowing the transmitter's seed. Requires >= 7 bits.
util::BitVec descramble_recover(std::span<const std::uint8_t> bits);

/// Allocation-reusing variant: writes the descrambled stream into `out`
/// (resized; capacity reused). The hot decode path threads one buffer
/// through phy::DecodeScratch.
void descramble_recover_into(std::span<const std::uint8_t> bits,
                             util::BitVec& out);

/// The 127-element +1/-1 pilot polarity sequence p_0..p_126 produced by
/// the scrambler LFSR seeded with all ones (802.11 17.3.5.10).
const std::array<int, 127>& pilot_polarity_sequence();

namespace detail {

/// Bit-serial originals, kept as the specification the byte-at-a-time
/// table implementations are parity-tested against.
util::BitVec scramble_reference(std::span<const std::uint8_t> bits,
                                std::uint8_t seed);
util::BitVec descramble_recover_reference(std::span<const std::uint8_t> bits);

}  // namespace detail

}  // namespace witag::phy
