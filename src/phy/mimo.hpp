// 2x2 MIMO spatial multiplexing extension (802.11n style): a round-robin
// stream parser splits one coded bit stream across two spatial streams,
// each subcarrier sees a 2x2 complex channel matrix, and the receiver
// recovers the streams with a zero-forcing detector.
//
// Used by the MOXcatter baseline bench (MOXcatter exists because per-
// symbol phase flipping breaks under MIMO) and as a standalone PHY
// extension with its own tests.
#pragma once

#include <array>
#include <span>
#include <vector>
#include <cstdint>

#include "phy/mcs.hpp"
#include "util/bits.hpp"
#include "util/complexvec.hpp"

namespace witag::phy::mimo {

inline constexpr unsigned kStreams = 2;

/// Per-subcarrier 2x2 channel matrix, row = receive antenna.
struct Matrix2 {
  std::array<std::array<util::Cx, kStreams>, kStreams> m{};
};

/// One MIMO OFDM data symbol: per-stream constellation points for the 52
/// data subcarriers (points[stream][subcarrier]).
struct MimoSymbol {
  std::array<util::CxVec, kStreams> points;
};

/// Splits coded bits across streams: s = max(n_bpsc/2, 1) consecutive
/// bits go to each stream in turn (802.11n stream parser). Requires the
/// bit count to divide evenly.
std::array<util::BitVec, kStreams> stream_parse(
    std::span<const std::uint8_t> bits, Modulation mod);

/// Inverse of stream_parse for soft values.
std::vector<double> stream_deparse_llrs(
    std::span<const double> s0, std::span<const double> s1, Modulation mod);

/// Maps two per-stream bit chunks (each 52 * n_bpsc bits) to a MIMO symbol.
MimoSymbol map_symbol(std::span<const std::uint8_t> stream0,
                      std::span<const std::uint8_t> stream1, Modulation mod);

/// Applies per-subcarrier channel matrices and returns the received
/// per-antenna points: y = H x (+ caller-added noise).
MimoSymbol apply_channel(const MimoSymbol& tx,
                         std::span<const Matrix2> h_per_subcarrier);

/// Zero-forcing detection: x_hat = H^-1 y per subcarrier. Also reports
/// the per-stream noise enhancement factor (row norm of H^-1 squared),
/// which scales the demapper noise variance. Singular (non-invertible)
/// matrices yield zero points with huge noise enhancement.
struct ZfResult {
  MimoSymbol detected;
  std::array<std::vector<double>, kStreams> noise_enhancement;
};
ZfResult zero_forcing(const MimoSymbol& rx,
                      std::span<const Matrix2> h_per_subcarrier);

}  // namespace witag::phy::mimo
