// Shared constexpr trellis tables for the K = 7 Viterbi decoder
// (generators 133/171 octal). Factored out of viterbi.cpp so the SIMD
// add-compare-select kernels in src/phy/simd*.cpp walk the exact same
// flattened trellis as the scalar decoder and the transition-oriented
// reference — bit-identical outputs fall out of sharing one table.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "phy/convolutional.hpp"

namespace witag::phy::detail {

// Transition model (matches convolutional_encode): from state s (the top
// six register bits) with input u, the full 7-bit register becomes
// f = s | (u << 6); the branch outputs are the parities of f with each
// generator and the next state is f >> 1.
struct Transitions {
  // For [state][input]: next state and the two expected output bits.
  std::array<std::array<std::uint8_t, 2>, kNumStates> next{};
  std::array<std::array<std::uint8_t, 2>, kNumStates> out_a{};
  std::array<std::array<std::uint8_t, 2>, kNumStates> out_b{};
};

constexpr Transitions make_transitions() {
  Transitions t;
  for (std::uint32_t s = 0; s < kNumStates; ++s) {
    for (std::uint32_t u = 0; u < 2; ++u) {
      const std::uint32_t full = s | (u << 6);
      t.next[s][u] = static_cast<std::uint8_t>(full >> 1);
      t.out_a[s][u] =
          static_cast<std::uint8_t>(std::popcount(full & kGenPolyA) & 1);
      t.out_b[s][u] =
          static_cast<std::uint8_t>(std::popcount(full & kGenPolyB) & 1);
    }
  }
  return t;
}

inline constexpr Transitions kTrellis = make_transitions();

// Predecessor-oriented view of the same trellis: next-state ns is fed by
// exactly the two 7-bit registers f0 = 2*ns and f1 = 2*ns + 1, i.e. by
// predecessor states s0 = f0 & 63 and s1 = s0 + 1, both under the same
// input u = ns >> 5. s0 < s1 always, which is exactly the order the
// transition-oriented reference visits them in — so "prefer the s0
// branch on metric ties" reproduces its strict-> update rule bit for
// bit.
struct Butterfly {
  std::uint8_t s0, s1;          // the two predecessor states
  std::uint8_t sv0, sv1;        // survivor bytes (pred << 1) | input
  std::uint8_t a0, b0, a1, b1;  // expected coded bits per branch
};

constexpr std::array<Butterfly, kNumStates> make_butterflies() {
  std::array<Butterfly, kNumStates> bs{};
  for (std::uint32_t ns = 0; ns < kNumStates; ++ns) {
    const std::uint32_t f0 = ns << 1;
    const std::uint32_t f1 = f0 | 1u;
    const std::uint32_t u = ns >> 5;
    Butterfly& bf = bs[ns];
    bf.s0 = static_cast<std::uint8_t>(f0 & (kNumStates - 1));
    bf.s1 = static_cast<std::uint8_t>(f1 & (kNumStates - 1));
    bf.sv0 = static_cast<std::uint8_t>((bf.s0 << 1) | u);
    bf.sv1 = static_cast<std::uint8_t>((bf.s1 << 1) | u);
    bf.a0 = static_cast<std::uint8_t>(std::popcount(f0 & kGenPolyA) & 1);
    bf.b0 = static_cast<std::uint8_t>(std::popcount(f0 & kGenPolyB) & 1);
    bf.a1 = static_cast<std::uint8_t>(std::popcount(f1 & kGenPolyA) & 1);
    bf.b1 = static_cast<std::uint8_t>(std::popcount(f1 & kGenPolyB) & 1);
  }
  return bs;
}

inline constexpr std::array<Butterfly, kNumStates> kButterflies =
    make_butterflies();

// Large-finite stand-in for -inf: unreachable states carry this value
// instead of being skipped, which removes the per-state branch from the
// ACS loop. Physical LLR sums are tens per step, so adding a branch
// metric to the sentinel does not move it at double granularity (ulp at
// 1e300 is ~1e284), and a sentinel path can never beat a real one. Any
// end metric below kSentinelThreshold therefore means "state 0 was
// pruned", exactly like the reference's -inf test.
inline constexpr double kSentinel = -1e300;
inline constexpr double kSentinelThreshold = -1e290;

// SoA companion to kButterflies for the vector ACS kernels. A branch
// metric ±llr is the LLR with its sign bit XORed, so the expected-bit
// flags become ±0.0 masks; negation-by-sign-flip is exact in IEEE-754,
// making the vector branch metrics bit-identical to the scalar
// `expected ? -llr : llr`. Survivor bytes need only sv0: s1 = s0 + 1
// under the same input, so sv1 = sv0 + 2 always.
struct AcsSigns {
  alignas(32) std::array<double, kNumStates> a0{};
  alignas(32) std::array<double, kNumStates> b0{};
  alignas(32) std::array<double, kNumStates> a1{};
  alignas(32) std::array<double, kNumStates> b1{};
};

constexpr AcsSigns make_acs_signs() {
  AcsSigns m;
  for (std::uint32_t ns = 0; ns < kNumStates; ++ns) {
    const Butterfly& bf = kButterflies[ns];
    m.a0[ns] = bf.a0 ? -0.0 : 0.0;
    m.b0[ns] = bf.b0 ? -0.0 : 0.0;
    m.a1[ns] = bf.a1 ? -0.0 : 0.0;
    m.b1[ns] = bf.b1 ? -0.0 : 0.0;
  }
  return m;
}

inline constexpr AcsSigns kAcsSigns = make_acs_signs();

constexpr std::array<std::uint8_t, kNumStates> make_survivor0() {
  std::array<std::uint8_t, kNumStates> sv{};
  for (std::uint32_t ns = 0; ns < kNumStates; ++ns) {
    sv[ns] = kButterflies[ns].sv0;
  }
  return sv;
}

inline constexpr std::array<std::uint8_t, kNumStates> kSurvivor0 =
    make_survivor0();

}  // namespace witag::phy::detail
