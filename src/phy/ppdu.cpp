#include "phy/ppdu.hpp"

#include <algorithm>
#include <cstddef>

#include "obs/obs.hpp"
#include "phy/constellation.hpp"
#include "phy/convolutional.hpp"
#include "phy/interleaver.hpp"
#include "phy/preamble.hpp"
#include "phy/scrambler.hpp"
#include "phy/viterbi.hpp"
#include "util/require.hpp"
#include "util/complexvec.hpp"

namespace witag::phy {
namespace {

constexpr std::size_t kServiceBits = 16;
constexpr std::size_t kTailBits = 6;

template <typename T>
std::size_t vec_capacity_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

// Encodes `bits` (already scrambled where applicable) into OFDM data
// symbols at the given modulation/rate. `bits` must fill a whole number
// of symbols after encoding. `first_symbol_index` sets pilot polarity.
std::vector<FreqSymbol> encode_field(std::span<const std::uint8_t> bits,
                                     Modulation mod, CodeRate rate,
                                     std::size_t first_symbol_index) {
  const util::BitVec mother = convolutional_encode(bits);
  const util::BitVec coded = puncture(mother, rate);
  const unsigned n_cbps = kDataSubcarriers * bits_per_symbol(mod);
  WITAG_REQUIRE(coded.size() % n_cbps == 0);

  std::vector<FreqSymbol> symbols;
  symbols.reserve(coded.size() / n_cbps);
  for (std::size_t off = 0; off < coded.size(); off += n_cbps) {
    const std::span<const std::uint8_t> chunk(coded.data() + off, n_cbps);
    const util::BitVec interleaved = interleave(chunk, mod);
    const util::CxVec points = map_bits(interleaved, mod);
    symbols.push_back(
        assemble_data_symbol(points, first_symbol_index + symbols.size()));
  }
  return symbols;
}

// Inverse of encode_field: equalize, soft-demap and deinterleave each
// symbol, then depuncture and Viterbi-decode the concatenated stream.
// Split into the two detail:: stages below so the batch decoder can run
// the symbols→LLRs front half over its SoA staging buffers and reuse the
// LLRs→bits back half unchanged.
void decode_field(std::span<const FreqSymbol> symbols,
                  const ChannelEstimate& est, Modulation mod, CodeRate rate,
                  std::size_t first_symbol_index, bool cpe_correction,
                  std::size_t n_info_bits, DecodeScratch& scratch) {
  detail::field_llrs_into(symbols, est, mod, first_symbol_index,
                          cpe_correction, scratch);
  detail::field_bits_from_llrs(rate, n_info_bits, scratch);
}

}  // namespace

namespace detail {

void field_llrs_into(std::span<const FreqSymbol> symbols,
                     const ChannelEstimate& est, Modulation mod,
                     std::size_t first_symbol_index, bool cpe_correction,
                     DecodeScratch& scratch) {
  const unsigned n_cbps = kDataSubcarriers * bits_per_symbol(mod);
  scratch.llrs.clear();
  scratch.llrs.reserve(symbols.size() * n_cbps);
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    equalize_into(symbols[s], est, first_symbol_index + s, cpe_correction,
                  scratch.eq);
    demap_soft_into(scratch.eq.points, mod, scratch.eq.noise_vars,
                    scratch.sym_llrs);
    deinterleave_llrs_into(scratch.sym_llrs, mod, scratch.deint);
    scratch.llrs.insert(scratch.llrs.end(), scratch.deint.begin(),
                        scratch.deint.end());
  }
}

void field_bits_from_llrs(CodeRate rate, std::size_t n_info_bits,
                          DecodeScratch& scratch) {
  const auto frac = rate_fraction(rate);
  // llrs.size() punctured bits carry llrs.size() * num / den info bits at
  // the mother rate.
  const std::size_t n_info = scratch.llrs.size() * frac.num / frac.den;
  depuncture_into(scratch.llrs, rate, 2 * n_info, scratch.mother);
  if (n_info_bits != 0) {
    WITAG_REQUIRE(n_info_bits <= n_info);
    scratch.mother.resize(2 * n_info_bits);
  }
  viterbi_decode(scratch.mother, scratch.viterbi, scratch.bits);
}

}  // namespace detail

std::size_t DecodeScratch::capacity_bytes() const {
  return viterbi.capacity_bytes() + vec_capacity_bytes(eq.points) +
         vec_capacity_bytes(eq.noise_vars) + vec_capacity_bytes(sym_llrs) +
         vec_capacity_bytes(deint) + vec_capacity_bytes(llrs) +
         vec_capacity_bytes(mother) + vec_capacity_bytes(bits) +
         vec_capacity_bytes(plain) + vec_capacity_bytes(symbols) +
         vec_capacity_bytes(fft_work);
}

double TxPpdu::duration_us() const {
  return static_cast<double>(symbols.size()) * kSymbolDurationUs;
}

SlotKind TxPpdu::kind(std::size_t slot) const {
  WITAG_REQUIRE(slot < symbols.size());
  if (slot < kStfSlots) return SlotKind::kStf;
  if (slot < kPreambleSlots) return SlotKind::kLtf;
  if (slot < kHeaderSlots) return SlotKind::kSig;
  return SlotKind::kData;
}

TxPpdu transmit(std::span<const std::uint8_t> psdu, const TxConfig& cfg) {
  WITAG_REQUIRE(!psdu.empty());
  WITAG_REQUIRE(psdu.size() < 65536);
  const McsParams& m = mcs(cfg.mcs_index);

  TxPpdu ppdu;
  ppdu.sig = HtSig{cfg.mcs_index, psdu.size()};

  // Preamble.
  ppdu.symbols.push_back(stf_symbol());
  for (std::size_t i = 0; i < kLtfSlots; ++i) ppdu.symbols.push_back(ltf_symbol());

  // SIG field: BPSK rate 1/2, symbol indices 0..1 for pilot polarity.
  const util::BitVec sig_bits = encode_sig(ppdu.sig);
  const auto sig_syms =
      encode_field(sig_bits, Modulation::kBpsk, CodeRate::kHalf, 0);
  WITAG_ENSURE(sig_syms.size() == kSigSymbols);
  ppdu.symbols.insert(ppdu.symbols.end(), sig_syms.begin(), sig_syms.end());

  // DATA field: service + PSDU + tail, padded to whole symbols, scrambled
  // (with the tail re-zeroed so the decoder's trellis terminates).
  const std::size_t n_sym = data_symbols_for(psdu.size(), m);
  const std::size_t n_bits = n_sym * m.n_dbps;
  util::BitWriter w;
  w.write(0, kServiceBits);
  w.write_bits(util::bytes_to_bits(psdu));
  w.write(0, kTailBits);
  util::BitVec data_bits = w.take();
  data_bits.resize(n_bits, 0);

  util::BitVec scrambled = scramble(data_bits, cfg.scrambler_seed);
  const std::size_t tail_at = kServiceBits + 8 * psdu.size();
  std::fill_n(scrambled.begin() + static_cast<std::ptrdiff_t>(tail_at),
              kTailBits, std::uint8_t{0});

  const auto data_syms =
      encode_field(scrambled, m.modulation, m.rate, kSigSymbols);
  ppdu.n_data_symbols = data_syms.size();
  ppdu.symbols.insert(ppdu.symbols.end(), data_syms.begin(), data_syms.end());
  return ppdu;
}

RxResult receive(std::span<const FreqSymbol> symbols, const RxConfig& cfg) {
  DecodeScratch scratch;
  return receive(symbols, cfg, scratch);
}

RxResult receive(std::span<const FreqSymbol> symbols, const RxConfig& cfg,
                 DecodeScratch& scratch) {
  WITAG_REQUIRE(symbols.size() >= kHeaderSlots);
  RxResult out;

  // One channel estimate for the whole PPDU, taken from the LTF slots.
  out.estimate = estimate_channel(symbols.subspan(kStfSlots, kLtfSlots));

  // SIG field (consumed from scratch.bits before the data field reuses
  // the buffer).
  decode_field(symbols.subspan(kPreambleSlots, kSigSymbols), out.estimate,
               Modulation::kBpsk, CodeRate::kHalf, 0, cfg.cpe_correction, 0,
               scratch);
  const auto sig = decode_sig(scratch.bits);
  if (!sig || sig->mcs_index >= kNumMcs || sig->length == 0) {
    return out;  // header unusable; receiver drops the PPDU
  }
  out.sig = *sig;

  const McsParams& m = mcs(out.sig.mcs_index);
  const std::size_t n_sym = data_symbols_for(out.sig.length, m);
  if (symbols.size() < kHeaderSlots + n_sym) {
    return out;  // truncated capture; treat as undecodable
  }
  out.sig_ok = true;

  // Decode through service + PSDU + tail; the trellis terminates there
  // and the remaining pad bits carry nothing.
  const std::size_t field_bits = 16 + 8 * out.sig.length + 6;
  decode_field(symbols.subspan(kHeaderSlots, n_sym), out.estimate,
               m.modulation, m.rate, kSigSymbols, cfg.cpe_correction,
               field_bits, scratch);

  // Descramble: the service field is transmitted as zeros, so the first 7
  // scrambled bits reveal the scrambler state (802.11 receivers recover
  // the seed the same way).
  descramble_recover_into(scratch.bits, scratch.plain);

  const std::size_t payload_bits = 8 * out.sig.length;
  WITAG_ENSURE(scratch.plain.size() >= kServiceBits + payload_bits);
  const std::span<const std::uint8_t> payload(
      scratch.plain.data() + kServiceBits, payload_bits);
  out.psdu = util::bits_to_bytes(payload);
#if WITAG_OBS_ENABLED
  static obs::Gauge& scratch_gauge = obs::gauge("phy.decode.scratch_bytes");
  scratch_gauge.set(static_cast<double>(scratch.capacity_bytes()));
#endif
  return out;
}

util::CxVec to_samples(const TxPpdu& ppdu) {
  util::CxVec samples;
  samples.reserve(ppdu.symbols.size() * kSamplesPerSymbol);
  for (const FreqSymbol& sym : ppdu.symbols) {
    const util::CxVec block = to_time(sym);
    samples.insert(samples.end(), block.begin(), block.end());
  }
  return samples;
}

RxResult receive_samples(std::span<const util::Cx> samples,
                         const RxConfig& cfg) {
  DecodeScratch scratch;
  return receive_samples(samples, cfg, scratch);
}

RxResult receive_samples(std::span<const util::Cx> samples,
                         const RxConfig& cfg, DecodeScratch& scratch) {
  WITAG_REQUIRE(samples.size() % kSamplesPerSymbol == 0);
  scratch.symbols.resize(samples.size() / kSamplesPerSymbol);
  for (std::size_t slot = 0; slot < scratch.symbols.size(); ++slot) {
    from_time_into(samples.subspan(slot * kSamplesPerSymbol,
                                   kSamplesPerSymbol),
                   scratch.fft_work, scratch.symbols[slot]);
  }
  return receive(scratch.symbols, cfg, scratch);
}

}  // namespace witag::phy
