// AVX2 kernels (four doubles / two complex doubles per vector): Viterbi
// add-compare-select, separable soft demap, and the fused radix-4 FFT
// passes. This TU is compiled with -mavx2 (and deliberately WITHOUT
// -mfma: the scalar code the kernels must match bit for bit is built
// with no contraction, so the kernels stick to packed mul/add/sub —
// an FMA here would round differently). When the compiler cannot
// target AVX2 the file degrades to stubs and dispatch never selects
// this tier (see avx2_compiled()).

#include "phy/simd.hpp"

#include <cstdint>
#include <limits>

#include "phy/trellis.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#include <cstddef>
#endif

namespace witag::phy::simd::kernels {

bool avx2_supported() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

#if defined(__AVX2__)

bool avx2_compiled() { return true; }

void acs_step_avx2(const double* cur, double* nxt, std::uint8_t* srow,
                   double la, double lb) {
  const __m256d la_v = _mm256_set1_pd(la);
  const __m256d lb_v = _mm256_set1_pd(lb);
  const detail::AcsSigns& sg = detail::kAcsSigns;
  // Next-states ns and ns + 32 share predecessors cur[2*ns], cur[2*ns+1]
  // (only the expected branch bits differ), so one even/odd gather of
  // eight metrics feeds four states in each half of the state vector.
  for (std::uint32_t j = 0; j < kNumStates / 2; j += 4) {
    const __m256d v0 = _mm256_load_pd(cur + 2 * j);      // cur[2j .. 2j+3]
    const __m256d v1 = _mm256_load_pd(cur + 2 * j + 4);  // cur[2j+4 .. 2j+7]
    // In-lane unpack then a cross-lane permute yields the even/odd
    // deinterleave: evens = cur[s0] for ns = j..j+3, odds = cur[s1].
    const __m256d evens = _mm256_permute4x64_pd(
        _mm256_unpacklo_pd(v0, v1), _MM_SHUFFLE(3, 1, 2, 0));
    const __m256d odds = _mm256_permute4x64_pd(
        _mm256_unpackhi_pd(v0, v1), _MM_SHUFFLE(3, 1, 2, 0));
    for (std::uint32_t half = 0; half < 2; ++half) {
      const std::uint32_t ns = j + half * (kNumStates / 2);
      // Branch metrics via sign-bit XOR: ±llr exactly as the scalar
      // pa[e]/pb[e] tables, with the same (cur + pa) + pb association.
      const __m256d pa0 = _mm256_xor_pd(la_v, _mm256_load_pd(&sg.a0[ns]));
      const __m256d pb0 = _mm256_xor_pd(lb_v, _mm256_load_pd(&sg.b0[ns]));
      const __m256d pa1 = _mm256_xor_pd(la_v, _mm256_load_pd(&sg.a1[ns]));
      const __m256d pb1 = _mm256_xor_pd(lb_v, _mm256_load_pd(&sg.b1[ns]));
      const __m256d m0 = _mm256_add_pd(_mm256_add_pd(evens, pa0), pb0);
      const __m256d m1 = _mm256_add_pd(_mm256_add_pd(odds, pa1), pb1);
      // Strict m1 > m0 (ordered): ties keep the s0 branch, like the
      // scalar code.
      const __m256d take1 = _mm256_cmp_pd(m1, m0, _CMP_GT_OQ);
      _mm256_store_pd(nxt + ns, _mm256_blendv_pd(m0, m1, take1));
      const int mask = _mm256_movemask_pd(take1);
      for (std::uint32_t lane = 0; lane < 4; ++lane) {
        srow[ns + lane] = static_cast<std::uint8_t>(
            detail::kSurvivor0[ns + lane] + (((mask >> lane) & 1) ? 2 : 0));
      }
    }
  }
}

void demap_block_avx2(const double* re, const double* im, const double* nv,
                      std::size_t count, const DemapAxes& ax, double* out) {
  const unsigned ni = 1u << ax.i_bits;
  const unsigned nq = 1u << ax.q_bits;
  const __m256d inf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t p = 0;
  for (; p + 4 <= count; p += 4) {
    // SoA spans land at arbitrary lane offsets inside vector-owned
    // storage, so these loads cannot assume 32-byte alignment.
    const __m256d yr =
        _mm256_loadu_pd(re + p);  // witag-lint: allow(simd-unaligned)
    const __m256d yi =
        _mm256_loadu_pd(im + p);  // witag-lint: allow(simd-unaligned)
    const __m256d noise =
        _mm256_loadu_pd(nv + p);  // witag-lint: allow(simd-unaligned)
    __m256d min_i = inf, min_q = inf;
    __m256d min0_i[4], min1_i[4], min0_q[4], min1_q[4];
    for (unsigned b = 0; b < ax.i_bits; ++b) min0_i[b] = min1_i[b] = inf;
    for (unsigned b = 0; b < ax.q_bits; ++b) min0_q[b] = min1_q[b] = inf;
    for (unsigned j = 0; j < ni; ++j) {
      const __m256d d = _mm256_sub_pd(yr, _mm256_set1_pd(ax.i_levels[j]));
      const __m256d sq = _mm256_mul_pd(d, d);
      min_i = _mm256_min_pd(min_i, sq);
      for (unsigned b = 0; b < ax.i_bits; ++b) {
        if ((j >> b) & 1u) {
          min1_i[b] = _mm256_min_pd(min1_i[b], sq);
        } else {
          min0_i[b] = _mm256_min_pd(min0_i[b], sq);
        }
      }
    }
    for (unsigned q = 0; q < nq; ++q) {
      const __m256d d = _mm256_sub_pd(yi, _mm256_set1_pd(ax.q_levels[q]));
      const __m256d sq = _mm256_mul_pd(d, d);
      min_q = _mm256_min_pd(min_q, sq);
      for (unsigned b = 0; b < ax.q_bits; ++b) {
        if ((q >> b) & 1u) {
          min1_q[b] = _mm256_min_pd(min1_q[b], sq);
        } else {
          min0_q[b] = _mm256_min_pd(min0_q[b], sq);
        }
      }
    }
    alignas(32) double lanes[4];
    for (unsigned b = 0; b < ax.i_bits; ++b) {
      const __m256d m1 = _mm256_add_pd(min1_i[b], min_q);
      const __m256d m0 = _mm256_add_pd(min0_i[b], min_q);
      const __m256d llr = _mm256_div_pd(_mm256_sub_pd(m1, m0), noise);
      _mm256_store_pd(lanes, llr);
      for (unsigned lane = 0; lane < 4; ++lane) {
        out[(p + lane) * ax.n_bits + b] = lanes[lane];
      }
    }
    for (unsigned b = 0; b < ax.q_bits; ++b) {
      const __m256d m1 = _mm256_add_pd(min_i, min1_q[b]);
      const __m256d m0 = _mm256_add_pd(min_i, min0_q[b]);
      const __m256d llr = _mm256_div_pd(_mm256_sub_pd(m1, m0), noise);
      _mm256_store_pd(lanes, llr);
      for (unsigned lane = 0; lane < 4; ++lane) {
        out[(p + lane) * ax.n_bits + ax.i_bits + b] = lanes[lane];
      }
    }
  }
  if (p < count) {
    // Tail through the SSE2/scalar kernels: per-point math is
    // identical, so chunk boundaries never change results.
    demap_block_for(Tier::kSse2)(re + p, im + p, nv + p, count - p, ax,
                                 out + p * ax.n_bits);
  }
}

namespace {

using util::Cx;

/// Two complex multiplies a * w matching the scalar naive formula
/// (re = ar*wr - ai*wi, im = ai*wr + ar*wi) operation for operation —
/// addsub provides the subtract in the even lanes and the add in the
/// odd lanes with ordinary IEEE rounding, no FMA.
inline __m256d cmul(__m256d a, __m256d w) {
  const __m256d wr = _mm256_movedup_pd(w);       // [wr0, wr0, wr1, wr1]
  const __m256d wi = _mm256_permute_pd(w, 0xF);  // [wi0, wi0, wi1, wi1]
  const __m256d t1 = _mm256_mul_pd(a, wr);       // [ar*wr, ai*wr, ...]
  const __m256d as = _mm256_permute_pd(a, 0x5);  // [ai, ar, ...]
  const __m256d t2 = _mm256_mul_pd(as, wi);      // [ai*wi, ar*wi, ...]
  return _mm256_addsub_pd(t1, t2);
}

inline __m256d load2(const Cx* p) {
  // Heap CxVec data is only 16-byte aligned, so a 32-byte load of two
  // adjacent complexes must be unaligned.
  return _mm256_loadu_pd(  // witag-lint: allow(simd-unaligned)
      reinterpret_cast<const double*>(p));
}

inline void store2(Cx* p, __m256d v) {
  _mm256_storeu_pd(reinterpret_cast<double*>(p), v);
}

}  // namespace

void fft_radix4_pass_avx2(Cx* data, std::size_t n, std::size_t h,
                          const Cx* w1, const Cx* w2) {
  if (h == 1) {
    // Fused len-2 + len-4 stages over blocks of four: w1[0] is exactly
    // (1, 0) but is still multiplied, matching the scalar pass.
    const __m256d w1b =
        _mm256_broadcast_pd(reinterpret_cast<const __m128d*>(w1));
    const __m256d w2v = load2(w2);
    for (std::size_t i = 0; i < n; i += 4) {
      const __m256d r0 = load2(data + i);      // [d0, d1]
      const __m256d r1 = load2(data + i + 2);  // [d2, d3]
      const __m256d us = _mm256_permute2f128_pd(r0, r1, 0x20);  // [d0, d2]
      const __m256d vs = _mm256_permute2f128_pd(r0, r1, 0x31);  // [d1, d3]
      const __m256d t = cmul(vs, w1b);
      const __m256d s = _mm256_add_pd(us, t);   // [s0, s2]
      const __m256d dd = _mm256_sub_pd(us, t);  // [s1, s3]
      const __m256d lo = _mm256_permute2f128_pd(s, dd, 0x20);  // [s0, s1]
      const __m256d hi = _mm256_permute2f128_pd(s, dd, 0x31);  // [s2, s3]
      const __m256d v = cmul(hi, w2v);  // [s2*w2[0], s3*w2[1]]
      store2(data + i, _mm256_add_pd(lo, v));
      store2(data + i + 2, _mm256_sub_pd(lo, v));
    }
    return;
  }
  // Generic fused pass, two butterflies (two k values) per iteration.
  // h >= 2 and a power of two, so k never straddles the block edge.
  for (std::size_t i = 0; i < n; i += 4 * h) {
    for (std::size_t k = 0; k < h; k += 2) {
      const __m256d w1k = load2(w1 + k);
      const __m256d w2k = load2(w2 + k);
      const __m256d w2kh = load2(w2 + k + h);
      const __m256d a = load2(data + i + k);
      const __m256d b = load2(data + i + k + h);
      const __m256d c = load2(data + i + k + 2 * h);
      const __m256d e = load2(data + i + k + 3 * h);
      const __m256d t = cmul(b, w1k);
      const __m256d s0 = _mm256_add_pd(a, t);
      const __m256d s1 = _mm256_sub_pd(a, t);
      const __m256d u = cmul(e, w1k);
      const __m256d s2 = _mm256_add_pd(c, u);
      const __m256d s3 = _mm256_sub_pd(c, u);
      const __m256d v0 = cmul(s2, w2k);
      const __m256d v1 = cmul(s3, w2kh);
      store2(data + i + k, _mm256_add_pd(s0, v0));
      store2(data + i + k + 2 * h, _mm256_sub_pd(s0, v0));
      store2(data + i + k + h, _mm256_add_pd(s1, v1));
      store2(data + i + k + 3 * h, _mm256_sub_pd(s1, v1));
    }
  }
}

void fft_len2_pass_avx2(Cx* data, std::size_t n) {
  const __m256d w = _mm256_setr_pd(1.0, 0.0, 1.0, 0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d r0 = load2(data + i);
    const __m256d r1 = load2(data + i + 2);
    const __m256d us = _mm256_permute2f128_pd(r0, r1, 0x20);  // [d0, d2]
    const __m256d vs = _mm256_permute2f128_pd(r0, r1, 0x31);  // [d1, d3]
    const __m256d t = cmul(vs, w);
    const __m256d s = _mm256_add_pd(us, t);   // [o0, o2]
    const __m256d dd = _mm256_sub_pd(us, t);  // [o1, o3]
    store2(data + i, _mm256_permute2f128_pd(s, dd, 0x20));
    store2(data + i + 2, _mm256_permute2f128_pd(s, dd, 0x31));
  }
  for (; i < n; i += 2) {
    const Cx wc{1.0, 0.0};
    const Cx a = data[i];
    const Cx v = data[i + 1] * wc;
    data[i] = a + v;
    data[i + 1] = a - v;
  }
}

void fft_scale_avx2(Cx* data, std::size_t n, double scale) {
  const __m256d s = _mm256_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    store2(data + i, _mm256_mul_pd(load2(data + i), s));
  }
  for (; i < n; ++i) data[i] *= scale;
}

void equalize_block_avx2(const double* hr, const double* hi, const double* rr,
                         const double* ri, double cr, double ci,
                         double noise_floor, std::size_t count, double* zr,
                         double* zi, double* nv) {
  const __m256d cr_v = _mm256_set1_pd(cr);
  const __m256d ci_v = _mm256_set1_pd(ci);
  const __m256d nf_v = _mm256_set1_pd(noise_floor);
  const __m256d min_gain = _mm256_set1_pd(kEqualizeMinGain);
  const __m256d dead_nv = _mm256_set1_pd(kEqualizeDeadNoise);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    // Callers may hand arbitrarily-offset slices, so loads/stores stay
    // unaligned (the gather staging arrays happen to be aligned).
    const __m256d h_r =
        _mm256_loadu_pd(hr + i);  // witag-lint: allow(simd-unaligned)
    const __m256d h_i =
        _mm256_loadu_pd(hi + i);  // witag-lint: allow(simd-unaligned)
    const __m256d r_r =
        _mm256_loadu_pd(rr + i);  // witag-lint: allow(simd-unaligned)
    const __m256d r_i =
        _mm256_loadu_pd(ri + i);  // witag-lint: allow(simd-unaligned)
    // Same association as the scalar kernel; packed mul/add/sub/div
    // only, no FMA (this TU is compiled without -mfma on purpose).
    const __m256d g =
        _mm256_add_pd(_mm256_mul_pd(h_r, h_r), _mm256_mul_pd(h_i, h_i));
    const __m256d yr =
        _mm256_add_pd(_mm256_mul_pd(r_r, cr_v), _mm256_mul_pd(r_i, ci_v));
    const __m256d yi =
        _mm256_sub_pd(_mm256_mul_pd(r_i, cr_v), _mm256_mul_pd(r_r, ci_v));
    const __m256d qr = _mm256_div_pd(
        _mm256_add_pd(_mm256_mul_pd(yr, h_r), _mm256_mul_pd(yi, h_i)), g);
    const __m256d qi = _mm256_div_pd(
        _mm256_sub_pd(_mm256_mul_pd(yi, h_r), _mm256_mul_pd(yr, h_i)), g);
    const __m256d qn = _mm256_div_pd(nf_v, g);
    const __m256d dead = _mm256_cmp_pd(g, min_gain, _CMP_LT_OQ);
    _mm256_storeu_pd(zr + i,  // witag-lint: allow(simd-unaligned)
                     _mm256_andnot_pd(dead, qr));
    _mm256_storeu_pd(zi + i,  // witag-lint: allow(simd-unaligned)
                     _mm256_andnot_pd(dead, qi));
    _mm256_storeu_pd(nv + i,  // witag-lint: allow(simd-unaligned)
                     _mm256_blendv_pd(qn, dead_nv, dead));
  }
  if (i < count) {
    equalize_for(Tier::kScalar)(hr + i, hi + i, rr + i, ri + i, cr, ci,
                                noise_floor, count - i, zr + i, zi + i,
                                nv + i);
  }
}

void deinterleave_avx2(const double* in, const std::int32_t* map,
                       std::size_t n, double* out) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128i idx = _mm_loadu_si128(  // witag-lint: allow(simd-unaligned)
        reinterpret_cast<const __m128i*>(map + k));
    // A pure permutation: four gathered loads land in one consecutive
    // store, bit-identical to the scalar copy loop by construction.
    const __m256d v = _mm256_i32gather_pd(in, idx, 8);
    _mm256_storeu_pd(out + k, v);  // witag-lint: allow(simd-unaligned)
  }
  for (; k < n; ++k) out[k] = in[map[k]];
}

#else  // !defined(__AVX2__)

bool avx2_compiled() { return false; }

void acs_step_avx2(const double* cur, double* nxt, std::uint8_t* srow,
                   double la, double lb) {
  acs_step_for(Tier::kSse2)(cur, nxt, srow, la, lb);
}

void demap_block_avx2(const double* re, const double* im, const double* nv,
                      std::size_t count, const DemapAxes& ax, double* out) {
  demap_block_for(Tier::kSse2)(re, im, nv, count, ax, out);
}

void equalize_block_avx2(const double* hr, const double* hi, const double* rr,
                         const double* ri, double cr, double ci,
                         double noise_floor, std::size_t count, double* zr,
                         double* zi, double* nv) {
  equalize_for(Tier::kSse2)(hr, hi, rr, ri, cr, ci, noise_floor, count, zr,
                            zi, nv);
}

void deinterleave_avx2(const double* in, const std::int32_t* map,
                       std::size_t n, double* out) {
  deinterleave_for(Tier::kScalar)(in, map, n, out);
}

void fft_radix4_pass_avx2(util::Cx* data, std::size_t n, std::size_t h,
                          const util::Cx* w1, const util::Cx* w2) {
  fft_kernels_for(Tier::kScalar).radix4_pass(data, n, h, w1, w2);
}

void fft_len2_pass_avx2(util::Cx* data, std::size_t n) {
  fft_kernels_for(Tier::kScalar).len2_pass(data, n);
}

void fft_scale_avx2(util::Cx* data, std::size_t n, double scale) {
  fft_kernels_for(Tier::kScalar).scale(data, n, scale);
}

#endif  // defined(__AVX2__)

}  // namespace witag::phy::simd::kernels
