#include "phy/plcp.hpp"

#include "util/crc.hpp"
#include "util/require.hpp"
#include <cstddef>

namespace witag::phy {
namespace {

constexpr std::size_t kFieldBits = 24;  // mcs(7) + length(16) + reserved(1)

}  // namespace

util::BitVec encode_sig(const HtSig& sig) {
  WITAG_REQUIRE(sig.mcs_index < 128);
  WITAG_REQUIRE(sig.length < 65536);

  util::BitWriter w;
  w.write(sig.mcs_index, 7);
  w.write(sig.length, 16);
  w.write_bit(false);  // reserved

  const util::ByteVec packed = util::bits_to_bytes(w.bits());
  w.write(util::crc8(packed), 8);
  w.write(0, 6);  // tail bits terminate the SIG's own trellis segment

  util::BitVec bits = w.take();
  bits.resize(kSigBits, 0);
  return bits;
}

std::optional<HtSig> decode_sig(std::span<const std::uint8_t> bits) {
  WITAG_REQUIRE(bits.size() == kSigBits);
  util::BitReader r(bits);
  HtSig sig;
  sig.mcs_index = static_cast<unsigned>(r.read(7));
  sig.length = static_cast<std::size_t>(r.read(16));
  r.read(1);  // reserved

  const util::ByteVec packed =
      util::bits_to_bytes(bits.subspan(0, kFieldBits));
  const auto crc = static_cast<std::uint8_t>(r.read(8));
  if (crc != util::crc8(packed)) return std::nullopt;
  return sig;
}

}  // namespace witag::phy
