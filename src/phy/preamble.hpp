// PHY preamble training fields.
//
// The transmitter sends a short training field (STF) used for packet
// detection / AGC (and, in WiTAG, by the tag's envelope detector), then
// two long training fields (LTF) from which the receiver takes its one
// and only channel estimate for the whole PPDU — the property WiTAG's
// subframe corruption exploits.
//
// Deviation from 802.11n noted in DESIGN.md: we use the L-LTF sequence on
// subcarriers -26..26 extended with +1 at +/-27 and +/-28 so all 56 HT
// subcarriers are trained, instead of the standard's separate L-LTF and
// HT-LTF fields. Any known +/-1 training sequence gives the same
// least-squares estimator behaviour.
#pragma once

#include "phy/ofdm.hpp"

namespace witag::phy {

/// Number of LTF repetitions transmitted (estimates are averaged).
inline constexpr unsigned kNumLtf = 2;

/// Frequency-domain LTF training symbol (+/-1 on all 56 used bins).
const FreqSymbol& ltf_symbol();

/// Frequency-domain STF symbol (12 tones, power-normalized to match the
/// data symbols' total power).
const FreqSymbol& stf_symbol();

}  // namespace witag::phy
