// Gray-coded constellation mapping and soft demapping per 802.11
// (17.3.5.8): BPSK, QPSK, 16-QAM, 64-QAM with the standard normalization
// factors so every modulation has unit average power.
#pragma once

#include <span>
#include <vector>
#include <cstddef>
#include <cstdint>

#include "phy/mcs.hpp"
#include "util/bits.hpp"
#include "util/complexvec.hpp"

namespace witag::phy {

/// Maps `bits` (group of n_bpsc per point, first bit = I-axis LSB-first
/// per the standard's bit ordering) to constellation points.
/// Requires bits.size() to be a multiple of bits_per_symbol(mod).
util::CxVec map_bits(std::span<const std::uint8_t> bits, Modulation mod);

/// Hard-decision demap: nearest constellation point back to bits.
util::BitVec demap_hard(std::span<const util::Cx> points, Modulation mod);

/// Soft demap to max-log LLRs. Positive LLR means bit 0 is more likely
/// (the Viterbi decoder consumes this convention). `noise_var` is the
/// complex noise variance per symbol; it scales the LLR magnitude.
/// Requires noise_var > 0.
std::vector<double> demap_soft(std::span<const util::Cx> points,
                               Modulation mod, double noise_var);

/// Soft demap with a per-point noise variance (post-equalization noise
/// differs per subcarrier). Requires noise_vars.size() == points.size()
/// and all variances > 0.
std::vector<double> demap_soft(std::span<const util::Cx> points,
                               Modulation mod,
                               std::span<const double> noise_vars);

/// Allocation-reusing variant of the per-point soft demap: writes the
/// LLRs into `out` (resized; capacity reused) for the hot decode path.
/// Dispatches to the separable SIMD kernels (phy/simd.hpp), which are
/// bit-identical to detail::demap_soft_reference.
void demap_soft_into(std::span<const util::Cx> points, Modulation mod,
                     std::span<const double> noise_vars,
                     std::vector<double>& out);

/// SoA soft demap for the batch decode path: `re`/`im`/`noise_vars` are
/// parallel arrays of `count` equalized points, `out` receives
/// count * bits_per_symbol(mod) LLRs. Same kernels (and bits) as
/// demap_soft_into, minus the AoS→SoA staging.
void demap_soft_soa(const double* re, const double* im,
                    const double* noise_vars, std::size_t count,
                    Modulation mod, double* out);

/// The (normalized) points of a constellation in bit-pattern order:
/// entry i is the point whose bits, LSB-first, encode i.
std::span<const util::Cx> constellation_points(Modulation mod);

namespace detail {

/// The original full-table-scan max-log demap (O(points · bits ·
/// table)), kept as the specification the separable kernels are
/// parity-fuzzed against in tests/test_simd.cpp.
std::vector<double> demap_soft_reference(std::span<const util::Cx> points,
                                         Modulation mod,
                                         std::span<const double> noise_vars);

}  // namespace detail

}  // namespace witag::phy
