#include "phy/mcs.hpp"

#include <array>

#include "util/require.hpp"

namespace witag::phy {
namespace {

constexpr std::array<McsParams, kNumMcs> kTable{{
    {0, Modulation::kBpsk, CodeRate::kHalf, 1, 52, 26, 6.5, "MCS0 (BPSK 1/2)"},
    {1, Modulation::kQpsk, CodeRate::kHalf, 2, 104, 52, 13.0, "MCS1 (QPSK 1/2)"},
    {2, Modulation::kQpsk, CodeRate::kThreeQuarters, 2, 104, 78, 19.5,
     "MCS2 (QPSK 3/4)"},
    {3, Modulation::kQam16, CodeRate::kHalf, 4, 208, 104, 26.0,
     "MCS3 (16-QAM 1/2)"},
    {4, Modulation::kQam16, CodeRate::kThreeQuarters, 4, 208, 156, 39.0,
     "MCS4 (16-QAM 3/4)"},
    {5, Modulation::kQam64, CodeRate::kTwoThirds, 6, 312, 208, 52.0,
     "MCS5 (64-QAM 2/3)"},
    {6, Modulation::kQam64, CodeRate::kThreeQuarters, 6, 312, 234, 58.5,
     "MCS6 (64-QAM 3/4)"},
    {7, Modulation::kQam64, CodeRate::kFiveSixths, 6, 312, 260, 65.0,
     "MCS7 (64-QAM 5/6)"},
}};

}  // namespace

unsigned bits_per_symbol(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  WITAG_ENSURE(false);
  return 0;
}

RateFraction rate_fraction(CodeRate rate) {
  switch (rate) {
    case CodeRate::kHalf: return {1, 2};
    case CodeRate::kTwoThirds: return {2, 3};
    case CodeRate::kThreeQuarters: return {3, 4};
    case CodeRate::kFiveSixths: return {5, 6};
  }
  WITAG_ENSURE(false);
  return {1, 2};
}

const McsParams& mcs(unsigned index) {
  WITAG_REQUIRE(index < kNumMcs);
  return kTable[index];
}

std::size_t data_symbols_for(std::size_t psdu_bytes, const McsParams& m) {
  const std::size_t payload_bits = 16 + 8 * psdu_bytes + 6;
  return (payload_bits + m.n_dbps - 1) / m.n_dbps;
}

}  // namespace witag::phy
