#include "phy/channel_est.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <cstddef>

#include "obs/obs.hpp"
#include "phy/preamble.hpp"
#include "phy/simd.hpp"
#include "util/require.hpp"

namespace witag::phy {
namespace {

using util::Cx;

// Floor on |h|^2 to keep equalization of a faded bin from producing
// non-finite values; such bins get an enormous noise variance instead.
// The kernel path uses the identical simd::kEqualizeMinGain.
constexpr double kMinGain = 1e-18;

// Common phase error from the four pilots: correlate received pilots
// against their expected post-channel values; the angle of the sum is
// the shared rotation. Four complex MACs per symbol — not worth a
// kernel, and shared verbatim by the kernel path and the reference.
Cx estimate_cpe(const FreqSymbol& rx, const ChannelEstimate& est,
                std::size_t symbol_index) {
  const auto pilots_rx = extract_pilots(rx);
  const auto pilots_tx = pilot_values(symbol_index);
  const auto pilot_sc = pilot_subcarriers();
  Cx acc{};
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    const Cx expected = est.h[bin_index(pilot_sc[i])] * pilots_tx[i];
    acc += pilots_rx[i] * std::conj(expected);
  }
  if (std::abs(acc) > 0.0) return acc / std::abs(acc);
  return Cx{1.0, 0.0};
}

// FFT-bin index of each data subcarrier, in demap order. Built once;
// equalize_into gathers through this table every symbol.
const std::array<unsigned, kFftSize>& data_bin_table() {
  static const std::array<unsigned, kFftSize> table = [] {
    std::array<unsigned, kFftSize> t{};
    const auto sc = data_subcarriers();
    WITAG_REQUIRE(sc.size() <= kFftSize);
    for (std::size_t i = 0; i < sc.size(); ++i) {
      t[i] = bin_index(sc[i]);
    }
    return t;
  }();
  return table;
}

}  // namespace

ChannelEstimate estimate_channel(std::span<const FreqSymbol> ltf_rx) {
  WITAG_SPAN_CAT("phy.channel_est", "phy");
  WITAG_COUNT("phy.channel_est.calls", 1);
  WITAG_REQUIRE(!ltf_rx.empty());
  const FreqSymbol& ref = ltf_symbol();

  ChannelEstimate est;
  std::size_t used = 0;
  for (unsigned bin = 0; bin < kFftSize; ++bin) {
    if (ref[bin] == Cx{}) continue;
    Cx sum{};
    for (const FreqSymbol& rx : ltf_rx) sum += rx[bin] / ref[bin];
    est.h[bin] = sum / static_cast<double>(ltf_rx.size());
    est.mean_gain += std::norm(est.h[bin]);
    ++used;
  }
  est.mean_gain /= static_cast<double>(used);

  if (ltf_rx.size() >= 2) {
    // Successive LTFs carry the same signal; their difference is noise.
    double acc = 0.0;
    std::size_t n = 0;
    for (unsigned bin = 0; bin < kFftSize; ++bin) {
      if (ref[bin] == Cx{}) continue;
      for (std::size_t r = 1; r < ltf_rx.size(); ++r) {
        acc += std::norm(ltf_rx[r][bin] - ltf_rx[r - 1][bin]) / 2.0;
        ++n;
      }
    }
    est.noise_var = acc / static_cast<double>(n);
  }
  // Guard against a zero estimate (noise-free unit tests): the demapper
  // requires a strictly positive variance.
  if (!(est.noise_var > 0.0)) est.noise_var = 1e-12;
  return est;
}

EqualizedSymbol equalize(const FreqSymbol& rx, const ChannelEstimate& est,
                         std::size_t symbol_index, bool cpe_correction) {
  EqualizedSymbol out;
  equalize_into(rx, est, symbol_index, cpe_correction, out);
  return out;
}

void equalize_into(const FreqSymbol& rx, const ChannelEstimate& est,
                   std::size_t symbol_index, bool cpe_correction,
                   EqualizedSymbol& out) {
  WITAG_SPAN_CAT("phy.equalize", "phy");
  WITAG_COUNT("phy.equalize.calls", 1);
  const Cx cpe = cpe_correction ? estimate_cpe(rx, est, symbol_index)
                                : Cx{1.0, 0.0};

  const auto data_sc = data_subcarriers();
  const std::size_t n = data_sc.size();
  out.points.resize(n);
  out.noise_vars.resize(n);

  // Gather h and rx into SoA staging buffers over the data-bin table,
  // run the tier-dispatched divide, scatter back. The buffers live on
  // the stack: equalize_into is on the per-symbol hot path and must not
  // allocate beyond the (capacity-reused) output vectors.
  const auto& bins = data_bin_table();
  alignas(32) std::array<double, kFftSize> hr, hi, rr, ri, zr, zi, nv;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned bin = bins[i];
    hr[i] = est.h[bin].real();
    hi[i] = est.h[bin].imag();
    rr[i] = rx[bin].real();
    ri[i] = rx[bin].imag();
  }
  const double noise_floor = std::max(est.noise_var, 1e-12);
  simd::equalize_for(simd::active_tier())(hr.data(), hi.data(), rr.data(),
                                          ri.data(), cpe.real(), cpe.imag(),
                                          noise_floor, n, zr.data(), zi.data(),
                                          nv.data());
  for (std::size_t i = 0; i < n; ++i) {
    out.points[i] = Cx{zr[i], zi[i]};
    out.noise_vars[i] = nv[i];
  }
}

namespace detail {

EqualizedSymbol equalize_reference(const FreqSymbol& rx,
                                   const ChannelEstimate& est,
                                   std::size_t symbol_index,
                                   bool cpe_correction) {
  EqualizedSymbol out;
  const Cx cpe = cpe_correction ? estimate_cpe(rx, est, symbol_index)
                                : Cx{1.0, 0.0};
  const auto data_sc = data_subcarriers();
  out.points.resize(data_sc.size());
  out.noise_vars.resize(data_sc.size());
  for (std::size_t i = 0; i < data_sc.size(); ++i) {
    const unsigned bin = bin_index(data_sc[i]);
    const double gain = std::norm(est.h[bin]);
    if (gain < kMinGain) {
      // A dead bin carries no information: neutral point, huge noise.
      out.points[i] = Cx{};
      out.noise_vars[i] = 1e18;
      continue;
    }
    out.points[i] = rx[bin] * std::conj(cpe) / est.h[bin];
    out.noise_vars[i] = std::max(est.noise_var, 1e-12) / gain;
  }
  return out;
}

}  // namespace detail

}  // namespace witag::phy
