#include "phy/sync.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <cstddef>

#include "phy/ofdm.hpp"
#include "phy/preamble.hpp"
#include "util/require.hpp"
#include "util/units.hpp"

namespace witag::phy {
namespace {

using util::Cx;

constexpr std::size_t kStfPeriod = 16;
constexpr std::size_t kDetectWindow = 64;
constexpr int kFineSearchHalf = 24;

// Known 64-sample LTF body (without CP) for fine timing.
const util::CxVec& ltf_body() {
  static const util::CxVec kBody = [] {
    const util::CxVec full = to_time(ltf_symbol());
    return util::CxVec(full.begin() + kCpLen, full.end());
  }();
  return kBody;
}

}  // namespace

std::optional<SyncResult> detect_ppdu(std::span<const Cx> samples,
                                      const SyncConfig& cfg) {
  WITAG_REQUIRE(cfg.detection_threshold > 0.0 && cfg.detection_threshold < 1.0);
  const std::size_t need =
      kDetectWindow + kStfPeriod + 3 * kSamplesPerSymbol;
  if (samples.size() < need) return std::nullopt;

  // Noise-floor estimate: the quietest 64-sample block. The whole-stream
  // mean would be dominated by the frame itself when the stream is
  // mostly packet.
  double noise_floor = 0.0;
  {
    double min_block = std::numeric_limits<double>::infinity();
    for (std::size_t b = 0; b + kDetectWindow <= samples.size();
         b += kDetectWindow) {
      double p = 0.0;
      for (std::size_t n = 0; n < kDetectWindow; ++n) {
        p += std::norm(samples[b + n]);
      }
      min_block = std::min(min_block, p / kDetectWindow);
    }
    noise_floor = min_block;
  }
  if (!std::isfinite(noise_floor)) return std::nullopt;

  // Schmidl-Cox style sliding metric on the STF's 16-sample periodicity.
  std::size_t coarse = 0;
  double best_metric = 0.0;
  bool detected = false;
  for (std::size_t d = 0;
       d + kDetectWindow + kStfPeriod < samples.size() - 3 * kSamplesPerSymbol;
       ++d) {
    Cx p{};
    double r = 0.0;
    for (std::size_t n = 0; n < kDetectWindow; ++n) {
      p += samples[d + n] * std::conj(samples[d + n + kStfPeriod]);
      r += std::norm(samples[d + n + kStfPeriod]);
    }
    if (r <= 0.0) continue;
    const double metric = std::abs(p) / r;
    const double window_power = r / kDetectWindow;
    if (metric > cfg.detection_threshold &&
        window_power > cfg.min_power_ratio * noise_floor) {
      coarse = d;
      best_metric = metric;
      detected = true;
      break;
    }
  }
  if (!detected) return std::nullopt;

  // Fine timing: cross-correlate the known LTF body around the coarse
  // estimate. The LTF body starts kSamplesPerSymbol + kCpLen samples
  // into the frame.
  const auto& ref = ltf_body();
  std::size_t best_start = coarse;
  double best_corr = -1.0;
  for (int off = -kFineSearchHalf; off <= kFineSearchHalf; ++off) {
    const long start_l = static_cast<long>(coarse) + off;
    if (start_l < 0) continue;
    const std::size_t start = static_cast<std::size_t>(start_l);
    const std::size_t ltf_at = start + kSamplesPerSymbol + kCpLen;
    if (ltf_at + ref.size() > samples.size()) break;
    Cx acc{};
    double energy = 0.0;
    for (std::size_t n = 0; n < ref.size(); ++n) {
      acc += samples[ltf_at + n] * std::conj(ref[n]);
      energy += std::norm(samples[ltf_at + n]);
    }
    if (energy <= 0.0) continue;
    const double corr = std::norm(acc) / energy;
    if (corr > best_corr) {
      best_corr = corr;
      best_start = start;
    }
  }

  // CFO from the phase drift between the two LTF repetitions (spaced one
  // 80-sample slot apart).
  SyncResult result;
  result.frame_start = best_start;
  result.metric = best_metric;
  const std::size_t ltf1 = best_start + kSamplesPerSymbol + kCpLen;
  const std::size_t ltf2 = ltf1 + kSamplesPerSymbol;
  if (ltf2 + 64 <= samples.size()) {
    Cx acc{};
    for (std::size_t n = 0; n < 64; ++n) {
      acc += std::conj(samples[ltf1 + n]) * samples[ltf2 + n];
    }
    const double spacing_s = kSamplesPerSymbol / kSampleRateHz;
    result.cfo_hz = std::arg(acc) / (2.0 * util::kPi * spacing_s);
  }
  return result;
}

util::CxVec correct_cfo(std::span<const Cx> samples, double cfo_hz,
                        double sample_rate_hz) {
  WITAG_REQUIRE(sample_rate_hz > 0.0);
  util::CxVec out(samples.size());
  const double step = -2.0 * util::kPi * cfo_hz / sample_rate_hz;
  for (std::size_t n = 0; n < samples.size(); ++n) {
    out[n] = samples[n] * std::polar(1.0, step * static_cast<double>(n));
  }
  return out;
}

}  // namespace witag::phy
