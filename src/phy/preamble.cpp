#include "phy/preamble.hpp"

#include <array>
#include <cmath>
#include <cstddef>

namespace witag::phy {
namespace {

using util::Cx;

// L-LTF values for subcarriers -26..-1, then +1..+26 (DC omitted),
// per 802.11-2016 Table 17-9.
constexpr std::array<int, 52> kLltf{
    // -26 .. -1
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1,
    1, 1, 1, 1,
    // +1 .. +26
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1,
    -1, 1, 1, 1, 1};

// STF tone positions and signs (sign of the (1+j)/sqrt(2) factor),
// per 802.11-2016 Eq. 17-7.
constexpr std::array<int, 12> kStfTones{-24, -20, -16, -12, -8, -4,
                                        4,   8,   12,  16,  20, 24};
constexpr std::array<int, 12> kStfSigns{1, -1, 1, -1, -1, 1, -1, -1, 1, 1, 1, 1};

FreqSymbol make_ltf() {
  FreqSymbol symbol{};
  std::size_t idx = 0;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    symbol[bin_index(k)] = Cx{static_cast<double>(kLltf[idx++]), 0.0};
  }
  // Extend training to the HT edge subcarriers so the whole 56-bin grid
  // gets an estimate.
  for (const int k : {-28, -27, 27, 28}) {
    symbol[bin_index(k)] = Cx{1.0, 0.0};
  }
  return symbol;
}

FreqSymbol make_stf() {
  FreqSymbol symbol{};
  // sqrt(13/6) * (1+j) keeps the 12-tone STF at the same total power
  // as a 52-tone data symbol (12 * |sqrt(13/6) * (1+j)|^2 = 52).
  const double amp = std::sqrt(13.0 / 6.0);
  for (std::size_t i = 0; i < kStfTones.size(); ++i) {
    const double s = static_cast<double>(kStfSigns[i]) * amp;
    symbol[bin_index(kStfTones[i])] = Cx{s, s};
  }
  return symbol;
}

}  // namespace

const FreqSymbol& ltf_symbol() {
  static const FreqSymbol kSymbol = make_ltf();
  return kSymbol;
}

const FreqSymbol& stf_symbol() {
  static const FreqSymbol kSymbol = make_stf();
  return kSymbol;
}

}  // namespace witag::phy
