#include "phy/fft.hpp"

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "phy/simd.hpp"
#include "util/require.hpp"
#include "util/units.hpp"

namespace witag::phy {
namespace {

using util::Cx;

void check_length(std::size_t n) {
  WITAG_REQUIRE(n >= 1 && std::has_single_bit(n));
}

/// Precomputed execution plan for one transform length: the bit-reversal
/// swap pairs and, per butterfly stage, the twiddle sequence the
/// reference recurrence would produce (so planned output is bit-identical
/// to the reference).
struct FftPlan {
  std::size_t n = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> swaps;
  /// Stage twiddles concatenated (len = 2, 4, ..., n; len/2 entries per
  /// stage, n - 1 total), one table per direction.
  std::vector<Cx> fwd;
  std::vector<Cx> inv;
  double scale = 1.0;
};

std::vector<Cx> build_twiddles(std::size_t n, bool inverse) {
  std::vector<Cx> tw;
  tw.reserve(n - 1);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * util::kPi / static_cast<double>(len);
    const Cx wlen{std::cos(angle), std::sin(angle)};
    // Same incremental recurrence as the reference transform so the
    // cached values match it to the last bit.
    Cx w{1.0, 0.0};
    for (std::size_t k = 0; k < len / 2; ++k) {
      tw.push_back(w);
      w *= wlen;
    }
  }
  return tw;
}

const FftPlan* build_plan(std::size_t n) {
  WITAG_COUNT("phy.fft.plan_builds", 1);
  auto* plan = new FftPlan;  // process-lifetime; never freed
  plan->n = n;
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      plan->swaps.emplace_back(static_cast<std::uint32_t>(i),
                               static_cast<std::uint32_t>(j));
    }
  }
  plan->fwd = build_twiddles(n, false);
  plan->inv = build_twiddles(n, true);
  plan->scale = 1.0 / std::sqrt(static_cast<double>(n));
  return plan;
}

/// Process-wide plan cache, one slot per log2(length). Lookup is a
/// single acquire load; the build path double-checks under a mutex so
/// concurrent workers agree on one plan per length.
struct PlanCache {
  std::array<std::atomic<const FftPlan*>, 64> slots{};
  std::mutex build_mu;
};

PlanCache& plan_cache() {
  static PlanCache cache;
  return cache;
}

const FftPlan& plan_for(std::size_t n) {
  PlanCache& cache = plan_cache();
  auto& slot = cache.slots[static_cast<std::size_t>(std::countr_zero(n))];
  const FftPlan* plan = slot.load(std::memory_order_acquire);
  if (plan) return *plan;
  std::lock_guard<std::mutex> lock(cache.build_mu);
  plan = slot.load(std::memory_order_acquire);
  if (!plan) {
    plan = build_plan(n);
    slot.store(plan, std::memory_order_release);
  }
  return *plan;
}

// Radix-4 engine: the radix-2 stage ladder (len = 2, 4, ..., n) is run
// as fused pairs of consecutive stages — a fused pass performs exactly
// the arithmetic of its two radix-2 stages, element for element (each
// output of stage L feeds exactly one butterfly of stage 2L, so fusing
// reorders operations only across independent elements), which keeps the
// result bit-identical to the reference while halving the sweeps over
// the data. The plan's concatenated twiddle tables serve both stage
// halves directly: the stage with half-length h starts at offset h - 1.
// When log2(n) is odd the leading len-2 stage runs standalone first.
// The per-pass butterflies come from phy::simd (scalar with hoisted
// twiddles, or AVX2 two-complex vectors).
void transform_tiered(std::span<Cx> data, bool inverse, simd::Tier tier) {
  const std::size_t n = data.size();
  check_length(n);
  if (n == 1) return;
  const FftPlan& plan = plan_for(n);

  for (const auto& [i, j] : plan.swaps) std::swap(data[i], data[j]);

  const simd::FftKernels& kern = simd::fft_kernels_for(tier);
  const std::vector<Cx>& twiddles = inverse ? plan.inv : plan.fwd;
  const Cx* tw = twiddles.data();
  std::size_t h = 1;
  if (static_cast<unsigned>(std::countr_zero(n)) % 2 == 1) {
    kern.len2_pass(data.data(), n);
    h = 2;
  }
  for (; 4 * h <= n; h *= 4) {
    kern.radix4_pass(data.data(), n, h, tw + (h - 1), tw + (2 * h - 1));
  }
  kern.scale(data.data(), n, plan.scale);
}

void transform(std::span<Cx> data, bool inverse) {
  transform_tiered(data, inverse, simd::active_tier());
}

}  // namespace

namespace detail {

void fft_reference_inplace(std::span<Cx> data, bool inverse) {
  const std::size_t n = data.size();
  check_length(n);
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * util::kPi / static_cast<double>(len);
    const Cx wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      Cx w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cx u = data[i + k];
        const Cx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  for (Cx& x : data) x *= scale;
}

void fft_radix4_inplace(std::span<Cx> data, bool inverse) {
  transform_tiered(data, inverse, simd::Tier::kScalar);
}

std::size_t fft_plan_count() {
  std::size_t count = 0;
  for (const auto& slot : plan_cache().slots) {
    if (slot.load(std::memory_order_acquire)) ++count;
  }
  return count;
}

}  // namespace detail

void fft_inplace(std::span<Cx> data) {
  WITAG_SPAN_CAT("phy.fft", "phy");
  WITAG_COUNT("phy.fft.calls", 1);
  transform(data, false);
}

void ifft_inplace(std::span<Cx> data) {
  WITAG_SPAN_CAT("phy.ifft", "phy");
  WITAG_COUNT("phy.ifft.calls", 1);
  transform(data, true);
}

util::CxVec fft(std::span<const Cx> data) {
  util::CxVec out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

util::CxVec ifft(std::span<const Cx> data) {
  util::CxVec out(data.begin(), data.end());
  ifft_inplace(out);
  return out;
}

}  // namespace witag::phy
