#include "phy/fft.hpp"

#include <bit>
#include <cmath>

#include "obs/obs.hpp"
#include "util/require.hpp"
#include "util/units.hpp"

namespace witag::phy {
namespace {

using util::Cx;

void transform(std::span<Cx> data, bool inverse) {
  const std::size_t n = data.size();
  util::require(n >= 1 && std::has_single_bit(n),
                "fft: length must be a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * util::kPi / static_cast<double>(len);
    const Cx wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      Cx w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cx u = data[i + k];
        const Cx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  for (Cx& x : data) x *= scale;
}

}  // namespace

void fft_inplace(std::span<Cx> data) {
  WITAG_SPAN_CAT("phy.fft", "phy");
  WITAG_COUNT("phy.fft.calls", 1);
  transform(data, false);
}

void ifft_inplace(std::span<Cx> data) {
  WITAG_SPAN_CAT("phy.ifft", "phy");
  WITAG_COUNT("phy.ifft.calls", 1);
  transform(data, true);
}

util::CxVec fft(std::span<const Cx> data) {
  util::CxVec out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

util::CxVec ifft(std::span<const Cx> data) {
  util::CxVec out(data.begin(), data.end());
  ifft_inplace(out);
  return out;
}

}  // namespace witag::phy
