// Batch-of-PPDUs decoder: decodes N independent subframe timelines
// (e.g. the subframes of an A-MPDU exchange) in lockstep lanes over
// structure-of-arrays staging buffers.
//
// Why a batch API when each PPDU could just call receive(): the hot
// kernel underneath the decode chain is the soft demap, and its SIMD
// implementations want long runs of points. receive() hands the demap
// 52 points per OFDM symbol; the batch decoder first equalizes every
// data symbol of every lane into flat re/im/noise SoA arrays, then
// demaps each lane's whole field in one kernel sweep (thousands of
// points), and only then fans back out to the per-lane deinterleave /
// depuncture / Viterbi / descramble tail. Results are bit-identical to
// per-PPDU receive() — the per-point math is position-independent —
// which tests/test_batch_decode.cpp fuzzes across lane counts, ragged
// batches and fault regimes.
//
// All buffers (per-lane DecodeScratch, the SoA staging, the results) are
// grow-only and reused across calls, so steady-state batch decode
// performs zero heap allocations (asserted via the
// `phy.batch.scratch_reuses` counter, mirroring ViterbiWorkspace).
#pragma once

#include <array>
#include <span>
#include <vector>
#include <cstddef>

#include "phy/ppdu.hpp"

namespace witag::phy {

class BatchDecoder {
 public:
  /// Decodes each lane (one received symbol timeline per lane, same
  /// layout receive() expects). Returns one RxResult per lane, in lane
  /// order; the span is valid until the next decode call. Every lane
  /// requires at least the header slots.
  std::span<const RxResult> decode(
      std::span<const std::span<const FreqSymbol>> lanes,
      const RxConfig& cfg);

  /// Single-lane convenience for callers that decode one PPDU at a time
  /// (Session's exchange path). Same machinery, batch of one.
  const RxResult& decode_one(std::span<const FreqSymbol> symbols,
                             const RxConfig& cfg);

  /// Heap bytes currently reserved across all lane scratches and the
  /// SoA staging buffers (exported as `phy.batch.scratch_bytes`).
  std::size_t capacity_bytes() const;

 private:
  /// Per-lane data-field plan recorded by the header phase.
  struct LanePlan {
    bool data_ok = false;  ///< header valid and capture long enough
    Modulation mod = Modulation::kBpsk;
    CodeRate rate = CodeRate::kHalf;
    std::size_t n_sym = 0;       ///< data symbols
    std::size_t field_bits = 0;  ///< service + PSDU + tail info bits
    std::size_t point_off = 0;   ///< lane's first index in re_/im_/nv_
    std::size_t n_points = 0;    ///< equalized data points staged
    std::size_t llr_off = 0;     ///< lane's first index in llr_
  };

  std::vector<DecodeScratch> scratch_;  ///< one per lane, grow-only
  std::vector<LanePlan> plans_;
  std::vector<RxResult> results_;
  // SoA staging: all lanes' equalized data points and the demapped
  // LLRs, concatenated lane by lane.
  std::vector<double> re_;
  std::vector<double> im_;
  std::vector<double> nv_;
  std::vector<double> llr_;
  std::array<std::span<const FreqSymbol>, 1> one_lane_{};
};

}  // namespace witag::phy
