#include "phy/constellation.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <cstddef>
#include <cstdint>

#include "phy/simd.hpp"
#include "util/require.hpp"

namespace witag::phy {
namespace {

using util::Cx;
using util::CxVec;

// 802.11 Gray-coded PAM levels. For 16-QAM the two bits (b0 b1) select
// the I level via 00->-3, 01->-1, 11->+1, 10->+3; 64-QAM extends the
// same Gray pattern to 8 levels.
double pam2(unsigned bits) { return bits ? 1.0 : -1.0; }

double pam4(unsigned bits) {
  switch (bits & 0x3u) {
    case 0b00: return -3.0;
    case 0b01: return -1.0;
    case 0b11: return 1.0;
    default: return 3.0;  // 0b10
  }
}

double pam8(unsigned bits) {
  switch (bits & 0x7u) {
    case 0b000: return -7.0;
    case 0b001: return -5.0;
    case 0b011: return -3.0;
    case 0b010: return -1.0;
    case 0b110: return 1.0;
    case 0b111: return 3.0;
    case 0b101: return 5.0;
    default: return 7.0;  // 0b100
  }
}

// Builds the point table for a modulation; entry i is the point whose
// LSB-first bit pattern encodes i. First half of the bits selects I,
// second half selects Q (matching the standard's b0..b(N-1) split).
CxVec make_table(Modulation mod) {
  const unsigned n = bits_per_symbol(mod);
  const unsigned count = 1u << n;
  CxVec table(count);
  for (unsigned i = 0; i < count; ++i) {
    double re = 0.0;
    double im = 0.0;
    double norm = 1.0;
    switch (mod) {
      case Modulation::kBpsk:
        re = pam2(i & 1u);
        im = 0.0;
        norm = 1.0;
        break;
      case Modulation::kQpsk:
        re = pam2(i & 1u);
        im = pam2((i >> 1) & 1u);
        norm = std::sqrt(2.0);
        break;
      case Modulation::kQam16:
        re = pam4(i & 0x3u);
        im = pam4((i >> 2) & 0x3u);
        norm = std::sqrt(10.0);
        break;
      case Modulation::kQam64:
        re = pam8(i & 0x7u);
        im = pam8((i >> 3) & 0x7u);
        norm = std::sqrt(42.0);
        break;
    }
    table[i] = Cx{re / norm, im / norm};
  }
  return table;
}

const CxVec kBpskTable = make_table(Modulation::kBpsk);
const CxVec kQpskTable = make_table(Modulation::kQpsk);
const CxVec kQam16Table = make_table(Modulation::kQam16);
const CxVec kQam64Table = make_table(Modulation::kQam64);

const CxVec& table_for(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return kBpskTable;
    case Modulation::kQpsk: return kQpskTable;
    case Modulation::kQam16: return kQam16Table;
    case Modulation::kQam64: return kQam64Table;
  }
  WITAG_ENSURE(false);
  return kBpskTable;
}

// Per-axis view of a point table for the separable soft demap. Gray
// mapping makes the table a product set: entry i has I level
// i_levels[i & (2^i_bits - 1)] and Q level q_levels[i >> i_bits], so the
// squared distance to entry i is dI²(j) + dQ²(q). The reference's
// per-bit minimum over all entries therefore decomposes into per-axis
// minima: for an I bit, the candidate set {i : bit set} is the full
// product {j : bit set} × {all q}, rounding is monotone
// (x ≤ y ⇒ round(x) ≤ round(y)) and the joint minimizer (argmin_j,
// argmin_q) lies in the set — so min over the set of
// round(dI² + dQ²) equals round(min dI² + min dQ²) exactly, down to the
// last bit. The kernels below compute precisely that (simd.hpp).
simd::DemapAxes make_axes(Modulation mod) {
  const CxVec& table = table_for(mod);
  const unsigned n = bits_per_symbol(mod);
  simd::DemapAxes ax;
  ax.n_bits = n;
  ax.i_bits = (n == 1) ? 1u : n / 2;
  ax.q_bits = n - ax.i_bits;
  for (unsigned j = 0; j < (1u << ax.i_bits); ++j) {
    ax.i_levels[j] = table[j].real();
  }
  for (unsigned q = 0; q < (1u << ax.q_bits); ++q) {
    ax.q_levels[q] = table[q << ax.i_bits].imag();  // 0.0 for BPSK
  }
  return ax;
}

const simd::DemapAxes& axes_for(Modulation mod) {
  static const std::array<simd::DemapAxes, 4> axes{
      make_axes(Modulation::kBpsk), make_axes(Modulation::kQpsk),
      make_axes(Modulation::kQam16), make_axes(Modulation::kQam64)};
  switch (mod) {
    case Modulation::kBpsk: return axes[0];
    case Modulation::kQpsk: return axes[1];
    case Modulation::kQam16: return axes[2];
    case Modulation::kQam64: return axes[3];
  }
  WITAG_ENSURE(false);
  return axes[0];
}

}  // namespace

std::span<const Cx> constellation_points(Modulation mod) {
  return table_for(mod);
}

CxVec map_bits(std::span<const std::uint8_t> bits, Modulation mod) {
  const unsigned n = bits_per_symbol(mod);
  WITAG_REQUIRE(bits.size() % n == 0);
  const CxVec& table = table_for(mod);
  CxVec points(bits.size() / n);
  for (std::size_t p = 0; p < points.size(); ++p) {
    unsigned index = 0;
    for (unsigned b = 0; b < n; ++b) {
      index |= static_cast<unsigned>(bits[p * n + b] & 1u) << b;
    }
    points[p] = table[index];
  }
  return points;
}

util::BitVec demap_hard(std::span<const Cx> points, Modulation mod) {
  const unsigned n = bits_per_symbol(mod);
  const CxVec& table = table_for(mod);
  util::BitVec bits;
  bits.reserve(points.size() * n);
  for (const Cx& y : points) {
    unsigned best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (unsigned i = 0; i < table.size(); ++i) {
      const double d = std::norm(y - table[i]);
      if (d < best_dist) {
        best_dist = d;
        best = i;
      }
    }
    for (unsigned b = 0; b < n; ++b) {
      bits.push_back(static_cast<std::uint8_t>((best >> b) & 1u));
    }
  }
  return bits;
}

std::vector<double> demap_soft(std::span<const Cx> points, Modulation mod,
                               double noise_var) {
  WITAG_REQUIRE(noise_var > 0.0);
  const std::vector<double> vars(points.size(), noise_var);
  return demap_soft(points, mod, vars);
}

std::vector<double> demap_soft(std::span<const Cx> points, Modulation mod,
                               std::span<const double> noise_vars) {
  std::vector<double> llrs;
  demap_soft_into(points, mod, noise_vars, llrs);
  return llrs;
}

void demap_soft_into(std::span<const Cx> points, Modulation mod,
                     std::span<const double> noise_vars,
                     std::vector<double>& out) {
  WITAG_REQUIRE(points.size() == noise_vars.size());
  const simd::DemapAxes& ax = axes_for(mod);
  out.resize(points.size() * ax.n_bits);
  const simd::DemapBlockFn kernel =
      simd::demap_block_for(simd::active_tier());
  // Split the interleaved points into SoA chunks for the kernel; the
  // per-point math is chunk-independent, so any chunk size gives the
  // same LLRs (the batch decoder stages whole fields without chunking).
  constexpr std::size_t kChunk = 64;
  std::array<double, kChunk> re;
  std::array<double, kChunk> im;
  for (std::size_t base = 0; base < points.size(); base += kChunk) {
    const std::size_t count = std::min(kChunk, points.size() - base);
    for (std::size_t c = 0; c < count; ++c) {
      re[c] = points[base + c].real();
      im[c] = points[base + c].imag();
      WITAG_REQUIRE(noise_vars[base + c] > 0.0);
    }
    kernel(re.data(), im.data(), noise_vars.data() + base, count, ax,
           out.data() + base * ax.n_bits);
  }
}

void demap_soft_soa(const double* re, const double* im,
                    const double* noise_vars, std::size_t count,
                    Modulation mod, double* out) {
  const simd::DemapAxes& ax = axes_for(mod);
  for (std::size_t p = 0; p < count; ++p) {
    WITAG_REQUIRE(noise_vars[p] > 0.0);
  }
  simd::demap_block_for(simd::active_tier())(re, im, noise_vars, count, ax,
                                             out);
}

namespace detail {

std::vector<double> demap_soft_reference(std::span<const Cx> points,
                                         Modulation mod,
                                         std::span<const double> noise_vars) {
  WITAG_REQUIRE(points.size() == noise_vars.size());
  const unsigned n = bits_per_symbol(mod);
  const CxVec& table = table_for(mod);
  std::vector<double> out(points.size() * n);
  std::size_t w = 0;
  for (std::size_t p = 0; p < points.size(); ++p) {
    const Cx& y = points[p];
    const double noise_var = noise_vars[p];
    WITAG_REQUIRE(noise_var > 0.0);
    for (unsigned b = 0; b < n; ++b) {
      double min0 = std::numeric_limits<double>::infinity();
      double min1 = std::numeric_limits<double>::infinity();
      for (unsigned i = 0; i < table.size(); ++i) {
        const double d = std::norm(y - table[i]);
        if ((i >> b) & 1u) {
          min1 = std::min(min1, d);
        } else {
          min0 = std::min(min0, d);
        }
      }
      // Max-log LLR; positive favors bit value 0.
      out[w++] = (min1 - min0) / noise_var;
    }
  }
  return out;
}

}  // namespace detail

}  // namespace witag::phy
