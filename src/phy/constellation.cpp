#include "phy/constellation.hpp"

#include <array>
#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace witag::phy {
namespace {

using util::Cx;
using util::CxVec;

// 802.11 Gray-coded PAM levels. For 16-QAM the two bits (b0 b1) select
// the I level via 00->-3, 01->-1, 11->+1, 10->+3; 64-QAM extends the
// same Gray pattern to 8 levels.
double pam2(unsigned bits) { return bits ? 1.0 : -1.0; }

double pam4(unsigned bits) {
  switch (bits & 0x3u) {
    case 0b00: return -3.0;
    case 0b01: return -1.0;
    case 0b11: return 1.0;
    default: return 3.0;  // 0b10
  }
}

double pam8(unsigned bits) {
  switch (bits & 0x7u) {
    case 0b000: return -7.0;
    case 0b001: return -5.0;
    case 0b011: return -3.0;
    case 0b010: return -1.0;
    case 0b110: return 1.0;
    case 0b111: return 3.0;
    case 0b101: return 5.0;
    default: return 7.0;  // 0b100
  }
}

// Builds the point table for a modulation; entry i is the point whose
// LSB-first bit pattern encodes i. First half of the bits selects I,
// second half selects Q (matching the standard's b0..b(N-1) split).
CxVec make_table(Modulation mod) {
  const unsigned n = bits_per_symbol(mod);
  const unsigned count = 1u << n;
  CxVec table(count);
  for (unsigned i = 0; i < count; ++i) {
    double re = 0.0;
    double im = 0.0;
    double norm = 1.0;
    switch (mod) {
      case Modulation::kBpsk:
        re = pam2(i & 1u);
        im = 0.0;
        norm = 1.0;
        break;
      case Modulation::kQpsk:
        re = pam2(i & 1u);
        im = pam2((i >> 1) & 1u);
        norm = std::sqrt(2.0);
        break;
      case Modulation::kQam16:
        re = pam4(i & 0x3u);
        im = pam4((i >> 2) & 0x3u);
        norm = std::sqrt(10.0);
        break;
      case Modulation::kQam64:
        re = pam8(i & 0x7u);
        im = pam8((i >> 3) & 0x7u);
        norm = std::sqrt(42.0);
        break;
    }
    table[i] = Cx{re / norm, im / norm};
  }
  return table;
}

const CxVec kBpskTable = make_table(Modulation::kBpsk);
const CxVec kQpskTable = make_table(Modulation::kQpsk);
const CxVec kQam16Table = make_table(Modulation::kQam16);
const CxVec kQam64Table = make_table(Modulation::kQam64);

const CxVec& table_for(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return kBpskTable;
    case Modulation::kQpsk: return kQpskTable;
    case Modulation::kQam16: return kQam16Table;
    case Modulation::kQam64: return kQam64Table;
  }
  WITAG_ENSURE(false);
  return kBpskTable;
}

}  // namespace

std::span<const Cx> constellation_points(Modulation mod) {
  return table_for(mod);
}

CxVec map_bits(std::span<const std::uint8_t> bits, Modulation mod) {
  const unsigned n = bits_per_symbol(mod);
  WITAG_REQUIRE(bits.size() % n == 0);
  const CxVec& table = table_for(mod);
  CxVec points(bits.size() / n);
  for (std::size_t p = 0; p < points.size(); ++p) {
    unsigned index = 0;
    for (unsigned b = 0; b < n; ++b) {
      index |= static_cast<unsigned>(bits[p * n + b] & 1u) << b;
    }
    points[p] = table[index];
  }
  return points;
}

util::BitVec demap_hard(std::span<const Cx> points, Modulation mod) {
  const unsigned n = bits_per_symbol(mod);
  const CxVec& table = table_for(mod);
  util::BitVec bits;
  bits.reserve(points.size() * n);
  for (const Cx& y : points) {
    unsigned best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (unsigned i = 0; i < table.size(); ++i) {
      const double d = std::norm(y - table[i]);
      if (d < best_dist) {
        best_dist = d;
        best = i;
      }
    }
    for (unsigned b = 0; b < n; ++b) {
      bits.push_back(static_cast<std::uint8_t>((best >> b) & 1u));
    }
  }
  return bits;
}

std::vector<double> demap_soft(std::span<const Cx> points, Modulation mod,
                               double noise_var) {
  WITAG_REQUIRE(noise_var > 0.0);
  const std::vector<double> vars(points.size(), noise_var);
  return demap_soft(points, mod, vars);
}

std::vector<double> demap_soft(std::span<const Cx> points, Modulation mod,
                               std::span<const double> noise_vars) {
  std::vector<double> llrs;
  demap_soft_into(points, mod, noise_vars, llrs);
  return llrs;
}

void demap_soft_into(std::span<const Cx> points, Modulation mod,
                     std::span<const double> noise_vars,
                     std::vector<double>& out) {
  WITAG_REQUIRE(points.size() == noise_vars.size());
  const unsigned n = bits_per_symbol(mod);
  const CxVec& table = table_for(mod);
  out.resize(points.size() * n);
  std::size_t w = 0;
  for (std::size_t p = 0; p < points.size(); ++p) {
    const Cx& y = points[p];
    const double noise_var = noise_vars[p];
    WITAG_REQUIRE(noise_var > 0.0);
    for (unsigned b = 0; b < n; ++b) {
      double min0 = std::numeric_limits<double>::infinity();
      double min1 = std::numeric_limits<double>::infinity();
      for (unsigned i = 0; i < table.size(); ++i) {
        const double d = std::norm(y - table[i]);
        if ((i >> b) & 1u) {
          min1 = std::min(min1, d);
        } else {
          min0 = std::min(min0, d);
        }
      }
      // Max-log LLR; positive favors bit value 0.
      out[w++] = (min1 - min0) / noise_var;
    }
  }
}

}  // namespace witag::phy
