// 802.11 BCC: rate-1/2 convolutional encoder with constraint length 7 and
// generator polynomials g0 = 133 (octal), g1 = 171 (octal), plus the
// standard puncturing patterns for rates 2/3, 3/4 and 5/6.
#pragma once

#include <cstdint>
#include <span>
#include <vector>
#include <cstddef>

#include "phy/mcs.hpp"
#include "util/bits.hpp"

namespace witag::phy {

inline constexpr unsigned kConstraintLength = 7;
inline constexpr unsigned kNumStates = 1u << (kConstraintLength - 1);
inline constexpr std::uint8_t kGenPolyA = 0x5B;  // 133 octal, bit-reversed taps
inline constexpr std::uint8_t kGenPolyB = 0x79;  // 171 octal

/// Encodes at mother rate 1/2: each input bit yields output pair (A, B).
/// The encoder starts from the all-zero state; callers append 6 zero tail
/// bits to terminate the trellis (the PPDU layer does this).
util::BitVec convolutional_encode(std::span<const std::uint8_t> bits);

/// Punctures rate-1/2 output to the given rate by deleting bits in the
/// standard pattern. Identity for rate 1/2.
util::BitVec puncture(std::span<const std::uint8_t> coded, CodeRate rate);

/// Inserts zero-LLR erasures where `puncture` deleted bits, restoring the
/// mother-rate stream for the Viterbi decoder. `n_coded_bits` is the
/// mother-rate length to restore (must be even).
std::vector<double> depuncture(std::span<const double> llrs, CodeRate rate,
                               std::size_t n_coded_bits);

/// Allocation-reusing variant: writes into `out` (resized; capacity
/// reused) for the hot decode path.
void depuncture_into(std::span<const double> llrs, CodeRate rate,
                     std::size_t n_coded_bits, std::vector<double>& out);

/// Mother-rate coded length -> punctured length for a code rate.
std::size_t punctured_length(std::size_t mother_bits, CodeRate rate);

/// The puncturing keep-mask over one period of (A, B) pairs.
/// Element 2k is pair k's A bit, element 2k+1 its B bit.
std::span<const std::uint8_t> puncture_pattern(CodeRate rate);

namespace detail {

/// The original popcount-per-bit encoder, kept as the specification the
/// LUT-driven convolutional_encode is parity-tested against.
util::BitVec convolutional_encode_reference(std::span<const std::uint8_t> bits);

}  // namespace detail

}  // namespace witag::phy
