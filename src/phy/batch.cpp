#include "phy/batch.hpp"

#include <array>
#include <cstdint>
#include <cstddef>

#include "obs/obs.hpp"
#include "phy/constellation.hpp"
#include "phy/interleaver.hpp"
#include "phy/plcp.hpp"
#include "phy/scrambler.hpp"
#include "util/require.hpp"

namespace witag::phy {
namespace {

constexpr std::size_t kServiceBits = 16;
constexpr std::size_t kTailBits = 6;

template <typename T>
std::size_t vec_capacity_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace

std::size_t BatchDecoder::capacity_bytes() const {
  std::size_t total = vec_capacity_bytes(re_) + vec_capacity_bytes(im_) +
                      vec_capacity_bytes(nv_) + vec_capacity_bytes(llr_) +
                      vec_capacity_bytes(plans_);
  for (const DecodeScratch& sc : scratch_) total += sc.capacity_bytes();
  return total;
}

std::span<const RxResult> BatchDecoder::decode(
    std::span<const std::span<const FreqSymbol>> lanes, const RxConfig& cfg) {
  WITAG_SPAN_CAT("phy.batch", "phy");
  const std::size_t n = lanes.size();
  WITAG_COUNT("phy.batch.decodes", 1);
  WITAG_COUNT("phy.batch.lanes", n);
  const std::size_t capacity_before = capacity_bytes();

  if (scratch_.size() < n) scratch_.resize(n);  // grow-only: lanes keep
  plans_.resize(n);                             // their warmed buffers
  results_.resize(n);
  re_.clear();
  im_.clear();
  nv_.clear();

  // Phase 1 — per-lane header decode (channel estimate + SIG, same
  // scalar path as receive(): SIG is two BPSK symbols, not worth
  // staging) and SoA staging of every decodable lane's data symbols.
  for (std::size_t l = 0; l < n; ++l) {
    const std::span<const FreqSymbol> syms = lanes[l];
    DecodeScratch& sc = scratch_[l];
    RxResult& res = results_[l];
    LanePlan& plan = plans_[l];
    plan = LanePlan{};
    res.sig_ok = false;
    res.sig = HtSig{};  // results_ is reused: drop any stale header
    res.psdu.clear();
    WITAG_REQUIRE(syms.size() >= kHeaderSlots);

    res.estimate = estimate_channel(syms.subspan(kStfSlots, kLtfSlots));
    detail::field_llrs_into(syms.subspan(kPreambleSlots, kSigSymbols),
                            res.estimate, Modulation::kBpsk, 0,
                            cfg.cpe_correction, sc);
    detail::field_bits_from_llrs(CodeRate::kHalf, 0, sc);
    const auto sig = decode_sig(sc.bits);
    if (!sig || sig->mcs_index >= kNumMcs || sig->length == 0) {
      continue;  // header unusable; receiver drops the PPDU
    }
    res.sig = *sig;

    const McsParams& m = mcs(res.sig.mcs_index);
    const std::size_t n_sym = data_symbols_for(res.sig.length, m);
    if (syms.size() < kHeaderSlots + n_sym) {
      continue;  // truncated capture; treat as undecodable
    }
    res.sig_ok = true;
    plan.data_ok = true;
    plan.mod = m.modulation;
    plan.rate = m.rate;
    plan.n_sym = n_sym;
    plan.field_bits = kServiceBits + 8 * res.sig.length + kTailBits;
    plan.point_off = re_.size();
    for (std::size_t s = 0; s < n_sym; ++s) {
      equalize_into(syms[kHeaderSlots + s], res.estimate, kSigSymbols + s,
                    cfg.cpe_correction, sc.eq);
      for (const util::Cx& y : sc.eq.points) {
        re_.push_back(y.real());
        im_.push_back(y.imag());
      }
      nv_.insert(nv_.end(), sc.eq.noise_vars.begin(),
                 sc.eq.noise_vars.end());
    }
    plan.n_points = re_.size() - plan.point_off;
  }

  // Phase 2 — lockstep soft demap: one kernel sweep per lane over its
  // whole staged field (the SIMD kernels chew through all lanes'
  // points back to back; per-point math is position-independent, so
  // the LLRs match receive()'s per-symbol calls bit for bit).
  std::size_t total_llrs = 0;
  for (std::size_t l = 0; l < n; ++l) {
    LanePlan& plan = plans_[l];
    if (!plan.data_ok) continue;
    plan.llr_off = total_llrs;
    total_llrs += plan.n_points * bits_per_symbol(plan.mod);
  }
  llr_.resize(total_llrs);
  for (std::size_t l = 0; l < n; ++l) {
    const LanePlan& plan = plans_[l];
    if (!plan.data_ok) continue;
    demap_soft_soa(re_.data() + plan.point_off, im_.data() + plan.point_off,
                   nv_.data() + plan.point_off, plan.n_points, plan.mod,
                   llr_.data() + plan.llr_off);
  }

  // Phase 3 — per-lane tail: deinterleave each symbol's LLR slice, then
  // depuncture, Viterbi-decode, descramble and pack the PSDU, all into
  // reused lane buffers.
  for (std::size_t l = 0; l < n; ++l) {
    const LanePlan& plan = plans_[l];
    if (!plan.data_ok) continue;
    DecodeScratch& sc = scratch_[l];
    RxResult& res = results_[l];
    const unsigned n_cbps =
        kDataSubcarriers * bits_per_symbol(plan.mod);
    sc.llrs.clear();
    sc.llrs.reserve(plan.n_sym * n_cbps);
    for (std::size_t s = 0; s < plan.n_sym; ++s) {
      const std::span<const double> sym_llrs(
          llr_.data() + plan.llr_off + s * n_cbps, n_cbps);
      deinterleave_llrs_into(sym_llrs, plan.mod, sc.deint);
      sc.llrs.insert(sc.llrs.end(), sc.deint.begin(), sc.deint.end());
    }
    detail::field_bits_from_llrs(plan.rate, plan.field_bits, sc);

    descramble_recover_into(sc.bits, sc.plain);
    const std::size_t payload_bits = 8 * res.sig.length;
    WITAG_ENSURE(sc.plain.size() >= kServiceBits + payload_bits);
    const std::span<const std::uint8_t> payload(
        sc.plain.data() + kServiceBits, payload_bits);
    util::bits_to_bytes_into(payload, res.psdu);
  }

  if (n > 0 && capacity_bytes() == capacity_before) {
    WITAG_COUNT("phy.batch.scratch_reuses", 1);
  }
#if WITAG_OBS_ENABLED
  static obs::Gauge& scratch_gauge = obs::gauge("phy.batch.scratch_bytes");
  scratch_gauge.set(static_cast<double>(capacity_bytes()));
#endif
  return {results_.data(), n};
}

const RxResult& BatchDecoder::decode_one(std::span<const FreqSymbol> symbols,
                                         const RxConfig& cfg) {
  one_lane_[0] = symbols;
  return decode(std::span<const std::span<const FreqSymbol>>(
                    one_lane_.data(), 1),
                cfg)[0];
}

}  // namespace witag::phy
