#include "phy/scrambler.hpp"

#include "util/require.hpp"
#include <cstddef>

namespace witag::phy {
namespace {

// One LFSR step: returns the output bit and advances the 7-bit state.
constexpr std::uint8_t lfsr_step(std::uint8_t& state) {
  const std::uint8_t out =
      static_cast<std::uint8_t>(((state >> 6) ^ (state >> 3)) & 1u);
  state = static_cast<std::uint8_t>(((state << 1) | out) & 0x7Fu);
  return out;
}

// Byte-at-a-time tables: the keystream is a function of the LFSR state
// alone (the data never feeds back), so eight steps collapse into one
// lookup. kKeystream[s] bit i is the output of step i from state s;
// kNextState[s] is the state after those eight steps.
struct ScramblerTables {
  std::array<std::uint8_t, 128> keystream{};
  std::array<std::uint8_t, 128> next_state{};
};

constexpr ScramblerTables make_scrambler_tables() {
  ScramblerTables t;
  for (std::uint32_t s = 0; s < 128; ++s) {
    std::uint8_t state = static_cast<std::uint8_t>(s);
    std::uint8_t ks = 0;
    for (unsigned i = 0; i < 8; ++i) {
      ks = static_cast<std::uint8_t>(ks | (lfsr_step(state) << i));
    }
    t.keystream[s] = ks;
    t.next_state[s] = state;
  }
  return t;
}

constexpr ScramblerTables kScrTables = make_scrambler_tables();

// XORs the keystream from `state` onto bits[0..n), eight bits per table
// lookup, leaving `state` advanced past the tail.
void apply_keystream(const std::uint8_t* in, std::uint8_t* out,
                     std::size_t n, std::uint8_t& state) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint8_t ks = kScrTables.keystream[state];
    out[i + 0] = static_cast<std::uint8_t>((in[i + 0] ^ ks) & 1u);
    out[i + 1] = static_cast<std::uint8_t>((in[i + 1] ^ (ks >> 1)) & 1u);
    out[i + 2] = static_cast<std::uint8_t>((in[i + 2] ^ (ks >> 2)) & 1u);
    out[i + 3] = static_cast<std::uint8_t>((in[i + 3] ^ (ks >> 3)) & 1u);
    out[i + 4] = static_cast<std::uint8_t>((in[i + 4] ^ (ks >> 4)) & 1u);
    out[i + 5] = static_cast<std::uint8_t>((in[i + 5] ^ (ks >> 5)) & 1u);
    out[i + 6] = static_cast<std::uint8_t>((in[i + 6] ^ (ks >> 6)) & 1u);
    out[i + 7] = static_cast<std::uint8_t>((in[i + 7] ^ (ks >> 7)) & 1u);
    state = kScrTables.next_state[state];
  }
  for (; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>((in[i] ^ lfsr_step(state)) & 1u);
  }
}

}  // namespace

util::BitVec scramble(std::span<const std::uint8_t> bits, std::uint8_t seed) {
  WITAG_REQUIRE(seed >= 1 && seed <= 127);
  std::uint8_t state = seed;
  util::BitVec out(bits.size());
  apply_keystream(bits.data(), out.data(), bits.size(), state);
  return out;
}

util::BitVec descramble_recover(std::span<const std::uint8_t> bits) {
  util::BitVec out;
  descramble_recover_into(bits, out);
  return out;
}

void descramble_recover_into(std::span<const std::uint8_t> bits,
                             util::BitVec& out) {
  WITAG_REQUIRE(bits.size() >= 7);
  // With zero inputs, scrambled bit i equals LFSR output i, and the LFSR
  // state shifts its own output in — so after 7 steps the state is just
  // the first 7 scrambled bits.
  std::uint8_t state = 0;
  for (unsigned i = 0; i < 7; ++i) {
    state = static_cast<std::uint8_t>(((state << 1) | (bits[i] & 1u)) & 0x7Fu);
  }
  out.assign(bits.size(), 0);
  apply_keystream(bits.data() + 7, out.data() + 7, bits.size() - 7, state);
}

const std::array<int, 127>& pilot_polarity_sequence() {
  static const std::array<int, 127> kSequence = [] {
    std::array<int, 127> seq{};
    std::uint8_t state = 0x7F;  // all ones
    for (auto& s : seq) {
      // The polarity sequence maps scrambler output 0 -> +1 and 1 -> -1.
      s = lfsr_step(state) ? -1 : 1;
    }
    return seq;
  }();
  return kSequence;
}

namespace detail {

util::BitVec scramble_reference(std::span<const std::uint8_t> bits,
                                std::uint8_t seed) {
  WITAG_REQUIRE(seed >= 1 && seed <= 127);
  std::uint8_t state = seed;
  util::BitVec out;
  out.reserve(bits.size());
  for (const std::uint8_t b : bits) {
    out.push_back(static_cast<std::uint8_t>((b ^ lfsr_step(state)) & 1u));
  }
  return out;
}

util::BitVec descramble_recover_reference(std::span<const std::uint8_t> bits) {
  WITAG_REQUIRE(bits.size() >= 7);
  std::uint8_t state = 0;
  for (unsigned i = 0; i < 7; ++i) {
    state = static_cast<std::uint8_t>(((state << 1) | (bits[i] & 1u)) & 0x7Fu);
  }
  util::BitVec out(bits.size(), 0);
  for (std::size_t i = 7; i < bits.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((bits[i] ^ lfsr_step(state)) & 1u);
  }
  return out;
}

}  // namespace detail

}  // namespace witag::phy
