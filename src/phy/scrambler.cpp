#include "phy/scrambler.hpp"

#include "util/require.hpp"

namespace witag::phy {
namespace {

// One LFSR step: returns the output bit and advances the 7-bit state.
std::uint8_t lfsr_step(std::uint8_t& state) {
  const std::uint8_t out =
      static_cast<std::uint8_t>(((state >> 6) ^ (state >> 3)) & 1u);
  state = static_cast<std::uint8_t>(((state << 1) | out) & 0x7Fu);
  return out;
}

}  // namespace

util::BitVec scramble(std::span<const std::uint8_t> bits, std::uint8_t seed) {
  WITAG_REQUIRE(seed >= 1 && seed <= 127);
  std::uint8_t state = seed;
  util::BitVec out;
  out.reserve(bits.size());
  for (const std::uint8_t b : bits) {
    out.push_back(static_cast<std::uint8_t>((b ^ lfsr_step(state)) & 1u));
  }
  return out;
}

util::BitVec descramble_recover(std::span<const std::uint8_t> bits) {
  WITAG_REQUIRE(bits.size() >= 7);
  // With zero inputs, scrambled bit i equals LFSR output i, and the LFSR
  // state shifts its own output in — so after 7 steps the state is just
  // the first 7 scrambled bits.
  std::uint8_t state = 0;
  for (unsigned i = 0; i < 7; ++i) {
    state = static_cast<std::uint8_t>(((state << 1) | (bits[i] & 1u)) & 0x7Fu);
  }
  util::BitVec out(bits.size(), 0);
  for (std::size_t i = 7; i < bits.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((bits[i] ^ lfsr_step(state)) & 1u);
  }
  return out;
}

const std::array<int, 127>& pilot_polarity_sequence() {
  static const std::array<int, 127> kSequence = [] {
    std::array<int, 127> seq{};
    std::uint8_t state = 0x7F;  // all ones
    for (auto& s : seq) {
      // The polarity sequence maps scrambler output 0 -> +1 and 1 -> -1.
      s = lfsr_step(state) ? -1 : 1;
    }
    return seq;
  }();
  return kSequence;
}

}  // namespace witag::phy
