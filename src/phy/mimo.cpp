#include "phy/mimo.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "phy/constellation.hpp"
#include "util/require.hpp"

namespace witag::phy::mimo {
namespace {

using util::Cx;

constexpr double kSingularEps = 1e-12;

}  // namespace

std::array<util::BitVec, kStreams> stream_parse(
    std::span<const std::uint8_t> bits, Modulation mod) {
  const unsigned s = std::max(bits_per_symbol(mod) / 2, 1u);
  WITAG_REQUIRE(bits.size() % (s * kStreams) == 0);
  std::array<util::BitVec, kStreams> out;
  for (auto& v : out) v.reserve(bits.size() / kStreams);
  std::size_t i = 0;
  unsigned stream = 0;
  while (i < bits.size()) {
    for (unsigned k = 0; k < s; ++k) out[stream].push_back(bits[i++]);
    stream = (stream + 1) % kStreams;
  }
  return out;
}

std::vector<double> stream_deparse_llrs(std::span<const double> s0,
                                        std::span<const double> s1,
                                        Modulation mod) {
  WITAG_REQUIRE(s0.size() == s1.size());
  const unsigned s = std::max(bits_per_symbol(mod) / 2, 1u);
  WITAG_REQUIRE(s0.size() % s == 0);
  std::vector<double> out;
  out.reserve(s0.size() * 2);
  for (std::size_t group = 0; group < s0.size() / s; ++group) {
    for (unsigned k = 0; k < s; ++k) out.push_back(s0[group * s + k]);
    for (unsigned k = 0; k < s; ++k) out.push_back(s1[group * s + k]);
  }
  return out;
}

MimoSymbol map_symbol(std::span<const std::uint8_t> stream0,
                      std::span<const std::uint8_t> stream1, Modulation mod) {
  const unsigned n_bpsc = bits_per_symbol(mod);
  WITAG_REQUIRE(stream0.size() == kDataSubcarriers * n_bpsc && stream1.size() == stream0.size());
  MimoSymbol sym;
  sym.points[0] = map_bits(stream0, mod);
  sym.points[1] = map_bits(stream1, mod);
  return sym;
}

MimoSymbol apply_channel(const MimoSymbol& tx,
                         std::span<const Matrix2> h_per_subcarrier) {
  WITAG_REQUIRE(h_per_subcarrier.size() == tx.points[0].size() && tx.points[0].size() == tx.points[1].size());
  MimoSymbol rx;
  const std::size_t n = tx.points[0].size();
  rx.points[0].resize(n);
  rx.points[1].resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const auto& h = h_per_subcarrier[k].m;
    rx.points[0][k] = h[0][0] * tx.points[0][k] + h[0][1] * tx.points[1][k];
    rx.points[1][k] = h[1][0] * tx.points[0][k] + h[1][1] * tx.points[1][k];
  }
  return rx;
}

ZfResult zero_forcing(const MimoSymbol& rx,
                      std::span<const Matrix2> h_per_subcarrier) {
  WITAG_REQUIRE(h_per_subcarrier.size() == rx.points[0].size() && rx.points[0].size() == rx.points[1].size());
  const std::size_t n = rx.points[0].size();
  ZfResult out;
  for (unsigned s = 0; s < kStreams; ++s) {
    out.detected.points[s].resize(n);
    out.noise_enhancement[s].resize(n);
  }
  for (std::size_t k = 0; k < n; ++k) {
    const auto& h = h_per_subcarrier[k].m;
    const Cx det = h[0][0] * h[1][1] - h[0][1] * h[1][0];
    if (std::abs(det) < kSingularEps) {
      for (unsigned s = 0; s < kStreams; ++s) {
        out.detected.points[s][k] = Cx{};
        out.noise_enhancement[s][k] = 1e18;
      }
      continue;
    }
    // H^-1 = 1/det * [h11 -h01; -h10 h00]
    const std::array<std::array<Cx, 2>, 2> inv{{
        {h[1][1] / det, -h[0][1] / det},
        {-h[1][0] / det, h[0][0] / det},
    }};
    const Cx y0 = rx.points[0][k];
    const Cx y1 = rx.points[1][k];
    out.detected.points[0][k] = inv[0][0] * y0 + inv[0][1] * y1;
    out.detected.points[1][k] = inv[1][0] * y0 + inv[1][1] * y1;
    out.noise_enhancement[0][k] = std::norm(inv[0][0]) + std::norm(inv[0][1]);
    out.noise_enhancement[1][k] = std::norm(inv[1][0]) + std::norm(inv[1][1]);
  }
  return out;
}

}  // namespace witag::phy::mimo
