#include "witag/rateless.hpp"

#include "util/crc.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace witag::core {
namespace {

constexpr std::size_t kDropletHeaderBits = 24;  // preamble + len + seq
constexpr std::size_t kDropletCrcBits = 8;
constexpr std::size_t kMaxDroplets = 256;       // 8-bit seq space
constexpr std::uint64_t kSaltStream = 0x5A17ull;

/// XORs `src` into `dst` (symbol accumulate).
void xor_into(util::ByteVec& dst, std::span<const std::uint8_t> src) {
  WITAG_REQUIRE(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

/// Samples a degree in 1..k from the robust-soliton CDF.
std::size_t sample_degree(util::Rng& rng, const std::vector<double>& pmf) {
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t d = 1; d < pmf.size(); ++d) {
    acc += pmf[d];
    if (u < acc) return d;
  }
  return pmf.size() - 1;
}

}  // namespace

std::size_t rateless_symbols(std::size_t payload_bytes,
                             const RatelessConfig& cfg) {
  WITAG_REQUIRE(cfg.symbol_bytes > 0);
  const std::size_t block_bytes = payload_bytes + 1;  // + payload CRC-8
  return (block_bytes + cfg.symbol_bytes - 1) / cfg.symbol_bytes;
}

std::size_t rateless_nominal_droplets(std::size_t payload_bytes,
                                      const RatelessConfig& cfg) {
  const std::size_t k = rateless_symbols(payload_bytes, cfg);
  const std::size_t headroom = std::max<std::size_t>(2, (k + 1) / 2);
  return std::min(kMaxDroplets, k + headroom);
}

std::size_t droplet_frame_bits(const RatelessConfig& cfg) {
  return kDropletHeaderBits + 8 * cfg.symbol_bytes + kDropletCrcBits;
}

std::vector<double> robust_soliton_pmf(std::size_t k, double c,
                                       double delta) {
  WITAG_REQUIRE(k >= 1);
  std::vector<double> pmf(k + 1, 0.0);
  if (k == 1) {
    pmf[1] = 1.0;
    return pmf;
  }
  // Ideal soliton rho(d).
  pmf[1] = 1.0 / static_cast<double>(k);
  for (std::size_t d = 2; d <= k; ++d) {
    pmf[d] = 1.0 / (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  // Robust spike tau(d) at d = k/R, boosting low degrees so the ripple
  // stays populated (Luby 2002).
  const double kd = static_cast<double>(k);
  const double r = c * std::log(kd / delta) * std::sqrt(kd);
  if (r > 0.0) {
    const auto spike = static_cast<std::size_t>(
        std::min(kd, std::max(1.0, std::floor(kd / r))));
    for (std::size_t d = 1; d < spike; ++d) {
      pmf[d] += r / (static_cast<double>(d) * kd);
    }
    pmf[spike] += r * std::log(r / delta) > 0.0
                      ? r * std::log(r / delta) / kd
                      : 0.0;
  }
  double total = 0.0;
  for (std::size_t d = 1; d <= k; ++d) total += pmf[d];
  for (std::size_t d = 1; d <= k; ++d) pmf[d] /= total;
  return pmf;
}

std::uint8_t rateless_salt(std::uint64_t stream_seed) {
  const auto salt_seed = util::Rng::derive_seed(stream_seed, kSaltStream);
  return static_cast<std::uint8_t>(salt_seed & 0xFFu);
}

std::vector<std::uint32_t> droplet_neighbors(std::uint64_t stream_seed,
                                             std::size_t seq, std::size_t k,
                                             const RatelessConfig& cfg) {
  WITAG_REQUIRE(k >= 1);
  WITAG_REQUIRE(seq < kMaxDroplets);
  if (seq < k) return {static_cast<std::uint32_t>(seq)};
  util::Rng rng(util::Rng::derive_seed(stream_seed, seq));
  const std::vector<double> pmf =
      robust_soliton_pmf(k, cfg.soliton_c, cfg.soliton_delta);
  const std::size_t degree = sample_degree(rng, pmf);
  std::vector<std::uint32_t> neighbors;
  neighbors.reserve(degree);
  while (neighbors.size() < degree) {
    const auto candidate = static_cast<std::uint32_t>(rng.uniform_int(k));
    if (std::find(neighbors.begin(), neighbors.end(), candidate) ==
        neighbors.end()) {
      neighbors.push_back(candidate);
    }
  }
  return neighbors;
}

util::BitVec encode_droplet_frame(std::uint8_t payload_len,
                                  std::uint8_t seq,
                                  std::span<const std::uint8_t> data,
                                  std::uint8_t salt) {
  util::ByteVec check;
  check.push_back(salt);
  check.push_back(payload_len);
  check.push_back(seq);
  check.insert(check.end(), data.begin(), data.end());

  util::BitWriter w;
  w.write(kTagPreamble, 8);
  w.write(payload_len, 8);
  w.write(seq, 8);
  for (const std::uint8_t b : data) w.write(b, 8);
  w.write(util::crc8(check), 8);
  return w.take();
}

std::optional<DecodedDroplet> decode_droplet_frame(
    const ErasedBits& stream, std::size_t offset, std::uint8_t salt,
    const RatelessConfig& cfg) {
  const std::size_t frame_bits = droplet_frame_bits(cfg);
  const std::span<const std::uint8_t> bits(stream.bits);
  for (std::size_t i = offset; i + frame_bits <= bits.size(); ++i) {
    // A frame overlapping an erased span cannot be validated; treat it
    // as lost and keep scanning (the stream stays aligned because the
    // erasure run preserved its length).
    if (!stream.known[i]) continue;
    if (!stream.all_known(i, frame_bits)) continue;
    util::BitReader r(bits.subspan(i, frame_bits));
    if (r.read(8) != kTagPreamble) continue;
    const auto payload_len = static_cast<std::uint8_t>(r.read(8));
    const auto seq = static_cast<std::uint8_t>(r.read(8));
    util::ByteVec data(cfg.symbol_bytes);
    for (auto& b : data) b = static_cast<std::uint8_t>(r.read(8));

    util::ByteVec check;
    check.push_back(salt);
    check.push_back(payload_len);
    check.push_back(seq);
    check.insert(check.end(), data.begin(), data.end());
    if (static_cast<std::uint8_t>(r.read(8)) != util::crc8(check)) continue;

    DecodedDroplet out;
    out.payload_len = payload_len;
    out.seq = seq;
    out.data = std::move(data);
    out.next_offset = i + frame_bits;
    return out;
  }
  return std::nullopt;
}

LtDropletSource::LtDropletSource(std::span<const std::uint8_t> payload,
                                 std::uint64_t stream_seed, RatelessConfig cfg)
    : cfg_(cfg),
      stream_seed_(stream_seed),
      salt_(rateless_salt(stream_seed)),
      payload_bytes_(payload.size()),
      k_(rateless_symbols(payload.size(), cfg)) {
  WITAG_REQUIRE(payload.size() <= kMaxRatelessPayload);
  block_.assign(payload.begin(), payload.end());
  block_.push_back(util::crc8(payload));
  block_.resize(k_ * cfg_.symbol_bytes, 0);
}

util::BitVec LtDropletSource::droplet_frame(std::size_t seq) const {
  WITAG_REQUIRE(seq < kMaxDroplets);
  const std::vector<std::uint32_t> neighbors =
      droplet_neighbors(stream_seed_, seq, k_, cfg_);
  util::ByteVec data(cfg_.symbol_bytes, 0);
  for (const std::uint32_t n : neighbors) {
    xor_into(data, std::span<const std::uint8_t>(block_).subspan(
                       n * cfg_.symbol_bytes, cfg_.symbol_bytes));
  }
  return encode_droplet_frame(static_cast<std::uint8_t>(payload_bytes_),
                              static_cast<std::uint8_t>(seq), data, salt_);
}

util::BitVec LtDropletSource::stream(std::size_t n_droplets) const {
  WITAG_REQUIRE(n_droplets <= kMaxDroplets);
  util::BitVec out;
  out.reserve(n_droplets * droplet_frame_bits(cfg_));
  for (std::size_t seq = 0; seq < n_droplets; ++seq) {
    const util::BitVec frame = droplet_frame(seq);
    out.insert(out.end(), frame.begin(), frame.end());
  }
  return out;
}

LtDecoder::LtDecoder(std::size_t payload_bytes, std::uint64_t stream_seed,
                     RatelessConfig cfg)
    : cfg_(cfg),
      stream_seed_(stream_seed),
      payload_bytes_(payload_bytes),
      k_(rateless_symbols(payload_bytes, cfg)),
      symbols_(k_),
      resolved_(k_, 0),
      seen_seq_(kMaxDroplets, 0) {
  WITAG_REQUIRE(payload_bytes <= kMaxRatelessPayload);
}

bool LtDecoder::add(std::size_t seq, std::span<const std::uint8_t> data) {
  WITAG_REQUIRE(data.size() == cfg_.symbol_bytes);
  WITAG_REQUIRE(seq < kMaxDroplets);
  if (complete_ || poisoned_) return false;
  ++droplets_added_;
  // A tag whose droplet budget wraps retransmits earlier indices; the
  // repeat costs airtime (counted above) but carries no new equations.
  if (seen_seq_[seq]) return false;
  seen_seq_[seq] = 1;

  Pending incoming;
  incoming.data.assign(data.begin(), data.end());
  for (const std::uint32_t n :
       droplet_neighbors(stream_seed_, seq, k_, cfg_)) {
    if (resolved_[n]) {
      xor_into(incoming.data, symbols_[n]);
    } else {
      incoming.neighbors.push_back(n);
    }
  }
  if (incoming.neighbors.empty()) return false;  // Fully covered already.
  if (incoming.neighbors.size() > 1) {
    pending_.push_back(std::move(incoming));
    return false;
  }
  resolve(incoming.neighbors.front(), incoming.data);
  return true;
}

void LtDecoder::resolve(std::uint32_t symbol,
                        std::span<const std::uint8_t> data) {
  // Peeling cascade: resolving one symbol may reduce buffered droplets
  // to degree one, releasing further symbols (the "ripple").
  std::vector<std::pair<std::uint32_t, util::ByteVec>> ripple;
  ripple.emplace_back(symbol, util::ByteVec(data.begin(), data.end()));
  while (!ripple.empty()) {
    const auto [sym, value] = std::move(ripple.back());
    ripple.pop_back();
    if (resolved_[sym]) continue;
    symbols_[sym] = value;
    resolved_[sym] = 1;
    ++resolved_count_;
    last_progress_at_ = droplets_added_;

    std::size_t write = 0;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      Pending& p = pending_[i];
      const auto it = std::find(p.neighbors.begin(), p.neighbors.end(), sym);
      if (it != p.neighbors.end()) {
        p.neighbors.erase(it);
        xor_into(p.data, value);
      }
      if (p.neighbors.size() == 1 && !resolved_[p.neighbors.front()]) {
        ripple.emplace_back(p.neighbors.front(), std::move(p.data));
        continue;  // Consumed; drop from pending.
      }
      if (p.neighbors.empty()) continue;  // Redundant now; drop.
      if (write != i) pending_[write] = std::move(p);
      ++write;
    }
    pending_.resize(write);
  }
  if (resolved_count_ == k_) finish();
}

void LtDecoder::finish() {
  util::ByteVec block;
  block.reserve(k_ * cfg_.symbol_bytes);
  for (const util::ByteVec& s : symbols_) {
    block.insert(block.end(), s.begin(), s.end());
  }
  const std::span<const std::uint8_t> payload(block.data(), payload_bytes_);
  if (block[payload_bytes_] != util::crc8(payload)) {
    // A corrupt droplet slipped past its frame CRC and was XORed into
    // the solution; the decode is unrecoverable for this stream.
    poisoned_ = true;
    return;
  }
  payload_.assign(payload.begin(), payload.end());
  complete_ = true;
}

bool LtDecoder::stalled(std::size_t window) const {
  if (complete_ || poisoned_) return false;
  return droplets_added_ >= last_progress_at_ + window;
}

}  // namespace witag::core
