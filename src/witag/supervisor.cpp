#include "witag/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <cstddef>

#include "obs/obs.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/bits.hpp"
#include "util/units.hpp"
#include "witag/rateless.hpp"

namespace witag::core {
namespace {

/// One FEC step up the robustness ladder (no step from the strongest).
/// kRateless is a fixed point: the fountain already adapts its rate
/// droplet by droplet, so there is no stronger code to jump to — the
/// learned overhead ratio absorbs what FEC escalation did for
/// repetition.
TagFec stronger_fec(TagFec fec) {
  switch (fec) {
    case TagFec::kNone:
      return TagFec::kRepetition3;
    case TagFec::kRepetition3:
    case TagFec::kHamming74:
      return TagFec::kRepetition5;
    case TagFec::kRepetition5:
      return TagFec::kRepetition5;
    case TagFec::kRateless:
      return TagFec::kRateless;
  }
  return TagFec::kRepetition5;
}

/// One FEC step back down, never below `floor`.
TagFec weaker_fec(TagFec fec, TagFec floor) {
  if (fec == floor) return fec;
  switch (fec) {
    case TagFec::kRepetition5:
      return floor == TagFec::kHamming74 ? TagFec::kHamming74
                                         : TagFec::kRepetition3;
    case TagFec::kRepetition3:
      return floor;
    case TagFec::kNone:
    case TagFec::kHamming74:
    case TagFec::kRateless:
      return fec;
  }
  return fec;
}

}  // namespace

double LinkSupervisor::Stats::goodput_kbps() const {
  const util::Micros total = airtime_us + backoff_us;
  if (total <= util::Micros{0.0}) return 0.0;
  const double bits = static_cast<double>(payload_bytes_ok * 8);
  return bits / (total.value() / 1e6) / 1e3;
}

BurstPredictor::BurstPredictor(double alpha, double skip_threshold,
                               std::size_t max_consecutive_skips)
    : alpha_(alpha),
      threshold_(skip_threshold),
      max_skips_(max_consecutive_skips) {
  WITAG_REQUIRE(alpha > 0.0 && alpha <= 1.0);
  WITAG_REQUIRE(skip_threshold > 0.0 && skip_threshold < 1.0);
  WITAG_REQUIRE(max_consecutive_skips > 0);
}

void BurstPredictor::observe(bool lost) {
  const double x = lost ? 1.0 : 0.0;
  p_loss_ += alpha_ * (x - p_loss_);
  if (prev_lost_) {
    // This transition started from a lost round: it is exactly one
    // sample of the burst-persistence statistic.
    p_continue_ += alpha_ * (x - p_continue_);
  }
  prev_lost_ = lost;
  skips_in_row_ = 0;
}

bool BurstPredictor::should_skip() {
  // Skip only while the last *observed* round was lost and bursts are
  // sticky enough that the next one probably is too. The consecutive-
  // skip cap forces a probe round that discovers the burst's end —
  // without it a persistent estimate would starve the link forever.
  if (!prev_lost_ || p_continue_ <= threshold_ ||
      skips_in_row_ >= max_skips_) {
    return false;
  }
  ++skips_in_row_;
  ++skips_total_;
  WITAG_COUNT("supervisor.skips", 1);
  // Distribution of skip-run lengths: p99 near max_consecutive_skips
  // means the cap binds (bursts outlast the patience).
  WITAG_HDR("supervisor.skip_predictions",
            static_cast<double>(skips_in_row_));
  return true;
}

LinkSupervisor::LinkSupervisor(Reader& reader, SupervisorConfig cfg)
    : reader_(reader),
      cfg_(cfg),
      payload_bytes_(cfg.payload_bytes),
      overhead_(cfg.overhead_init),
      top_mcs_(reader.session().current_mcs()),
      base_fec_(reader.fec()),
      entry_budget_(reader.config().max_rounds_per_frame) {
  WITAG_REQUIRE(cfg.payload_bytes >= cfg.min_payload_bytes);
  WITAG_REQUIRE(cfg.min_payload_bytes > 0);
  WITAG_REQUIRE(cfg.window > 0);
  WITAG_REQUIRE(cfg.escalate_fail_rate > 0.0 && cfg.escalate_fail_rate <= 1.0);
  WITAG_REQUIRE(cfg.recover_fail_rate >= 0.0 &&
                cfg.recover_fail_rate <= cfg.escalate_fail_rate);
  WITAG_REQUIRE(cfg.backoff_base_us > util::Micros{0.0});
  WITAG_REQUIRE(cfg.backoff_factor >= 1.0);
  WITAG_REQUIRE(cfg.probe_period > 0);
  WITAG_REQUIRE(cfg.overhead_alpha > 0.0 && cfg.overhead_alpha <= 1.0);
  WITAG_REQUIRE(cfg.overhead_init >= 1.0);
  if (cfg.predictive && reader.fec() == TagFec::kRateless) {
    predictor_.emplace(cfg.predict_alpha, cfg.skip_threshold,
                       cfg.max_consecutive_skips);
    reader_.set_scheduler(&*predictor_);
  }
  retune_budget();
}

LinkSupervisor::~LinkSupervisor() {
  if (predictor_) reader_.set_scheduler(nullptr);
}

unsigned LinkSupervisor::mcs() const {
  return reader_.session().current_mcs();
}

double LinkSupervisor::window_fail_rate() const {
  if (window_.empty()) return 0.0;
  std::size_t failed = 0;
  for (const bool ok : window_) failed += ok ? 0 : 1;
  return static_cast<double>(failed) / static_cast<double>(window_.size());
}

void LinkSupervisor::record_outcome(bool ok) {
  window_.push_back(ok);
  while (window_.size() > cfg_.window) window_.pop_front();
}

util::ByteVec LinkSupervisor::next_payload(unsigned address) {
  // Payload content depends only on (address, sequence), never on the
  // ladder state, so supervised and unsupervised runs move comparable
  // data.
  util::Rng rng(util::Rng::derive_seed(0x70AD'0000ull + address, sequence_));
  return rng.bytes(payload_bytes_);
}

std::size_t LinkSupervisor::expected_frame_bits(
    TagFec fec, std::size_t payload_bytes) const {
  if (fec != TagFec::kRateless) return tag_frame_bits(payload_bytes, fec);
  // A rateless delivery needs about K * overhead droplets, where the
  // overhead ratio is learned from decode feedback instead of fixed by
  // a repetition count.
  const RatelessConfig rcfg;
  const auto droplets = static_cast<std::size_t>(std::ceil(
      static_cast<double>(rateless_symbols(payload_bytes, rcfg)) *
      overhead_));
  return droplets * droplet_frame_bits(rcfg);
}

bool LinkSupervisor::frame_fits(TagFec fec, std::size_t payload_bytes) const {
  const std::size_t per_round =
      reader_.session().layout().n_data_subframes;
  // A frame must fit in well under the caller's poll budget or lost
  // rounds leave the poll no room to ever complete it: cap at 3/4.
  return expected_frame_bits(fec, payload_bytes) * 4 <=
         entry_budget_ * per_round * 3;
}

void LinkSupervisor::retune_budget() {
  // Size the per-poll budget to the frame actually in flight: twice the
  // nominal round count (hostile channels lose about half the rounds)
  // plus slack. Without this, a poll that will fail burns a budget
  // sized for the largest frame the caller ever planned — the dominant
  // airtime sink under heavy faults. For kRateless the nominal round
  // count tracks the learned overhead, so the budget tightens as the
  // channel proves cheap and relaxes as decodes get expensive.
  const std::size_t per_round =
      reader_.session().layout().n_data_subframes;
  const std::size_t frame_rounds =
      (expected_frame_bits(reader_.fec(), payload_bytes_) + per_round - 1) /
      per_round;
  const std::size_t budget =
      std::min(entry_budget_, std::max<std::size_t>(2 * frame_rounds + 2, 4));
  reader_.set_max_rounds(budget);
}

double LinkSupervisor::probe_rate_health(unsigned address) {
  constexpr int kProbeRounds = 2;  // per side; averaged so one burst
                                   // round can't fake either verdict
  Session& session = reader_.session();
  // Clean side: with the tag idle every subframe should ack.
  double clean = 0.0;
  for (int i = 0; i < kProbeRounds; ++i) {
    clean += session.probe_subframe_success();
  }
  clean /= kProbeRounds;
  // Corrupt side: the tag asserts through every data subframe; each one
  // must FCS-fail or bit 0 is unreadable at this rate. The app payload
  // is reloaded by the next deliver().
  tag::TagDevice& device = session.tag_device(session.tag_index(address));
  device.set_payload(util::BitVec(512, 0));
  double corrupt = 0.0;
  for (int i = 0; i < kProbeRounds; ++i) {
    const auto round = session.run_round_addressed(address);
    // Probes are not free: charge the corrupt round and once more as a
    // stand-in for the clean round (probe_subframe_success does not
    // report its airtime).
    stats_.airtime_us += round.airtime_us + round.airtime_us;
    if (round.lost || round.received.empty()) continue;
    std::size_t corrupted = 0;
    for (const bool b : round.received) corrupted += b ? 0 : 1;
    corrupt += static_cast<double>(corrupted) /
               static_cast<double>(round.received.size());
  }
  corrupt /= kProbeRounds;
  return std::min(clean, corrupt);
}

bool LinkSupervisor::escalate(unsigned address) {
  Session& session = reader_.session();
  // Rung 1: MCS fallback, probe-verified. WiTAG's usable rate band is
  // two-sided (see SupervisorConfig::mcs_probe_threshold), so a
  // candidate rung must pass a clean round AND an all-corrupt round
  // before the ladder steps onto it; a rejected rung is remembered —
  // corruption physics, not channel state, blocks it. Slower rates also
  // must keep a frame inside the poll budget.
  const unsigned entry = session.current_mcs();
  if (entry > cfg_.min_mcs && mcs_blocked_at_ != entry) {
    unsigned mcs = entry;
    while (mcs > cfg_.min_mcs) {
      --mcs;
      try {
        session.set_mcs(mcs);
      } catch (const std::invalid_argument&) {
        // This MCS cannot form a valid query layout; try the next one.
        continue;
      }
      if (!frame_fits(reader_.fec(), payload_bytes_) ||
          probe_rate_health(address) < cfg_.mcs_probe_threshold) {
        session.set_mcs(entry);  // entry rate was valid; restore it
        mcs_blocked_at_ = entry;
        break;
      }
      ++stats_.mcs_fallbacks;
      window_.clear();
      retune_budget();
      WITAG_COUNT("supervisor.mcs_fallbacks", 1);
      WITAG_EVENT1("supervisor.escalate_mcs", "mcs", static_cast<double>(mcs),
                   "supervisor");
      return true;
    }
  }
  // Rung 2: frame shrink. Hostile channels here lose whole rounds
  // (bursts over the PLCP, lost block acks, brownouts), so the winning
  // move is a frame short enough to complete between loss clusters —
  // measured, this beats stronger FEC at every intensity.
  if (payload_bytes_ > cfg_.min_payload_bytes) {
    payload_bytes_ = std::max(cfg_.min_payload_bytes, payload_bytes_ / 2);
    ++stats_.frame_shrinks;
    window_.clear();
    retune_budget();
    WITAG_COUNT("supervisor.frame_shrinks", 1);
    WITAG_EVENT1("supervisor.escalate_shrink", "payload_bytes",
                 static_cast<double>(payload_bytes_), "supervisor");
    return true;
  }
  // Rung 3: FEC escalation, the last resort — majority over 5 copies
  // only pays once frames are already minimal, because the extra copies
  // stretch the frame back across more rounds.
  const TagFec next = stronger_fec(reader_.fec());
  if (next != reader_.fec() && frame_fits(next, payload_bytes_)) {
    reader_.set_fec(next);
    ++stats_.fec_escalations;
    window_.clear();
    retune_budget();
    WITAG_COUNT("supervisor.fec_escalations", 1);
    WITAG_EVENT1("supervisor.escalate_fec", "fec", static_cast<double>(next),
                 "supervisor");
    return true;
  }
  return false;  // bottom of the ladder; keep grinding
}

bool LinkSupervisor::recover(unsigned address) {
  ++stats_.probes;
  WITAG_COUNT("supervisor.probes", 1);
  Session& session = reader_.session();
  // Undo degradations in reverse escalation order: FEC first (it was
  // applied last), then frame size, the rate last.
  bool stepped = false;
  if (reader_.fec() != base_fec_) {
    reader_.set_fec(weaker_fec(reader_.fec(), base_fec_));
    stepped = true;
  } else if (payload_bytes_ < cfg_.payload_bytes &&
             frame_fits(reader_.fec(),
                        std::min(cfg_.payload_bytes, payload_bytes_ * 2))) {
    payload_bytes_ = std::min(cfg_.payload_bytes, payload_bytes_ * 2);
    stepped = true;
  } else if (session.current_mcs() < top_mcs_) {
    const unsigned entry = session.current_mcs();
    try {
      session.set_mcs(entry + 1);
    } catch (const std::invalid_argument&) {
      return false;
    }
    // Stepping back up must re-pass the two-sided probe: the burst that
    // forced the fallback may still be alive.
    if (probe_rate_health(address) < cfg_.mcs_probe_threshold) {
      session.set_mcs(entry);
      return false;
    }
    mcs_blocked_at_.reset();  // the band moved; allow downward probes again
    stepped = true;
  }
  if (stepped) {
    ++stats_.recoveries;
    window_.clear();
    retune_budget();
    WITAG_COUNT("supervisor.recoveries", 1);
    WITAG_EVENT2("supervisor.recover", "mcs",
                 static_cast<double>(session.current_mcs()), "payload_bytes",
                 static_cast<double>(payload_bytes_), "supervisor");
  }
  return stepped;
}

LinkSupervisor::DeliveryResult LinkSupervisor::deliver(unsigned address) {
  WITAG_SPAN_CAT("supervisor.deliver", "supervisor");
  Session& session = reader_.session();
  const util::ByteVec payload = next_payload(address);
  // Per-delivery droplet stream seed (kRateless; ignored by classic
  // FEC): two-level derive_seed fan-out keeps every (address, sequence)
  // stream independent and worker-count invariant, and the seed-derived
  // droplet CRC salt makes any buffered droplets of the previous
  // delivery visibly stale.
  const std::uint64_t stream_seed = util::Rng::derive_seed(
      util::Rng::derive_seed(0xD2'0917ull, address), sequence_);
  ++sequence_;
  reader_.load_tag(session.tag_index(address), payload, stream_seed);

  DeliveryResult result;
  for (std::size_t attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) {
      // Capped exponential backoff: idle simulated time lets a burst or
      // brownout window expire before the retry spends airtime.
      const double scale =
          std::pow(cfg_.backoff_factor, static_cast<double>(attempt - 1));
      const util::Micros wait =
          std::min(cfg_.backoff_base_us * scale, cfg_.backoff_cap_us);
      session.idle_wait(wait);
      stats_.backoff_us += wait;
      ++result.retries;
      ++stats_.retries;
      WITAG_COUNT("supervisor.retries", 1);
      WITAG_EVENT1("supervisor.backoff", "us", wait.value(), "supervisor");
    }
    Reader::PollResult poll = reader_.poll_frame(address);
    result.rounds += poll.rounds;
    result.airtime_us += poll.airtime_us;
    result.rounds_skipped += poll.rounds_skipped;
    stats_.rounds_skipped += poll.rounds_skipped;
    result.droplets_used += poll.droplets_used;
    stats_.droplets_used += poll.droplets_used;
    if (poll.ok && reader_.fec() == TagFec::kRateless &&
        poll.k_symbols > 0) {
      // Online overhead learning: droplets this delivery consumed per
      // source symbol, folded into the EWMA that sizes future budgets.
      const double ratio = static_cast<double>(poll.droplets_used) /
                           static_cast<double>(poll.k_symbols);
      overhead_ += cfg_.overhead_alpha * (ratio - overhead_);
      obs::gauge("link.rateless.overhead_ratio").set(overhead_);
      retune_budget();
    }
    if (poll.ok) {
      // The supervisor loaded the tag, so it can audit the content: a
      // CRC-valid frame that is not the loaded payload is a false
      // accept (CRC-8 collides ~2^-16 per offset on hostile streams)
      // and must not count as a delivery.
      if (poll.payload != payload) {
        ++stats_.false_frames;
        WITAG_COUNT("supervisor.false_frames", 1);
        continue;
      }
      result.ok = true;
      result.payload = std::move(poll.payload);
      break;
    }
  }

  stats_.airtime_us += result.airtime_us;
  record_outcome(result.ok);
  if (result.ok) {
    ++stats_.deliveries_ok;
    stats_.payload_bytes_ok += result.payload.size();
    ++ok_streak_;
    WITAG_COUNT("supervisor.deliveries_ok", 1);
    if (ok_streak_ >= cfg_.probe_period &&
        window_fail_rate() <= cfg_.recover_fail_rate) {
      ok_streak_ = 0;
      recover(address);
    }
  } else {
    ++stats_.deliveries_failed;
    ok_streak_ = 0;
    WITAG_COUNT("supervisor.deliveries_failed", 1);
    if (window_fail_rate() >= cfg_.escalate_fail_rate &&
        window_.size() >= std::min<std::size_t>(cfg_.window, 2)) {
      escalate(address);
    }
  }
  return result;
}

}  // namespace witag::core
