#include "witag/link.hpp"

#include "util/crc.hpp"
#include "util/require.hpp"
#include "witag/rateless.hpp"
#include <array>
#include <cstddef>
#include <utility>

namespace witag::core {
namespace {

constexpr std::size_t kHeaderRawBits = 16;  // preamble + length
constexpr std::size_t kCrcRawBits = 8;

std::size_t encoded_bits(std::size_t raw_bits, TagFec fec) {
  switch (fec) {
    case TagFec::kNone: return raw_bits;
    case TagFec::kRepetition3: return raw_bits * 3;
    case TagFec::kRepetition5: return raw_bits * 5;
    case TagFec::kHamming74: return (raw_bits / 4) * 7;
    case TagFec::kRateless: break;  // No fixed expansion; handled below.
  }
  WITAG_ENSURE(false);
  return 0;
}

// Hamming(7,4) codeword layout: [p1 p2 d0 p3 d1 d2 d3].
std::array<std::uint8_t, 7> hamming_encode4(std::uint8_t d0, std::uint8_t d1,
                                            std::uint8_t d2, std::uint8_t d3) {
  const std::uint8_t p1 = d0 ^ d1 ^ d3;
  const std::uint8_t p2 = d0 ^ d2 ^ d3;
  const std::uint8_t p3 = d1 ^ d2 ^ d3;
  return {p1, p2, d0, p3, d1, d2, d3};
}

unsigned hamming_syndrome(const std::array<std::uint8_t, 7>& cw) {
  const std::uint8_t s1 = cw[0] ^ cw[2] ^ cw[4] ^ cw[6];
  const std::uint8_t s2 = cw[1] ^ cw[2] ^ cw[5] ^ cw[6];
  const std::uint8_t s3 = cw[3] ^ cw[4] ^ cw[5] ^ cw[6];
  return static_cast<unsigned>(s1) | (static_cast<unsigned>(s2) << 1) |
         (static_cast<unsigned>(s3) << 2);
}

void hamming_emit(FecDecodeResult& result,
                  const std::array<std::uint8_t, 7>& cw) {
  result.bits.push_back(cw[2]);
  result.bits.push_back(cw[4]);
  result.bits.push_back(cw[5]);
  result.bits.push_back(cw[6]);
}

// Rateless frames are decoded by accumulating droplets into an LT
// decoder; the decoder restarts whenever the advertised payload length
// changes (a new frame boundary) or a poisoned decode must be abandoned.
std::optional<DecodedTagFrame> decode_rateless_frame(const ErasedBits& stream,
                                                     std::size_t offset) {
  const RatelessConfig cfg;
  const std::uint8_t salt = rateless_salt(kRatelessDefaultSeed);
  std::optional<LtDecoder> decoder;
  std::size_t cursor = offset;
  while (auto d = decode_droplet_frame(stream, cursor, salt, cfg)) {
    cursor = d->next_offset;
    if (!decoder || decoder->k() != rateless_symbols(d->payload_len, cfg) ||
        decoder->poisoned()) {
      decoder.emplace(d->payload_len, kRatelessDefaultSeed, cfg);
    }
    decoder->add(d->seq, d->data);
    if (decoder->complete()) {
      DecodedTagFrame out;
      out.payload = decoder->payload();
      out.next_offset = cursor;
      return out;
    }
  }
  return std::nullopt;
}

}  // namespace

void ErasedBits::append(std::span<const std::uint8_t> b) {
  bits.insert(bits.end(), b.begin(), b.end());
  known.insert(known.end(), b.size(), std::uint8_t{1});
}

void ErasedBits::append_erasure_run(std::size_t n) {
  bits.insert(bits.end(), n, std::uint8_t{0});
  known.insert(known.end(), n, std::uint8_t{0});
}

void ErasedBits::erase_prefix(std::size_t n) {
  WITAG_REQUIRE(n <= bits.size());
  bits.erase(bits.begin(),
             bits.begin() + static_cast<std::ptrdiff_t>(n));
  known.erase(known.begin(),
              known.begin() + static_cast<std::ptrdiff_t>(n));
}

bool ErasedBits::all_known(std::size_t offset, std::size_t n) const {
  if (offset + n > known.size()) return false;
  for (std::size_t i = offset; i < offset + n; ++i) {
    if (!known[i]) return false;
  }
  return true;
}

util::BitVec fec_encode(std::span<const std::uint8_t> bits, TagFec fec) {
  switch (fec) {
    case TagFec::kNone:
      return util::BitVec(bits.begin(), bits.end());
    case TagFec::kRepetition3:
    case TagFec::kRepetition5: {
      const std::size_t reps = fec == TagFec::kRepetition3 ? 3 : 5;
      util::BitVec out;
      out.reserve(bits.size() * reps);
      for (const std::uint8_t b : bits) {
        for (std::size_t r = 0; r < reps; ++r) out.push_back(b & 1u);
      }
      return out;
    }
    case TagFec::kHamming74: {
      WITAG_REQUIRE(bits.size() % 4 == 0);
      util::BitVec out;
      out.reserve((bits.size() / 4) * 7);
      for (std::size_t i = 0; i < bits.size(); i += 4) {
        const auto cw = hamming_encode4(bits[i] & 1u, bits[i + 1] & 1u,
                                        bits[i + 2] & 1u, bits[i + 3] & 1u);
        out.insert(out.end(), cw.begin(), cw.end());
      }
      return out;
    }
    case TagFec::kRateless:
      break;  // Droplet framing — see src/witag/rateless.hpp.
  }
  WITAG_ENSURE(false);
  return {};
}

FecDecodeResult fec_decode(std::span<const std::uint8_t> bits, TagFec fec) {
  const util::BitVec known(bits.size(), std::uint8_t{1});
  return fec_decode(bits, known, fec);
}

FecDecodeResult fec_decode(std::span<const std::uint8_t> bits,
                           std::span<const std::uint8_t> known, TagFec fec) {
  WITAG_REQUIRE(bits.size() == known.size());
  FecDecodeResult result;
  switch (fec) {
    case TagFec::kNone: {
      result.bits.assign(bits.begin(), bits.end());
      for (const std::uint8_t k : known) {
        if (!k) {
          result.ok = false;
          break;
        }
      }
      return result;
    }
    case TagFec::kRepetition3:
    case TagFec::kRepetition5: {
      const std::size_t reps = fec == TagFec::kRepetition3 ? 3 : 5;
      WITAG_REQUIRE(bits.size() % reps == 0);
      result.bits.reserve(bits.size() / reps);
      for (std::size_t i = 0; i < bits.size(); i += reps) {
        unsigned sum = 0;
        unsigned n_known = 0;
        for (std::size_t r = 0; r < reps; ++r) {
          if (!known[i + r]) continue;
          ++n_known;
          sum += bits[i + r] & 1u;
        }
        if (n_known == 0) {
          // Every copy erased: no information survives for this bit.
          result.ok = false;
          result.bits.push_back(0);
          continue;
        }
        const std::uint8_t majority = sum * 2 >= n_known + 1 ? 1 : 0;
        if (sum != 0 && sum != n_known) ++result.corrected;
        result.bits.push_back(majority);
      }
      return result;
    }
    case TagFec::kHamming74: {
      WITAG_REQUIRE(bits.size() % 7 == 0);
      result.bits.reserve((bits.size() / 7) * 4);
      for (std::size_t i = 0; i < bits.size(); i += 7) {
        std::array<std::uint8_t, 7> cw{};
        std::size_t erased = 7;  // Index of the erased bit, 7 = none.
        std::size_t n_erased = 0;
        for (std::size_t k = 0; k < 7; ++k) {
          cw[k] = bits[i + k] & 1u;
          if (!known[i + k]) {
            erased = k;
            ++n_erased;
          }
        }
        if (n_erased >= 2) {
          // Hamming(7,4) corrects one unknown position; two erasures
          // leave the codeword ambiguous.
          result.ok = false;
          result.bits.insert(result.bits.end(), 4, std::uint8_t{0});
          continue;
        }
        if (n_erased == 1) {
          // Fill the erased position by syndrome consistency: exactly
          // one value yields syndrome 0 when the other six bits are
          // clean; anything else means an additional error.
          cw[erased] = 0;
          if (hamming_syndrome(cw) != 0) {
            cw[erased] = 1;
            if (hamming_syndrome(cw) != 0) {
              result.ok = false;
              result.bits.insert(result.bits.end(), 4, std::uint8_t{0});
              continue;
            }
          }
          ++result.corrected;
          hamming_emit(result, cw);
          continue;
        }
        const unsigned syndrome = hamming_syndrome(cw);
        if (syndrome != 0) {
          cw[syndrome - 1] ^= 1u;
          ++result.corrected;
        }
        hamming_emit(result, cw);
      }
      return result;
    }
    case TagFec::kRateless:
      break;  // Droplet framing — see src/witag/rateless.hpp.
  }
  WITAG_ENSURE(false);
  return result;
}

util::BitVec encode_tag_frame(std::span<const std::uint8_t> payload,
                              TagFec fec) {
  WITAG_REQUIRE(payload.size() <= kMaxTagPayload);
  if (fec == TagFec::kRateless) {
    const RatelessConfig cfg;
    const LtDropletSource source(payload, kRatelessDefaultSeed, cfg);
    return source.stream(rateless_nominal_droplets(payload.size(), cfg));
  }
  util::ByteVec check;
  check.push_back(static_cast<std::uint8_t>(payload.size()));
  check.insert(check.end(), payload.begin(), payload.end());

  util::BitWriter w;
  w.write(kTagPreamble, 8);
  w.write(payload.size(), 8);
  for (const std::uint8_t b : payload) w.write(b, 8);
  w.write(util::crc8(check), 8);
  return fec_encode(w.bits(), fec);
}

std::size_t tag_frame_bits(std::size_t payload_bytes, TagFec fec) {
  if (fec == TagFec::kRateless) {
    const RatelessConfig cfg;
    return rateless_nominal_droplets(payload_bytes, cfg) *
           droplet_frame_bits(cfg);
  }
  return encoded_bits(kHeaderRawBits + 8 * payload_bytes + kCrcRawBits, fec);
}

std::optional<DecodedTagFrame> decode_tag_frame(
    std::span<const std::uint8_t> bits, std::size_t offset, TagFec fec) {
  ErasedBits stream;
  stream.append(bits);
  return decode_tag_frame(stream, offset, fec);
}

std::optional<DecodedTagFrame> decode_tag_frame(const ErasedBits& stream,
                                                std::size_t offset,
                                                TagFec fec) {
  if (fec == TagFec::kRateless) return decode_rateless_frame(stream, offset);
  const std::span<const std::uint8_t> bits(stream.bits);
  const std::span<const std::uint8_t> known(stream.known);
  const std::size_t header_enc = encoded_bits(kHeaderRawBits, fec);
  for (std::size_t i = offset; i + header_enc <= bits.size(); ++i) {
    const FecDecodeResult header = fec_decode(
        bits.subspan(i, header_enc), known.subspan(i, header_enc), fec);
    if (!header.ok) continue;
    util::BitReader r(header.bits);
    if (r.read(8) != kTagPreamble) continue;
    const auto length = static_cast<std::size_t>(r.read(8));
    const std::size_t frame_enc = tag_frame_bits(length, fec);
    if (i + frame_enc > bits.size()) continue;

    const FecDecodeResult body = fec_decode(
        bits.subspan(i, frame_enc), known.subspan(i, frame_enc), fec);
    if (!body.ok) continue;
    util::BitReader br(body.bits);
    br.read(8);  // preamble (already matched)
    util::ByteVec check;
    check.push_back(static_cast<std::uint8_t>(br.read(8)));
    util::ByteVec payload(length);
    for (auto& b : payload) b = static_cast<std::uint8_t>(br.read(8));
    check.insert(check.end(), payload.begin(), payload.end());
    if (static_cast<std::uint8_t>(br.read(8)) != util::crc8(check)) continue;

    DecodedTagFrame out;
    out.payload = std::move(payload);
    out.next_offset = i + frame_enc;
    out.corrected_bits = body.corrected;
    return out;
  }
  return std::nullopt;
}

std::vector<DecodedTagFrame> decode_tag_stream(
    std::span<const std::uint8_t> bits, TagFec fec) {
  ErasedBits stream;
  stream.append(bits);
  return decode_tag_stream(stream, fec);
}

std::vector<DecodedTagFrame> decode_tag_stream(const ErasedBits& stream,
                                               TagFec fec) {
  std::vector<DecodedTagFrame> frames;
  std::size_t offset = 0;
  while (auto frame = decode_tag_frame(stream, offset, fec)) {
    offset = frame->next_offset;
    frames.push_back(std::move(*frame));
  }
  return frames;
}

}  // namespace witag::core
