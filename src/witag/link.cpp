#include "witag/link.hpp"

#include "util/crc.hpp"
#include "util/require.hpp"
#include <array>
#include <cstddef>

namespace witag::core {
namespace {

constexpr std::size_t kHeaderRawBits = 16;  // preamble + length
constexpr std::size_t kCrcRawBits = 8;

std::size_t encoded_bits(std::size_t raw_bits, TagFec fec) {
  switch (fec) {
    case TagFec::kNone: return raw_bits;
    case TagFec::kRepetition3: return raw_bits * 3;
    case TagFec::kRepetition5: return raw_bits * 5;
    case TagFec::kHamming74: return (raw_bits / 4) * 7;
  }
  WITAG_ENSURE(false);
  return 0;
}

// Hamming(7,4) codeword layout: [p1 p2 d0 p3 d1 d2 d3].
std::array<std::uint8_t, 7> hamming_encode4(std::uint8_t d0, std::uint8_t d1,
                                            std::uint8_t d2, std::uint8_t d3) {
  const std::uint8_t p1 = d0 ^ d1 ^ d3;
  const std::uint8_t p2 = d0 ^ d2 ^ d3;
  const std::uint8_t p3 = d1 ^ d2 ^ d3;
  return {p1, p2, d0, p3, d1, d2, d3};
}

}  // namespace

util::BitVec fec_encode(std::span<const std::uint8_t> bits, TagFec fec) {
  switch (fec) {
    case TagFec::kNone:
      return util::BitVec(bits.begin(), bits.end());
    case TagFec::kRepetition3:
    case TagFec::kRepetition5: {
      const std::size_t reps = fec == TagFec::kRepetition3 ? 3 : 5;
      util::BitVec out;
      out.reserve(bits.size() * reps);
      for (const std::uint8_t b : bits) {
        for (std::size_t r = 0; r < reps; ++r) out.push_back(b & 1u);
      }
      return out;
    }
    case TagFec::kHamming74: {
      WITAG_REQUIRE(bits.size() % 4 == 0);
      util::BitVec out;
      out.reserve((bits.size() / 4) * 7);
      for (std::size_t i = 0; i < bits.size(); i += 4) {
        const auto cw = hamming_encode4(bits[i] & 1u, bits[i + 1] & 1u,
                                        bits[i + 2] & 1u, bits[i + 3] & 1u);
        out.insert(out.end(), cw.begin(), cw.end());
      }
      return out;
    }
  }
  WITAG_ENSURE(false);
  return {};
}

FecDecodeResult fec_decode(std::span<const std::uint8_t> bits, TagFec fec) {
  FecDecodeResult result;
  switch (fec) {
    case TagFec::kNone:
      result.bits.assign(bits.begin(), bits.end());
      return result;
    case TagFec::kRepetition3:
    case TagFec::kRepetition5: {
      const std::size_t reps = fec == TagFec::kRepetition3 ? 3 : 5;
      WITAG_REQUIRE(bits.size() % reps == 0);
      result.bits.reserve(bits.size() / reps);
      for (std::size_t i = 0; i < bits.size(); i += reps) {
        unsigned sum = 0;
        for (std::size_t r = 0; r < reps; ++r) sum += bits[i + r] & 1u;
        const std::uint8_t majority = sum * 2 >= reps + 1 ? 1 : 0;
        if (sum != 0 && sum != reps) ++result.corrected;
        result.bits.push_back(majority);
      }
      return result;
    }
    case TagFec::kHamming74: {
      WITAG_REQUIRE(bits.size() % 7 == 0);
      result.bits.reserve((bits.size() / 7) * 4);
      for (std::size_t i = 0; i < bits.size(); i += 7) {
        std::array<std::uint8_t, 7> cw{};
        for (std::size_t k = 0; k < 7; ++k) cw[k] = bits[i + k] & 1u;
        const std::uint8_t s1 = cw[0] ^ cw[2] ^ cw[4] ^ cw[6];
        const std::uint8_t s2 = cw[1] ^ cw[2] ^ cw[5] ^ cw[6];
        const std::uint8_t s3 = cw[3] ^ cw[4] ^ cw[5] ^ cw[6];
        const unsigned syndrome =
            static_cast<unsigned>(s1) | (static_cast<unsigned>(s2) << 1) |
            (static_cast<unsigned>(s3) << 2);
        if (syndrome != 0) {
          cw[syndrome - 1] ^= 1u;
          ++result.corrected;
        }
        result.bits.push_back(cw[2]);
        result.bits.push_back(cw[4]);
        result.bits.push_back(cw[5]);
        result.bits.push_back(cw[6]);
      }
      return result;
    }
  }
  WITAG_ENSURE(false);
  return result;
}

util::BitVec encode_tag_frame(std::span<const std::uint8_t> payload,
                              TagFec fec) {
  WITAG_REQUIRE(payload.size() <= kMaxTagPayload);
  util::ByteVec check;
  check.push_back(static_cast<std::uint8_t>(payload.size()));
  check.insert(check.end(), payload.begin(), payload.end());

  util::BitWriter w;
  w.write(kTagPreamble, 8);
  w.write(payload.size(), 8);
  for (const std::uint8_t b : payload) w.write(b, 8);
  w.write(util::crc8(check), 8);
  return fec_encode(w.bits(), fec);
}

std::size_t tag_frame_bits(std::size_t payload_bytes, TagFec fec) {
  return encoded_bits(kHeaderRawBits + 8 * payload_bytes + kCrcRawBits, fec);
}

std::optional<DecodedTagFrame> decode_tag_frame(
    std::span<const std::uint8_t> bits, std::size_t offset, TagFec fec) {
  const std::size_t header_enc = encoded_bits(kHeaderRawBits, fec);
  for (std::size_t i = offset; i + header_enc <= bits.size(); ++i) {
    const FecDecodeResult header =
        fec_decode(bits.subspan(i, header_enc), fec);
    util::BitReader r(header.bits);
    if (r.read(8) != kTagPreamble) continue;
    const auto length = static_cast<std::size_t>(r.read(8));
    const std::size_t frame_enc = tag_frame_bits(length, fec);
    if (i + frame_enc > bits.size()) continue;

    const FecDecodeResult body = fec_decode(bits.subspan(i, frame_enc), fec);
    util::BitReader br(body.bits);
    br.read(8);  // preamble (already matched)
    util::ByteVec check;
    check.push_back(static_cast<std::uint8_t>(br.read(8)));
    util::ByteVec payload(length);
    for (auto& b : payload) b = static_cast<std::uint8_t>(br.read(8));
    check.insert(check.end(), payload.begin(), payload.end());
    if (static_cast<std::uint8_t>(br.read(8)) != util::crc8(check)) continue;

    DecodedTagFrame out;
    out.payload = std::move(payload);
    out.next_offset = i + frame_enc;
    out.corrected_bits = body.corrected;
    return out;
  }
  return std::nullopt;
}

std::vector<DecodedTagFrame> decode_tag_stream(
    std::span<const std::uint8_t> bits, TagFec fec) {
  std::vector<DecodedTagFrame> frames;
  std::size_t offset = 0;
  while (auto frame = decode_tag_frame(bits, offset, fec)) {
    offset = frame->next_offset;
    frames.push_back(std::move(*frame));
  }
  return frames;
}

}  // namespace witag::core
