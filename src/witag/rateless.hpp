// Rateless (LT fountain) coding for the tag link.
//
// Repetition FEC spends a fixed multiple of every frame bit whether the
// channel needs it or not, and a burst that eats more than the
// repetition budget kills the whole frame. The LT layer instead has the
// tag emit a stream of short, self-delimiting *droplet frames*: each
// carries the XOR of a pseudo-randomly chosen subset of the source
// symbols, the subset derived from (stream seed, droplet index) on both
// sides, so any sufficiently large subset of surviving droplets
// reconstructs the payload (GuardRider / FlexScatter direction,
// PAPERS.md). Corrupt or lost droplets become erasures — the decoder
// just waits for the next one — instead of resync failures.
//
// Droplet frame on the block-ack bit channel:
//
//   preamble (8, 0xB5) | len (8) | seq (8) | data (8*symbol_bytes) | CRC-8
//
// `len` is the source payload length in bytes (so a cold receiver can
// size the decoder), `seq` the droplet index, and the CRC-8 covers a
// stream-seed-derived salt byte plus len|seq|data — droplets from a
// stale stream (previous delivery) fail the CRC instead of silently
// corrupting the decode. The source block is the payload plus a trailing
// CRC-8 of the payload, so a completed decode is end-to-end checked
// before the reader believes it.
//
// Encoding is systematic: droplet seq < K is source symbol seq verbatim
// (clean channels pay ~zero overhead); seq >= K XORs a robust-soliton-
// sampled neighbor set. Degree/neighbor streams hang off
// `Rng::derive_seed(stream_seed, seq)`, the same fan-out discipline as
// the sweep engine, so encoder and decoder agree bit-for-bit at any
// --jobs count.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>
#include <cstddef>

#include "util/bits.hpp"
#include "witag/link.hpp"

namespace witag::core {

struct RatelessConfig {
  /// Source symbol size [bytes]; droplet data field carries one symbol.
  std::size_t symbol_bytes = 2;
  /// Robust-soliton parameters (spike location c, failure bound delta).
  double soliton_c = 0.1;
  double soliton_delta = 0.5;
};

/// Stream seed used by the generic encode_tag_frame/decode_tag_stream
/// entry points (the Reader derives per-delivery seeds instead).
inline constexpr std::uint64_t kRatelessDefaultSeed = 0xD201713ull;

/// Largest payload the 8-bit droplet sequence space supports with
/// comfortable coded-droplet headroom.
inline constexpr std::size_t kMaxRatelessPayload = 128;

/// Source symbol count K for a payload: payload bytes + 1 CRC-8 byte,
/// zero-padded up to a whole number of symbols.
std::size_t rateless_symbols(std::size_t payload_bytes,
                             const RatelessConfig& cfg);

/// Nominal droplet count the generic encode path emits: K systematic
/// droplets plus ~50% coded headroom, capped by the 8-bit seq space.
std::size_t rateless_nominal_droplets(std::size_t payload_bytes,
                                      const RatelessConfig& cfg);

/// On-air bits of one droplet frame (fixed for a config).
std::size_t droplet_frame_bits(const RatelessConfig& cfg);

/// Robust-soliton PMF over degrees 1..K (index 0 unused), normalized.
/// Exposed for the degree-distribution sanity tests.
std::vector<double> robust_soliton_pmf(std::size_t k, double c,
                                       double delta);

/// CRC salt byte shared by every droplet of a stream.
std::uint8_t rateless_salt(std::uint64_t stream_seed);

/// Neighbor set of droplet `seq` for K source symbols (systematic:
/// seq < K yields the singleton {seq}).
std::vector<std::uint32_t> droplet_neighbors(std::uint64_t stream_seed,
                                             std::size_t seq, std::size_t k,
                                             const RatelessConfig& cfg);

/// Tag-side encoder: turns a payload into framed droplet bit streams.
class LtDropletSource {
 public:
  /// Requires payload.size() <= kMaxRatelessPayload.
  LtDropletSource(std::span<const std::uint8_t> payload,
                  std::uint64_t stream_seed, RatelessConfig cfg = {});

  /// One framed droplet. Requires seq < 256.
  util::BitVec droplet_frame(std::size_t seq) const;

  /// Concatenation of droplet frames 0..n_droplets-1 — the bit stream
  /// loaded into the tag. Requires n_droplets <= 256.
  util::BitVec stream(std::size_t n_droplets) const;

  std::size_t k() const { return k_; }
  const RatelessConfig& config() const { return cfg_; }

 private:
  RatelessConfig cfg_;
  std::uint64_t stream_seed_;
  std::uint8_t salt_;
  std::size_t payload_bytes_;
  std::size_t k_;
  util::ByteVec block_;  ///< payload | crc8(payload) | zero pad.
};

/// Reader-side peeling (belief-propagation) decoder. Feed CRC-valid
/// droplets as they surface from the bit stream; `complete()` flips once
/// every symbol is resolved AND the payload CRC-8 checks out.
class LtDecoder {
 public:
  LtDecoder(std::size_t payload_bytes, std::uint64_t stream_seed,
            RatelessConfig cfg = {});

  /// Consumes one droplet. Returns true when it resolved at least one
  /// new symbol (false for duplicates, already-covered combinations, or
  /// droplets buffered pending more peeling).
  bool add(std::size_t seq, std::span<const std::uint8_t> data);

  /// All symbols resolved and the payload CRC-8 verified.
  bool complete() const { return complete_; }
  /// All symbols resolved but the payload CRC-8 failed: a corrupt
  /// droplet slipped past its frame CRC. The decode is unrecoverable
  /// (the poison is XORed in); the poll must fail rather than deliver.
  bool poisoned() const { return poisoned_; }
  /// No symbol resolved in the last `window` droplets consumed — the
  /// stall signal (degree coverage hole) the supervisor's overhead
  /// learner reacts to.
  bool stalled(std::size_t window) const;

  /// Decoded payload; valid only when complete().
  const util::ByteVec& payload() const { return payload_; }

  std::size_t droplets_added() const { return droplets_added_; }
  std::size_t symbols_resolved() const { return resolved_count_; }
  std::size_t k() const { return k_; }

 private:
  struct Pending {
    std::vector<std::uint32_t> neighbors;  ///< Still-unresolved symbols.
    util::ByteVec data;                    ///< XOR-reduced payload.
  };

  void resolve(std::uint32_t symbol, std::span<const std::uint8_t> data);
  void finish();

  RatelessConfig cfg_;
  std::uint64_t stream_seed_;
  std::size_t payload_bytes_;
  std::size_t k_;
  std::vector<util::ByteVec> symbols_;   ///< Resolved symbol data.
  std::vector<std::uint8_t> resolved_;   ///< Flag per symbol.
  std::size_t resolved_count_ = 0;
  std::vector<Pending> pending_;
  std::vector<std::uint8_t> seen_seq_;   ///< Dedup per droplet index.
  std::size_t droplets_added_ = 0;
  std::size_t last_progress_at_ = 0;     ///< droplets_added_ when a
                                         ///< symbol last resolved.
  bool complete_ = false;
  bool poisoned_ = false;
  util::ByteVec payload_;
};

/// One droplet recovered from the bit stream.
struct DecodedDroplet {
  std::uint8_t payload_len = 0;   ///< Source payload bytes (len field).
  std::uint8_t seq = 0;           ///< Droplet index.
  util::ByteVec data;             ///< symbol_bytes of XOR payload.
  std::size_t next_offset = 0;    ///< Stream offset just past the frame.
};

/// Frames one droplet (exposed for tests; LtDropletSource uses it).
util::BitVec encode_droplet_frame(std::uint8_t payload_len,
                                  std::uint8_t seq,
                                  std::span<const std::uint8_t> data,
                                  std::uint8_t salt);

/// Scans `stream` from `offset` for the next droplet frame whose bits
/// are all known (erasure spans are skipped, not misparsed) and whose
/// salted CRC-8 verifies. Returns nullopt when none completes in the
/// remaining stream.
std::optional<DecodedDroplet> decode_droplet_frame(
    const ErasedBits& stream, std::size_t offset, std::uint8_t salt,
    const RatelessConfig& cfg);

}  // namespace witag::core
