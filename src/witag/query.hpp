// Query A-MPDU construction.
//
// Queries exist solely to give the tag subframes to corrupt, so their
// shape is chosen for the tag, not for data transport (paper section
// 4.1):
//  - every subframe has the same on-air duration, an exact whole number
//    of OFDM symbols, so subframe boundaries land on symbol boundaries
//    and the tag's per-symbol corruption stays contained;
//  - the duration is the smallest the tag's clock granularity and guard
//    bands allow (more subframes per second = more tag bits per second);
//  - the first n_trigger subframes carry the alternating high/low
//    envelope pattern the tag's trigger correlator looks for (section 7).
#pragma once

#include <vector>
#include <cstddef>

#include "mac/station.hpp"
#include "phy/ppdu.hpp"
#include "tag/trigger.hpp"
#include "util/units.hpp"
#include "witag/config.hpp"

namespace witag::core {

/// Resolved per-query geometry shared by client and tag models.
struct QueryLayout {
  unsigned mcs_index = 0;
  unsigned symbols_per_subframe = 0;
  std::size_t subframe_bytes = 0;     ///< delimiter + MPDU + pad, on air.
  std::size_t payload_bytes = 0;      ///< plaintext body per subframe.
  unsigned n_subframes = 0;           ///< incl. trigger subframes.
  unsigned n_trigger = 0;
  unsigned trigger_code = 0;          ///< Tag address in the pattern.
  unsigned n_data_subframes = 0;

  util::Micros subframe_duration_us() const;
  /// Start of the first (trigger) subframe relative to PPDU start.
  util::Micros subframes_start_us() const;
  /// Ideal timing as the tag would measure it with a perfect trigger.
  tag::QueryTiming ideal_timing() const;
};

/// Computes the query layout for a config, tag clock tick and guard.
/// Picks the smallest symbols_per_subframe (when cfg.symbols_per_subframe
/// is 0) such that:
///  - subframe bytes are integral and 4-byte aligned (A-MPDU padding),
///  - the MPDU fits header + security overhead (payload >= 0),
///  - a corruption window of at least one OFDM symbol survives the guard
///    bands and tick quantization.
/// Throws when no duration up to 64 symbols satisfies the constraints.
QueryLayout plan_query(const QueryConfig& cfg, unsigned mcs_index,
                       mac::Security security, util::Micros tag_tick,
                       util::Micros tag_guard);

/// A fully built query: the PSDU, the PPDU and the per-symbol-slot
/// envelope scale implementing the trigger pattern.
struct QueryFrame {
  QueryLayout layout;
  phy::TxPpdu ppdu;
  std::vector<double> slot_scale;  ///< One per PPDU symbol slot.
};

/// Builds one query through the client station (sequence numbers and
/// encryption advance in `client`).
QueryFrame build_query(const QueryLayout& layout, mac::Client& client,
                       double trigger_low_scale);

}  // namespace witag::core
