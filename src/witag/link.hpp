// Tag-link framing and error control.
//
// The paper leaves error detection/correction on the tag link as future
// work (section 4.1); this module implements it. A tag frame is
//
//   preamble (8 bits, 0xB5) | length (8 bits) | payload | CRC-8
//
// optionally protected by FEC (3x/5x repetition or Hamming(7,4)) applied
// to the whole frame. The decoder scans a raw bit stream (the concatenated
// block-ack bits across queries, possibly with gaps from lost rounds),
// resynchronizes on the preamble and validates the CRC.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>
#include <cstddef>

#include "util/bits.hpp"

namespace witag::core {

enum class TagFec { kNone, kRepetition3, kRepetition5, kHamming74 };

inline constexpr std::uint8_t kTagPreamble = 0xB5;
inline constexpr std::size_t kMaxTagPayload = 255;

/// Encodes a payload into the bit stream the tag transmits.
/// Requires payload.size() <= kMaxTagPayload.
util::BitVec encode_tag_frame(std::span<const std::uint8_t> payload,
                              TagFec fec);

/// Number of channel bits one frame of `payload_bytes` occupies.
std::size_t tag_frame_bits(std::size_t payload_bytes, TagFec fec);

struct DecodedTagFrame {
  util::ByteVec payload;
  std::size_t next_offset = 0;  ///< Stream offset just past this frame.
  std::size_t corrected_bits = 0;  ///< FEC corrections performed.
};

/// Scans `bits` from `offset` for the next valid frame. Returns nullopt
/// when no frame with a valid CRC exists in the remaining stream.
std::optional<DecodedTagFrame> decode_tag_frame(
    std::span<const std::uint8_t> bits, std::size_t offset, TagFec fec);

/// Decodes every recoverable frame in a stream.
std::vector<DecodedTagFrame> decode_tag_stream(
    std::span<const std::uint8_t> bits, TagFec fec);

/// FEC primitives (exposed for tests and ablations).
util::BitVec fec_encode(std::span<const std::uint8_t> bits, TagFec fec);
struct FecDecodeResult {
  util::BitVec bits;
  std::size_t corrected = 0;
};
/// Requires the input length to be a multiple of the FEC block size.
FecDecodeResult fec_decode(std::span<const std::uint8_t> bits, TagFec fec);

}  // namespace witag::core
