// Tag-link framing and error control.
//
// The paper leaves error detection/correction on the tag link as future
// work (section 4.1); this module implements it. A tag frame is
//
//   preamble (8 bits, 0xB5) | length (8 bits) | payload | CRC-8
//
// optionally protected by FEC (3x/5x repetition or Hamming(7,4)) applied
// to the whole frame. The decoder scans a raw bit stream (the concatenated
// block-ack bits across queries, possibly with gaps from lost rounds),
// resynchronizes on the preamble and validates the CRC.
//
// Two refinements on top of that baseline:
//
//  * Lost block-acks are *known* losses — the reader saw the round fail —
//    so instead of splicing the stream (which lets the resync scan lock
//    onto a phantom preamble straddling the gap), the stream carries an
//    explicit erasure run (`ErasedBits`). The erasure-aware decoders
//    treat erased bits as "no information": repetition takes the majority
//    of the surviving copies, Hamming(7,4) fills a single erased bit by
//    syndrome consistency, and a frame that still depends on an erased
//    bit is rejected rather than guessed.
//
//  * `TagFec::kRateless` switches framing to the LT fountain layer
//    (src/witag/rateless.hpp): short droplet frames instead of one
//    monolithic frame, any sufficient subset of which reconstructs the
//    payload. The generic entry points below route to it with the
//    default stream seed; `Reader` drives it with per-delivery seeds.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>
#include <cstddef>

#include "util/bits.hpp"

namespace witag::core {

enum class TagFec { kNone, kRepetition3, kRepetition5, kHamming74, kRateless };

inline constexpr std::uint8_t kTagPreamble = 0xB5;
inline constexpr std::size_t kMaxTagPayload = 255;

/// Bit stream with per-bit erasure flags. `bits[i]` is meaningful only
/// where `known[i]` is non-zero; erased positions hold 0. Lost
/// block-acks append erasure runs so downstream offsets stay aligned.
struct ErasedBits {
  util::BitVec bits;
  util::BitVec known;

  std::size_t size() const { return bits.size(); }

  /// Appends fully-known bits.
  void append(std::span<const std::uint8_t> b);
  /// Appends `n` erased placeholder bits (a known-lost round).
  void append_erasure_run(std::size_t n);
  /// Drops the first `n` bits (stream-cap trimming). Requires n <= size().
  void erase_prefix(std::size_t n);
  /// True when every bit in [offset, offset+n) is known.
  bool all_known(std::size_t offset, std::size_t n) const;
  void clear() {
    bits.clear();
    known.clear();
  }
};

/// Encodes a payload into the bit stream the tag transmits.
/// Requires payload.size() <= kMaxTagPayload (<= kMaxRatelessPayload
/// for kRateless).
util::BitVec encode_tag_frame(std::span<const std::uint8_t> payload,
                              TagFec fec);

/// Number of channel bits one frame of `payload_bytes` occupies. For
/// kRateless this is the nominal droplet stream length (K plus coded
/// headroom); the actual number consumed depends on the channel.
std::size_t tag_frame_bits(std::size_t payload_bytes, TagFec fec);

struct DecodedTagFrame {
  util::ByteVec payload;
  std::size_t next_offset = 0;  ///< Stream offset just past this frame.
  std::size_t corrected_bits = 0;  ///< FEC corrections performed.
};

/// Scans `bits` from `offset` for the next valid frame. Returns nullopt
/// when no frame with a valid CRC exists in the remaining stream.
std::optional<DecodedTagFrame> decode_tag_frame(
    std::span<const std::uint8_t> bits, std::size_t offset, TagFec fec);

/// Erasure-aware variant: erased spans are treated as lost information
/// (never matched as preamble bits, out-voted by surviving repetition
/// copies, filled by Hamming syndrome consistency when unique) instead
/// of being spliced out of the stream.
std::optional<DecodedTagFrame> decode_tag_frame(const ErasedBits& stream,
                                                std::size_t offset,
                                                TagFec fec);

/// Decodes every recoverable frame in a stream.
std::vector<DecodedTagFrame> decode_tag_stream(
    std::span<const std::uint8_t> bits, TagFec fec);
std::vector<DecodedTagFrame> decode_tag_stream(const ErasedBits& stream,
                                               TagFec fec);

/// FEC primitives (exposed for tests and ablations). Not defined for
/// kRateless — droplet framing lives in src/witag/rateless.hpp.
util::BitVec fec_encode(std::span<const std::uint8_t> bits, TagFec fec);
struct FecDecodeResult {
  util::BitVec bits;
  std::size_t corrected = 0;
  bool ok = true;  ///< False when erasures defeat the code.
};
/// Requires the input length to be a multiple of the FEC block size.
FecDecodeResult fec_decode(std::span<const std::uint8_t> bits, TagFec fec);
/// Erasure-aware decode: `known` parallels `bits`. A repetition group
/// with every copy erased, a Hamming codeword with 2+ erasures (or one
/// erasure no fill makes consistent), or any erased kNone bit fails the
/// decode (ok = false) instead of guessing.
FecDecodeResult fec_decode(std::span<const std::uint8_t> bits,
                           std::span<const std::uint8_t> known, TagFec fec);

}  // namespace witag::core
