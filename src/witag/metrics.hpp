// Measurement bookkeeping for WiTAG experiments: BER against the bits
// the tag actually scheduled, throughput from standards airtime, and
// simple console/CSV table reporting shared by the benches.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>
#include <cstdint>

#include "util/units.hpp"

namespace witag::core {

/// Accumulates per-round outcomes into link-level metrics.
class LinkMetrics {
 public:
  /// Records one query round: the bits the tag sent, the bits the client
  /// read from the block ack, and the exchange airtime.
  /// `round_lost` marks exchanges with no usable block ack (every bit of
  /// the round is then wrong-or-missing; they count as errors).
  void record_round(std::span<const std::uint8_t> sent,
                    const std::vector<bool>& received, bool round_lost,
                    util::Micros airtime);

  /// Folds another accumulator into this one. Associative and
  /// commutative with the default-constructed LinkMetrics as identity,
  /// so per-task metrics from a parallel sweep merge to the same totals
  /// in any grouping — the property the runner's determinism rests on.
  void merge(const LinkMetrics& other);

  std::size_t bits() const { return bits_; }
  std::size_t bit_errors() const { return errors_; }
  /// Tag sent 0 (corrupt) but the subframe was acked: missed corruption.
  std::size_t missed_corruptions() const { return missed_; }
  /// Tag sent 1 (quiet) but the subframe failed: false corruption.
  std::size_t false_corruptions() const { return false_; }
  std::size_t rounds() const { return rounds_; }
  std::size_t rounds_lost() const { return rounds_lost_; }
  util::Micros elapsed_us() const { return util::Micros{elapsed_us_}; }

  /// Bit error rate over everything recorded.
  double ber() const;

  /// Successfully delivered tag bits per second [Kbps] — the paper's
  /// "number of bits sent successfully over one second".
  double goodput_kbps() const;

  /// Raw tag bit rate [Kbps] ignoring errors.
  double raw_rate_kbps() const;

 private:
  std::size_t bits_ = 0;
  std::size_t errors_ = 0;
  std::size_t missed_ = 0;
  std::size_t false_ = 0;
  std::size_t rounds_ = 0;
  std::size_t rounds_lost_ = 0;
  double elapsed_us_ = 0.0;
};

/// Minimal fixed-width table printer used by the bench binaries.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  /// Formats a double with `digits` decimals.
  static std::string num(double v, int digits = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace witag::core
