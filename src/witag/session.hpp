// End-to-end WiTAG session: client STA -> (channel + tag) -> AP STA ->
// block ack -> client, exactly the two-step exchange of the paper's
// Figure 2. The session owns every component and advances simulated time
// from standards airtime, so BER and throughput come from the same
// mechanics the paper measures.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <cstddef>
#include <vector>

#include "channel/channel_model.hpp"
#include "faults/injectors.hpp"
#include "mac/station.hpp"
#include "phy/batch.hpp"
#include "phy/ppdu.hpp"
#include "util/complexvec.hpp"
#include "tag/device.hpp"
#include "util/rng.hpp"
#include "witag/config.hpp"
#include "witag/metrics.hpp"
#include "witag/query.hpp"
#include "util/units.hpp"
#include "util/bits.hpp"

namespace witag::core {

class Session {
 public:
  explicit Session(SessionConfig cfg);

  /// Outcome of one query/block-ack exchange.
  struct RoundResult {
    util::BitVec sent;           ///< Bits the tag scheduled.
    std::vector<bool> received;  ///< Client's reading per data subframe.
    bool lost = false;           ///< No usable block ack / missed trigger.
    bool trigger_detected = true;
    util::Micros airtime_us{};
    std::size_t subframes_valid = 0;  ///< FCS-valid subframes at the AP.
  };

  /// Runs one exchange with the tag(s) active, addressing the tag whose
  /// address matches cfg.query.trigger_code.
  RoundResult run_round();

  /// Addresses a specific tag (multi-tag extension): the query's trigger
  /// pattern carries `address`, so only the matching tag answers and
  /// RoundResult::sent holds that tag's bits.
  RoundResult run_round_addressed(unsigned address);

  /// Runs `rounds` exchanges and accumulates metrics.
  struct RunStats {
    LinkMetrics metrics;
    std::size_t triggers_missed = 0;
    util::Db mean_snr_db{};
    util::Db tag_perturbation_db{};
  };
  RunStats run(std::size_t rounds);

  /// Applies the paper's section 4.1 rate rule: probes MCS 7 downward
  /// with the tag idle until one achieves near-zero subframe errors,
  /// re-plans the query layout for it, and returns the choice.
  unsigned select_rate();

  /// Runs one exchange with the tag idle and reports the fraction of
  /// subframes the AP acked (used by select_rate and diagnostics).
  double probe_subframe_success();

  /// Re-plans the query layout for `mcs` without probing (the
  /// LinkSupervisor's closed-loop fallback; select_rate is the paper's
  /// open-loop probe). Throws std::invalid_argument when the MCS cannot
  /// form a valid query layout, leaving the current layout in place.
  void set_mcs(unsigned mcs);
  unsigned current_mcs() const { return layout_.mcs_index; }

  /// Lets simulated time pass with no exchange on the air: the channel
  /// and the fault processes (interference chain, brownout windows)
  /// advance by the dilated duration. The supervisor's retry backoff
  /// rides on this, which is why waiting out a burst genuinely helps.
  void idle_wait(util::Micros us);

  /// The tag sits out one addressed query: the client's A-MPDU still
  /// occupies the air (its airtime is charged — the returned duration —
  /// and the channel/fault clocks advance by it), but the tag spends no
  /// harvested energy and no bits move. The predictive scheduler uses
  /// this to skip rounds it expects to land inside an interference
  /// burst. Deterministic: the backoff is the CWmin expectation, not a
  /// draw, so skipping never perturbs the session's random stream.
  util::Micros skip_round(unsigned address);

  /// Realized fault events so far (all zero when no plan is active).
  const faults::FaultCounts& fault_counts() const { return faults_.counts(); }

  tag::TagDevice& tag_device() { return tags_[0].device; }
  /// Device of tag `i` (0 = primary, then extra tags in config order).
  tag::TagDevice& tag_device(std::size_t i) { return tags_.at(i).device; }
  std::size_t tag_count() const { return tags_.size(); }
  /// Index of the tag answering trigger code `address`. Throws when no
  /// configured tag carries that address.
  std::size_t tag_index(unsigned address) const;
  channel::ChannelModel& channel() { return *channel_; }
  const QueryLayout& layout() const { return layout_; }
  const SessionConfig& config() const { return cfg_; }

 private:
  struct TagUnit {
    tag::TagDevice device;
    unsigned address = 0;
    double link_amp = 0.0;  ///< Client->tag amplitude for envelope mode.
  };

  RoundResult exchange(bool tag_active, unsigned address);
  util::Micros draw_backoff_us();
  /// `td_blocks` holds the query's header+trigger region rendered to
  /// time-domain once per exchange (to_time() is tag-independent; each
  /// tag applies its own flat link gain per sample), so multi-tag
  /// envelope runs share a single render.
  std::optional<tag::QueryTiming> tag_timing(
      const QueryFrame& frame, const TagUnit& unit,
      std::span<const util::CxVec> td_blocks);
  const QueryLayout& layout_for(unsigned address);
  double link_amp_to(channel::Point2 tag_pos) const;

  SessionConfig cfg_;
  util::Rng rng_;
  faults::FaultSet faults_;
  std::unique_ptr<channel::ChannelModel> channel_;
  mac::Client client_;
  mac::AccessPoint ap_;
  std::vector<TagUnit> tags_;
  QueryLayout layout_;
  /// Layout cache for addressed queries (index = trigger code).
  std::vector<std::optional<QueryLayout>> layout_cache_;
  double tag_noise_var_ = 0.0;      ///< Noise at the tag detector [W].
  /// Batch decoder reused across every exchange this session runs (the
  /// Reader drives many rounds through one Session, so A-MPDU decode is
  /// allocation-free in steady state). An exchange decodes its whole
  /// A-MPDU in one batch call through the SoA/SIMD pipeline.
  phy::BatchDecoder batch_decoder_;
};

}  // namespace witag::core
