#include "witag/session.hpp"

#include <algorithm>
#include <cmath>
#include <vector>
#include <cstddef>

#include "channel/pathloss.hpp"
#include "obs/obs.hpp"
#include "mac/airtime.hpp"
#include "mac/rate_ctrl.hpp"
#include "tag/envelope.hpp"
#include "util/require.hpp"
#include "util/units.hpp"

namespace witag::core {
namespace {

constexpr double kIdleNoisePrefixUs = 20.0;  // quiet air before the PPDU

}  // namespace

Session::Session(SessionConfig cfg)
    : cfg_(std::move(cfg)),
      rng_(cfg_.seed),
      // The fault sub-streams hang off a dedicated derived seed so the
      // schedule is a pure function of (plan, session seed) and never
      // perturbs — or is perturbed by — the session's own draws.
      faults_(cfg_.faults, util::Rng::derive_seed(cfg_.seed, 0xFA017ull)),
      client_(mac::make_address(0x01), mac::make_address(0x02),
              cfg_.security),
      ap_(mac::make_address(0x02), cfg_.security) {
  channel::LinkGeometry geo;
  geo.tx = cfg_.client_pos;
  geo.rx = cfg_.ap_pos;
  geo.plan = cfg_.plan;
  geo.reflectors = cfg_.reflectors.empty()
                       ? channel::default_room_reflectors(geo.tx, geo.rx)
                       : cfg_.reflectors;

  channel::TagPathConfig tag_path;
  tag_path.position = cfg_.tag_pos;
  tag_path.strength = cfg_.tag_strength;
  tag_path.mode = cfg_.tag_mode;

  channel_ = std::make_unique<channel::ChannelModel>(
      cfg_.radio, std::move(geo), tag_path, cfg_.fading, rng_.next_u64());

  // Primary tag.
  tags_.push_back(TagUnit{tag::TagDevice(cfg_.tag_device), cfg_.tag_address,
                          link_amp_to(cfg_.tag_pos)});
  // Extra tags share the primary's device configuration.
  for (const auto& extra : cfg_.extra_tags) {
    channel::TagPathConfig path;
    path.position = extra.position;
    path.strength = extra.strength;
    path.mode = cfg_.tag_mode;
    channel_->add_tag(path);
    tags_.push_back(TagUnit{tag::TagDevice(cfg_.tag_device), extra.address,
                            link_amp_to(extra.position)});
  }

  tag_noise_var_ =
      util::thermal_noise(util::kBandwidth20MHz, cfg_.radio.temperature_k)
          .value() *
      util::db_to_linear(cfg_.tag_detector_nf_db);

  layout_ = plan_query(cfg_.query, cfg_.query.mcs_index, cfg_.security.mode,
                       util::Micros{tags_[0].device.clock().tick_period_us()},
                       util::Micros{cfg_.tag_device.guard_us});

  // Default payloads: deterministic pseudo-random bits per tag.
  for (std::size_t t = 0; t < tags_.size(); ++t) {
    tags_[t].device.set_payload(
        util::Rng(cfg_.seed ^ (0x7461677331ull + t)).bits(4096));
  }
}

double Session::link_amp_to(channel::Point2 tag_pos) const {
  const util::Meters d{channel::distance(cfg_.client_pos, tag_pos)};
  const util::Db wall_loss{
      cfg_.plan.penetration_loss_db(cfg_.client_pos, tag_pos)};
  const double gain = std::abs(channel::attenuate(
      channel::direct_gain(d, cfg_.radio.carrier_hz), wall_loss));
  return gain *
         std::sqrt(util::to_watts(cfg_.radio.tx_power_dbm).value() / 56.0);
}

util::Micros Session::draw_backoff_us() {
  return mac::kSlotUs * static_cast<double>(rng_.uniform_int(mac::kCwMin + 1));
}

std::size_t Session::tag_index(unsigned address) const {
  for (std::size_t t = 0; t < tags_.size(); ++t) {
    if (tags_[t].address == address) return t;
  }
  util::require(false, "Session::tag_index: no tag carries this address");
  return 0;
}

const QueryLayout& Session::layout_for(unsigned address) {
  if (address == cfg_.query.trigger_code) return layout_;
  if (layout_cache_.size() <= address) layout_cache_.resize(address + 1);
  if (!layout_cache_[address]) {
    QueryConfig qcfg = cfg_.query;
    qcfg.trigger_code = address;
    qcfg.n_trigger = std::max(qcfg.n_trigger, 5 + address);
    // layout_.mcs_index tracks select_rate()'s choice.
    layout_cache_[address] =
        plan_query(qcfg, layout_.mcs_index, cfg_.security.mode,
                   util::Micros{tags_[0].device.clock().tick_period_us()},
                   util::Micros{cfg_.tag_device.guard_us});
  }
  return *layout_cache_[address];
}

std::optional<tag::QueryTiming> Session::tag_timing(
    const QueryFrame& frame, const TagUnit& unit,
    std::span<const util::CxVec> td_blocks) {
  if (cfg_.trigger_mode == TriggerMode::kIdeal) {
    // A real tag only reacts to queries carrying its address; the ideal
    // mode applies the same filter without the envelope render.
    if (frame.layout.trigger_code != unit.address) return std::nullopt;
    return frame.layout.ideal_timing();
  }

  // Envelope path: scale the pre-rendered header + trigger region as
  // seen by this tag (flat client->tag gain), run the envelope detector
  // + comparator + correlator with the tag's address filter.
  const std::size_t prefix =
      static_cast<std::size_t>(kIdleNoisePrefixUs * phy::kSampleRateHz / 1e6);

  util::CxVec samples;
  samples.reserve(prefix + td_blocks.size() * phy::kSamplesPerSymbol);
  for (std::size_t i = 0; i < prefix; ++i) {
    samples.push_back(rng_.complex_normal(tag_noise_var_));
  }
  for (std::size_t s = 0; s < td_blocks.size(); ++s) {
    for (const util::Cx& x : td_blocks[s]) {
      samples.push_back(x * frame.slot_scale[s] * unit.link_amp +
                        rng_.complex_normal(tag_noise_var_));
    }
  }

  tag::EnvelopeConfig env_cfg;
  env_cfg.sample_rate_hz = util::Hertz{phy::kSampleRateHz};
  tag::EnvelopeDetector detector(env_cfg);
  tag::Comparator comparator(env_cfg);
  const auto envelope = detector.process(samples);
  const auto bits = comparator.process(envelope);

  tag::TriggerConfig trig_cfg;
  trig_cfg.n_trigger_subframes = frame.layout.n_trigger;
  trig_cfg.accept_code = static_cast<int>(unit.address);
  auto timing = tag::detect_trigger(bits, phy::kSampleRateHz, trig_cfg);
  if (!timing) return std::nullopt;
  // Re-reference from stream start to PPDU start.
  timing->align_edge_us -= kIdleNoisePrefixUs;
  timing->data_start_us -= kIdleNoisePrefixUs;
  return timing;
}

Session::RoundResult Session::exchange(bool tag_active, unsigned address) {
  WITAG_COUNT_HOT("session.exchanges", 1);
  QueryFrame frame =
      build_query(layout_for(address), client_, cfg_.query.trigger_low_scale);

  RoundResult result;

  // Fault hook 1 (per-round draws, fixed order): MAC fate, brownout
  // state and the clock walk are drawn before anything depends on them,
  // so the schedule never shifts with round outcomes.
  faults::MacFault mac_fault;
  faults::ClockFault clock_fault;
  bool browned_out = false;
  if (faults_.active()) {
    mac_fault = faults_.draw_mac_fault();
    browned_out = tag_active && faults_.brownout_now();
    if (browned_out) {
      ++faults_.counts().brownout_rounds;
      WITAG_COUNT("faults.brownout_rounds", 1);
      WITAG_EVENT("faults.brownout", "faults");
    }
    if (tag_active) {
      clock_fault = faults_.draw_clock_fault();
      for (auto& unit : tags_) {
        unit.device.set_clock_drift(clock_fault.drift_frac);
      }
    }
  }

  // Tag side: every tag hears the query; each plans its own schedule
  // (only the addressed one should detect/respond).
  std::vector<std::vector<std::uint8_t>> levels(tags_.size());
  bool addressed_tag_heard = false;
  if (tag_active) {
    // One time-domain render of the header + trigger region, shared by
    // every tag's envelope detector (hoisted out of tag_timing: the
    // per-tag link gain applies per sample, not per render).
    std::vector<util::CxVec> td_blocks;
    if (cfg_.trigger_mode == TriggerMode::kEnvelope) {
      const std::size_t slots_needed =
          phy::kHeaderSlots +
          static_cast<std::size_t>(frame.layout.n_trigger + 1) *
              frame.layout.symbols_per_subframe;
      const std::size_t count =
          std::min(slots_needed, frame.ppdu.symbols.size());
      td_blocks.reserve(count);
      for (std::size_t s = 0; s < count; ++s) {
        td_blocks.push_back(phy::to_time(frame.ppdu.symbols[s]));
      }
    }
    for (std::size_t t = 0; t < tags_.size(); ++t) {
      auto timing = tag_timing(frame, tags_[t], td_blocks);
      // Fault hook 2 (trigger + clock): exactly one trigger-stream draw
      // per tag per round, then brownout vetoes any response.
      if (faults_.active()) {
        if (tags_[t].address == address) {
          const bool miss = faults_.draw_trigger_miss();
          if (miss && timing) {
            timing.reset();
            ++faults_.counts().triggers_suppressed;
            WITAG_COUNT("faults.triggers_suppressed", 1);
            WITAG_EVENT("faults.trigger_suppressed", "faults");
          }
        } else {
          const bool wake = faults_.draw_false_wakeup();
          if (wake && !timing && !browned_out) {
            // The foreign tag convinces itself the query was its own:
            // it answers with its payload over the same data region.
            timing = frame.layout.ideal_timing();
            ++faults_.counts().false_wakeups;
            WITAG_COUNT("faults.false_wakeups", 1);
            WITAG_EVENT("faults.false_wakeup", "faults");
          }
        }
        if (browned_out) timing.reset();
        if (timing) {
          timing->align_edge_us += clock_fault.jitter_us;
          timing->data_start_us += clock_fault.jitter_us;
        }
      }
      if (!timing) continue;
      tag::TagDevice::Plan plan =
          tags_[t].device.respond(*timing, frame.layout.n_data_subframes);
      levels[t] = plan.control.slot_levels(frame.ppdu.symbols.size());
      if (tags_[t].address == address) {
        result.sent = std::move(plan.bits);
        addressed_tag_heard = true;
      }
    }
    if (!addressed_tag_heard) {
      result.trigger_detected = false;
      result.lost = true;
      WITAG_COUNT("session.triggers_missed", 1);
      WITAG_EVENT("session.trigger_missed", "session");
    } else {
      WITAG_EVENT("session.trigger_detected", "session");
    }
  }

  // Air: per-symbol channel application with the trigger envelope scale.
  std::vector<phy::FreqSymbol> tx = frame.ppdu.symbols;
  for (std::size_t s = 0; s < tx.size(); ++s) {
    if (frame.slot_scale[s] == 1.0) continue;
    for (auto& bin : tx[s]) bin *= frame.slot_scale[s];
  }

  // Fault hook 3 (MAC abort): the client's transmitter cuts out
  // mid-A-MPDU — the PHY header still goes out, but symbols past the cut
  // never hit the air, so their subframes FCS-fail at the AP.
  if (faults_.active() && mac_fault.abort_ampdu) {
    const auto keep = std::max<std::size_t>(
        phy::kHeaderSlots,
        static_cast<std::size_t>(mac_fault.abort_frac *
                                 static_cast<double>(tx.size())));
    if (keep < tx.size()) {
      for (std::size_t s = keep; s < tx.size(); ++s) tx[s] = phy::FreqSymbol{};
      ++faults_.counts().ampdu_aborted;
      WITAG_COUNT("faults.ampdu_aborted", 1);
      WITAG_EVENT1("faults.ampdu_abort", "kept_symbols",
                   static_cast<double>(keep), "faults");
    }
  }

  // Fault hook 4 (interference): the Gilbert-Elliott chain walks the
  // PPDU symbol by symbol; Bad-state symbols get the burst power added
  // to their noise floor inside the channel.
  std::vector<double> extra_noise;
  if (faults_.active()) {
    const std::uint64_t before = faults_.counts().interference_symbols;
    extra_noise = faults_.interference_noise(tx.size());
    const std::uint64_t hit = faults_.counts().interference_symbols - before;
    if (hit > 0) {
      WITAG_COUNT("faults.interference_symbols", hit);
      WITAG_EVENT1("faults.interference", "symbols",
                   static_cast<double>(hit), "faults");
    }
  }
  const auto rx_syms = channel_->apply_multi(tx, levels, extra_noise);

  // AP side: PHY receive, deaggregate, FCS-check, block ack.
  phy::RxConfig rx_cfg;
  rx_cfg.cpe_correction = cfg_.cpe_correction;
  const phy::RxResult& rx = batch_decoder_.decode_one(rx_syms, rx_cfg);

  std::optional<mac::BlockAck> ba;
  if (rx.sig_ok) {
    const auto psdu_result = ap_.receive_psdu(rx.psdu);
    result.subframes_valid = psdu_result.subframes_valid;
    ba = psdu_result.block_ack;
  }

  // Fault hook 5 (block ack): the BA dies on the return path, or its
  // bitmap tail is lost — trailing subframes then read as unacked, i.e.
  // as tag zeros, regardless of what the tag did.
  if (faults_.active() && ba) {
    if (mac_fault.lose_ba) {
      ba.reset();
      ++faults_.counts().ba_lost;
      WITAG_COUNT("faults.ba_lost", 1);
      WITAG_EVENT("faults.ba_lost", "faults");
    } else if (mac_fault.truncate_ba) {
      const auto keep = static_cast<unsigned>(mac_fault.truncate_frac * 64.0);
      ba->bitmap &= keep >= 64 ? ~0ull : (std::uint64_t{1} << keep) - 1;
      ++faults_.counts().ba_truncated;
      WITAG_COUNT("faults.ba_truncated", 1);
      WITAG_EVENT1("faults.ba_truncated", "kept_bits",
                   static_cast<double>(keep), "faults");
    }
  }
  if (ba) {
    WITAG_COUNT("session.blockacks_decoded", 1);
    WITAG_EVENT1("session.blockack_decoded", "subframes_valid",
                 static_cast<double>(result.subframes_valid), "session");
  } else {
    WITAG_COUNT("session.blockacks_lost", 1);
    WITAG_EVENT("session.blockack_lost", "session");
  }

  // Client side: read the tag bits out of the block ack.
  const auto outcomes = client_.subframe_outcomes(ba);
  result.received.assign(
      outcomes.begin() + frame.layout.n_trigger, outcomes.end());
  if (!ba) result.lost = true;

  // Airtime accounting for the exchange.
  const auto airtime = mac::ampdu_exchange(
      util::Micros{frame.ppdu.duration_us()}, draw_backoff_us());
  result.airtime_us = airtime.total_us() + cfg_.inter_query_gap_us;

  WITAG_HIST("session.airtime_us", obs::exp_bounds(500.0, 1.5, 16),
             result.airtime_us.value());
  // Simulated airtime, not wall time: identical across --jobs, so the
  // exported latency quantiles stay deterministic.
  WITAG_HDR("session.latency_us", result.airtime_us.value());
  // Channel and fault processes share one simulated clock: brownout
  // windows and interference sojourns elapse with the same dilated
  // airtime the fading does.
  const util::Seconds dt =
      util::to_seconds(result.airtime_us * cfg_.time_dilation);
  channel_->advance(dt);
  faults_.advance(dt);
  return result;
}

Session::RoundResult Session::run_round() {
  WITAG_SPAN_CAT("session.round", "session");
  WITAG_COUNT_HOT("session.rounds", 1);
  return exchange(true, cfg_.query.trigger_code);
}

Session::RoundResult Session::run_round_addressed(unsigned address) {
  WITAG_SPAN_CAT("session.round", "session");
  WITAG_COUNT_HOT("session.rounds", 1);
  return exchange(true, address);
}

double Session::probe_subframe_success() {
  WITAG_SPAN_CAT("session.probe", "session");
  const RoundResult r = exchange(false, cfg_.query.trigger_code);
  std::size_t ok = 0;
  for (const bool b : r.received) ok += b ? 1 : 0;
  if (r.received.empty()) return 0.0;
  return static_cast<double>(ok) / static_cast<double>(r.received.size());
}

void Session::set_mcs(unsigned mcs) {
  // plan_query throws (and nothing is assigned) when the MCS cannot
  // carry a valid query, so the current layout survives a bad request.
  layout_ = plan_query(cfg_.query, mcs, cfg_.security.mode,
                       util::Micros{tags_[0].device.clock().tick_period_us()},
                       util::Micros{cfg_.tag_device.guard_us});
  layout_cache_.clear();  // cached layouts used the old MCS
  WITAG_COUNT("session.set_mcs", 1);
  WITAG_EVENT1("session.set_mcs", "mcs", static_cast<double>(mcs), "session");
}

util::Micros Session::skip_round(unsigned address) {
  WITAG_COUNT("session.rounds_skipped", 1);
  WITAG_EVENT("session.round_skipped", "session");
  const QueryLayout& layout = layout_for(address);
  // The PPDU the client would have sent: header region plus every
  // subframe slot. Using the layout (not a built frame) keeps the skip
  // allocation-free and rng-free.
  const util::Micros ppdu_us =
      layout.subframes_start_us() +
      static_cast<double>(layout.n_subframes) * layout.subframe_duration_us();
  const auto airtime =
      mac::ampdu_exchange(ppdu_us, mac::expected_backoff_us());
  const util::Micros total = airtime.total_us() + cfg_.inter_query_gap_us;
  const util::Seconds dt = util::to_seconds(total * cfg_.time_dilation);
  channel_->advance(dt);
  faults_.advance(dt);
  return total;
}

void Session::idle_wait(util::Micros us) {
  WITAG_REQUIRE(us >= util::Micros{0.0});
  WITAG_COUNT("session.idle_wait.calls", 1);
  WITAG_EVENT1("session.idle_wait", "us", us.value(), "session");
  const util::Seconds dt = util::to_seconds(us * cfg_.time_dilation);
  channel_->advance(dt);
  faults_.advance(dt);
}

unsigned Session::select_rate() {
  mac::RateSelector selector;
  while (const auto probe = selector.next_probe()) {
    QueryLayout saved = layout_;
    bool planned = false;
    try {
      layout_ = plan_query(cfg_.query, *probe, cfg_.security.mode,
                           util::Micros{tags_[0].device.clock().tick_period_us()},
                           util::Micros{cfg_.tag_device.guard_us});
      planned = true;
    } catch (const std::invalid_argument&) {
      layout_ = saved;
    }
    if (!planned) {
      // This MCS cannot form valid queries; treat as total failure.
      selector.record(*probe, 0,
                      static_cast<std::size_t>(layout_.n_data_subframes));
      continue;
    }
    const RoundResult r = exchange(false, cfg_.query.trigger_code);
    std::size_t ok = 0;
    for (const bool b : r.received) ok += b ? 1 : 0;
    selector.record(*probe, ok, r.received.size());
  }
  const unsigned mcs = selector.selected();
  layout_ = plan_query(cfg_.query, mcs, cfg_.security.mode,
                       util::Micros{tags_[0].device.clock().tick_period_us()},
                       util::Micros{cfg_.tag_device.guard_us});
  layout_cache_.clear();  // cached layouts used the old MCS
  return mcs;
}

Session::RunStats Session::run(std::size_t rounds) {
  WITAG_SPAN_CAT("session.run", "session");
  RunStats stats;
  for (std::size_t i = 0; i < rounds; ++i) {
    const RoundResult r = run_round();
    if (!r.trigger_detected) ++stats.triggers_missed;
    if (r.lost) {
      stats.metrics.record_round(r.sent, {}, true, r.airtime_us);
    } else {
      stats.metrics.record_round(r.sent, r.received, false, r.airtime_us);
    }
#if WITAG_OBS_ENABLED
    // One instant per scheduled tag bit so a trace shows exactly which
    // subframe flipped: ok = 1 delivered, 0 flipped, -1 round lost.
    if (obs::trace_enabled()) {
      for (std::size_t b = 0; b < r.sent.size(); ++b) {
        const bool sent_one = (r.sent[b] & 1u) != 0;
        const double ok =
            r.lost ? -1.0 : (r.received[b] == sent_one ? 1.0 : 0.0);
        obs::instant_arg2("session.subframe", "index",
                          static_cast<double>(b), "ok", ok, "session");
      }
    }
#endif
  }
  stats.mean_snr_db = channel_->mean_snr_db();
  stats.tag_perturbation_db = channel_->tag_perturbation_db();
  return stats;
}

}  // namespace witag::core
