#include "witag/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace witag::core {

void LinkMetrics::record_round(std::span<const std::uint8_t> sent,
                               const std::vector<bool>& received,
                               bool round_lost, double airtime_us) {
  util::require(round_lost || sent.size() == received.size(),
                "LinkMetrics::record_round: size mismatch");
  util::require(airtime_us >= 0.0, "LinkMetrics::record_round: bad airtime");
  ++rounds_;
  elapsed_us_ += airtime_us;
  bits_ += sent.size();
  if (round_lost) {
    ++rounds_lost_;
    errors_ += sent.size();
    return;
  }
  for (std::size_t i = 0; i < sent.size(); ++i) {
    const bool sent_one = (sent[i] & 1u) != 0;
    if (sent_one == received[i]) continue;
    ++errors_;
    if (sent_one) {
      ++false_;  // quiet subframe failed anyway
    } else {
      ++missed_;  // corruption did not stick
    }
  }
}

double LinkMetrics::ber() const {
  if (bits_ == 0) return 0.0;
  return static_cast<double>(errors_) / static_cast<double>(bits_);
}

double LinkMetrics::goodput_kbps() const {
  if (elapsed_us_ <= 0.0) return 0.0;
  const double good = static_cast<double>(bits_ - errors_);
  return good / (elapsed_us_ / 1e6) / 1e3;
}

double LinkMetrics::raw_rate_kbps() const {
  if (elapsed_us_ <= 0.0) return 0.0;
  return static_cast<double>(bits_) / (elapsed_us_ / 1e6) / 1e3;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  util::require(cells.size() == headers_.size(),
                "Table::add_row: cell count mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c] + 2, '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace witag::core
