#include "witag/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <cstdint>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace witag::core {

void LinkMetrics::record_round(std::span<const std::uint8_t> sent,
                               const std::vector<bool>& received,
                               bool round_lost, util::Micros airtime) {
  WITAG_REQUIRE(round_lost || sent.size() == received.size());
  WITAG_REQUIRE(airtime.value() >= 0.0);
  ++rounds_;
  elapsed_us_ += airtime.value();
  bits_ += sent.size();
  std::size_t round_errors = 0;
  std::size_t round_false = 0;
  std::size_t round_missed = 0;
  if (round_lost) {
    ++rounds_lost_;
    errors_ += sent.size();
    round_errors = sent.size();
  } else {
    for (std::size_t i = 0; i < sent.size(); ++i) {
      const bool sent_one = (sent[i] & 1u) != 0;
      if (sent_one == received[i]) continue;
      ++errors_;
      ++round_errors;
      if (sent_one) {
        ++false_;  // quiet subframe failed anyway
        ++round_false;
      } else {
        ++missed_;  // corruption did not stick
        ++round_missed;
      }
    }
  }
  // Always touch every counter (zero adds included) so the exported
  // metrics carry the full schema even for clean runs.
  WITAG_COUNT("witag.rounds", 1);
  WITAG_COUNT("witag.bits", sent.size());
  WITAG_COUNT("witag.rounds_lost", round_lost ? 1 : 0);
  WITAG_COUNT("witag.bit_errors", round_errors);
  WITAG_COUNT("witag.false_corruption", round_false);
  WITAG_COUNT("witag.missed_corruption", round_missed);
}

void LinkMetrics::merge(const LinkMetrics& other) {
  bits_ += other.bits_;
  errors_ += other.errors_;
  missed_ += other.missed_;
  false_ += other.false_;
  rounds_ += other.rounds_;
  rounds_lost_ += other.rounds_lost_;
  elapsed_us_ += other.elapsed_us_;
}

double LinkMetrics::ber() const {
  if (bits_ == 0) return 0.0;
  return static_cast<double>(errors_) / static_cast<double>(bits_);
}

double LinkMetrics::goodput_kbps() const {
  if (elapsed_us_ <= 0.0) return 0.0;
  const double good = static_cast<double>(bits_ - errors_);
  return good / (elapsed_us_ / 1e6) / 1e3;
}

double LinkMetrics::raw_rate_kbps() const {
  if (elapsed_us_ <= 0.0) return 0.0;
  return static_cast<double>(bits_) / (elapsed_us_ / 1e6) / 1e3;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument(
        "Table::add_row: got " + std::to_string(cells.size()) +
        " cells for a " + std::to_string(headers_.size()) +
        "-column table (first header \"" +
        (headers_.empty() ? std::string() : headers_.front()) + "\")");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c] + 2, '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace witag::core
