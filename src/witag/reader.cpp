#include "witag/reader.hpp"

#include "obs/obs.hpp"
#include "util/require.hpp"
#include "util/bits.hpp"
#include "util/units.hpp"
#include <algorithm>
#include <cstddef>
#include <utility>

namespace witag::core {

Reader::Reader(Session& session, ReaderConfig cfg)
    : session_(session), cfg_(cfg) {
  WITAG_REQUIRE(cfg.max_rounds_per_frame > 0);
  WITAG_REQUIRE(cfg.stream_cap_bits >= 1024);
}

void Reader::set_fec(TagFec fec) {
  if (fec == cfg_.fec) return;
  cfg_.fec = fec;
  for (auto& stream : streams_) stream.clear();
  for (auto& decoder : decoders_) decoder.reset();
}

void Reader::set_max_rounds(std::size_t rounds) {
  WITAG_REQUIRE(rounds > 0);
  cfg_.max_rounds_per_frame = rounds;
}

void Reader::load_tag(std::size_t tag_index,
                      std::span<const std::uint8_t> payload) {
  load_tag(tag_index, payload, kRatelessDefaultSeed);
}

void Reader::load_tag(std::size_t tag_index,
                      std::span<const std::uint8_t> payload,
                      std::uint64_t rateless_seed) {
  if (cfg_.fec != TagFec::kRateless) {
    session_.tag_device(tag_index).set_payload(
        encode_tag_frame(payload, cfg_.fec));
    return;
  }
  const RatelessConfig rcfg;
  const LtDropletSource source(payload, rateless_seed, rcfg);
  // Size the droplet stream to the poll budget: enough frames that the
  // tag's cursor does not wrap inside one poll (wraps only resend known
  // indices), floored at the nominal stream and capped by the 8-bit seq
  // space.
  const std::size_t budget_bits =
      cfg_.max_rounds_per_frame * session_.layout().n_data_subframes;
  const std::size_t want = budget_bits / droplet_frame_bits(rcfg) + 2;
  const std::size_t n = std::clamp(
      want, rateless_nominal_droplets(payload.size(), rcfg),
      std::size_t{256});
  session_.tag_device(tag_index).set_payload(source.stream(n));
  if (rateless_.size() <= tag_index) rateless_.resize(tag_index + 1);
  rateless_[tag_index] =
      RatelessLoad{rateless_seed, payload.size(), n, true};
}

double Reader::Stats::frame_goodput_kbps(std::size_t payload_bytes) const {
  if (airtime_us <= util::Micros{0.0}) return 0.0;
  const double bits = static_cast<double>(frames_ok * payload_bytes * 8);
  return bits / (airtime_us.value() / 1e6) / 1e3;
}

void Reader::trim_stream(ErasedBits& stream) const {
  // Bound the buffer: drop the oldest bits (they can no longer start a
  // frame we would still care about).
  if (stream.size() > cfg_.stream_cap_bits) {
    stream.erase_prefix(stream.size() - cfg_.stream_cap_bits);
  }
}

Reader::PollResult Reader::poll_frame(unsigned address) {
  if (streams_.size() <= address) streams_.resize(address + 1);
  if (cfg_.fec == TagFec::kRateless) return poll_rateless(address);
  ErasedBits& stream = streams_[address];

  PollResult result;
  for (std::size_t round = 0; round < cfg_.max_rounds_per_frame; ++round) {
    const Session::RoundResult r = session_.run_round_addressed(address);
    ++result.rounds;
    ++stats_.rounds;
    stats_.airtime_us += r.airtime_us;
    result.airtime_us += r.airtime_us;
    if (r.lost) {
      ++stats_.rounds_lost;
      if (r.trigger_detected) {
        // The tag answered but the block ack died: its cursor advanced
        // by a full round of bits we never saw. An erasure run of the
        // same length keeps every later bit aligned with the tag.
        stream.append_erasure_run(r.received.size());
      }
      // Trigger miss / brownout: the tag never advanced, so the stream
      // has no gap to represent.
      continue;
    }
    for (const bool bit : r.received) {
      stream.bits.push_back(bit ? 1 : 0);
      stream.known.push_back(1);
    }

    if (auto frame = decode_tag_frame(stream, 0, cfg_.fec)) {
      stream.erase_prefix(frame->next_offset);
      result.ok = true;
      result.payload = std::move(frame->payload);
      result.fec_corrected = frame->corrected_bits;
      ++stats_.frames_ok;
      return result;
    }
    trim_stream(stream);
  }
  ++stats_.polls_failed;
  return result;
}

Reader::PollResult Reader::poll_rateless(unsigned address) {
  const std::size_t tag_idx = session_.tag_index(address);
  WITAG_REQUIRE(tag_idx < rateless_.size() && rateless_[tag_idx].loaded);
  const RatelessLoad& load = rateless_[tag_idx];

  ErasedBits& stream = streams_[address];
  if (stream_seed_.size() <= address) stream_seed_.resize(address + 1);
  if (decoders_.size() <= address) decoders_.resize(address + 1);
  if (stream_seed_[address] != load.seed) {
    // Buffered bits belong to the previous delivery's stream; their
    // droplets carry the old salt and would only CRC-fail. Start clean.
    stream.clear();
    stream_seed_[address] = load.seed;
    decoders_[address].reset();
  }

  const RatelessConfig rcfg;
  const std::uint8_t salt = rateless_salt(load.seed);
  if (!decoders_[address]) {
    decoders_[address].emplace(load.payload_bytes, load.seed, rcfg);
  }
  LtDecoder& decoder = *decoders_[address];
  std::size_t offset = 0;

  PollResult result;
  result.k_symbols = decoder.k();
  std::size_t bits_appended = 0;

  const auto drain_droplets = [&]() {
    while (!decoder.complete() && !decoder.poisoned()) {
      const auto droplet = decode_droplet_frame(stream, offset, salt, rcfg);
      if (!droplet) break;
      offset = droplet->next_offset;
      WITAG_COUNT("link.rateless.droplets_decoded", 1);
      decoder.add(droplet->seq, droplet->data);
    }
    if (decoder.poisoned()) {
      // A corrupt droplet survived its frame CRC and reached the
      // solution; every equation is tainted. Restart the decode on
      // whatever still arrives.
      WITAG_COUNT("link.rateless.decoders_poisoned", 1);
      decoder = LtDecoder(load.payload_bytes, load.seed, rcfg);
    }
    // Drop the consumed prefix immediately: cap-trimming then only ever
    // removes unparsed bits, so `offset` stays valid across rounds.
    stream.erase_prefix(offset);
    offset = 0;
  };

  // Droplets left over from a failed poll of the same delivery may
  // already close the system.
  drain_droplets();

  // `round` meters droplet-collecting opportunities: scheduler skips
  // charge airtime but not the budget (the predictor's cap bounds them
  // to max_consecutive_skips per real round, so the poll still ends).
  for (std::size_t round = 0;
       round < cfg_.max_rounds_per_frame && !decoder.complete();) {
    if (scheduler_ && scheduler_->should_skip()) {
      // Predicted burst: the client's A-MPDU flies without the tag.
      // The airtime is real and charged; the tag's droplet cursor and
      // the stream buffer both stand still.
      const util::Micros us = session_.skip_round(address);
      ++result.rounds;
      ++result.rounds_skipped;
      ++stats_.rounds;
      ++stats_.rounds_skipped;
      result.airtime_us += us;
      result.skipped_us += us;
      stats_.airtime_us += us;
      stats_.skipped_us += us;
      continue;
    }
    ++round;
    const Session::RoundResult r = session_.run_round_addressed(address);
    ++result.rounds;
    ++stats_.rounds;
    stats_.airtime_us += r.airtime_us;
    result.airtime_us += r.airtime_us;
    if (scheduler_) scheduler_->observe(r.lost);
    if (r.lost) {
      ++stats_.rounds_lost;
      if (r.trigger_detected) {
        stream.append_erasure_run(r.received.size());
        bits_appended += r.received.size();
      }
      continue;
    }
    for (const bool bit : r.received) {
      stream.bits.push_back(bit ? 1 : 0);
      stream.known.push_back(1);
    }
    bits_appended += r.received.size();
    drain_droplets();
    if (!decoder.complete()) trim_stream(stream);
  }

  // Droplet frames the tag spent energy transmitting this poll (erased
  // rounds included: the tag sent them whether or not the ack survived).
  WITAG_COUNT("link.rateless.droplets_sent",
              bits_appended / droplet_frame_bits(rcfg));

  result.droplets_used = decoder.droplets_added();
  if (decoder.complete()) {
    result.ok = true;
    result.payload = decoder.payload();
    ++stats_.frames_ok;
    // The next poll of this load decodes afresh from new droplets (the
    // tag keeps cycling its stream); only a reload reuses this state.
    decoders_[address].reset();
    return result;
  }
  ++stats_.polls_failed;
  return result;
}

}  // namespace witag::core
