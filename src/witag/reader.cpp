#include "witag/reader.hpp"

#include "util/require.hpp"
#include "util/bits.hpp"
#include "util/units.hpp"
#include <cstddef>

namespace witag::core {

Reader::Reader(Session& session, ReaderConfig cfg)
    : session_(session), cfg_(cfg) {
  WITAG_REQUIRE(cfg.max_rounds_per_frame > 0);
  WITAG_REQUIRE(cfg.stream_cap_bits >= 1024);
}

void Reader::set_fec(TagFec fec) {
  if (fec == cfg_.fec) return;
  cfg_.fec = fec;
  for (auto& stream : streams_) stream.clear();
}

void Reader::set_max_rounds(std::size_t rounds) {
  WITAG_REQUIRE(rounds > 0);
  cfg_.max_rounds_per_frame = rounds;
}

void Reader::load_tag(std::size_t tag_index,
                      std::span<const std::uint8_t> payload) {
  session_.tag_device(tag_index).set_payload(
      encode_tag_frame(payload, cfg_.fec));
}

double Reader::Stats::frame_goodput_kbps(std::size_t payload_bytes) const {
  if (airtime_us <= util::Micros{0.0}) return 0.0;
  const double bits = static_cast<double>(frames_ok * payload_bytes * 8);
  return bits / (airtime_us.value() / 1e6) / 1e3;
}

Reader::PollResult Reader::poll_frame(unsigned address) {
  if (streams_.size() <= address) streams_.resize(address + 1);
  util::BitVec& stream = streams_[address];

  PollResult result;
  for (std::size_t round = 0; round < cfg_.max_rounds_per_frame; ++round) {
    const Session::RoundResult r = session_.run_round_addressed(address);
    ++result.rounds;
    ++stats_.rounds;
    stats_.airtime_us += r.airtime_us;
    result.airtime_us += r.airtime_us;
    if (r.lost) {
      // Nothing usable arrived this round; the frame CRC + preamble
      // resync absorb the gap.
      ++stats_.rounds_lost;
      continue;
    }
    for (const bool bit : r.received) stream.push_back(bit ? 1 : 0);

    if (auto frame = decode_tag_frame(stream, 0, cfg_.fec)) {
      stream.erase(stream.begin(),
                   stream.begin() +
                       static_cast<std::ptrdiff_t>(frame->next_offset));
      result.ok = true;
      result.payload = std::move(frame->payload);
      result.fec_corrected = frame->corrected_bits;
      ++stats_.frames_ok;
      return result;
    }
    // Bound the buffer: drop the oldest bits (they can no longer start
    // a frame we would still care about).
    if (stream.size() > cfg_.stream_cap_bits) {
      stream.erase(stream.begin(),
                   stream.begin() + static_cast<std::ptrdiff_t>(
                                        stream.size() - cfg_.stream_cap_bits));
    }
  }
  ++stats_.polls_failed;
  return result;
}

}  // namespace witag::core
