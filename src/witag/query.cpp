#include "witag/query.hpp"

#include "mac/ampdu.hpp"
#include "mac/ccmp.hpp"
#include "mac/mpdu.hpp"
#include "mac/wep.hpp"
#include "phy/mcs.hpp"
#include "util/require.hpp"
#include <cstdint>
#include "util/bits.hpp"
#include <cstddef>

namespace witag::core {
namespace {

std::size_t security_overhead(mac::Security mode) {
  switch (mode) {
    case mac::Security::kOpen: return 0;
    case mac::Security::kWep: return mac::kWepHeaderBytes + mac::kWepIcvBytes;
    case mac::Security::kCcmp:
      return mac::kCcmpHeaderBytes + mac::kCcmpMicBytes;
  }
  WITAG_ENSURE(false);
  return 0;
}

std::size_t fixed_overhead(mac::Security mode) {
  return mac::kDelimiterBytes + mac::kQosHeaderBytes + mac::kFcsBytes +
         security_overhead(mode);
}

// Checks whether S symbols per subframe yields whole, 4-byte-aligned
// subframes with room for the MAC machinery; fills the layout on success.
bool try_symbols(unsigned s, const phy::McsParams& m, mac::Security security,
                 QueryLayout& layout) {
  const std::size_t bits = static_cast<std::size_t>(s) * m.n_dbps;
  if (bits % 8 != 0) return false;
  const std::size_t total = bits / 8;
  if (total % 4 != 0) return false;
  const std::size_t overhead = fixed_overhead(security);
  if (total < overhead) return false;
  layout.symbols_per_subframe = s;
  layout.subframe_bytes = total;
  layout.payload_bytes = total - overhead;
  return true;
}

}  // namespace

util::Micros QueryLayout::subframe_duration_us() const {
  return util::Micros{static_cast<double>(symbols_per_subframe) *
                      phy::kSymbolDurationUs};
}

util::Micros QueryLayout::subframes_start_us() const {
  return util::Micros{static_cast<double>(phy::kHeaderSlots) *
                      phy::kSymbolDurationUs};
}

tag::QueryTiming QueryLayout::ideal_timing() const {
  tag::QueryTiming t;
  t.subframe_duration_us = subframe_duration_us().value();
  t.code = trigger_code;
  // The last comparator edge the tag observes precisely is the end of
  // the second LOW region (subframes 3 .. 3 + code in the
  // H L H L..L H pattern).
  t.align_edge_us =
      (subframes_start_us() + (4.0 + trigger_code) * subframe_duration_us())
          .value();
  t.data_start_us = (subframes_start_us() +
                     static_cast<double>(n_trigger) * subframe_duration_us())
                        .value();
  return t;
}

QueryLayout plan_query(const QueryConfig& cfg, unsigned mcs_index,
                       mac::Security security, util::Micros tag_tick,
                       util::Micros tag_guard) {
  WITAG_REQUIRE(cfg.n_subframes >= cfg.n_trigger + 1 && cfg.n_subframes <= 64);
  WITAG_REQUIRE(cfg.n_trigger >= 5 + cfg.trigger_code);
  const phy::McsParams& m = phy::mcs(mcs_index);

  QueryLayout layout;
  layout.mcs_index = mcs_index;
  layout.n_subframes = cfg.n_subframes;
  layout.n_trigger = cfg.n_trigger;
  layout.trigger_code = cfg.trigger_code;
  layout.n_data_subframes = cfg.n_subframes - cfg.n_trigger;

  if (cfg.symbols_per_subframe != 0) {
    WITAG_REQUIRE(try_symbols(cfg.symbols_per_subframe, m, security, layout));
    return layout;
  }

  for (unsigned s = 1; s <= 64; ++s) {
    if (!try_symbols(s, m, security, layout)) continue;
    // The corruption window must keep at least one whole OFDM symbol
    // after guards and one tick of quantization loss at each end.
    const util::Micros window =
        layout.subframe_duration_us() - 2.0 * tag_guard - 2.0 * tag_tick;
    if (window < util::Micros{phy::kSymbolDurationUs}) continue;
    return layout;
  }
  WITAG_REQUIRE(false);
  return layout;
}

QueryFrame build_query(const QueryLayout& layout, mac::Client& client,
                       double trigger_low_scale) {
  WITAG_REQUIRE(trigger_low_scale > 0.0 && trigger_low_scale < 1.0);

  // Subframe payloads: deterministic filler (content is irrelevant to
  // the protocol; it only has to survive encryption size accounting).
  std::vector<util::ByteVec> payloads(layout.n_subframes);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    payloads[i].assign(layout.payload_bytes,
                       static_cast<std::uint8_t>(0xA5 ^ (i & 0xFF)));
  }

  QueryFrame frame;
  frame.layout = layout;
  const util::ByteVec psdu = client.build_ampdu(payloads);
  WITAG_ENSURE(psdu.size() == layout.subframe_bytes * layout.n_subframes);

  phy::TxConfig tx_cfg;
  tx_cfg.mcs_index = layout.mcs_index;
  frame.ppdu = phy::transmit(psdu, tx_cfg);

  // Trigger envelope pattern: HIGH, LOW, HIGH, then a LOW region of
  // (1 + trigger_code) subframes, then HIGH to the end of the trigger
  // region; everything else at full scale.
  frame.slot_scale.assign(frame.ppdu.symbols.size(), 1.0);
  auto set_low = [&](unsigned subframe) {
    const std::size_t first =
        phy::kHeaderSlots +
        static_cast<std::size_t>(subframe) * layout.symbols_per_subframe;
    for (unsigned s = 0; s < layout.symbols_per_subframe; ++s) {
      frame.slot_scale[first + s] = trigger_low_scale;
    }
  };
  set_low(1);
  for (unsigned k = 0; k <= layout.trigger_code; ++k) set_low(3 + k);
  return frame;
}

}  // namespace witag::core
