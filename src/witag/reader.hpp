// Reader: the application-level API a deployment would actually use.
//
// Wraps a Session and turns raw block-ack bit streams into framed,
// FEC-protected tag messages: it keeps a per-tag stream buffer across
// queries (frames may straddle A-MPDU boundaries and survive lost
// rounds via preamble resync), retries up to a round budget, and keeps
// running statistics. With multiple tags it polls by address using the
// trigger-code extension.
//
// Lost rounds where the tag *did* respond (the block ack died on the
// return path) enter the stream buffer as explicit erasure runs, so the
// bits after the gap stay aligned with the tag's cursor instead of
// splicing together across it. Under `TagFec::kRateless` the buffer
// carries LT droplet frames (src/witag/rateless.hpp): a poll feeds every
// CRC-valid droplet into a peeling decoder and completes as soon as the
// equations close, so erased rounds cost extra droplets, never a resync.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>
#include <cstddef>

#include "witag/link.hpp"
#include "witag/rateless.hpp"
#include "witag/session.hpp"
#include "util/units.hpp"
#include "util/bits.hpp"

namespace witag::core {

struct ReaderConfig {
  /// FEC the tags apply to their frames (reader must match).
  TagFec fec = TagFec::kRepetition3;
  /// Maximum query rounds spent per poll_frame call.
  std::size_t max_rounds_per_frame = 64;
  /// Stream buffer cap per tag [bits]; oldest bits are dropped beyond it.
  std::size_t stream_cap_bits = 1 << 16;
};

/// Decides, before each query round of a rateless poll, whether the tag
/// should sit the upcoming A-MPDU out (e.g. a predicted interference
/// burst). Skipped rounds consume poll budget and airtime — the client
/// transmits regardless — but no tag energy and no droplets; the
/// scheduler sees the loss outcome of every round the tag *did* answer.
class RoundScheduler {
 public:
  virtual ~RoundScheduler() = default;
  /// True to skip the upcoming round.
  virtual bool should_skip() = 0;
  /// Outcome feedback for a transmitted (non-skipped) round.
  virtual void observe(bool lost) = 0;
};

class Reader {
 public:
  /// The session must outlive the reader.
  Reader(Session& session, ReaderConfig cfg);

  struct PollResult {
    bool ok = false;
    util::ByteVec payload;
    std::size_t rounds = 0;           ///< Queries spent in this poll.
    std::size_t fec_corrected = 0;    ///< Channel bits FEC repaired.
    util::Micros airtime_us{};        ///< Includes skipped rounds' air.
    /// Rateless decode detail (zero under the classic FEC modes).
    std::size_t droplets_used = 0;    ///< Droplets the decoder consumed.
    std::size_t k_symbols = 0;        ///< Source symbols of the payload.
    std::size_t rounds_skipped = 0;   ///< Scheduler-skipped rounds.
    util::Micros skipped_us{};        ///< Airtime of those rounds.
  };

  /// Queries tag `address` until one whole frame decodes or the round
  /// budget runs out. Leftover bits stay buffered for the next poll.
  PollResult poll_frame(unsigned address = 0);

  /// Aggregate statistics across every poll.
  struct Stats {
    std::size_t frames_ok = 0;
    std::size_t polls_failed = 0;
    std::size_t rounds = 0;
    std::size_t rounds_lost = 0;
    std::size_t rounds_skipped = 0;   ///< Scheduler-skipped rounds.
    util::Micros airtime_us{};
    util::Micros skipped_us{};

    /// Delivered frame payload bits per second of airtime [Kbps].
    double frame_goodput_kbps(std::size_t payload_bytes) const;
  };
  const Stats& stats() const { return stats_; }

  /// Loads a tag with a framed payload using the reader's FEC (test and
  /// example convenience; a real sensor frames its own readings). Under
  /// kRateless the tag gets a droplet stream sized to the poll budget,
  /// derived from `rateless_seed` — pass a fresh per-delivery seed
  /// (Rng::derive_seed fan-out) so stale droplets from the previous
  /// delivery fail their salted CRC instead of aliasing into the new
  /// decode. The previous buffered bits for that tag are discarded.
  void load_tag(std::size_t tag_index, std::span<const std::uint8_t> payload);
  void load_tag(std::size_t tag_index, std::span<const std::uint8_t> payload,
                std::uint64_t rateless_seed);

  /// The wrapped session (the supervisor drives its MCS and idle time).
  Session& session() { return session_; }
  const Session& session() const { return session_; }

  /// Switches the frame FEC (the LinkSupervisor's escalation hook).
  /// Every stream buffer is discarded: bits received under the old code
  /// cannot align with frames encoded under the new one. Tags must be
  /// re-loaded to match.
  void set_fec(TagFec fec);
  TagFec fec() const { return cfg_.fec; }
  /// Adjusts the per-poll round budget (the LinkSupervisor tightens it
  /// to the current frame length so failed polls stop burning a budget
  /// sized for frames no longer in flight). Stream buffers are kept.
  void set_max_rounds(std::size_t rounds);
  /// Installs (or clears, with nullptr) the round scheduler consulted
  /// by rateless polls. The scheduler must outlive the reader or be
  /// cleared first; the reader does not own it.
  void set_scheduler(RoundScheduler* scheduler) { scheduler_ = scheduler; }
  const ReaderConfig& config() const { return cfg_; }

 private:
  /// Per-tag droplet stream parameters set by the last rateless load.
  struct RatelessLoad {
    std::uint64_t seed = kRatelessDefaultSeed;
    std::size_t payload_bytes = 0;
    std::size_t n_droplets = 0;
    bool loaded = false;
  };

  PollResult poll_rateless(unsigned address);
  void trim_stream(ErasedBits& stream) const;

  Session& session_;
  ReaderConfig cfg_;
  /// Per-address stream buffers (indexed by trigger code).
  std::vector<ErasedBits> streams_;
  /// Stream seed whose droplets currently fill streams_[address]; a
  /// reload under a new seed invalidates the buffered bits.
  std::vector<std::uint64_t> stream_seed_;
  /// Live decoder per address: droplets accumulate across failed polls
  /// of the same delivery (a retry resumes where the budget ran out
  /// instead of re-earning every equation).
  std::vector<std::optional<LtDecoder>> decoders_;
  std::vector<RatelessLoad> rateless_;  ///< Indexed by tag index.
  RoundScheduler* scheduler_ = nullptr;
  Stats stats_;
};

}  // namespace witag::core
