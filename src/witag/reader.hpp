// Reader: the application-level API a deployment would actually use.
//
// Wraps a Session and turns raw block-ack bit streams into framed,
// FEC-protected tag messages: it keeps a per-tag stream buffer across
// queries (frames may straddle A-MPDU boundaries and survive lost
// rounds via preamble resync), retries up to a round budget, and keeps
// running statistics. With multiple tags it polls by address using the
// trigger-code extension.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>
#include <cstddef>

#include "witag/link.hpp"
#include "witag/session.hpp"
#include "util/units.hpp"
#include "util/bits.hpp"

namespace witag::core {

struct ReaderConfig {
  /// FEC the tags apply to their frames (reader must match).
  TagFec fec = TagFec::kRepetition3;
  /// Maximum query rounds spent per poll_frame call.
  std::size_t max_rounds_per_frame = 64;
  /// Stream buffer cap per tag [bits]; oldest bits are dropped beyond it.
  std::size_t stream_cap_bits = 1 << 16;
};

class Reader {
 public:
  /// The session must outlive the reader.
  Reader(Session& session, ReaderConfig cfg);

  struct PollResult {
    bool ok = false;
    util::ByteVec payload;
    std::size_t rounds = 0;           ///< Queries spent in this poll.
    std::size_t fec_corrected = 0;    ///< Channel bits FEC repaired.
    util::Micros airtime_us{};
  };

  /// Queries tag `address` until one whole frame decodes or the round
  /// budget runs out. Leftover bits stay buffered for the next poll.
  PollResult poll_frame(unsigned address = 0);

  /// Aggregate statistics across every poll.
  struct Stats {
    std::size_t frames_ok = 0;
    std::size_t polls_failed = 0;
    std::size_t rounds = 0;
    std::size_t rounds_lost = 0;
    util::Micros airtime_us{};

    /// Delivered frame payload bits per second of airtime [Kbps].
    double frame_goodput_kbps(std::size_t payload_bytes) const;
  };
  const Stats& stats() const { return stats_; }

  /// Loads a tag with a framed payload using the reader's FEC (test and
  /// example convenience; a real sensor frames its own readings).
  void load_tag(std::size_t tag_index, std::span<const std::uint8_t> payload);

  /// The wrapped session (the supervisor drives its MCS and idle time).
  Session& session() { return session_; }
  const Session& session() const { return session_; }

  /// Switches the frame FEC (the LinkSupervisor's escalation hook).
  /// Every stream buffer is discarded: bits received under the old code
  /// cannot align with frames encoded under the new one. Tags must be
  /// re-loaded to match.
  void set_fec(TagFec fec);
  TagFec fec() const { return cfg_.fec; }
  /// Adjusts the per-poll round budget (the LinkSupervisor tightens it
  /// to the current frame length so failed polls stop burning a budget
  /// sized for frames no longer in flight). Stream buffers are kept.
  void set_max_rounds(std::size_t rounds);
  const ReaderConfig& config() const { return cfg_; }

 private:
  Session& session_;
  ReaderConfig cfg_;
  /// Per-address stream buffers (indexed by trigger code).
  std::vector<util::BitVec> streams_;
  Stats stats_;
};

}  // namespace witag::core
