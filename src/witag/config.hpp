// One configuration tree for the whole WiTAG testbed. Defaults reproduce
// the paper's LOS experiment: AP and client 8 m apart in the Figure-4
// lab, tag mid-link, CCMP off, prototype-grade tag timer.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "channel/channel_model.hpp"
#include "channel/geometry.hpp"
#include "faults/fault_plan.hpp"
#include "mac/station.hpp"
#include "tag/device.hpp"
#include "util/units.hpp"

namespace witag::core {

/// Query A-MPDU shape.
struct QueryConfig {
  /// Total subframes per A-MPDU including trigger subframes (<= 64).
  unsigned n_subframes = 64;
  /// Trigger subframes at the head (>= 5). The pattern is HIGH LOW HIGH
  /// LOW ... HIGH: the leading HIGH subframe keeps the PHY SERVICE field
  /// (scrambler sync) at full power and the trailing HIGH subframe
  /// buffers the data region from decoder smear out of the last LOW one.
  unsigned n_trigger = 5;
  /// OFDM symbols per subframe; 0 = auto (smallest duration the tag's
  /// clock granularity and guards allow at the chosen MCS).
  unsigned symbols_per_subframe = 0;
  /// MCS for query PPDUs when auto_rate is off.
  unsigned mcs_index = 5;
  /// Probe for the highest near-zero-error MCS before measuring
  /// (paper section 4.1 rule).
  bool auto_rate = false;
  /// Envelope amplitude scale of the LOW trigger subframes. Low enough
  /// that the tag comparator's release threshold (0.4 of peak) is
  /// crossed briskly rather than asymptotically.
  double trigger_low_scale = 0.25;
  /// Tag address carried by the trigger pattern: the second LOW region
  /// spans (1 + code) subframes, so only the tag configured with this
  /// address answers. Requires n_trigger >= 5 + code.
  unsigned trigger_code = 0;
};

/// How the session gives the tag its timing.
enum class TriggerMode {
  /// The session hands the tag exact query timing (upper bound;
  /// trigger-detection errors are studied separately).
  kIdeal,
  /// The tag runs its envelope detector + comparator + correlator on
  /// rendered time-domain samples; a missed trigger loses the round.
  kEnvelope,
};

struct SessionConfig {
  channel::RadioConfig radio;
  channel::Point2 ap_pos{17.2, 3.5};
  channel::Point2 client_pos{9.2, 3.5};
  channel::Point2 tag_pos{13.2, 3.5};
  channel::FloorPlan plan;
  /// Static environment reflectors; empty = default room set.
  std::vector<channel::StaticReflector> reflectors;
  channel::FadingConfig fading;

  channel::TagMode tag_mode = channel::TagMode::kPhaseFlip;
  /// Tag antenna coupling strength (see DESIGN.md calibration).
  double tag_strength = 7.1;
  tag::TagDeviceConfig tag_device;
  /// Trigger-code address of the primary tag (multi-tag extension).
  unsigned tag_address = 0;

  /// Additional tags sharing the link (multi-tag extension): each
  /// answers only queries whose trigger code matches its address.
  struct ExtraTag {
    channel::Point2 position;
    unsigned address = 1;
    double strength = 7.1;
  };
  std::vector<ExtraTag> extra_tags;
  TriggerMode trigger_mode = TriggerMode::kIdeal;
  /// Receiver noise figure of the tag's envelope detector.
  util::Db tag_detector_nf_db{15.0};

  mac::SecurityConfig security;
  QueryConfig query;
  bool cpe_correction = true;

  /// Idle gap the client leaves between exchanges (application loop
  /// turnaround).
  util::Micros inter_query_gap_us{20.0};

  /// Fault-injection plan (src/faults/). The default (all injectors
  /// off) leaves every exchange bit-identical to a build without the
  /// fault framework; see DESIGN.md section 11 for the determinism
  /// contract.
  faults::FaultPlan faults;

  /// Measurement compression: the paper's one-minute measurements cover
  /// ~40k exchanges; the simulator samples far fewer rounds, so channel
  /// time (people walking, blocking, interference exposure happens per
  /// round anyway) advances by dilation * airtime to sample the same
  /// minute-scale channel process sparsely. 1 = real time.
  double time_dilation = 1.0;

  std::uint64_t seed = 1;
};

/// Session defaults for the paper's LOS testbed (Figure 4/5): AP and
/// client 8 m apart, tag `tag_to_client` from the client on the line
/// between them. The prototype's MCU timer (1 MHz tick) is used for
/// tag switching, as in the paper's AT91SAM3X8E-based tag.
SessionConfig los_testbed_config(util::Meters tag_to_client,
                                 std::uint64_t seed);

/// Session defaults for the NLOS experiment (Figure 4/6): client at
/// location A or B with the tag 1 m away, AP fixed, people walking.
SessionConfig nlos_testbed_config(bool location_b, std::uint64_t seed);

}  // namespace witag::core
