#include "witag/config.hpp"

#include "util/require.hpp"

namespace witag::core {
namespace {

tag::TagDeviceConfig prototype_tag_device() {
  tag::TagDeviceConfig dev;
  // The paper's prototype drives the SKY13314 switch from an
  // AT91SAM3X8E; its timer gives microsecond-grade switching. The
  // aspirational 50 kHz clock is studied in tab_throughput_model and
  // tab_power_oscillator.
  dev.clock.kind = tag::OscillatorKind::kCrystal;
  dev.clock.nominal_hz = 1e6;
  dev.clock.crystal_ppm = 20.0;
  dev.guard_us = 4.0;
  dev.trigger_latency_us = 1.0;
  return dev;
}

}  // namespace

SessionConfig los_testbed_config(util::Meters tag_to_client,
                                 std::uint64_t seed) {
  WITAG_REQUIRE(tag_to_client > util::Meters{0.0} && tag_to_client < util::Meters{8.0});
  const auto layout = channel::figure4_testbed();
  SessionConfig cfg;
  cfg.ap_pos = layout.ap;
  cfg.client_pos = layout.client_los;
  // Tag on the client->AP line (both at y = 3.5, AP east of client).
  cfg.tag_pos = {cfg.client_pos.x + tag_to_client.value(), cfg.client_pos.y};
  cfg.plan = layout.plan;
  cfg.tag_device = prototype_tag_device();
  // LOS lab with a few students around.
  cfg.fading.n_scatterers = 3;
  cfg.fading.scatterer_strength = 1.5;
  cfg.fading.blocking_rate_hz = util::Hertz{0.02};
  cfg.time_dilation = 200.0;  // one-minute measurements, sampled sparsely
  cfg.seed = seed;
  return cfg;
}

SessionConfig nlos_testbed_config(bool location_b, std::uint64_t seed) {
  const auto layout = channel::figure4_testbed();
  SessionConfig cfg;
  cfg.ap_pos = layout.ap;
  cfg.client_pos = location_b ? layout.location_b : layout.location_a;
  // Tag 1 m from the client, toward the AP.
  const double dx = layout.ap.x - cfg.client_pos.x;
  const double dy = layout.ap.y - cfg.client_pos.y;
  const double d = channel::distance(layout.ap, cfg.client_pos);
  cfg.tag_pos = {cfg.client_pos.x + dx / d, cfg.client_pos.y + dy / d};
  cfg.plan = layout.plan;
  cfg.tag_device = prototype_tag_device();
  // Students working and moving near the AP and the client.
  cfg.fading.n_scatterers = 4;
  cfg.fading.blocking_rate_hz = util::Hertz{0.015};
  cfg.fading.blocking_mean_s = util::Seconds{0.2};
  cfg.fading.blocking_loss_db = util::Db{location_b ? 10.0 : 8.0};
  // The far rooms see less co-channel traffic than the main lab.
  cfg.fading.interference_rate_hz = util::Hertz{8.0};
  cfg.time_dilation = 200.0;  // one-minute measurements, sampled sparsely
  cfg.seed = seed;
  return cfg;
}

}  // namespace witag::core
