// Adaptive link supervision: graceful degradation under hostile channels.
//
// The paper's reader picks a rate once (section 4.1) and then trusts the
// channel. The LinkSupervisor closes the loop: it watches the decoded-
// frame error rate over a sliding window and walks a degradation ladder
// when the link sours — MCS fallback first (longer subframes tolerate
// clock drift and raise per-subcarrier energy against interference),
// then FEC escalation (kRepetition3 -> kRepetition5), then frame
// shrinking (shorter frames need fewer consecutive good rounds). Failed
// polls are retried with capped exponential backoff, which spends
// simulated idle time — exactly what outlasts an interference burst or a
// harvester brownout. A periodic probe poll at the next-better rung
// recovers the ladder when the channel heals.
//
// Determinism: the supervisor adds no randomness of its own; every
// decision is a pure function of poll outcomes, so a (config, seed) pair
// reproduces the identical escalation history.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <cstddef>

#include "witag/reader.hpp"
#include "util/bits.hpp"
#include "util/units.hpp"

namespace witag::core {

struct SupervisorConfig {
  /// Application payload carried per frame at the top of the ladder
  /// [bytes]; frame shrinking halves this (never below
  /// min_payload_bytes).
  std::size_t payload_bytes = 8;
  std::size_t min_payload_bytes = 2;

  /// Sliding window of recent poll outcomes the health estimate uses.
  std::size_t window = 8;
  /// Escalate when more than this fraction of the window failed.
  double escalate_fail_rate = 0.5;
  /// Probe recovery only when the window is at least this healthy.
  double recover_fail_rate = 0.125;

  /// Lowest MCS the fallback may reach (MCS 0 = BPSK 1/2).
  unsigned min_mcs = 0;
  /// An MCS rung is accepted only when probe rounds show clean
  /// subframes passing AND the tag's corruption still failing FCS at at
  /// least this rate. WiTAG's link breaks in both directions: too fast
  /// and noise corrupts idle subframes, too slow and the decoder rides
  /// through the tag's perturbation (bit 0 reads as 1) — the paper's
  /// select_rate() checks only the clean side. The threshold separates
  /// the corruption cliff (corrupt-read rates collapse to ~0 outside
  /// the band) from transient channel noise during the probe round, so
  /// it sits well below 1 but far above the cliff.
  double mcs_probe_threshold = 0.6;

  /// Retries per delivery attempt after the first failed poll.
  std::size_t max_retries = 2;
  /// Backoff before retry r: min(base * factor^r, cap). Backoff burns
  /// simulated idle time (dilated like airtime), so a few ms outlasts
  /// an interference burst or brownout window without dominating the
  /// goodput denominator.
  util::Micros backoff_base_us{4'000.0};
  double backoff_factor = 3.0;
  util::Micros backoff_cap_us{64'000.0};

  /// Successful polls between recovery probes of the next-better rung.
  std::size_t probe_period = 8;

  /// --- kRateless policy ---------------------------------------------
  /// Under TagFec::kRateless the FEC rung of the ladder is a fixed
  /// point: instead of stepping between repetition factors, the
  /// supervisor learns the droplet overhead ratio (droplets consumed
  /// per source symbol on successful deliveries, >= 1.0) by EWMA and
  /// sizes poll budgets from it — the code rate adapts continuously
  /// where repetition could only jump 3x -> 5x.
  double overhead_alpha = 0.25;
  /// Overhead assumed before the first successful decode.
  double overhead_init = 1.35;

  /// Traffic-predictive scheduling (kRateless only): watch the round
  /// loss process, estimate the Gilbert-Elliott burst persistence
  /// P(lost | previous lost), and have the tag sit out rounds predicted
  /// to land inside a burst. Skipped airtime is still charged to
  /// goodput — the win must come from droplets not wasted, not from
  /// pretending the air was free.
  bool predictive = false;
  /// EWMA weight for the loss/burst estimates.
  double predict_alpha = 0.3;
  /// Skip only while the burst-persistence estimate exceeds this.
  double skip_threshold = 0.55;
  /// Forced transmit after this many consecutive skips (the probe that
  /// discovers the burst ended).
  std::size_t max_consecutive_skips = 3;
};

/// EWMA loss/burst predictor over recent round outcomes, installed as
/// the Reader's RoundScheduler when predictive scheduling is on. Skips
/// are decided from two online estimates: the stationary loss rate and
/// the burst persistence P(this round lost | previous round lost) — the
/// Gilbert-Elliott channel's defining statistic. Purely deterministic
/// in the outcome sequence.
class BurstPredictor : public RoundScheduler {
 public:
  BurstPredictor(double alpha, double skip_threshold,
                 std::size_t max_consecutive_skips);

  bool should_skip() override;
  void observe(bool lost) override;

  double loss_rate() const { return p_loss_; }
  double burst_persistence() const { return p_continue_; }
  std::size_t skips() const { return skips_total_; }

 private:
  double alpha_;
  double threshold_;
  std::size_t max_skips_;
  double p_loss_ = 0.0;
  /// P(lost | previous lost); 0.5 start = "no burst evidence yet".
  double p_continue_ = 0.5;
  bool prev_lost_ = false;
  std::size_t skips_in_row_ = 0;
  std::size_t skips_total_ = 0;
};

/// Wraps a Reader (which wraps a Session) and delivers application
/// payloads across a faulty link. One supervisor per polled tag address.
class LinkSupervisor {
 public:
  /// The reader must outlive the supervisor. The supervisor drives the
  /// reader's FEC and the session's MCS; callers should not mutate
  /// either behind its back.
  LinkSupervisor(Reader& reader, SupervisorConfig cfg);

  /// Clears the reader's scheduler hook if this supervisor installed one.
  ~LinkSupervisor();
  LinkSupervisor(const LinkSupervisor&) = delete;
  LinkSupervisor& operator=(const LinkSupervisor&) = delete;

  struct DeliveryResult {
    bool ok = false;
    util::ByteVec payload;
    std::size_t rounds = 0;    ///< Query rounds across all attempts.
    std::size_t retries = 0;   ///< Extra attempts beyond the first.
    std::size_t rounds_skipped = 0;  ///< Predictive-scheduler skips.
    std::size_t droplets_used = 0;   ///< Droplets consumed (kRateless).
    util::Micros airtime_us{};  ///< On-air time (excludes backoff).
  };

  /// Delivers the next application payload from tag `address`: loads the
  /// tag, polls, and on failure retries with backoff before adapting the
  /// ladder. Payload content is deterministic per (address, sequence
  /// number) so runs are comparable across supervisor policies.
  DeliveryResult deliver(unsigned address = 0);

  struct Stats {
    std::size_t deliveries_ok = 0;
    std::size_t deliveries_failed = 0;
    std::size_t payload_bytes_ok = 0;  ///< Application bytes delivered.
    /// CRC-valid frames whose content was not the loaded payload: with
    /// an 8-bit preamble and CRC-8, hostile channels produce occasional
    /// false accepts (~2^-16 per stream offset). Counted as failures.
    std::size_t false_frames = 0;
    std::size_t retries = 0;
    std::size_t mcs_fallbacks = 0;
    std::size_t fec_escalations = 0;
    std::size_t frame_shrinks = 0;
    std::size_t recoveries = 0;        ///< Ladder steps back up.
    std::size_t probes = 0;            ///< Recovery probes attempted.
    std::size_t rounds_skipped = 0;    ///< Predictive-scheduler skips.
    std::size_t droplets_used = 0;     ///< Droplets consumed (kRateless).
    util::Micros airtime_us{};         ///< On-air time across deliveries.
    util::Micros backoff_us{};         ///< Simulated idle time burned.

    /// Delivered application bits per second of airtime [Kbps]. Backoff
    /// idle time counts against the link: waiting is not free.
    double goodput_kbps() const;
  };
  const Stats& stats() const { return stats_; }

  /// Current rung, exposed for tests and the robustness bench.
  unsigned mcs() const;
  TagFec fec() const { return reader_.fec(); }
  std::size_t payload_bytes() const { return payload_bytes_; }
  /// Learned droplet overhead ratio (kRateless; overhead_init until the
  /// first successful decode updates it).
  double overhead_ratio() const { return overhead_; }
  /// The installed burst predictor, or nullptr (not predictive /
  /// classic FEC).
  const BurstPredictor* predictor() const {
    return predictor_ ? &*predictor_ : nullptr;
  }

 private:
  bool escalate(unsigned address);
  bool recover(unsigned address);
  void record_outcome(bool ok);
  double window_fail_rate() const;
  util::ByteVec next_payload(unsigned address);
  /// Two-sided rate probe at the session's current MCS: one idle round
  /// (clean subframes must ack) and one all-corrupt round (the tag's
  /// perturbation must fail FCS). Returns min(clean, corrupt) success;
  /// probe airtime is charged to the supervisor's stats.
  double probe_rate_health(unsigned address);
  /// True when a frame of `payload_bytes` under `fec` still decodes
  /// comfortably inside the caller's per-poll round budget at the
  /// session's current layout — the guard that keeps the ladder from
  /// walking onto rungs where no poll can ever finish.
  bool frame_fits(TagFec fec, std::size_t payload_bytes) const;
  /// Resizes the reader's per-poll budget to the frame currently in
  /// flight (capped at the caller's original budget), so failed polls
  /// stop paying for frames the ladder no longer sends.
  void retune_budget();

  /// Channel bits one delivery is expected to need under the current
  /// frame shape — learned-overhead droplets for kRateless, the fixed
  /// encoding expansion otherwise. frame_fits/retune_budget run on it.
  std::size_t expected_frame_bits(TagFec fec,
                                  std::size_t payload_bytes) const;

  Reader& reader_;
  SupervisorConfig cfg_;
  std::size_t payload_bytes_;
  double overhead_;  ///< Learned droplet overhead (kRateless).
  std::optional<BurstPredictor> predictor_;
  unsigned top_mcs_;  ///< The rate rung the ladder recovers toward.
  TagFec base_fec_;   ///< The FEC rung the ladder recovers toward.
  std::size_t entry_budget_;  ///< The caller's per-poll round budget.
  std::deque<bool> window_;
  std::size_t ok_streak_ = 0;
  std::uint64_t sequence_ = 0;
  /// MCS at which a downward probe was rejected: corruption physics, not
  /// channel state, blocks the rung, so don't re-probe from here.
  std::optional<unsigned> mcs_blocked_at_;
  Stats stats_;
};

}  // namespace witag::core
