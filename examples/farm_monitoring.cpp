// Farm monitoring: the paper's opening motivation ("battery-free sensors
// ... from implantable body sensors to farm monitoring").
//
// A greenhouse WiFi network polls three battery-free soil sensors
// sharing ONE link, addressed through the trigger-code extension (the
// query's trigger pattern carries the tag address, so only the polled
// sensor answers). Each sensor responds with a framed, FEC-protected
// reading; the Reader API reassembles frames across queries. A power
// budget shows why no batteries are needed.
#include <cstdio>
#include <iostream>

#include "tag/power.hpp"
#include "witag/reader.hpp"

namespace {

using namespace witag;

struct SoilSensor {
  const char* name;
  std::uint8_t id;          ///< Tag address (trigger code).
  double moisture_pct;
  double temperature_c;
};

// Telemetry record: id, moisture (0.5% steps), temperature (0.25 C
// steps over -10..+53.75 C).
util::ByteVec pack_reading(const SoilSensor& s) {
  return {s.id, static_cast<std::uint8_t>(s.moisture_pct * 2.0),
          static_cast<std::uint8_t>((s.temperature_c + 10.0) * 4.0)};
}

void print_reading(std::span<const std::uint8_t> rec) {
  if (rec.size() != 3) {
    std::cout << "    malformed record\n";
    return;
  }
  std::printf("    sensor %u: moisture %.1f %%, temperature %.2f C\n",
              rec[0], rec[1] / 2.0, rec[2] / 4.0 - 10.0);
}

}  // namespace

int main() {
  std::cout << "Greenhouse soil monitoring over WiTAG\n"
            << "Three battery-free sensors share one 8 m client<->AP link "
               "and are polled by address (trigger-code extension).\n"
            << "Telemetry frames use Hamming(7,4) FEC + CRC-8 (the error "
               "control the paper leaves as future work).\n\n";

  const SoilSensor sensors[] = {
      {"bed A (near the client)", 0, 41.5, 19.25},
      {"bed B (near the AP)", 1, 33.0, 21.50},
      {"bed C (by the AP wall)", 2, 27.5, 24.75},
  };

  // One session carries all three tags: sensor 0 a metre from the
  // client, sensors 1-2 near the AP (small Ds*Dr products keep every
  // tag's corruption margin healthy).
  core::SessionConfig cfg = core::los_testbed_config(util::Meters{1.0}, 9001);
  cfg.extra_tags.push_back({{16.8, 3.5}, 1, 7.1});
  cfg.extra_tags.push_back({{16.4, 3.5}, 2, 7.1});
  core::Session session(cfg);

  core::ReaderConfig rcfg;
  rcfg.fec = core::TagFec::kHamming74;
  core::Reader reader(session, rcfg);
  for (const SoilSensor& s : sensors) {
    reader.load_tag(s.id, pack_reading(s));
  }

  for (const SoilSensor& sensor : sensors) {
    const auto result = reader.poll_frame(sensor.id);
    std::cout << "  " << sensor.name << " (address " << int(sensor.id)
              << "):\n";
    if (result.ok) {
      print_reading(result.payload);
      std::cout << "    " << result.rounds << " queries, "
                << result.fec_corrected << " bits repaired by FEC, "
                << core::Table::num(result.airtime_us.value() / 1000.0, 2)
                << " ms airtime\n";
    } else {
      std::cout << "    poll failed after " << result.rounds << " queries\n";
    }
  }

  const auto& stats = reader.stats();
  std::cout << "\nPolling cycle: " << stats.rounds << " queries, "
            << core::Table::num(stats.airtime_us.value() / 1000.0, 2)
            << " ms of airtime, " << stats.frames_ok << "/3 sensors read.\n";

  // Why battery-free works: the whole tag draws a few microwatts.
  tag::ClockConfig clock;
  clock.nominal_hz = 50e3;
  const auto power = tag::estimate_power(clock, util::Hertz{20e3});
  std::cout << "Per-tag power budget: oscillator "
            << core::Table::num(power.oscillator.microwatts(), 2) << " uW, comparator "
            << core::Table::num(power.comparator.microwatts(), 2) << " uW, logic "
            << core::Table::num(power.logic.microwatts(), 2) << " uW, RF switch "
            << core::Table::num(power.rf_switch.microwatts(), 2) << " uW -> total "
            << core::Table::num(power.total().microwatts(), 2)
            << " uW (harvestable; no battery).\n";
  return 0;
}
