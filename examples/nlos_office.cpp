// Walkthrough of the paper's Figure 4 floor plan: an 18 m x 7 m
// lab/office area. The demo moves the client (with its tag 1 m away)
// from the LOS lab to NLOS locations A and B, printing for each stop the
// obstruction profile, link SNR, tag perturbation and a live BER
// measurement — the qualitative content of Figures 5 and 6 in one run.
#include <iostream>

#include "channel/geometry.hpp"
#include "witag/session.hpp"

namespace {

using namespace witag;

void report_stop(const char* name, core::SessionConfig cfg,
                 std::size_t rounds) {
  core::Session session(std::move(cfg));
  const auto& c = session.config();
  const double d_ap = channel::distance(c.ap_pos, c.client_pos);
  const double walls =
      c.plan.penetration_loss_db(c.ap_pos, c.client_pos);
  const bool los = c.plan.line_of_sight(c.ap_pos, c.client_pos);

  const auto stats = session.run(rounds);
  std::cout << name << "\n"
            << "  AP distance        : " << core::Table::num(d_ap, 1)
            << " m (" << (los ? "line of sight" : "obstructed") << ", "
            << core::Table::num(walls, 0) << " dB of walls)\n"
            << "  link SNR           : "
            << core::Table::num(stats.mean_snr_db.value(), 1) << " dB\n"
            << "  tag perturbation   : "
            << core::Table::num(stats.tag_perturbation_db.value(), 1) << " dB\n"
            << "  measured BER       : "
            << core::Table::num(stats.metrics.ber(), 4) << "\n"
            << "  tag goodput        : "
            << core::Table::num(stats.metrics.goodput_kbps(), 1)
            << " Kbps\n\n";
}

}  // namespace

int main() {
  std::cout << "Figure-4 office walkthrough (18 m x 7 m floor)\n"
            << "The client carries a reader app; the tag sits 1 m away.\n\n";

  const auto layout = channel::figure4_testbed();
  std::cout << "Floor plan: AP at (" << layout.ap.x << ", " << layout.ap.y
            << "), " << layout.plan.walls().size()
            << " wall segments (cabinets, wood, concrete).\n\n";

  report_stop("[1] Main lab, LOS, tag 2 m from the client (Figure 5 setup)",
              core::los_testbed_config(util::Meters{2.0}, 11), 30);
  report_stop("[2] Location A: behind the metal cabinets, ~7 m (Figure 6)",
              core::nlos_testbed_config(false, 12), 30);
  report_stop("[3] Location B: far office, ~17 m, every wall (Figure 6)",
              core::nlos_testbed_config(true, 13), 30);

  std::cout << "Reading the numbers: placements near either radio give "
               "the tag a strong channel change (mid-link is the worst "
               "spot, by the radar 1/(Ds*Dr) law — see the fig5 bench); "
               "NLOS walls eat SNR but the tag still works because "
               "corruption needs only a *relative* channel change — the "
               "paper's central robustness claim.\n";
  return 0;
}
