// Quickstart: a battery-free tag sends "hello from a WiTAG tag!" to a
// completely unmodified WiFi network.
//
// What happens under the hood (paper Figure 2):
//  1. the client transmits a 64-subframe query A-MPDU,
//  2. the tag detects it and corrupts the subframes for its 0-bits by
//     flipping its reflection phase (invalidating the AP's one-shot
//     channel estimate for those subframes),
//  3. the AP — oblivious to the tag — block-acks whatever decoded,
//  4. the client reads the tag's bits straight out of the block ack.
//
// The tag link is framed with this library's preamble/length/CRC framing
// so the message survives bit slips across queries.
#include <iostream>
#include <string>

#include "witag/link.hpp"
#include "witag/session.hpp"

int main() {
  using namespace witag;

  // The paper's LOS testbed: AP and client 8 m apart, tag 1 m from the
  // client on the line between them.
  core::SessionConfig cfg = core::los_testbed_config(util::Meters{1.0},
                                                     /*seed=*/2026);
  core::Session session(cfg);

  std::cout << "WiTAG quickstart\n"
            << "  AP <-> client distance : 8 m (LOS)\n"
            << "  tag position           : 1 m from the client\n"
            << "  query MCS              : "
            << phy::mcs(session.layout().mcs_index).name << "\n"
            << "  subframe duration      : "
            << session.layout().subframe_duration_us().value() << " us\n"
            << "  link SNR               : "
            << core::Table::num(session.channel().mean_snr_db().value(), 1)
            << " dB\n\n";

  // Load the tag with a framed message.
  const std::string message = "hello from a WiTAG tag!";
  const util::ByteVec payload(message.begin(), message.end());
  session.tag_device().set_payload(
      core::encode_tag_frame(payload, core::TagFec::kNone));

  // The client keeps querying until the frame decodes from the block-ack
  // bit stream.
  util::BitVec stream;
  std::size_t rounds = 0;
  std::optional<core::DecodedTagFrame> frame;
  while (!frame && rounds < 32) {
    const auto r = session.run_round();
    ++rounds;
    for (const bool bit : r.received) stream.push_back(bit ? 1 : 0);
    frame = core::decode_tag_frame(stream, 0, core::TagFec::kNone);
  }

  if (!frame) {
    std::cout << "no frame decoded after " << rounds << " rounds\n";
    return 1;
  }
  std::cout << "decoded after " << rounds << " queries ("
            << stream.size() << " tag bits on the air):\n  \""
            << std::string(frame->payload.begin(), frame->payload.end())
            << "\"\n";
  return 0;
}
