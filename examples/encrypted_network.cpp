// The encryption story (the paper's "most importantly" claim): WiTAG
// works unchanged on a WPA2 (CCMP) network, because the tag corrupts
// ciphertext it never reads and the block ack operates below the crypto
// layer — while the PHY-layer baselines die the moment encryption is on.
//
// The demo runs the same tag message over an open network, a WPA2
// network and a WEP network, then shows HitchHike failing on the same
// encrypted deployment.
#include <iostream>
#include <string>

#include "baselines/hitchhike.hpp"
#include "witag/link.hpp"
#include "witag/session.hpp"

namespace {

using namespace witag;

double run_witag(mac::Security security, std::uint64_t seed) {
  core::SessionConfig cfg = core::los_testbed_config(util::Meters{1.0}, seed);
  cfg.security.mode = security;
  cfg.security.ccmp_key = {0x57, 0x69, 0x54, 0x41, 0x47, 0x21, 0x00, 0x01,
                           0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
  for (std::size_t i = 0; i < cfg.security.wep_key.size(); ++i) {
    cfg.security.wep_key[i] = static_cast<std::uint8_t>(0x20 + i);
  }
  core::Session session(cfg);
  return session.run(20).metrics.ber();
}

}  // namespace

int main() {
  std::cout << "WiTAG vs encryption\n"
            << "Same tag, same geometry (8 m LOS link, tag 1 m from the "
               "client); only the BSS security mode changes.\n\n";

  core::Table table({"network", "WiTAG BER", "works?"});
  const struct {
    mac::Security mode;
    const char* name;
  } nets[] = {{mac::Security::kOpen, "open"},
              {mac::Security::kCcmp, "WPA2 (AES-CCMP)"},
              {mac::Security::kWep, "WEP (RC4)"}};
  for (const auto& net : nets) {
    const double ber = run_witag(net.mode, 31415);
    table.add_row({net.name, core::Table::num(ber, 4),
                   ber < 0.1 ? "yes" : "no"});
  }
  table.print(std::cout);

  std::cout << "\nWhy: the tag corrupts subframes by moving the *channel*, "
               "not the bits — FCS failure looks identical for plaintext "
               "and ciphertext, and the AP's block ack reports it either "
               "way.\n\n";

  std::cout << "The PHY-layer alternative on the same encrypted network:\n";
  util::Rng rng(1);
  baselines::HitchhikeConfig hh;
  hh.encrypted = true;
  const auto result = baselines::run_hitchhike(hh, 1, rng);
  std::cout << "  HitchHike: " << (result.works ? "works" : "fails")
            << " — " << result.failure << "\n";

  baselines::HitchhikeConfig hh_unmod;
  hh_unmod.modified_ap = false;
  const auto result2 = baselines::run_hitchhike(hh_unmod, 1, rng);
  std::cout << "  HitchHike (unmodified AP, open network): "
            << (result2.works ? "works" : "fails") << " — "
            << result2.failure << "\n";
  return 0;
}
