// Tests for the strong-typed quantity layer: conversion round trips,
// dimensional identities, and compile-time assertions that the operator
// set admits exactly the physically meaningful expressions.
#include "util/units.hpp"

#include <functional>
#include <type_traits>

#include <gtest/gtest.h>

namespace witag::util {
namespace {

// ---------------------------------------------------------------------
// Compile-time operator-set checks. A unit-safety regression (allowing
// Dbm + Dbm, or passing a raw double where a quantity belongs) makes
// these static_asserts fail, so the build itself is the test.
// ---------------------------------------------------------------------

// No implicit construction from double and no implicit decay back.
static_assert(!std::is_convertible_v<double, Db>);
static_assert(!std::is_convertible_v<double, Dbm>);
static_assert(!std::is_convertible_v<double, Watts>);
static_assert(!std::is_convertible_v<double, Hertz>);
static_assert(!std::is_convertible_v<double, Meters>);
static_assert(!std::is_convertible_v<double, Micros>);
static_assert(!std::is_convertible_v<double, Seconds>);
static_assert(!std::is_convertible_v<Db, double>);
static_assert(!std::is_convertible_v<Dbm, double>);
static_assert(!std::is_convertible_v<Watts, double>);

// No cross-unit construction: a Db is not a Dbm, a Micros is not a
// Seconds, a Meters is not a Hertz.
static_assert(!std::is_constructible_v<Dbm, Db>);
static_assert(!std::is_constructible_v<Db, Dbm>);
static_assert(!std::is_constructible_v<Seconds, Micros>);
static_assert(!std::is_constructible_v<Micros, Seconds>);
static_assert(!std::is_constructible_v<Hertz, Meters>);
static_assert(!std::is_constructible_v<Watts, Dbm>);

// Absolute powers do not add on a log scale: Dbm + Dbm must not compile.
static_assert(!std::is_invocable_v<std::plus<>, Dbm, Dbm>);
// Shifting an absolute power by a ratio is fine, both ways.
static_assert(std::is_invocable_v<std::plus<>, Dbm, Db>);
static_assert(std::is_invocable_v<std::plus<>, Db, Dbm>);
static_assert(std::is_invocable_v<std::minus<>, Dbm, Db>);
// Dbm - Dbm is the ratio of two powers: a Db.
static_assert(std::is_same_v<decltype(Dbm{10.0} - Dbm{4.0}), Db>);
// ... but Db - Dbm is meaningless.
static_assert(!std::is_invocable_v<std::minus<>, Db, Dbm>);

// Linear quantities: same-type sums, dimensionless scaling, and
// same-type ratios only.
static_assert(std::is_same_v<decltype(Watts{1.0} + Watts{2.0}), Watts>);
static_assert(std::is_same_v<decltype(Watts{1.0} * 2.0), Watts>);
static_assert(std::is_same_v<decltype(2.0 * Watts{1.0}), Watts>);
static_assert(std::is_same_v<decltype(Watts{1.0} / Watts{2.0}), double>);
static_assert(std::is_same_v<decltype(Micros{8.0} - Micros{4.0}), Micros>);
static_assert(std::is_same_v<decltype(Hertz{1.0} + Hertz{2.0}), Hertz>);
// No mixing across linear units.
static_assert(!std::is_invocable_v<std::plus<>, Watts, Hertz>);
static_assert(!std::is_invocable_v<std::plus<>, Meters, Micros>);
static_assert(!std::is_invocable_v<std::plus<>, Micros, Seconds>);
static_assert(!std::is_invocable_v<std::minus<>, Hertz, Meters>);
static_assert(!std::is_invocable_v<std::plus<>, Watts, Db>);
// Watts * Watts has no representation here (no W^2 type): must not compile.
static_assert(!std::is_invocable_v<std::multiplies<>, Watts, Watts>);
// Adding a raw double to a quantity must not compile either way.
static_assert(!std::is_invocable_v<std::plus<>, Watts, double>);
static_assert(!std::is_invocable_v<std::plus<>, double, Micros>);

// Comparisons exist within a unit, not across units.
static_assert(std::is_invocable_v<std::less<>, Meters, Meters>);
static_assert(!std::is_invocable_v<std::less<>, Meters, Hertz>);
static_assert(!std::is_invocable_v<std::equal_to<>, Db, Dbm>);

// Conversion helpers return the dimensionally correct type.
static_assert(std::is_same_v<decltype(to_seconds(Micros{1.0})), Seconds>);
static_assert(std::is_same_v<decltype(to_micros(Seconds{1.0})), Micros>);

// ---------------------------------------------------------------------
// Runtime conversions.
// ---------------------------------------------------------------------

TEST(Units, DbLinearRoundTrip) {
  EXPECT_NEAR(db_to_linear(Db{3.0}), 1.995, 0.01);
  EXPECT_NEAR(linear_to_db(100.0).value(), 20.0, 1e-9);
  EXPECT_NEAR(linear_to_db(db_to_linear(Db{-7.3})).value(), -7.3, 1e-9);
  EXPECT_NEAR(db_to_linear(linear_to_db(0.042)), 0.042, 1e-12);
}

TEST(Units, DbmWattsRoundTrip) {
  EXPECT_NEAR(to_watts(Dbm{0.0}).value(), 1e-3, 1e-12);
  EXPECT_NEAR(to_dbm(Watts{1.0}).value(), 30.0, 1e-9);
  EXPECT_NEAR(to_dbm(to_watts(Dbm{15.0})).value(), 15.0, 1e-9);
  EXPECT_NEAR(to_watts(to_dbm(Watts{2.5e-6})).value(), 2.5e-6, 1e-15);
}

TEST(Units, LogArithmeticMatchesLinear) {
  // Shifting -40 dBm up by 13 dB must equal multiplying the watts by
  // the linear gain.
  const Dbm shifted = Dbm{-40.0} + Db{13.0};
  EXPECT_NEAR(to_watts(shifted).value(),
              to_watts(Dbm{-40.0}).value() * db_to_linear(Db{13.0}), 1e-12);
  // The ratio of two absolute powers is their dB difference.
  EXPECT_NEAR((Dbm{-20.0} - Dbm{-26.0}).value(), 6.0, 1e-12);
}

TEST(Units, DurationRoundTrip) {
  EXPECT_NEAR(to_seconds(Micros{250.0}).value(), 250e-6, 1e-15);
  EXPECT_NEAR(to_micros(Seconds{0.004}).value(), 4000.0, 1e-9);
  EXPECT_NEAR(to_micros(to_seconds(Micros{123.4})).value(), 123.4, 1e-9);
}

TEST(Units, WavelengthAt24GHz) {
  EXPECT_NEAR(wavelength(kWifi24GHz).value(), 0.123, 0.001);
  // lambda * f = c, dimensional identity of the conversion.
  EXPECT_NEAR(wavelength(kWifi5GHz).value() * kWifi5GHz.value(),
              kSpeedOfLight, 1.0);
}

TEST(Units, ThermalNoiseFloor) {
  // kTB for 20 MHz at 290 K is about -101 dBm.
  const Dbm noise = to_dbm(thermal_noise(kBandwidth20MHz));
  EXPECT_NEAR(noise.value(), -101.0, 0.5);
  // Thermal noise is linear in bandwidth: double the band, +3 dB.
  const Db delta =
      to_dbm(thermal_noise(2.0 * kBandwidth20MHz)) -
      to_dbm(thermal_noise(kBandwidth20MHz));
  EXPECT_NEAR(delta.value(), 3.0103, 1e-3);
  // ... and in temperature.
  EXPECT_NEAR(thermal_noise(kBandwidth20MHz, 580.0).value(),
              2.0 * thermal_noise(kBandwidth20MHz, 290.0).value(), 1e-18);
}

TEST(Units, WattsMicrowattsAccessors) {
  EXPECT_NEAR(Watts::from_microwatts(2.5).value(), 2.5e-6, 1e-18);
  EXPECT_NEAR(Watts{3e-6}.microwatts(), 3.0, 1e-9);
}

TEST(Units, LinearOpsBehave) {
  EXPECT_EQ((Micros{3.0} + Micros{4.0}).value(), 7.0);
  EXPECT_EQ((Meters{10.0} - Meters{4.0}).value(), 6.0);
  EXPECT_EQ((-Micros{2.0}).value(), -2.0);
  EXPECT_EQ(Hertz{6.0} / Hertz{3.0}, 2.0);
  Micros acc{1.0};
  acc += Micros{2.0};
  acc -= Micros{0.5};
  EXPECT_NEAR(acc.value(), 2.5, 1e-12);
  EXPECT_LT(Micros{1.0}, Micros{2.0});
  EXPECT_GT(Db{3.0}, Db{-3.0});
}

}  // namespace
}  // namespace witag::util
