#include "witag/link.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace witag::core {
namespace {

class LinkFec : public ::testing::TestWithParam<TagFec> {};

TEST_P(LinkFec, FrameRoundTrip) {
  const util::ByteVec payload{0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  const util::BitVec bits = encode_tag_frame(payload, GetParam());
  EXPECT_EQ(bits.size(), tag_frame_bits(payload.size(), GetParam()));
  const auto decoded = decode_tag_frame(bits, 0, GetParam());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, payload);
  EXPECT_EQ(decoded->next_offset, bits.size());
}

TEST_P(LinkFec, EmptyPayloadRoundTrip) {
  const util::BitVec bits = encode_tag_frame({}, GetParam());
  const auto decoded = decode_tag_frame(bits, 0, GetParam());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST_P(LinkFec, ResyncsAfterGarbagePrefix) {
  util::Rng rng(1);
  const util::ByteVec payload{1, 2, 3};
  util::BitVec stream = rng.bits(83);  // unaligned garbage
  const util::BitVec frame = encode_tag_frame(payload, GetParam());
  stream.insert(stream.end(), frame.begin(), frame.end());
  const auto decoded = decode_tag_frame(stream, 0, GetParam());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, payload);
}

TEST_P(LinkFec, DecodesBackToBackFrames) {
  const util::ByteVec p1{0x11};
  const util::ByteVec p2{0x22, 0x33};
  util::BitVec stream = encode_tag_frame(p1, GetParam());
  const util::BitVec f2 = encode_tag_frame(p2, GetParam());
  stream.insert(stream.end(), f2.begin(), f2.end());
  const auto frames = decode_tag_stream(stream, GetParam());
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload, p1);
  EXPECT_EQ(frames[1].payload, p2);
}

TEST_P(LinkFec, CrcRejectsCorruptPayloadBits) {
  // Corrupt beyond FEC's correction capability: a burst.
  const util::ByteVec payload{9, 8, 7, 6};
  util::BitVec bits = encode_tag_frame(payload, GetParam());
  for (std::size_t i = 20; i < 32 && i < bits.size(); ++i) bits[i] ^= 1;
  const auto decoded = decode_tag_frame(bits, 0, GetParam());
  // Either rejected outright or (for FEC) corrected; a burst of 12
  // consecutive flips exceeds every FEC here, so it must not return the
  // corrupted frame as valid.
  if (decoded) {
    EXPECT_NE(decoded->payload, payload);
  } else {
    SUCCEED();
  }
}

INSTANTIATE_TEST_SUITE_P(AllFecs, LinkFec,
                         ::testing::Values(TagFec::kNone,
                                           TagFec::kRepetition3,
                                           TagFec::kRepetition5,
                                           TagFec::kHamming74));

TEST(LinkFecCoding, Repetition3CorrectsSingleErrorsPerTriple) {
  util::Rng rng(2);
  const util::BitVec raw = rng.bits(64);
  util::BitVec coded = fec_encode(raw, TagFec::kRepetition3);
  // Flip one bit in every triple.
  for (std::size_t t = 0; t < coded.size() / 3; ++t) {
    coded[3 * t + (t % 3)] ^= 1;
  }
  const FecDecodeResult out = fec_decode(coded, TagFec::kRepetition3);
  EXPECT_EQ(out.bits, raw);
  EXPECT_EQ(out.corrected, raw.size());
}

TEST(LinkFecCoding, Repetition5CorrectsDoubleErrorsPerQuintuple) {
  util::Rng rng(7);
  const util::BitVec raw = rng.bits(64);
  util::BitVec coded = fec_encode(raw, TagFec::kRepetition5);
  // Two flips per quintuple: majority over 5 copies still wins.
  for (std::size_t q = 0; q < coded.size() / 5; ++q) {
    coded[5 * q + (q % 5)] ^= 1;
    coded[5 * q + ((q + 2) % 5)] ^= 1;
  }
  const FecDecodeResult out = fec_decode(coded, TagFec::kRepetition5);
  EXPECT_EQ(out.bits, raw);
  // `corrected` counts repaired codeword blocks, not flipped copies.
  EXPECT_EQ(out.corrected, raw.size());
}

TEST(LinkFecCoding, Repetition5TripleErrorFlipsBit) {
  const util::BitVec raw{1, 0};
  util::BitVec coded = fec_encode(raw, TagFec::kRepetition5);
  coded[0] ^= 1;
  coded[1] ^= 1;
  coded[2] ^= 1;
  const FecDecodeResult out = fec_decode(coded, TagFec::kRepetition5);
  EXPECT_NE(out.bits, raw);  // majority of 5 lost to three flips
}

TEST(LinkFecCoding, Hamming74CorrectsSingleErrorPerBlock) {
  util::Rng rng(3);
  const util::BitVec raw = rng.bits(64);
  util::BitVec coded = fec_encode(raw, TagFec::kHamming74);
  for (std::size_t b = 0; b < coded.size() / 7; ++b) {
    coded[7 * b + (b % 7)] ^= 1;
  }
  const FecDecodeResult out = fec_decode(coded, TagFec::kHamming74);
  EXPECT_EQ(out.bits, raw);
  EXPECT_EQ(out.corrected, coded.size() / 7);
}

TEST(LinkFecCoding, Hamming74DoubleErrorIsNotCorrected) {
  const util::BitVec raw{1, 0, 1, 1};
  util::BitVec coded = fec_encode(raw, TagFec::kHamming74);
  coded[0] ^= 1;
  coded[3] ^= 1;
  const FecDecodeResult out = fec_decode(coded, TagFec::kHamming74);
  EXPECT_NE(out.bits, raw);  // Hamming(7,4) cannot fix two errors
}

TEST(LinkFecCoding, RatesAreAsExpected) {
  EXPECT_EQ(tag_frame_bits(10, TagFec::kNone), 16u + 80u + 8u);
  EXPECT_EQ(tag_frame_bits(10, TagFec::kRepetition3), 3u * 104u);
  EXPECT_EQ(tag_frame_bits(10, TagFec::kRepetition5), 5u * 104u);
  EXPECT_EQ(tag_frame_bits(10, TagFec::kHamming74), 104u / 4u * 7u);
}

TEST(LinkFecCoding, BlockSizeContracts) {
  const util::BitVec ragged(5, 0);
  EXPECT_THROW(fec_encode(ragged, TagFec::kHamming74), std::invalid_argument);
  EXPECT_THROW(fec_decode(ragged, TagFec::kRepetition3),
               std::invalid_argument);
  EXPECT_THROW(fec_decode(ragged, TagFec::kHamming74), std::invalid_argument);
}

TEST(Link, StreamWithNoFrameReturnsNothing) {
  util::Rng rng(4);
  const util::BitVec noise = rng.bits(600);
  EXPECT_TRUE(decode_tag_stream(noise, TagFec::kNone).empty());
}

TEST(Link, PayloadSizeLimit) {
  const util::ByteVec big(kMaxTagPayload + 1, 0);
  EXPECT_THROW(encode_tag_frame(big, TagFec::kNone), std::invalid_argument);
}

TEST(Link, OffsetSkipsEarlierFrames) {
  const util::ByteVec p1{0xAA};
  const util::ByteVec p2{0xBB};
  util::BitVec stream = encode_tag_frame(p1, TagFec::kNone);
  const std::size_t first_len = stream.size();
  const util::BitVec f2 = encode_tag_frame(p2, TagFec::kNone);
  stream.insert(stream.end(), f2.begin(), f2.end());
  const auto decoded = decode_tag_frame(stream, first_len, TagFec::kNone);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, p2);
}

}  // namespace
}  // namespace witag::core
