#include "witag/link.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace witag::core {
namespace {

class LinkFec : public ::testing::TestWithParam<TagFec> {};

TEST_P(LinkFec, FrameRoundTrip) {
  const util::ByteVec payload{0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  const util::BitVec bits = encode_tag_frame(payload, GetParam());
  EXPECT_EQ(bits.size(), tag_frame_bits(payload.size(), GetParam()));
  const auto decoded = decode_tag_frame(bits, 0, GetParam());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, payload);
  EXPECT_EQ(decoded->next_offset, bits.size());
}

TEST_P(LinkFec, EmptyPayloadRoundTrip) {
  const util::BitVec bits = encode_tag_frame({}, GetParam());
  const auto decoded = decode_tag_frame(bits, 0, GetParam());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST_P(LinkFec, ResyncsAfterGarbagePrefix) {
  util::Rng rng(1);
  const util::ByteVec payload{1, 2, 3};
  util::BitVec stream = rng.bits(83);  // unaligned garbage
  const util::BitVec frame = encode_tag_frame(payload, GetParam());
  stream.insert(stream.end(), frame.begin(), frame.end());
  const auto decoded = decode_tag_frame(stream, 0, GetParam());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, payload);
}

TEST_P(LinkFec, DecodesBackToBackFrames) {
  const util::ByteVec p1{0x11};
  const util::ByteVec p2{0x22, 0x33};
  util::BitVec stream = encode_tag_frame(p1, GetParam());
  const util::BitVec f2 = encode_tag_frame(p2, GetParam());
  stream.insert(stream.end(), f2.begin(), f2.end());
  const auto frames = decode_tag_stream(stream, GetParam());
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload, p1);
  EXPECT_EQ(frames[1].payload, p2);
}

TEST_P(LinkFec, CrcRejectsCorruptPayloadBits) {
  // Corrupt beyond FEC's correction capability: a burst.
  const util::ByteVec payload{9, 8, 7, 6};
  util::BitVec bits = encode_tag_frame(payload, GetParam());
  for (std::size_t i = 20; i < 32 && i < bits.size(); ++i) bits[i] ^= 1;
  const auto decoded = decode_tag_frame(bits, 0, GetParam());
  // Either rejected outright or (for FEC) corrected; a burst of 12
  // consecutive flips exceeds every FEC here, so it must not return the
  // corrupted frame as valid.
  if (decoded) {
    EXPECT_NE(decoded->payload, payload);
  } else {
    SUCCEED();
  }
}

// A lost block-ack round enters the reader's stream as an erasure run of
// the round's length (the tag's cursor advanced; the bits are simply
// unknown). These regressions pin that the erasure-aware decoders keep
// the stream aligned across such gaps instead of splicing and hunting
// for a resync — the frame after the gap must decode at its exact
// offset.

/// Replaces `count` bits at `start` with erasures in place.
void erase_span(ErasedBits& stream, std::size_t start, std::size_t count) {
  for (std::size_t i = start; i < start + count; ++i) {
    stream.bits[i] = 0;
    stream.known[i] = 0;
  }
}

constexpr std::size_t kRoundBits = 59;  // data bits per default query

TEST_P(LinkFec, ResyncsAcrossSingleErasedRound) {
  // Payloads sized so a full lost round fits inside one frame even for
  // kNone (12-byte payload = 128 raw frame bits > 2 * kRoundBits).
  const util::ByteVec p1(12, 0xA1);
  const util::ByteVec p2(12, 0xB2);
  const util::ByteVec p3(12, 0xC3);
  util::BitVec all = encode_tag_frame(p1, GetParam());
  const std::size_t f1_end = all.size();
  const util::BitVec f2 = encode_tag_frame(p2, GetParam());
  all.insert(all.end(), f2.begin(), f2.end());
  const util::BitVec f3 = encode_tag_frame(p3, GetParam());
  all.insert(all.end(), f3.begin(), f3.end());

  ErasedBits stream;
  stream.append(all);
  // One lost round in the middle of frame 2.
  erase_span(stream, f1_end + f2.size() / 2, kRoundBits);

  const auto frames = decode_tag_stream(stream, GetParam());
  ASSERT_GE(frames.size(), 2u);
  EXPECT_EQ(frames.front().payload, p1);
  EXPECT_EQ(frames.front().next_offset, f1_end);
  // Whatever the erasure did to frame 2, frame 3 must decode at its
  // position: the erasure run kept the stream aligned. Repetition codes
  // are shift-tolerant by a bit or two (a majority window straddling
  // two copies of the same value still wins), hence the small slack.
  EXPECT_EQ(frames.back().payload, p3);
  EXPECT_GE(frames.back().next_offset + 4, stream.size());
}

TEST_P(LinkFec, ResyncsAcrossConsecutiveErasedRounds) {
  const util::ByteVec p1(12, 0x0F);
  const util::ByteVec p2(12, 0x5A);
  util::BitVec all = encode_tag_frame(p1, GetParam());
  const std::size_t f1_end = all.size();
  const util::BitVec f2 = encode_tag_frame(p2, GetParam());
  all.insert(all.end(), f2.begin(), f2.end());

  ErasedBits stream;
  stream.append(all);
  // Two back-to-back lost rounds straddling the frame boundary: the
  // tail of frame 1 and the head of frame 2 are both unknown.
  ASSERT_GT(f1_end, kRoundBits);
  erase_span(stream, f1_end - kRoundBits, 2 * kRoundBits);

  const auto frames = decode_tag_stream(stream, GetParam());
  // Neither frame is required to survive (the erasure may exceed the
  // code), but any frame that does decode must carry a loaded payload
  // near its true offset — never a phantom assembled across the gap.
  // (Repetition codes tolerate a bit or two of shift; see above.)
  for (const auto& frame : frames) {
    EXPECT_TRUE(frame.payload == p1 || frame.payload == p2);
    const std::size_t off = frame.next_offset;
    EXPECT_TRUE((off + 4 >= f1_end && off <= f1_end + 4) ||
                off + 4 >= stream.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllFecs, LinkFec,
                         ::testing::Values(TagFec::kNone,
                                           TagFec::kRepetition3,
                                           TagFec::kRepetition5,
                                           TagFec::kHamming74));

TEST(LinkFecCoding, Repetition3CorrectsSingleErrorsPerTriple) {
  util::Rng rng(2);
  const util::BitVec raw = rng.bits(64);
  util::BitVec coded = fec_encode(raw, TagFec::kRepetition3);
  // Flip one bit in every triple.
  for (std::size_t t = 0; t < coded.size() / 3; ++t) {
    coded[3 * t + (t % 3)] ^= 1;
  }
  const FecDecodeResult out = fec_decode(coded, TagFec::kRepetition3);
  EXPECT_EQ(out.bits, raw);
  EXPECT_EQ(out.corrected, raw.size());
}

TEST(LinkFecCoding, Repetition5CorrectsDoubleErrorsPerQuintuple) {
  util::Rng rng(7);
  const util::BitVec raw = rng.bits(64);
  util::BitVec coded = fec_encode(raw, TagFec::kRepetition5);
  // Two flips per quintuple: majority over 5 copies still wins.
  for (std::size_t q = 0; q < coded.size() / 5; ++q) {
    coded[5 * q + (q % 5)] ^= 1;
    coded[5 * q + ((q + 2) % 5)] ^= 1;
  }
  const FecDecodeResult out = fec_decode(coded, TagFec::kRepetition5);
  EXPECT_EQ(out.bits, raw);
  // `corrected` counts repaired codeword blocks, not flipped copies.
  EXPECT_EQ(out.corrected, raw.size());
}

TEST(LinkFecCoding, Repetition5TripleErrorFlipsBit) {
  const util::BitVec raw{1, 0};
  util::BitVec coded = fec_encode(raw, TagFec::kRepetition5);
  coded[0] ^= 1;
  coded[1] ^= 1;
  coded[2] ^= 1;
  const FecDecodeResult out = fec_decode(coded, TagFec::kRepetition5);
  EXPECT_NE(out.bits, raw);  // majority of 5 lost to three flips
}

TEST(LinkFecCoding, Hamming74CorrectsSingleErrorPerBlock) {
  util::Rng rng(3);
  const util::BitVec raw = rng.bits(64);
  util::BitVec coded = fec_encode(raw, TagFec::kHamming74);
  for (std::size_t b = 0; b < coded.size() / 7; ++b) {
    coded[7 * b + (b % 7)] ^= 1;
  }
  const FecDecodeResult out = fec_decode(coded, TagFec::kHamming74);
  EXPECT_EQ(out.bits, raw);
  EXPECT_EQ(out.corrected, coded.size() / 7);
}

TEST(LinkFecCoding, Hamming74DoubleErrorIsNotCorrected) {
  const util::BitVec raw{1, 0, 1, 1};
  util::BitVec coded = fec_encode(raw, TagFec::kHamming74);
  coded[0] ^= 1;
  coded[3] ^= 1;
  const FecDecodeResult out = fec_decode(coded, TagFec::kHamming74);
  EXPECT_NE(out.bits, raw);  // Hamming(7,4) cannot fix two errors
}

TEST(LinkFecCoding, RatesAreAsExpected) {
  EXPECT_EQ(tag_frame_bits(10, TagFec::kNone), 16u + 80u + 8u);
  EXPECT_EQ(tag_frame_bits(10, TagFec::kRepetition3), 3u * 104u);
  EXPECT_EQ(tag_frame_bits(10, TagFec::kRepetition5), 5u * 104u);
  EXPECT_EQ(tag_frame_bits(10, TagFec::kHamming74), 104u / 4u * 7u);
}

TEST(LinkFecCoding, BlockSizeContracts) {
  const util::BitVec ragged(5, 0);
  EXPECT_THROW(fec_encode(ragged, TagFec::kHamming74), std::invalid_argument);
  EXPECT_THROW(fec_decode(ragged, TagFec::kRepetition3),
               std::invalid_argument);
  EXPECT_THROW(fec_decode(ragged, TagFec::kHamming74), std::invalid_argument);
}

TEST(LinkFecCoding, RepetitionDecodesThroughPartialErasure) {
  util::Rng rng(11);
  const util::BitVec raw = rng.bits(32);
  const util::BitVec coded = fec_encode(raw, TagFec::kRepetition3);
  util::BitVec known(coded.size(), 1);
  for (std::size_t t = 0; t < coded.size() / 3; ++t) {
    known[3 * t + (t % 3)] = 0;  // one copy of every triple erased
  }
  const FecDecodeResult out = fec_decode(coded, known, TagFec::kRepetition3);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.bits, raw);
  EXPECT_EQ(out.corrected, 0u);  // surviving copies agree
}

TEST(LinkFecCoding, RepetitionAllCopiesErasedFails) {
  const util::BitVec raw{1, 0};
  const util::BitVec coded = fec_encode(raw, TagFec::kRepetition5);
  util::BitVec known(coded.size(), 1);
  for (std::size_t i = 0; i < 5; ++i) known[i] = 0;  // whole first group
  const FecDecodeResult out = fec_decode(coded, known, TagFec::kRepetition5);
  EXPECT_FALSE(out.ok);
}

TEST(LinkFecCoding, Hamming74FillsSingleErasurePerBlock) {
  util::Rng rng(13);
  const util::BitVec raw = rng.bits(64);
  const util::BitVec coded = fec_encode(raw, TagFec::kHamming74);
  util::BitVec known(coded.size(), 1);
  for (std::size_t b = 0; b < coded.size() / 7; ++b) {
    known[7 * b + (b % 7)] = 0;
  }
  const FecDecodeResult out = fec_decode(coded, known, TagFec::kHamming74);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.bits, raw);
  EXPECT_EQ(out.corrected, coded.size() / 7);  // every fill counted
}

TEST(LinkFecCoding, Hamming74DoubleErasureFails) {
  const util::BitVec raw{1, 0, 1, 1};
  const util::BitVec coded = fec_encode(raw, TagFec::kHamming74);
  util::BitVec known(coded.size(), 1);
  known[0] = 0;
  known[4] = 0;
  const FecDecodeResult out = fec_decode(coded, known, TagFec::kHamming74);
  EXPECT_FALSE(out.ok);
}

TEST(LinkFecCoding, NoneRejectsAnyErasure) {
  const util::BitVec raw{1, 0, 1};
  util::BitVec known(raw.size(), 1);
  known[1] = 0;
  const FecDecodeResult out = fec_decode(raw, known, TagFec::kNone);
  EXPECT_FALSE(out.ok);
}

TEST(Link, StreamWithNoFrameReturnsNothing) {
  util::Rng rng(4);
  const util::BitVec noise = rng.bits(600);
  EXPECT_TRUE(decode_tag_stream(noise, TagFec::kNone).empty());
}

TEST(Link, PayloadSizeLimit) {
  const util::ByteVec big(kMaxTagPayload + 1, 0);
  EXPECT_THROW(encode_tag_frame(big, TagFec::kNone), std::invalid_argument);
}

TEST(Link, OffsetSkipsEarlierFrames) {
  const util::ByteVec p1{0xAA};
  const util::ByteVec p2{0xBB};
  util::BitVec stream = encode_tag_frame(p1, TagFec::kNone);
  const std::size_t first_len = stream.size();
  const util::BitVec f2 = encode_tag_frame(p2, TagFec::kNone);
  stream.insert(stream.end(), f2.begin(), f2.end());
  const auto decoded = decode_tag_frame(stream, first_len, TagFec::kNone);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, p2);
}

}  // namespace
}  // namespace witag::core
