// HDR histogram: bucket-edge behavior, quantile math against a
// sorted-vector oracle, merge algebra, and the registry's quantile-
// gauge export.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/hdr.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace witag::obs {
namespace {

class HdrTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::instance().reset(); }
  void TearDown() override { MetricsRegistry::instance().reset(); }
};

using HdrBuckets = HdrTest;
using HdrQuantile = HdrTest;
using HdrMerge = HdrTest;
using HdrRegistry = HdrTest;

TEST_F(HdrBuckets, ConfigValidation) {
  EXPECT_THROW(HdrHistogram({/*lowest=*/0.0}), std::invalid_argument);
  EXPECT_THROW(HdrHistogram({/*lowest=*/-1.0}), std::invalid_argument);
  EXPECT_THROW(HdrHistogram({1.0, /*sub_bucket_bits=*/0}),
               std::invalid_argument);
  EXPECT_THROW(HdrHistogram({1.0, /*sub_bucket_bits=*/13}),
               std::invalid_argument);
  EXPECT_THROW(HdrHistogram({1.0, 5, /*octaves=*/0}), std::invalid_argument);
  EXPECT_THROW(HdrHistogram({1.0, 5, /*octaves=*/65}), std::invalid_argument);
  const HdrHistogram ok({0.5, 3, 20});
  EXPECT_EQ(ok.bucket_count(), 20u * 8u + 1u);
}

TEST_F(HdrBuckets, EdgeAssignment) {
  // lowest=1, 2 bits -> 4 sub-buckets per octave. Octave 0 covers
  // (1, 2] with edges at 1.25, 1.5, 1.75, 2.0.
  const HdrConfig cfg{1.0, 2, 8};
  const HdrHistogram h(cfg);

  // At or below `lowest` (and junk) lands in bucket 0.
  EXPECT_EQ(h.bucket_index(1.0), 0u);
  EXPECT_EQ(h.bucket_index(0.25), 0u);
  EXPECT_EQ(h.bucket_index(-3.0), 0u);
  EXPECT_EQ(h.bucket_index(std::numeric_limits<double>::quiet_NaN()), 0u);

  // Within octave 0 the sub-bucket edges are linear; buckets bracket
  // [lower, upper), so an exact edge value lands in the next bucket.
  EXPECT_EQ(h.bucket_index(1.1), 0u);    // [1, 1.25)
  EXPECT_EQ(h.bucket_index(1.25), 1u);   // exact edge -> next bucket
  EXPECT_EQ(h.bucket_index(1.26), 1u);   // [1.25, 1.5)
  EXPECT_EQ(h.bucket_index(1.9), 3u);    // [1.75, 2)
  EXPECT_EQ(h.bucket_index(2.0), 4u);    // first bucket of octave 1
  EXPECT_EQ(h.bucket_index(2.2), 4u);    // [2, 2.5)

  // Edges are consistent: lower <= value < upper... the overestimate
  // contract only needs upper >= value, which quantile() relies on.
  for (const double v : {1.01, 1.3, 2.2, 3.7, 100.0, 200.0}) {
    const std::size_t i = h.bucket_index(v);
    EXPECT_LE(h.bucket_lower(i), v) << v;
    EXPECT_GE(h.bucket_upper(i), v) << v;
  }

  // Beyond lowest * 2^octaves is the overflow bucket.
  EXPECT_EQ(h.bucket_index(257.0), h.bucket_count() - 1);
}

TEST_F(HdrBuckets, TopBucketOverflow) {
  HdrHistogram h({1.0, 2, 4});  // covers (1, 16]
  h.record(10.0);
  h.record(1e9);
  h.record(5e9);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 5e9);
  // The overflow bucket reports the true maximum, not an edge.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5e9);
}

TEST_F(HdrQuantile, MatchesSortedOracleWithinPrecision) {
  const HdrConfig cfg{1.0, 5, 40};  // 2^-5 ~ 3.1% relative error
  HdrHistogram h(cfg);
  std::vector<double> values;
  util::Rng gen(0x4D125EEDull);
  for (int i = 0; i < 20000; ++i) {
    // Spread over ~5 decades, all above `lowest`.
    const double v = std::exp(gen.uniform(0.0, std::log(1e5)));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());

  const double rel = 1.0 + std::ldexp(1.0, -cfg.sub_bucket_bits);
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::size_t rank =
        std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(
                                     q * static_cast<double>(values.size()))));
    const double oracle = values[rank - 1];
    const double got = h.quantile(q);
    EXPECT_GE(got, oracle) << "q=" << q;
    EXPECT_LE(got, oracle * rel) << "q=" << q;
  }
}

TEST_F(HdrQuantile, EmptyAndSingleValue) {
  HdrHistogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.record(42.0);
  const double rel = 1.0 + std::ldexp(1.0, -h.config().sub_bucket_bits);
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_GE(h.quantile(q), 42.0);
    EXPECT_LE(h.quantile(q), 42.0 * rel);
  }
}

TEST_F(HdrMerge, AssociativeAndCommutative) {
  const HdrConfig cfg{1.0, 4, 30};
  HdrHistogram a(cfg), b(cfg), c(cfg);
  util::Rng gen(0xAB1DE5ull);
  for (int i = 0; i < 500; ++i) a.record(std::exp(gen.uniform(0.0, 8.0)));
  for (int i = 0; i < 300; ++i) b.record(std::exp(gen.uniform(2.0, 10.0)));
  for (int i = 0; i < 200; ++i) c.record(std::exp(gen.uniform(0.0, 30.0)));

  // (a + b) + c
  HdrHistogram left(cfg);
  left.merge(a);
  left.merge(b);
  left.merge(c);
  // c + (b + a)
  HdrHistogram right(cfg);
  right.merge(c);
  right.merge(b);
  right.merge(a);

  EXPECT_EQ(left.count(), 1000u);
  EXPECT_EQ(left.count(), right.count());
  EXPECT_DOUBLE_EQ(left.sum(), right.sum());
  EXPECT_DOUBLE_EQ(left.max(), right.max());
  EXPECT_EQ(left.overflow(), right.overflow());
  EXPECT_EQ(left.nonzero_buckets(), right.nonzero_buckets());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(left.quantile(q), right.quantile(q)) << q;
  }
}

TEST_F(HdrMerge, MergeEqualsBulkRecord) {
  const HdrConfig cfg{1.0, 5, 40};
  HdrHistogram shard1(cfg), shard2(cfg), whole(cfg);
  util::Rng gen(0x5EED5ull);
  for (int i = 0; i < 1000; ++i) {
    const double v = std::exp(gen.uniform(0.0, 12.0));
    (i % 2 == 0 ? shard1 : shard2).record(v);
    whole.record(v);
  }
  HdrHistogram merged(cfg);
  merged.merge(shard1);
  merged.merge(shard2);
  EXPECT_EQ(merged.nonzero_buckets(), whole.nonzero_buckets());
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.quantile(0.99), whole.quantile(0.99));
}

TEST_F(HdrMerge, ConfigMismatchThrows) {
  HdrHistogram a({1.0, 5, 40});
  const HdrHistogram b({1.0, 4, 40});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST_F(HdrRegistry, SnapshotExportsQuantileGauges) {
  HdrHistogram& h = MetricsRegistry::instance().hdr("test.latency");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();

  ASSERT_EQ(snap.hdrs.count("test.latency"), 1u);
  const auto& out = snap.hdrs.at("test.latency");
  EXPECT_EQ(out.count, 100u);
  EXPECT_DOUBLE_EQ(out.max, 100.0);
  ASSERT_EQ(snap.gauges.count("test.latency.p50"), 1u);
  ASSERT_EQ(snap.gauges.count("test.latency.p90"), 1u);
  ASSERT_EQ(snap.gauges.count("test.latency.p99"), 1u);
  ASSERT_EQ(snap.gauges.count("test.latency.p999"), 1u);
  ASSERT_EQ(snap.gauges.count("test.latency.max"), 1u);
  const double rel = 1.0 + std::ldexp(1.0, -h.config().sub_bucket_bits);
  EXPECT_GE(snap.gauges.at("test.latency.p50"), 50.0);
  EXPECT_LE(snap.gauges.at("test.latency.p50"), 50.0 * rel);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.latency.max"), 100.0);
}

TEST_F(HdrRegistry, SameNameSameObjectDifferentConfigThrows) {
  HdrHistogram& a = MetricsRegistry::instance().hdr("test.same");
  HdrHistogram& b = MetricsRegistry::instance().hdr("test.same");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(MetricsRegistry::instance().hdr("test.same", {2.0, 5, 40}),
               std::invalid_argument);
}

TEST_F(HdrRegistry, ResetZeroesButKeepsRegistration) {
  HdrHistogram& h = MetricsRegistry::instance().hdr("test.reset");
  h.record(10.0);
  MetricsRegistry::instance().reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_EQ(&h, &MetricsRegistry::instance().hdr("test.reset"));
}

}  // namespace
}  // namespace witag::obs
