// BatchDecoder parity and allocation tests: decoding N subframe
// timelines through phy::BatchDecoder must equal per-PPDU receive()
// lane for lane — across lane counts, ragged MCS/length mixes, noisy
// channels and broken lanes (corrupted SIG, truncated captures) — and
// steady-state batch decode must not allocate.
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "obs/obs.hpp"
#include "phy/batch.hpp"
#include "phy/mcs.hpp"
#include "phy/ppdu.hpp"
#include "util/rng.hpp"

namespace witag {
namespace {

/// One lane's prepared input: the (possibly corrupted) symbol timeline
/// plus how much of it the receiver gets to see.
struct Lane {
  std::vector<phy::FreqSymbol> symbols;
  std::size_t visible = 0;

  std::span<const phy::FreqSymbol> view() const {
    return {symbols.data(), visible};
  }
};

void add_noise(std::vector<phy::FreqSymbol>& symbols, util::Rng& rng,
               double variance, std::size_t first_slot = 0) {
  for (std::size_t s = first_slot; s < symbols.size(); ++s) {
    for (util::Cx& bin : symbols[s]) bin += rng.complex_normal(variance);
  }
}

/// Builds a ragged batch: every lane gets its own MCS and PSDU length,
/// and the regime cycle plants clean, noisy, corrupted-SIG and
/// truncated lanes so the batch path handles broken lanes exactly like
/// receive() does.
std::vector<Lane> make_lanes(std::size_t n, std::uint64_t seed) {
  std::vector<Lane> lanes(n);
  for (std::size_t l = 0; l < n; ++l) {
    util::Rng rng(seed + l);
    phy::TxConfig tx;
    tx.mcs_index = static_cast<unsigned>(rng.uniform_int(phy::kNumMcs));
    const std::size_t length = 1 + rng.uniform_int(600);
    phy::TxPpdu ppdu = phy::transmit(rng.bytes(length), tx);
    Lane& lane = lanes[l];
    lane.symbols = std::move(ppdu.symbols);
    lane.visible = lane.symbols.size();
    switch (l % 4) {
      case 0:  // clean
        break;
      case 1:  // noisy channel: expect occasional payload bit errors
        add_noise(lane.symbols, rng, 0.05);
        break;
      case 2:  // SIG destroyed: header CRC must fail in both paths
        add_noise(lane.symbols, rng, 50.0, phy::kPreambleSlots);
        break;
      default:  // truncated capture (header visible, data cut short)
        add_noise(lane.symbols, rng, 0.01);
        lane.visible = phy::kHeaderSlots +
                       (lane.symbols.size() - phy::kHeaderSlots) / 2;
        break;
    }
  }
  return lanes;
}

void expect_lane_parity(const phy::RxResult& batch, const phy::RxResult& ref,
                        std::size_t lane, std::size_t n_lanes) {
  ASSERT_EQ(batch.sig_ok, ref.sig_ok) << "lane " << lane << "/" << n_lanes;
  ASSERT_EQ(batch.sig, ref.sig) << "lane " << lane << "/" << n_lanes;
  ASSERT_EQ(batch.psdu, ref.psdu) << "lane " << lane << "/" << n_lanes;
}

TEST(BatchDecode, MatchesPerPpduReceiveAcrossLaneCounts) {
  phy::BatchDecoder decoder;  // one decoder across all shapes: buffers
  const phy::RxConfig cfg;    // sized by one batch must not leak into
  for (const std::size_t n : {1u, 3u, 8u, 17u}) {  // the next
    const std::vector<Lane> lanes = make_lanes(n, 0xBA'7C'00 + n);
    std::vector<std::span<const phy::FreqSymbol>> views;
    views.reserve(n);
    for (const Lane& lane : lanes) views.push_back(lane.view());

    const std::span<const phy::RxResult> results =
        decoder.decode(views, cfg);
    ASSERT_EQ(results.size(), n);
    for (std::size_t l = 0; l < n; ++l) {
      const phy::RxResult ref = phy::receive(lanes[l].view(), cfg);
      expect_lane_parity(results[l], ref, l, n);
    }
  }
}

TEST(BatchDecode, DecodeOneMatchesReceive) {
  phy::BatchDecoder decoder;
  const phy::RxConfig cfg;
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const std::vector<Lane> lanes = make_lanes(1, 0xD0'0E + 13 * trial);
    const phy::RxResult& got = decoder.decode_one(lanes[0].view(), cfg);
    const phy::RxResult ref = phy::receive(lanes[0].view(), cfg);
    expect_lane_parity(got, ref, 0, 1);
  }
}

TEST(BatchDecode, BrokenLaneDoesNotLeakStaleHeader) {
  // A lane slot that decoded fine in one batch and fails SIG in the
  // next must come back with a default header, exactly like a fresh
  // receive() — the reused results_ buffer must not echo the old SIG.
  phy::BatchDecoder decoder;
  const phy::RxConfig cfg;
  std::vector<Lane> lanes = make_lanes(1, 0x57'A1);  // l%4==0: clean
  ASSERT_TRUE(decoder.decode_one(lanes[0].view(), cfg).sig_ok);

  util::Rng rng(7);
  add_noise(lanes[0].symbols, rng, 50.0, phy::kPreambleSlots);
  const phy::RxResult& got = decoder.decode_one(lanes[0].view(), cfg);
  const phy::RxResult ref = phy::receive(lanes[0].view(), cfg);
  expect_lane_parity(got, ref, 0, 1);
  EXPECT_FALSE(got.sig_ok);
  EXPECT_EQ(got.sig, phy::HtSig{});
}

TEST(BatchDecode, SteadyStateDecodesWithoutAllocating) {
  phy::BatchDecoder decoder;
  const phy::RxConfig cfg;
  const std::vector<Lane> lanes = make_lanes(8, 0xA1'10C);
  std::vector<std::span<const phy::FreqSymbol>> views;
  for (const Lane& lane : lanes) views.push_back(lane.view());

  // Two warm-up rounds: the first sizes the SoA staging, the second
  // confirms the high-water mark before we start asserting.
  decoder.decode(views, cfg);
  decoder.decode(views, cfg);
  const std::size_t warm_capacity = decoder.capacity_bytes();
  ASSERT_GT(warm_capacity, 0u);

#if WITAG_OBS_ENABLED
  const std::uint64_t reuses_before =
      obs::counter("phy.batch.scratch_reuses").value();
#endif
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    const auto results = decoder.decode(views, cfg);
    ASSERT_EQ(results.size(), views.size()) << "round " << round;
    ASSERT_EQ(decoder.capacity_bytes(), warm_capacity) << "round " << round;
  }
#if WITAG_OBS_ENABLED
  // Every steady-state batch must have taken the reuse (zero-alloc)
  // path: the counter only increments when no buffer grew.
  EXPECT_EQ(obs::counter("phy.batch.scratch_reuses").value(),
            reuses_before + kRounds);
#endif
}

}  // namespace
}  // namespace witag
