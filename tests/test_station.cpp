#include "mac/station.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace witag::mac {
namespace {

SecurityConfig open_net() { return {}; }

SecurityConfig ccmp_net() {
  SecurityConfig sec;
  sec.mode = Security::kCcmp;
  sec.ccmp_key = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  return sec;
}

SecurityConfig wep_net() {
  SecurityConfig sec;
  sec.mode = Security::kWep;
  for (std::size_t i = 0; i < sec.wep_key.size(); ++i) {
    sec.wep_key[i] = static_cast<std::uint8_t>(i + 1);
  }
  return sec;
}

std::vector<util::ByteVec> payloads(std::size_t n, std::size_t size) {
  std::vector<util::ByteVec> out(n);
  util::Rng rng(n + size);
  for (auto& p : out) p = rng.bytes(size);
  return out;
}

class StationSecurity : public ::testing::TestWithParam<Security> {
 protected:
  SecurityConfig config() const {
    switch (GetParam()) {
      case Security::kOpen: return open_net();
      case Security::kWep: return wep_net();
      case Security::kCcmp: return ccmp_net();
    }
    return {};
  }
};

TEST_P(StationSecurity, CleanExchangeAcksEverySubframe) {
  const SecurityConfig sec = config();
  Client client(make_address(1), make_address(2), sec);
  AccessPoint ap(make_address(2), sec);
  const auto psdu = client.build_ampdu(payloads(10, 20));
  const auto result = ap.receive_psdu(psdu);
  EXPECT_EQ(result.subframes_valid, 10u);
  EXPECT_EQ(result.decrypt_failures, 0u);
  ASSERT_TRUE(result.block_ack.has_value());
  const auto outcomes = client.subframe_outcomes(result.block_ack);
  ASSERT_EQ(outcomes.size(), 10u);
  for (const bool ok : outcomes) EXPECT_TRUE(ok);
}

TEST_P(StationSecurity, CorruptedSubframeReadsAsZero) {
  const SecurityConfig sec = config();
  Client client(make_address(1), make_address(2), sec);
  AccessPoint ap(make_address(2), sec);
  util::ByteVec psdu = client.build_ampdu(payloads(8, 30));
  // Corrupt bytes inside subframe 3's MPDU region. Subframe layout is
  // uniform here, so locate it via deaggregation first.
  const auto subframes = deaggregate(psdu);
  const std::size_t target = subframes[3].offset + kDelimiterBytes + 10;
  for (int i = 0; i < 8; ++i) psdu[target + static_cast<std::size_t>(i)] ^= 0x5A;
  const auto result = ap.receive_psdu(psdu);
  EXPECT_EQ(result.subframes_valid, 7u);
  const auto outcomes = client.subframe_outcomes(result.block_ack);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i], i != 3) << "subframe " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSecurityModes, StationSecurity,
                         ::testing::Values(Security::kOpen, Security::kWep,
                                           Security::kCcmp));

TEST(Station, SequenceNumbersAdvanceAcrossAmpdus) {
  Client client(make_address(1), make_address(2), open_net());
  client.build_ampdu(payloads(5, 10));
  EXPECT_EQ(client.last_seq(0), 0u);
  EXPECT_EQ(client.last_seq(4), 4u);
  client.build_ampdu(payloads(5, 10));
  EXPECT_EQ(client.last_seq(0), 5u);
}

TEST(Station, SequenceWrapsAt4096) {
  Client client(make_address(1), make_address(2), open_net());
  for (int i = 0; i < 4095 / 60; ++i) client.build_ampdu(payloads(60, 4));
  // Push over the wrap point.
  client.build_ampdu(payloads(60, 4));
  client.build_ampdu(payloads(60, 4));
  AccessPoint ap(make_address(2), open_net());
  const auto psdu = client.build_ampdu(payloads(10, 4));
  const auto result = ap.receive_psdu(psdu);
  const auto outcomes = client.subframe_outcomes(result.block_ack);
  for (const bool ok : outcomes) EXPECT_TRUE(ok);
}

TEST(Station, ApIgnoresFramesForOtherReceivers) {
  Client client(make_address(1), make_address(9), open_net());  // wrong AP
  AccessPoint ap(make_address(2), open_net());
  const auto result = ap.receive_psdu(client.build_ampdu(payloads(4, 10)));
  EXPECT_EQ(result.subframes_valid, 0u);
  EXPECT_FALSE(result.block_ack.has_value());
}

TEST(Station, NoBlockAckMeansAllSubframesUnacked) {
  Client client(make_address(1), make_address(2), open_net());
  client.build_ampdu(payloads(6, 10));
  const auto outcomes = client.subframe_outcomes(std::nullopt);
  ASSERT_EQ(outcomes.size(), 6u);
  for (const bool ok : outcomes) EXPECT_FALSE(ok);
}

TEST(Station, CorruptedFirstSubframeShiftsBaStart) {
  // When subframe 0 dies, the AP's BA starts at the first valid seq; the
  // client must still read the remaining subframes correctly.
  Client client(make_address(1), make_address(2), open_net());
  AccessPoint ap(make_address(2), open_net());
  util::ByteVec psdu = client.build_ampdu(payloads(5, 25));
  const auto subframes = deaggregate(psdu);
  psdu[subframes[0].offset + kDelimiterBytes + 5] ^= 0xFF;
  const auto result = ap.receive_psdu(psdu);
  const auto outcomes = client.subframe_outcomes(result.block_ack);
  EXPECT_FALSE(outcomes[0]);
  for (std::size_t i = 1; i < 5; ++i) EXPECT_TRUE(outcomes[i]) << i;
}

TEST(Station, WepDecryptFailureCountsButStillAcks) {
  // FCS-valid but undecryptable: acked at MAC level, flagged upward.
  SecurityConfig tx_sec = wep_net();
  SecurityConfig rx_sec = wep_net();
  rx_sec.wep_key[0] ^= 0xFF;  // AP has a different key
  Client client(make_address(1), make_address(2), tx_sec);
  AccessPoint ap(make_address(2), rx_sec);
  const auto result = ap.receive_psdu(client.build_ampdu(payloads(3, 15)));
  EXPECT_EQ(result.subframes_valid, 3u);
  EXPECT_EQ(result.decrypt_failures, 3u);
  ASSERT_TRUE(result.block_ack.has_value());
}

TEST(Station, BuildAmpduValidatesCount) {
  Client client(make_address(1), make_address(2), open_net());
  EXPECT_THROW(client.build_ampdu({}), std::invalid_argument);
  EXPECT_THROW(client.build_ampdu(payloads(65, 1)), std::invalid_argument);
}

}  // namespace
}  // namespace witag::mac
