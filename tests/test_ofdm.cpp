#include "phy/ofdm.hpp"

#include <gtest/gtest.h>

#include <set>

#include "phy/scrambler.hpp"
#include "util/rng.hpp"

namespace witag::phy {
namespace {

using util::Cx;

TEST(Ofdm, BinIndexMapping) {
  EXPECT_EQ(bin_index(0), 0u);
  EXPECT_EQ(bin_index(1), 1u);
  EXPECT_EQ(bin_index(28), 28u);
  EXPECT_EQ(bin_index(-1), 63u);
  EXPECT_EQ(bin_index(-28), 36u);
  EXPECT_EQ(bin_index(-32), 32u);
  EXPECT_THROW(bin_index(32), std::invalid_argument);
  EXPECT_THROW(bin_index(-33), std::invalid_argument);
}

TEST(Ofdm, SubcarrierLayout) {
  const auto data = data_subcarriers();
  const auto pilots = pilot_subcarriers();
  EXPECT_EQ(data.size(), 52u);
  EXPECT_EQ(pilots.size(), 4u);

  std::set<int> all(data.begin(), data.end());
  for (const int p : pilots) {
    EXPECT_FALSE(all.contains(p)) << "pilot collides with data " << p;
    all.insert(p);
  }
  EXPECT_FALSE(all.contains(0)) << "DC must be unused";
  EXPECT_EQ(all.size(), 56u);
  for (const int k : all) {
    EXPECT_GE(k, -28);
    EXPECT_LE(k, 28);
  }
}

TEST(Ofdm, AssembleExtractRoundTrip) {
  util::Rng rng(1);
  util::CxVec points(52);
  for (Cx& p : points) p = rng.complex_normal(1.0);
  const FreqSymbol symbol = assemble_data_symbol(points, 3);
  const util::CxVec extracted = extract_data(symbol);
  ASSERT_EQ(extracted.size(), 52u);
  for (std::size_t i = 0; i < 52; ++i) {
    EXPECT_EQ(extracted[i], points[i]);
  }
}

TEST(Ofdm, PilotsFollowPolaritySequence) {
  const util::CxVec points(52, Cx{});
  for (const std::size_t sym : {0u, 1u, 5u, 126u, 127u}) {
    const FreqSymbol symbol = assemble_data_symbol(points, sym);
    const auto pilots = extract_pilots(symbol);
    const auto expected = pilot_values(sym);
    for (unsigned i = 0; i < kNumPilots; ++i) {
      EXPECT_EQ(pilots[i], expected[i]) << "symbol " << sym << " pilot " << i;
    }
  }
}

TEST(Ofdm, PilotBasePatternSigns) {
  // Base pattern {1,1,1,-1} times p_{n+1}; at symbol index where the
  // polarity is +1 the last pilot must be negative.
  const auto& pol = pilot_polarity_sequence();
  // Find a symbol with polarity +1 at p_{i+1}.
  std::size_t sym = 0;
  while (pol[(sym + 1) % 127] != 1) ++sym;
  const auto pilots = pilot_values(sym);
  EXPECT_DOUBLE_EQ(pilots[0].real(), 1.0);
  EXPECT_DOUBLE_EQ(pilots[3].real(), -1.0);
}

TEST(Ofdm, UnusedBinsAreZero) {
  util::Rng rng(2);
  util::CxVec points(52);
  for (Cx& p : points) p = rng.complex_normal(1.0);
  const FreqSymbol symbol = assemble_data_symbol(points, 0);
  EXPECT_EQ(symbol[bin_index(0)], Cx{});
  EXPECT_EQ(symbol[bin_index(29)], Cx{});
  EXPECT_EQ(symbol[bin_index(-29)], Cx{});
  EXPECT_EQ(symbol[32], Cx{});
}

TEST(Ofdm, TimeDomainRoundTrip) {
  util::Rng rng(3);
  util::CxVec points(52);
  for (Cx& p : points) p = rng.complex_normal(1.0);
  const FreqSymbol symbol = assemble_data_symbol(points, 7);
  const util::CxVec samples = to_time(symbol);
  ASSERT_EQ(samples.size(), kSamplesPerSymbol);
  const FreqSymbol back = from_time(samples);
  for (unsigned bin = 0; bin < kFftSize; ++bin) {
    EXPECT_NEAR(std::abs(back[bin] - symbol[bin]), 0.0, 1e-10) << bin;
  }
}

TEST(Ofdm, CyclicPrefixIsCopyOfTail) {
  util::Rng rng(4);
  util::CxVec points(52);
  for (Cx& p : points) p = rng.complex_normal(1.0);
  const util::CxVec samples = to_time(assemble_data_symbol(points, 0));
  for (unsigned i = 0; i < kCpLen; ++i) {
    EXPECT_NEAR(std::abs(samples[i] - samples[kFftSize + i]), 0.0, 1e-12);
  }
}

TEST(Ofdm, RejectsWrongPointCount) {
  const util::CxVec points(51);
  EXPECT_THROW(assemble_data_symbol(points, 0), std::invalid_argument);
  const util::CxVec samples(79);
  EXPECT_THROW(from_time(samples), std::invalid_argument);
}

}  // namespace
}  // namespace witag::phy
