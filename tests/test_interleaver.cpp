#include "phy/interleaver.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace witag::phy {
namespace {

class InterleaverParam : public ::testing::TestWithParam<Modulation> {};

TEST_P(InterleaverParam, DeinterleaveInvertsInterleave) {
  util::Rng rng(1);
  const unsigned n_cbps = kDataSubcarriers * bits_per_symbol(GetParam());
  const util::BitVec bits = rng.bits(n_cbps);
  EXPECT_EQ(deinterleave(interleave(bits, GetParam()), GetParam()), bits);
}

TEST_P(InterleaverParam, MapIsAPermutation) {
  const unsigned n_bpsc = bits_per_symbol(GetParam());
  const unsigned n_cbps = kDataSubcarriers * n_bpsc;
  const auto map = interleave_map(n_cbps, n_bpsc);
  std::vector<bool> seen(n_cbps, false);
  for (const std::size_t j : map) {
    ASSERT_LT(j, n_cbps);
    EXPECT_FALSE(seen[j]) << "duplicate target " << j;
    seen[j] = true;
  }
}

TEST_P(InterleaverParam, AdjacentCodedBitsLandOnDistantSubcarriers) {
  // The first permutation spreads adjacent coded bits ~Ncbps/13 apart;
  // they must never land on the same subcarrier.
  const unsigned n_bpsc = bits_per_symbol(GetParam());
  const unsigned n_cbps = kDataSubcarriers * n_bpsc;
  const auto map = interleave_map(n_cbps, n_bpsc);
  for (unsigned k = 0; k + 1 < n_cbps; ++k) {
    const auto sc_a = map[k] / n_bpsc;
    const auto sc_b = map[k + 1] / n_bpsc;
    EXPECT_NE(sc_a, sc_b) << "coded bits " << k << "," << k + 1;
  }
}

TEST_P(InterleaverParam, LlrDeinterleaveMatchesBitDeinterleave) {
  util::Rng rng(2);
  const unsigned n_cbps = kDataSubcarriers * bits_per_symbol(GetParam());
  const util::BitVec bits = rng.bits(n_cbps);
  const util::BitVec inter = interleave(bits, GetParam());
  std::vector<double> llrs(n_cbps);
  for (unsigned i = 0; i < n_cbps; ++i) llrs[i] = inter[i] ? -1.0 : 1.0;
  const auto deint = deinterleave_llrs(llrs, GetParam());
  for (unsigned i = 0; i < n_cbps; ++i) {
    EXPECT_EQ(deint[i] < 0.0, bits[i] == 1) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModulations, InterleaverParam,
                         ::testing::Values(Modulation::kBpsk,
                                           Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

TEST(Interleaver, RejectsWrongSize) {
  const util::BitVec bits(10, 0);
  EXPECT_THROW(interleave(bits, Modulation::kBpsk), std::invalid_argument);
  EXPECT_THROW(deinterleave(bits, Modulation::kBpsk), std::invalid_argument);
}

}  // namespace
}  // namespace witag::phy
