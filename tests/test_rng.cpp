#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace witag::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsIndependentStream) {
  Rng a(7);
  Rng c = a.split();
  // The split stream must differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == c.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 9.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(6);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.uniform_int(7)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 7.0, 600.0);
  }
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(6);
  EXPECT_THROW(rng.uniform_int(0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(8);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(9);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, ComplexNormalVariance) {
  Rng rng(10);
  double power = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) power += std::norm(rng.complex_normal(4.0));
  EXPECT_NEAR(power / n, 4.0, 0.1);
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, PoissonMeanLargeLambda) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(14);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BytesAndBitsShapes) {
  Rng rng(16);
  const auto bytes = rng.bytes(33);
  EXPECT_EQ(bytes.size(), 33u);
  const auto bits = rng.bits(77);
  EXPECT_EQ(bits.size(), 77u);
  for (const auto b : bits) EXPECT_LE(b, 1);
}

}  // namespace
}  // namespace witag::util
