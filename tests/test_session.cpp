#include "witag/session.hpp"

#include <gtest/gtest.h>

#include "mac/airtime.hpp"
#include "witag/link.hpp"

namespace witag::core {
namespace {

SessionConfig quiet_los(double tag_at, std::uint64_t seed) {
  SessionConfig cfg = los_testbed_config(util::Meters{tag_at}, seed);
  // Deterministic clean channel for invariants: no fading/interference.
  cfg.fading.n_scatterers = 0;
  cfg.fading.blocking_rate_hz = util::Hertz{0.0};
  cfg.fading.interference_rate_hz = util::Hertz{0.0};
  return cfg;
}

TEST(Session, IdleTagMeansEverySubframeAcked) {
  Session s(quiet_los(4.0, 1));
  EXPECT_DOUBLE_EQ(s.probe_subframe_success(), 1.0);
}

TEST(Session, TagBitsArriveExactly) {
  // Tag near the client: perturbation far above threshold; every 0
  // corrupts, every 1 survives.
  Session s(quiet_los(1.0, 2));
  for (int round = 0; round < 5; ++round) {
    const auto r = s.run_round();
    ASSERT_FALSE(r.lost);
    ASSERT_EQ(r.received.size(), r.sent.size());
    for (std::size_t i = 0; i < r.sent.size(); ++i) {
      EXPECT_EQ(r.received[i], (r.sent[i] & 1u) != 0) << "bit " << i;
    }
  }
}

TEST(Session, RunAggregatesMetrics) {
  Session s(quiet_los(1.0, 3));
  const auto stats = s.run(4);
  EXPECT_EQ(stats.metrics.rounds(), 4u);
  EXPECT_EQ(stats.metrics.bits(),
            4u * s.layout().n_data_subframes);
  EXPECT_DOUBLE_EQ(stats.metrics.ber(), 0.0);
  EXPECT_GT(stats.metrics.goodput_kbps(), 20.0);
  EXPECT_LT(stats.metrics.goodput_kbps(), 80.0);
  EXPECT_GT(stats.mean_snr_db.value(), 35.0);
}

TEST(Session, DeterministicGivenSeed) {
  Session a(quiet_los(3.0, 7));
  Session b(quiet_los(3.0, 7));
  for (int i = 0; i < 3; ++i) {
    const auto ra = a.run_round();
    const auto rb = b.run_round();
    EXPECT_EQ(ra.sent, rb.sent);
    EXPECT_EQ(ra.received, rb.received);
    EXPECT_DOUBLE_EQ(ra.airtime_us.value(), rb.airtime_us.value());
  }
}

TEST(Session, WorksThroughCcmpEncryption) {
  SessionConfig cfg = quiet_los(1.0, 4);
  cfg.security.mode = mac::Security::kCcmp;
  cfg.security.ccmp_key = {1, 2, 3, 4, 5, 6, 7, 8,
                           9, 10, 11, 12, 13, 14, 15, 16};
  Session s(cfg);
  const auto stats = s.run(4);
  EXPECT_DOUBLE_EQ(stats.metrics.ber(), 0.0);
}

TEST(Session, WorksThroughWepEncryption) {
  SessionConfig cfg = quiet_los(1.0, 5);
  cfg.security.mode = mac::Security::kWep;
  for (std::size_t i = 0; i < cfg.security.wep_key.size(); ++i) {
    cfg.security.wep_key[i] = static_cast<std::uint8_t>(i);
  }
  Session s(cfg);
  const auto stats = s.run(4);
  EXPECT_DOUBLE_EQ(stats.metrics.ber(), 0.0);
}

TEST(Session, OpenShortModeNeedsTwiceTheCoupling) {
  // Section 5.2's point as an invariant: at the calibrated coupling the
  // phase-flip tag works but the open/short tag's half-sized channel
  // change cannot corrupt subframes; doubling the coupling restores it.
  SessionConfig cfg = quiet_los(1.0, 6);
  cfg.tag_mode = channel::TagMode::kOpenShort;
  Session weak(cfg);
  EXPECT_GT(weak.run(2).metrics.ber(), 0.2);  // corruptions missed

  cfg.tag_strength *= 2.0;
  Session strong(cfg);
  EXPECT_DOUBLE_EQ(strong.run(4).metrics.ber(), 0.0);
}

TEST(Session, EnvelopeTriggerModeDeliversBits) {
  SessionConfig cfg = quiet_los(1.0, 8);
  cfg.trigger_mode = TriggerMode::kEnvelope;
  Session s(cfg);
  const auto stats = s.run(4);
  EXPECT_EQ(stats.triggers_missed, 0u);
  EXPECT_DOUBLE_EQ(stats.metrics.ber(), 0.0);
}

TEST(Session, SelectRatePicksHighMcsOnCleanChannel) {
  Session s(quiet_los(1.0, 9));
  const unsigned mcs = s.select_rate();
  // 50+ dB SNR: every MCS is clean; the rule picks the top one.
  EXPECT_EQ(mcs, 7u);
  EXPECT_EQ(s.layout().mcs_index, 7u);
}

TEST(Session, CustomTagPayloadFlowsThroughLinkLayer) {
  SessionConfig cfg = quiet_los(1.0, 10);
  Session s(cfg);
  const util::ByteVec message{'W', 'i', 'T', 'A', 'G'};
  s.tag_device().set_payload(encode_tag_frame(message, TagFec::kNone));

  util::BitVec stream;
  while (stream.size() < tag_frame_bits(message.size(), TagFec::kNone)) {
    const auto r = s.run_round();
    ASSERT_FALSE(r.lost);
    for (std::size_t i = 0; i < r.received.size(); ++i) {
      stream.push_back(r.received[i] ? 1 : 0);
    }
  }
  const auto frames = decode_tag_stream(stream, TagFec::kNone);
  ASSERT_FALSE(frames.empty());
  EXPECT_EQ(frames[0].payload, message);
}

TEST(Session, MidLinkWeakerThanEndpoints) {
  // The Figure-5 property as an invariant: perturbation at the midpoint
  // is strictly the weakest.
  Session mid(quiet_los(4.0, 11));
  Session near(quiet_los(1.0, 11));
  EXPECT_LT(mid.channel().tag_perturbation_db(),
            near.channel().tag_perturbation_db());
}

TEST(Session, AirtimeIsAccountedPerRound) {
  Session s(quiet_los(2.0, 12));
  const auto r = s.run_round();
  // At least DIFS + PPDU + SIFS + BA.
  const double floor_us = mac::kDifsUs.value() +
                          s.layout().subframe_duration_us().value() * 64 +
                          mac::kSifsUs.value();
  EXPECT_GT(r.airtime_us.value(), floor_us * 0.9);
}

TEST(Session, LosConfigValidation) {
  EXPECT_THROW(los_testbed_config(util::Meters{0.0}, 1),
               std::invalid_argument);
  EXPECT_THROW(los_testbed_config(util::Meters{8.0}, 1),
               std::invalid_argument);
}

TEST(Session, UnaddressedTagStaysSilent) {
  // Two tags; query tag 1: tag 0's subframes must all pass untouched
  // apart from the corruption tag 1 applies (which carries tag 1's
  // bits). Reading tag 1's bits back exactly proves tag 0 never fired.
  SessionConfig cfg = quiet_los(1.0, 30);
  cfg.extra_tags.push_back({{16.4, 3.5}, 1, 7.1});
  Session s(cfg);
  const auto r = s.run_round_addressed(1);
  ASSERT_FALSE(r.lost);
  ASSERT_EQ(r.received.size(), r.sent.size());
  for (std::size_t i = 0; i < r.sent.size(); ++i) {
    EXPECT_EQ(r.received[i], (r.sent[i] & 1u) != 0) << i;
  }
}

TEST(Session, EnvelopeModeRoutesByAddress) {
  SessionConfig cfg = quiet_los(1.0, 31);
  cfg.trigger_mode = TriggerMode::kEnvelope;
  cfg.extra_tags.push_back({{16.4, 3.5}, 1, 7.1});
  Session s(cfg);
  for (unsigned addr : {0u, 1u}) {
    const auto r = s.run_round_addressed(addr);
    ASSERT_TRUE(r.trigger_detected) << addr;
    ASSERT_FALSE(r.lost) << addr;
    for (std::size_t i = 0; i < r.sent.size(); ++i) {
      EXPECT_EQ(r.received[i], (r.sent[i] & 1u) != 0) << addr << ":" << i;
    }
  }
}

TEST(Session, NlosConfigsMatchFigure4) {
  const SessionConfig a = nlos_testbed_config(false, 1);
  const SessionConfig b = nlos_testbed_config(true, 1);
  EXPECT_NEAR(channel::distance(a.ap_pos, a.client_pos), 7.0, 0.3);
  EXPECT_NEAR(channel::distance(b.ap_pos, b.client_pos), 17.0, 0.5);
  EXPECT_NEAR(channel::distance(a.client_pos, a.tag_pos), 1.0, 1e-9);
  EXPECT_NEAR(channel::distance(b.client_pos, b.tag_pos), 1.0, 1e-9);
}

}  // namespace
}  // namespace witag::core
