#include <gtest/gtest.h>

#include "mac/aes.hpp"
#include "mac/ccmp.hpp"
#include "mac/wep.hpp"
#include "util/rng.hpp"

namespace witag::mac {
namespace {

TEST(Aes, Fips197AppendixCVector) {
  // FIPS-197 C.1: key 000102...0e0f, plaintext 00112233...eeff.
  AesKey key{};
  AesBlock plain{};
  for (int i = 0; i < 16; ++i) {
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    plain[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(i * 16 + i);
  }
  const AesBlock expected{0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30,
                          0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4, 0xC5, 0x5A};
  EXPECT_EQ(Aes128(key).encrypt(plain), expected);
}

TEST(Aes, Fips197AppendixBVector) {
  // FIPS-197 B: key 2b7e151628aed2a6abf7158809cf4f3c,
  // plaintext 3243f6a8885a308d313198a2e0370734 ->
  // 3925841d02dc09fbdc118597196a0b32.
  const AesKey key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                   0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const AesBlock plain{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                       0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const AesBlock expected{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                          0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  EXPECT_EQ(Aes128(key).encrypt(plain), expected);
}

TEST(Aes, DeterministicAndKeyDependent) {
  AesKey k1{};
  AesKey k2{};
  k2[0] = 1;
  const AesBlock block{};
  EXPECT_EQ(Aes128(k1).encrypt(block), Aes128(k1).encrypt(block));
  EXPECT_NE(Aes128(k1).encrypt(block), Aes128(k2).encrypt(block));
}

MacHeader header_for_crypto() {
  MacHeader h;
  h.addr1 = make_address(2);
  h.addr2 = make_address(1);
  h.addr3 = make_address(2);
  h.sequence = 42;
  h.tid = 0;
  h.protected_frame = true;
  return h;
}

TEST(Ccmp, EncryptDecryptRoundTrip) {
  const AesKey key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  CcmpSession tx(key);
  CcmpSession rx(key);
  const util::ByteVec plain = util::Rng(1).bytes(100);
  const auto body = tx.encrypt(header_for_crypto(), plain);
  EXPECT_EQ(body.size(), kCcmpHeaderBytes + plain.size() + kCcmpMicBytes);
  const auto decrypted = rx.decrypt(header_for_crypto(), body);
  ASSERT_TRUE(decrypted.has_value());
  EXPECT_EQ(*decrypted, plain);
}

TEST(Ccmp, EmptyPayloadRoundTrip) {
  const AesKey key{};
  CcmpSession tx(key);
  const auto body = tx.encrypt(header_for_crypto(), {});
  const auto decrypted = CcmpSession(key).decrypt(header_for_crypto(), body);
  ASSERT_TRUE(decrypted.has_value());
  EXPECT_TRUE(decrypted->empty());
}

TEST(Ccmp, MicDetectsEveryCiphertextFlip) {
  const AesKey key{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
  CcmpSession tx(key);
  const util::ByteVec plain = util::Rng(2).bytes(40);
  const auto body = tx.encrypt(header_for_crypto(), plain);
  CcmpSession rx(key);
  for (std::size_t i = kCcmpHeaderBytes; i < body.size(); ++i) {
    util::ByteVec tampered = body;
    tampered[i] ^= 0x01;
    EXPECT_FALSE(rx.decrypt(header_for_crypto(), tampered).has_value())
        << "byte " << i;
  }
}

TEST(Ccmp, WrongKeyFails) {
  const AesKey key{1};
  const AesKey other{2};
  CcmpSession tx(key);
  const auto body = tx.encrypt(header_for_crypto(), util::Rng(3).bytes(20));
  EXPECT_FALSE(CcmpSession(other).decrypt(header_for_crypto(), body));
}

TEST(Ccmp, HeaderIsAuthenticated) {
  const AesKey key{7};
  CcmpSession tx(key);
  const auto body = tx.encrypt(header_for_crypto(), util::Rng(4).bytes(20));
  MacHeader other = header_for_crypto();
  other.addr2 = make_address(0x99);  // changes the nonce and AAD
  EXPECT_FALSE(CcmpSession(key).decrypt(other, body).has_value());
}

TEST(Ccmp, PacketNumberAdvances) {
  const AesKey key{5};
  CcmpSession tx(key);
  const auto pn0 = tx.packet_number();
  const auto b1 = tx.encrypt(header_for_crypto(), util::Rng(5).bytes(10));
  const auto b2 = tx.encrypt(header_for_crypto(), util::Rng(5).bytes(10));
  EXPECT_EQ(tx.packet_number(), pn0 + 2);
  EXPECT_NE(b1, b2);  // fresh nonce -> different ciphertext
}

TEST(Ccmp, RejectsTruncatedBody) {
  const AesKey key{};
  const util::ByteVec tiny(kCcmpHeaderBytes + kCcmpMicBytes - 1, 0);
  EXPECT_FALSE(CcmpSession(key).decrypt(header_for_crypto(), tiny));
}

TEST(Ccm, Rfc3610Vector1) {
  // RFC 3610 packet vector #1: M = 8, L = 2.
  const AesKey key{0xC0, 0xC1, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7,
                   0xC8, 0xC9, 0xCA, 0xCB, 0xCC, 0xCD, 0xCE, 0xCF};
  const CcmNonce nonce{0x00, 0x00, 0x00, 0x03, 0x02, 0x01, 0x00,
                       0xA0, 0xA1, 0xA2, 0xA3, 0xA4, 0xA5};
  util::ByteVec aad;
  for (std::uint8_t b = 0x00; b < 0x08; ++b) aad.push_back(b);
  util::ByteVec plain;
  for (std::uint8_t b = 0x08; b < 0x1F; ++b) plain.push_back(b);

  const util::ByteVec expected{
      0x58, 0x8C, 0x97, 0x9A, 0x61, 0xC6, 0x63, 0xD2, 0xF0, 0x66, 0xD0,
      0xC2, 0xC0, 0xF9, 0x89, 0x80, 0x6D, 0x5F, 0x6B, 0x61, 0xDA, 0xC3,
      0x84, 0x17, 0xE8, 0xD1, 0x2C, 0xFD, 0xF9, 0x26, 0xE0};
  const Aes128 aes(key);
  EXPECT_EQ(ccm_encrypt(aes, nonce, aad, plain), expected);

  const auto decrypted = ccm_decrypt(aes, nonce, aad, expected);
  ASSERT_TRUE(decrypted.has_value());
  EXPECT_EQ(*decrypted, plain);
}

TEST(Ccm, Rfc3610Vector2) {
  // RFC 3610 packet vector #2: 16-byte message, MIC still 8 bytes.
  const AesKey key{0xC0, 0xC1, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7,
                   0xC8, 0xC9, 0xCA, 0xCB, 0xCC, 0xCD, 0xCE, 0xCF};
  const CcmNonce nonce{0x00, 0x00, 0x00, 0x04, 0x03, 0x02, 0x01,
                       0xA0, 0xA1, 0xA2, 0xA3, 0xA4, 0xA5};
  util::ByteVec aad;
  for (std::uint8_t b = 0x00; b < 0x08; ++b) aad.push_back(b);
  util::ByteVec plain;
  for (std::uint8_t b = 0x08; b < 0x20; ++b) plain.push_back(b);

  const util::ByteVec expected{
      0x72, 0xC9, 0x1A, 0x36, 0xE1, 0x35, 0xF8, 0xCF, 0x29, 0x1C, 0xA8,
      0x94, 0x08, 0x5C, 0x87, 0xE3, 0xCC, 0x15, 0xC4, 0x39, 0xC9, 0xE4,
      0x3A, 0x3B, 0xA0, 0x91, 0xD5, 0x6E, 0x10, 0x40, 0x09, 0x16};
  const Aes128 aes(key);
  EXPECT_EQ(ccm_encrypt(aes, nonce, aad, plain), expected);
}

TEST(Ccm, DecryptRejectsTamperedAad) {
  const AesKey key{1, 2, 3};
  const CcmNonce nonce{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
  const util::ByteVec aad{1, 2, 3, 4};
  const util::ByteVec plain{5, 6, 7};
  const Aes128 aes(key);
  const auto sealed = ccm_encrypt(aes, nonce, aad, plain);
  const util::ByteVec other_aad{1, 2, 3, 5};
  EXPECT_FALSE(ccm_decrypt(aes, nonce, other_aad, sealed).has_value());
}

TEST(Rc4, KnownKeystreamVector) {
  // Classic RC4 vector: key "Key" -> keystream EB 9F 77 81 B7 34 CA 72.
  const util::ByteVec key{'K', 'e', 'y'};
  Rc4 rc4(key);
  const std::uint8_t expected[8] = {0xEB, 0x9F, 0x77, 0x81,
                                    0xB7, 0x34, 0xCA, 0x72};
  for (const std::uint8_t e : expected) {
    EXPECT_EQ(rc4.next(), e);
  }
}

TEST(Wep, EncryptDecryptRoundTrip) {
  WepKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i * 3 + 1);
  }
  const util::ByteVec plain = util::Rng(6).bytes(60);
  const auto body = wep_encrypt(key, 0x123456, plain);
  EXPECT_EQ(body.size(), kWepHeaderBytes + plain.size() + kWepIcvBytes);
  const auto decrypted = wep_decrypt(key, body);
  ASSERT_TRUE(decrypted.has_value());
  EXPECT_EQ(*decrypted, plain);
}

TEST(Wep, IcvDetectsTampering) {
  WepKey key{};
  const util::ByteVec plain = util::Rng(7).bytes(30);
  auto body = wep_encrypt(key, 1, plain);
  body[kWepHeaderBytes + 5] ^= 0x80;
  EXPECT_FALSE(wep_decrypt(key, body).has_value());
}

TEST(Wep, WrongKeyFails) {
  WepKey key{};
  WepKey other{};
  other[0] = 0xFF;
  const auto body = wep_encrypt(key, 2, util::Rng(8).bytes(30));
  EXPECT_FALSE(wep_decrypt(other, body).has_value());
}

TEST(Wep, IvBoundsChecked) {
  WepKey key{};
  EXPECT_THROW(wep_encrypt(key, 1u << 24, {}), std::invalid_argument);
}

TEST(Wep, DifferentIvsGiveDifferentCiphertext) {
  WepKey key{};
  const util::ByteVec plain(20, 0xAA);
  const auto b1 = wep_encrypt(key, 1, plain);
  const auto b2 = wep_encrypt(key, 2, plain);
  EXPECT_NE(b1, b2);
}

}  // namespace
}  // namespace witag::mac
