#include <gtest/gtest.h>

#include "mac/airtime.hpp"
#include "mac/rate_ctrl.hpp"

namespace witag::mac {
namespace {

TEST(Airtime, LegacyFrameMath) {
  // 32 bytes at 24 Mbps: (16+6+256)/96 = 2.9 -> 3 symbols -> 20+12 us.
  EXPECT_DOUBLE_EQ(legacy_frame_airtime_us(32, 24.0).value(), 32.0);
  // 1500 bytes at 6 Mbps: (22+12000)/24 = 500.9 -> 501 symbols.
  EXPECT_DOUBLE_EQ(legacy_frame_airtime_us(1500, 6.0).value(),
                   20.0 + 4.0 * 501.0);
}

TEST(Airtime, BlockAckDuration) {
  EXPECT_DOUBLE_EQ(block_ack_airtime_us().value(), 32.0);
}

TEST(Airtime, InterframeConstants) {
  EXPECT_DOUBLE_EQ(kDifsUs.value(), (kSifsUs + 2.0 * kSlotUs).value());
  EXPECT_DOUBLE_EQ(expected_backoff_us().value(), 9.0 * 15.0 / 2.0);
}

TEST(Airtime, ExchangeTotal) {
  const ExchangeAirtime t =
      ampdu_exchange(util::Micros{1000.0}, util::Micros{45.0});
  EXPECT_DOUBLE_EQ(t.total_us().value(),
                   kDifsUs.value() + 45.0 + 1000.0 + kSifsUs.value() +
                       block_ack_airtime_us().value());
}

TEST(RateSelector, PicksHighestCleanRate) {
  RateSelector sel(0.99, 100);
  // MCS 7 and 6 are lossy; MCS 5 is clean.
  while (const auto probe = sel.next_probe()) {
    if (*probe >= 6) {
      sel.record(*probe, 50, 100);
    } else {
      sel.record(*probe, 100, 100);
    }
  }
  EXPECT_TRUE(sel.converged());
  EXPECT_EQ(sel.selected(), 5u);
}

TEST(RateSelector, StartsFromTheTop) {
  RateSelector sel;
  ASSERT_TRUE(sel.next_probe().has_value());
  EXPECT_EQ(*sel.next_probe(), phy::kNumMcs - 1);
}

TEST(RateSelector, AccumulatesAcrossRounds) {
  RateSelector sel(0.99, 100);
  sel.record(7, 40, 40);
  EXPECT_TRUE(sel.next_probe().has_value());  // not enough samples yet
  sel.record(7, 60, 60);
  EXPECT_FALSE(sel.next_probe().has_value());
  EXPECT_EQ(sel.selected(), 7u);
}

TEST(RateSelector, FallsBackToMcs0) {
  RateSelector sel(0.99, 10);
  while (const auto probe = sel.next_probe()) {
    sel.record(*probe, 0, 10);  // everything fails
  }
  EXPECT_EQ(sel.selected(), 0u);
}

TEST(RateSelector, ContractChecks) {
  RateSelector sel(0.99, 10);
  EXPECT_THROW(sel.record(3, 1, 1), std::invalid_argument);  // wrong MCS
  EXPECT_THROW(sel.record(7, 5, 1), std::invalid_argument);  // ok > total
  EXPECT_THROW(RateSelector(0.0, 10), std::invalid_argument);
  EXPECT_THROW(RateSelector(0.5, 0), std::invalid_argument);
  EXPECT_THROW(sel.selected(), std::invalid_argument);  // not converged
}

}  // namespace
}  // namespace witag::mac
