#include "witag/rateless.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bits.hpp"
#include "util/crc.hpp"
#include "util/rng.hpp"
#include "witag/link.hpp"

namespace witag::core {
namespace {

constexpr RatelessConfig kCfg;

// --- Degree distribution -------------------------------------------------

TEST(RatelessSoliton, PmfIsNormalized) {
  for (const std::size_t k : {1u, 2u, 5u, 17u, 64u}) {
    const auto pmf = robust_soliton_pmf(k, kCfg.soliton_c, kCfg.soliton_delta);
    ASSERT_EQ(pmf.size(), k + 1);
    EXPECT_EQ(pmf[0], 0.0);
    double total = 0.0;
    for (const double p : pmf) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(RatelessSoliton, DegenerateSingleSymbol) {
  const auto pmf = robust_soliton_pmf(1, kCfg.soliton_c, kCfg.soliton_delta);
  EXPECT_EQ(pmf[1], 1.0);
}

TEST(RatelessSoliton, EmpiricalDegreesMatchPmf) {
  // Sample coded-droplet degrees across many stream seeds and compare
  // the empirical histogram against the robust-soliton PMF the sampler
  // claims to draw from.
  constexpr std::size_t kK = 32;
  const auto pmf = robust_soliton_pmf(kK, kCfg.soliton_c, kCfg.soliton_delta);
  std::vector<double> hist(kK + 1, 0.0);
  std::size_t samples = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    for (std::size_t seq = kK; seq < 256; ++seq) {
      const auto neighbors = droplet_neighbors(seed, seq, kK, kCfg);
      ASSERT_GE(neighbors.size(), 1u);
      ASSERT_LE(neighbors.size(), kK);
      hist[neighbors.size()] += 1.0;
      ++samples;
    }
  }
  for (std::size_t d = 1; d <= kK; ++d) {
    EXPECT_NEAR(hist[d] / static_cast<double>(samples), pmf[d], 0.03)
        << "degree " << d;
  }
}

TEST(RatelessSoliton, SystematicPrefixIsSingleton) {
  for (std::size_t seq = 0; seq < 6; ++seq) {
    const auto n = droplet_neighbors(0xABCDull, seq, 6, kCfg);
    ASSERT_EQ(n.size(), 1u);
    EXPECT_EQ(n[0], seq);
  }
}

TEST(RatelessSoliton, CodedNeighborsDistinctAndDeterministic) {
  for (std::size_t seq = 10; seq < 40; ++seq) {
    const auto a = droplet_neighbors(0x1234ull, seq, 10, kCfg);
    const auto b = droplet_neighbors(0x1234ull, seq, 10, kCfg);
    EXPECT_EQ(a, b);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_LT(a[i], 10u);
      for (std::size_t j = i + 1; j < a.size(); ++j) {
        EXPECT_NE(a[i], a[j]);
      }
    }
  }
}

// --- Sizing --------------------------------------------------------------

TEST(RatelessSizing, SymbolCountCoversPayloadPlusCrc) {
  // K symbols hold payload + 1 CRC byte, rounded up to whole symbols.
  EXPECT_EQ(rateless_symbols(0, kCfg), 1u);
  EXPECT_EQ(rateless_symbols(1, kCfg), 1u);
  EXPECT_EQ(rateless_symbols(2, kCfg), 2u);
  EXPECT_EQ(rateless_symbols(3, kCfg), 2u);
  EXPECT_EQ(rateless_symbols(8, kCfg), 5u);
  EXPECT_EQ(rateless_symbols(kMaxRatelessPayload, kCfg), 65u);
}

TEST(RatelessSizing, NominalDropletsFitSeqSpace) {
  for (std::size_t p = 0; p <= kMaxRatelessPayload; ++p) {
    const std::size_t n = rateless_nominal_droplets(p, kCfg);
    EXPECT_GE(n, rateless_symbols(p, kCfg));
    EXPECT_LE(n, 256u);
  }
}

TEST(RatelessSizing, DropletFrameBitsMatchLayout) {
  // preamble(8) + len(8) + seq(8) + data(8*S) + crc(8)
  EXPECT_EQ(droplet_frame_bits(kCfg), 32 + 8 * kCfg.symbol_bytes);
}

TEST(RatelessSizing, SaltIsSeedDependent) {
  EXPECT_EQ(rateless_salt(42), rateless_salt(42));
  // Not a guarantee for all pairs (it is one byte), but these must
  // differ for the stale-stream rejection tests below to mean anything.
  EXPECT_NE(rateless_salt(0x1111ull), rateless_salt(0x2222ull));
}

// --- Droplet framing -----------------------------------------------------

TEST(RatelessFraming, RoundTrip) {
  const util::ByteVec data{0xCA, 0xFE};
  const util::BitVec bits = encode_droplet_frame(17, 5, data, 0x3C);
  ASSERT_EQ(bits.size(), droplet_frame_bits(kCfg));
  ErasedBits stream;
  stream.append(bits);
  const auto d = decode_droplet_frame(stream, 0, 0x3C, kCfg);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->payload_len, 17);
  EXPECT_EQ(d->seq, 5);
  EXPECT_EQ(d->data, data);
  EXPECT_EQ(d->next_offset, bits.size());
}

TEST(RatelessFraming, WrongSaltRejected) {
  const util::ByteVec data{0xCA, 0xFE};
  ErasedBits stream;
  stream.append(encode_droplet_frame(17, 5, data, 0x3C));
  EXPECT_FALSE(decode_droplet_frame(stream, 0, 0x3D, kCfg).has_value());
}

TEST(RatelessFraming, TruncatedFrameRejected) {
  const util::ByteVec data{0xCA, 0xFE};
  const util::BitVec bits = encode_droplet_frame(17, 5, data, 0x3C);
  ErasedBits stream;
  stream.append(
      std::span<const std::uint8_t>(bits.data(), bits.size() - 4));
  EXPECT_FALSE(decode_droplet_frame(stream, 0, 0x3C, kCfg).has_value());
}

TEST(RatelessFraming, ScansPastErasureRun) {
  const util::ByteVec data{0x12, 0x34};
  ErasedBits stream;
  stream.append_erasure_run(100);  // e.g. a lost round's worth of bits
  const util::BitVec bits = encode_droplet_frame(9, 3, data, 0x77);
  stream.append(bits);
  const auto d = decode_droplet_frame(stream, 0, 0x77, kCfg);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->seq, 3);
  EXPECT_EQ(d->next_offset, 100 + bits.size());
}

// --- Decoder -------------------------------------------------------------

/// Source symbols of `payload` as the encoder blocks them (payload |
/// crc8(payload) | zero pad, cut into symbol_bytes chunks).
std::vector<util::ByteVec> source_symbols(const util::ByteVec& payload) {
  util::ByteVec block = payload;
  block.push_back(util::crc8(payload));
  const std::size_t k = rateless_symbols(payload.size(), kCfg);
  block.resize(k * kCfg.symbol_bytes, 0);
  std::vector<util::ByteVec> symbols;
  for (std::size_t i = 0; i < k; ++i) {
    symbols.emplace_back(block.begin() + i * kCfg.symbol_bytes,
                         block.begin() + (i + 1) * kCfg.symbol_bytes);
  }
  return symbols;
}

TEST(RatelessDecoder, SystematicPrefixCompletesAtExactlyK) {
  const util::ByteVec payload{1, 2, 3, 4, 5, 6, 7};
  const auto symbols = source_symbols(payload);
  LtDecoder decoder(payload.size(), 0x5EEDull);
  ASSERT_EQ(decoder.k(), symbols.size());
  for (std::size_t seq = 0; seq < symbols.size(); ++seq) {
    EXPECT_FALSE(decoder.complete());
    EXPECT_TRUE(decoder.add(seq, symbols[seq]));
  }
  ASSERT_TRUE(decoder.complete());
  EXPECT_FALSE(decoder.poisoned());
  EXPECT_EQ(decoder.payload(), payload);
  EXPECT_EQ(decoder.droplets_added(), decoder.k());
}

TEST(RatelessDecoder, DuplicateDropletsTripStallSignal) {
  const util::ByteVec payload{9, 9, 9, 9};
  const auto symbols = source_symbols(payload);
  LtDecoder decoder(payload.size(), 0x5EEDull);
  ASSERT_TRUE(decoder.add(0, symbols[0]));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(decoder.add(0, symbols[0]));  // no new equation
  }
  EXPECT_FALSE(decoder.complete());
  EXPECT_TRUE(decoder.stalled(10));
  EXPECT_FALSE(decoder.stalled(11));
}

TEST(RatelessDecoder, CorruptDropletPoisonsDecode) {
  const util::ByteVec payload{0xAA, 0xBB, 0xCC, 0xDD, 0xEE};
  auto symbols = source_symbols(payload);
  symbols[1][0] ^= 0xFF;  // survives its (hypothetical) frame CRC
  LtDecoder decoder(payload.size(), 0x5EEDull);
  for (std::size_t seq = 0; seq < symbols.size(); ++seq) {
    decoder.add(seq, symbols[seq]);
  }
  EXPECT_FALSE(decoder.complete());
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_FALSE(decoder.stalled(1));  // poisoned, not stalled
}

TEST(RatelessDecoder, CodedDropletsRecoverErasedSystematics) {
  // Drop the entire systematic prefix; only coded droplets remain. The
  // peeling cascade must still reconstruct the payload.
  const util::ByteVec payload{0x10, 0x20, 0x30};  // K = 2
  const std::uint64_t seed = 0x0DDBA11ull;
  const LtDropletSource source(payload, seed);
  LtDecoder decoder(payload.size(), seed);
  ErasedBits stream;
  stream.append(source.stream(256));
  const std::uint8_t salt = rateless_salt(seed);
  std::size_t offset = source.k() * droplet_frame_bits(kCfg);
  while (!decoder.complete()) {
    const auto d = decode_droplet_frame(stream, offset, salt, kCfg);
    ASSERT_TRUE(d.has_value()) << "ran out of droplets";
    offset = d->next_offset;
    decoder.add(d->seq, d->data);
  }
  EXPECT_EQ(decoder.payload(), payload);
}

// --- Seeded erasure fuzz -------------------------------------------------

TEST(FountainFuzz, EncodeEraseDecodeAcrossSeeds) {
  // 1000 seeded trials across erasure rates 0..60% (droplet
  // granularity, the unit a lost block-ack erases). Every completed
  // decode must return the exact payload; completion itself must be
  // near-certain given the 256-droplet budget.
  constexpr std::size_t kTrials = 1000;
  std::size_t completions = 0;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    util::Rng rng(util::Rng::derive_seed(0xF0071ull, trial));
    const std::size_t payload_len = 1 + rng.uniform_int(32);
    const util::ByteVec payload = rng.bytes(payload_len);
    const std::uint64_t seed = util::Rng::derive_seed(0x5EEDull, trial);
    const double rate = 0.06 * static_cast<double>(trial % 11);  // 0..0.6

    const LtDropletSource source(payload, seed);
    ErasedBits stream;
    for (std::size_t seq = 0; seq < 256; ++seq) {
      const util::BitVec frame = source.droplet_frame(seq);
      if (rng.uniform() < rate) {
        stream.append_erasure_run(frame.size());
      } else {
        stream.append(frame);
      }
    }

    LtDecoder decoder(payload_len, seed);
    const std::uint8_t salt = rateless_salt(seed);
    std::size_t offset = 0;
    while (!decoder.complete() && !decoder.poisoned()) {
      const auto d = decode_droplet_frame(stream, offset, salt, kCfg);
      if (!d) break;
      offset = d->next_offset;
      decoder.add(d->seq, d->data);
    }
    ASSERT_FALSE(decoder.poisoned()) << "trial " << trial;
    if (decoder.complete()) {
      ++completions;
      ASSERT_EQ(decoder.payload(), payload) << "trial " << trial;
      if (rate == 0.0) {
        // Clean channel: systematic prefix completes at exactly K.
        EXPECT_EQ(decoder.droplets_added(), decoder.k());
      }
    }
  }
  EXPECT_GE(completions, kTrials - 5);
}

// --- Link-layer integration ----------------------------------------------

TEST(RatelessLink, EncodeTagFrameRoundTrip) {
  const util::ByteVec payload{0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  const util::BitVec bits = encode_tag_frame(payload, TagFec::kRateless);
  EXPECT_EQ(bits.size(),
            tag_frame_bits(payload.size(), TagFec::kRateless));
  const auto decoded = decode_tag_frame(bits, 0, TagFec::kRateless);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, payload);
  // Systematic prefix closes the decode before the coded headroom.
  EXPECT_LE(decoded->next_offset, bits.size());
}

TEST(RatelessLink, BackToBackFramesDecodeInOrder) {
  // Distinct payload lengths: the stream decoder restarts on a length
  // change, which is how it finds the second frame's boundary.
  const util::ByteVec p1{0x11, 0x22, 0x33};
  const util::ByteVec p2{0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA};
  util::BitVec stream = encode_tag_frame(p1, TagFec::kRateless);
  const util::BitVec f2 = encode_tag_frame(p2, TagFec::kRateless);
  stream.insert(stream.end(), f2.begin(), f2.end());
  const auto frames = decode_tag_stream(stream, TagFec::kRateless);
  ASSERT_GE(frames.size(), 2u);
  EXPECT_EQ(frames.front().payload, p1);
  EXPECT_EQ(frames.back().payload, p2);
}

TEST(RatelessLink, ErasedRoundResyncs) {
  // Erase a mid-stream droplet span (a lost block-ack round); the
  // decode must ride through on later droplets instead of desyncing.
  const util::ByteVec payload{5, 4, 3, 2, 1, 0, 9, 8, 7, 6};
  // A longer stream than encode_tag_frame's nominal: erasing two whole
  // droplets must leave enough coded headroom to still close.
  const util::BitVec bits =
      LtDropletSource(payload, kRatelessDefaultSeed).stream(20);
  const std::size_t frame_bits = droplet_frame_bits(kCfg);
  ErasedBits stream;
  stream.append(
      std::span<const std::uint8_t>(bits.data(), 2 * frame_bits));
  stream.append_erasure_run(2 * frame_bits);  // droplets 2 and 3 lost
  stream.append(std::span<const std::uint8_t>(bits).subspan(4 * frame_bits));
  const auto decoded = decode_tag_frame(stream, 0, TagFec::kRateless);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, payload);
}

}  // namespace
}  // namespace witag::core
