#include "channel/pathloss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/units.hpp"

namespace witag::channel {
namespace {

using util::Db;
using util::Hertz;
using util::Meters;

TEST(Pathloss, FriisMagnitude) {
  // |h| = lambda / (4 pi d).
  const double d = 8.0;
  const double lambda = util::wavelength(util::kWifi24GHz).value();
  const double expected = lambda / (4.0 * util::kPi * d);
  EXPECT_NEAR(std::abs(direct_gain(Meters{d}, util::kWifi24GHz)), expected,
              1e-12);
}

TEST(Pathloss, InverseSquarePowerLaw) {
  const double p1 = std::norm(direct_gain(Meters{2.0}, util::kWifi24GHz));
  const double p2 = std::norm(direct_gain(Meters{4.0}, util::kWifi24GHz));
  EXPECT_NEAR(p1 / p2, 4.0, 1e-9);
}

TEST(Pathloss, PhaseAdvancesWithDistance) {
  const double lambda = util::wavelength(util::kWifi24GHz).value();
  const auto h1 = direct_gain(Meters{5.0}, util::kWifi24GHz);
  const auto h2 = direct_gain(Meters{5.0 + lambda / 2.0}, util::kWifi24GHz);
  // Half a wavelength flips the phase.
  const double phase_diff =
      std::arg(h2 * std::conj(h1));
  EXPECT_NEAR(std::abs(phase_diff), util::kPi, 1e-6);
}

TEST(Pathloss, ReflectedFollowsRadarLaw) {
  // Power ~ 1/(Ds^2 Dr^2): doubling one hop distance quarters power.
  const double p1 = std::norm(
      reflected_gain(Meters{2.0}, Meters{3.0}, 1.0, util::kWifi24GHz));
  const double p2 = std::norm(
      reflected_gain(Meters{4.0}, Meters{3.0}, 1.0, util::kWifi24GHz));
  EXPECT_NEAR(p1 / p2, 4.0, 1e-9);
  const double p3 = std::norm(
      reflected_gain(Meters{2.0}, Meters{6.0}, 1.0, util::kWifi24GHz));
  EXPECT_NEAR(p1 / p3, 4.0, 1e-9);
}

TEST(Pathloss, ReflectedMidpointIsWeakest) {
  // For Ds + Dr fixed, the product Ds*Dr peaks at the midpoint, so the
  // reflected amplitude is minimized there — the paper's Figure 5
  // explanation.
  const double total = 8.0;
  const double mid = std::abs(
      reflected_gain(Meters{4.0}, Meters{4.0}, 1.0, util::kWifi24GHz));
  for (const double ds : {1.0, 2.0, 3.0}) {
    const double off = std::abs(reflected_gain(
        Meters{ds}, Meters{total - ds}, 1.0, util::kWifi24GHz));
    EXPECT_GT(off, mid) << "ds " << ds;
  }
}

TEST(Pathloss, StrengthScalesLinearly) {
  const double a1 = std::abs(
      reflected_gain(Meters{2.0}, Meters{2.0}, 1.0, util::kWifi24GHz));
  const double a2 = std::abs(
      reflected_gain(Meters{2.0}, Meters{2.0}, 3.5, util::kWifi24GHz));
  EXPECT_NEAR(a2 / a1, 3.5, 1e-9);
}

TEST(Pathloss, SubcarrierOffsetRotatesPhaseOnly) {
  const auto h0 = direct_gain(Meters{10.0}, util::kWifi24GHz, Hertz{0.0});
  const auto h1 = direct_gain(Meters{10.0}, util::kWifi24GHz, Hertz{312'500.0});
  EXPECT_NEAR(std::abs(h0), std::abs(h1), 1e-15);
  EXPECT_GT(std::abs(std::arg(h1 * std::conj(h0))), 1e-6);
}

TEST(Pathloss, AttenuateHalvesPowerPer3Db) {
  const std::complex<double> g{1.0, 0.0};
  EXPECT_NEAR(std::norm(attenuate(g, Db{3.0})), 0.501, 0.001);
  EXPECT_NEAR(std::norm(attenuate(g, Db{10.0})), 0.1, 1e-9);
}

TEST(Pathloss, RejectsNonPositiveDistance) {
  EXPECT_THROW(direct_gain(Meters{0.0}, util::kWifi24GHz),
               std::invalid_argument);
  EXPECT_THROW(reflected_gain(Meters{0.0}, Meters{1.0}, 1.0, util::kWifi24GHz),
               std::invalid_argument);
  EXPECT_THROW(reflected_gain(Meters{1.0}, Meters{-1.0}, 1.0,
                              util::kWifi24GHz),
               std::invalid_argument);
}

}  // namespace
}  // namespace witag::channel
