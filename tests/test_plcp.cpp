#include "phy/plcp.hpp"

#include <gtest/gtest.h>

namespace witag::phy {
namespace {

struct SigCase {
  unsigned mcs;
  std::size_t length;
};

class PlcpParam : public ::testing::TestWithParam<SigCase> {};

TEST_P(PlcpParam, RoundTrip) {
  const HtSig sig{GetParam().mcs, GetParam().length};
  const util::BitVec bits = encode_sig(sig);
  ASSERT_EQ(bits.size(), kSigBits);
  const auto decoded = decode_sig(bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, sig);
}

INSTANTIATE_TEST_SUITE_P(
    Corners, PlcpParam,
    ::testing::Values(SigCase{0, 1}, SigCase{7, 4095}, SigCase{5, 3328},
                      SigCase{127, 65535}, SigCase{3, 52}));

TEST(Plcp, CrcRejectsEveryHeaderBitFlip) {
  const HtSig sig{5, 1234};
  const util::BitVec bits = encode_sig(sig);
  for (std::size_t i = 0; i < 24; ++i) {  // fields only
    util::BitVec corrupted = bits;
    corrupted[i] ^= 1;
    const auto decoded = decode_sig(corrupted);
    // Either the CRC rejects it or (never) it decodes to the original.
    EXPECT_FALSE(decoded.has_value()) << "bit " << i;
  }
}

TEST(Plcp, CrcBitFlipInCrcFieldRejects) {
  const HtSig sig{2, 99};
  util::BitVec bits = encode_sig(sig);
  bits[25] ^= 1;  // inside the CRC field
  EXPECT_FALSE(decode_sig(bits).has_value());
}

TEST(Plcp, TailAndPaddingAreZero) {
  const util::BitVec bits = encode_sig(HtSig{1, 10});
  for (std::size_t i = 32; i < kSigBits; ++i) {
    EXPECT_EQ(bits[i], 0) << "bit " << i;
  }
}

TEST(Plcp, RejectsOutOfRangeFields) {
  EXPECT_THROW(encode_sig(HtSig{128, 1}), std::invalid_argument);
  EXPECT_THROW(encode_sig(HtSig{0, 65536}), std::invalid_argument);
}

TEST(Plcp, DecodeRequiresExactWidth) {
  const util::BitVec bits(51, 0);
  EXPECT_THROW(decode_sig(bits), std::invalid_argument);
}

}  // namespace
}  // namespace witag::phy
