#include "faults/injectors.hpp"

#include <gtest/gtest.h>

#include "runner/parallel_sweep.hpp"
#include "util/rng.hpp"
#include "witag/session.hpp"

namespace witag::faults {
namespace {

TEST(OnOffProcess, SameSeedSameTrajectory) {
  OnOffProcess a(0.3, util::Seconds{0.002}, util::Rng(77));
  OnOffProcess b(0.3, util::Seconds{0.002}, util::Rng(77));
  for (int i = 0; i < 2000; ++i) {
    a.advance(util::Seconds{0.0005});
    b.advance(util::Seconds{0.0005});
    ASSERT_EQ(a.on(), b.on()) << "step " << i;
  }
}

TEST(OnOffProcess, LongRunDutyMatchesConfig) {
  const double duty = 0.35;
  OnOffProcess p(duty, util::Seconds{0.002}, util::Rng(5));
  std::size_t on = 0;
  const int steps = 50000;
  for (int i = 0; i < steps; ++i) {
    p.advance(util::Seconds{0.0002});
    on += p.on() ? 1 : 0;
  }
  const double measured = static_cast<double>(on) / steps;
  EXPECT_NEAR(measured, duty, 0.05);
}

TEST(OnOffProcess, StateIndependentOfTimeSlicing) {
  // One big advance and the same span sliced fine must agree: sojourn
  // draws happen on expiry, never per call.
  OnOffProcess coarse(0.4, util::Seconds{0.003}, util::Rng(9));
  OnOffProcess fine(0.4, util::Seconds{0.003}, util::Rng(9));
  coarse.advance(util::Seconds{0.05});
  for (int i = 0; i < 500; ++i) fine.advance(util::Seconds{0.0001});
  EXPECT_EQ(coarse.on(), fine.on());
}

TEST(OnOffProcess, RejectsDegenerateConfig) {
  EXPECT_THROW(OnOffProcess(0.0, util::Seconds{0.01}, util::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(OnOffProcess(1.0, util::Seconds{0.01}, util::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(OnOffProcess(0.5, util::Seconds{0.0}, util::Rng(1)),
               std::invalid_argument);
}

TEST(FaultPlan, DefaultAndZeroIntensityAreBenign) {
  EXPECT_FALSE(FaultPlan{}.any());
  EXPECT_FALSE(hostile_plan(0.0).any());
  EXPECT_TRUE(hostile_plan(1.0).any());
  EXPECT_THROW(hostile_plan(-0.1), std::invalid_argument);
  EXPECT_THROW(hostile_plan(1.5), std::invalid_argument);
}

TEST(FaultPlan, MaskGatesInjectorsIndividually) {
  const FaultPlan trigger_only = hostile_plan(1.0, 0x02);
  EXPECT_FALSE(trigger_only.interference.enabled());
  EXPECT_TRUE(trigger_only.trigger.enabled());
  EXPECT_FALSE(trigger_only.clock.enabled());
  EXPECT_FALSE(trigger_only.mac.enabled());
  EXPECT_FALSE(trigger_only.brownout.enabled());
  const FaultPlan no_brownout = hostile_plan(0.5, 0x0F);
  EXPECT_TRUE(no_brownout.mac.enabled());
  EXPECT_FALSE(no_brownout.brownout.enabled());
}

TEST(FaultSet, SubStreamsAreIndependent) {
  // Disabling the MAC injector must not shift the clock stream (and vice
  // versa): each injector draws from its own derived Rng.
  FaultPlan all = hostile_plan(0.8);
  FaultPlan no_mac = all;
  no_mac.mac = {};
  FaultSet a(all, 123);
  FaultSet b(no_mac, 123);
  for (int i = 0; i < 32; ++i) {
    const ClockFault ca = a.draw_clock_fault();
    const ClockFault cb = b.draw_clock_fault();
    ASSERT_EQ(ca.drift_frac, cb.drift_frac) << i;
    ASSERT_EQ(ca.jitter_us, cb.jitter_us) << i;
    ASSERT_EQ(a.draw_trigger_miss(), b.draw_trigger_miss()) << i;
  }
}

TEST(FaultSet, DisabledClockStreamStaysAligned) {
  // A plan that later enables the clock injector sees the same MAC/
  // trigger schedule: the disabled clock hook burns its draws.
  FaultPlan with_clock = hostile_plan(0.6, 0x04 | 0x08);
  FaultPlan without_clock = hostile_plan(0.6, 0x08);
  FaultSet a(with_clock, 321);
  FaultSet b(without_clock, 321);
  for (int i = 0; i < 32; ++i) {
    a.draw_clock_fault();
    b.draw_clock_fault();
    const MacFault ma = a.draw_mac_fault();
    const MacFault mb = b.draw_mac_fault();
    ASSERT_EQ(ma.lose_ba, mb.lose_ba) << i;
    ASSERT_EQ(ma.truncate_frac, mb.truncate_frac) << i;
  }
}

TEST(FaultSet, MacFractionsDefaultWhenFateNotDrawn) {
  FaultSet quiet(FaultPlan{}, 1);
  for (int i = 0; i < 8; ++i) {
    const MacFault fault = quiet.draw_mac_fault();
    EXPECT_FALSE(fault.abort_ampdu);
    EXPECT_FALSE(fault.lose_ba);
    EXPECT_FALSE(fault.truncate_ba);
    EXPECT_EQ(fault.abort_frac, 1.0);
    EXPECT_EQ(fault.truncate_frac, 1.0);
  }
  EXPECT_EQ(quiet.counts().total(), 0u);
}

TEST(FaultSessionGolden, ZeroIntensityIsBitIdenticalToNoPlan) {
  // The acceptance golden: wiring the fault framework in at zero
  // intensity must not move a single bit of session output.
  auto base_cfg = core::los_testbed_config(util::Meters{2.0}, 42);
  auto faulted_cfg = base_cfg;
  faulted_cfg.faults = hostile_plan(0.0);
  core::Session base(base_cfg);
  core::Session faulted(faulted_cfg);
  for (int round = 0; round < 4; ++round) {
    const auto a = base.run_round();
    const auto b = faulted.run_round();
    ASSERT_EQ(a.lost, b.lost) << round;
    ASSERT_EQ(a.sent, b.sent) << round;
    ASSERT_EQ(a.received, b.received) << round;
    ASSERT_EQ(a.subframes_valid, b.subframes_valid) << round;
    ASSERT_EQ(a.airtime_us.value(), b.airtime_us.value()) << round;
  }
  EXPECT_EQ(faulted.fault_counts().total(), 0u);
}

TEST(FaultSessionGolden, FixedSeedReproducesFaultSchedule) {
  auto cfg = core::los_testbed_config(util::Meters{3.0}, 4242);
  cfg.faults = hostile_plan(0.7);
  core::Session a(cfg);
  core::Session b(cfg);
  for (int round = 0; round < 4; ++round) {
    const auto ra = a.run_round();
    const auto rb = b.run_round();
    ASSERT_EQ(ra.lost, rb.lost) << round;
    ASSERT_EQ(ra.received, rb.received) << round;
  }
  EXPECT_EQ(a.fault_counts(), b.fault_counts());
  EXPECT_GT(a.fault_counts().total(), 0u);
}

TEST(FaultSessionGolden, ScheduleInvariantAcrossJobs) {
  // Fault schedules ride per-task seeds, so a sweep's outcome vector is
  // identical no matter how tasks land on workers.
  const auto run_sweep = [](std::size_t jobs) {
    return runner::parallel_map(4, jobs, [](std::size_t task) {
      auto cfg = core::los_testbed_config(
          util::Meters{3.0}, util::Rng::derive_seed(7, task));
      cfg.faults = hostile_plan(0.6);
      core::Session session(cfg);
      for (int round = 0; round < 2; ++round) session.run_round();
      return session.fault_counts();
    });
  };
  const auto serial = run_sweep(1);
  const auto threaded = run_sweep(2);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "task " << i;
  }
}

TEST(FaultSession, InjectorsProduceTheirSignatures) {
  // Trigger misses: an always-missing addressed tag loses every round.
  auto cfg = core::los_testbed_config(util::Meters{2.0}, 11);
  cfg.faults.trigger.miss_rate = 1.0;
  core::Session miss(cfg);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(miss.run_round().lost);
  EXPECT_EQ(miss.fault_counts().triggers_suppressed, 3u);

  // Block-ack loss: the round is lost but the tag did transmit.
  auto cfg2 = core::los_testbed_config(util::Meters{2.0}, 12);
  cfg2.faults.mac.ba_loss_rate = 1.0;
  core::Session ba(cfg2);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(ba.run_round().lost);
  EXPECT_EQ(ba.fault_counts().ba_lost, 3u);

  // Brownout at duty ~1 starves the tag.
  auto cfg3 = core::los_testbed_config(util::Meters{2.0}, 13);
  cfg3.faults.brownout.duty = 0.999;
  core::Session brown(cfg3);
  brown.run_round();
  EXPECT_GE(brown.fault_counts().brownout_rounds, 1u);
}

TEST(FaultSession, IdleWaitAdvancesFaultProcesses) {
  // A brownout window expires in simulated time: idle_wait long enough
  // and the next round is no longer starved (duty low => long Off means
  // re-entering a window is unlikely right away).
  auto cfg = core::los_testbed_config(util::Meters{2.0}, 99);
  cfg.faults.brownout.duty = 0.05;
  cfg.faults.brownout.mean_off_s = util::Seconds{0.01};
  core::Session session(cfg);
  session.idle_wait(util::Micros{50'000.0});  // 50 ms * dilation
  EXPECT_THROW(session.idle_wait(util::Micros{-1.0}), std::invalid_argument);
  const auto round = session.run_round();
  (void)round;  // schedule advanced without throwing; counts consistent
  SUCCEED();
}

}  // namespace
}  // namespace witag::faults
