#include "mac/ampdu.hpp"

#include <gtest/gtest.h>

#include "mac/mpdu.hpp"
#include "util/rng.hpp"

namespace witag::mac {
namespace {

std::vector<util::ByteVec> sample_mpdus(std::size_t count, std::size_t body) {
  std::vector<util::ByteVec> mpdus;
  util::Rng rng(count * 1000 + body);
  for (std::size_t i = 0; i < count; ++i) {
    Mpdu m;
    m.header.addr1 = make_address(1);
    m.header.addr2 = make_address(2);
    m.header.addr3 = make_address(1);
    m.header.sequence = static_cast<std::uint16_t>(i);
    m.body = rng.bytes(body);
    mpdus.push_back(serialize_mpdu(m));
  }
  return mpdus;
}

TEST(Ampdu, DelimiterRoundTrip) {
  for (const std::size_t len : {0u, 1u, 52u, 260u, 4095u}) {
    const auto d = make_delimiter(len);
    EXPECT_EQ(check_delimiter(d), static_cast<int>(len));
  }
}

TEST(Ampdu, DelimiterRejectsCorruption) {
  auto d = make_delimiter(100);
  d[0] ^= 1;
  EXPECT_EQ(check_delimiter(d), -1);
  d = make_delimiter(100);
  d[2] ^= 0x10;  // CRC byte
  EXPECT_EQ(check_delimiter(d), -1);
  d = make_delimiter(100);
  d[3] = 0x00;  // signature
  EXPECT_EQ(check_delimiter(d), -1);
}

TEST(Ampdu, DelimiterRejectsOversizedLength) {
  EXPECT_THROW(make_delimiter(4096), std::invalid_argument);
}

class AmpduCounts : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AmpduCounts, AggregateDeaggregateRoundTrip) {
  const auto mpdus = sample_mpdus(GetParam(), 40);
  const util::ByteVec psdu = aggregate(mpdus);
  const auto subframes = deaggregate(psdu);
  ASSERT_EQ(subframes.size(), mpdus.size());
  for (std::size_t i = 0; i < mpdus.size(); ++i) {
    EXPECT_EQ(subframes[i].mpdu, mpdus[i]) << "subframe " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, AmpduCounts,
                         ::testing::Values(1, 2, 7, 63, 64));

TEST(Ampdu, PsduIsFourByteAligned) {
  const auto mpdus = sample_mpdus(5, 33);  // forces padding
  const util::ByteVec psdu = aggregate(mpdus);
  EXPECT_EQ(psdu.size() % 4, 0u);
}

TEST(Ampdu, SubframeOffsetsAreAligned) {
  const auto mpdus = sample_mpdus(8, 41);
  const auto subframes = deaggregate(aggregate(mpdus));
  for (const Subframe& sf : subframes) {
    EXPECT_EQ(sf.offset % 4, 0u);
  }
}

TEST(Ampdu, CorruptedDelimiterSkipsOnlyThatSubframe) {
  const auto mpdus = sample_mpdus(6, 60);
  util::ByteVec psdu = aggregate(mpdus);
  // Corrupt the delimiter of subframe 2.
  const auto subframes = deaggregate(psdu);
  psdu[subframes[2].offset + 3] = 0x00;  // kill its signature
  const auto after = deaggregate(psdu);
  // Subframe 2's delimiter is gone; the hunt resynchronizes at 3.
  ASSERT_EQ(after.size(), mpdus.size() - 1);
  EXPECT_EQ(after[0].mpdu, mpdus[0]);
  EXPECT_EQ(after[1].mpdu, mpdus[1]);
  EXPECT_EQ(after[2].mpdu, mpdus[3]);
}

TEST(Ampdu, CorruptedMpduBodyStillDeaggregates) {
  // Body corruption (what the tag causes) leaves delimiters intact:
  // deaggregation yields all subframes; the FCS check catches the bad one.
  const auto mpdus = sample_mpdus(4, 80);
  util::ByteVec psdu = aggregate(mpdus);
  const auto before = deaggregate(psdu);
  psdu[before[1].offset + kDelimiterBytes + 30] ^= 0xFF;
  const auto after = deaggregate(psdu);
  ASSERT_EQ(after.size(), 4u);
  EXPECT_TRUE(fcs_ok(after[0].mpdu));
  EXPECT_FALSE(fcs_ok(after[1].mpdu));
  EXPECT_TRUE(fcs_ok(after[2].mpdu));
  EXPECT_TRUE(fcs_ok(after[3].mpdu));
}

TEST(Ampdu, GarbagePsduYieldsNothing) {
  util::Rng rng(3);
  // Random bytes: delimiter (CRC8 + signature) false-positive rate is
  // ~2^-16 per position, so a short garbage buffer yields no subframes.
  const util::ByteVec garbage = rng.bytes(512);
  EXPECT_TRUE(deaggregate(garbage).empty());
}

TEST(Ampdu, RejectsEmptyAndOversizedAggregates) {
  EXPECT_THROW(aggregate({}), std::invalid_argument);
  const auto too_many = sample_mpdus(65, 10);
  EXPECT_THROW(aggregate(too_many), std::invalid_argument);
}

TEST(Ampdu, TruncatedFinalSubframeIsDropped) {
  const auto mpdus = sample_mpdus(3, 50);
  util::ByteVec psdu = aggregate(mpdus);
  psdu.resize(psdu.size() - 20);  // chop into the last MPDU
  const auto subframes = deaggregate(psdu);
  EXPECT_EQ(subframes.size(), 2u);
}

}  // namespace
}  // namespace witag::mac
