#include "channel/tag_path.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/units.hpp"

namespace witag::channel {
namespace {

TEST(TagPath, GammaValuesPerMode) {
  EXPECT_EQ(tag_gamma(TagMode::kOpenShort, false), (std::complex<double>{0, 0}));
  EXPECT_EQ(tag_gamma(TagMode::kOpenShort, true), (std::complex<double>{1, 0}));
  EXPECT_EQ(tag_gamma(TagMode::kPhaseFlip, false), (std::complex<double>{1, 0}));
  EXPECT_EQ(tag_gamma(TagMode::kPhaseFlip, true), (std::complex<double>{-1, 0}));
}

TEST(TagPath, PhaseFlipDoublesChannelChange) {
  // The paper's Figure 3 claim: always-reflect with a 180-degree flip
  // moves the channel twice as far as open/short switching.
  const FloorPlan empty;
  TagPathConfig open_short{{4.0, 0.0}, 2.0, TagMode::kOpenShort};
  TagPathConfig phase_flip{{4.0, 0.0}, 2.0, TagMode::kPhaseFlip};
  const double d_os = channel_change_magnitude(open_short, {0, 0}, {8, 0},
                                               empty, util::kWifi24GHz);
  const double d_pf = channel_change_magnitude(phase_flip, {0, 0}, {8, 0},
                                               empty, util::kWifi24GHz);
  EXPECT_NEAR(d_pf / d_os, 2.0, 1e-12);
}

TEST(TagPath, ChangeFollowsRadarLawOverPosition) {
  // |delta h| ~ 1/(Ds * Dr): smallest at the midpoint of the link.
  const FloorPlan empty;
  auto change_at = [&](double x) {
    TagPathConfig tag{{x, 0.0}, 2.0, TagMode::kPhaseFlip};
    return channel_change_magnitude(tag, {0, 0}, {8, 0}, empty,
                                    util::kWifi24GHz);
  };
  const double mid = change_at(4.0);
  EXPECT_GT(change_at(1.0), mid);
  EXPECT_GT(change_at(7.0), mid);
  // Symmetric geometry gives symmetric change.
  EXPECT_NEAR(change_at(2.0), change_at(6.0), 1e-15);
}

TEST(TagPath, CouplingIncludesWallLoss) {
  FloorPlan plan;
  plan.add_wall({{2.0, -5.0}, {2.0, 5.0}, 6.0});
  TagPathConfig tag{{1.0, 0.0}, 2.0, TagMode::kPhaseFlip};
  const auto with_wall =
      tag_coupling(tag, {0, 0}, {8, 0}, plan, util::kWifi24GHz, util::Hertz{0.0});
  const auto without =
      tag_coupling(tag, {0, 0}, {8, 0}, FloorPlan{}, util::kWifi24GHz, util::Hertz{0.0});
  // Tag -> AP hop crosses the wall once: -6 dB amplitude factor.
  EXPECT_NEAR(std::abs(with_wall) / std::abs(without),
              std::pow(10.0, -6.0 / 20.0), 1e-9);
}

TEST(TagPath, CouplingScalesWithStrength) {
  const FloorPlan empty;
  TagPathConfig weak{{3.0, 1.0}, 1.0, TagMode::kPhaseFlip};
  TagPathConfig strong{{3.0, 1.0}, 7.0, TagMode::kPhaseFlip};
  const double a1 =
      std::abs(tag_coupling(weak, {0, 0}, {8, 0}, empty, util::kWifi24GHz, util::Hertz{0.0}));
  const double a2 = std::abs(
      tag_coupling(strong, {0, 0}, {8, 0}, empty, util::kWifi24GHz, util::Hertz{0.0}));
  EXPECT_NEAR(a2 / a1, 7.0, 1e-9);
}

}  // namespace
}  // namespace witag::channel
