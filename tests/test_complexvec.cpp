#include "util/complexvec.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace witag::util {
namespace {

TEST(ComplexVec, MeanPowerAndEnergy) {
  const CxVec v{{1.0, 0.0}, {0.0, 2.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(energy(v), 1.0 + 4.0 + 2.0);
  EXPECT_DOUBLE_EQ(mean_power(v), 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(mean_power({}), 0.0);
}

TEST(ComplexVec, EvmZeroForIdentical) {
  const CxVec v{{1.0, 0.5}, {-0.3, 0.2}};
  EXPECT_DOUBLE_EQ(evm(v, v), 0.0);
}

TEST(ComplexVec, EvmScalesWithError) {
  const CxVec ref{{1.0, 0.0}, {1.0, 0.0}};
  const CxVec rx{{1.1, 0.0}, {0.9, 0.0}};
  EXPECT_NEAR(evm(rx, ref), 0.1, 1e-12);
}

TEST(ComplexVec, EvmContractChecks) {
  const CxVec a{{1.0, 0.0}};
  const CxVec b{{1.0, 0.0}, {1.0, 0.0}};
  EXPECT_THROW(evm(a, b), std::invalid_argument);
  EXPECT_THROW(evm({}, {}), std::invalid_argument);
  const CxVec zero{{0.0, 0.0}};
  EXPECT_THROW(evm(a, zero), std::invalid_argument);
}

TEST(ComplexVec, AddScaled) {
  CxVec out{{1.0, 0.0}, {0.0, 0.0}};
  const CxVec in{{1.0, 0.0}, {0.0, 1.0}};
  add_scaled(out, in, {2.0, 0.0});
  EXPECT_EQ(out[0], (Cx{3.0, 0.0}));
  EXPECT_EQ(out[1], (Cx{0.0, 2.0}));
}

TEST(ComplexVec, HadamardProduct) {
  const CxVec a{{1.0, 0.0}, {0.0, 1.0}};
  const CxVec b{{2.0, 0.0}, {0.0, 1.0}};
  const CxVec p = hadamard(a, b);
  EXPECT_EQ(p[0], (Cx{2.0, 0.0}));
  EXPECT_EQ(p[1], (Cx{-1.0, 0.0}));
}


}  // namespace
}  // namespace witag::util
