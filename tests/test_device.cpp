#include "tag/device.hpp"

#include <gtest/gtest.h>

#include "tag/power.hpp"
#include "tag/reflector_ctl.hpp"

namespace witag::tag {
namespace {

TagDeviceConfig prototype_config() {
  TagDeviceConfig cfg;
  cfg.clock.nominal_hz = 1e6;  // 1 us ticks (prototype MCU timer)
  cfg.clock.crystal_ppm = 0.0;
  cfg.guard_us = 4.0;
  cfg.trigger_latency_us = 0.0;
  return cfg;
}

QueryTiming timing_16us() {
  QueryTiming t;
  t.subframe_duration_us = 16.0;
  t.align_edge_us = 84.0;   // end of trigger sf3
  t.data_start_us = 100.0;  // after trigger sf4
  return t;
}

TEST(ReflectorControl, MergesOverlappingWindows) {
  ReflectorControl ctl({}, {{10.0, 20.0}, {15.0, 30.0}, {40.0, 50.0}});
  EXPECT_EQ(ctl.windows().size(), 2u);
  EXPECT_TRUE(ctl.level_at(25.0));
  EXPECT_FALSE(ctl.level_at(35.0));
  EXPECT_TRUE(ctl.level_at(45.0));
  EXPECT_EQ(ctl.toggle_count(), 4u);
}

TEST(ReflectorControl, LevelAtBoundaries) {
  ReflectorControl ctl({}, {{10.0, 20.0}});
  EXPECT_FALSE(ctl.level_at(9.99));
  EXPECT_TRUE(ctl.level_at(10.0));
  EXPECT_TRUE(ctl.level_at(19.99));
  EXPECT_FALSE(ctl.level_at(20.5));
}

TEST(ReflectorControl, TransitionTailCountsAsAsserted) {
  SwitchConfig sw;
  sw.transition_us = 1.0;
  ReflectorControl ctl(sw, {{10.0, 20.0}});
  EXPECT_TRUE(ctl.level_at(20.5));  // still settling
  EXPECT_FALSE(ctl.level_at(21.5));
}

TEST(ReflectorControl, SlotLevelsUseMidpoints) {
  ReflectorControl ctl({}, {{4.0, 12.0}});
  const auto levels = ctl.slot_levels(4);  // slots [0,4) [4,8) [8,12) [12,16)
  ASSERT_EQ(levels.size(), 4u);
  EXPECT_EQ(levels[0], 0);  // midpoint 2
  EXPECT_EQ(levels[1], 1);  // midpoint 6
  EXPECT_EQ(levels[2], 1);  // midpoint 10
  EXPECT_EQ(levels[3], 0);  // midpoint 14
}

TEST(ReflectorControl, RejectsInvertedWindows) {
  EXPECT_THROW(ReflectorControl({}, {{5.0, 1.0}}), std::invalid_argument);
}

TEST(TagDevice, ConsumesPayloadBitsInOrder) {
  TagDevice dev(prototype_config());
  dev.set_payload({1, 0, 1, 1, 0});
  const auto plan = dev.respond(timing_16us(), 3);
  EXPECT_EQ(plan.bits, (util::BitVec{1, 0, 1}));
  EXPECT_EQ(dev.pending_bits(), 2u);
  const auto plan2 = dev.respond(timing_16us(), 3);
  EXPECT_EQ(plan2.bits, (util::BitVec{1, 0, 1}));  // wraps: 1,0 then 1
}

TEST(TagDevice, ZeroBitsGetAssertWindowsInsideSubframes) {
  TagDevice dev(prototype_config());
  dev.set_payload({0, 1, 0});
  const auto plan = dev.respond(timing_16us(), 3);
  const auto& windows = plan.control.windows();
  ASSERT_EQ(windows.size(), 2u);
  // Subframe k spans [100 + 16k, 100 + 16(k+1)); windows stay inside
  // with the 4 us guards.
  EXPECT_GE(windows[0].first, 104.0 - 1e-9);
  EXPECT_LE(windows[0].second, 112.0 + 1e-9);
  EXPECT_GE(windows[1].first, 136.0 - 1e-9);
  EXPECT_LE(windows[1].second, 144.0 + 1e-9);
}

TEST(TagDevice, OneBitsLeaveNoWindows) {
  TagDevice dev(prototype_config());
  dev.set_payload({1, 1, 1, 1});
  const auto plan = dev.respond(timing_16us(), 4);
  EXPECT_TRUE(plan.control.windows().empty());
}

TEST(TagDevice, CoarseClockQuantizesWindows) {
  TagDeviceConfig cfg = prototype_config();
  cfg.clock.nominal_hz = 50e3;  // 20 us ticks
  TagDevice dev(cfg);
  dev.set_payload({0});
  QueryTiming t;
  // Three ticks per subframe: a quantized window always fits (a 2-tick
  // subframe only holds one grid point after the guards, depending on
  // phase — which is exactly why plan_query demands the extra margin).
  t.subframe_duration_us = 60.0;
  t.align_edge_us = 80.0;
  t.data_start_us = 120.0;
  const auto plan = dev.respond(t, 1);
  ASSERT_EQ(plan.control.windows().size(), 1u);
  const auto [start, end] = plan.control.windows()[0];
  // Window must stay inside [124, 176] (guards) and land on the tick
  // grid relative to the align edge.
  EXPECT_GE(start, 124.0 - 1e-9);
  EXPECT_LE(end, 176.0 + 1e-9);
  EXPECT_GT(end, start);
  EXPECT_NEAR(std::fmod(start - 80.0, 20.0), 0.0, 1e-9);
}

TEST(TagDevice, TooCoarseClockLosesTheWindow) {
  TagDeviceConfig cfg = prototype_config();
  cfg.clock.nominal_hz = 50e3;  // 20 us ticks
  TagDevice dev(cfg);
  dev.set_payload({0});
  // 16 us subframes cannot hold a quantized window at 20 us ticks.
  const auto plan = dev.respond(timing_16us(), 1);
  EXPECT_TRUE(plan.control.windows().empty());
}

TEST(TagDevice, RingOscillatorDriftMisplacesLateWindows) {
  TagDeviceConfig hot = prototype_config();
  hot.clock.kind = OscillatorKind::kRing;
  hot.clock.temperature_c = 30.0;  // +5 C -> 3% fast
  TagDevice dev(hot);
  util::BitVec zeros(40, 0);
  dev.set_payload(zeros);
  const auto plan = dev.respond(timing_16us(), 40);
  // The last subframe starts at 100 + 39*16 = 724; with 3% drift over
  // ~640 us from the align edge the window is ~19 us early, i.e. in the
  // previous subframe.
  const auto& windows = plan.control.windows();
  ASSERT_FALSE(windows.empty());
  const double last_ideal_start = 100.0 + 39.0 * 16.0 + 4.0;
  EXPECT_LT(windows.back().first, last_ideal_start - 10.0);
}

TEST(TagDevice, GuardsLargerThanSubframeYieldNothing) {
  TagDeviceConfig cfg = prototype_config();
  cfg.guard_us = 10.0;  // 2 * 10 >= 16
  TagDevice dev(cfg);
  dev.set_payload({0, 0});
  const auto plan = dev.respond(timing_16us(), 2);
  EXPECT_TRUE(plan.control.windows().empty());
}

TEST(TagDevice, ContractChecks) {
  TagDevice dev(prototype_config());
  EXPECT_THROW(dev.respond(timing_16us(), 1), std::invalid_argument);  // no payload
  dev.set_payload({1});
  EXPECT_THROW(dev.respond(timing_16us(), 0), std::invalid_argument);
  QueryTiming bad = timing_16us();
  bad.subframe_duration_us = 0.0;
  EXPECT_THROW(dev.respond(bad, 1), std::invalid_argument);
  EXPECT_THROW(dev.set_payload({}), std::invalid_argument);
}

TEST(Power, OscillatorAnchorsMatchPaper) {
  // >= 1 mW for a 20 MHz precision oscillator.
  EXPECT_GT(oscillator_power(OscillatorKind::kCrystal, util::Hertz{20e6})
                .microwatts(),
            1000.0);
  // Tens of microwatts for a 20 MHz ring oscillator.
  const double ring =
      oscillator_power(OscillatorKind::kRing, util::Hertz{20e6}).microwatts();
  EXPECT_GT(ring, 10.0);
  EXPECT_LT(ring, 100.0);
  // Well under a microwatt for the 50 kHz crystal.
  EXPECT_LT(oscillator_power(OscillatorKind::kCrystal, util::Hertz{50e3})
                .microwatts(),
            1.0);
}

TEST(Power, WholeTagIsAFewMicrowatts) {
  ClockConfig clock;
  clock.nominal_hz = 50e3;
  // A 40 Kbps tag toggles at most ~40 k/2 times per second on average.
  const PowerBreakdown p = estimate_power(clock, util::Hertz{20e3});
  EXPECT_GT(p.total().microwatts(), 1.0);
  EXPECT_LT(p.total().microwatts(), 10.0);
}

TEST(Power, ChannelShiftingTagsPayTheOscillator) {
  ClockConfig shift;
  shift.kind = OscillatorKind::kRing;
  shift.nominal_hz = 20e6;
  ClockConfig witag;
  witag.nominal_hz = 50e3;
  EXPECT_GT(estimate_power(shift, util::Hertz{20e3}).total().microwatts(),
            5.0 * estimate_power(witag, util::Hertz{20e3}).total().microwatts());
}

TEST(Power, SwitchTogglingCost) {
  ClockConfig clock;
  const double idle =
      estimate_power(clock, util::Hertz{0.0}).rf_switch.microwatts();
  EXPECT_DOUBLE_EQ(idle, 0.0);
  EXPECT_GT(estimate_power(clock, util::Hertz{1e6}).rf_switch.microwatts(),
            1.0);
}

TEST(Power, ContractChecks) {
  ClockConfig clock;
  EXPECT_THROW(estimate_power(clock, util::Hertz{-1.0}),
               std::invalid_argument);
  EXPECT_THROW(oscillator_power(OscillatorKind::kRing, util::Hertz{0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace witag::tag
