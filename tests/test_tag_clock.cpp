#include "tag/clock.hpp"

#include <gtest/gtest.h>

namespace witag::tag {
namespace {

TEST(TagClock, NominalCrystalAtReferenceTemp) {
  ClockConfig cfg;
  cfg.kind = OscillatorKind::kCrystal;
  cfg.nominal_hz = 50e3;
  cfg.crystal_ppm = 0.0;
  TagClock clock(cfg);
  EXPECT_DOUBLE_EQ(clock.actual_hz(), 50e3);
  EXPECT_DOUBLE_EQ(clock.tick_period_us(), 20.0);
  EXPECT_DOUBLE_EQ(clock.fractional_error(), 0.0);
}

TEST(TagClock, CrystalPpmError) {
  ClockConfig cfg;
  cfg.crystal_ppm = 20.0;
  TagClock clock(cfg);
  EXPECT_NEAR(clock.fractional_error(), 20e-6, 1e-12);
}

TEST(TagClock, CrystalTemperatureCoefficientIsSmall) {
  ClockConfig cfg;
  cfg.crystal_ppm = 0.0;
  cfg.temperature_c = 45.0;  // +20 C
  TagClock clock(cfg);
  EXPECT_NEAR(clock.fractional_error(), 20.0 * 0.5e-6, 1e-12);
}

TEST(TagClock, RingOscillatorDriftMatchesPaperFootnote) {
  // Paper footnote 4: 5 C shifts a 20 MHz ring oscillator by 600 kHz.
  ClockConfig cfg;
  cfg.kind = OscillatorKind::kRing;
  cfg.nominal_hz = 20e6;
  cfg.temperature_c = 30.0;  // +5 C
  TagClock clock(cfg);
  EXPECT_NEAR(clock.actual_hz() - 20e6, 600e3, 1.0);
}

TEST(TagClock, RealizeRoundsUpToTicks) {
  ClockConfig cfg;
  cfg.nominal_hz = 50e3;  // 20 us ticks
  cfg.crystal_ppm = 0.0;
  TagClock clock(cfg);
  EXPECT_DOUBLE_EQ(clock.realize_instant_us(0.0, TagClock::Round::kUp), 0.0);
  EXPECT_DOUBLE_EQ(clock.realize_instant_us(1.0, TagClock::Round::kUp), 20.0);
  EXPECT_DOUBLE_EQ(clock.realize_instant_us(20.0, TagClock::Round::kUp), 20.0);
  EXPECT_DOUBLE_EQ(clock.realize_instant_us(20.1, TagClock::Round::kUp), 40.0);
}

TEST(TagClock, RealizeRoundsDownToTicks) {
  ClockConfig cfg;
  cfg.nominal_hz = 50e3;
  cfg.crystal_ppm = 0.0;
  TagClock clock(cfg);
  EXPECT_DOUBLE_EQ(clock.realize_instant_us(19.9, TagClock::Round::kDown), 0.0);
  EXPECT_DOUBLE_EQ(clock.realize_instant_us(20.0, TagClock::Round::kDown), 20.0);
  EXPECT_DOUBLE_EQ(clock.realize_instant_us(39.0, TagClock::Round::kDown), 20.0);
}

TEST(TagClock, FrequencyErrorStretchesRealizedInstants) {
  ClockConfig cfg;
  cfg.kind = OscillatorKind::kRing;
  cfg.nominal_hz = 50e3;
  cfg.temperature_c = 30.0;  // +5 C -> +3% fast
  TagClock clock(cfg);
  // A fast clock fires ticks early: realized < ideal.
  const double t = clock.realize_instant_us(2000.0, TagClock::Round::kUp);
  EXPECT_LT(t, 2000.0);
  EXPECT_NEAR(t, 2000.0 / 1.03, 0.5);
}

TEST(TagClock, RejectsBadConfig) {
  ClockConfig cfg;
  cfg.nominal_hz = 0.0;
  EXPECT_THROW(TagClock{cfg}, std::invalid_argument);
  ClockConfig ok;
  TagClock clock(ok);
  EXPECT_THROW(clock.realize_instant_us(-1.0, TagClock::Round::kUp),
               std::invalid_argument);
}

}  // namespace
}  // namespace witag::tag
