#include "runner/parallel_sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "runner/thread_pool.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"
#include "witag/metrics.hpp"
#include "witag/session.hpp"

namespace witag::runner {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  EXPECT_EQ(pool.jobs(), 4u);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReentrant) {
  ThreadPool pool(2);
  pool.wait_idle();  // Nothing submitted yet.
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(default_jobs(), 1u);
}

TEST(ParallelMap, PreservesIndexOrder) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{3},
                                 std::size_t{8}}) {
    const auto out =
        parallel_map(100, jobs, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], i * i) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelMap, HandlesMoreJobsThanTasks) {
  const auto out = parallel_map(3, 16, [](std::size_t i) { return i + 1; });
  EXPECT_EQ(out, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(ParallelMap, EmptyCountIsFine) {
  const auto out = parallel_map(0, 4, [](std::size_t i) { return i; });
  EXPECT_TRUE(out.empty());
}

TEST(ParallelMap, RethrowsFirstTaskError) {
  const auto body = [](std::size_t i) -> int {
    if (i == 7) throw std::runtime_error("task 7 failed");
    return static_cast<int>(i);
  };
  EXPECT_THROW(parallel_map(16, 4, body), std::runtime_error);
  EXPECT_THROW(parallel_map(16, 1, body), std::runtime_error);
}

TEST(DeriveSeed, IsPureAndDeterministic) {
  const std::uint64_t a = util::Rng::derive_seed(42, 0);
  const std::uint64_t b = util::Rng::derive_seed(42, 0);
  EXPECT_EQ(a, b);
  // O(1) in the index: jumping straight to task 1000 equals whatever a
  // serial enumeration would have assigned it.
  EXPECT_EQ(util::Rng::derive_seed(42, 1000), util::Rng::derive_seed(42, 1000));
}

TEST(DeriveSeed, SpreadsAcrossTasksAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 42ull}) {
    for (std::uint64_t task = 0; task < 64; ++task) {
      seen.insert(util::Rng::derive_seed(base, task));
    }
  }
  // splitmix64 decorrelates the (base + task * golden) states; any
  // collision here would alias two Monte-Carlo streams.
  EXPECT_EQ(seen.size(), 3u * 64u);
}

core::LinkMetrics sample_metrics(std::uint64_t seed, std::size_t rounds) {
  util::Rng rng(seed);
  core::LinkMetrics m;
  for (std::size_t r = 0; r < rounds; ++r) {
    const util::BitVec sent = rng.bits(16);
    std::vector<bool> received(sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
      received[i] = rng.uniform() < 0.9 ? (sent[i] != 0) : (sent[i] == 0);
    }
    m.record_round(sent, received, rng.uniform() < 0.1,
                   util::Micros{1000.0 + 10.0 * r});
  }
  return m;
}

void expect_metrics_eq(const core::LinkMetrics& x, const core::LinkMetrics& y) {
  EXPECT_EQ(x.bits(), y.bits());
  EXPECT_EQ(x.bit_errors(), y.bit_errors());
  EXPECT_EQ(x.missed_corruptions(), y.missed_corruptions());
  EXPECT_EQ(x.false_corruptions(), y.false_corruptions());
  EXPECT_EQ(x.rounds(), y.rounds());
  EXPECT_EQ(x.rounds_lost(), y.rounds_lost());
  EXPECT_DOUBLE_EQ(x.elapsed_us().value(), y.elapsed_us().value());
}

TEST(LinkMetricsMerge, EmptyIsIdentity) {
  const core::LinkMetrics x = sample_metrics(7, 20);
  core::LinkMetrics left;  // empty ⊕ x
  left.merge(x);
  expect_metrics_eq(left, x);
  core::LinkMetrics right = x;  // x ⊕ empty
  right.merge(core::LinkMetrics{});
  expect_metrics_eq(right, x);
}

TEST(LinkMetricsMerge, IsAssociative) {
  const core::LinkMetrics a = sample_metrics(1, 10);
  const core::LinkMetrics b = sample_metrics(2, 15);
  const core::LinkMetrics c = sample_metrics(3, 5);

  core::LinkMetrics ab = a;  // (a ⊕ b) ⊕ c
  ab.merge(b);
  ab.merge(c);

  core::LinkMetrics bc = b;  // a ⊕ (b ⊕ c)
  bc.merge(c);
  core::LinkMetrics a_bc = a;
  a_bc.merge(bc);

  expect_metrics_eq(ab, a_bc);
}

TEST(LinkMetricsMerge, MatchesRecordingEverythingInOneAccumulator) {
  // Splitting the same rounds across two accumulators and merging must
  // equal one accumulator that saw all of them.
  core::LinkMetrics whole;
  core::LinkMetrics first;
  core::LinkMetrics second;
  util::Rng rng(99);
  for (std::size_t r = 0; r < 12; ++r) {
    const util::BitVec sent = rng.bits(8);
    std::vector<bool> received(sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
      received[i] = sent[i] != 0;
    }
    whole.record_round(sent, received, false, util::Micros{500.0});
    (r < 6 ? first : second)
        .record_round(sent, received, false, util::Micros{500.0});
  }
  first.merge(second);
  expect_metrics_eq(first, whole);
}

std::vector<SweepTask> sweep_fixture(std::size_t n_tasks) {
  std::vector<SweepTask> tasks;
  for (std::size_t i = 0; i < n_tasks; ++i) {
    auto cfg = core::los_testbed_config(
        util::Meters{1.0 + static_cast<double>(i % 7)},
        util::Rng::derive_seed(1234, i));
    tasks.push_back({std::move(cfg), 3});
  }
  return tasks;
}

void expect_run_stats_eq(const core::Session::RunStats& x,
                         const core::Session::RunStats& y) {
  expect_metrics_eq(x.metrics, y.metrics);
  EXPECT_EQ(x.triggers_missed, y.triggers_missed);
  EXPECT_DOUBLE_EQ(x.mean_snr_db.value(), y.mean_snr_db.value());
  EXPECT_DOUBLE_EQ(x.tag_perturbation_db.value(),
                   y.tag_perturbation_db.value());
}

// The tentpole contract: the merged result and every per-task result are
// bit-identical whether the sweep runs serially or on 2 or 8 workers.
TEST(RunSweep, ResultsInvariantAcrossWorkerCounts) {
  const auto tasks = sweep_fixture(6);

  SweepOptions serial;
  serial.jobs = 1;
  const SweepResult base = run_sweep(tasks, serial);
  EXPECT_EQ(base.jobs, 1u);
  EXPECT_EQ(base.per_task.size(), tasks.size());

  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    SweepOptions opts;
    opts.jobs = jobs;
    const SweepResult got = run_sweep(tasks, opts);
    EXPECT_EQ(got.jobs, std::min(jobs, tasks.size()));
    ASSERT_EQ(got.per_task.size(), base.per_task.size());
    for (std::size_t i = 0; i < base.per_task.size(); ++i) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs) + " task=" +
                   std::to_string(i));
      expect_run_stats_eq(got.per_task[i], base.per_task[i]);
    }
    expect_metrics_eq(got.merged, base.merged);
    EXPECT_EQ(got.triggers_missed, base.triggers_missed);
  }
}

TEST(RunSweep, MergedEqualsFoldOfPerTask) {
  const auto tasks = sweep_fixture(4);
  const SweepResult result = run_sweep(tasks, {});
  core::LinkMetrics folded;
  std::size_t missed = 0;
  for (const auto& stats : result.per_task) {
    folded.merge(stats.metrics);
    missed += stats.triggers_missed;
  }
  expect_metrics_eq(result.merged, folded);
  EXPECT_EQ(result.triggers_missed, missed);
}

// Stronger than aggregate equality: the raw per-round bit streams out of
// each task's Session are byte-for-byte identical at any worker count.
TEST(RunnerDeterminism, RoundBitStreamsInvariantAcrossWorkerCounts) {
  struct TaskTrace {
    std::vector<util::BitVec> sent;
    std::vector<std::vector<bool>> received;
    std::vector<bool> lost;
  };
  const auto run_all = [](std::size_t jobs) {
    return parallel_map(5, jobs, [](std::size_t i) -> TaskTrace {
      auto cfg = core::los_testbed_config(util::Meters{2.0 + static_cast<double>(i)},
                                          util::Rng::derive_seed(777, i));
      core::Session session(cfg);
      TaskTrace trace;
      for (int r = 0; r < 3; ++r) {
        auto round = session.run_round();
        trace.sent.push_back(std::move(round.sent));
        trace.received.push_back(std::move(round.received));
        trace.lost.push_back(round.lost);
      }
      return trace;
    });
  };

  const auto base = run_all(1);
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    const auto got = run_all(jobs);
    ASSERT_EQ(got.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs) + " task=" +
                   std::to_string(i));
      EXPECT_EQ(got[i].sent, base[i].sent);
      EXPECT_EQ(got[i].received, base[i].received);
      EXPECT_EQ(got[i].lost, base[i].lost);
    }
  }
}

}  // namespace
}  // namespace witag::runner
