#include "phy/dsss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace witag::phy::dsss {
namespace {

using util::Cx;

TEST(Dsss, BarkerAutocorrelationProperty) {
  // Barker-11: peak 11 at zero lag, |sidelobes| <= 1.
  const auto b = barker11();
  for (int lag = 0; lag < 11; ++lag) {
    int acc = 0;
    for (int i = 0; i + lag < 11; ++i) {
      acc += b[static_cast<std::size_t>(i)] *
             b[static_cast<std::size_t>(i + lag)];
    }
    if (lag == 0) {
      EXPECT_EQ(acc, 11);
    } else {
      EXPECT_LE(std::abs(acc), 1) << "lag " << lag;
    }
  }
}

class DsssRates : public ::testing::TestWithParam<DsssRate> {};

TEST_P(DsssRates, CleanRoundTrip) {
  util::Rng rng(1);
  const util::BitVec bits = rng.bits(400);
  const util::CxVec chips = modulate(bits, GetParam());
  EXPECT_EQ(demodulate(chips, GetParam()), bits);
}

TEST_P(DsssRates, RoundTripWithNoise) {
  util::Rng rng(2);
  const util::BitVec bits = rng.bits(200);
  util::CxVec chips = modulate(bits, GetParam());
  // 10 dB chip SNR; despreading adds 10.4 dB of gain.
  for (Cx& c : chips) c += rng.complex_normal(0.1);
  EXPECT_EQ(demodulate(chips, GetParam()), bits);
}

TEST_P(DsssRates, RoundTripWithCommonPhase) {
  // Differential detection is immune to a constant phase offset.
  util::Rng rng(3);
  const util::BitVec bits = rng.bits(100);
  util::CxVec chips = modulate(bits, GetParam());
  const Cx rot = std::polar(1.0, 1.1);
  for (Cx& c : chips) c *= rot;
  EXPECT_EQ(demodulate(chips, GetParam()), bits);
}

INSTANTIATE_TEST_SUITE_P(BothRates, DsssRates,
                         ::testing::Values(DsssRate::kDbpsk1Mbps,
                                           DsssRate::kDqpsk2Mbps));

TEST(Dsss, ChipCountMatchesRate) {
  // One extra codeword: the differential phase reference.
  const util::BitVec bits(20, 0);
  EXPECT_EQ(modulate(bits, DsssRate::kDbpsk1Mbps).size(), 21u * kChipsPerBit);
  EXPECT_EQ(modulate(bits, DsssRate::kDqpsk2Mbps).size(), 11u * kChipsPerBit);
}

TEST(Dsss, CodewordCorrelationDetectsFlip) {
  const util::BitVec bits{0, 0};
  util::CxVec chips = modulate(bits, DsssRate::kDbpsk1Mbps);
  const Cx before = correlate_codeword(chips, 1);
  for (unsigned c = 0; c < kChipsPerBit; ++c) {
    chips[kChipsPerBit + c] *= -1.0;  // flip the first data codeword
  }
  const Cx after = correlate_codeword(chips, 1);
  EXPECT_NEAR(std::abs(before + after), 0.0, 1e-12);  // exact negation
}

TEST(Dsss, DqpskRequiresEvenBits) {
  const util::BitVec bits(3, 0);
  EXPECT_THROW(modulate(bits, DsssRate::kDqpsk2Mbps), std::invalid_argument);
}

TEST(Dsss, DemodulateRequiresWholeCodewords) {
  const util::CxVec chips(12);
  EXPECT_THROW(demodulate(chips, DsssRate::kDbpsk1Mbps),
               std::invalid_argument);
}

TEST(Dsss, AllDibitsRoundTrip) {
  // Explicitly exercise every DQPSK phase increment.
  const util::BitVec bits{0, 0, 1, 0, 0, 1, 1, 1, 1, 0, 0, 0, 1, 1, 0, 1};
  const util::CxVec chips = modulate(bits, DsssRate::kDqpsk2Mbps);
  EXPECT_EQ(demodulate(chips, DsssRate::kDqpsk2Mbps), bits);
}

}  // namespace
}  // namespace witag::phy::dsss
