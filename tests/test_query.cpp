#include "witag/query.hpp"

#include <gtest/gtest.h>

#include "mac/ampdu.hpp"
#include "phy/mcs.hpp"
#include "util/units.hpp"

namespace witag::core {
namespace {

struct PlanCase {
  unsigned mcs;
  mac::Security security;
};

class QueryPlanParam : public ::testing::TestWithParam<PlanCase> {};

TEST_P(QueryPlanParam, LayoutSatisfiesAllConstraints) {
  QueryConfig cfg;
  const QueryLayout layout =
      plan_query(cfg, GetParam().mcs, GetParam().security, util::Micros{1.0}, util::Micros{4.0});

  const phy::McsParams& m = phy::mcs(GetParam().mcs);
  // Whole symbols: bytes * 8 == symbols * n_dbps.
  EXPECT_EQ(layout.subframe_bytes * 8,
            layout.symbols_per_subframe * m.n_dbps);
  // A-MPDU padding alignment.
  EXPECT_EQ(layout.subframe_bytes % 4, 0u);
  // Room for the MAC machinery.
  EXPECT_GE(layout.subframe_bytes,
            mac::kDelimiterBytes + mac::kQosHeaderBytes + mac::kFcsBytes);
  // Tag timing: at least one whole OFDM symbol of corruption window.
  const double window =
      layout.subframe_duration_us().value() - 2.0 * 4.0 - 2.0 * 1.0;
  EXPECT_GE(window, phy::kSymbolDurationUs);
  EXPECT_EQ(layout.n_data_subframes, layout.n_subframes - layout.n_trigger);
}

INSTANTIATE_TEST_SUITE_P(
    McsAndSecurity, QueryPlanParam,
    ::testing::Values(PlanCase{0, mac::Security::kOpen},
                      PlanCase{1, mac::Security::kOpen},
                      PlanCase{3, mac::Security::kOpen},
                      PlanCase{5, mac::Security::kOpen},
                      PlanCase{7, mac::Security::kOpen},
                      PlanCase{5, mac::Security::kCcmp},
                      PlanCase{5, mac::Security::kWep},
                      PlanCase{7, mac::Security::kCcmp}));

TEST(QueryPlan, CoarserClockForcesLongerSubframes) {
  QueryConfig cfg;
  const QueryLayout fine =
      plan_query(cfg, 5, mac::Security::kOpen, util::Micros{1.0}, util::Micros{4.0});
  const QueryLayout coarse =
      plan_query(cfg, 5, mac::Security::kOpen, util::Micros{20.0}, util::Micros{4.0});
  EXPECT_GT(coarse.symbols_per_subframe, fine.symbols_per_subframe);
}

TEST(QueryPlan, ExplicitSymbolsRespected) {
  QueryConfig cfg;
  cfg.symbols_per_subframe = 8;
  const QueryLayout layout =
      plan_query(cfg, 5, mac::Security::kOpen, util::Micros{1.0}, util::Micros{4.0});
  EXPECT_EQ(layout.symbols_per_subframe, 8u);
  EXPECT_EQ(layout.subframe_bytes, 208u);
}

TEST(QueryPlan, ExplicitSymbolsValidated) {
  QueryConfig cfg;
  cfg.symbols_per_subframe = 3;  // 3 * 208 / 8 = 78, not 4-aligned
  EXPECT_THROW(plan_query(cfg, 5, mac::Security::kOpen, util::Micros{1.0}, util::Micros{4.0}),
               std::invalid_argument);
}

TEST(QueryPlan, TriggerCountValidated) {
  QueryConfig cfg;
  cfg.n_trigger = 4;  // must be odd >= 5
  EXPECT_THROW(plan_query(cfg, 5, mac::Security::kOpen, util::Micros{1.0}, util::Micros{4.0}),
               std::invalid_argument);
  cfg.n_trigger = 63;
  cfg.n_subframes = 63;  // no data subframes left
  EXPECT_THROW(plan_query(cfg, 5, mac::Security::kOpen, util::Micros{1.0}, util::Micros{4.0}),
               std::invalid_argument);
}

TEST(QueryPlan, IdealTimingGeometry) {
  QueryConfig cfg;
  const QueryLayout layout =
      plan_query(cfg, 5, mac::Security::kOpen, util::Micros{1.0}, util::Micros{4.0});
  const tag::QueryTiming t = layout.ideal_timing();
  EXPECT_DOUBLE_EQ(t.subframe_duration_us,
                   layout.subframe_duration_us().value());
  EXPECT_DOUBLE_EQ(t.data_start_us,
                   layout.subframes_start_us().value() +
                       layout.n_trigger * layout.subframe_duration_us().value());
  // Align edge = end of trigger subframe 3.
  EXPECT_DOUBLE_EQ(t.align_edge_us,
                   layout.subframes_start_us().value() +
                       4.0 * layout.subframe_duration_us().value());
}

TEST(QueryBuild, PsduShapeAndPpduLayout) {
  QueryConfig qcfg;
  const QueryLayout layout =
      plan_query(qcfg, 5, mac::Security::kOpen, util::Micros{1.0}, util::Micros{4.0});
  mac::Client client(mac::make_address(1), mac::make_address(2), {});
  const QueryFrame frame = build_query(layout, client, 0.35);
  EXPECT_EQ(frame.ppdu.sig.length,
            layout.subframe_bytes * layout.n_subframes);
  EXPECT_EQ(frame.slot_scale.size(), frame.ppdu.symbols.size());
}

TEST(QueryBuild, TriggerScalePatternHighLowAlternates) {
  QueryConfig qcfg;
  const QueryLayout layout =
      plan_query(qcfg, 5, mac::Security::kOpen, util::Micros{1.0}, util::Micros{4.0});
  mac::Client client(mac::make_address(1), mac::make_address(2), {});
  const QueryFrame frame = build_query(layout, client, 0.35);
  const std::size_t s_per = layout.symbols_per_subframe;
  // Header slots stay at 1.0.
  for (std::size_t s = 0; s < phy::kHeaderSlots; ++s) {
    EXPECT_DOUBLE_EQ(frame.slot_scale[s], 1.0) << s;
  }
  for (unsigned k = 0; k < layout.n_trigger; ++k) {
    const double expected = (k % 2 == 1) ? 0.35 : 1.0;
    for (std::size_t s = 0; s < s_per; ++s) {
      EXPECT_DOUBLE_EQ(
          frame.slot_scale[phy::kHeaderSlots + k * s_per + s], expected)
          << "trigger " << k;
    }
  }
  // Data region stays at 1.0.
  for (std::size_t s = phy::kHeaderSlots + layout.n_trigger * s_per;
       s < frame.slot_scale.size(); ++s) {
    EXPECT_DOUBLE_EQ(frame.slot_scale[s], 1.0);
  }
}

TEST(QueryBuild, DeaggregatesToUniformSubframes) {
  QueryConfig qcfg;
  const QueryLayout layout =
      plan_query(qcfg, 5, mac::Security::kOpen, util::Micros{1.0}, util::Micros{4.0});
  mac::Client client(mac::make_address(1), mac::make_address(2), {});
  const QueryFrame frame = build_query(layout, client, 0.35);
  // Rebuild the PSDU through the client to inspect subframe boundaries.
  mac::Client client2(mac::make_address(1), mac::make_address(2), {});
  const QueryFrame frame2 = build_query(layout, client2, 0.35);
  (void)frame2;
  EXPECT_EQ(layout.subframe_bytes * layout.n_subframes,
            frame.ppdu.sig.length);
}

TEST(QueryBuild, ScaleValidated) {
  QueryConfig qcfg;
  const QueryLayout layout =
      plan_query(qcfg, 5, mac::Security::kOpen, util::Micros{1.0}, util::Micros{4.0});
  mac::Client client(mac::make_address(1), mac::make_address(2), {});
  EXPECT_THROW(build_query(layout, client, 0.0), std::invalid_argument);
  EXPECT_THROW(build_query(layout, client, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace witag::core
