#include "phy/channel_est.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "phy/constellation.hpp"
#include "phy/preamble.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace witag::phy {
namespace {

using util::Cx;

// Applies a per-bin channel to a symbol.
FreqSymbol through(const FreqSymbol& x, const FreqSymbol& h) {
  FreqSymbol y{};
  for (unsigned bin = 0; bin < kFftSize; ++bin) y[bin] = h[bin] * x[bin];
  return y;
}

FreqSymbol random_channel(util::Rng& rng) {
  FreqSymbol h{};
  for (unsigned bin = 0; bin < kFftSize; ++bin) {
    // Non-zero gain everywhere; magnitude spread around 1.
    h[bin] = Cx{1.0, 0.0} + 0.4 * rng.complex_normal(1.0);
  }
  return h;
}

TEST(ChannelEst, PerfectEstimateOnCleanLtf) {
  util::Rng rng(1);
  const FreqSymbol h = random_channel(rng);
  const FreqSymbol rx = through(ltf_symbol(), h);
  const std::vector<FreqSymbol> ltfs{rx, rx};
  const ChannelEstimate est = estimate_channel(ltfs);
  for (const int k : data_subcarriers()) {
    const unsigned bin = bin_index(k);
    EXPECT_NEAR(std::abs(est.h[bin] - h[bin]), 0.0, 1e-12) << "sc " << k;
  }
  EXPECT_GT(est.mean_gain, 0.5);
}

TEST(ChannelEst, AveragingTwoLtfsReducesNoise) {
  util::Rng rng(2);
  const FreqSymbol h = random_channel(rng);
  const double noise_var = 0.01;
  double err_one = 0.0;
  double err_two = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    FreqSymbol rx1 = through(ltf_symbol(), h);
    FreqSymbol rx2 = rx1;
    for (unsigned bin = 0; bin < kFftSize; ++bin) {
      if (ltf_symbol()[bin] == Cx{}) continue;
      rx1[bin] += rng.complex_normal(noise_var);
      rx2[bin] += rng.complex_normal(noise_var);
    }
    const ChannelEstimate one = estimate_channel({&rx1, 1});
    const std::vector<FreqSymbol> both{rx1, rx2};
    const ChannelEstimate two = estimate_channel(both);
    for (const int k : data_subcarriers()) {
      const unsigned bin = bin_index(k);
      err_one += std::norm(one.h[bin] - h[bin]);
      err_two += std::norm(two.h[bin] - h[bin]);
    }
  }
  EXPECT_LT(err_two, err_one);
}

TEST(ChannelEst, NoiseVarianceEstimateIsCalibrated) {
  util::Rng rng(3);
  const FreqSymbol h = random_channel(rng);
  const double noise_var = 0.02;
  double acc = 0.0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    FreqSymbol rx1 = through(ltf_symbol(), h);
    FreqSymbol rx2 = rx1;
    for (unsigned bin = 0; bin < kFftSize; ++bin) {
      if (ltf_symbol()[bin] == Cx{}) continue;
      rx1[bin] += rng.complex_normal(noise_var);
      rx2[bin] += rng.complex_normal(noise_var);
    }
    const std::vector<FreqSymbol> both{rx1, rx2};
    acc += estimate_channel(both).noise_var;
  }
  EXPECT_NEAR(acc / trials, noise_var, noise_var * 0.15);
}

TEST(ChannelEst, EqualizeRecoversConstellation) {
  util::Rng rng(4);
  const FreqSymbol h = random_channel(rng);
  const util::BitVec bits = rng.bits(52 * 2);
  const util::CxVec points = map_bits(bits, Modulation::kQpsk);
  const FreqSymbol tx = assemble_data_symbol(points, 0);
  const FreqSymbol rx = through(tx, h);

  const FreqSymbol ltf_rx = through(ltf_symbol(), h);
  const std::vector<FreqSymbol> ltfs{ltf_rx, ltf_rx};
  const ChannelEstimate est = estimate_channel(ltfs);
  const EqualizedSymbol eq = equalize(rx, est, 0);
  ASSERT_EQ(eq.points.size(), 52u);
  EXPECT_EQ(demap_hard(eq.points, Modulation::kQpsk), bits);
}

TEST(ChannelEst, CpeCorrectionRemovesCommonRotation) {
  util::Rng rng(5);
  const FreqSymbol h = random_channel(rng);
  const util::BitVec bits = rng.bits(52 * 2);
  const util::CxVec points = map_bits(bits, Modulation::kQpsk);
  FreqSymbol rx = through(assemble_data_symbol(points, 0), h);
  // Apply a 40-degree common rotation (residual CFO).
  const Cx rot = std::polar(1.0, 40.0 * util::kPi / 180.0);
  for (auto& v : rx) v *= rot;

  const FreqSymbol ltf_rx = through(ltf_symbol(), h);
  const std::vector<FreqSymbol> ltfs{ltf_rx, ltf_rx};
  const ChannelEstimate est = estimate_channel(ltfs);

  const EqualizedSymbol with = equalize(rx, est, 0, true);
  EXPECT_EQ(demap_hard(with.points, Modulation::kQpsk), bits);

  const EqualizedSymbol without = equalize(rx, est, 0, false);
  // 40 degrees pushes QPSK close to/over decision boundaries; the
  // uncorrected points must be measurably worse.
  double err_with = 0.0;
  double err_without = 0.0;
  for (std::size_t i = 0; i < 52; ++i) {
    err_with += std::norm(with.points[i] - points[i]);
    err_without += std::norm(without.points[i] - points[i]);
  }
  EXPECT_LT(err_with, err_without * 0.2);
}

TEST(ChannelEst, StaleEstimateBreaksEqualization) {
  // The WiTAG lever: estimate on one channel, receive through another.
  util::Rng rng(6);
  const FreqSymbol h_est = random_channel(rng);
  FreqSymbol h_changed = h_est;
  for (unsigned bin = 0; bin < kFftSize; ++bin) {
    h_changed[bin] *= std::polar(1.0, 0.6);  // tag-like perturbation
    h_changed[bin] += 0.2 * rng.complex_normal(1.0);
  }
  const util::BitVec bits = rng.bits(52 * 6);
  const util::CxVec points = map_bits(bits, Modulation::kQam64);
  const FreqSymbol rx = through(assemble_data_symbol(points, 0), h_changed);

  const FreqSymbol ltf_rx = through(ltf_symbol(), h_est);
  const std::vector<FreqSymbol> ltfs{ltf_rx, ltf_rx};
  const ChannelEstimate est = estimate_channel(ltfs);
  const EqualizedSymbol eq = equalize(rx, est, 0, false);
  EXPECT_NE(demap_hard(eq.points, Modulation::kQam64), bits);
}

TEST(ChannelEst, DeadBinGetsHugeNoise) {
  FreqSymbol h{};  // all-zero channel
  const FreqSymbol rx{};
  ChannelEstimate est;
  est.h = h;
  est.noise_var = 1e-9;
  const EqualizedSymbol eq = equalize(rx, est, 0, false);
  for (const double v : eq.noise_vars) {
    EXPECT_GE(v, 1e17);
  }
}

TEST(ChannelEst, RequiresAtLeastOneLtf) {
  EXPECT_THROW(estimate_channel({}), std::invalid_argument);
}

}  // namespace
}  // namespace witag::phy
