#include "phy/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace witag::phy {
namespace {

using util::Cx;
using util::CxVec;

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, InverseRecoversInput) {
  util::Rng rng(GetParam());
  CxVec data(GetParam());
  for (Cx& x : data) x = rng.complex_normal(1.0);
  const CxVec spectrum = fft(data);
  const CxVec back = ifft(spectrum);
  ASSERT_EQ(back.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(back[i].real(), data[i].real(), 1e-10);
    EXPECT_NEAR(back[i].imag(), data[i].imag(), 1e-10);
  }
}

TEST_P(FftSizes, ParsevalEnergyPreserved) {
  util::Rng rng(GetParam() + 1);
  CxVec data(GetParam());
  for (Cx& x : data) x = rng.complex_normal(1.0);
  const CxVec spectrum = fft(data);
  EXPECT_NEAR(util::energy(spectrum), util::energy(data), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 64, 256, 1024));

TEST(Fft, ImpulseGivesFlatSpectrum) {
  CxVec data(64, Cx{});
  data[0] = Cx{1.0, 0.0};
  const CxVec spectrum = fft(data);
  const double expected = 1.0 / std::sqrt(64.0);
  for (const Cx& s : spectrum) {
    EXPECT_NEAR(s.real(), expected, 1e-12);
    EXPECT_NEAR(s.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInItsBin) {
  const std::size_t n = 64;
  const int k = 5;
  CxVec data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * util::kPi * k * static_cast<double>(i) /
                         static_cast<double>(n);
    data[i] = Cx{std::cos(phase), std::sin(phase)};
  }
  const CxVec spectrum = fft(data);
  for (std::size_t bin = 0; bin < n; ++bin) {
    if (bin == static_cast<std::size_t>(k)) {
      EXPECT_NEAR(std::abs(spectrum[bin]), std::sqrt(64.0), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(spectrum[bin]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, DcBinIsScaledSum) {
  CxVec data(8, Cx{2.0, 0.0});
  const CxVec spectrum = fft(data);
  EXPECT_NEAR(spectrum[0].real(), 16.0 / std::sqrt(8.0), 1e-12);
  for (std::size_t bin = 1; bin < 8; ++bin) {
    EXPECT_NEAR(std::abs(spectrum[bin]), 0.0, 1e-12);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  CxVec data(48);
  EXPECT_THROW(fft_inplace(data), std::invalid_argument);
  CxVec empty;
  EXPECT_THROW(fft_inplace(empty), std::invalid_argument);
}

// The cached-plan transform must be *bit-identical* to the reference
// implementation it replaced: the plan tables are built with the same
// incremental twiddle recurrence, so every seeded test and bench output
// in the repo is unchanged by the cache. Exact equality, no tolerance.
class FftPlanParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftPlanParity, PlannedMatchesReferenceBitwise) {
  const std::size_t n = GetParam();
  util::Rng rng(n * 7 + 3);
  CxVec data(n);
  for (Cx& x : data) x = rng.complex_normal(1.0);
  for (const bool inverse : {false, true}) {
    CxVec planned = data;
    CxVec reference = data;
    if (inverse) {
      ifft_inplace(planned);
    } else {
      fft_inplace(planned);
    }
    detail::fft_reference_inplace(reference, inverse);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(planned[i].real(), reference[i].real()) << "bin " << i;
      EXPECT_EQ(planned[i].imag(), reference[i].imag()) << "bin " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SimulatorSizes, FftPlanParity,
                         ::testing::Values(64, 128, 256));

TEST(Fft, PlanCacheReusesPlans) {
  CxVec data(32);
  fft_inplace(data);
  const std::size_t before = detail::fft_plan_count();
  // Same length again: served from the cache, no new plan.
  fft_inplace(data);
  ifft_inplace(data);
  EXPECT_EQ(detail::fft_plan_count(), before);
}

TEST(Fft, LinearityHolds) {
  util::Rng rng(9);
  CxVec a(64), b(64), sum(64);
  for (std::size_t i = 0; i < 64; ++i) {
    a[i] = rng.complex_normal(1.0);
    b[i] = rng.complex_normal(1.0);
    sum[i] = a[i] + b[i];
  }
  const CxVec fa = fft(a);
  const CxVec fb = fft(b);
  const CxVec fsum = fft(sum);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(fsum[i] - fa[i] - fb[i]), 0.0, 1e-10);
  }
}

}  // namespace
}  // namespace witag::phy
