#include "witag/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/bits.hpp"
#include "util/units.hpp"

namespace witag::core {
namespace {

TEST(LinkMetrics, CountsErrorsByDirection) {
  LinkMetrics m;
  const util::BitVec sent{1, 0, 1, 0};
  const std::vector<bool> received{true, true, false, false};
  m.record_round(sent, received, false, util::Micros{1000.0});
  EXPECT_EQ(m.bits(), 4u);
  EXPECT_EQ(m.bit_errors(), 2u);
  EXPECT_EQ(m.missed_corruptions(), 1u);  // sent 0, read 1
  EXPECT_EQ(m.false_corruptions(), 1u);   // sent 1, read 0
  EXPECT_DOUBLE_EQ(m.ber(), 0.5);
}

TEST(LinkMetrics, LostRoundCountsAllBitsAsErrors) {
  LinkMetrics m;
  const util::BitVec sent{1, 1, 0};
  m.record_round(sent, {}, true, util::Micros{500.0});
  EXPECT_EQ(m.bits(), 3u);
  EXPECT_EQ(m.bit_errors(), 3u);
  EXPECT_EQ(m.rounds_lost(), 1u);
}

TEST(LinkMetrics, ThroughputFromAirtime) {
  LinkMetrics m;
  const util::BitVec sent(64, 1);
  const std::vector<bool> received(64, true);
  // 64 bits in 1600 us -> 40 Kbps.
  m.record_round(sent, received, false, util::Micros{1600.0});
  EXPECT_DOUBLE_EQ(m.raw_rate_kbps(), 40.0);
  EXPECT_DOUBLE_EQ(m.goodput_kbps(), 40.0);
}

TEST(LinkMetrics, GoodputExcludesErrors) {
  LinkMetrics m;
  util::BitVec sent(10, 1);
  std::vector<bool> received(10, true);
  received[0] = false;
  m.record_round(sent, received, false, util::Micros{1000.0});
  EXPECT_DOUBLE_EQ(m.goodput_kbps(), 9.0 / 1e-3 / 1e3);
}

TEST(LinkMetrics, EmptyIsWellDefined) {
  LinkMetrics m;
  EXPECT_DOUBLE_EQ(m.ber(), 0.0);
  EXPECT_DOUBLE_EQ(m.goodput_kbps(), 0.0);
  EXPECT_DOUBLE_EQ(m.raw_rate_kbps(), 0.0);
}

TEST(LinkMetrics, ContractChecks) {
  LinkMetrics m;
  const util::BitVec sent{1};
  const std::vector<bool> wrong_size{true, false};
  EXPECT_THROW(m.record_round(sent, wrong_size, false, util::Micros{1.0}),
               std::invalid_argument);
  EXPECT_THROW(m.record_round(sent, {true}, false, util::Micros{-1.0}),
               std::invalid_argument);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  // Header rule line present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(40.0, 1), "40.0");
}

TEST(Table, RowWidthValidated) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, ArityErrorNamesCountsAndHeader) {
  Table t({"tag-to-client [m]", "BER"});
  try {
    t.add_row({"1", "2", "3"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3 cells"), std::string::npos) << what;
    EXPECT_NE(what.find("2-column"), std::string::npos) << what;
    EXPECT_NE(what.find("tag-to-client [m]"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace witag::core
