#include "witag/supervisor.hpp"

#include <gtest/gtest.h>

#include "faults/fault_plan.hpp"

namespace witag::core {
namespace {

SessionConfig quiet_los(double tag_at, std::uint64_t seed) {
  SessionConfig cfg = los_testbed_config(util::Meters{tag_at}, seed);
  cfg.fading.n_scatterers = 0;
  cfg.fading.blocking_rate_hz = util::Hertz{0.0};
  cfg.fading.interference_rate_hz = util::Hertz{0.0};
  return cfg;
}

struct ModeOutcome {
  double goodput_kbps = 0.0;
  std::size_t ok = 0;
};

/// Mirrors one fig_robustness cell: both modes move the same payload
/// sequence through the same faulted testbed.
ModeOutcome run_mode(bool supervised, double intensity, std::uint64_t seed,
                     std::size_t polls) {
  auto cfg = los_testbed_config(util::Meters{3.0}, seed);
  cfg.faults = faults::hostile_plan(intensity);
  Session session(cfg);
  ReaderConfig rcfg;
  rcfg.fec = TagFec::kRepetition3;
  rcfg.max_rounds_per_frame = 16;
  Reader reader(session, rcfg);
  ModeOutcome out;
  if (supervised) {
    LinkSupervisor supervisor(reader, {});
    for (std::size_t p = 0; p < polls; ++p) supervisor.deliver(0);
    out.goodput_kbps = supervisor.stats().goodput_kbps();
    out.ok = supervisor.stats().deliveries_ok;
  } else {
    std::size_t bytes_ok = 0;
    for (std::size_t p = 0; p < polls; ++p) {
      util::Rng rng(util::Rng::derive_seed(0x70AD'0000ull, p));
      const util::ByteVec expected = rng.bytes(8);
      reader.load_tag(0, expected);
      const auto poll = reader.poll_frame(0);
      if (poll.ok && poll.payload == expected) {
        ++out.ok;
        bytes_ok += poll.payload.size();
      }
    }
    if (reader.stats().airtime_us > util::Micros{0.0}) {
      out.goodput_kbps = static_cast<double>(bytes_ok * 8) /
                         (reader.stats().airtime_us.value() / 1e6) / 1e3;
    }
  }
  return out;
}

TEST(Supervisor, ConfigValidated) {
  Session session(quiet_los(1.0, 31));
  Reader reader(session, {});
  SupervisorConfig bad;
  bad.min_payload_bytes = 0;
  EXPECT_THROW(LinkSupervisor(reader, bad), std::invalid_argument);
  SupervisorConfig bad2;
  bad2.payload_bytes = 2;
  bad2.min_payload_bytes = 4;
  EXPECT_THROW(LinkSupervisor(reader, bad2), std::invalid_argument);
  SupervisorConfig bad3;
  bad3.recover_fail_rate = 0.9;  // above escalate_fail_rate
  EXPECT_THROW(LinkSupervisor(reader, bad3), std::invalid_argument);
  SupervisorConfig bad4;
  bad4.backoff_factor = 0.5;
  EXPECT_THROW(LinkSupervisor(reader, bad4), std::invalid_argument);
}

TEST(Supervisor, QuietLinkStaysAtTopOfLadder) {
  Session session(quiet_los(1.0, 32));
  Reader reader(session, {});
  const unsigned entry_mcs = session.current_mcs();
  LinkSupervisor supervisor(reader, {});
  for (int p = 0; p < 4; ++p) {
    const auto result = supervisor.deliver(0);
    ASSERT_TRUE(result.ok) << "delivery " << p;
    EXPECT_EQ(result.retries, 0u);
    EXPECT_EQ(result.payload.size(), 8u);
  }
  const auto& stats = supervisor.stats();
  EXPECT_EQ(stats.deliveries_ok, 4u);
  EXPECT_EQ(stats.deliveries_failed, 0u);
  EXPECT_EQ(stats.payload_bytes_ok, 32u);
  EXPECT_EQ(stats.mcs_fallbacks + stats.fec_escalations + stats.frame_shrinks,
            0u);
  EXPECT_EQ(supervisor.mcs(), entry_mcs);
  EXPECT_EQ(supervisor.fec(), TagFec::kRepetition3);
  EXPECT_EQ(supervisor.payload_bytes(), 8u);
  EXPECT_GT(stats.goodput_kbps(), 0.0);
  EXPECT_EQ(stats.backoff_us.value(), 0.0);
}

TEST(Supervisor, DeliveriesAreDeterministic) {
  const auto run_once = [] {
    Session session(quiet_los(1.0, 33));
    Reader reader(session, {});
    LinkSupervisor supervisor(reader, {});
    util::ByteVec all;
    for (int p = 0; p < 3; ++p) {
      const auto result = supervisor.deliver(0);
      all.insert(all.end(), result.payload.begin(), result.payload.end());
    }
    return all;
  };
  EXPECT_EQ(run_once(), run_once());
}

// The acceptance assertion behind fig_robustness: under the canonical
// hostile preset the supervised link strictly beats the plain reader's
// frame goodput at (at least) two non-zero fault intensities. Seeds are
// the bench's own per-task seeds (seed 4242, runs=1, cells 4..7), so
// these tests pin the exact fig_robustness cells they mirror.
TEST(Supervisor, DominatesGoodputUnderModerateFaults) {
  const auto unsup =
      run_mode(false, 0.5, util::Rng::derive_seed(4242, 4), 16);
  const auto sup = run_mode(true, 0.5, util::Rng::derive_seed(4242, 5), 16);
  EXPECT_GT(sup.goodput_kbps, unsup.goodput_kbps);
  EXPECT_GE(sup.ok, unsup.ok);
}

TEST(Supervisor, DominatesGoodputUnderSevereFaults) {
  const auto unsup =
      run_mode(false, 0.75, util::Rng::derive_seed(4242, 6), 8);
  const auto sup = run_mode(true, 0.75, util::Rng::derive_seed(4242, 7), 8);
  EXPECT_GT(sup.goodput_kbps, unsup.goodput_kbps);
  EXPECT_GE(sup.ok, unsup.ok);
}

TEST(Supervisor, EscalatesFecUnderBurstyInterference) {
  auto cfg = los_testbed_config(util::Meters{3.0}, 55);
  cfg.faults = faults::hostile_plan(1.0, 0x01);  // interference only
  Session session(cfg);
  ReaderConfig rcfg;
  rcfg.max_rounds_per_frame = 12;
  Reader reader(session, rcfg);
  LinkSupervisor supervisor(reader, {});
  for (int p = 0; p < 8; ++p) supervisor.deliver(0);
  const auto& stats = supervisor.stats();
  EXPECT_GE(stats.fec_escalations + stats.frame_shrinks, 1u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_GT(stats.backoff_us.value(), 0.0);
  // The two-sided probe keeps the rate inside WiTAG's usable band: at
  // MCS < 5 the decoder rides through the tag's perturbation, so the
  // ladder must refuse to fall below it no matter how bad the channel.
  EXPECT_EQ(supervisor.mcs(), 5u);
}

TEST(Supervisor, ProbeVerifiedMcsFallbackFromFragileRate) {
  // Start the session at MCS 7, where clean subframes are already shaky:
  // under interference the ladder must step the rate down - and the
  // probe admits the lower rungs because corruption still breaks FCS
  // there.
  auto cfg = los_testbed_config(util::Meters{3.0}, 56);
  cfg.query.mcs_index = 7;
  cfg.faults = faults::hostile_plan(0.5, 0x01);  // interference only
  Session session(cfg);
  ReaderConfig rcfg;
  rcfg.max_rounds_per_frame = 12;
  Reader reader(session, rcfg);
  LinkSupervisor supervisor(reader, {});
  for (int p = 0; p < 8; ++p) supervisor.deliver(0);
  EXPECT_GE(supervisor.stats().mcs_fallbacks, 1u);
  EXPECT_LT(supervisor.mcs(), 7u);
  EXPECT_GE(supervisor.mcs(), 5u);
}

TEST(Supervisor, RecoversLadderWhenWindowHeals) {
  // Frequent probes + mild faults: escalations happen, and once the
  // window stays clean the ladder steps back toward the base rung.
  auto cfg = los_testbed_config(util::Meters{3.0}, 59);
  cfg.faults = faults::hostile_plan(0.5);
  Session session(cfg);
  ReaderConfig rcfg;
  rcfg.max_rounds_per_frame = 12;
  Reader reader(session, rcfg);
  SupervisorConfig scfg;
  scfg.probe_period = 2;
  LinkSupervisor supervisor(reader, scfg);
  for (int p = 0; p < 12; ++p) supervisor.deliver(0);
  const auto& stats = supervisor.stats();
  EXPECT_GE(stats.probes, 1u);
  EXPECT_GE(stats.recoveries, 1u);
}

TEST(Supervisor, GoodputChargesBackoffTime) {
  // An always-missing trigger fails every poll; the retries' backoff
  // idle time must appear in the stats and the goodput must be zero.
  auto cfg = quiet_los(1.0, 58);
  cfg.faults.trigger.miss_rate = 1.0;
  Session session(cfg);
  ReaderConfig rcfg;
  rcfg.max_rounds_per_frame = 4;
  Reader reader(session, rcfg);
  LinkSupervisor supervisor(reader, {});
  const auto result = supervisor.deliver(0);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.retries, 2u);
  const auto& stats = supervisor.stats();
  EXPECT_EQ(stats.deliveries_ok, 0u);
  EXPECT_GT(stats.backoff_us.value(), 0.0);
  EXPECT_EQ(stats.goodput_kbps(), 0.0);
}

// --- Rateless data plane -------------------------------------------------

/// One fig_rateless cell: a supervised link at `fec` across a hostile
/// testbed, optionally with the predictive round scheduler.
ModeOutcome run_fec_mode(TagFec fec, bool predictive, double intensity,
                         std::uint64_t seed, std::size_t polls) {
  auto cfg = los_testbed_config(util::Meters{3.0}, seed);
  cfg.faults = faults::hostile_plan(intensity);
  Session session(cfg);
  ReaderConfig rcfg;
  rcfg.fec = fec;
  rcfg.max_rounds_per_frame = 16;
  Reader reader(session, rcfg);
  SupervisorConfig scfg;
  scfg.predictive = predictive;
  LinkSupervisor supervisor(reader, scfg);
  for (std::size_t p = 0; p < polls; ++p) supervisor.deliver(0);
  ModeOutcome out;
  out.goodput_kbps = supervisor.stats().goodput_kbps();
  out.ok = supervisor.stats().deliveries_ok;
  return out;
}

TEST(RatelessScheduler, PredictorSkipsOnlyInsidePredictedBursts) {
  BurstPredictor bp(0.5, 0.55, 3);
  // No loss observed: never skip.
  EXPECT_FALSE(bp.should_skip());
  bp.observe(false);
  EXPECT_FALSE(bp.should_skip());
  // First loss: persistence estimate still at its 0.5 prior, below the
  // 0.55 threshold — no skip on a single loss.
  bp.observe(true);
  EXPECT_FALSE(bp.should_skip());
  // Second consecutive loss pushes P(lost | prev lost) to 0.75: a burst.
  bp.observe(true);
  EXPECT_GT(bp.burst_persistence(), 0.55);
  EXPECT_TRUE(bp.should_skip());
  EXPECT_TRUE(bp.should_skip());
  EXPECT_TRUE(bp.should_skip());
  // Cap: after max_consecutive_skips the next round is a forced probe.
  EXPECT_FALSE(bp.should_skip());
  EXPECT_EQ(bp.skips(), 3u);
  // A delivered round ends the burst; no skipping until the next one.
  bp.observe(false);
  EXPECT_FALSE(bp.should_skip());
}

TEST(RatelessScheduler, ObserveResetsSkipRun) {
  BurstPredictor bp(0.5, 0.55, 2);
  bp.observe(true);
  bp.observe(true);
  EXPECT_TRUE(bp.should_skip());
  EXPECT_TRUE(bp.should_skip());
  EXPECT_FALSE(bp.should_skip());  // cap hit
  bp.observe(true);                // probe round outcome: still lost
  // Fresh run: the cap counts consecutive skips, not lifetime skips.
  EXPECT_TRUE(bp.should_skip());
  EXPECT_EQ(bp.skips(), 3u);
}

TEST(RatelessScheduler, InstalledOnlyForPredictiveRateless) {
  Session session(quiet_los(1.0, 61));
  ReaderConfig rcfg;
  rcfg.fec = TagFec::kRateless;
  Reader reader(session, rcfg);
  SupervisorConfig scfg;
  scfg.predictive = true;
  LinkSupervisor supervisor(reader, scfg);
  EXPECT_NE(supervisor.predictor(), nullptr);

  Session session2(quiet_los(1.0, 62));
  Reader reader2(session2, {});  // classic FEC
  LinkSupervisor supervisor2(reader2, scfg);
  EXPECT_EQ(supervisor2.predictor(), nullptr);

  Session session3(quiet_los(1.0, 63));
  Reader reader3(session3, rcfg);
  LinkSupervisor supervisor3(reader3, {});  // predictive off
  EXPECT_EQ(supervisor3.predictor(), nullptr);
}

TEST(RatelessSupervisor, OverheadConvergesOnCleanChannel) {
  // A quiet link completes every decode on the systematic prefix
  // (droplets consumed == K), so the learned overhead EWMA must walk
  // from its 1.35 prior down to ~1.0.
  Session session(quiet_los(1.0, 64));
  ReaderConfig rcfg;
  rcfg.fec = TagFec::kRateless;
  Reader reader(session, rcfg);
  SupervisorConfig scfg;
  LinkSupervisor supervisor(reader, scfg);
  EXPECT_EQ(supervisor.overhead_ratio(), scfg.overhead_init);
  for (int p = 0; p < 12; ++p) {
    const auto result = supervisor.deliver(0);
    ASSERT_TRUE(result.ok) << "delivery " << p;
  }
  EXPECT_NEAR(supervisor.overhead_ratio(), 1.0, 0.05);
}

TEST(RatelessSupervisor, OverheadLearnsLossPenalty) {
  // Stationary loss costs droplets: the converged overhead under faults
  // must sit above the clean channel's ~1.0.
  auto cfg = los_testbed_config(util::Meters{3.0}, 65);
  cfg.faults = faults::hostile_plan(0.5);
  Session session(cfg);
  ReaderConfig rcfg;
  rcfg.fec = TagFec::kRateless;
  rcfg.max_rounds_per_frame = 16;
  Reader reader(session, rcfg);
  LinkSupervisor supervisor(reader, {});
  std::size_t ok = 0;
  for (int p = 0; p < 16; ++p) ok += supervisor.deliver(0).ok ? 1 : 0;
  ASSERT_GE(ok, 4u);  // the link does deliver under these faults
  EXPECT_GT(supervisor.overhead_ratio(), 1.0);
}

TEST(RatelessSupervisor, RatelessIsFecLadderFixedPoint) {
  // The ladder never steps kRateless to a repetition rung: overhead
  // adaptation replaces FEC escalation.
  auto cfg = los_testbed_config(util::Meters{3.0}, 66);
  cfg.faults = faults::hostile_plan(0.75);
  Session session(cfg);
  ReaderConfig rcfg;
  rcfg.fec = TagFec::kRateless;
  rcfg.max_rounds_per_frame = 16;
  Reader reader(session, rcfg);
  LinkSupervisor supervisor(reader, {});
  for (int p = 0; p < 10; ++p) supervisor.deliver(0);
  EXPECT_EQ(supervisor.fec(), TagFec::kRateless);
  EXPECT_EQ(supervisor.stats().fec_escalations, 0u);
}

// The acceptance assertion behind fig_rateless: the LT data plane beats
// repetition-5 goodput on the same hostile presets fig_robustness pins.
TEST(RatelessSupervisor, BeatsRepetitionUnderModerateFaults) {
  const auto rep5 = run_fec_mode(TagFec::kRepetition5, false, 0.5,
                                 util::Rng::derive_seed(4242, 8), 12);
  const auto lt = run_fec_mode(TagFec::kRateless, false, 0.5,
                               util::Rng::derive_seed(4242, 9), 12);
  EXPECT_GT(lt.goodput_kbps, rep5.goodput_kbps);
  EXPECT_GE(lt.ok, rep5.ok);
}

TEST(RatelessSupervisor, BeatsRepetitionUnderSevereFaults) {
  const auto rep5 = run_fec_mode(TagFec::kRepetition5, false, 0.75,
                                 util::Rng::derive_seed(4242, 10), 8);
  const auto lt = run_fec_mode(TagFec::kRateless, false, 0.75,
                               util::Rng::derive_seed(4242, 11), 8);
  EXPECT_GT(lt.goodput_kbps, rep5.goodput_kbps);
  EXPECT_GE(lt.ok, rep5.ok);
}

TEST(RatelessSupervisor, PredictiveSchedulingSkipsAndStillDelivers) {
  const auto plain = run_fec_mode(TagFec::kRateless, false, 0.75,
                                  util::Rng::derive_seed(4242, 12), 8);
  auto cfg = los_testbed_config(util::Meters{3.0},
                                util::Rng::derive_seed(4242, 12));
  cfg.faults = faults::hostile_plan(0.75);
  Session session(cfg);
  ReaderConfig rcfg;
  rcfg.fec = TagFec::kRateless;
  rcfg.max_rounds_per_frame = 16;
  Reader reader(session, rcfg);
  SupervisorConfig scfg;
  scfg.predictive = true;
  LinkSupervisor supervisor(reader, scfg);
  std::size_t ok = 0;
  for (int p = 0; p < 8; ++p) ok += supervisor.deliver(0).ok ? 1 : 0;
  // Burst persistence under the severe preset is high enough that the
  // predictor actually sits rounds out — and the link still delivers.
  EXPECT_GE(supervisor.stats().rounds_skipped, 1u);
  EXPECT_GE(ok, plain.ok > 2 ? plain.ok - 2 : 1);
}

}  // namespace
}  // namespace witag::core
