#include "mac/mpdu.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace witag::mac {
namespace {

Mpdu sample_mpdu(std::size_t body_bytes) {
  Mpdu m;
  m.header.addr1 = make_address(1);
  m.header.addr2 = make_address(2);
  m.header.addr3 = make_address(1);
  m.header.sequence = 77;
  m.body = util::Rng(42).bytes(body_bytes);
  return m;
}

TEST(Mpdu, SerializedLayout) {
  const Mpdu m = sample_mpdu(10);
  const auto bytes = serialize_mpdu(m);
  EXPECT_EQ(bytes.size(), kQosHeaderBytes + 10 + kFcsBytes);
}

TEST(Mpdu, RoundTrip) {
  const Mpdu m = sample_mpdu(100);
  const auto parsed = parse_mpdu(serialize_mpdu(m));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header, m.header);
  EXPECT_EQ(parsed->body, m.body);
}

TEST(Mpdu, EmptyBodyRoundTrip) {
  const Mpdu m = sample_mpdu(0);
  const auto parsed = parse_mpdu(serialize_mpdu(m));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->body.empty());
}

TEST(Mpdu, FcsDetectsEveryByteCorruption) {
  const auto bytes = serialize_mpdu(sample_mpdu(30));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    util::ByteVec corrupted = bytes;
    corrupted[i] ^= 0x40;
    EXPECT_FALSE(fcs_ok(corrupted)) << "byte " << i;
    EXPECT_FALSE(parse_mpdu(corrupted).has_value()) << "byte " << i;
  }
}

TEST(Mpdu, FcsOkOnClean) {
  EXPECT_TRUE(fcs_ok(serialize_mpdu(sample_mpdu(64))));
}

TEST(Mpdu, TooShortIsRejected) {
  const util::ByteVec tiny(kQosHeaderBytes + kFcsBytes - 1, 0);
  EXPECT_FALSE(fcs_ok(tiny));
  EXPECT_FALSE(parse_mpdu(tiny).has_value());
}

TEST(Mpdu, TruncationIsDetected) {
  auto bytes = serialize_mpdu(sample_mpdu(50));
  bytes.pop_back();
  EXPECT_FALSE(parse_mpdu(bytes).has_value());
}

}  // namespace
}  // namespace witag::mac
