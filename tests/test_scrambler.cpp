#include "phy/scrambler.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace witag::phy {
namespace {

class ScramblerSeeds : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(ScramblerSeeds, IsAnInvolution) {
  util::Rng rng(GetParam());
  const util::BitVec bits = rng.bits(500);
  const util::BitVec once = scramble(bits, GetParam());
  EXPECT_EQ(scramble(once, GetParam()), bits);
}

TEST_P(ScramblerSeeds, ChangesTheStream) {
  const util::BitVec zeros(200, 0);
  const util::BitVec scrambled = scramble(zeros, GetParam());
  std::size_t ones = 0;
  for (const auto b : scrambled) ones += b;
  // The LFSR output is balanced-ish; an all-zero output would mean a
  // broken register.
  EXPECT_GT(ones, 50u);
  EXPECT_LT(ones, 150u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScramblerSeeds,
                         ::testing::Values(1, 2, 0x5D, 0x7F, 93));

TEST(Scrambler, RejectsBadSeeds) {
  const util::BitVec bits(8, 0);
  EXPECT_THROW(scramble(bits, 0), std::invalid_argument);
  EXPECT_THROW(scramble(bits, 128), std::invalid_argument);
}

TEST(Scrambler, Period127) {
  // Scrambling zeros exposes the raw LFSR sequence, which has period 127.
  const util::BitVec zeros(254, 0);
  const util::BitVec seq = scramble(zeros, 0x35);
  for (int i = 0; i < 127; ++i) {
    EXPECT_EQ(seq[static_cast<std::size_t>(i)],
              seq[static_cast<std::size_t>(i + 127)]);
  }
}

TEST(Scrambler, DescrambleRecoverMatchesKnownSeed) {
  util::Rng rng(5);
  for (std::uint8_t seed : {1, 37, 93, 127}) {
    // First 7 plain bits zero (the SERVICE convention), then payload.
    util::BitVec plain(7, 0);
    const util::BitVec payload = rng.bits(300);
    plain.insert(plain.end(), payload.begin(), payload.end());
    const util::BitVec scrambled = scramble(plain, seed);
    const util::BitVec recovered = descramble_recover(scrambled);
    // Bits 7.. must match; the first 7 are zero by construction.
    for (std::size_t i = 0; i < recovered.size(); ++i) {
      EXPECT_EQ(recovered[i], plain[i]) << "at " << i << " seed " << int(seed);
    }
  }
}

TEST(Scrambler, DescrambleRecoverNeedsSevenBits) {
  const util::BitVec bits(6, 0);
  EXPECT_THROW(descramble_recover(bits), std::invalid_argument);
}

TEST(Scrambler, PilotPolarityMatchesStandardPrefix) {
  // 802.11-2016 17.3.5.10: p0..p15 =
  // 1,1,1,1,-1,-1,-1,1,-1,-1,-1,-1,1,1,-1,1 ...
  const auto& p = pilot_polarity_sequence();
  const int expected[16] = {1, 1, 1, 1, -1, -1, -1, 1,
                            -1, -1, -1, -1, 1, 1, -1, 1};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(p[static_cast<std::size_t>(i)], expected[i]) << "p" << i;
  }
}

TEST(Scrambler, PilotPolarityAllPlusMinusOne) {
  for (const int v : pilot_polarity_sequence()) {
    EXPECT_TRUE(v == 1 || v == -1);
  }
}

}  // namespace
}  // namespace witag::phy
