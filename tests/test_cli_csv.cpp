#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"

namespace witag::util {
namespace {

Args parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Args, ParsesTypedOptions) {
  const Args args = parse({"--rounds", "40", "--seed", "1234",
                           "--strength", "7.5", "--out", "data.csv"});
  EXPECT_EQ(args.get_int("rounds", 0), 40);
  EXPECT_EQ(args.get_u64("seed", 0), 1234u);
  EXPECT_DOUBLE_EQ(args.get_double("strength", 0.0), 7.5);
  EXPECT_EQ(args.get_string("out", ""), "data.csv");
}

TEST(Args, DefaultsWhenAbsent) {
  const Args args = parse({});
  EXPECT_EQ(args.get_int("rounds", 17), 17);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_EQ(args.get_string("out", "fallback"), "fallback");
  EXPECT_FALSE(args.has("csv"));
}

TEST(Args, BareFlags) {
  const Args args = parse({"--verbose", "--n", "3"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get_int("n", 0), 3);
}

TEST(Args, RejectsPositional) {
  EXPECT_THROW(parse({"positional"}), std::invalid_argument);
}

TEST(Args, TracksUnusedOptions) {
  const Args args = parse({"--used", "1", "--typo", "2"});
  args.get_int("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_TRUE(unused.contains("typo"));
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = "/tmp/witag_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"a", "b"});
    csv.row({"1", "plain"});
    csv.row({"2", "with,comma"});
    csv.row({"3", "with\"quote"});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("a,b\n"), std::string::npos);
  EXPECT_NE(content.find("2,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(content.find("3,\"with\"\"quote\"\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, EnforcesArity) {
  const std::string path = "/tmp/witag_csv_test2.csv";
  CsvWriter csv(path);
  EXPECT_THROW(csv.row({"too", "early"}), std::logic_error);
  csv.header({"x", "y"});
  EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Csv, ArityErrorNamesCountsAndHeader) {
  const std::string path = "/tmp/witag_csv_test3.csv";
  CsvWriter csv(path);
  csv.header({"clock_hz", "guard_us", "ber"});
  try {
    csv.row({"1e6"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 values"), std::string::npos) << what;
    EXPECT_NE(what.find("3-column"), std::string::npos) << what;
    EXPECT_NE(what.find("clock_hz"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

namespace csv_roundtrip {

/// Minimal RFC 4180 reader for the round-trip test: splits one CSV
/// document into rows of unescaped fields.
std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"' && i + 1 < text.size() && text[i + 1] == '"') {
        field += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      row.push_back(std::move(field));
      field.clear();
      rows.push_back(std::move(row));
      row.clear();
    } else {
      field += c;
    }
  }
  return rows;
}

}  // namespace csv_roundtrip

TEST(Csv, EscapingRoundTrip) {
  const std::string path = "/tmp/witag_csv_roundtrip.csv";
  const std::vector<std::string> tricky{
      "plain", "comma,inside", "quote\"inside", "both,\"of,them\"",
      "newline\ninside"};
  {
    CsvWriter csv(path);
    csv.header({"a", "b", "c", "d", "e"});
    csv.row(tricky);
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto rows = csv_roundtrip::parse_csv(ss.str());
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[1].size(), tricky.size());
  for (std::size_t i = 0; i < tricky.size(); ++i) {
    EXPECT_EQ(rows[1][i], tricky[i]) << "column " << i;
  }
  std::remove(path.c_str());
}

TEST(Args, WarnUnusedWritesOneLinePerTypo) {
  const Args args = parse({"--used", "1", "--typo", "2", "--oops", "3"});
  args.get_int("used", 0);
  std::ostringstream os;
  EXPECT_EQ(args.warn_unused(os), 2u);
  const std::string out = os.str();
  EXPECT_NE(out.find("--typo"), std::string::npos);
  EXPECT_NE(out.find("--oops"), std::string::npos);
}

TEST(Csv, RejectsUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/file.csv"), std::runtime_error);
}

TEST(Csv, NumFormatting) {
  EXPECT_EQ(CsvWriter::num(0.5), "0.5");
  EXPECT_EQ(CsvWriter::num(1e-3), "0.001");
}

}  // namespace
}  // namespace witag::util
