#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace witag::util {
namespace {

TEST(Running, MeanVarianceMinMax) {
  Running r;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) r.add(x);
  EXPECT_EQ(r.count(), 8u);
  EXPECT_DOUBLE_EQ(r.mean(), 5.0);
  EXPECT_NEAR(r.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(r.min(), 2.0);
  EXPECT_DOUBLE_EQ(r.max(), 9.0);
}

TEST(Running, SingleSampleHasZeroVariance) {
  Running r;
  r.add(3.0);
  EXPECT_DOUBLE_EQ(r.variance(), 0.0);
  EXPECT_DOUBLE_EQ(r.stddev(), 0.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> data{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> data{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.25), 2.5);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(Ecdf, StepFunction) {
  Ecdf e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.at(10.0), 1.0);
}

TEST(Ecdf, Quantiles) {
  Ecdf e({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0});
  EXPECT_DOUBLE_EQ(e.quantile(0.9), 9.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.05), 1.0);
}

TEST(Ecdf, RejectsEmpty) {
  EXPECT_THROW(Ecdf({}), std::invalid_argument);
}

TEST(Wilson, CoversTrueProportion) {
  // 30 successes of 1000: interval should include 0.03.
  const Interval iv = wilson_interval(30, 1000);
  EXPECT_LT(iv.lo, 0.03);
  EXPECT_GT(iv.hi, 0.03);
  EXPECT_GT(iv.lo, 0.0);
  EXPECT_LT(iv.hi, 1.0);
}

TEST(Wilson, DegenerateCases) {
  const Interval zero = wilson_interval(0, 100);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const Interval all = wilson_interval(100, 100);
  EXPECT_LT(all.lo, 1.0);
  const Interval none = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_DOUBLE_EQ(none.hi, 1.0);
}

TEST(Wilson, RejectsImpossibleCounts) {
  EXPECT_THROW(wilson_interval(5, 4), std::invalid_argument);
}

TEST(Running, NoSamplesIsZero) {
  const Running r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_DOUBLE_EQ(r.mean(), 0.0);
  EXPECT_DOUBLE_EQ(r.variance(), 0.0);
  EXPECT_DOUBLE_EQ(r.stddev(), 0.0);
}

TEST(Percentile, EdgeQuantilesAndSingleSample) {
  // q = 0 and q = 1 hit the extremes exactly, no interpolation residue.
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 1.0), 5.0);
  // A single sample answers every quantile.
  EXPECT_DOUBLE_EQ(percentile({2.5}, 0.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile({2.5}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile({2.5}, 1.0), 2.5);
}

TEST(Percentile, DuplicateValues) {
  EXPECT_DOUBLE_EQ(percentile({2.0, 2.0, 2.0, 2.0}, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 2.0, 3.0}, 0.5), 2.0);
}

TEST(Ecdf, QuantileEdgeCases) {
  const Ecdf single({7.0});
  EXPECT_DOUBLE_EQ(single.quantile(1.0), 7.0);
  EXPECT_DOUBLE_EQ(single.quantile(1e-9), 7.0);

  const Ecdf dup({1.0, 2.0, 2.0, 2.0, 9.0});
  EXPECT_DOUBLE_EQ(dup.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(dup.quantile(1.0), 9.0);

  // q = 0 is outside the (0, 1] contract.
  EXPECT_THROW(dup.quantile(0.0), std::invalid_argument);
  EXPECT_THROW(dup.quantile(1.5), std::invalid_argument);
}

TEST(Wilson, ShrinksWithSamples) {
  const Interval small = wilson_interval(5, 50);
  const Interval big = wilson_interval(500, 5000);
  EXPECT_LT(big.hi - big.lo, small.hi - small.lo);
}

}  // namespace
}  // namespace witag::util
