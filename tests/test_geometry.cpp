#include "channel/geometry.hpp"

#include <gtest/gtest.h>

namespace witag::channel {
namespace {

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Geometry, SegmentsCross) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 1}, {2, 2}, {3, 3}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
}

TEST(Geometry, SharedEndpointCounts) {
  EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(Geometry, CollinearOverlapCounts) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
}

TEST(FloorPlan, AccumulatesWallLoss) {
  FloorPlan plan;
  plan.add_wall({{1, -1}, {1, 1}, 5.0});
  plan.add_wall({{2, -1}, {2, 1}, 7.0});
  EXPECT_DOUBLE_EQ(plan.penetration_loss_db({0, 0}, {3, 0}), 12.0);
  EXPECT_DOUBLE_EQ(plan.penetration_loss_db({0, 0}, {1.5, 0}), 5.0);
  EXPECT_DOUBLE_EQ(plan.penetration_loss_db({0, 0}, {0.5, 0}), 0.0);
}

TEST(FloorPlan, LineOfSight) {
  FloorPlan plan;
  plan.add_wall({{1, -1}, {1, 1}, 5.0});
  EXPECT_FALSE(plan.line_of_sight({0, 0}, {2, 0}));
  EXPECT_TRUE(plan.line_of_sight({0, 0}, {0.5, 0}));
  EXPECT_TRUE(plan.line_of_sight({0, 2}, {2, 2}));
}

TEST(Figure4, ApClientDistanceIsEightMeters) {
  const TestbedLayout layout = figure4_testbed();
  EXPECT_NEAR(distance(layout.ap, layout.client_los), 8.0, 1e-9);
}

TEST(Figure4, LosPathIsClear) {
  const TestbedLayout layout = figure4_testbed();
  EXPECT_TRUE(layout.plan.line_of_sight(layout.ap, layout.client_los));
}

TEST(Figure4, TagPositionsAlongLosAreClear) {
  const TestbedLayout layout = figure4_testbed();
  for (double d = 1.0; d <= 7.0; d += 1.0) {
    const Point2 tag{layout.client_los.x + d, layout.client_los.y};
    EXPECT_TRUE(layout.plan.line_of_sight(layout.ap, tag)) << d;
    EXPECT_TRUE(layout.plan.line_of_sight(layout.client_los, tag)) << d;
  }
}

TEST(Figure4, NlosDistancesMatchPaper) {
  const TestbedLayout layout = figure4_testbed();
  EXPECT_NEAR(distance(layout.ap, layout.location_a), 7.0, 0.3);
  EXPECT_NEAR(distance(layout.ap, layout.location_b), 17.0, 0.5);
}

TEST(Figure4, NlosLocationsAreObstructed) {
  const TestbedLayout layout = figure4_testbed();
  EXPECT_FALSE(layout.plan.line_of_sight(layout.ap, layout.location_a));
  EXPECT_FALSE(layout.plan.line_of_sight(layout.ap, layout.location_b));
  // B sits behind more walls than A.
  EXPECT_GT(layout.plan.penetration_loss_db(layout.ap, layout.location_b),
            layout.plan.penetration_loss_db(layout.ap, layout.location_a));
}

}  // namespace
}  // namespace witag::channel
