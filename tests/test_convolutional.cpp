#include "phy/convolutional.hpp"

#include <gtest/gtest.h>

#include "phy/viterbi.hpp"
#include "util/rng.hpp"

namespace witag::phy {
namespace {

// Appends the 6 zero tail bits that terminate the trellis.
util::BitVec with_tail(util::BitVec bits) {
  bits.insert(bits.end(), 6, 0);
  return bits;
}

std::vector<double> to_llrs(const util::BitVec& coded) {
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? -4.0 : 4.0;
  }
  return llrs;
}

TEST(Convolutional, ImpulseResponseMatchesGenerators) {
  // A single 1 followed by zeros emits the generator taps over time:
  // output A bits = taps of 133 (octal) MSB-first, B = 171 (octal).
  util::BitVec impulse{1, 0, 0, 0, 0, 0, 0};
  const util::BitVec coded = convolutional_encode(impulse);
  ASSERT_EQ(coded.size(), 14u);
  const int a_taps[7] = {1, 0, 1, 1, 0, 1, 1};  // 133 octal
  const int b_taps[7] = {1, 1, 1, 1, 0, 0, 1};  // 171 octal
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(coded[static_cast<std::size_t>(2 * i)], a_taps[i]) << i;
    EXPECT_EQ(coded[static_cast<std::size_t>(2 * i + 1)], b_taps[i]) << i;
  }
}

TEST(Convolutional, OutputIsTwiceInput) {
  util::Rng rng(1);
  const util::BitVec bits = rng.bits(123);
  EXPECT_EQ(convolutional_encode(bits).size(), 246u);
}

TEST(Convolutional, LinearOverXor) {
  util::Rng rng(2);
  const util::BitVec a = rng.bits(64);
  const util::BitVec b = rng.bits(64);
  util::BitVec x(64);
  for (int i = 0; i < 64; ++i) x[i] = a[i] ^ b[i];
  const auto ca = convolutional_encode(a);
  const auto cb = convolutional_encode(b);
  const auto cx = convolutional_encode(x);
  for (std::size_t i = 0; i < cx.size(); ++i) {
    EXPECT_EQ(cx[i], ca[i] ^ cb[i]);
  }
}

class PunctureRates : public ::testing::TestWithParam<CodeRate> {};

TEST_P(PunctureRates, LengthMatchesRate) {
  const auto frac = rate_fraction(GetParam());
  // Pick a mother length that is a multiple of the pattern period.
  const std::size_t mother = 2 * frac.num * 30;
  util::Rng rng(3);
  const util::BitVec coded = rng.bits(mother);
  const util::BitVec punct = puncture(coded, GetParam());
  // mother bits carry mother/2 info bits; punctured length =
  // info * den / num.
  EXPECT_EQ(punct.size(), (mother / 2) * frac.den / frac.num);
  EXPECT_EQ(punctured_length(mother, GetParam()), punct.size());
}

TEST_P(PunctureRates, DepunctureRestoresPositions) {
  const auto frac = rate_fraction(GetParam());
  const std::size_t mother = 2 * frac.num * 20;
  util::Rng rng(4);
  const util::BitVec coded = rng.bits(mother);
  const util::BitVec punct = puncture(coded, GetParam());
  std::vector<double> llrs(punct.size());
  for (std::size_t i = 0; i < punct.size(); ++i) {
    llrs[i] = punct[i] ? -1.0 : 1.0;
  }
  const auto restored = depuncture(llrs, GetParam(), mother);
  ASSERT_EQ(restored.size(), mother);
  std::size_t erasures = 0;
  std::size_t src = 0;
  for (std::size_t i = 0; i < mother; ++i) {
    if (restored[i] == 0.0) {
      ++erasures;
    } else {
      EXPECT_EQ(restored[i] < 0.0, punct[src] == 1);
      ++src;
    }
  }
  EXPECT_EQ(erasures, mother - punct.size());
}

TEST_P(PunctureRates, EndToEndWithViterbi) {
  util::Rng rng(5);
  const auto frac = rate_fraction(GetParam());
  // Whole number of puncture periods after the tail.
  const std::size_t n_info = 2 * frac.num * 25 / 2 - 6;
  const util::BitVec info = rng.bits(n_info);
  const util::BitVec tailed = with_tail(info);
  const util::BitVec mother = convolutional_encode(tailed);
  const util::BitVec punct = puncture(mother, GetParam());
  std::vector<double> llrs(punct.size());
  for (std::size_t i = 0; i < punct.size(); ++i) {
    llrs[i] = punct[i] ? -4.0 : 4.0;
  }
  const auto restored = depuncture(llrs, GetParam(), mother.size());
  const util::BitVec decoded = viterbi_decode(restored);
  ASSERT_EQ(decoded.size(), tailed.size());
  for (std::size_t i = 0; i < n_info; ++i) {
    EXPECT_EQ(decoded[i], info[i]) << "bit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRates, PunctureRates,
                         ::testing::Values(CodeRate::kHalf,
                                           CodeRate::kTwoThirds,
                                           CodeRate::kThreeQuarters,
                                           CodeRate::kFiveSixths));

TEST(Viterbi, DecodesCleanStream) {
  util::Rng rng(6);
  const util::BitVec info = rng.bits(400);
  const util::BitVec tailed = with_tail(info);
  const util::BitVec coded = convolutional_encode(tailed);
  const util::BitVec decoded = viterbi_decode(to_llrs(coded));
  EXPECT_EQ(decoded, tailed);
}

TEST(Viterbi, CorrectsScatteredErrors) {
  util::Rng rng(7);
  const util::BitVec info = rng.bits(300);
  const util::BitVec tailed = with_tail(info);
  util::BitVec coded = convolutional_encode(tailed);
  // Flip isolated bits, well separated (free distance 10 at rate 1/2).
  for (std::size_t pos = 10; pos + 60 < coded.size(); pos += 60) {
    coded[pos] ^= 1;
  }
  const util::BitVec decoded = viterbi_decode(to_llrs(coded));
  EXPECT_EQ(decoded, tailed);
}

TEST(Viterbi, SoftErasuresAreHarmless) {
  util::Rng rng(8);
  const util::BitVec info = rng.bits(200);
  const util::BitVec tailed = with_tail(info);
  const util::BitVec coded = convolutional_encode(tailed);
  auto llrs = to_llrs(coded);
  // Zero out scattered positions (erasures).
  for (std::size_t pos = 5; pos < llrs.size(); pos += 40) llrs[pos] = 0.0;
  EXPECT_EQ(viterbi_decode(llrs), tailed);
}

TEST(Viterbi, FailsGracefullyOnGarbage) {
  util::Rng rng(9);
  std::vector<double> llrs(512);
  for (auto& l : llrs) l = rng.normal();
  const util::BitVec decoded = viterbi_decode(llrs);
  EXPECT_EQ(decoded.size(), 256u);  // still returns the right shape
}

TEST(Viterbi, RejectsOddLlrCount) {
  const std::vector<double> llrs(3, 1.0);
  EXPECT_THROW(viterbi_decode(llrs), std::invalid_argument);
  EXPECT_THROW(viterbi_decode({}), std::invalid_argument);
}

TEST(Viterbi, RandomPayloadSweep) {
  util::Rng rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 16 + rng.uniform_int(400);
    const util::BitVec info = rng.bits(n);
    const util::BitVec tailed = with_tail(info);
    const util::BitVec coded = convolutional_encode(tailed);
    EXPECT_EQ(viterbi_decode(to_llrs(coded)), tailed) << "trial " << trial;
  }
}

}  // namespace
}  // namespace witag::phy
