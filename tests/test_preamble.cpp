#include "phy/preamble.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/complexvec.hpp"

namespace witag::phy {
namespace {

using util::Cx;

TEST(Preamble, LtfCoversAllUsedBins) {
  const FreqSymbol& ltf = ltf_symbol();
  for (const int k : data_subcarriers()) {
    EXPECT_NE(ltf[bin_index(k)], Cx{}) << "data sc " << k;
  }
  for (const int k : pilot_subcarriers()) {
    EXPECT_NE(ltf[bin_index(k)], Cx{}) << "pilot sc " << k;
  }
}

TEST(Preamble, LtfValuesArePlusMinusOne) {
  const FreqSymbol& ltf = ltf_symbol();
  unsigned used = 0;
  for (unsigned bin = 0; bin < kFftSize; ++bin) {
    if (ltf[bin] == Cx{}) continue;
    ++used;
    EXPECT_DOUBLE_EQ(ltf[bin].imag(), 0.0);
    EXPECT_DOUBLE_EQ(std::abs(ltf[bin].real()), 1.0);
  }
  EXPECT_EQ(used, 56u);
}

TEST(Preamble, LtfMatchesStandardPrefix) {
  // L-LTF at subcarriers 1..8 (802.11-2016 Table 17-9):
  // 1, -1, -1, 1, 1, -1, 1, -1.
  const FreqSymbol& ltf = ltf_symbol();
  const int expected[8] = {1, -1, -1, 1, 1, -1, 1, -1};
  for (int k = 1; k <= 8; ++k) {
    EXPECT_DOUBLE_EQ(ltf[bin_index(k)].real(),
                     static_cast<double>(expected[k - 1]))
        << "sc " << k;
  }
}

TEST(Preamble, LtfDcIsZero) {
  EXPECT_EQ(ltf_symbol()[0], Cx{});
}

TEST(Preamble, StfHasTwelveTones) {
  const FreqSymbol& stf = stf_symbol();
  unsigned tones = 0;
  for (unsigned bin = 0; bin < kFftSize; ++bin) {
    if (stf[bin] != Cx{}) ++tones;
  }
  EXPECT_EQ(tones, 12u);
}

TEST(Preamble, StfTonesOnMultiplesOfFour) {
  const FreqSymbol& stf = stf_symbol();
  for (int k = -28; k <= 28; ++k) {
    if (k == 0) continue;
    if (stf[bin_index(k)] != Cx{}) {
      EXPECT_EQ(k % 4, 0) << "tone at sc " << k;
    }
  }
}

TEST(Preamble, StfPowerMatchesDataSymbol) {
  // sqrt(13/6)*(1+j) scaling makes the 12-tone STF carry the same total
  // power as a 52-tone unit-power data symbol: 12 * 2 * 13/6 = 52.
  const FreqSymbol& stf = stf_symbol();
  double power = 0.0;
  for (unsigned bin = 0; bin < kFftSize; ++bin) power += std::norm(stf[bin]);
  EXPECT_NEAR(power, 52.0, 1e-9);
}

TEST(Preamble, StfPeriodicInTime) {
  // Tones on multiples of 4 make the 64-sample IFFT 16-sample periodic —
  // the property STF correlators rely on.
  const util::CxVec samples = to_time(stf_symbol());
  for (unsigned i = kCpLen; i + 16 < samples.size(); ++i) {
    EXPECT_NEAR(std::abs(samples[i] - samples[i + 16]), 0.0, 1e-9) << i;
  }
}

}  // namespace
}  // namespace witag::phy
