#include "util/crc.hpp"

#include <gtest/gtest.h>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace witag::util {
namespace {

ByteVec ascii(const char* s) {
  ByteVec v;
  while (*s) v.push_back(static_cast<std::uint8_t>(*s++));
  return v;
}

TEST(Crc32, KnownCheckValue) {
  // The standard CRC-32 check string.
  EXPECT_EQ(crc32(ascii("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Rng rng(1);
  const ByteVec data = rng.bytes(1000);
  const std::span<const std::uint8_t> s(data);
  std::uint32_t state = crc32_init();
  state = crc32_update(state, s.subspan(0, 123));
  state = crc32_update(state, s.subspan(123, 456));
  state = crc32_update(state, s.subspan(579));
  EXPECT_EQ(crc32_final(state), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlips) {
  Rng rng(2);
  ByteVec data = rng.bytes(64);
  const std::uint32_t orig = crc32(data);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t byte = rng.uniform_int(data.size());
    const unsigned bit = static_cast<unsigned>(rng.uniform_int(8));
    data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    EXPECT_NE(crc32(data), orig);
    data[byte] ^= static_cast<std::uint8_t>(1u << bit);  // restore
  }
}

TEST(Crc32, DetectsByteSwaps) {
  ByteVec a = ascii("abcd");
  ByteVec b = ascii("abdc");
  EXPECT_NE(crc32(a), crc32(b));
}

TEST(Crc8, StableAndOrderSensitive) {
  const ByteVec a = ascii("12");
  const ByteVec b = ascii("21");
  EXPECT_EQ(crc8(a), crc8(a));
  EXPECT_NE(crc8(a), crc8(b));
}

TEST(Crc8, DetectsSingleBitFlips) {
  Rng rng(3);
  ByteVec data = rng.bytes(2);  // delimiter-sized input
  const std::uint8_t orig = crc8(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc8(data), orig);
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

TEST(Crc8, EmptyInputIsDefined) {
  // init ^ xorout with no data: must be stable.
  EXPECT_EQ(crc8({}), crc8({}));
}

}  // namespace
}  // namespace witag::util
