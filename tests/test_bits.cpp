#include "util/bits.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace witag::util {
namespace {

TEST(Bits, BytesToBitsLsbFirst) {
  const ByteVec bytes{0x01, 0x80};
  const BitVec bits = bytes_to_bits(bytes);
  ASSERT_EQ(bits.size(), 16u);
  EXPECT_EQ(bits[0], 1);  // LSB of 0x01 first
  for (int i = 1; i < 8; ++i) EXPECT_EQ(bits[i], 0);
  for (int i = 8; i < 15; ++i) EXPECT_EQ(bits[i], 0);
  EXPECT_EQ(bits[15], 1);  // MSB of 0x80 last
}

TEST(Bits, RoundTrip) {
  Rng rng(1);
  const ByteVec bytes = rng.bytes(257);
  EXPECT_EQ(bits_to_bytes(bytes_to_bits(bytes)), bytes);
}

TEST(Bits, BitsToBytesPadsHighBits) {
  const BitVec bits{1, 1, 1};  // 3 bits -> one byte 0b00000111
  const ByteVec bytes = bits_to_bytes(bits);
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x07);
}

TEST(Bits, HammingDistanceBasics) {
  const BitVec a{0, 1, 0, 1};
  const BitVec b{0, 1, 1, 1};
  EXPECT_EQ(hamming_distance(a, b), 1u);
  EXPECT_EQ(hamming_distance(a, a), 0u);
}

TEST(Bits, HammingDistanceLengthMismatchCountsMissing) {
  const BitVec a{0, 1};
  const BitVec b{0, 1, 1, 1};
  EXPECT_EQ(hamming_distance(a, b), 2u);
}

TEST(BitWriter, WritesLsbFirst) {
  BitWriter w;
  w.write(0b1011, 4);
  const BitVec& bits = w.bits();
  ASSERT_EQ(bits.size(), 4u);
  EXPECT_EQ(bits[0], 1);
  EXPECT_EQ(bits[1], 1);
  EXPECT_EQ(bits[2], 0);
  EXPECT_EQ(bits[3], 1);
}

TEST(BitWriter, RejectsOversizedCount) {
  BitWriter w;
  EXPECT_THROW(w.write(0, 65), std::invalid_argument);
}

TEST(BitReaderWriter, RoundTripValues) {
  Rng rng(2);
  BitWriter w;
  std::vector<std::pair<std::uint64_t, unsigned>> values;
  for (int i = 0; i < 100; ++i) {
    const unsigned count = 1 + static_cast<unsigned>(rng.uniform_int(64));
    const std::uint64_t v =
        count == 64 ? rng.next_u64() : rng.next_u64() & ((1ull << count) - 1);
    values.emplace_back(v, count);
    w.write(v, count);
  }
  BitReader r(w.bits());
  for (const auto& [v, count] : values) {
    EXPECT_EQ(r.read(count), v);
  }
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitReader, ThrowsWhenExhausted) {
  const BitVec bits{1, 0};
  BitReader r(bits);
  r.read(2);
  EXPECT_THROW(r.read_bit(), std::invalid_argument);
}

TEST(BitReader, TracksPosition) {
  const BitVec bits{1, 0, 1, 1};
  BitReader r(bits);
  EXPECT_EQ(r.position(), 0u);
  r.read(3);
  EXPECT_EQ(r.position(), 3u);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(BitWriter, TakeMovesBits) {
  BitWriter w;
  w.write_bit(true);
  w.write_bit(false);
  const BitVec bits = w.take();
  EXPECT_EQ(bits.size(), 2u);
}

}  // namespace
}  // namespace witag::util
