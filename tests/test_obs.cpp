#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "util/units.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "witag/session.hpp"

namespace witag::obs {
namespace {

/// Every test starts from a clean registry and a quiet tracer.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::instance().reset();
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
    MetricsRegistry::instance().reset();
  }
};

using ObsJson = ObsTest;
using ObsMetrics = ObsTest;
using ObsTrace = ObsTest;
using ObsReport = ObsTest;
using ObsSession = ObsTest;
// Fork-based: deliberately NOT named Stream/Telemetry so the tsan CI
// job (which can't follow fork) filters these out.
using ObsCrashFlush = ObsTest;

TEST_F(ObsJson, ParsesNestedDocument) {
  const auto v = json::Value::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}})");
  EXPECT_EQ(v.at("a").size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a")[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(v.at("a")[2].as_number(), -300.0);
  EXPECT_EQ(v.at("b").at("c").as_string(), "x\ny");
  EXPECT_TRUE(v.at("b").at("d").as_bool());
  EXPECT_TRUE(v.at("b").at("e").is_null());
}

TEST_F(ObsJson, DumpParseRoundTrip) {
  json::Value doc = json::Value::object();
  doc.set("name", json::Value::string("quote\" comma, \tend"));
  doc.set("pi", json::Value::number(util::kPi));
  json::Value arr = json::Value::array();
  arr.push_back(json::Value::number(1e-9));
  arr.push_back(json::Value::boolean(false));
  doc.set("arr", std::move(arr));

  const auto back = json::Value::parse(doc.dump());
  EXPECT_EQ(back.at("name").as_string(), "quote\" comma, \tend");
  EXPECT_DOUBLE_EQ(back.at("pi").as_number(), util::kPi);
  EXPECT_DOUBLE_EQ(back.at("arr")[0].as_number(), 1e-9);
  EXPECT_FALSE(back.at("arr")[1].as_bool());
}

TEST_F(ObsJson, RejectsMalformedInput) {
  EXPECT_THROW(json::Value::parse("{"), std::invalid_argument);
  EXPECT_THROW(json::Value::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(json::Value::parse("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW(json::Value::parse("1 2"), std::invalid_argument);
  EXPECT_THROW(json::Value::parse("\"unterminated"), std::invalid_argument);
}

TEST_F(ObsMetrics, CounterAccumulates) {
  Counter& c = counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same counter.
  EXPECT_EQ(&counter("test.counter"), &c);
  EXPECT_EQ(counter("test.counter").value(), 42u);
}

TEST_F(ObsMetrics, HistogramBucketsAndMoments) {
  Histogram& h = histogram("test.hist", {1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1      -> bucket 0
  h.observe(1.0);   // == edge   -> bucket 0 (inclusive upper edges)
  h.observe(1.5);   //           -> bucket 1
  h.observe(4.0);   //           -> bucket 2
  h.observe(100.0); // overflow  -> bucket 3
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 107.0);
  EXPECT_DOUBLE_EQ(h.mean(), 21.4);
}

TEST_F(ObsMetrics, HistogramValidation) {
  EXPECT_THROW(Histogram(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW((Histogram({2.0, 1.0})), std::invalid_argument);
  EXPECT_THROW((Histogram({1.0, 1.0})), std::invalid_argument);
  histogram("test.hist2", {1.0, 2.0});
  EXPECT_THROW((histogram("test.hist2", {1.0, 3.0})), std::invalid_argument);
}

TEST_F(ObsMetrics, ExpBounds) {
  const auto b = exp_bounds(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
}

TEST_F(ObsMetrics, SnapshotAndReset) {
  counter("snap.c").add(3);
  gauge("snap.g").set(2.5);
  histogram("snap.h", {1.0}).observe(0.5);
  auto snap = MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("snap.c"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("snap.g"), 2.5);
  EXPECT_EQ(snap.histograms.at("snap.h").count, 1u);

  MetricsRegistry::instance().reset();
  snap = MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("snap.c"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("snap.g"), 0.0);
  EXPECT_EQ(snap.histograms.at("snap.h").count, 0u);
}

TEST_F(ObsTrace, DisabledModeRecordsNothing) {
  ASSERT_FALSE(trace_enabled());
  {
    ScopedSpan span("noop.span");
    instant("noop.instant");
    instant_arg("noop.arg", "k", 1.0);
  }
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
}

TEST_F(ObsTrace, ChromeTraceIsWellFormed) {
  Tracer::instance().set_enabled(true);
  {
    ScopedSpan outer("outer.span", "test");
    ScopedSpan inner("inner.span", "test");
    instant_arg2("marker", "index", 3.0, "ok", 1.0, "test");
  }
  Tracer::instance().set_enabled(false);

  std::ostringstream os;
  Tracer::instance().write_chrome_trace(os);
  const auto doc = json::Value::parse(os.str());  // must parse back
  const json::Value& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), 3u);

  bool saw_span = false;
  bool saw_instant = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& ev = events[i];
    const std::string& ph = ev.at("ph").as_string();
    EXPECT_GE(ev.at("ts").as_number(), 0.0);
    if (ph == "X") {
      saw_span = true;
      EXPECT_GE(ev.at("dur").as_number(), 0.0);
    } else if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(ev.at("name").as_string(), "marker");
      EXPECT_DOUBLE_EQ(ev.at("args").at("index").as_number(), 3.0);
      EXPECT_DOUBLE_EQ(ev.at("args").at("ok").as_number(), 1.0);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
}

TEST_F(ObsTrace, JsonlOneParsableObjectPerLine) {
  Tracer::instance().set_enabled(true);
  { ScopedSpan span("jsonl.span"); }
  instant("jsonl.marker");
  Tracer::instance().set_enabled(false);

  std::ostringstream os;
  Tracer::instance().write_jsonl(os);
  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const auto ev = json::Value::parse(line);
    EXPECT_TRUE(ev.has("name"));
    EXPECT_TRUE(ev.has("ts"));
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST_F(ObsTrace, ClearDropsEventsAndRestartsEpoch) {
  Tracer::instance().set_enabled(true);
  instant("before.clear");
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
  instant("after.clear");
  EXPECT_EQ(Tracer::instance().event_count(), 1u);
}

TEST_F(ObsReport, MetricsJsonSchemaRoundTrip) {
  const std::string path = "/tmp/witag_obs_report_test.json";
  {
    const std::vector<const char*> argv{"prog", "--metrics-out",
                                        path.c_str()};
    const util::Args args(static_cast<int>(argv.size()), argv.data());
    RunScope run("unit_bench", args);
    run.config("alpha", 1.5);
    run.config("mode", "fast");
    counter("unit.count").add(7);
    histogram("unit.hist", {1.0, 2.0}).observe(1.5);
  }  // destructor writes the report

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const auto doc = json::Value::parse(ss.str());
  EXPECT_EQ(doc.at("bench").as_string(), "unit_bench");
  EXPECT_DOUBLE_EQ(doc.at("config").at("alpha").as_number(), 1.5);
  EXPECT_EQ(doc.at("config").at("mode").as_string(), "fast");
  EXPECT_GE(doc.at("wall_ms").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(doc.at("counters").at("unit.count").as_number(), 7.0);
  const json::Value& hist = doc.at("histograms").at("unit.hist");
  ASSERT_EQ(hist.at("bounds").size(), 2u);
  ASSERT_EQ(hist.at("counts").size(), 3u);
  EXPECT_DOUBLE_EQ(hist.at("counts")[1].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_number(), 1.5);
  std::remove(path.c_str());
}

TEST_F(ObsReport, NoMetricsFlagSuppressesOutput) {
  const std::vector<const char*> argv{"prog", "--no-metrics"};
  const util::Args args(static_cast<int>(argv.size()), argv.data());
  RunScope run("unit_bench", args);
  EXPECT_TRUE(run.metrics_path().empty());
}

TEST_F(ObsSession, SpanCountsMatchLinkMetrics) {
#if !WITAG_OBS_ENABLED
  GTEST_SKIP() << "instrumentation compiled out (WITAG_OBS=OFF)";
#else
  Tracer::instance().set_enabled(true);
  auto cfg = core::los_testbed_config(util::Meters{4.0}, 77);
  core::Session session(cfg);
  const auto stats = session.run(3);
  Tracer::instance().set_enabled(false);

  std::size_t round_spans = 0;
  std::size_t subframe_events = 0;
  for (const TraceEvent& ev : Tracer::instance().events()) {
    const std::string_view name = ev.name;
    if (name == "session.round" && ev.ph == 'X') ++round_spans;
    if (name == "session.subframe" && ev.ph == 'i') ++subframe_events;
  }
  EXPECT_EQ(round_spans, stats.metrics.rounds());
  EXPECT_EQ(subframe_events, stats.metrics.bits());

  // The always-on counters agree with LinkMetrics too.
  const auto snap = MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("witag.rounds"), stats.metrics.rounds());
  EXPECT_EQ(snap.counters.at("witag.bits"), stats.metrics.bits());
  EXPECT_EQ(snap.counters.at("witag.bit_errors"), stats.metrics.bit_errors());
  EXPECT_EQ(snap.counters.at("witag.missed_corruption"),
            stats.metrics.missed_corruptions());
  EXPECT_EQ(snap.counters.at("witag.false_corruption"),
            stats.metrics.false_corruptions());
#endif
}

// --- Crash-safe flush ------------------------------------------------
// Each test forks a child that heap-leaks its RunScope (so the
// destructor can never write the report) and then dies — by signal or
// by exit() — proving the installed handlers/atexit hook flush for it.

json::Value parse_json_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return json::Value::parse(ss.str());
}

TEST_F(ObsCrashFlush, SignalHandlerWritesMetricsReport) {
  const std::string metrics = ::testing::TempDir() + "crash_sigint.json";
  std::remove(metrics.c_str());

  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    (void)!freopen("/dev/null", "w", stderr);
    const std::vector<const char*> argv{"prog", "--metrics-out",
                                        metrics.c_str()};
    const util::Args args(static_cast<int>(argv.size()), argv.data());
    auto* run = new RunScope("crash_bench", args);
    run->config("mode", "crash");
    counter("crash.count").add(3);
    std::raise(SIGINT);
    _exit(99);  // unreachable: the handler re-raises with SIG_DFL
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGINT);

  const json::Value doc = parse_json_file(metrics);
  EXPECT_EQ(doc.at("bench").as_string(), "crash_bench");
  EXPECT_EQ(doc.at("config").at("mode").as_string(), "crash");
  EXPECT_DOUBLE_EQ(doc.at("counters").at("crash.count").as_number(), 3.0);
  std::remove(metrics.c_str());
}

TEST_F(ObsCrashFlush, SigtermFlushesFinalStreamRecord) {
  const std::string metrics = ::testing::TempDir() + "crash_sigterm.json";
  const std::string stream = ::testing::TempDir() + "crash_sigterm.jsonl";
  std::remove(metrics.c_str());
  std::remove(stream.c_str());

  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    (void)!freopen("/dev/null", "w", stderr);
    // A huge flush period: nothing but the meta record is written
    // before the crash, so everything below must come from the handler.
    const std::vector<const char*> argv{
        "prog",         "--metrics-out", metrics.c_str(), "--stream-out",
        stream.c_str(), "--stream-period-ms", "60000"};
    const util::Args args(static_cast<int>(argv.size()), argv.data());
    auto* run = new RunScope("crash_bench", args);
    (void)run;
    counter("crash.count").add(7);
    hdr("crash.lat").record(5.0);
    instant("crash_ev");
    std::raise(SIGTERM);
    _exit(99);
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGTERM);

  // The stream ends with a "final" record carrying the totals, and the
  // span recorded just before the crash made it out of the ring.
  std::ifstream in(stream);
  ASSERT_TRUE(in.good()) << stream;
  std::vector<json::Value> records;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) records.push_back(json::Value::parse(line));
  }
  ASSERT_GE(records.size(), 3u);  // meta + span + final
  EXPECT_EQ(records.front().at("type").as_string(), "meta");
  EXPECT_EQ(records.back().at("type").as_string(), "final");
  EXPECT_DOUBLE_EQ(
      records.back().at("counters").at("crash.count").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(
      records.back().at("hdr").at("crash.lat").at("count").as_number(), 1.0);
  std::size_t spans = 0;
  for (const json::Value& rec : records) {
    if (rec.at("type").as_string() == "span") ++spans;
  }
  EXPECT_GE(spans, 1u);

  const json::Value doc = parse_json_file(metrics);
  EXPECT_DOUBLE_EQ(doc.at("counters").at("crash.count").as_number(), 7.0);
  std::remove(metrics.c_str());
  std::remove(stream.c_str());
}

TEST_F(ObsCrashFlush, AtexitFlushesLeakedScope) {
  const std::string metrics = ::testing::TempDir() + "crash_atexit.json";
  std::remove(metrics.c_str());

  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    (void)!freopen("/dev/null", "w", stderr);
    const std::vector<const char*> argv{"prog", "--metrics-out",
                                        metrics.c_str()};
    const util::Args args(static_cast<int>(argv.size()), argv.data());
    auto* run = new RunScope("crash_bench", args);
    (void)run;  // leaked: only the atexit hook can write the report
    counter("crash.count").add(5);
    std::exit(7);
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 7);

  const json::Value doc = parse_json_file(metrics);
  EXPECT_DOUBLE_EQ(doc.at("counters").at("crash.count").as_number(), 5.0);
  std::remove(metrics.c_str());
}

}  // namespace
}  // namespace witag::obs
