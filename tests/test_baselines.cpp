#include <gtest/gtest.h>

#include "baselines/compare.hpp"
#include "baselines/freerider.hpp"
#include "baselines/hitchhike.hpp"
#include "baselines/moxcatter.hpp"

namespace witag::baselines {
namespace {

TEST(Common, VictimCollisionProbability) {
  EXPECT_DOUBLE_EQ(victim_collision_probability(0.0, 100.0, 1000.0), 0.0);
  const double p = victim_collision_probability(100.0, 1000.0, 1000.0);
  EXPECT_GT(p, 0.15);
  EXPECT_LT(p, 0.25);  // 1 - exp(-0.2)
  // More tag traffic -> more collisions.
  EXPECT_GT(victim_collision_probability(500.0, 1000.0, 1000.0), p);
}

TEST(Common, LinkBudgetOrders) {
  TwoApGeometry geo;
  const BackscatterLink link = two_ap_link(geo, 7.0, util::kWifi24GHz);
  EXPECT_GT(link.direct_amp, 0.0);
  EXPECT_GT(link.backscatter_amp, 0.0);
  // The two-hop backscatter path is far weaker than the direct path.
  EXPECT_LT(link.backscatter_amp, link.direct_amp);
}

TEST(Hitchhike, NominalDeploymentDecodes) {
  util::Rng rng(1);
  HitchhikeConfig cfg;
  const auto result = run_hitchhike(cfg, 10, rng);
  ASSERT_TRUE(result.works);
  EXPECT_GT(result.tag_bits, 0u);
  EXPECT_LT(result.ber, 0.01);
  EXPECT_NEAR(result.instantaneous_rate_kbps, 1000.0, 1.0);  // 1 Mcw/s
}

TEST(Hitchhike, UnmodifiedApGate) {
  util::Rng rng(2);
  HitchhikeConfig cfg;
  cfg.modified_ap = false;
  const auto result = run_hitchhike(cfg, 1, rng);
  EXPECT_FALSE(result.works);
}

TEST(Hitchhike, EncryptionGate) {
  util::Rng rng(3);
  HitchhikeConfig cfg;
  cfg.encrypted = true;
  EXPECT_FALSE(run_hitchhike(cfg, 1, rng).works);
}

TEST(Hitchhike, TemperatureDriftGate) {
  util::Rng rng(4);
  HitchhikeConfig cfg;
  cfg.temperature_offset_c = 5.0;  // 600 kHz shift >> tolerance
  EXPECT_FALSE(run_hitchhike(cfg, 1, rng).works);
  cfg.temperature_offset_c = 0.5;  // 60 kHz: within tolerance
  EXPECT_TRUE(run_hitchhike(cfg, 1, rng).works);
}

TEST(Hitchhike, DqpskModeAlsoWorks) {
  util::Rng rng(5);
  HitchhikeConfig cfg;
  cfg.rate = phy::dsss::DsssRate::kDqpsk2Mbps;
  const auto result = run_hitchhike(cfg, 10, rng);
  ASSERT_TRUE(result.works);
  EXPECT_LT(result.ber, 0.01);
}

TEST(Freerider, NominalDeploymentDecodes) {
  util::Rng rng(6);
  FreeriderConfig cfg;
  const auto result = run_freerider(cfg, 10, rng);
  ASSERT_TRUE(result.works);
  EXPECT_LT(result.ber, 0.01);
  EXPECT_NEAR(result.instantaneous_rate_kbps, 250.0, 1.0);
}

TEST(Freerider, Gates) {
  util::Rng rng(7);
  FreeriderConfig cfg;
  cfg.modified_ap = false;
  EXPECT_FALSE(run_freerider(cfg, 1, rng).works);
  cfg.modified_ap = true;
  cfg.encrypted = true;
  EXPECT_FALSE(run_freerider(cfg, 1, rng).works);
  cfg.encrypted = false;
  cfg.temperature_offset_c = 5.0;
  EXPECT_FALSE(run_freerider(cfg, 1, rng).works);
}

TEST(Moxcatter, NominalDeploymentDecodes) {
  util::Rng rng(8);
  MoxcatterConfig cfg;
  const auto result = run_moxcatter(cfg, 20, rng);
  ASSERT_TRUE(result.works);
  EXPECT_LT(result.ber, 0.1);
  // One bit per packet: orders of magnitude below the per-symbol tags.
  EXPECT_NEAR(result.instantaneous_rate_kbps, 2.0, 0.1);
}

TEST(Moxcatter, Gates) {
  util::Rng rng(9);
  MoxcatterConfig cfg;
  cfg.encrypted = true;
  EXPECT_FALSE(run_moxcatter(cfg, 1, rng).works);
}

TEST(Comparison, MatrixMatchesPaperClaims) {
  const auto rows = build_comparison_matrix(1234, 6, 6);
  ASSERT_EQ(rows.size(), 4u);

  const SystemRow& witag_row = rows[0];
  EXPECT_EQ(witag_row.system, "WiTAG");
  EXPECT_TRUE(witag_row.works_unmodified_ap);
  EXPECT_TRUE(witag_row.works_encrypted);
  EXPECT_FALSE(witag_row.needs_second_ap);
  EXPECT_FALSE(witag_row.interferes_secondary);
  EXPECT_LT(witag_row.oscillator_power.microwatts(), 1.0);
  EXPECT_GT(witag_row.throughput_kbps, 20.0);

  for (std::size_t i = 1; i < rows.size(); ++i) {
    const SystemRow& r = rows[i];
    EXPECT_FALSE(r.works_unmodified_ap) << r.system;
    EXPECT_FALSE(r.works_encrypted) << r.system;
    EXPECT_TRUE(r.needs_second_ap) << r.system;
    EXPECT_TRUE(r.interferes_secondary) << r.system;
    EXPECT_DOUBLE_EQ(r.oscillator_hz.value(), kChannelShiftOscillatorHz);
    // Ring oscillator at 20 MHz: tens of microwatts, far above WiTAG's.
    EXPECT_GT(r.oscillator_power.microwatts(),
              10.0 * witag_row.oscillator_power.microwatts());
  }

  // Throughput ordering: HitchHike/FreeRider per-codeword rates beat
  // WiTAG's; MOXcatter's per-packet rate is far below it (paper: the
  // field spans 1 Kbps - 300 Kbps).
  EXPECT_GT(rows[1].throughput_kbps, witag_row.throughput_kbps);
  EXPECT_GT(rows[2].throughput_kbps, witag_row.throughput_kbps);
  EXPECT_LT(rows[3].throughput_kbps, witag_row.throughput_kbps);
}

}  // namespace
}  // namespace witag::baselines
