#include "channel/fading.hpp"

#include <gtest/gtest.h>

namespace witag::channel {
namespace {

TEST(Fading, ScatterersStayInBounds) {
  FadingConfig cfg;
  cfg.n_scatterers = 5;
  cfg.area_min_x = 0.0;
  cfg.area_max_x = 10.0;
  cfg.area_min_y = 0.0;
  cfg.area_max_y = 5.0;
  FadingProcess fading(cfg, util::Rng(1));
  for (int step = 0; step < 200; ++step) {
    fading.advance(util::Seconds{0.1});
    for (const StaticReflector& s : fading.scatterers()) {
      EXPECT_GE(s.position.x, 0.0);
      EXPECT_LE(s.position.x, 10.0);
      EXPECT_GE(s.position.y, 0.0);
      EXPECT_LE(s.position.y, 5.0);
    }
  }
}

TEST(Fading, ScatterersActuallyMove) {
  FadingConfig cfg;
  cfg.n_scatterers = 3;
  FadingProcess fading(cfg, util::Rng(2));
  const Point2 before = fading.scatterers()[0].position;
  fading.advance(util::Seconds{1.0});
  const Point2 after = fading.scatterers()[0].position;
  EXPECT_GT(distance(before, after), 0.0);
}

TEST(Fading, ScattererCountAndStrength) {
  FadingConfig cfg;
  cfg.n_scatterers = 4;
  cfg.scatterer_strength = 2.5;
  FadingProcess fading(cfg, util::Rng(3));
  ASSERT_EQ(fading.scatterers().size(), 4u);
  for (const StaticReflector& s : fading.scatterers()) {
    EXPECT_DOUBLE_EQ(s.strength, 2.5);
  }
}

TEST(Fading, BlockingAppearsAndExpires) {
  FadingConfig cfg;
  cfg.n_scatterers = 0;
  cfg.blocking_rate_hz = util::Hertz{1000.0};  // guarantee an event quickly
  cfg.blocking_mean_s = util::Seconds{0.01};
  cfg.blocking_loss_db = util::Db{9.0};
  FadingProcess fading(cfg, util::Rng(4));
  fading.advance(util::Seconds{0.01});
  EXPECT_DOUBLE_EQ(fading.direct_excess_loss_db().value(), 9.0);
  // Advance far past any plausible blocking duration with arrivals off.
  FadingConfig quiet = cfg;
  quiet.blocking_rate_hz = util::Hertz{0.0};
  // (we can't change config mid-flight; instead advance by a long time
  // relative to the mean duration and accept that new arrivals keep it
  // blocked — so instead verify the no-blocking config stays clear)
  FadingProcess clear(quiet, util::Rng(5));
  clear.advance(util::Seconds{10.0});
  EXPECT_DOUBLE_EQ(clear.direct_excess_loss_db().value(), 0.0);
}

TEST(Fading, DeterministicGivenSeed) {
  FadingConfig cfg;
  cfg.n_scatterers = 2;
  FadingProcess a(cfg, util::Rng(7));
  FadingProcess b(cfg, util::Rng(7));
  for (int i = 0; i < 50; ++i) {
    a.advance(util::Seconds{0.05});
    b.advance(util::Seconds{0.05});
  }
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(a.scatterers()[i].position, b.scatterers()[i].position);
  }
}

TEST(Fading, RejectsNegativeTimeAndBadArea) {
  FadingConfig cfg;
  FadingProcess fading(cfg, util::Rng(8));
  EXPECT_THROW(fading.advance(util::Seconds{-1.0}), std::invalid_argument);
  FadingConfig bad;
  bad.area_min_x = 5.0;
  bad.area_max_x = 1.0;
  EXPECT_THROW(FadingProcess(bad, util::Rng(9)), std::invalid_argument);
}

}  // namespace
}  // namespace witag::channel
