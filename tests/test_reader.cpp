#include "witag/reader.hpp"

#include <gtest/gtest.h>

namespace witag::core {
namespace {

SessionConfig quiet_los(double tag_at, std::uint64_t seed) {
  SessionConfig cfg = los_testbed_config(util::Meters{tag_at}, seed);
  cfg.fading.n_scatterers = 0;
  cfg.fading.blocking_rate_hz = util::Hertz{0.0};
  cfg.fading.interference_rate_hz = util::Hertz{0.0};
  return cfg;
}

TEST(Reader, PollsOneFrame) {
  Session session(quiet_los(1.0, 21));
  Reader reader(session, {});
  const util::ByteVec payload{1, 2, 3, 4};
  reader.load_tag(0, payload);
  const auto result = reader.poll_frame();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.payload, payload);
  EXPECT_GT(result.rounds, 0u);
  EXPECT_EQ(reader.stats().frames_ok, 1u);
}

TEST(Reader, RepeatedPollsReuseLeftoverBits) {
  Session session(quiet_los(1.0, 22));
  Reader reader(session, {});
  const util::ByteVec payload{0xAB, 0xCD};
  reader.load_tag(0, payload);
  // The tag cycles its payload, so polls keep decoding copies.
  for (int i = 0; i < 4; ++i) {
    const auto result = reader.poll_frame();
    ASSERT_TRUE(result.ok) << "poll " << i;
    EXPECT_EQ(result.payload, payload) << "poll " << i;
  }
  EXPECT_EQ(reader.stats().frames_ok, 4u);
}

TEST(Reader, FecRepairsNoisyLink) {
  // Mid-link at calibrated coupling: a few percent raw BER; repetition
  // FEC + CRC must still deliver intact frames.
  SessionConfig cfg = los_testbed_config(util::Meters{4.0}, 23);
  Session session(cfg);
  ReaderConfig rcfg;
  rcfg.fec = TagFec::kRepetition3;
  rcfg.max_rounds_per_frame = 48;
  Reader reader(session, rcfg);
  const util::ByteVec payload{0x11, 0x22, 0x33};
  reader.load_tag(0, payload);
  std::size_t delivered = 0;
  for (int i = 0; i < 5; ++i) {
    const auto result = reader.poll_frame();
    if (result.ok) {
      ++delivered;
      EXPECT_EQ(result.payload, payload);
    }
  }
  EXPECT_GE(delivered, 4u);  // CRC rejects, it never lies
}

TEST(Reader, MultiTagPollingByAddress) {
  SessionConfig cfg = quiet_los(1.0, 24);
  // Keep every tag near a radio: the corruption margin follows the
  // radar 1/(Ds*Dr) product, so tags cluster near the AP or client.
  cfg.extra_tags.push_back({{16.4, 3.5}, 1, 7.1});
  cfg.extra_tags.push_back({{16.8, 3.5}, 2, 7.1});
  Session session(cfg);
  Reader reader(session, {});
  const util::ByteVec p0{0xA0};
  const util::ByteVec p1{0xA1};
  const util::ByteVec p2{0xA2};
  reader.load_tag(0, p0);
  reader.load_tag(1, p1);
  reader.load_tag(2, p2);
  for (unsigned address = 0; address < 3; ++address) {
    const auto result = reader.poll_frame(address);
    ASSERT_TRUE(result.ok) << "address " << address;
    ASSERT_EQ(result.payload.size(), 1u);
    EXPECT_EQ(result.payload[0], 0xA0 + address) << "address " << address;
  }
}

TEST(Reader, MultiTagInterleavedPolls) {
  SessionConfig cfg = quiet_los(1.0, 25);
  cfg.extra_tags.push_back({{16.2, 3.5}, 1, 7.1});
  Session session(cfg);
  Reader reader(session, {});
  const util::ByteVec pa{0x55, 0x01};
  const util::ByteVec pb{0x66, 0x02};
  reader.load_tag(0, pa);
  reader.load_tag(1, pb);
  for (int cycle = 0; cycle < 3; ++cycle) {
    const auto a = reader.poll_frame(0);
    const auto b = reader.poll_frame(1);
    ASSERT_TRUE(a.ok && b.ok) << cycle;
    EXPECT_EQ(a.payload[0], 0x55);
    EXPECT_EQ(b.payload[0], 0x66);
  }
}

TEST(Reader, StatsAccumulate) {
  Session session(quiet_los(1.0, 26));
  Reader reader(session, {});
  const util::ByteVec p9{9};
  reader.load_tag(0, p9);
  reader.poll_frame();
  reader.poll_frame();
  const auto& stats = reader.stats();
  EXPECT_EQ(stats.frames_ok, 2u);
  EXPECT_GT(stats.airtime_us.value(), 0.0);
  EXPECT_GT(stats.frame_goodput_kbps(1), 0.0);
}

TEST(Reader, LostRoundsCountTowardBudgetAndStats) {
  // Regression: a lost round must burn budget AND be tallied. An
  // always-missing trigger loses every round, so the poll runs exactly
  // max_rounds_per_frame rounds, every one of them lost.
  auto cfg = quiet_los(1.0, 41);
  cfg.faults.trigger.miss_rate = 1.0;
  Session session(cfg);
  ReaderConfig rcfg;
  rcfg.max_rounds_per_frame = 5;
  Reader reader(session, rcfg);
  reader.load_tag(0, util::ByteVec{0x5A});
  const auto result = reader.poll_frame(0);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.rounds, 5u);
  const auto& stats = reader.stats();
  EXPECT_EQ(stats.rounds, 5u);
  EXPECT_EQ(stats.rounds_lost, 5u);
  EXPECT_EQ(stats.polls_failed, 1u);
  EXPECT_EQ(stats.frames_ok, 0u);
}

TEST(Reader, ResyncsAcrossLostRoundMidFrame) {
  // An 8-byte repetition-3 frame spans several query rounds, so it
  // straddles A-MPDU boundaries; with a lossy trigger some rounds drop
  // out mid-frame and the preamble resync must still deliver it.
  auto cfg = quiet_los(1.0, 42);
  cfg.faults.trigger.miss_rate = 0.35;
  Session session(cfg);
  ReaderConfig rcfg;
  rcfg.max_rounds_per_frame = 64;
  Reader reader(session, rcfg);
  const util::ByteVec payload{1, 2, 3, 4, 5, 6, 7, 8};
  reader.load_tag(0, payload);
  const auto result = reader.poll_frame(0);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.payload, payload);
  EXPECT_GE(result.rounds, 2u);  // frame really straddled A-MPDUs
  EXPECT_GE(reader.stats().rounds_lost, 1u);  // and a round really dropped
}

TEST(Reader, MultiTagResyncWithLostRounds) {
  auto cfg = quiet_los(1.0, 43);
  cfg.extra_tags.push_back({{16.4, 3.5}, 1, 7.1});
  cfg.faults.trigger.miss_rate = 0.3;
  Session session(cfg);
  ReaderConfig rcfg;
  rcfg.max_rounds_per_frame = 64;
  Reader reader(session, rcfg);
  const util::ByteVec pa{0xC0, 0xFF, 0xEE, 0x01, 0x02, 0x03};
  const util::ByteVec pb{0xBA, 0x5E, 0x11, 0x04, 0x05, 0x06};
  reader.load_tag(0, pa);
  reader.load_tag(1, pb);
  const auto a = reader.poll_frame(0);
  const auto b = reader.poll_frame(1);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.payload, pa);
  EXPECT_EQ(b.payload, pb);
  EXPECT_GE(reader.stats().rounds_lost, 1u);
}

TEST(Reader, ConfigValidated) {
  Session session(quiet_los(1.0, 27));
  ReaderConfig bad;
  bad.max_rounds_per_frame = 0;
  EXPECT_THROW(Reader(session, bad), std::invalid_argument);
  ReaderConfig bad2;
  bad2.stream_cap_bits = 10;
  EXPECT_THROW(Reader(session, bad2), std::invalid_argument);
}

}  // namespace
}  // namespace witag::core
