#include "mac/mac_header.hpp"

#include <gtest/gtest.h>

namespace witag::mac {
namespace {

MacHeader sample_header() {
  MacHeader h;
  h.addr1 = make_address(0x10);
  h.addr2 = make_address(0x20);
  h.addr3 = make_address(0x30);
  h.sequence = 1234;
  h.tid = 5;
  h.protected_frame = true;
  h.to_ds = true;
  return h;
}

TEST(MacHeader, SerializedSize) {
  EXPECT_EQ(serialize_header(sample_header()).size(), kQosHeaderBytes);
}

TEST(MacHeader, RoundTrip) {
  const MacHeader h = sample_header();
  const auto bytes = serialize_header(h);
  const auto parsed = parse_header(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
}

TEST(MacHeader, RoundTripMinimalFields) {
  MacHeader h;
  h.addr1 = make_address(1);
  h.addr2 = make_address(2);
  h.addr3 = make_address(3);
  const auto parsed = parse_header(serialize_header(h));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
}

TEST(MacHeader, SequenceBounds) {
  MacHeader h = sample_header();
  h.sequence = 4095;
  EXPECT_TRUE(parse_header(serialize_header(h)).has_value());
  h.sequence = 4096;
  EXPECT_THROW(serialize_header(h), std::invalid_argument);
}

TEST(MacHeader, TidBounds) {
  MacHeader h = sample_header();
  h.tid = 15;
  EXPECT_EQ(parse_header(serialize_header(h))->tid, 15);
  h.tid = 16;
  EXPECT_THROW(serialize_header(h), std::invalid_argument);
}

TEST(MacHeader, ParseRejectsShortBuffer) {
  const util::ByteVec tiny(10, 0);
  EXPECT_FALSE(parse_header(tiny).has_value());
}

TEST(MacHeader, ParseRejectsNonQosData) {
  util::ByteVec bytes = serialize_header(sample_header());
  bytes[0] = 0x80;  // beacon-ish frame control
  EXPECT_FALSE(parse_header(bytes).has_value());
}

TEST(MacHeader, AddressFormatting) {
  const MacAddress a = make_address(0xAB);
  EXPECT_EQ(a.to_string(), "02:57:69:54:41:ab");
}

TEST(MacHeader, DistinctTailsGiveDistinctAddresses) {
  EXPECT_NE(make_address(1), make_address(2));
  EXPECT_EQ(make_address(7), make_address(7));
}

}  // namespace
}  // namespace witag::mac
