// City simulator tests: event-calendar ordering/pooling, and the
// headline determinism contract — run_city output is byte-identical
// across worker counts AND shard counts (DESIGN.md section 17).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "sim/city.hpp"
#include "sim/event_queue.hpp"
#include "sim/interference.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace witag {
namespace {

// ---------------------------------------------------------------------
// Event calendar.
// ---------------------------------------------------------------------

TEST(SimEventQueue, PopsInTimeOrder) {
  sim::EventQueue q;
  util::Rng rng(71);
  for (std::uint32_t i = 0; i < 500; ++i) {
    q.push(rng.uniform(0.0, 1e6), i);
  }
  ASSERT_EQ(q.size(), 500u);
  double prev = -1.0;
  while (!q.empty()) {
    const sim::Event e = q.pop();
    ASSERT_GE(e.time_us, prev);
    prev = e.time_us;
  }
}

TEST(SimEventQueue, TiesBreakInPushOrder) {
  sim::EventQueue q;
  // All events at the same instant, interleaved with earlier/later
  // ones: the tied block must pop exactly in push (seq) order.
  q.push(5.0, 100);
  for (std::uint32_t i = 0; i < 64; ++i) q.push(10.0, i);
  q.push(1.0, 200);
  ASSERT_EQ(q.pop().cell, 200u);
  ASSERT_EQ(q.pop().cell, 100u);
  for (std::uint32_t i = 0; i < 64; ++i) {
    const sim::Event e = q.pop();
    ASSERT_EQ(e.time_us, 10.0);
    ASSERT_EQ(e.cell, i) << "tie broke out of FIFO order";
  }
  ASSERT_TRUE(q.empty());
}

TEST(SimEventQueue, SeqIsMonotonicAcrossPushes) {
  sim::EventQueue q;
  q.push(3.0, 0);
  q.push(1.0, 1);
  q.push(2.0, 2);
  std::uint64_t seq1 = q.pop().seq;  // time 1.0 (second push)
  std::uint64_t seq2 = q.pop().seq;  // time 2.0 (third push)
  std::uint64_t seq0 = q.pop().seq;  // time 3.0 (first push)
  EXPECT_LT(seq0, seq1);
  EXPECT_LT(seq1, seq2);
}

TEST(SimEventQueue, PoolRecyclesNodesInSteadyState) {
  sim::EventQueue q;
  q.reserve(8);
  for (std::uint32_t i = 0; i < 8; ++i) q.push(static_cast<double>(i), i);
  EXPECT_EQ(q.pool_reuses(), 0u);
  EXPECT_EQ(q.pool_size(), 8u);
  // Steady state: every pop feeds the free list, every push drains it —
  // the pool never grows and every push after warm-up is a reuse.
  for (std::uint32_t step = 0; step < 1000; ++step) {
    const sim::Event e = q.pop();
    q.push(e.time_us + 8.0, e.cell);
  }
  EXPECT_EQ(q.pool_size(), 8u) << "steady-state loop grew the pool";
  EXPECT_EQ(q.pool_reuses(), 1000u);
}

// ---------------------------------------------------------------------
// Interference composition.
// ---------------------------------------------------------------------

TEST(SimInterference, CouplingIsSymmetricWithZeroDiagonal) {
  const auto centers = sim::cell_grid(9, util::Meters{25.0});
  const sim::CouplingMatrix m(centers, util::kWifi24GHz, util::Watts{0.03},
                              1.0);
  ASSERT_EQ(m.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(m.at(i, i), 0.0);
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_DOUBLE_EQ(m.at(i, j), m.at(j, i));
      if (i != j) EXPECT_GT(m.at(i, j), 0.0);
    }
  }
}

TEST(SimInterference, AmbientNoiseIsLinearInLoadsAndClamped) {
  const auto centers = sim::cell_grid(4, util::Meters{20.0});
  const sim::CouplingMatrix m(centers, util::kWifi24GHz, util::Watts{0.03},
                              1.0);
  const std::vector<double> loads{0.5, 0.25, 0.0, 1.0};
  const auto a1 = sim::ambient_noise(m, loads);
  std::vector<double> doubled(loads);
  for (double& l : doubled) l *= 0.5;
  const auto a2 = sim::ambient_noise(m, doubled);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(a1[i], 2.0 * a2[i]);
  }
  // Loads past 1.0 clamp (an exchange can straddle the epoch edge).
  const auto clamped = sim::ambient_noise(m, {5.0, 5.0, 5.0, 5.0});
  const auto unit = sim::ambient_noise(m, {1.0, 1.0, 1.0, 1.0});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(clamped[i], unit[i]);
  }
}

// ---------------------------------------------------------------------
// City determinism.
// ---------------------------------------------------------------------

sim::CityConfig small_city() {
  sim::CityConfig cfg;
  cfg.n_cells = 6;
  cfg.epochs = 2;
  cfg.epoch_us = 1'500.0;
  cfg.n_subframes = 8;
  cfg.mcs = 5;
  cfg.seed = 99;
  return cfg;
}

/// The byte-comparable essence of a CityResult (drops wall times and
/// shard-layout-dependent pool stats).
struct Essence {
  std::size_t bits, errors, rounds, lost;
  double goodput, ber, elapsed;
  double p50, p99, max;
  std::uint64_t latency_count, events;
  double ambient;

  bool operator==(const Essence&) const = default;
};

Essence essence(const sim::CityResult& r) {
  return {r.merged.bits(),         r.merged.bit_errors(),
          r.merged.rounds(),       r.merged.rounds_lost(),
          r.merged.goodput_kbps(), r.merged.ber(),
          r.merged.elapsed_us().value(),
          r.latency_us.p50,        r.latency_us.p99,
          r.latency_us.max,        r.latency_count,
          r.events,                r.mean_ambient_w};
}

TEST(SimCityDeterminism, IdenticalAcrossWorkerCounts) {
  sim::CityConfig cfg = small_city();
  cfg.n_shards = 4;
  const Essence j1 = essence(sim::run_city(cfg, 1));
  const Essence j2 = essence(sim::run_city(cfg, 2));
  const Essence j8 = essence(sim::run_city(cfg, 8));
  EXPECT_EQ(j1, j2);
  EXPECT_EQ(j1, j8);
}

TEST(SimCityDeterminism, IdenticalAcrossShardCounts) {
  sim::CityConfig cfg = small_city();
  cfg.n_shards = 1;
  const Essence s1 = essence(sim::run_city(cfg, 2));
  cfg.n_shards = 4;
  const Essence s4 = essence(sim::run_city(cfg, 2));
  cfg.n_shards = 6;  // one cell per shard
  const Essence s6 = essence(sim::run_city(cfg, 2));
  EXPECT_EQ(s1, s4);
  EXPECT_EQ(s1, s6);
}

TEST(SimCityDeterminism, ProgressAndPoolBehaveSane) {
  sim::CityConfig cfg = small_city();
  cfg.n_shards = 2;
  const sim::CityResult r = sim::run_city(cfg, 1);
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.merged.bits(), 0u);
  EXPECT_GT(r.latency_count, 0u);
  // One pending event per cell: the pool never grows past the shard's
  // cell count, and after warm-up every scheduled event reuses a node.
  EXPECT_LE(r.pool_peak, cfg.n_cells);
  EXPECT_EQ(r.pool_reuses, r.events);
  EXPECT_GT(r.mean_ambient_w, 0.0);
}

TEST(SimCityDeterminism, CouplingScaleZeroMeansNoAmbientFloor) {
  sim::CityConfig cfg = small_city();
  cfg.coupling_scale = 0.0;
  const sim::CityResult off = sim::run_city(cfg, 1);
  EXPECT_EQ(off.mean_ambient_w, 0.0);
  cfg.coupling_scale = 1.0;
  const sim::CityResult on = sim::run_city(cfg, 1);
  EXPECT_GT(on.mean_ambient_w, 0.0);
  // Interference only ever hurts: the ambient floor cannot reduce the
  // error count of an otherwise identical deployment.
  EXPECT_GE(on.merged.bit_errors(), off.merged.bit_errors());
}

TEST(SimCitySupervised, DeterministicDeliveries) {
  sim::CityConfig cfg;
  cfg.n_cells = 2;
  cfg.epochs = 1;
  cfg.epoch_us = 30'000.0;
  cfg.n_subframes = 8;
  cfg.mcs = 2;
  cfg.supervised = true;
  cfg.seed = 7;
  const sim::CityResult a = sim::run_city(cfg, 1);
  const sim::CityResult b = sim::run_city(cfg, 2);
  EXPECT_EQ(a.deliveries_ok, b.deliveries_ok);
  EXPECT_EQ(a.deliveries_failed, b.deliveries_failed);
  EXPECT_EQ(essence(a), essence(b));
  EXPECT_GT(a.deliveries_ok + a.deliveries_failed, 0u);
}

}  // namespace
}  // namespace witag
