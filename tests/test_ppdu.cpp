#include "phy/ppdu.hpp"

#include <gtest/gtest.h>

#include "phy/preamble.hpp"
#include "util/rng.hpp"

namespace witag::phy {
namespace {

using util::Cx;

class PpduAllMcs : public ::testing::TestWithParam<unsigned> {};

TEST_P(PpduAllMcs, CleanRoundTrip) {
  util::Rng rng(GetParam());
  const util::ByteVec psdu = rng.bytes(300);
  TxConfig cfg;
  cfg.mcs_index = GetParam();
  const TxPpdu ppdu = transmit(psdu, cfg);
  const RxResult rx = receive(ppdu.symbols, {});
  ASSERT_TRUE(rx.sig_ok);
  EXPECT_EQ(rx.sig.mcs_index, GetParam());
  EXPECT_EQ(rx.psdu, psdu);
}

TEST_P(PpduAllMcs, RoundTripThroughRandomChannelWithNoise) {
  util::Rng rng(100 + GetParam());
  const util::ByteVec psdu = rng.bytes(200);
  TxConfig cfg;
  cfg.mcs_index = GetParam();
  const TxPpdu ppdu = transmit(psdu, cfg);

  // Mild multipath-ish channel + 40 dB SNR (spread kept small enough
  // that the worst faded bin still clears 64-QAM 3/4's threshold).
  FreqSymbol h{};
  for (unsigned bin = 0; bin < kFftSize; ++bin) {
    h[bin] = Cx{1.0, 0.0} + 0.2 * rng.complex_normal(1.0);
  }
  const double noise_var = 1e-4;  // ~40 dB below unit power
  std::vector<FreqSymbol> rx_syms(ppdu.symbols.size());
  for (std::size_t s = 0; s < ppdu.symbols.size(); ++s) {
    for (unsigned bin = 0; bin < kFftSize; ++bin) {
      if (ppdu.symbols[s][bin] == Cx{} && h[bin] == Cx{}) continue;
      rx_syms[s][bin] =
          h[bin] * ppdu.symbols[s][bin] + rng.complex_normal(noise_var);
    }
  }
  const RxResult rx = receive(rx_syms, {});
  ASSERT_TRUE(rx.sig_ok);
  EXPECT_EQ(rx.psdu, psdu) << "MCS " << GetParam();
}

TEST_P(PpduAllMcs, DataSymbolCountMatchesMcsTable) {
  util::Rng rng(GetParam());
  const util::ByteVec psdu = rng.bytes(777);
  TxConfig cfg;
  cfg.mcs_index = GetParam();
  const TxPpdu ppdu = transmit(psdu, cfg);
  EXPECT_EQ(ppdu.n_data_symbols, data_symbols_for(psdu.size(), mcs(GetParam())));
  EXPECT_EQ(ppdu.symbols.size(), kHeaderSlots + ppdu.n_data_symbols);
}

INSTANTIATE_TEST_SUITE_P(AllMcs, PpduAllMcs,
                         ::testing::Range(0u, kNumMcs));

TEST(Ppdu, SlotKindsFollowLayout) {
  util::Rng rng(1);
  const util::ByteVec psdu = rng.bytes(64);
  const TxPpdu ppdu = transmit(psdu, {});
  EXPECT_EQ(ppdu.kind(0), SlotKind::kStf);
  EXPECT_EQ(ppdu.kind(1), SlotKind::kLtf);
  EXPECT_EQ(ppdu.kind(2), SlotKind::kLtf);
  EXPECT_EQ(ppdu.kind(3), SlotKind::kSig);
  EXPECT_EQ(ppdu.kind(4), SlotKind::kSig);
  EXPECT_EQ(ppdu.kind(5), SlotKind::kData);
  EXPECT_THROW(ppdu.kind(ppdu.size()), std::invalid_argument);
}

TEST(Ppdu, DurationIsFourMicrosecondsPerSlot) {
  util::Rng rng(2);
  const TxPpdu ppdu = transmit(rng.bytes(100), {});
  EXPECT_DOUBLE_EQ(ppdu.duration_us(), 4.0 * static_cast<double>(ppdu.size()));
}

TEST(Ppdu, PreambleSlotsCarryTrainingSymbols) {
  util::Rng rng(3);
  const TxPpdu ppdu = transmit(rng.bytes(32), {});
  EXPECT_EQ(ppdu.symbols[0], stf_symbol());
  EXPECT_EQ(ppdu.symbols[1], ltf_symbol());
  EXPECT_EQ(ppdu.symbols[2], ltf_symbol());
}

TEST(Ppdu, CorruptedSigIsDropped) {
  util::Rng rng(4);
  const TxPpdu ppdu = transmit(rng.bytes(50), {});
  std::vector<FreqSymbol> symbols = ppdu.symbols;
  // Destroy both SIG symbols.
  for (std::size_t s = kPreambleSlots; s < kHeaderSlots; ++s) {
    for (auto& v : symbols[s]) v = rng.complex_normal(1.0);
  }
  const RxResult rx = receive(symbols, {});
  EXPECT_FALSE(rx.sig_ok);
  EXPECT_TRUE(rx.psdu.empty());
}

TEST(Ppdu, MidFrameChannelChangeCorruptsOnlyThatRegion) {
  // The WiTAG mechanism at PHY granularity: flip the channel during a
  // band of data symbols; bytes decoded from other regions stay intact.
  util::Rng rng(5);
  const util::ByteVec psdu = rng.bytes(26 * 20);  // 20 symbols at MCS5
  TxConfig cfg;
  cfg.mcs_index = 5;
  const TxPpdu ppdu = transmit(psdu, cfg);

  std::vector<FreqSymbol> symbols = ppdu.symbols;
  const std::size_t first_data = kHeaderSlots;
  // Perturb a mid band of symbols with a per-subcarrier channel change,
  // the way a tag's extra reflected path does (a change common to all
  // subcarriers would be repaired by pilot CPE tracking).
  FreqSymbol delta{};
  for (unsigned bin = 0; bin < kFftSize; ++bin) {
    delta[bin] = 0.5 * rng.complex_normal(1.0);
  }
  const std::size_t from = first_data + 8;
  const std::size_t to = first_data + 12;
  for (std::size_t s = from; s < to && s < symbols.size(); ++s) {
    for (unsigned bin = 0; bin < kFftSize; ++bin) {
      symbols[s][bin] *= Cx{1.0, 0.0} + delta[bin];
    }
  }
  const RxResult rx = receive(symbols, {});
  ASSERT_TRUE(rx.sig_ok);
  ASSERT_EQ(rx.psdu.size(), psdu.size());

  // Region well before the disturbance decodes cleanly.
  const McsParams& m = mcs(5);
  const std::size_t bytes_per_symbol = m.n_dbps / 8;
  const std::size_t clean_until = (8 - 1) * bytes_per_symbol - 4;
  std::size_t mismatches_before = 0;
  for (std::size_t i = 0; i < clean_until; ++i) {
    mismatches_before += rx.psdu[i] != psdu[i] ? 1u : 0u;
  }
  EXPECT_EQ(mismatches_before, 0u);

  // The disturbed region itself must be corrupted.
  std::size_t mismatches_within = 0;
  for (std::size_t i = 8 * bytes_per_symbol; i < 12 * bytes_per_symbol; ++i) {
    mismatches_within += rx.psdu[i] != psdu[i] ? 1u : 0u;
  }
  EXPECT_GT(mismatches_within, 10u);
}

TEST(Ppdu, TimeDomainPathMatchesFrequencyPath) {
  util::Rng rng(6);
  const util::ByteVec psdu = rng.bytes(150);
  TxConfig cfg;
  cfg.mcs_index = 4;
  const TxPpdu ppdu = transmit(psdu, cfg);
  const util::CxVec samples = to_samples(ppdu);
  EXPECT_EQ(samples.size(), ppdu.size() * kSamplesPerSymbol);
  const RxResult rx = receive_samples(samples, {});
  ASSERT_TRUE(rx.sig_ok);
  EXPECT_EQ(rx.psdu, psdu);
}

TEST(Ppdu, RejectsBadInput) {
  EXPECT_THROW(transmit({}, {}), std::invalid_argument);
  util::Rng rng(7);
  const util::ByteVec big(65536, 0);
  EXPECT_THROW(transmit(big, {}), std::invalid_argument);
  const std::vector<FreqSymbol> few(3);
  EXPECT_THROW(receive(few, {}), std::invalid_argument);
  const util::CxVec ragged(81);
  EXPECT_THROW(receive_samples(ragged, {}), std::invalid_argument);
}

TEST(Ppdu, ScramblerSeedDoesNotAffectDecode) {
  util::Rng rng(8);
  const util::ByteVec psdu = rng.bytes(80);
  for (const std::uint8_t seed : {1, 55, 93, 127}) {
    TxConfig cfg;
    cfg.scrambler_seed = seed;
    const TxPpdu ppdu = transmit(psdu, cfg);
    const RxResult rx = receive(ppdu.symbols, {});
    ASSERT_TRUE(rx.sig_ok) << "seed " << int(seed);
    EXPECT_EQ(rx.psdu, psdu) << "seed " << int(seed);
  }
}

}  // namespace
}  // namespace witag::phy
