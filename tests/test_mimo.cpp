#include "phy/mimo.hpp"

#include <gtest/gtest.h>

#include "phy/constellation.hpp"
#include "util/rng.hpp"

namespace witag::phy::mimo {
namespace {

using util::Cx;

std::vector<Matrix2> random_channels(util::Rng& rng, std::size_t n) {
  std::vector<Matrix2> h(n);
  for (auto& m : h) {
    for (auto& row : m.m) {
      for (auto& e : row) e = Cx{1.0, 0.0} + 0.5 * rng.complex_normal(1.0);
    }
  }
  return h;
}

class MimoModulations : public ::testing::TestWithParam<Modulation> {};

TEST_P(MimoModulations, StreamParseDeparseInverse) {
  util::Rng rng(1);
  const unsigned s = std::max(bits_per_symbol(GetParam()) / 2, 1u);
  const util::BitVec bits = rng.bits(2 * s * 100);
  const auto streams = stream_parse(bits, GetParam());
  EXPECT_EQ(streams[0].size(), bits.size() / 2);

  std::vector<double> l0(streams[0].size());
  std::vector<double> l1(streams[1].size());
  for (std::size_t i = 0; i < l0.size(); ++i) {
    l0[i] = streams[0][i] ? -1.0 : 1.0;
    l1[i] = streams[1][i] ? -1.0 : 1.0;
  }
  const auto merged = stream_deparse_llrs(l0, l1, GetParam());
  ASSERT_EQ(merged.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(merged[i] < 0.0, bits[i] == 1) << i;
  }
}

TEST_P(MimoModulations, ZeroForcingRecoversStreams) {
  util::Rng rng(2);
  const unsigned n_bpsc = bits_per_symbol(GetParam());
  const util::BitVec s0 = rng.bits(kDataSubcarriers * n_bpsc);
  const util::BitVec s1 = rng.bits(kDataSubcarriers * n_bpsc);
  const MimoSymbol tx = map_symbol(s0, s1, GetParam());
  const auto h = random_channels(rng, kDataSubcarriers);
  const MimoSymbol rx = apply_channel(tx, h);
  const ZfResult zf = zero_forcing(rx, h);
  EXPECT_EQ(demap_hard(zf.detected.points[0], GetParam()), s0);
  EXPECT_EQ(demap_hard(zf.detected.points[1], GetParam()), s1);
}

INSTANTIATE_TEST_SUITE_P(AllModulations, MimoModulations,
                         ::testing::Values(Modulation::kBpsk,
                                           Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

TEST(Mimo, SingularChannelYieldsHugeNoiseEnhancement) {
  util::Rng rng(3);
  const util::BitVec s0 = rng.bits(kDataSubcarriers * 2);
  const util::BitVec s1 = rng.bits(kDataSubcarriers * 2);
  const MimoSymbol tx = map_symbol(s0, s1, Modulation::kQpsk);
  // Rank-1 channel everywhere: rows identical.
  std::vector<Matrix2> h(kDataSubcarriers);
  for (auto& m : h) {
    m.m[0] = {Cx{1.0, 0.0}, Cx{0.5, 0.0}};
    m.m[1] = m.m[0];
  }
  const MimoSymbol rx = apply_channel(tx, h);
  const ZfResult zf = zero_forcing(rx, h);
  for (unsigned stream = 0; stream < kStreams; ++stream) {
    for (const double ne : zf.noise_enhancement[stream]) {
      EXPECT_GE(ne, 1e17);
    }
  }
}

TEST(Mimo, NoiseEnhancementIsPositiveAndCalibrated) {
  // Identity channel: H^-1 = I, noise enhancement exactly 1 per stream.
  util::Rng rng(4);
  const util::BitVec s0 = rng.bits(kDataSubcarriers);
  const util::BitVec s1 = rng.bits(kDataSubcarriers);
  const MimoSymbol tx = map_symbol(s0, s1, Modulation::kBpsk);
  std::vector<Matrix2> h(kDataSubcarriers);
  for (auto& m : h) {
    m.m[0] = {Cx{1.0, 0.0}, Cx{}};
    m.m[1] = {Cx{}, Cx{1.0, 0.0}};
  }
  const ZfResult zf = zero_forcing(apply_channel(tx, h), h);
  for (unsigned stream = 0; stream < kStreams; ++stream) {
    for (const double ne : zf.noise_enhancement[stream]) {
      EXPECT_DOUBLE_EQ(ne, 1.0);
    }
  }
}

TEST(Mimo, CrossTalkActuallyMixes) {
  util::Rng rng(5);
  const util::BitVec s0 = rng.bits(kDataSubcarriers);
  const util::BitVec s1 = rng.bits(kDataSubcarriers);
  const MimoSymbol tx = map_symbol(s0, s1, Modulation::kBpsk);
  std::vector<Matrix2> h(kDataSubcarriers);
  for (auto& m : h) {
    m.m[0] = {Cx{1.0, 0.0}, Cx{0.7, 0.0}};
    m.m[1] = {Cx{0.2, 0.0}, Cx{1.0, 0.0}};
  }
  const MimoSymbol rx = apply_channel(tx, h);
  // Antenna 0 must differ from stream 0 alone wherever stream 1 is
  // non-zero (always, for BPSK).
  bool differs = false;
  for (std::size_t k = 0; k < kDataSubcarriers; ++k) {
    if (std::abs(rx.points[0][k] - tx.points[0][k]) > 0.1) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Mimo, ContractChecks) {
  util::Rng rng(6);
  const util::BitVec ragged = rng.bits(3);
  EXPECT_THROW(stream_parse(ragged, Modulation::kQam16),
               std::invalid_argument);
  const util::BitVec s0 = rng.bits(kDataSubcarriers);
  EXPECT_THROW(map_symbol(s0, rng.bits(10), Modulation::kBpsk),
               std::invalid_argument);
}

}  // namespace
}  // namespace witag::phy::mimo
