#include "phy/sync.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "phy/ppdu.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace witag::phy {
namespace {

using util::Cx;

// A PPDU embedded in a noisy stream with `prefix` noise samples first.
struct Stream {
  util::CxVec samples;
  std::size_t true_start;
  util::ByteVec psdu;
};

Stream make_stream(util::Rng& rng, std::size_t prefix, double noise_amp,
                   double cfo_hz = 0.0) {
  Stream s;
  s.psdu = rng.bytes(120);
  TxConfig cfg;
  cfg.mcs_index = 3;
  const util::CxVec frame = to_samples(transmit(s.psdu, cfg));

  s.true_start = prefix;
  s.samples.reserve(prefix + frame.size() + 200);
  for (std::size_t i = 0; i < prefix; ++i) {
    s.samples.push_back(noise_amp * rng.complex_normal(1.0));
  }
  const double step = 2.0 * util::kPi * cfo_hz / kSampleRateHz;
  for (std::size_t n = 0; n < frame.size(); ++n) {
    const Cx rotated =
        frame[n] * std::polar(1.0, step * static_cast<double>(prefix + n));
    s.samples.push_back(rotated + noise_amp * rng.complex_normal(1.0));
  }
  for (std::size_t i = 0; i < 200; ++i) {
    s.samples.push_back(noise_amp * rng.complex_normal(1.0));
  }
  return s;
}

TEST(Sync, FindsFrameStartExactly) {
  util::Rng rng(1);
  const Stream s = make_stream(rng, 777, 1e-3);
  const auto sync = detect_ppdu(s.samples);
  ASSERT_TRUE(sync.has_value());
  EXPECT_EQ(sync->frame_start, s.true_start);
}

TEST(Sync, WorksAcrossPrefixLengths) {
  util::Rng rng(2);
  for (const std::size_t prefix : {100u, 333u, 1000u, 2049u}) {
    const Stream s = make_stream(rng, prefix, 1e-3);
    const auto sync = detect_ppdu(s.samples);
    ASSERT_TRUE(sync.has_value()) << prefix;
    EXPECT_EQ(sync->frame_start, s.true_start) << prefix;
  }
}

TEST(Sync, EstimatesCfo) {
  util::Rng rng(3);
  for (const double cfo : {-60e3, -10e3, 0.0, 25e3, 80e3}) {
    const Stream s = make_stream(rng, 500, 5e-4, cfo);
    const auto sync = detect_ppdu(s.samples);
    ASSERT_TRUE(sync.has_value()) << cfo;
    EXPECT_NEAR(sync->cfo_hz, cfo, 600.0) << cfo;
  }
}

TEST(Sync, EndToEndWithCfoCorrection) {
  util::Rng rng(4);
  const double cfo = 40e3;
  const Stream s = make_stream(rng, 640, 1e-4, cfo);
  const auto sync = detect_ppdu(s.samples);
  ASSERT_TRUE(sync.has_value());

  // Correct CFO over the whole stream, then decode from the detected
  // start.
  const util::CxVec corrected = correct_cfo(s.samples, sync->cfo_hz);
  const std::size_t frame_len =
      (corrected.size() - sync->frame_start) / kSamplesPerSymbol *
      kSamplesPerSymbol;
  const std::span<const Cx> frame(corrected.data() + sync->frame_start,
                                  frame_len);
  const RxResult rx = receive_samples(frame, {});
  ASSERT_TRUE(rx.sig_ok);
  EXPECT_EQ(rx.psdu, s.psdu);
}

TEST(Sync, NoDetectionOnPureNoise) {
  util::Rng rng(5);
  util::CxVec noise(8000);
  for (auto& x : noise) x = rng.complex_normal(1.0);
  EXPECT_FALSE(detect_ppdu(noise).has_value());
}

TEST(Sync, NoDetectionOnTooShortInput) {
  const util::CxVec tiny(50);
  EXPECT_FALSE(detect_ppdu(tiny).has_value());
}

TEST(Sync, CfoCorrectionIsExactInverse) {
  util::Rng rng(6);
  util::CxVec x(500);
  for (auto& v : x) v = rng.complex_normal(1.0);
  const util::CxVec shifted = correct_cfo(x, -12345.0);
  const util::CxVec back = correct_cfo(shifted, 12345.0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    EXPECT_NEAR(std::abs(back[n] - x[n]), 0.0, 1e-12);
  }
}

TEST(Sync, ThresholdValidated) {
  const util::CxVec s(10000);
  SyncConfig cfg;
  cfg.detection_threshold = 1.5;
  EXPECT_THROW(detect_ppdu(s, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace witag::phy
