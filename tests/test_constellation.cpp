#include "phy/constellation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace witag::phy {
namespace {

using util::Cx;

class ConstellationParam : public ::testing::TestWithParam<Modulation> {};

TEST_P(ConstellationParam, UnitAveragePower) {
  const auto points = constellation_points(GetParam());
  double power = 0.0;
  for (const Cx& p : points) power += std::norm(p);
  EXPECT_NEAR(power / static_cast<double>(points.size()), 1.0, 1e-12);
}

TEST_P(ConstellationParam, MapDemapRoundTrip) {
  util::Rng rng(17);
  const unsigned n = bits_per_symbol(GetParam());
  const util::BitVec bits = rng.bits(n * 200);
  const util::CxVec points = map_bits(bits, GetParam());
  EXPECT_EQ(points.size(), 200u);
  EXPECT_EQ(demap_hard(points, GetParam()), bits);
}

TEST_P(ConstellationParam, SoftDemapSignsMatchHardDecisions) {
  util::Rng rng(18);
  const unsigned n = bits_per_symbol(GetParam());
  const util::BitVec bits = rng.bits(n * 100);
  const util::CxVec points = map_bits(bits, GetParam());
  const auto llrs = demap_soft(points, GetParam(), 0.01);
  ASSERT_EQ(llrs.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    // Positive LLR favors 0; a clean point must agree with its bit.
    if (bits[i]) {
      EXPECT_LT(llrs[i], 0.0) << "bit " << i;
    } else {
      EXPECT_GT(llrs[i], 0.0) << "bit " << i;
    }
  }
}

TEST_P(ConstellationParam, SoftDemapScalesInverselyWithNoise) {
  const unsigned n = bits_per_symbol(GetParam());
  const util::BitVec bits(n, 0);
  const util::CxVec points = map_bits(bits, GetParam());
  const auto tight = demap_soft(points, GetParam(), 0.01);
  const auto loose = demap_soft(points, GetParam(), 1.0);
  for (std::size_t i = 0; i < tight.size(); ++i) {
    EXPECT_NEAR(tight[i], loose[i] * 100.0, 1e-9);
  }
}

TEST_P(ConstellationParam, HardDemapRobustToSmallNoise) {
  util::Rng rng(19);
  const unsigned n = bits_per_symbol(GetParam());
  const util::BitVec bits = rng.bits(n * 500);
  util::CxVec points = map_bits(bits, GetParam());
  for (Cx& p : points) p += rng.complex_normal(1e-6);
  EXPECT_EQ(demap_hard(points, GetParam()), bits);
}

INSTANTIATE_TEST_SUITE_P(AllModulations, ConstellationParam,
                         ::testing::Values(Modulation::kBpsk,
                                           Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

TEST(Constellation, BpskIsReal) {
  const auto points = constellation_points(Modulation::kBpsk);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].imag(), 0.0);
  EXPECT_DOUBLE_EQ(points[1].imag(), 0.0);
  EXPECT_DOUBLE_EQ(points[0].real(), -1.0);  // bit 0 -> -1
  EXPECT_DOUBLE_EQ(points[1].real(), 1.0);
}

TEST(Constellation, Qam16GrayNeighbors) {
  // Adjacent I levels differ in exactly one bit of the I bit pair.
  // Levels -3,-1,1,3 map from bits 00,01,11,10.
  const unsigned order[4] = {0b00, 0b01, 0b11, 0b10};
  for (int i = 0; i + 1 < 4; ++i) {
    const unsigned x = order[i] ^ order[i + 1];
    EXPECT_EQ(x & (x - 1), 0u) << "not gray at " << i;
  }
}

TEST(Constellation, RejectsRaggedBits) {
  const util::BitVec bits(3, 0);
  EXPECT_THROW(map_bits(bits, Modulation::kQpsk), std::invalid_argument);
}

TEST(Constellation, PerPointNoiseOverloadMatches) {
  util::Rng rng(20);
  const util::BitVec bits = rng.bits(8);
  const util::CxVec points = map_bits(bits, Modulation::kQpsk);
  const std::vector<double> vars(points.size(), 0.5);
  EXPECT_EQ(demap_soft(points, Modulation::kQpsk, 0.5),
            demap_soft(points, Modulation::kQpsk, vars));
}

TEST(Constellation, RejectsNonPositiveNoise) {
  const util::CxVec points{{1.0, 0.0}};
  EXPECT_THROW(demap_soft(points, Modulation::kBpsk, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace witag::phy
