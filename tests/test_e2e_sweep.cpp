// End-to-end property sweep: the WiTAG invariant — with the tag close to
// a radio on a clean channel, the block-ack bits equal the tag's bits
// exactly — must hold across every MCS the query planner supports, every
// security mode, and both trigger paths. This is the closest thing the
// system has to a single theorem; TEST_P keeps the matrix honest.
#include <gtest/gtest.h>

#include "witag/session.hpp"

namespace witag::core {
namespace {

struct SweepCase {
  unsigned mcs;
  mac::Security security;
  TriggerMode trigger;
  const char* name;
};

void PrintTo(const SweepCase& c, std::ostream* os) { *os << c.name; }

class EndToEndSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EndToEndSweep, BlockAckBitsEqualTagBits) {
  const SweepCase& c = GetParam();
  SessionConfig cfg = los_testbed_config(util::Meters{1.0}, 1000 + c.mcs);
  cfg.fading.n_scatterers = 0;
  cfg.fading.blocking_rate_hz = util::Hertz{0.0};
  cfg.fading.interference_rate_hz = util::Hertz{0.0};
  cfg.query.mcs_index = c.mcs;
  cfg.security.mode = c.security;
  cfg.security.ccmp_key = {1, 2, 3, 4, 5, 6, 7, 8,
                           9, 10, 11, 12, 13, 14, 15, 16};
  for (std::size_t i = 0; i < cfg.security.wep_key.size(); ++i) {
    cfg.security.wep_key[i] = static_cast<std::uint8_t>(i + 7);
  }
  cfg.trigger_mode = c.trigger;
  // Only the dense MCSes (5, 7) are in the matrix: robust rates resist
  // the calibrated tag coupling by design — that tradeoff is quantified
  // in bench/tab_throughput_model, not re-tested here.
  Session session(cfg);
  for (int round = 0; round < 3; ++round) {
    const auto r = session.run_round();
    ASSERT_FALSE(r.lost) << c.name << " round " << round;
    ASSERT_EQ(r.received.size(), r.sent.size()) << c.name;
    for (std::size_t i = 0; i < r.sent.size(); ++i) {
      EXPECT_EQ(r.received[i], (r.sent[i] & 1u) != 0)
          << c.name << " round " << round << " bit " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EndToEndSweep,
    ::testing::Values(
        SweepCase{5, mac::Security::kOpen, TriggerMode::kIdeal,
                  "mcs5_open_ideal"},
        SweepCase{5, mac::Security::kCcmp, TriggerMode::kIdeal,
                  "mcs5_ccmp_ideal"},
        SweepCase{5, mac::Security::kWep, TriggerMode::kIdeal,
                  "mcs5_wep_ideal"},
        SweepCase{5, mac::Security::kOpen, TriggerMode::kEnvelope,
                  "mcs5_open_envelope"},
        SweepCase{5, mac::Security::kCcmp, TriggerMode::kEnvelope,
                  "mcs5_ccmp_envelope"},
        SweepCase{7, mac::Security::kOpen, TriggerMode::kIdeal,
                  "mcs7_open_ideal"},
        SweepCase{7, mac::Security::kCcmp, TriggerMode::kIdeal,
                  "mcs7_ccmp_ideal"},
        SweepCase{7, mac::Security::kOpen, TriggerMode::kEnvelope,
                  "mcs7_open_envelope"}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace witag::core
