#include "mac/block_ack.hpp"

#include <gtest/gtest.h>

namespace witag::mac {
namespace {

TEST(BlockAck, SeqOffsetBasics) {
  EXPECT_EQ(seq_offset(100, 100), 0);
  EXPECT_EQ(seq_offset(100, 163), 63);
  EXPECT_EQ(seq_offset(100, 164), -1);
  EXPECT_EQ(seq_offset(100, 99), -1);
}

TEST(BlockAck, SeqOffsetWrapsAround4096) {
  EXPECT_EQ(seq_offset(4090, 5), 11);
  EXPECT_EQ(seq_offset(4095, 0), 1);
  EXPECT_EQ(seq_offset(10, 4000), -1);
}

TEST(BlockAck, SetAndTest) {
  BlockAck ba;
  ba.start_seq = 50;
  ba.set_received(50);
  ba.set_received(113);
  EXPECT_TRUE(ba.received(50));
  EXPECT_TRUE(ba.received(113));
  EXPECT_FALSE(ba.received(51));
  EXPECT_FALSE(ba.received(49));
  EXPECT_FALSE(ba.received(114));
}

TEST(BlockAck, SetOutsideWindowThrows) {
  BlockAck ba;
  ba.start_seq = 0;
  EXPECT_THROW(ba.set_received(64), std::invalid_argument);
  EXPECT_THROW(ba.set_received(4095), std::invalid_argument);
}

TEST(BlockAck, SerializeParseRoundTrip) {
  BlockAck ba;
  ba.start_seq = 3000;
  ba.set_received(3000);
  ba.set_received(3010);
  ba.set_received(3063);
  const auto parsed = parse_block_ack(serialize_block_ack(ba));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, ba);
}

TEST(BlockAck, SerializedSizeIsTwelveBytes) {
  EXPECT_EQ(serialize_block_ack(BlockAck{}).size(), 12u);
}

TEST(BlockAck, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_block_ack(util::ByteVec(5, 0)).has_value());
  util::ByteVec wrong(12, 0);
  wrong[0] = 0xFF;  // bad BA control
  EXPECT_FALSE(parse_block_ack(wrong).has_value());
}

TEST(BlockAck, SubframeFlagsMatchBitmap) {
  BlockAck ba;
  ba.start_seq = 10;
  ba.set_received(10);
  ba.set_received(12);
  const auto flags = subframe_flags(ba, 5);
  ASSERT_EQ(flags.size(), 5u);
  EXPECT_TRUE(flags[0]);
  EXPECT_FALSE(flags[1]);
  EXPECT_TRUE(flags[2]);
  EXPECT_FALSE(flags[3]);
  EXPECT_FALSE(flags[4]);
}

TEST(BlockAck, SubframeFlagsLimit) {
  EXPECT_THROW(subframe_flags(BlockAck{}, 65), std::invalid_argument);
}

TEST(BlockAck, FullWindowBitmap) {
  BlockAck ba;
  ba.start_seq = 0;
  for (std::uint16_t s = 0; s < 64; ++s) ba.set_received(s);
  EXPECT_EQ(ba.bitmap, ~std::uint64_t{0});
}

}  // namespace
}  // namespace witag::mac
